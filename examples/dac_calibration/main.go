// DAC calibration example — the Fig. 5 scenario: fabricate mismatched
// 14-bit current-steering DACs, show the INL random walk of the
// thermometer switching order, run SSPA calibration, and reproduce the
// area-versus-accuracy trade (calibrated analog area ≈ 6 % of the
// intrinsic-accuracy design).
package main

import (
	"fmt"
	"log"

	"repro/internal/calib"
	"repro/internal/mathx"
	"repro/internal/report"
)

func main() {
	// One fabricated instance at a mismatch level that intrinsic accuracy
	// cannot tolerate.
	cfg := calib.Paper14Bit(0.008)
	d, err := calib.NewDAC(cfg, mathx.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("14-bit segmented DAC (%d unary + %d binary), σ_unit = %.2f%%\n",
		cfg.UnaryBits, cfg.BinaryBits, 100*cfg.SigmaUnit)
	fmt.Printf("as-fabricated:  INL = %.3f LSB, DNL = %.3f LSB\n", d.MaxINL(), d.MaxDNL())

	d.CalibrateSSPA(0, mathx.NewRNG(1))
	fmt.Printf("after SSPA:     INL = %.3f LSB, DNL = %.3f LSB\n", d.MaxINL(), d.MaxDNL())
	fmt.Printf("switching sequence (first 16): %v\n\n", d.Sequence()[:16])

	// With comparator noise in the measurement loop.
	d.ResetSequence()
	d.CalibrateSSPA(0.05, mathx.NewRNG(2))
	fmt.Printf("SSPA w/ noisy comparator (σ=0.05 LSB): INL = %.3f LSB\n\n", d.MaxINL())

	// Yield at this mismatch level, with and without calibration.
	raw, err := calib.INLYield(cfg, 0.5, false, 200, 11)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := calib.INLYield(cfg, 0.5, true, 200, 11)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("yield at |INL| < 0.5 LSB (200 dies)", "design", "yield")
	t.AddRow("intrinsic (thermometer)", raw.String())
	t.AddRow("SSPA calibrated", cal.String())
	fmt.Println(t)

	// The headline area study: how much mismatch (hence how little area)
	// calibration tolerates at equal yield.
	study, err := calib.RunAreaStudy(calib.Paper14Bit(0), 0.5, 0.9, 60, 13)
	if err != nil {
		log.Fatal(err)
	}
	at := report.NewTable("area study (target: 90% yield at INL < 0.5 LSB)", "quantity", "value")
	at.AddRow("σ_unit intrinsic design", fmt.Sprintf("%.4f%%", 100*study.SigmaIntrinsic))
	at.AddRow("σ_unit calibrated design", fmt.Sprintf("%.4f%%", 100*study.SigmaCalibrated))
	at.AddRow("analog area ratio (Pelgrom: area ∝ 1/σ²)", fmt.Sprintf("%.1f%%", 100*study.AnalogAreaRatio))
	at.AddRow("paper (Chen/Gielen silicon)", "~6%")
	fmt.Println(at)
}
