// Quickstart: parse a small analog netlist, inspect its operating point,
// age it over a ten-year mission and estimate yield over life with Monte
// Carlo — the complete reliability-analysis loop in ~80 lines.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/variation"
)

const deck = `
* PMOS common-source stage at the 65nm node
.tech 65nm
VDD vdd 0 DC 1.1
VG  g   0 DC 0.55
M1  d g vdd vdd PMOS W=4u L=130n
RD  d 0 20k
.end
`

const year = 365.25 * 24 * 3600

func main() {
	d, err := netlist.Parse(deck)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		log.Fatalf("operating point: %v", err)
	}
	vnom := sol.Voltage("d")
	fmt.Printf("fresh operating point: V(d) = %s\n", report.SI(vnom, "V"))

	// Age this single die over ten years at 350 K and watch the output
	// drift as NBTI raises the pMOS threshold. Stepping checkpoint by
	// checkpoint lets us snapshot the accumulated damage at each age.
	ager := aging.NewCircuitAger(d.Circuit, aging.DefaultModels(), 350, 1)
	t := report.NewTable("single-die aging trajectory", "age", "V(d)", "ΔVT(M1)")
	t.AddRow("0yr", report.SI(vnom, "V"), "0V")
	prev := 0.0
	for _, age := range aging.LogCheckpoints(3600, 10*year, 8) {
		stress := aging.ExtractStressOP(d.Circuit, 350)
		ager.Ager("M1").Step(stress["M1"], age-prev)
		prev = age
		cp, err := d.Circuit.OperatingPoint()
		if err != nil {
			t.AddRow(report.Years(age), "no convergence", "")
			continue
		}
		t.AddRow(report.Years(age),
			report.SI(cp.Voltage("d"), "V"),
			report.SI(d.MOSFETs["M1"].Dev.Damage.DeltaVT, "V"))
	}
	fmt.Println(t)

	// Monte-Carlo yield over life: every trial fabricates a die with
	// Pelgrom mismatch and ages it through the mission. The run is bounded
	// by a wall-clock budget — on expiry the completed trials are still
	// reported, with the skipped remainder accounted as Cancelled.
	sim := &core.Simulator{
		Build: func() (*circuit.Circuit, error) {
			dd, err := netlist.Parse(deck)
			if err != nil {
				return nil, err
			}
			return dd.Circuit, nil
		},
		Tech:   d.Tech,
		Models: aging.DefaultModels(),
		Metrics: []core.Metric{{
			Name: "vout",
			Measure: func(c *circuit.Circuit) (float64, error) {
				s, err := c.OperatingPoint()
				if err != nil {
					return 0, err
				}
				return s.Voltage("d"), nil
			},
			Spec: variation.Spec{Name: "vout", Lo: 0.8 * vnom, Hi: 1.2 * vnom},
		}},
		Seed: 42,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := sim.RunCtx(ctx, 100, core.Mission{Duration: 10 * year, TempK: 350, Checkpoints: 6})
	if err != nil {
		if !errors.Is(err, variation.ErrCancelled) {
			log.Fatalf("monte carlo: %v", err)
		}
		log.Printf("warning: %v — reporting partial results", err)
	}
	yt := report.NewTable("yield over life (100 dies, ±20% vout spec)", "age", "yield")
	for k := range res.Times {
		yt.AddRow(report.Years(res.Times[k]), res.Yield[k].String())
	}
	fmt.Println(yt)
	fmt.Printf("median time to failure: %s\n", report.Years(res.MedianTTF()))
	tel := res.Telemetry
	fmt.Printf("run telemetry: %d/%d trials in %s, %d Newton iterations, %d errors, %d cancelled\n",
		tel.Completed, res.Trials, tel.WallTime.Round(time.Millisecond),
		tel.NewtonIterations, res.Errors, res.Cancelled)
	for _, te := range res.TrialErrors {
		fmt.Printf("  %s failure in %v\n", te.Kind(), te)
	}
}
