* two-stage OTA, unity-gain, for yield and reliability signoff
.tech 90nm
.temp 300
VDD vdd 0 DC 1.1
VINP inp 0 DC 0.55
* supply wiring modelled as real metal: the EM roll-up converts these
* resistors into wires and checks Black's MTTF on the DC current they carry.
RVDD vdd vddi 25
RBIAS vddi nbias 40k
* bias chain and tail mirror
MB nbias nbias 0 0 NMOS W=2u L=180n
MT tail nbias 0 0 NMOS W=4u L=180n
* input differential pair with pMOS mirror load; the inverting input is
* tied to the output (unity-gain buffer), so V(out) = V(inp) + Vos and the
* Monte-Carlo yield of V(out) measures the input-offset distribution the
* paper's Section 2 mismatch model predicts.
M1 n1 out tail 0 NMOS W=8u L=180n
M2 out1 inp tail 0 NMOS W=8u L=180n
M3 n1 n1 vddi vddi PMOS W=4u L=180n
M4 out1 n1 vddi vddi PMOS W=4u L=180n
* second stage: pMOS common-source into a resistive load
M5 out out1 vddi vddi PMOS W=12u L=180n
M6 out nbias 0 0 NMOS W=4u L=180n
RL out 0 60k
.end
