// OTA reliability example: a two-stage Miller amplifier measured the way
// the paper frames analog degradation — random mismatch sets the input
// offset and its yield (§2), and the aging mechanisms erode gain and CMRR
// over the mission (§3.2).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/aging"
	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/variation"
)

const year = 365.25 * 24 * 3600

func main() {
	// Whole-stack instrumentation: the same registry relsim serves over
	// HTTP; this example prints a cost summary from it at the end.
	reg := obs.NewRegistry()
	core.EnableMetrics(reg)

	cfg := analog.DefaultOTA()
	o, err := analog.NewOTA(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s, err := o.Measure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-stage OTA at %s: gain %.1f dB, GBW %s, PM %.0f°, CMRR %.0f dB\n\n",
		cfg.Tech.Name, s.DCGainDB, report.SI(s.GBW, "Hz"), s.PhaseMarginDeg, s.CMRRDB)

	// Offset distribution over fabricated instances.
	res, err := variation.MonteCarloCtx(context.Background(), 200, 11, func(rng *mathx.RNG, _ int) (float64, error) {
		oo, err := analog.NewOTA(cfg)
		if err != nil {
			return 0, err
		}
		for _, m := range oo.AllDevices() {
			m.Dev.Mismatch = variation.SampleMismatch(cfg.Tech, m.Dev.Params.W, m.Dev.Params.L, rng)
		}
		return oo.InputOffset()
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Failures > 0 {
		fmt.Printf("failure accounting: %d/%d dies failed %v\n", res.Failures, res.N, res.ErrorsByKind())
	}
	fmt.Printf("input offset over %d dies (%s): σ = %s\n",
		len(res.Values), res.Elapsed.Round(time.Millisecond), report.SI(res.StdDev(), "V"))
	lo, hi := mathx.MinMax(res.Values)
	h := mathx.NewHistogram(lo, hi+1e-12, 12)
	for _, v := range res.Values {
		h.Add(v)
	}
	fmt.Print(report.TextHist(h, 40))
	y := variation.EstimateYield(res.Values, variation.Spec{Name: "vos", Lo: -5e-3, Hi: 5e-3})
	fmt.Printf("offset yield |Vos| < 5 mV: %s\n\n", y)

	// Gain over a 10-year 400 K mission: the aging scheduler extracts the
	// real bias stress of every device at each checkpoint.
	o2, err := analog.NewOTA(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ager := aging.NewCircuitAger(o2.Circuit,
		aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}, 400, 3)
	tbl := report.NewTable("OTA performance over life (400 K mission)", "age", "gain [dB]", "GBW", "offset")
	record := func(age float64) {
		sp, err := o2.Measure()
		if err != nil {
			tbl.AddRow(report.Years(age), "fail", "", "")
			return
		}
		vos, _ := o2.InputOffset()
		tbl.AddRow(report.Years(age),
			fmt.Sprintf("%.1f", sp.DCGainDB), report.SI(sp.GBW, "Hz"), report.SI(vos, "V"))
	}
	record(0)
	prev := 0.0
	for _, age := range aging.LogCheckpoints(1e5, 10*year, 6) {
		stress := aging.ExtractStressOP(o2.Circuit, 400)
		for _, name := range ager.SortedAgerNames() {
			ager.Ager(name).Step(stress[name], age-prev)
		}
		prev = age
		record(age)
	}
	fmt.Println(tbl)

	nbti, _ := ager.Ager("MTAIL").Shifts()
	fmt.Printf("tail-source NBTI after 10 years: ΔVT = %s\n", report.SI(nbti, "V"))
	fmt.Println("\nThe always-on pMOS bias devices soak up >100 mV of NBTI, yet the gain")
	fmt.Println("barely moves: the symmetric topology cancels common-mode degradation,")
	fmt.Println("exactly the ratiometric resilience good analog design buys. What cannot")
	fmt.Println("cancel is the differential part — the input offset doubles over life —")
	fmt.Println("and that is where the paper's calibration and monitoring (§5) aim.")

	// What the study cost, from the instrument registry.
	snap := reg.Snapshot()
	ops, _ := snap.Counter("circuit_op_total")
	iters, _ := snap.Counter("circuit_newton_iterations_total")
	steps, _ := snap.Counter("aging_steps_total")
	fmt.Printf("\nrun cost (obs): %d operating points, %d Newton iterations, %d aging steps",
		ops, iters, steps)
	if h := snap.Histogram("variation_trial_seconds"); h != nil && h.Count > 0 {
		fmt.Printf("; MC trial p50 %s, p99 %s",
			report.SI(h.P50, "s"), report.SI(h.P99, "s"))
	}
	fmt.Println()
}
