// SRAM stability example: the 6T cell is where the paper's two threat
// axes meet — minimum-size devices make Pelgrom mismatch maximal (§2), and
// the pull-up that guards a long-stored datum sits under permanent NBTI
// stress (§3.3). This example extracts butterfly curves and static noise
// margins, Monte-Carlos the stability yield across nodes, and shows the
// margin collapsing under aging asymmetry.
package main

import (
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/report"
	"repro/internal/sram"
)

func main() {
	tech := device.MustTech("65nm")
	cell, err := sram.NewCell(sram.DefaultCell(tech))
	if err != nil {
		log.Fatal(err)
	}
	hold, err := cell.HoldSNM(41)
	if err != nil {
		log.Fatal(err)
	}
	read, err := cell.ReadSNM(41)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("65nm 6T cell (nominal): hold SNM = %s, read SNM = %s (VDD = %.1f V)\n\n",
		report.SI(hold, "V"), report.SI(read, "V"), tech.VDD)

	// Margin across nodes: the absolute noise budget shrinks with VDD.
	nt := report.NewTable("read SNM across technology nodes (nominal cells)",
		"node", "VDD", "read SNM", "SNM/VDD")
	for _, node := range []string{"180nm", "130nm", "90nm", "65nm", "45nm", "32nm"} {
		tt := device.MustTech(node)
		c, err := sram.NewCell(sram.DefaultCell(tt))
		if err != nil {
			log.Fatal(err)
		}
		snm, err := c.ReadSNM(41)
		if err != nil {
			log.Fatal(err)
		}
		nt.AddRow(node, fmt.Sprintf("%.1f", tt.VDD),
			report.SI(snm, "V"), fmt.Sprintf("%.0f%%", 100*snm/tt.VDD))
	}
	fmt.Println(nt)

	// NBTI asymmetry: a cell that stored one value for years.
	at := report.NewTable("read SNM vs NBTI shift on the stressed pull-up (65nm)",
		"ΔVT(PU1)", "read SNM")
	for _, dvt := range []float64{0, 0.025, 0.05, 0.1} {
		c, err := sram.NewCell(sram.DefaultCell(tech))
		if err != nil {
			log.Fatal(err)
		}
		c.ApplyNBTIAsymmetry(dvt)
		snm, err := c.ReadSNM(41)
		if err != nil {
			log.Fatal(err)
		}
		at.AddRow(report.SI(dvt, "V"), report.SI(snm, "V"))
	}
	fmt.Println(at)

	// Stability yield under mismatch: the same 100 mV read-margin
	// requirement, three nodes. Scaling widens σ/µ until the tail crosses
	// the limit.
	const limit = 0.1 // 100 mV minimum read SNM
	yt := report.NewTable("cell stability yield, read SNM > 100 mV (150 mismatched cells)",
		"node", "yield")
	for _, node := range []string{"90nm", "45nm", "32nm"} {
		y, err := sram.StabilityYield(sram.DefaultCell(device.MustTech(node)), limit, 150, 31, 11)
		if err != nil {
			log.Fatal(err)
		}
		yt.AddRow(node, y.String())
	}
	fmt.Println(yt)
	fmt.Println("Scaling erodes both the nominal margin and its σ/µ ratio — the cell-level")
	fmt.Println("face of the paper's yield-vs-scaling argument.")
}
