// Knobs & monitors example — the Fig. 6 scenario: a PMOS amplifier whose
// gain collapses under NBTI is kept inside its specification by a gain
// monitor, a gate-bias knob and a control algorithm re-tuning at every
// mission checkpoint. The same design without the control loop fails
// decades earlier.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/adapt"
	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/report"
	"repro/internal/variation"
)

const year = 365.25 * 24 * 3600

func buildSystem(tech *device.Technology) (*circuit.Circuit, *adapt.Controller, error) {
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	vg := c.AddVSource("VG", "g", "0", circuit.DC(tech.VDD-0.45))
	vg.ACMag = 1
	c.AddResistor("RD", "d", "0", 20e3)
	m := device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300))
	c.AddMOSFET("M1", "d", "g", "vdd", "vdd", m)

	knob := adapt.VSourceKnob("vbias", vg, mathx.Linspace(tech.VDD-0.44, 0.2, 10))
	ctrl, err := adapt.NewController(
		[]*adapt.Knob{knob},
		[]adapt.Monitor{
			adapt.ACGainMonitor("gain", "d", 1e3),
			adapt.SupplyCurrentMonitor("idd", "VDD"),
		},
		[]variation.Spec{
			{Name: "gain", Lo: 5.0, Hi: math.Inf(1)},
			{Name: "idd", Lo: 0, Hi: 200e-6}, // power budget
		},
		adapt.Exhaustive,
	)
	return c, ctrl, err
}

func run(tech *device.Technology, adaptive bool, checkpoints []float64) *adapt.MissionResult {
	c, ctrl, err := buildSystem(tech)
	if err != nil {
		log.Fatal(err)
	}
	// Both designs get one factory trim at t = 0.
	if _, err := ctrl.Tune(c); err != nil {
		log.Fatal(err)
	}
	ager := aging.NewCircuitAger(c,
		aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}, 400, 99)
	res, err := adapt.RunMission(ager, ctrl, checkpoints, adaptive)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	tech := device.MustTech("65nm")
	checkpoints := mathx.Logspace(1e5, 30*year, 12)

	static := run(tech, false, checkpoints)
	adaptive := run(tech, true, checkpoints)

	t := report.NewTable("amplifier over a 30-year mission at 400 K (gain spec ≥ 5, IDD ≤ 200 µA)",
		"age", "static gain", "adaptive gain", "adaptive IDD", "knob")
	for i, p := range adaptive.Points {
		sg := "fail"
		if len(static.Points[i].Values) > 0 {
			sg = fmt.Sprintf("%.2f", static.Points[i].Values[0])
		}
		ag, idd := "fail", ""
		if len(p.Values) > 1 {
			ag = fmt.Sprintf("%.2f", p.Values[0])
			idd = report.SI(p.Values[1], "A")
		}
		knob := ""
		if len(p.KnobIndices) > 0 {
			knob = fmt.Sprintf("%d", p.KnobIndices[0])
		}
		t.AddRow(report.Years(p.Time), sg, ag, idd, knob)
	}
	fmt.Println(t)
	fmt.Printf("time to spec violation: static %s, adaptive %s\n",
		report.Years(static.TimeToFailure()), report.Years(adaptive.TimeToFailure()))
	fmt.Println("\nThe knob trace shows the controller progressively strengthening the")
	fmt.Println("gate bias as NBTI raises |VT| — correct operation is maintained at a")
	fmt.Println("modest supply-current cost, exactly the trade-off §5.2 describes.")
}
