// Electromigration sign-off example — the Eq. 4 scenario: check a small
// power-distribution tree against a ten-year lifetime target with Black's
// law, report Blech-immune segments, worst offenders and the widening /
// slotting / reservoir fixes §3.4 describes.
package main

import (
	"fmt"

	"repro/internal/em"
	"repro/internal/report"
)

func main() {
	model := em.DefaultBlack()
	const (
		tempK  = 378.0               // 105 °C junction
		target = 10 * 365.25 * 86400 // ten years
	)

	// A power trunk feeding three branches; currents from a DC analysis.
	wires := []*em.Wire{
		{Name: "trunk", Width: 1.2e-6, Thickness: 0.3e-6, Length: 800e-6, Current: 6e-3},
		{Name: "branchA", Width: 0.4e-6, Thickness: 0.3e-6, Length: 300e-6, Current: 2.5e-3},
		{Name: "branchB", Width: 0.4e-6, Thickness: 0.3e-6, Length: 250e-6, Current: 2.0e-3},
		{Name: "branchC", Width: 0.4e-6, Thickness: 0.3e-6, Length: 40e-6, Current: 1.5e-3},
		{Name: "stub", Width: 0.2e-6, Thickness: 0.3e-6, Length: 15e-6, Current: 0.8e-3},
		{Name: "via-array", Width: 0.5e-6, Thickness: 0.3e-6, Length: 120e-6, Current: 3.0e-3, ViaReservoir: true},
	}

	rep := model.Check(wires, target, tempK)
	t := report.NewTable(
		fmt.Sprintf("EM sign-off @ %.0f K, target %s", tempK, report.Years(target)),
		"wire", "J [MA/cm²]", "j·L [A/m]", "MTTF", "status")
	for _, w := range wires {
		j := w.CurrentDensity()
		status := "ok"
		switch {
		case model.BlechImmune(w):
			status = "Blech-immune"
		case model.MTTF(w, tempK) < target:
			status = "VIOLATION"
		}
		if model.IsBamboo(w) {
			status += " (bamboo)"
		}
		if w.ViaReservoir {
			status += " (reservoir)"
		}
		t.AddRow(w.Name,
			fmt.Sprintf("%.2f", j/1e10), // A/m² → MA/cm²
			fmt.Sprintf("%.2g", j*w.Length),
			report.Years(model.MTTF(w, tempK)),
			status)
	}
	fmt.Println(t)

	if rep.Pass() {
		fmt.Println("network passes EM sign-off")
	} else {
		fmt.Printf("%d violation(s); worst wire %q at %s\n",
			len(rep.Violations), rep.WorstWire, report.Years(rep.WorstMTTF))
		ft := report.NewTable("suggested widening fixes (MTTF ∝ W^(N+1))", "wire", "width now", "width fix")
		for _, v := range rep.Violations {
			ft.AddRow(v.Wire.Name, report.SI(v.Wire.Width, "m"), report.SI(v.SuggestedWidth, "m"))
		}
		fmt.Println(ft)
	}

	// Net lifetime of the series-connected supply path.
	var mttfs []float64
	for _, w := range wires {
		mttfs = append(mttfs, model.MTTF(w, tempK))
	}
	fmt.Printf("series (weakest-link) net MTTF: %s\n\n", report.Years(em.SeriesMTTF(mttfs)))

	// The classic Eq. 4 design chart: maximum J for 10-year life vs
	// temperature.
	ct := report.NewTable("J_max for 10-year life (0.4×0.3 µm wire)", "T [K]", "J_max [MA/cm²]")
	for _, tk := range []float64{338, 358, 378, 398, 418} {
		jm := model.JMax(target, tk, 0.4e-6*0.3e-6)
		ct.AddRow(fmt.Sprintf("%.0f", tk), fmt.Sprintf("%.2f", jm/1e10))
	}
	fmt.Println(ct)
}
