// EMC sweep example — the Figs. 3-4 scenario: conducted EMI capacitively
// coupled onto the gate of a current-mirror reference is rectified by the
// mirror nonlinearity and pumps the mean output current away from its
// quiet value. The sweep maps the DC shift over interference amplitude and
// frequency (the DPI picture), and the digital half measures jitter and
// false switching on an inverter.
package main

import (
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/emc"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	// The emc engine sits beside the core reliability stack, so it wires
	// its instruments itself; the sweep summary at the end reads them back.
	reg := obs.NewRegistry()
	emc.SetMetrics(reg)

	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)

	sol, err := cr.Circuit.OperatingPoint()
	if err != nil {
		log.Fatal(err)
	}
	iout := (sol.Voltage(cr.RailNode) - sol.Voltage(cr.OutNode)) / cr.RLoad
	fmt.Printf("current reference quiet point: IOUT = %s, V(gate) = %s\n\n",
		report.SI(iout, "A"), report.SI(sol.Voltage("gate"), "V"))

	ampls := []float64{0.1, 0.2, 0.3, 0.45}
	freqs := []float64{1e6, 10e6, 100e6, 1e9} // the IEC range reaches 1 GHz
	sw, err := emc.SweepEMI(cr.Circuit, cr.InjectName, ampls, freqs,
		cr.OutputCurrentMetric(), emc.DefaultOptions(cr.RecordNodes()...))
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("mean IOUT shift vs EMI amplitude and frequency",
		"ampl \\ freq", report.SI(freqs[0], "Hz"), report.SI(freqs[1], "Hz"),
		report.SI(freqs[2], "Hz"), report.SI(freqs[3], "Hz"))
	for i, a := range ampls {
		row := []string{fmt.Sprintf("%.2f V", a)}
		for j := range freqs {
			row = append(row, report.SI(sw.Shift[i][j], "A"))
		}
		t.AddRow(row...)
	}
	fmt.Println(t)
	worst, wa, wf := sw.WorstShift()
	fmt.Printf("worst DC shift: %s (%.1f%% of nominal) at %.2f V, %s\n\n",
		report.SI(worst, "A"), 100*worst/sw.Baseline, wa, report.SI(wf, "Hz"))

	// Digital immunity: jitter and false switching on a 90 nm inverter.
	dig := device.MustTech("90nm")
	jt := report.NewTable("inverter EMI-induced jitter (100 ns input ramp)", "EMI ampl", "p-p jitter")
	for _, a := range []float64{0.02, 0.08, 0.15} {
		j, err := emc.InverterJitter(dig, emc.Injection{Ampl: a, Freq: 200e6}, 100e-9, 6)
		if err != nil {
			log.Fatal(err)
		}
		jt.AddRow(fmt.Sprintf("%.2f V", a), report.SI(j, "s"))
	}
	fmt.Println(jt)

	ft := report.NewTable("inverter false switching (static low input, 5 EMI cycles)", "EMI ampl", "spurious transitions")
	for _, a := range []float64{0.1, 0.5, 0.9} {
		n, err := emc.FalseSwitchCount(dig, emc.Injection{Ampl: a, Freq: 50e6}, 5)
		if err != nil {
			log.Fatal(err)
		}
		ft.AddRow(fmt.Sprintf("%.2f V", a), fmt.Sprintf("%d", n))
	}
	fmt.Println(ft)

	// Sweep cost from the instrument registry: grid points measured and
	// the latency of each rectification pair (baseline + disturbed).
	snap := reg.Snapshot()
	points, _ := snap.Counter("emc_sweep_points_total")
	if h := snap.Histogram("emc_rectification_seconds"); h != nil && h.Count > 0 {
		fmt.Printf("sweep cost (obs): %d grid points, rectification p50 %s, p99 %s\n",
			points, report.SI(h.P50, "s"), report.SI(h.P99, "s"))
	}
}
