// Ring-oscillator aging example: the digital face of the paper's story.
// BTI and hot carriers slow logic down over life; a frequency monitor plus
// a supply-voltage knob (adaptive voltage scaling — a classic
// knobs-and-monitors instance) recovers the lost speed at a power cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/adapt"
	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/digital"
	"repro/internal/mathx"
	"repro/internal/report"
	"repro/internal/variation"
)

const year = 365.25 * 24 * 3600

func main() {
	tech := device.MustTech("65nm")

	// Single-inverter delay, the primitive quantity.
	tphl, tplh, err := digital.PropagationDelay(tech, digital.DefaultInverter(tech), 2e-15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("65nm inverter with 2 fF load: tpHL = %s, tpLH = %s\n\n",
		report.SI(tphl, "s"), report.SI(tplh, "s"))

	// Frequency degradation of a 5-stage ring over missions of increasing
	// length.
	t := report.NewTable("ring-oscillator slowdown at 400 K (5 stages)",
		"mission", "fresh", "aged", "slowdown", "worst ΔVT")
	for _, years := range []float64{1, 3, 10} {
		ro, err := digital.BuildRingOscillator(tech, 5, digital.DefaultInverter(tech), 2e-15)
		if err != nil {
			log.Fatal(err)
		}
		res, err := digital.AgeRing(ro, years*year, 400,
			aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}, 7)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%gyr", years),
			report.SI(res.FreshHz, "Hz"), report.SI(res.AgedHz, "Hz"),
			fmt.Sprintf("%.1f%%", res.SlowdownPct),
			report.SI(res.WorstDeltaVT, "V"))
	}
	fmt.Println(t)

	// Adaptive voltage scaling: a supply knob driven by a frequency
	// monitor pulls the aged ring back to its speed specification.
	ro, err := digital.BuildRingOscillator(tech, 5, digital.DefaultInverter(tech), 2e-15)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := ro.MeasureFrequency()
	if err != nil {
		log.Fatal(err)
	}
	target := 0.90 * fresh
	if _, err := digital.AgeRing(ro, 10*year, 400,
		aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}, 7); err != nil {
		log.Fatal(err)
	}

	vddSrc, err := ro.Circuit.VSourceByName(ro.SupplyName)
	if err != nil {
		log.Fatal(err)
	}
	knob := adapt.VSourceKnob("vdd", vddSrc, mathx.Linspace(tech.VDD, tech.VDD+0.25, 6))
	freqMon := adapt.Monitor{Name: "freq", Measure: func(*circuit.Circuit) (float64, error) {
		return ro.MeasureFrequency()
	}}
	ctrl, err := adapt.NewController([]*adapt.Knob{knob}, []adapt.Monitor{freqMon},
		[]variation.Spec{{Name: "freq", Lo: target, Hi: 1e18}}, adapt.Greedy)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := ctrl.Tune(ro.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive supply scaling after 10 years:\n")
	fmt.Printf("  target frequency : %s (90%% of fresh %s)\n", report.SI(target, "Hz"), report.SI(fresh, "Hz"))
	fmt.Printf("  chosen VDD       : %.3f V (nominal %.2f V)\n", knob.Value(), tech.VDD)
	fmt.Printf("  restored freq    : %s (in spec: %v)\n", report.SI(tr.Values[0], "Hz"), tr.InSpec)
	fmt.Println("\nThe supply knob buys back the BTI-induced slowdown — at higher power")
	fmt.Println("and faster further wear, the exact trade §5.2 of the paper discusses.")
}
