package repro

// Solver hot-path microbenchmarks. Unlike the figure benchmarks in
// bench_test.go (which regenerate whole paper artefacts), these isolate the
// per-solve constant that every Monte-Carlo trial, corner run and aging
// checkpoint pays: one operating point, one transient step, one
// factor+solve. Run with:
//
//	go test -run '^$' -bench 'OperatingPoint|TransientStep' -benchmem
//
// The before/after numbers for the workspace refactor are recorded in
// BENCH_1.json and README.md.

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emc"
	"repro/internal/obs"
)

// BenchmarkOperatingPoint solves the Fig. 3 current-reference testbench
// operating point repeatedly on one circuit, the access pattern of the
// yield and aging studies (mutate device state, re-solve, measure).
func BenchmarkOperatingPoint(b *testing.B) {
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	c := cr.Circuit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.OperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOperatingPointInstrumented is BenchmarkOperatingPoint with the
// whole-stack obs instrumentation live, so the head-to-head with the plain
// benchmark is the measured cost of metrics collection on the solver hot
// path (recorded in BENCH_3.json). The instruments themselves are
// allocation-free, so -benchmem must still report 0 allocs/op.
func BenchmarkOperatingPointInstrumented(b *testing.B) {
	core.EnableMetrics(obs.NewRegistry())
	defer core.EnableMetrics(nil)
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	c := cr.Circuit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.OperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOperatingPointAllocsWithMetrics pins the tentpole zero-cost claim as
// a regression test rather than a benchmark readout. A warm OperatingPoint
// allocates exactly twice — the returned *Solution and its private copy of
// x (the BENCH_1 steady-state figure) — and the instrumentation must add
// zero on top of that, both disabled (nil-sink fast path: one atomic
// pointer load) and with the full registry attached (the instruments never
// allocate after construction).
func TestOperatingPointAllocsWithMetrics(t *testing.T) {
	const baseline = 2 // *Solution + copy of x, per BENCH_1.json
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	c := cr.Circuit
	if _, err := c.OperatingPoint(); err != nil { // warm the workspace
		t.Fatal(err)
	}
	solve := func() {
		if _, err := c.OperatingPoint(); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(20, solve); allocs != baseline {
		t.Errorf("metrics disabled: OperatingPoint allocates %.1f/solve, want %d", allocs, baseline)
	}
	core.EnableMetrics(obs.NewRegistry())
	defer core.EnableMetrics(nil)
	if allocs := testing.AllocsPerRun(20, solve); allocs != baseline {
		t.Errorf("metrics enabled: OperatingPoint allocates %.1f/solve, want %d", allocs, baseline)
	}
}

// BenchmarkOperatingPointCold measures the same solve on a freshly built
// circuit every iteration — no warm start possible, so this isolates the
// ladder + per-iteration stamping/factorisation cost.
func BenchmarkOperatingPointCold(b *testing.B) {
	tech := device.MustTech("180nm")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := emc.BuildCurrentReference(tech, true).Circuit
		if _, err := c.OperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientStep measures the per-timestep cost of a fixed-step
// transient on the Fig. 3 testbench with an EMI sine injected, the inner
// loop of every rectification/immunity sweep. The reported time is for
// transientStepsPerOp steps plus one initial operating point.
const transientStepsPerOp = 64

func BenchmarkTransientStep(b *testing.B) {
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	v, err := cr.Circuit.VSourceByName(cr.InjectName)
	if err != nil {
		b.Fatal(err)
	}
	v.W = circuit.Sine{Ampl: 0.2, Freq: 10e6}
	const step = 1e-9
	spec := circuit.TranSpec{
		Stop: transientStepsPerOp * step, Step: step,
		Integrator: circuit.Trapezoidal, Record: []string{cr.OutNode},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cr.Circuit.Transient(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/transientStepsPerOp, "ns/step")
}
