package repro

// Solver hot-path microbenchmarks. Unlike the figure benchmarks in
// bench_test.go (which regenerate whole paper artefacts), these isolate the
// per-solve constant that every Monte-Carlo trial, corner run and aging
// checkpoint pays: one operating point, one transient step, one
// factor+solve. Run with:
//
//	go test -run '^$' -bench 'OperatingPoint|TransientStep' -benchmem
//
// The before/after numbers for the workspace refactor are recorded in
// BENCH_1.json and README.md.

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/emc"
)

// BenchmarkOperatingPoint solves the Fig. 3 current-reference testbench
// operating point repeatedly on one circuit, the access pattern of the
// yield and aging studies (mutate device state, re-solve, measure).
func BenchmarkOperatingPoint(b *testing.B) {
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	c := cr.Circuit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.OperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOperatingPointCold measures the same solve on a freshly built
// circuit every iteration — no warm start possible, so this isolates the
// ladder + per-iteration stamping/factorisation cost.
func BenchmarkOperatingPointCold(b *testing.B) {
	tech := device.MustTech("180nm")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := emc.BuildCurrentReference(tech, true).Circuit
		if _, err := c.OperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientStep measures the per-timestep cost of a fixed-step
// transient on the Fig. 3 testbench with an EMI sine injected, the inner
// loop of every rectification/immunity sweep. The reported time is for
// transientStepsPerOp steps plus one initial operating point.
const transientStepsPerOp = 64

func BenchmarkTransientStep(b *testing.B) {
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	v, err := cr.Circuit.VSourceByName(cr.InjectName)
	if err != nil {
		b.Fatal(err)
	}
	v.W = circuit.Sine{Ampl: 0.2, Freq: 10e6}
	const step = 1e-9
	spec := circuit.TranSpec{
		Stop: transientStepsPerOp * step, Step: step,
		Integrator: circuit.Trapezoidal, Record: []string{cr.OutNode},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cr.Circuit.Transient(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/transientStepsPerOp, "ns/step")
}
