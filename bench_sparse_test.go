package repro

// Sparse-backend and batched-campaign benchmarks behind BENCH_6.json and
// the README performance crossover table. Two questions are measured:
//
//  1. Where does the sparse Markowitz LU overtake the dense workspace
//     solver as the MNA system grows? (BenchmarkLadderOP, dense vs sparse
//     at matched sizes — the warm re-solve pattern of every Monte-Carlo
//     and aging loop.)
//  2. What does circuit reuse buy a Monte-Carlo campaign?
//     (BenchmarkMCCampaign, Batch=1 vs batched, on the Fig. 3 current
//     reference.)
//
// Run with: make bench-sparse

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emc"
	"repro/internal/jobspec"
	"repro/internal/variation"
)

// buildLadder constructs a resistively-coupled chain of diode-connected
// NMOS stages — an arbitrarily scalable testbench whose MNA matrix keeps a
// few entries per row, the shape real analog netlists have and the sparse
// backend exists for. Unknowns = stages + 2 (stage nodes, rail, source
// branch).
func buildLadder(stages int) *circuit.Circuit {
	tech := device.MustTech("180nm")
	c := circuit.New()
	c.AddVSource("VSUP", "rail", "0", circuit.DC(tech.VDD))
	prev := "rail"
	for i := 0; i < stages; i++ {
		n := fmt.Sprintf("n%04d", i)
		c.AddResistor(fmt.Sprintf("RF%04d", i), "rail", n, 30e3)
		c.AddMOSFET(fmt.Sprintf("M%04d", i), n, n, "0", "0",
			device.NewMosfet(tech.NMOSParams(2e-6, 4*tech.Lmin, 300)))
		c.AddResistor(fmt.Sprintf("RC%04d", i), prev, n, 50e3)
		prev = n
	}
	return c
}

// BenchmarkLadderOP measures the warm operating-point re-solve (perturb
// one device, re-solve — the Monte-Carlo access pattern) on ladders of
// growing size, on both matrix backends.
func BenchmarkLadderOP(b *testing.B) {
	for _, stages := range []int{62, 126, 254, 510} {
		for _, backend := range []circuit.MatrixBackend{circuit.BackendDense, circuit.BackendSparse} {
			c := buildLadder(stages)
			c.SetMatrixBackend(backend)
			if _, err := c.OperatingPoint(); err != nil {
				b.Fatal(err)
			}
			dev := c.MOSFETs()[0].Dev
			name := fmt.Sprintf("%v/n=%d", backend, c.NumUnknowns())
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dev.Mismatch.DeltaVT0 = 1e-3 * float64(i%5)
					if _, err := c.OperatingPoint(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// campaignSim is the Fig. 3 current reference wrapped as a reliability
// Monte-Carlo campaign: per trial, sample mismatch and measure the output
// voltage at time zero plus one mission checkpoint.
func campaignSim(batch int) *core.Simulator {
	tech := device.MustTech("180nm")
	return &core.Simulator{
		Build: func() (*circuit.Circuit, error) {
			return emc.BuildCurrentReference(tech, true).Circuit, nil
		},
		Tech: tech,
		Metrics: []core.Metric{{
			Name: "vout",
			Measure: func(c *circuit.Circuit) (float64, error) {
				sol, err := c.OperatingPoint()
				if err != nil {
					return 0, err
				}
				return sol.Voltage("out"), nil
			},
			Spec: variation.Spec{Name: "vout", Lo: 0, Hi: 10},
		}},
		Seed:  7,
		Batch: batch,
	}
}

// BenchmarkMCCampaign runs a 1000-trial mismatch campaign per iteration
// and reports trials per second — the headline throughput number of the
// batched structure-of-arrays evaluation path.
func BenchmarkMCCampaign(b *testing.B) {
	const trials = 1000
	mission := core.Mission{Duration: 3.156e8, TempK: 350, Checkpoints: 1}
	for _, batch := range []int{1, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s := campaignSim(batch)
			for i := 0; i < b.N; i++ {
				res, err := s.Run(trials, mission)
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors > 0 {
					b.Fatalf("%d trials errored", res.Errors)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// currentRefDeck is the Fig. 3 current reference as a netlist, for the
// service-path campaign benchmark (jobspec re-parses the deck per die
// unless pooled).
const currentRefDeck = `
* fig. 3 current reference, 180nm
.tech 180nm
VSUP rail 0 DC 1.8
RREF rail gate 30k
M1 gate gate 0 0 NMOS W=2u L=720n
M2 out gate 0 0 NMOS W=2u L=720n
RLOAD rail out 10k
CFILT gate 0 20p
.end
`

// BenchmarkMCService measures the jobspec Monte-Carlo dispatch path — the
// one the relsim CLI and HTTP job server share — at 1000 trials per
// iteration, with deck pooling off (batch=1) and on (batch=32, the
// default).
func BenchmarkMCService(b *testing.B) {
	const trials = 1000
	for _, batch := range []int{1, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			spec := &jobspec.Spec{
				Analysis: jobspec.KindMC, Netlist: currentRefDeck, Seed: 7,
				MC: &jobspec.MCParams{Trials: trials, Node: "out", Batch: batch},
			}
			spec.ApplyDefaults()
			for i := 0; i < b.N; i++ {
				res, err := jobspec.Execute(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				if res.MC.Failures > 0 {
					b.Fatalf("%d trials failed", res.MC.Failures)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}
