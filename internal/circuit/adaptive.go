package circuit

import (
	"errors"
	"fmt"
	"math"
)

// AdaptiveSpec configures a variable-step transient analysis with local
// truncation error (LTE) control, the production-simulator counterpart of
// the fixed-step Transient: the step grows through quiescent stretches and
// shrinks around fast edges.
type AdaptiveSpec struct {
	// Stop is the final time in seconds.
	Stop float64
	// MinStep and MaxStep bound the step size.
	MinStep, MaxStep float64
	// LTETol is the per-step error tolerance in volts (predictor-corrector
	// estimate).
	LTETol float64
	// Integrator selects the corrector; Trapezoidal recommended.
	Integrator Integrator
	// Record lists node names to record; empty records every node.
	Record []string
}

// Validate checks the spec.
func (s AdaptiveSpec) Validate() error {
	switch {
	case s.Stop <= 0:
		return fmt.Errorf("circuit: adaptive stop %g must be positive", s.Stop)
	case s.MinStep <= 0 || s.MaxStep < s.MinStep:
		return fmt.Errorf("circuit: bad step bounds [%g, %g]", s.MinStep, s.MaxStep)
	case s.LTETol <= 0:
		return fmt.Errorf("circuit: LTE tolerance %g must be positive", s.LTETol)
	}
	return nil
}

// TransientAdaptive runs a variable-step transient. The error estimate is
// the classic predictor-corrector difference: a linear extrapolation from
// the previous two accepted points predicts the new solution; the distance
// between prediction and the converged corrector bounds the local
// truncation error. Steps failing the tolerance are retried at half the
// size; comfortable steps grow by 1.5×.
func (c *Circuit) TransientAdaptive(spec AdaptiveSpec) (*Waveforms, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c.prepare()
	n := c.NumUnknowns()
	if n == 0 {
		return nil, errors.New("circuit: empty circuit")
	}
	sol, err := c.OperatingPoint()
	if err != nil {
		return nil, fmt.Errorf("circuit: adaptive initial OP: %w", err)
	}
	x := append([]float64(nil), sol.X...)
	for _, e := range c.elements {
		if se, ok := e.(stateful); ok {
			se.initState(x)
		}
	}

	record := spec.Record
	if len(record) == 0 {
		record = c.NodeNames()
	}
	recIdx := make([]int, len(record))
	for i, name := range record {
		recIdx[i] = c.Node(name)
	}
	wf := &Waveforms{nodes: make(map[string][]float64, len(record))}
	sample := func(t float64, xs []float64) {
		wf.Times = append(wf.Times, t)
		for i, name := range record {
			wf.nodes[name] = append(wf.nodes[name], nodeV(xs, recIdx[i]))
		}
	}
	sample(0, x)

	st := &stamp{
		X: x, Mode: modeTran, Intg: spec.Integrator, SrcScale: 1,
	}
	cfg := defaultOPConfig()
	cfg.maxIter = 100

	// State snapshots for rejected steps: element internal state is only
	// committed after acceptance, but st.X must be restorable.
	prevX := append([]float64(nil), x...)
	prevPrevX := append([]float64(nil), x...)
	tPrev, tPrevPrev := 0.0, 0.0
	firstStep := true

	now := 0.0
	dt := spec.MinStep * 4
	if dt > spec.MaxStep {
		dt = spec.MaxStep
	}
	const maxRejects = 40
	rejects := 0
	for now < spec.Stop {
		if dt > spec.Stop-now {
			dt = spec.Stop - now
		}
		if dt < spec.MinStep {
			dt = spec.MinStep
		}
		// Attempt a step from prevX.
		copy(st.X, prevX)
		st.Dt = dt
		st.Time = now + dt
		if err := c.newtonTran(st, cfg); err != nil {
			if dt/2 >= spec.MinStep {
				dt /= 2
				rejects++
				if rejects > maxRejects {
					return nil, fmt.Errorf("circuit: adaptive transient stalled at t=%g: %w", now, err)
				}
				continue
			}
			return nil, fmt.Errorf("circuit: adaptive step at t=%g: %w", now, err)
		}
		// LTE estimate: compare against the linear predictor through the
		// two previous accepted points.
		lte := 0.0
		if !firstStep {
			h0 := tPrev - tPrevPrev
			if h0 > 0 {
				for i := range st.X {
					slope := (prevX[i] - prevPrevX[i]) / h0
					pred := prevX[i] + slope*dt
					if d := math.Abs(st.X[i] - pred); d > lte {
						lte = d
					}
				}
			}
		}
		if lte > spec.LTETol && dt/2 >= spec.MinStep {
			dt /= 2
			rejects++
			if rejects > maxRejects {
				return nil, fmt.Errorf("circuit: adaptive transient cannot meet tolerance at t=%g (lte=%g)", now, lte)
			}
			continue
		}
		// Accept.
		rejects = 0
		for _, e := range c.elements {
			if se, ok := e.(stateful); ok {
				se.accept(st)
			}
		}
		tPrevPrev, tPrev = tPrev, st.Time
		copy(prevPrevX, prevX)
		copy(prevX, st.X)
		now = st.Time
		firstStep = false
		sample(now, st.X)
		// Grow the step when comfortably inside tolerance.
		if lte < spec.LTETol/4 {
			dt *= 1.5
			if dt > spec.MaxStep {
				dt = spec.MaxStep
			}
		}
	}
	c.captureAll(prevX)
	return wf, nil
}
