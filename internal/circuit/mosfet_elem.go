package circuit

import (
	"repro/internal/device"
	"repro/internal/linalg"
)

// MOSFET is the circuit element wrapping a device.Mosfet. The aging and
// variability layers mutate Dev.Mismatch / Dev.Damage between simulations;
// the element reads them on every stamp, so no re-wiring is needed.
type MOSFET struct {
	nm         string
	d, g, s, b int
	// Dev is the compact-model instance. Callers may replace its Mismatch
	// and Damage fields between analyses.
	Dev *device.Mosfet

	// Gate-capacitance companion states for transient analysis.
	cgsState capState
	cgdState capState

	// lastOP caches the most recent converged operating point for AC
	// linearisation and stress extraction.
	lastOP  device.OperatingPoint
	lastVgs float64
	lastVds float64
	lastVbs float64
}

type capState struct {
	vPrev float64
	iPrev float64
}

// Name returns the element name.
func (m *MOSFET) Name() string { return m.nm }

func (m *MOSFET) name() string { return m.nm }

// nonlinear marks the MOSFET's stamps as iterate-dependent; see solver.go.
func (m *MOSFET) nonlinear() {}

// OP returns the operating point captured at the last converged solution.
func (m *MOSFET) OP() device.OperatingPoint { return m.lastOP }

// BiasVoltages returns (vgs, vds, vbs) captured at the last converged
// solution; the aging stress extractor feeds these to the degradation
// models.
func (m *MOSFET) BiasVoltages() (vgs, vds, vbs float64) {
	return m.lastVgs, m.lastVds, m.lastVbs
}

func (m *MOSFET) stampInto(s *stamp) {
	vd, vg, vs, vb := s.v(m.d), s.v(m.g), s.v(m.s), s.v(m.b)
	vgs := vg - vs
	vds := vd - vs
	vbs := vb - vs
	op := m.Dev.Eval(vgs, vds, vbs)

	// Linearised drain current: ID ≈ ID0 + gm·Δvgs + gds·Δvds + gmb·Δvbs.
	// The equivalent current source is the residual at the iterate.
	ieq := op.ID - op.Gm*vgs - op.Gds*vds - op.Gmb*vbs

	// gm stamps (drain row positive, source row negative).
	s.addA(m.d, m.g, op.Gm)
	s.addA(m.d, m.s, -op.Gm)
	s.addA(m.s, m.g, -op.Gm)
	s.addA(m.s, m.s, op.Gm)
	// gds stamps.
	s.addA(m.d, m.d, op.Gds)
	s.addA(m.d, m.s, -op.Gds)
	s.addA(m.s, m.d, -op.Gds)
	s.addA(m.s, m.s, op.Gds)
	// gmb stamps.
	s.addA(m.d, m.b, op.Gmb)
	s.addA(m.d, m.s, -op.Gmb)
	s.addA(m.s, m.b, -op.Gmb)
	s.addA(m.s, m.s, op.Gmb)
	// Residual current source from drain to source.
	s.addRhs(m.d, -ieq)
	s.addRhs(m.s, ieq)

	// Convergence gmin from drain and source to ground.
	if s.Gmin > 0 {
		s.addA(m.d, m.d, s.Gmin)
		s.addA(m.s, m.s, s.Gmin)
	}

	// Post-breakdown gate leakage: a TDDB path splits between gate-source
	// and gate-drain.
	if gl := m.Dev.Damage.GateLeak; gl > 0 {
		half := gl / 2
		stampConductance(s, m.g, m.s, half)
		stampConductance(s, m.g, m.d, half)
	}

	// Gate capacitances in transient mode.
	if s.Mode == modeTran {
		cgs, cgd := m.Dev.GateCapacitance()
		stampCapCompanion(s, m.g, m.s, cgs, &m.cgsState)
		stampCapCompanion(s, m.g, m.d, cgd, &m.cgdState)
	}
}

func stampConductance(s *stamp, a, b int, g float64) {
	s.addA(a, a, g)
	s.addA(b, b, g)
	s.addA(a, b, -g)
	s.addA(b, a, -g)
}

func stampCapCompanion(s *stamp, a, b int, c float64, st *capState) {
	var geq, ieq float64
	switch s.Intg {
	case Trapezoidal:
		geq = 2 * c / s.Dt
		ieq = geq*st.vPrev + st.iPrev
	default:
		geq = c / s.Dt
		ieq = geq * st.vPrev
	}
	s.addA(a, a, geq)
	s.addA(b, b, geq)
	s.addA(a, b, -geq)
	s.addA(b, a, -geq)
	s.addRhs(a, ieq)
	s.addRhs(b, -ieq)
}

func acceptCapCompanion(s *stamp, a, b int, c float64, st *capState) {
	v := s.v(a) - s.v(b)
	switch s.Intg {
	case Trapezoidal:
		geq := 2 * c / s.Dt
		st.iPrev = geq*(v-st.vPrev) - st.iPrev
	default:
		st.iPrev = c / s.Dt * (v - st.vPrev)
	}
	st.vPrev = v
}

func (m *MOSFET) initState(x []float64) {
	vg, vs, vd := nodeV(x, m.g), nodeV(x, m.s), nodeV(x, m.d)
	m.cgsState = capState{vPrev: vg - vs}
	m.cgdState = capState{vPrev: vg - vd}
}

func (m *MOSFET) accept(s *stamp) {
	cgs, cgd := m.Dev.GateCapacitance()
	acceptCapCompanion(s, m.g, m.s, cgs, &m.cgsState)
	acceptCapCompanion(s, m.g, m.d, cgd, &m.cgdState)
	m.capture(s.X)
}

// capture records the bias point and model evaluation at a converged
// solution x.
func (m *MOSFET) capture(x []float64) {
	vd, vg, vs, vb := nodeV(x, m.d), nodeV(x, m.g), nodeV(x, m.s), nodeV(x, m.b)
	m.lastVgs = vg - vs
	m.lastVds = vd - vs
	m.lastVbs = vb - vs
	m.lastOP = m.Dev.Eval(m.lastVgs, m.lastVds, m.lastVbs)
}

func (m *MOSFET) stampAC(mat *linalg.CMatrix, _ []complex128, omega float64, x []float64) {
	vd, vg, vs, vb := nodeV(x, m.d), nodeV(x, m.g), nodeV(x, m.s), nodeV(x, m.b)
	op := m.Dev.Eval(vg-vs, vd-vs, vb-vs)

	addc := func(i, j int, v float64) {
		if i >= 0 && j >= 0 {
			mat.Add(i, j, complex(v, 0))
		}
	}
	// gm
	addc(m.d, m.g, op.Gm)
	addc(m.d, m.s, -op.Gm)
	addc(m.s, m.g, -op.Gm)
	addc(m.s, m.s, op.Gm)
	// gds
	addc(m.d, m.d, op.Gds)
	addc(m.d, m.s, -op.Gds)
	addc(m.s, m.d, -op.Gds)
	addc(m.s, m.s, op.Gds)
	// gmb
	addc(m.d, m.b, op.Gmb)
	addc(m.d, m.s, -op.Gmb)
	addc(m.s, m.b, -op.Gmb)
	addc(m.s, m.s, op.Gmb)
	// Gate caps.
	cgs, cgd := m.Dev.GateCapacitance()
	cstampG(mat, m.g, m.s, complex(0, omega*cgs))
	cstampG(mat, m.g, m.d, complex(0, omega*cgd))
	// Breakdown gate leak.
	if gl := m.Dev.Damage.GateLeak; gl > 0 {
		cstampG(mat, m.g, m.s, complex(gl/2, 0))
		cstampG(mat, m.g, m.d, complex(gl/2, 0))
	}
}
