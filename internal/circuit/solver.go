package circuit

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
)

// nonlinearElement marks elements whose stamps depend on the present
// Newton iterate (MOSFETs, diodes). Every other element stamps values that
// are constant within one Newton solve, so the solver stamps those once
// into a baseline system and replays the baseline with a copy on each
// iteration instead of re-stamping the whole netlist.
type nonlinearElement interface {
	element
	nonlinear()
}

// solver is the per-Circuit reusable solve context: the Newton iteration
// system, the linear-stamp baseline, scratch vectors and the warm-start
// state. It is allocated lazily on the first solve and reused by every
// subsequent operating-point, sweep and transient call, so steady-state
// Newton iterations perform zero heap allocations. Like the Circuit it
// belongs to, it is not safe for concurrent use; independent Circuits own
// independent solvers.
type solver struct {
	ws   *linalg.Workspace // iteration system: matrix A, rhs B, update X
	a0   *linalg.Matrix    // baseline matrix holding the linear stamps
	rhs0 []float64         // baseline right-hand side
	x    []float64         // operating-point iterate scratch
	st   stamp             // reusable stamp for newtonDC

	// lastX holds the most recent converged DC solution; OperatingPoint
	// tries it before falling back to the cold homotopy ladder.
	lastX    []float64
	haveLast bool

	// linear and nonlinear split c.elements by stamp dependence on the
	// iterate; nElems is the element count the split was built for.
	linear    []element
	nonlinear []element
	nElems    int

	// Sparse backend state; see sparse_backend.go. spMat carries the frozen
	// stamping pattern with Vals re-pointed at spA0 (linear baseline) or
	// spIter (per-iteration copy), mirroring the dense a0/ws.A pair.
	useSparse    bool
	sparseFailed bool // numeric fallback tripped: stay dense until rebuilt
	spMat        *sparse.Matrix
	spA0         []float64
	spIter       []float64
	spLU         sparse.LU
	res          []float64 // residual-guard scratch
}

// solver returns the circuit's solve context, (re)building buffers and the
// linear/nonlinear element split when the system size or the element list
// changed since the last solve. Callers must run c.prepare() first so
// branch indices — and therefore NumUnknowns — are final.
func (c *Circuit) solver() *solver {
	n := c.NumUnknowns()
	s := c.slv
	if s == nil {
		s = &solver{}
		c.slv = s
	}
	rebuilt := false
	if s.ws == nil || s.ws.N != n {
		s.ws = linalg.NewWorkspace(n)
		s.a0 = linalg.NewMatrix(n, n)
		s.rhs0 = make([]float64, n)
		s.x = make([]float64, n)
		s.lastX = make([]float64, n)
		s.haveLast = false
		rebuilt = true
	}
	if s.nElems != len(c.elements) {
		s.linear = s.linear[:0]
		s.nonlinear = s.nonlinear[:0]
		for _, e := range c.elements {
			if ne, ok := e.(nonlinearElement); ok {
				s.nonlinear = append(s.nonlinear, ne)
			} else {
				s.linear = append(s.linear, e)
			}
		}
		s.nElems = len(c.elements)
		s.haveLast = false
		rebuilt = true
	}
	if rebuilt {
		c.chooseBackend(s, n)
	}
	return s
}

// noteConverged records x as the latest converged DC solution for warm
// starts.
func (s *solver) noteConverged(x []float64) {
	copy(s.lastX, x)
	s.haveLast = true
}

// stampBaseline points st at the baseline buffers and stamps every linear
// element for the solve configuration in st (mode, time, step, integrator,
// source scale). Within one Newton solve none of those change, so the
// baseline is computed exactly once per solve.
func (c *Circuit) stampBaseline(slv *solver, st *stamp) {
	if slv.useSparse {
		slv.spMat.Vals = slv.spA0
		st.A, st.Rhs = slv.spMat, slv.rhs0
	} else {
		st.A, st.Rhs = slv.a0, slv.rhs0
	}
	st.zeroSystem()
	for _, e := range slv.linear {
		e.stampInto(st)
	}
}

// stampIteration replays the linear baseline into the iteration buffers by
// copy and stamps the nonlinear elements at the present iterate st.X.
func (c *Circuit) stampIteration(slv *solver, st *stamp) {
	ws := slv.ws
	if slv.useSparse {
		copy(slv.spIter, slv.spA0)
		copy(ws.B, slv.rhs0)
		slv.spMat.Vals = slv.spIter
		st.A, st.Rhs = slv.spMat, ws.B
	} else {
		copy(ws.A.Data, slv.a0.Data)
		copy(ws.B, slv.rhs0)
		st.A, st.Rhs = ws.A, ws.B
	}
	for _, e := range slv.nonlinear {
		e.stampInto(st)
	}
}

// zeroVec clears a vector in place.
func zeroVec(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// SetInitialGuess seeds the warm-start state with a previous solution of a
// same-topology circuit, so the next OperatingPoint tries Newton from x
// before running the cold homotopy ladder. Monte-Carlo harnesses use it to
// start every mismatch trial from the nominal solution. The guess is
// copied; a length mismatch with the MNA system is an error.
func (c *Circuit) SetInitialGuess(x []float64) error {
	c.prepare()
	n := c.NumUnknowns()
	if len(x) != n {
		return fmt.Errorf("circuit: initial guess has %d entries, system has %d unknowns", len(x), n)
	}
	slv := c.solver()
	slv.noteConverged(x)
	return nil
}

// ResetSolverState drops the cached warm-start solution, forcing the next
// OperatingPoint to run the cold ladder from zero — useful when a caller
// deliberately wants the zero-bias equilibrium of a multi-stable circuit,
// and used by batched Monte-Carlo harnesses to return a reused circuit to
// the state a fresh Build would produce. A sticky sparse→dense numeric
// fallback is also cleared (by dropping the solver for rebuild), so a
// reused die retries the sparse backend exactly like a fresh one.
func (c *Circuit) ResetSolverState() {
	if c.slv != nil {
		c.slv.haveLast = false
		if c.slv.sparseFailed {
			c.slv = nil
		}
	}
}
