package circuit

import (
	"repro/internal/device"
	"repro/internal/linalg"
)

// Integrator selects the transient integration method.
type Integrator int

const (
	// BackwardEuler is L-stable and heavily damped; robust default.
	BackwardEuler Integrator = iota
	// Trapezoidal is A-stable and second-order accurate; preferred when
	// waveform fidelity matters (e.g. EMI rectification).
	Trapezoidal
)

// String names the integrator.
func (i Integrator) String() string {
	if i == Trapezoidal {
		return "trapezoidal"
	}
	return "backward-euler"
}

// analysisMode distinguishes DC from transient stamping.
type analysisMode int

const (
	modeDC analysisMode = iota
	modeTran
)

// stampTarget abstracts the matrix the elements stamp into: the dense
// linalg.Matrix, the sparse backend's frozen-pattern matrix, or the
// pattern-discovery Builder. Elements only accumulate (Add) and the solver
// only resets (Zero), so this minimal pair is the whole contract.
type stampTarget interface {
	Add(i, j int, v float64)
	Zero()
}

// stamp carries the in-progress MNA system during one Newton iteration.
type stamp struct {
	A    stampTarget
	Rhs  []float64
	X    []float64 // present iterate
	Mode analysisMode
	Time float64
	Dt   float64
	Intg Integrator
	// Gmin is a leak conductance from every non-ground MOSFET/diode node
	// to ground, used for convergence homotopy.
	Gmin float64
	// SrcScale scales all independent sources (source-stepping homotopy).
	SrcScale float64
}

// zeroSystem clears the stamped system (matrix and right-hand side) in
// place — the single reset point shared by the DC and transient solvers.
func (s *stamp) zeroSystem() {
	s.A.Zero()
	for i := range s.Rhs {
		s.Rhs[i] = 0
	}
}

// v returns the iterate voltage at node index i (0 for ground).
func (s *stamp) v(i int) float64 {
	if i < 0 {
		return 0
	}
	return s.X[i]
}

// addA accumulates into the system matrix, skipping ground rows/columns.
func (s *stamp) addA(i, j int, val float64) {
	if i < 0 || j < 0 {
		return
	}
	s.A.Add(i, j, val)
}

// addRhs accumulates into the right-hand side, skipping ground.
func (s *stamp) addRhs(i int, val float64) {
	if i < 0 {
		return
	}
	s.Rhs[i] += val
}

// element is anything that can stamp itself into the MNA system.
type element interface {
	name() string
	stampInto(s *stamp)
}

// branchElement is an element that owns an extra MNA unknown (its branch
// current).
type branchElement interface {
	element
	assignBranch(c *Circuit)
	branchIndex() int
}

// stateful elements carry integrator state across transient steps.
type stateful interface {
	element
	// initState captures the element state from a converged DC solution x.
	initState(x []float64)
	// accept commits the state after a converged transient step.
	accept(s *stamp)
}

// acStamper elements contribute to the small-signal complex system. The
// linearisation point is the element state captured by the last OP solve
// (lastOP for MOSFETs, the stored solution voltages otherwise).
type acStamper interface {
	stampAC(m *linalg.CMatrix, rhs []complex128, omega float64, x []float64)
}

// ---------------------------------------------------------------- resistor

type resistor struct {
	nm   string
	a, b int
	g    float64
}

func (r *resistor) name() string { return r.nm }

func (r *resistor) stampInto(s *stamp) {
	s.addA(r.a, r.a, r.g)
	s.addA(r.b, r.b, r.g)
	s.addA(r.a, r.b, -r.g)
	s.addA(r.b, r.a, -r.g)
}

func (r *resistor) stampAC(m *linalg.CMatrix, _ []complex128, _ float64, _ []float64) {
	cstampG(m, r.a, r.b, complex(r.g, 0))
}

// cstampG stamps a two-terminal admittance into a complex matrix.
func cstampG(m *linalg.CMatrix, a, b int, y complex128) {
	if a >= 0 {
		m.Add(a, a, y)
	}
	if b >= 0 {
		m.Add(b, b, y)
	}
	if a >= 0 && b >= 0 {
		m.Add(a, b, -y)
		m.Add(b, a, -y)
	}
}

// --------------------------------------------------------------- capacitor

type capacitor struct {
	nm    string
	a, b  int
	c     float64
	vPrev float64
	iPrev float64
}

func (c *capacitor) name() string { return c.nm }

func (c *capacitor) stampInto(s *stamp) {
	if s.Mode == modeDC {
		// Open circuit at DC; a tiny conductance keeps floating nodes
		// attached to the system.
		const gleak = 1e-12
		s.addA(c.a, c.a, gleak)
		s.addA(c.b, c.b, gleak)
		s.addA(c.a, c.b, -gleak)
		s.addA(c.b, c.a, -gleak)
		return
	}
	var geq, ieq float64
	switch s.Intg {
	case Trapezoidal:
		geq = 2 * c.c / s.Dt
		ieq = geq*c.vPrev + c.iPrev
	default: // Backward Euler
		geq = c.c / s.Dt
		ieq = geq * c.vPrev
	}
	s.addA(c.a, c.a, geq)
	s.addA(c.b, c.b, geq)
	s.addA(c.a, c.b, -geq)
	s.addA(c.b, c.a, -geq)
	s.addRhs(c.a, ieq)
	s.addRhs(c.b, -ieq)
}

func (c *capacitor) initState(x []float64) {
	c.vPrev = nodeV(x, c.a) - nodeV(x, c.b)
	c.iPrev = 0
}

func (c *capacitor) accept(s *stamp) {
	v := s.v(c.a) - s.v(c.b)
	switch s.Intg {
	case Trapezoidal:
		geq := 2 * c.c / s.Dt
		c.iPrev = geq*(v-c.vPrev) - c.iPrev
	default:
		c.iPrev = c.c / s.Dt * (v - c.vPrev)
	}
	c.vPrev = v
}

func (c *capacitor) stampAC(m *linalg.CMatrix, _ []complex128, omega float64, _ []float64) {
	cstampG(m, c.a, c.b, complex(0, omega*c.c))
}

func nodeV(x []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return x[i]
}

// ---------------------------------------------------------------- inductor

type inductor struct {
	nm     string
	a, b   int
	l      float64
	branch int
	iPrev  float64
	vPrev  float64
}

func (l *inductor) name() string     { return l.nm }
func (l *inductor) branchIndex() int { return l.branch }
func (l *inductor) assignBranch(c *Circuit) {
	l.branch = c.newBranch()
}

func (l *inductor) stampInto(s *stamp) {
	br := l.branch
	// KCL: branch current enters a, leaves b.
	s.addA(l.a, br, 1)
	s.addA(l.b, br, -1)
	// Branch equation row.
	s.addA(br, l.a, 1)
	s.addA(br, l.b, -1)
	if s.Mode == modeDC {
		// v = 0 (short): row already reads va - vb = 0.
		return
	}
	switch s.Intg {
	case Trapezoidal:
		// v + vPrev = (2L/dt)(i - iPrev)  =>  va-vb - (2L/dt) i = -vPrev - (2L/dt) iPrev
		k := 2 * l.l / s.Dt
		s.addA(br, br, -k)
		s.addRhs(br, -l.vPrev-k*l.iPrev)
	default:
		// v = (L/dt)(i - iPrev)
		k := l.l / s.Dt
		s.addA(br, br, -k)
		s.addRhs(br, -k*l.iPrev)
	}
}

func (l *inductor) initState(x []float64) {
	l.iPrev = x[l.branch]
	l.vPrev = 0
}

func (l *inductor) accept(s *stamp) {
	l.iPrev = s.X[l.branch]
	l.vPrev = s.v(l.a) - s.v(l.b)
}

func (l *inductor) stampAC(m *linalg.CMatrix, _ []complex128, omega float64, _ []float64) {
	br := l.branch
	m.Add(br, br, complex(0, -omega*l.l))
	if l.a >= 0 {
		m.Add(l.a, br, 1)
		m.Add(br, l.a, 1)
	}
	if l.b >= 0 {
		m.Add(l.b, br, -1)
		m.Add(br, l.b, -1)
	}
}

// ------------------------------------------------------------------ VSource

// VSource is an independent voltage source. ACMag sets its small-signal
// magnitude for AC analysis (0 for quiet sources).
type VSource struct {
	nm     string
	p, n   int
	branch int
	// W is the large-signal waveform; replaceable between runs (the EMC
	// harness swaps a DC supply for DC+sine).
	W Waveform
	// ACMag is the small-signal stimulus magnitude in AC analysis.
	ACMag float64
}

func (v *VSource) name() string     { return v.nm }
func (v *VSource) branchIndex() int { return v.branch }
func (v *VSource) assignBranch(c *Circuit) {
	v.branch = c.newBranch()
}

func (v *VSource) stampInto(s *stamp) {
	br := v.branch
	s.addA(v.p, br, 1)
	s.addA(v.n, br, -1)
	s.addA(br, v.p, 1)
	s.addA(br, v.n, -1)
	t := s.Time
	if s.Mode == modeDC {
		t = 0
	}
	s.addRhs(br, v.W.At(t)*s.SrcScale)
}

func (v *VSource) stampAC(m *linalg.CMatrix, rhs []complex128, _ float64, _ []float64) {
	br := v.branch
	if v.p >= 0 {
		m.Add(v.p, br, 1)
		m.Add(br, v.p, 1)
	}
	if v.n >= 0 {
		m.Add(v.n, br, -1)
		m.Add(br, v.n, -1)
	}
	rhs[br] += complex(v.ACMag, 0)
}

// ------------------------------------------------------------------ ISource

// ISource is an independent current source; current flows from p through
// the source to n (i.e. it injects into node n and draws from node p when
// the value is positive... conventionally: positive value pushes current
// out of n into p externally). We adopt the SPICE convention: a positive
// source value forces current from p to n through the source, which
// *extracts* from node p and *injects* into node n.
type ISource struct {
	nm   string
	p, n int
	W    Waveform
	// ACMag is the small-signal stimulus magnitude in AC analysis.
	ACMag float64
}

func (i *ISource) name() string { return i.nm }

func (i *ISource) stampInto(s *stamp) {
	t := s.Time
	if s.Mode == modeDC {
		t = 0
	}
	val := i.W.At(t) * s.SrcScale
	s.addRhs(i.p, -val)
	s.addRhs(i.n, val)
}

func (i *ISource) stampAC(_ *linalg.CMatrix, rhs []complex128, _ float64, _ []float64) {
	if i.p >= 0 {
		rhs[i.p] -= complex(i.ACMag, 0)
	}
	if i.n >= 0 {
		rhs[i.n] += complex(i.ACMag, 0)
	}
}

// -------------------------------------------------------------------- VCCS

type vccs struct {
	nm           string
	p, n, cp, cn int
	g            float64
}

func (v *vccs) name() string { return v.nm }

func (v *vccs) stampInto(s *stamp) {
	s.addA(v.p, v.cp, v.g)
	s.addA(v.p, v.cn, -v.g)
	s.addA(v.n, v.cp, -v.g)
	s.addA(v.n, v.cn, v.g)
}

func (v *vccs) stampAC(m *linalg.CMatrix, _ []complex128, _ float64, _ []float64) {
	g := complex(v.g, 0)
	if v.p >= 0 && v.cp >= 0 {
		m.Add(v.p, v.cp, g)
	}
	if v.p >= 0 && v.cn >= 0 {
		m.Add(v.p, v.cn, -g)
	}
	if v.n >= 0 && v.cp >= 0 {
		m.Add(v.n, v.cp, -g)
	}
	if v.n >= 0 && v.cn >= 0 {
		m.Add(v.n, v.cn, g)
	}
}

// -------------------------------------------------------------------- VCVS

type vcvs struct {
	nm           string
	p, n, cp, cn int
	gain         float64
	branch       int
}

func (e *vcvs) name() string     { return e.nm }
func (e *vcvs) branchIndex() int { return e.branch }
func (e *vcvs) assignBranch(c *Circuit) {
	e.branch = c.newBranch()
}

func (e *vcvs) stampInto(s *stamp) {
	br := e.branch
	// KCL contribution of the branch current.
	s.addA(e.p, br, 1)
	s.addA(e.n, br, -1)
	// Branch equation: V(p,n) − gain·V(cp,cn) = 0.
	s.addA(br, e.p, 1)
	s.addA(br, e.n, -1)
	s.addA(br, e.cp, -e.gain)
	s.addA(br, e.cn, e.gain)
}

func (e *vcvs) stampAC(m *linalg.CMatrix, _ []complex128, _ float64, _ []float64) {
	br := e.branch
	add := func(i, j int, v float64) {
		if i >= 0 && j >= 0 {
			m.Add(i, j, complex(v, 0))
		}
	}
	add(e.p, br, 1)
	add(e.n, br, -1)
	add(br, e.p, 1)
	add(br, e.n, -1)
	add(br, e.cp, -e.gain)
	add(br, e.cn, e.gain)
}

// ------------------------------------------------------------------- diode

type diodeElem struct {
	nm   string
	a, k int
	dev  *device.Diode
}

func (d *diodeElem) name() string { return d.nm }

// nonlinear marks the diode's stamps as iterate-dependent; see solver.go.
func (d *diodeElem) nonlinear() {}

func (d *diodeElem) stampInto(s *stamp) {
	v := s.v(d.a) - s.v(d.k)
	i, g := d.dev.Eval(v)
	g += s.Gmin
	ieq := i - g*v
	s.addA(d.a, d.a, g)
	s.addA(d.k, d.k, g)
	s.addA(d.a, d.k, -g)
	s.addA(d.k, d.a, -g)
	s.addRhs(d.a, -ieq)
	s.addRhs(d.k, ieq)
}

func (d *diodeElem) stampAC(m *linalg.CMatrix, _ []complex128, _ float64, x []float64) {
	v := nodeV(x, d.a) - nodeV(x, d.k)
	_, g := d.dev.Eval(v)
	cstampG(m, d.a, d.k, complex(g, 0))
}
