package circuit

import "math"

// Waveform is the time-dependent value of an independent source. At t < 0
// (DC analyses) sources report their At(0) value.
type Waveform interface {
	// At returns the source value at time t (volts or amperes).
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At returns the constant value.
func (d DC) At(float64) float64 { return float64(d) }

// Sine is an offset sinusoid: Offset + Ampl·sin(2π·Freq·t + Phase).
type Sine struct {
	Offset float64
	Ampl   float64
	Freq   float64
	Phase  float64 // radians
}

// At returns the sine value at t.
func (s Sine) At(t float64) float64 {
	return s.Offset + s.Ampl*math.Sin(2*math.Pi*s.Freq*t+s.Phase)
}

// Pulse is a SPICE-style pulse train.
type Pulse struct {
	Low, High  float64
	Delay      float64
	Rise, Fall float64
	Width      float64
	Period     float64
}

// At returns the pulse value at t.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return p.Low
	}
	tt := t - p.Delay
	if p.Period > 0 {
		tt = math.Mod(tt, p.Period)
	}
	switch {
	case tt < p.Rise:
		if p.Rise == 0 {
			return p.High
		}
		return p.Low + (p.High-p.Low)*tt/p.Rise
	case tt < p.Rise+p.Width:
		return p.High
	case tt < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.Low
		}
		return p.High - (p.High-p.Low)*(tt-p.Rise-p.Width)/p.Fall
	default:
		return p.Low
	}
}

// PWL is a piecewise-linear waveform through (Times[i], Values[i]) points;
// it clamps outside the time range. Times must be strictly increasing.
type PWL struct {
	Times  []float64
	Values []float64
}

// At returns the interpolated value at t.
func (p PWL) At(t float64) float64 {
	n := len(p.Times)
	if n == 0 {
		return 0
	}
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.Times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (t - p.Times[lo]) / (p.Times[hi] - p.Times[lo])
	return p.Values[lo] + f*(p.Values[hi]-p.Values[lo])
}

// Sum superimposes waveforms; used to add EMI on top of a DC bias.
type Sum []Waveform

// At returns the sum of all member waveforms at t.
func (s Sum) At(t float64) float64 {
	total := 0.0
	for _, w := range s {
		total += w.At(t)
	}
	return total
}
