package circuit

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/mathx"
)

func TestVoltageDivider(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", DC(10))
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddResistor("R2", "out", "0", 1e3)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("out"), 5, 1e-9, 1e-9) {
		t.Errorf("divider output = %g, want 5", sol.Voltage("out"))
	}
	i, err := sol.BranchCurrent("V1")
	if err != nil {
		t.Fatal(err)
	}
	// Source supplies 5 mA; MNA convention stores current flowing from +
	// terminal through the source, which is negative here.
	if !mathx.ApproxEqual(i, -5e-3, 1e-9, 1e-12) {
		t.Errorf("source current = %g, want -5mA", i)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := New()
	c.AddISource("I1", "0", "out", DC(1e-3))
	c.AddResistor("R1", "out", "0", 2e3)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("out"), 2, 1e-9, 1e-12) {
		t.Errorf("V(out) = %g, want 2", sol.Voltage("out"))
	}
}

func TestSolutionUnknownNodePanics(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddResistor("R1", "a", "0", 1)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown node")
		}
	}()
	sol.Voltage("nope")
}

func TestDuplicateElementPanics(t *testing.T) {
	c := New()
	c.AddResistor("R1", "a", "0", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate name")
		}
	}()
	c.AddResistor("R1", "b", "0", 1)
}

func TestDiodeRectifierOP(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", DC(5))
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddDiode("D1", "out", "0", device.NewDiode(300))
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	v := sol.Voltage("out")
	if v < 0.4 || v > 0.8 {
		t.Errorf("diode drop = %g, want ~0.6-0.7", v)
	}
}

func TestNMOSCommonSourceOP(t *testing.T) {
	tech := device.MustTech("180nm")
	c := New()
	c.AddVSource("VDD", "vdd", "0", DC(1.8))
	c.AddVSource("VG", "g", "0", DC(0.9))
	c.AddResistor("RD", "vdd", "d", 10e3)
	m := device.NewMosfet(tech.NMOSParams(2e-6, 180e-9, 300))
	c.AddMOSFET("M1", "d", "g", "0", "0", m)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	vd := sol.Voltage("d")
	if vd <= 0 || vd >= 1.8 {
		t.Fatalf("drain voltage %g outside supply range", vd)
	}
	// KCL check: resistor current equals drain current.
	ir := (1.8 - vd) / 10e3
	mos, err := c.MOSFETByName("M1")
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(ir, mos.OP().ID, 1e-6, 1e-12) {
		t.Errorf("KCL violated: IR=%g ID=%g", ir, mos.OP().ID)
	}
}

func TestCMOSInverterVTC(t *testing.T) {
	tech := device.MustTech("90nm")
	c := New()
	c.AddVSource("VDD", "vdd", "0", DC(1.1))
	c.AddVSource("VIN", "in", "0", DC(0))
	mn := device.NewMosfet(tech.NMOSParams(1e-6, 90e-9, 300))
	mp := device.NewMosfet(tech.PMOSParams(2e-6, 90e-9, 300))
	c.AddMOSFET("MN", "out", "in", "0", "0", mn)
	c.AddMOSFET("MP", "out", "in", "vdd", "vdd", mp)
	vins := mathx.Linspace(0, 1.1, 23)
	sols, err := c.DCSweep("VIN", vins)
	if err != nil {
		t.Fatal(err)
	}
	vouts := make([]float64, len(sols))
	for i, s := range sols {
		vouts[i] = s.Voltage("out")
	}
	// Monotone falling VTC from ~VDD to ~0.
	if vouts[0] < 1.0 {
		t.Errorf("V(out) at VIN=0 is %g, want ~VDD", vouts[0])
	}
	if vouts[len(vouts)-1] > 0.1 {
		t.Errorf("V(out) at VIN=VDD is %g, want ~0", vouts[len(vouts)-1])
	}
	for i := 1; i < len(vouts); i++ {
		if vouts[i] > vouts[i-1]+1e-6 {
			t.Fatalf("VTC not monotone at VIN=%g: %g -> %g", vins[i], vouts[i-1], vouts[i])
		}
	}
}

func TestRCTransientCharging(t *testing.T) {
	// Step response: V(out) = 5(1 - exp(-t/RC)), RC = 1 ms.
	for _, intg := range []Integrator{BackwardEuler, Trapezoidal} {
		c := New()
		c.AddVSource("V1", "in", "0", Pulse{Low: 0, High: 5, Rise: 1e-9, Width: 1, Period: 2})
		c.AddResistor("R1", "in", "out", 1e3)
		c.AddCapacitor("C1", "out", "0", 1e-6)
		wf, err := c.Transient(TranSpec{Stop: 5e-3, Step: 5e-6, Integrator: intg, Record: []string{"out"}})
		if err != nil {
			t.Fatalf("%v: %v", intg, err)
		}
		out := wf.Node("out")
		// Compare at t = 1ms, 2ms, 5ms.
		for _, chk := range []struct{ t, want float64 }{
			{1e-3, 5 * (1 - math.Exp(-1))},
			{2e-3, 5 * (1 - math.Exp(-2))},
			{5e-3, 5 * (1 - math.Exp(-5))},
		} {
			idx := int(chk.t/5e-6 + 0.5)
			got := out[idx]
			if math.Abs(got-chk.want) > 0.02 {
				t.Errorf("%v at t=%g: V=%g, want %g", intg, chk.t, got, chk.want)
			}
		}
	}
}

func TestTrapezoidalMoreAccurateThanBE(t *testing.T) {
	// On a sine-driven RC with a coarse step, trapezoidal should track the
	// analytic solution more closely than Backward-Euler.
	run := func(intg Integrator) float64 {
		c := New()
		f := 1e3
		c.AddVSource("V1", "in", "0", Sine{Ampl: 1, Freq: f})
		c.AddResistor("R1", "in", "out", 1e3)
		c.AddCapacitor("C1", "out", "0", 1e-7)
		wf, err := c.Transient(TranSpec{Stop: 5e-3, Step: 2e-5, Integrator: intg, Record: []string{"out"}})
		if err != nil {
			t.Fatal(err)
		}
		// Analytic steady-state: |H| = 1/sqrt(1+(wRC)^2), phase = -atan(wRC).
		w := 2 * math.Pi * f
		rc := 1e3 * 1e-7
		mag := 1 / math.Sqrt(1+w*rc*w*rc)
		ph := -math.Atan(w * rc)
		worst := 0.0
		for i, tm := range wf.Times {
			if tm < 2e-3 { // skip start-up transient
				continue
			}
			want := mag * math.Sin(w*tm+ph)
			if d := math.Abs(wf.Node("out")[i] - want); d > worst {
				worst = d
			}
		}
		return worst
	}
	errBE := run(BackwardEuler)
	errTR := run(Trapezoidal)
	if errTR >= errBE {
		t.Errorf("trapezoidal error %g not better than BE %g", errTR, errBE)
	}
}

func TestInductorDCShort(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", DC(1))
	c.AddResistor("R1", "in", "mid", 100)
	c.AddInductor("L1", "mid", "out", 1e-3)
	c.AddResistor("R2", "out", "0", 100)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// DC: inductor is a short, so mid == out == 0.5 V.
	if !mathx.ApproxEqual(sol.Voltage("mid"), sol.Voltage("out"), 1e-9, 1e-12) {
		t.Errorf("inductor not a DC short: %g vs %g", sol.Voltage("mid"), sol.Voltage("out"))
	}
	il, err := sol.BranchCurrent("L1")
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(il, 5e-3, 1e-9, 1e-12) {
		t.Errorf("inductor current = %g, want 5 mA", il)
	}
}

func TestRLTransientRise(t *testing.T) {
	// L/R time constant: i(t) = (V/R)(1-exp(-tR/L)).
	c := New()
	c.AddVSource("V1", "in", "0", Pulse{Low: 0, High: 1, Rise: 1e-9, Width: 1, Period: 2})
	c.AddResistor("R1", "in", "mid", 100)
	c.AddInductor("L1", "mid", "0", 10e-3) // tau = 100 µs
	wf, err := c.Transient(TranSpec{Stop: 500e-6, Step: 1e-6, Integrator: Trapezoidal, Record: []string{"mid"}})
	if err != nil {
		t.Fatal(err)
	}
	// At t = tau the inductor voltage should be V·exp(-1).
	idx := 100 // t = tau = 100 µs at 1 µs step
	got := wf.Node("mid")[idx]
	want := math.Exp(-1)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("V(L) at tau = %g, want %g", got, want)
	}
}

func TestVCCS(t *testing.T) {
	c := New()
	c.AddVSource("V1", "ctl", "0", DC(2))
	c.AddResistor("Rctl", "ctl", "0", 1e6)
	c.AddVCCS("G1", "0", "out", "ctl", "0", 1e-3) // 1 mS: injects 2 mA into out
	c.AddResistor("RL", "out", "0", 500)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("out"), 1.0, 1e-9, 1e-12) {
		t.Errorf("VCCS output = %g, want 1.0", sol.Voltage("out"))
	}
}

func TestACRCLowPass(t *testing.T) {
	c := New()
	v := c.AddVSource("V1", "in", "0", DC(0))
	v.ACMag = 1
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddCapacitor("C1", "out", "0", 1e-9)
	fc := 1 / (2 * math.Pi * 1e3 * 1e-9)
	pts, err := c.AC([]float64{fc / 100, fc, fc * 100})
	if err != nil {
		t.Fatal(err)
	}
	if m := pts[0].Mag("out"); math.Abs(m-1) > 0.001 {
		t.Errorf("passband gain = %g, want 1", m)
	}
	if m := pts[1].Mag("out"); math.Abs(m-1/math.Sqrt2) > 0.001 {
		t.Errorf("corner gain = %g, want %g", m, 1/math.Sqrt2)
	}
	if m := pts[2].Mag("out"); m > 0.011 {
		t.Errorf("stopband gain = %g, want ~0.01", m)
	}
	// Phase at the corner is -45°.
	if ph := pts[1].PhaseDeg("out"); math.Abs(ph+45) > 0.5 {
		t.Errorf("corner phase = %g°, want -45°", ph)
	}
}

func TestACMOSFETAmplifierGain(t *testing.T) {
	// Common-source amplifier small-signal gain ≈ -gm·(RD||ro).
	tech := device.MustTech("180nm")
	c := New()
	c.AddVSource("VDD", "vdd", "0", DC(1.8))
	vin := c.AddVSource("VG", "g", "0", DC(0.7))
	vin.ACMag = 1
	c.AddResistor("RD", "vdd", "d", 20e3)
	m := device.NewMosfet(tech.NMOSParams(4e-6, 360e-9, 300))
	c.AddMOSFET("M1", "d", "g", "0", "0", m)
	pts, err := c.AC([]float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	gain := pts[0].Mag("d")
	mos, _ := c.MOSFETByName("M1")
	op := mos.OP()
	want := op.Gm / (1.0/20e3 + op.Gds)
	if !mathx.ApproxEqual(gain, want, 0.01, 0) {
		t.Errorf("AC gain %g, analytic gm/(GD+gds) = %g", gain, want)
	}
	if gain < 2 {
		t.Errorf("gain %g too small — bias point wrong?", gain)
	}
}

func TestTransientSineRectification(t *testing.T) {
	// A diode rectifier driven by a sine should produce a positive mean
	// output — the same nonlinear mechanism that causes EMI-induced DC
	// shift.
	c := New()
	c.AddVSource("V1", "in", "0", Sine{Ampl: 2, Freq: 1e3})
	c.AddResistor("Rs", "in", "a", 100)
	c.AddDiode("D1", "a", "out", device.NewDiode(300))
	c.AddResistor("RL", "out", "0", 10e3)
	c.AddCapacitor("CL", "out", "0", 1e-6)
	wf, err := c.Transient(TranSpec{Stop: 10e-3, Step: 2e-6, Record: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	out := wf.Node("out")
	mean := mathx.Mean(out[len(out)/2:])
	if mean < 0.5 {
		t.Errorf("rectified mean = %g, want > 0.5", mean)
	}
}

func TestWaveformsUnknownNodePanics(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddResistor("R1", "a", "0", 1e3)
	c.AddCapacitor("C1", "a", "0", 1e-9)
	wf, err := c.Transient(TranSpec{Stop: 1e-6, Step: 1e-8, Record: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if !wf.HasNode("a") || wf.HasNode("b") {
		t.Error("HasNode wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	wf.Node("b")
}

func TestEmptyCircuitErrors(t *testing.T) {
	c := New()
	if _, err := c.OperatingPoint(); err == nil {
		t.Error("empty OP should fail")
	}
	if _, err := c.Transient(TranSpec{Stop: 1, Step: 0.1}); err == nil {
		t.Error("empty transient should fail")
	}
}

func TestBadTranSpec(t *testing.T) {
	c := New()
	c.AddResistor("R1", "a", "0", 1)
	if _, err := c.Transient(TranSpec{Stop: 0, Step: 1}); err == nil {
		t.Error("zero stop accepted")
	}
	if _, err := c.Transient(TranSpec{Stop: 1, Step: -1}); err == nil {
		t.Error("negative step accepted")
	}
}

func TestACErrorsOnNonPositiveFreq(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddResistor("R1", "a", "0", 1)
	if _, err := c.AC([]float64{0}); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestElementAccessors(t *testing.T) {
	c := New()
	tech := device.MustTech("65nm")
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddISource("I1", "a", "0", DC(1e-6))
	c.AddMOSFET("M1", "a", "a", "0", "0", device.NewMosfet(tech.NMOSParams(1e-6, 65e-9, 300)))
	if _, err := c.VSourceByName("V1"); err != nil {
		t.Error(err)
	}
	if _, err := c.VSourceByName("I1"); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := c.ISourceByName("I1"); err != nil {
		t.Error(err)
	}
	if _, err := c.MOSFETByName("M1"); err != nil {
		t.Error(err)
	}
	if _, err := c.MOSFETByName("V1"); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := c.MOSFETByName("nope"); err == nil {
		t.Error("missing element accepted")
	}
	if got := len(c.MOSFETs()); got != 1 {
		t.Errorf("MOSFETs() returned %d", got)
	}
	names := c.ElementNames()
	if len(names) != 3 || names[0] != "I1" {
		t.Errorf("ElementNames = %v", names)
	}
}

func TestMOSFETGateLeakLoadsDivider(t *testing.T) {
	// A broken-down gate oxide must load a resistive divider at the gate.
	tech := device.MustTech("65nm")
	build := func(leak float64) float64 {
		c := New()
		c.AddVSource("VDD", "vdd", "0", DC(1.1))
		c.AddResistor("R1", "vdd", "g", 100e3)
		c.AddResistor("R2", "g", "0", 100e3)
		m := device.NewMosfet(tech.NMOSParams(1e-6, 65e-9, 300))
		m.Damage = device.FreshDamage()
		m.Damage.GateLeak = leak
		c.AddMOSFET("M1", "d", "g", "0", "0", m)
		c.AddResistor("RD", "vdd", "d", 10e3)
		sol, err := c.OperatingPoint()
		if err != nil {
			t.Fatal(err)
		}
		return sol.Voltage("g")
	}
	fresh := build(0)
	broken := build(1e-5) // 100 kΩ leak
	if !(broken < fresh) {
		t.Errorf("gate leak did not pull the divider: fresh=%g broken=%g", fresh, broken)
	}
	if fresh < 0.54 || fresh > 0.56 {
		t.Errorf("fresh divider = %g, want ~0.55", fresh)
	}
}
