package circuit_test

import (
	"fmt"

	"repro/internal/circuit"
)

// Example shows the minimal simulator flow: build a divider, solve its
// operating point, read a node voltage.
func Example() {
	c := circuit.New()
	c.AddVSource("V1", "in", "0", circuit.DC(3.0))
	c.AddResistor("R1", "in", "out", 2e3)
	c.AddResistor("R2", "out", "0", 1e3)
	sol, err := c.OperatingPoint()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("V(out) = %.2f V\n", sol.Voltage("out"))
	// Output:
	// V(out) = 1.00 V
}

// ExampleCircuit_Transient charges an RC and samples the classic 63% point
// at one time constant.
func ExampleCircuit_Transient() {
	c := circuit.New()
	c.AddVSource("V1", "in", "0", circuit.Pulse{High: 1, Rise: 1e-9, Width: 1, Period: 2})
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddCapacitor("C1", "out", "0", 1e-6) // tau = 1 ms
	wf, err := c.Transient(circuit.TranSpec{
		Stop: 1e-3, Step: 1e-6,
		Integrator: circuit.Trapezoidal,
		Record:     []string{"out"},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	out := wf.Node("out")
	fmt.Printf("V(out) at t=tau: %.2f V\n", out[len(out)-1])
	// Output:
	// V(out) at t=tau: 0.63 V
}

// ExampleCircuit_AC measures the -3 dB corner of an RC low-pass.
func ExampleCircuit_AC() {
	c := circuit.New()
	v := c.AddVSource("V1", "in", "0", circuit.DC(0))
	v.ACMag = 1
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddCapacitor("C1", "out", "0", 159.155e-9) // fc = 1 kHz
	pts, err := c.AC([]float64{1e3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("gain at fc: %.2f dB\n", pts[0].MagDB("out"))
	// Output:
	// gain at fc: -3.01 dB
}
