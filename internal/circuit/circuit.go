// Package circuit implements a small but complete analog circuit simulator
// based on modified nodal analysis (MNA): nonlinear DC operating point with
// gmin and source stepping, fixed-step transient analysis with
// Backward-Euler or trapezoidal integration, DC sweeps and small-signal AC
// analysis. It is the substrate on which every experiment in this
// repository runs — degradation, variability, EMC and adaptation studies
// all ultimately resolve to circuit simulations here.
package circuit

import (
	"fmt"
	"sort"

	"repro/internal/device"
)

// Ground is the node index of the reference node "0".
const Ground = -1

// Circuit is a netlist of elements connected between named nodes. Build one
// with New and the Add* methods; it is not safe for concurrent mutation,
// but independent Circuits may be simulated concurrently.
type Circuit struct {
	nodeIndex map[string]int
	nodeNames []string
	elements  []element
	byName    map[string]element
	branches  int
	// slv is the lazily built reusable solve context (matrices, scratch
	// vectors, warm-start state); see solver.go.
	slv *solver
	// newtonIters accumulates Newton iterations across every solve on
	// this circuit — run telemetry for Monte-Carlo harnesses.
	newtonIters int64
	// backend selects the linear-solver matrix representation; see
	// SetMatrixBackend.
	backend MatrixBackend
}

// MatrixBackend selects the linear-solver matrix representation.
type MatrixBackend int

const (
	// BackendAuto picks sparse for large, sparse MNA systems and dense
	// otherwise (the default). The thresholds keep every small circuit on
	// the dense path, so existing results are bit-identical.
	BackendAuto MatrixBackend = iota
	// BackendDense forces the dense LU regardless of size.
	BackendDense
	// BackendSparse forces the sparse Markowitz LU regardless of size
	// (still subject to the runtime dense fallback on numeric failure).
	BackendSparse
)

// String names the backend.
func (b MatrixBackend) String() string {
	switch b {
	case BackendDense:
		return "dense"
	case BackendSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// SetMatrixBackend selects how the MNA system is represented and factored.
// Changing the backend drops the cached solve context (including the
// warm-start state); the next solve rebuilds it.
func (c *Circuit) SetMatrixBackend(b MatrixBackend) {
	if c.backend == b {
		return
	}
	c.backend = b
	c.slv = nil
}

// UsingSparse reports whether the most recently built solve context runs
// on the sparse backend — observability for tests and benchmarks.
func (c *Circuit) UsingSparse() bool {
	return c.slv != nil && c.slv.useSparse
}

// NewtonIterations returns the cumulative number of Newton iterations
// performed by every DC, sweep and transient solve on this circuit. It is
// the per-trial cost metric that reliability runs aggregate into their
// telemetry.
func (c *Circuit) NewtonIterations() int64 { return c.newtonIters }

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		nodeIndex: make(map[string]int),
		byName:    make(map[string]element),
	}
}

// Node interns a node name and returns its index; "0" and "gnd" map to
// Ground.
func (c *Circuit) Node(name string) int {
	if name == "0" || name == "gnd" || name == "GND" {
		return Ground
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// NodeNames returns the non-ground node names in index order.
func (c *Circuit) NodeNames() []string {
	return append([]string(nil), c.nodeNames...)
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NumUnknowns returns the size of the MNA system (nodes + branch currents).
func (c *Circuit) NumUnknowns() int { return len(c.nodeNames) + c.branches }

// HasElement reports whether an element with the given name exists.
func (c *Circuit) HasElement(name string) bool {
	_, ok := c.byName[name]
	return ok
}

// ElementNames returns all element names, sorted.
func (c *Circuit) ElementNames() []string {
	out := make([]string, 0, len(c.byName))
	for n := range c.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (c *Circuit) addElement(e element) {
	if e.name() == "" {
		panic("circuit: element with empty name")
	}
	if _, dup := c.byName[e.name()]; dup {
		panic(fmt.Sprintf("circuit: duplicate element name %q", e.name()))
	}
	c.elements = append(c.elements, e)
	c.byName[e.name()] = e
}

func (c *Circuit) newBranch() int {
	i := len(c.nodeNames) + c.branches
	c.branches++
	return i
}

// AddResistor adds a resistor of r ohms between nodes a and b. It panics
// for r <= 0.
func (c *Circuit) AddResistor(name, a, b string, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("circuit: resistor %s with non-positive value %g", name, r))
	}
	c.addElement(&resistor{nm: name, a: c.Node(a), b: c.Node(b), g: 1 / r})
}

// AddCapacitor adds a capacitor of f farads between nodes a and b. It
// panics for f <= 0.
func (c *Circuit) AddCapacitor(name, a, b string, f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("circuit: capacitor %s with non-positive value %g", name, f))
	}
	c.addElement(&capacitor{nm: name, a: c.Node(a), b: c.Node(b), c: f})
}

// AddInductor adds an inductor of h henries between nodes a and b. It
// panics for h <= 0.
func (c *Circuit) AddInductor(name, a, b string, h float64) {
	if h <= 0 {
		panic(fmt.Sprintf("circuit: inductor %s with non-positive value %g", name, h))
	}
	c.addElement(&inductor{nm: name, a: c.Node(a), b: c.Node(b), l: h, branch: -2})
}

// AddVSource adds an independent voltage source between p (positive) and n
// driven by w.
func (c *Circuit) AddVSource(name, p, n string, w Waveform) *VSource {
	v := &VSource{nm: name, p: c.Node(p), n: c.Node(n), W: w}
	c.addElement(v)
	v.branch = -2 // unassigned until prepare runs at the next solve
	return v
}

// AddISource adds an independent current source pushing current from p to
// n (through the source), driven by w.
func (c *Circuit) AddISource(name, p, n string, w Waveform) *ISource {
	i := &ISource{nm: name, p: c.Node(p), n: c.Node(n), W: w}
	c.addElement(i)
	return i
}

// AddVCCS adds a voltage-controlled current source: a current g·V(cp,cn)
// flows from p to n.
func (c *Circuit) AddVCCS(name, p, n, cp, cn string, g float64) {
	c.addElement(&vccs{nm: name, p: c.Node(p), n: c.Node(n), cp: c.Node(cp), cn: c.Node(cn), g: g})
}

// AddVCVS adds a voltage-controlled voltage source: V(p,n) =
// gain·V(cp,cn). Behavioural building block for ideal amplifiers.
func (c *Circuit) AddVCVS(name, p, n, cp, cn string, gain float64) {
	c.addElement(&vcvs{
		nm: name, p: c.Node(p), n: c.Node(n),
		cp: c.Node(cp), cn: c.Node(cn), gain: gain, branch: -2,
	})
}

// AddMOSFET adds a four-terminal MOSFET (drain, gate, source, bulk) using
// the given device model instance. The returned element allows the caller
// to mutate mismatch and damage between simulations.
func (c *Circuit) AddMOSFET(name, d, g, s, b string, dev *device.Mosfet) *MOSFET {
	m := &MOSFET{
		nm: name, d: c.Node(d), g: c.Node(g), s: c.Node(s), b: c.Node(b),
		Dev: dev,
	}
	c.addElement(m)
	return m
}

// AddDiode adds a diode from anode a to cathode k.
func (c *Circuit) AddDiode(name, a, k string, dev *device.Diode) {
	c.addElement(&diodeElem{nm: name, a: c.Node(a), k: c.Node(k), dev: dev})
}

// ResistorInfo returns the terminal node names and resistance of the named
// resistor; the electromigration extractor uses it to turn solved node
// voltages into branch currents.
func (c *Circuit) ResistorInfo(name string) (a, b string, ohms float64, err error) {
	e, ok := c.byName[name]
	if !ok {
		return "", "", 0, fmt.Errorf("circuit: no element %q", name)
	}
	r, ok := e.(*resistor)
	if !ok {
		return "", "", 0, fmt.Errorf("circuit: element %q is %T, not a resistor", name, e)
	}
	return c.nodeName(r.a), c.nodeName(r.b), 1 / r.g, nil
}

// nodeName maps a node index back to its name ("0" for ground).
func (c *Circuit) nodeName(i int) string {
	if i == Ground {
		return "0"
	}
	return c.nodeNames[i]
}

// Element returns the raw element with the given name, or nil. Used by
// higher layers (aging, adaptation) to reach MOSFET handles.
func (c *Circuit) Element(name string) interface{} {
	if e, ok := c.byName[name]; ok {
		return e
	}
	return nil
}

// MOSFETByName returns the MOSFET element with the given name.
func (c *Circuit) MOSFETByName(name string) (*MOSFET, error) {
	e, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("circuit: no element %q", name)
	}
	m, ok := e.(*MOSFET)
	if !ok {
		return nil, fmt.Errorf("circuit: element %q is %T, not a MOSFET", name, e)
	}
	return m, nil
}

// MOSFETs returns all MOSFET elements, sorted by name.
func (c *Circuit) MOSFETs() []*MOSFET {
	var out []*MOSFET
	for _, e := range c.elements {
		if m, ok := e.(*MOSFET); ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].nm < out[j].nm })
	return out
}

// ResistorNames returns every resistor's name in sorted order — the
// enumeration the electromigration layer walks to synthesize wire
// geometries for a whole deck.
func (c *Circuit) ResistorNames() []string {
	var out []string
	for _, e := range c.elements {
		if r, ok := e.(*resistor); ok {
			out = append(out, r.nm)
		}
	}
	sort.Strings(out)
	return out
}

// prepare assigns branch indices to branch elements. Branch unknowns live
// after the node unknowns, so the assignment is redone from scratch on
// every call: element order is fixed, which keeps indices stable between
// solves, while nodes added since the last solve shift the branch block up
// instead of colliding with it.
func (c *Circuit) prepare() {
	c.branches = 0
	for _, e := range c.elements {
		if be, ok := e.(branchElement); ok {
			be.assignBranch(c)
		}
	}
}

// VSourceByName returns the voltage source with the given name.
func (c *Circuit) VSourceByName(name string) (*VSource, error) {
	e, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("circuit: no element %q", name)
	}
	v, ok := e.(*VSource)
	if !ok {
		return nil, fmt.Errorf("circuit: element %q is %T, not a VSource", name, e)
	}
	return v, nil
}

// ISourceByName returns the current source with the given name.
func (c *Circuit) ISourceByName(name string) (*ISource, error) {
	e, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("circuit: no element %q", name)
	}
	i, ok := e.(*ISource)
	if !ok {
		return nil, fmt.Errorf("circuit: element %q is %T, not an ISource", name, e)
	}
	return i, nil
}
