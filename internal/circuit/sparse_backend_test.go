package circuit

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/device"
)

// ladderTestbench builds a resistively-coupled chain of diode-connected
// NMOS stages — an arbitrarily scalable netlist whose MNA matrix stays a
// few entries per row, the shape the sparse backend exists for.
func ladderTestbench(t testing.TB, stages int) *Circuit {
	t.Helper()
	tech := device.MustTech("180nm")
	c := New()
	c.AddVSource("VSUP", "rail", "0", DC(tech.VDD))
	prev := "rail"
	for i := 0; i < stages; i++ {
		n := fmt.Sprintf("n%03d", i)
		c.AddResistor(fmt.Sprintf("RF%03d", i), "rail", n, 30e3)
		c.AddMOSFET(fmt.Sprintf("M%03d", i), n, n, "0", "0",
			device.NewMosfet(tech.NMOSParams(2e-6, 4*tech.Lmin, 300)))
		c.AddResistor(fmt.Sprintf("RC%03d", i), prev, n, 50e3)
		prev = n
	}
	return c
}

func TestAutoBackendSelection(t *testing.T) {
	small := mirrorTestbench(t)
	if _, err := small.OperatingPoint(); err != nil {
		t.Fatal(err)
	}
	if small.UsingSparse() {
		t.Fatal("small testbench must stay on the dense path (bit-identical regression pinning)")
	}

	big := ladderTestbench(t, 160)
	if _, err := big.OperatingPoint(); err != nil {
		t.Fatal(err)
	}
	if !big.UsingSparse() {
		t.Fatalf("ladder with %d unknowns should auto-select the sparse backend", big.NumUnknowns())
	}
}

func TestSparseMatchesDenseOperatingPoint(t *testing.T) {
	stages := 120
	dense := ladderTestbench(t, stages)
	dense.SetMatrixBackend(BackendDense)
	sp := ladderTestbench(t, stages)
	sp.SetMatrixBackend(BackendSparse)

	solD, err := dense.OperatingPoint()
	if err != nil {
		t.Fatalf("dense: %v", err)
	}
	solS, err := sp.OperatingPoint()
	if err != nil {
		t.Fatalf("sparse: %v", err)
	}
	if !sp.UsingSparse() {
		t.Fatal("forced sparse backend was not used")
	}
	for i := range solD.X {
		if d := math.Abs(solD.X[i] - solS.X[i]); d > 1e-6 {
			t.Fatalf("unknown %d: dense %.12g vs sparse %.12g (diff %g)", i, solD.X[i], solS.X[i], d)
		}
	}
}

func TestSparseMatchesDenseTransient(t *testing.T) {
	stages := 100
	mk := func(b MatrixBackend) *Waveforms {
		c := ladderTestbench(t, stages)
		c.AddCapacitor("CL", "n050", "0", 10e-12)
		c.SetMatrixBackend(b)
		wf, err := c.Transient(TranSpec{Stop: 20e-9, Step: 1e-9, Record: []string{"n050"}})
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		return wf
	}
	wd := mk(BackendDense)
	ws := mk(BackendSparse)
	vd, vs := wd.Node("n050"), ws.Node("n050")
	if len(vd) != len(vs) {
		t.Fatalf("sample count mismatch %d vs %d", len(vd), len(vs))
	}
	for i := range vd {
		if d := math.Abs(vd[i] - vs[i]); d > 1e-6 {
			t.Fatalf("t[%d]: dense %.12g vs sparse %.12g (diff %g)", i, vd[i], vs[i], d)
		}
	}
}

// TestSparseFallbackToDense injects a sparse numeric failure and asserts
// the solver transparently restamps and finishes densely.
func TestSparseFallbackToDense(t *testing.T) {
	c := ladderTestbench(t, 120)
	c.SetMatrixBackend(BackendSparse)
	sparseFailHook = func() bool { return true }
	defer func() { sparseFailHook = nil }()

	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint with forced sparse failure: %v", err)
	}
	if c.UsingSparse() {
		t.Fatal("solver still reports sparse after a forced numeric failure")
	}
	// The dense result must be sane: every drain node sits between the
	// rails.
	tech := device.MustTech("180nm")
	for i := 0; i < 120; i++ {
		v := sol.Voltage(fmt.Sprintf("n%03d", i))
		if v <= 0 || v >= tech.VDD {
			t.Fatalf("n%03d = %g out of (0, %g)", i, v, tech.VDD)
		}
	}
}

// TestSparseNewtonZeroAllocs pins the sparse backend to the same
// steady-state allocation discipline as the dense workspace path.
func TestSparseNewtonZeroAllocs(t *testing.T) {
	c := ladderTestbench(t, 120)
	c.SetMatrixBackend(BackendSparse)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !c.UsingSparse() {
		t.Fatal("sparse backend not active")
	}
	x := make([]float64, c.NumUnknowns())
	cfg := defaultOPConfig()
	allocs := testing.AllocsPerRun(10, func() {
		copy(x, sol.X)
		if err := c.newtonDC(x, 0, 1, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state sparse newtonDC allocates %.1f times per solve, want 0", allocs)
	}
}
