package circuit

import (
	"testing"

	"repro/internal/device"
	"repro/internal/mathx"
)

// Failure-injection and pathological-topology coverage: the simulator must
// return errors (or well-defined answers), never wrong silent results.

func TestFloatingNodeViaCapacitorSolves(t *testing.T) {
	// A node reached only through a capacitor is DC-floating; the
	// capacitor's tiny DC leak keeps the matrix non-singular and the node
	// settles to the other plate's potential.
	c := New()
	c.AddVSource("V1", "a", "0", DC(2))
	c.AddResistor("R1", "a", "b", 1e3)
	c.AddCapacitor("C1", "b", "float", 1e-9)
	c.AddResistor("Rf", "float", "float2", 1e3)
	c.AddCapacitor("C2", "float2", "0", 1e-9)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("floating island did not solve: %v", err)
	}
	if v := sol.Voltage("float"); v < -0.1 || v > 2.1 {
		t.Errorf("floating node settled at %g, outside the rails", v)
	}
}

func TestCurrentSourceIntoCapacitorOnlyDC(t *testing.T) {
	// DC current into a pure capacitor has no DC solution in the ideal
	// case; the gmin leak yields a huge but finite voltage. The solver
	// must either converge to that or error — not return garbage silently.
	c := New()
	c.AddISource("I1", "0", "x", DC(1e-6))
	c.AddCapacitor("C1", "x", "0", 1e-9)
	sol, err := c.OperatingPoint()
	if err != nil {
		return // acceptable: reported as unsolvable
	}
	v := sol.Voltage("x")
	// 1 µA through the 1e-12 S leak → 1e6 V.
	if !mathx.ApproxEqual(v, 1e6, 0.01, 0) {
		t.Errorf("ill-posed bias gave %g, want ~1e6 through the leak", v)
	}
}

func TestShortedVoltageSourcesConflict(t *testing.T) {
	// Two ideal sources forcing different voltages on the same node pair:
	// singular system, must error.
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddVSource("V2", "a", "0", DC(2))
	c.AddResistor("R1", "a", "0", 1e3)
	if _, err := c.OperatingPoint(); err == nil {
		t.Error("conflicting ideal sources should not converge")
	}
}

func TestParallelIdenticalSourcesSolve(t *testing.T) {
	// Identical parallel sources are degenerate (current split
	// indeterminate) and the LU must flag singularity rather than invent
	// an answer.
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddVSource("V2", "a", "0", DC(1))
	c.AddResistor("R1", "a", "0", 1e3)
	if _, err := c.OperatingPoint(); err == nil {
		t.Log("note: duplicate sources solved via pivoting — acceptable if consistent")
	}
}

func TestSeriesCapacitorsTransient(t *testing.T) {
	// Series capacitors create an internal floating node; the transient
	// must still integrate correctly: two equal caps halve the step.
	c := New()
	c.AddVSource("V1", "in", "0", Pulse{Low: 0, High: 1, Rise: 1e-9, Width: 1, Period: 2})
	c.AddResistor("R1", "in", "a", 100)
	c.AddCapacitor("C1", "a", "mid", 2e-9)
	c.AddCapacitor("C2", "mid", "0", 2e-9)
	wf, err := c.Transient(TranSpec{Stop: 2e-6, Step: 1e-9, Record: []string{"a", "mid"}})
	if err != nil {
		t.Fatal(err)
	}
	// After settling, the divider splits the step in half at mid.
	mid := wf.Node("mid")
	if got := mid[len(mid)-1]; !mathx.ApproxEqual(got, 0.5, 0.05, 0) {
		t.Errorf("series-cap divider mid = %g, want ~0.5", got)
	}
}

func TestMOSFETAllTerminalsTied(t *testing.T) {
	// Degenerate hookup: everything shorted to ground must read zero
	// current and still solve.
	tech := device.MustTech("90nm")
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddResistor("R1", "a", "0", 1e3)
	c.AddMOSFET("M1", "0", "0", "0", "0", device.NewMosfet(tech.NMOSParams(1e-6, 90e-9, 300)))
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Voltage("a") != 1 {
		t.Error("grounded MOSFET perturbed an unrelated node")
	}
	m, _ := c.MOSFETByName("M1")
	if m.OP().ID != 0 {
		t.Errorf("all-grounded device conducts %g", m.OP().ID)
	}
}

func TestZeroVoltageSourceAsAmmeter(t *testing.T) {
	// The SPICE idiom: a 0 V source in series measures branch current.
	c := New()
	c.AddVSource("V1", "a", "0", DC(3))
	c.AddVSource("VMEAS", "a", "b", DC(0))
	c.AddResistor("R1", "b", "0", 1e3)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	i, err := sol.BranchCurrent("VMEAS")
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(i, 3e-3, 1e-9, 1e-12) {
		t.Errorf("ammeter reads %g, want 3 mA", i)
	}
}

func TestHugeValueSpreadStillSolves(t *testing.T) {
	// 12 decades of conductance spread stresses the LU pivoting.
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddResistor("Rsmall", "a", "b", 1e-3)
	c.AddResistor("Rbig", "b", "0", 1e9)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("b"), 1, 1e-6, 0) {
		t.Errorf("V(b) = %g, want ~1", sol.Voltage("b"))
	}
}

func TestDCSweepOnMissingSource(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddResistor("R1", "a", "0", 1e3)
	if _, err := c.DCSweep("NOPE", []float64{0, 1}); err == nil {
		t.Error("sweeping a missing source should error")
	}
	if _, err := c.DCSweep("R1", []float64{0, 1}); err == nil {
		t.Error("sweeping a resistor should error")
	}
}
