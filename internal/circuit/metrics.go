package circuit

import (
	"sync/atomic"

	"repro/internal/obs"
)

// pkgMetrics aggregates the solver's observability instruments across all
// circuits in the process. Per-circuit accounting stays on the Circuit
// (NewtonIterations); these global instruments are what an operator
// scrapes while a fleet of trials runs.
type pkgMetrics struct {
	newtonIters     *obs.Counter
	opSolves        *obs.Counter
	opWarmHits      *obs.Counter
	opGminFalls     *obs.Counter
	opSourceFalls   *obs.Counter
	singulars       *obs.Counter
	noConverge      *obs.Counter
	sparseSolves    *obs.Counter
	sparseFallbacks *obs.Counter
	opSeconds       *obs.Histogram
}

var met atomic.Pointer[pkgMetrics]

// SetMetrics wires the circuit solver's instrumentation into reg, or
// disables it when reg is nil. The Newton loop pays one atomic pointer
// load per newtonDC call when disabled; iteration counts are added once
// per solve (not per iteration), so enabling metrics does not perturb the
// loop body either.
//
// Metrics registered:
//
//	circuit_newton_iterations_total  count  Newton iterations across all solves
//	circuit_op_total                 count  OperatingPoint calls
//	circuit_op_warm_total            count  solves converged from the warm start (stage 0)
//	circuit_op_gmin_total            count  solves that entered the gmin ladder (stage 2)
//	circuit_op_source_total          count  solves that entered source stepping (stage 3)
//	circuit_singular_total           count  singular-MNA factorisation failures
//	circuit_noconvergence_total      count  OperatingPoint calls that failed outright
//	circuit_sparse_solves_total      count  Newton solves served by the sparse backend
//	circuit_sparse_fallbacks_total   count  sparse solves that fell back to dense
//	circuit_op_seconds               s      OperatingPoint latency histogram
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&pkgMetrics{
		newtonIters:     reg.Counter("circuit_newton_iterations_total", "1", "Newton iterations across all solves"),
		opSolves:        reg.Counter("circuit_op_total", "1", "OperatingPoint calls"),
		opWarmHits:      reg.Counter("circuit_op_warm_total", "1", "operating points converged from the warm start"),
		opGminFalls:     reg.Counter("circuit_op_gmin_total", "1", "operating points that fell back to gmin stepping"),
		opSourceFalls:   reg.Counter("circuit_op_source_total", "1", "operating points that fell back to source stepping"),
		singulars:       reg.Counter("circuit_singular_total", "1", "singular MNA factorisation failures"),
		noConverge:      reg.Counter("circuit_noconvergence_total", "1", "OperatingPoint failures"),
		sparseSolves:    reg.Counter("circuit_sparse_solves_total", "1", "Newton solves served by the sparse backend"),
		sparseFallbacks: reg.Counter("circuit_sparse_fallbacks_total", "1", "sparse solves that fell back to dense"),
		opSeconds:       reg.Histogram("circuit_op_seconds", "s", "OperatingPoint latency", nil),
	})
}
