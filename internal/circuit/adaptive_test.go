package circuit

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/mathx"
)

func TestAdaptiveSpecValidation(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", DC(1))
	c.AddResistor("R1", "a", "0", 1e3)
	bad := []AdaptiveSpec{
		{Stop: 0, MinStep: 1e-9, MaxStep: 1e-6, LTETol: 1e-3},
		{Stop: 1e-3, MinStep: 0, MaxStep: 1e-6, LTETol: 1e-3},
		{Stop: 1e-3, MinStep: 1e-6, MaxStep: 1e-9, LTETol: 1e-3},
		{Stop: 1e-3, MinStep: 1e-9, MaxStep: 1e-6, LTETol: 0},
	}
	for i, s := range bad {
		if _, err := c.TransientAdaptive(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestAdaptiveRCMatchesAnalytic(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", Pulse{Low: 0, High: 5, Rise: 1e-9, Width: 1, Period: 2})
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddCapacitor("C1", "out", "0", 1e-6) // tau = 1 ms
	wf, err := c.TransientAdaptive(AdaptiveSpec{
		Stop: 5e-3, MinStep: 1e-8, MaxStep: 2e-4, LTETol: 2e-3,
		Integrator: Trapezoidal, Record: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i, tm := range wf.Times {
		want := 5 * (1 - math.Exp(-tm/1e-3))
		if d := math.Abs(wf.Node("out")[i] - want); d > worst {
			worst = d
		}
	}
	if worst > 0.02 {
		t.Errorf("worst deviation %g V from analytic RC response", worst)
	}
}

func TestAdaptiveUsesFewerPointsThanFixed(t *testing.T) {
	// Same RC accuracy budget: adaptive should need far fewer points than
	// a fixed step small enough to resolve the initial edge.
	build := func() *Circuit {
		c := New()
		c.AddVSource("V1", "in", "0", Pulse{Low: 0, High: 5, Rise: 1e-9, Width: 1, Period: 2})
		c.AddResistor("R1", "in", "out", 1e3)
		c.AddCapacitor("C1", "out", "0", 1e-6)
		return c
	}
	cAd := build()
	wfAd, err := cAd.TransientAdaptive(AdaptiveSpec{
		Stop: 5e-3, MinStep: 1e-8, MaxStep: 2e-4, LTETol: 2e-3,
		Integrator: Trapezoidal, Record: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cFx := build()
	wfFx, err := cFx.Transient(TranSpec{
		Stop: 5e-3, Step: 2e-6, Integrator: Trapezoidal, Record: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wfAd.Times)*4 >= len(wfFx.Times) {
		t.Errorf("adaptive used %d points vs fixed %d — expected ≥4× savings",
			len(wfAd.Times), len(wfFx.Times))
	}
}

func TestAdaptiveTimesMonotoneAndBounded(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", Sine{Ampl: 1, Freq: 5e3})
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddCapacitor("C1", "out", "0", 1e-8)
	spec := AdaptiveSpec{
		Stop: 1e-3, MinStep: 1e-8, MaxStep: 5e-5, LTETol: 1e-3,
		Integrator: Trapezoidal, Record: []string{"out"},
	}
	wf, err := c.TransientAdaptive(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(wf.Times); i++ {
		dt := wf.Times[i] - wf.Times[i-1]
		if dt <= 0 {
			t.Fatalf("time not increasing at %d", i)
		}
		if dt > spec.MaxStep*1.0001 {
			t.Fatalf("step %g exceeds MaxStep", dt)
		}
	}
	if last := wf.Times[len(wf.Times)-1]; !mathx.ApproxEqual(last, spec.Stop, 1e-9, 1e-12) {
		t.Errorf("simulation ended at %g, want %g", last, spec.Stop)
	}
}

func TestAdaptiveHandlesNonlinearEdge(t *testing.T) {
	// A MOSFET inverter driven by a slow ramp: the step must shrink
	// around the switching threshold and the output must still swing
	// fully.
	c := inverterForAdaptive()
	wf, err := c.TransientAdaptive(AdaptiveSpec{
		Stop: 1e-6, MinStep: 1e-12, MaxStep: 5e-8, LTETol: 5e-3,
		Integrator: Trapezoidal, Record: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := wf.Node("out")
	if out[0] < 1.0 {
		t.Errorf("initial output %g, want ~VDD", out[0])
	}
	if out[len(out)-1] > 0.1 {
		t.Errorf("final output %g, want ~0", out[len(out)-1])
	}
}

func inverterForAdaptive() *Circuit {
	c := New()
	c.AddVSource("VDD", "vdd", "0", DC(1.1))
	c.AddVSource("VIN", "in", "0", PWL{
		Times:  []float64{0, 1e-6},
		Values: []float64{0, 1.1},
	})
	c.AddResistor("RUP", "vdd", "out", 50e3)
	mn := device.NewMosfet(device.MustTech("90nm").NMOSParams(1e-6, 90e-9, 300))
	c.AddMOSFET("MN", "out", "in", "0", "0", mn)
	c.AddCapacitor("CL", "out", "0", 10e-15)
	return c
}
