package circuit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrNoConvergence is returned when Newton iteration fails even after gmin
// and source-stepping homotopies.
var ErrNoConvergence = errors.New("circuit: operating point did not converge")

// Solution holds a converged DC solution: node voltages plus branch
// currents.
type Solution struct {
	circ *Circuit
	X    []float64
}

// Voltage returns the solved voltage of the named node (0 for ground). It
// panics on unknown node names — asking for a node that does not exist is
// a programming error in the caller.
func (s *Solution) Voltage(node string) float64 {
	if node == "0" || node == "gnd" || node == "GND" {
		return 0
	}
	i, ok := s.circ.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("circuit: unknown node %q", node))
	}
	return s.X[i]
}

// BranchCurrent returns the current through the named voltage source or
// inductor (positive flowing from the + terminal through the element).
func (s *Solution) BranchCurrent(name string) (float64, error) {
	e, ok := s.circ.byName[name]
	if !ok {
		return 0, fmt.Errorf("circuit: no element %q", name)
	}
	be, ok := e.(branchElement)
	if !ok {
		return 0, fmt.Errorf("circuit: element %q carries no branch current", name)
	}
	return s.X[be.branchIndex()], nil
}

// opConfig collects operating-point solver tuning.
type opConfig struct {
	maxIter int
	tolV    float64
	damping float64
}

func defaultOPConfig() opConfig {
	return opConfig{maxIter: 300, tolV: 1e-9, damping: 0.5}
}

// OperatingPoint solves the nonlinear DC system. It tries plain Newton
// first, then gmin stepping, then source stepping; this three-stage ladder
// mirrors production SPICE behaviour.
func (c *Circuit) OperatingPoint() (*Solution, error) {
	c.prepare()
	n := c.NumUnknowns()
	if n == 0 {
		return nil, errors.New("circuit: empty circuit")
	}
	cfg := defaultOPConfig()

	// Stage 1: plain Newton from a zero start.
	x := make([]float64, n)
	if err := c.newtonDC(x, 0, 1, cfg); err == nil {
		c.captureAll(x)
		return &Solution{circ: c, X: x}, nil
	}

	// Stage 2: gmin stepping. Start with a heavy leak to ground and relax
	// it decade by decade, warm-starting each solve.
	x = make([]float64, n)
	ok := true
	for _, gmin := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0} {
		if err := c.newtonDC(x, gmin, 1, cfg); err != nil {
			ok = false
			break
		}
	}
	if ok {
		c.captureAll(x)
		return &Solution{circ: c, X: x}, nil
	}

	// Stage 3: source stepping — ramp all independent sources from 0.
	x = make([]float64, n)
	for _, scale := range []float64{0.02, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		if err := c.newtonDC(x, 0, scale, cfg); err != nil {
			return nil, fmt.Errorf("%w (source stepping failed at scale %g: %v)", ErrNoConvergence, scale, err)
		}
	}
	c.captureAll(x)
	return &Solution{circ: c, X: x}, nil
}

// captureAll records operating points on MOSFET elements.
func (c *Circuit) captureAll(x []float64) {
	for _, e := range c.elements {
		if m, ok := e.(*MOSFET); ok {
			m.capture(x)
		}
	}
}

// newtonDC iterates the DC system in place from the initial guess in x.
func (c *Circuit) newtonDC(x []float64, gmin, srcScale float64, cfg opConfig) error {
	n := len(x)
	a := linalg.NewMatrix(n, n)
	st := &stamp{
		A: a, Rhs: make([]float64, n), X: x,
		Mode: modeDC, Gmin: gmin, SrcScale: srcScale,
	}
	for iter := 0; iter < cfg.maxIter; iter++ {
		a.Zero()
		for i := range st.Rhs {
			st.Rhs[i] = 0
		}
		for _, e := range c.elements {
			e.stampInto(st)
		}
		f, err := linalg.Factor(a)
		if err != nil {
			return fmt.Errorf("circuit: singular MNA matrix: %w", err)
		}
		xNew := f.Solve(st.Rhs)
		// Damped update: limit the largest voltage change per iteration to
		// keep the exponential models inside representable range.
		maxStep := 0.0
		for i := range x {
			if d := math.Abs(xNew[i] - x[i]); d > maxStep {
				maxStep = d
			}
		}
		alpha := 1.0
		const stepLimit = 0.6 // volts per iteration
		if maxStep > stepLimit {
			alpha = stepLimit / maxStep
		}
		var delta float64
		for i := range x {
			d := alpha * (xNew[i] - x[i])
			x[i] += d
			if ad := math.Abs(d); ad > delta {
				delta = ad
			}
		}
		if anyNaN(x) {
			return errors.New("circuit: NaN in solution")
		}
		if delta < cfg.tolV && alpha == 1 {
			return nil
		}
	}
	return ErrNoConvergence
}

func anyNaN(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// DCSweep solves the operating point while stepping the waveform of the
// named source (which must be a VSource or ISource with a DC waveform)
// through values, warm-starting each point from the previous one. It
// returns one Solution per value.
func (c *Circuit) DCSweep(sourceName string, values []float64) ([]*Solution, error) {
	c.prepare()
	e, ok := c.byName[sourceName]
	if !ok {
		return nil, fmt.Errorf("circuit: no element %q", sourceName)
	}
	setV := func(val float64) error {
		switch s := e.(type) {
		case *VSource:
			s.W = DC(val)
		case *ISource:
			s.W = DC(val)
		default:
			return fmt.Errorf("circuit: element %q is %T, not sweepable", sourceName, e)
		}
		return nil
	}
	out := make([]*Solution, 0, len(values))
	var x []float64
	cfg := defaultOPConfig()
	for _, val := range values {
		if err := setV(val); err != nil {
			return nil, err
		}
		if x == nil {
			sol, err := c.OperatingPoint()
			if err != nil {
				return nil, fmt.Errorf("circuit: sweep point %g: %w", val, err)
			}
			x = append([]float64(nil), sol.X...)
			out = append(out, sol)
			continue
		}
		// Warm start from the previous point.
		xi := append([]float64(nil), x...)
		if err := c.newtonDC(xi, 0, 1, cfg); err != nil {
			// Fall back to the full ladder.
			sol, err2 := c.OperatingPoint()
			if err2 != nil {
				return nil, fmt.Errorf("circuit: sweep point %g: %w", val, err2)
			}
			xi = sol.X
		}
		c.captureAll(xi)
		x = xi
		out = append(out, &Solution{circ: c, X: append([]float64(nil), xi...)})
	}
	return out, nil
}
