package circuit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// ErrNoConvergence is returned when Newton iteration fails even after gmin
// and source-stepping homotopies.
var ErrNoConvergence = errors.New("circuit: operating point did not converge")

// ErrSingular is returned when the MNA matrix cannot be factored — a
// structurally defective netlist (floating subcircuit, short-circuited
// source loop) rather than a hard nonlinear solve. Both sentinels are the
// circuit layer's contribution to the failure taxonomy that Monte-Carlo
// harnesses classify with variation.ClassifyFailure.
var ErrSingular = errors.New("circuit: singular MNA matrix")

// Solution holds a converged DC solution: node voltages plus branch
// currents.
type Solution struct {
	circ *Circuit
	X    []float64
}

// Voltage returns the solved voltage of the named node (0 for ground). It
// panics on unknown node names — asking for a node that does not exist is
// a programming error in the caller.
func (s *Solution) Voltage(node string) float64 {
	if node == "0" || node == "gnd" || node == "GND" {
		return 0
	}
	i, ok := s.circ.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("circuit: unknown node %q", node))
	}
	return s.X[i]
}

// BranchCurrent returns the current through the named voltage source or
// inductor (positive flowing from the + terminal through the element).
func (s *Solution) BranchCurrent(name string) (float64, error) {
	e, ok := s.circ.byName[name]
	if !ok {
		return 0, fmt.Errorf("circuit: no element %q", name)
	}
	be, ok := e.(branchElement)
	if !ok {
		return 0, fmt.Errorf("circuit: element %q carries no branch current", name)
	}
	return s.X[be.branchIndex()], nil
}

// opConfig collects operating-point solver tuning.
type opConfig struct {
	maxIter int
	tolV    float64
	damping float64
}

func defaultOPConfig() opConfig {
	return opConfig{maxIter: 300, tolV: 1e-9, damping: 0.5}
}

// OperatingPoint solves the nonlinear DC system. It tries Newton from the
// circuit's last converged solution (when one exists), then plain Newton
// from zero, then gmin stepping, then source stepping; the cold three-stage
// ladder mirrors production SPICE behaviour and is the unconditional
// fallback whenever a warm start fails to converge.
func (c *Circuit) OperatingPoint() (*Solution, error) {
	m := met.Load()
	sp := obs.Span{}
	if m != nil {
		sp = obs.StartSpan(m.opSeconds)
		m.opSolves.Inc()
	}
	sol, err := c.operatingPoint(m)
	sp.End()
	if err != nil && m != nil {
		m.noConverge.Inc()
	}
	return sol, err
}

// operatingPoint runs the warm-start attempt and the cold ladder; m (nil
// when metrics are disabled) receives the per-stage fallback accounting.
func (c *Circuit) operatingPoint(m *pkgMetrics) (*Solution, error) {
	c.prepare()
	n := c.NumUnknowns()
	if n == 0 {
		return nil, errors.New("circuit: empty circuit")
	}
	cfg := defaultOPConfig()
	slv := c.solver()
	x := slv.x

	// Stage 0: warm start. Aging checkpoints, EMC re-measurements and
	// Monte-Carlo re-solves perturb the circuit only slightly between
	// OperatingPoint calls, so the previous solution usually converges in a
	// couple of iterations.
	if slv.haveLast {
		copy(x, slv.lastX)
		if err := c.newtonDC(x, 0, 1, cfg); err == nil {
			if m != nil {
				m.opWarmHits.Inc()
			}
			return c.finishDC(slv, x), nil
		}
	}

	// Stage 1: plain Newton from a zero start.
	zeroVec(x)
	if err := c.newtonDC(x, 0, 1, cfg); err == nil {
		return c.finishDC(slv, x), nil
	}

	// Stage 2: gmin stepping. Start with a heavy leak to ground and relax
	// it decade by decade, warm-starting each solve.
	if m != nil {
		m.opGminFalls.Inc()
	}
	zeroVec(x)
	ok := true
	for _, gmin := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0} {
		if err := c.newtonDC(x, gmin, 1, cfg); err != nil {
			ok = false
			break
		}
	}
	if ok {
		return c.finishDC(slv, x), nil
	}

	// Stage 3: source stepping — ramp all independent sources from 0.
	if m != nil {
		m.opSourceFalls.Inc()
	}
	zeroVec(x)
	for _, scale := range []float64{0.02, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		if err := c.newtonDC(x, 0, scale, cfg); err != nil {
			return nil, fmt.Errorf("%w (source stepping failed at scale %g: %v)", ErrNoConvergence, scale, err)
		}
	}
	return c.finishDC(slv, x), nil
}

// finishDC captures device operating points, refreshes the warm-start
// state and returns a Solution backed by its own copy of x (the solver's
// scratch vector is reused by the next solve).
func (c *Circuit) finishDC(slv *solver, x []float64) *Solution {
	c.captureAll(x)
	slv.noteConverged(x)
	return &Solution{circ: c, X: append([]float64(nil), x...)}
}

// captureAll records operating points on MOSFET elements.
func (c *Circuit) captureAll(x []float64) {
	for _, e := range c.elements {
		if m, ok := e.(*MOSFET); ok {
			m.capture(x)
		}
	}
}

// newtonDC iterates the DC system in place from the initial guess in x.
// After the first call on a circuit it performs zero heap allocations per
// iteration: the linear elements are stamped once into the solver baseline,
// each iteration replays the baseline by copy, stamps only the nonlinear
// elements, and factors and solves inside the reusable workspace. With
// metrics enabled the iteration and singular-matrix accounting is added
// once per call, outside the loop, so the loop body is identical either
// way.
func (c *Circuit) newtonDC(x []float64, gmin, srcScale float64, cfg opConfig) error {
	m := met.Load()
	if m == nil {
		return c.newtonDCRun(x, gmin, srcScale, cfg)
	}
	before := c.newtonIters
	err := c.newtonDCRun(x, gmin, srcScale, cfg)
	m.newtonIters.Add(c.newtonIters - before)
	if err != nil && errors.Is(err, ErrSingular) {
		m.singulars.Inc()
	}
	return err
}

// newtonDCRun is the uninstrumented Newton loop.
func (c *Circuit) newtonDCRun(x []float64, gmin, srcScale float64, cfg opConfig) error {
	slv := c.solver()
	st := &slv.st
	*st = stamp{X: x, Mode: modeDC, Gmin: gmin, SrcScale: srcScale}
	c.stampBaseline(slv, st)
	for iter := 0; iter < cfg.maxIter; iter++ {
		c.newtonIters++
		c.stampIteration(slv, st)
		xNew, err := c.factorAndSolve(slv, st)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrSingular, err)
		}
		// Damped update: limit the largest voltage change per iteration to
		// keep the exponential models inside representable range.
		maxStep := 0.0
		for i := range x {
			if d := math.Abs(xNew[i] - x[i]); d > maxStep {
				maxStep = d
			}
		}
		alpha := 1.0
		const stepLimit = 0.6 // volts per iteration
		if maxStep > stepLimit {
			alpha = stepLimit / maxStep
		}
		var delta float64
		for i := range x {
			d := alpha * (xNew[i] - x[i])
			x[i] += d
			if ad := math.Abs(d); ad > delta {
				delta = ad
			}
		}
		if anyNaN(x) {
			return fmt.Errorf("%w: NaN in solution", ErrNoConvergence)
		}
		if delta < cfg.tolV && alpha == 1 {
			return nil
		}
	}
	return ErrNoConvergence
}

func anyNaN(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// DCSweep solves the operating point while stepping the waveform of the
// named source (which must be a VSource or ISource with a DC waveform)
// through values, warm-starting each point from the previous one. It
// returns one Solution per value.
func (c *Circuit) DCSweep(sourceName string, values []float64) ([]*Solution, error) {
	c.prepare()
	e, ok := c.byName[sourceName]
	if !ok {
		return nil, fmt.Errorf("circuit: no element %q", sourceName)
	}
	setV := func(val float64) error {
		switch s := e.(type) {
		case *VSource:
			s.W = DC(val)
		case *ISource:
			s.W = DC(val)
		default:
			return fmt.Errorf("circuit: element %q is %T, not sweepable", sourceName, e)
		}
		return nil
	}
	out := make([]*Solution, 0, len(values))
	var x []float64
	cfg := defaultOPConfig()
	for _, val := range values {
		if err := setV(val); err != nil {
			return nil, err
		}
		if x == nil {
			sol, err := c.OperatingPoint()
			if err != nil {
				return nil, fmt.Errorf("circuit: sweep point %g: %w", val, err)
			}
			x = append([]float64(nil), sol.X...)
			out = append(out, sol)
			continue
		}
		// Warm start from the previous point.
		xi := append([]float64(nil), x...)
		if err := c.newtonDC(xi, 0, 1, cfg); err != nil {
			// Fall back to the full ladder; drop the stale warm-start state
			// first so OperatingPoint does not retry the guess that just
			// failed.
			c.ResetSolverState()
			sol, err2 := c.OperatingPoint()
			if err2 != nil {
				return nil, fmt.Errorf("circuit: sweep point %g: %w", val, err2)
			}
			xi = sol.X
		}
		c.captureAll(xi)
		c.solver().noteConverged(xi)
		x = xi
		out = append(out, &Solution{circ: c, X: append([]float64(nil), xi...)})
	}
	return out, nil
}
