package circuit

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestVCVSGain(t *testing.T) {
	c := New()
	c.AddVSource("V1", "ctl", "0", DC(0.25))
	c.AddResistor("Rctl", "ctl", "0", 1e6)
	c.AddVCVS("E1", "out", "0", "ctl", "0", 8)
	c.AddResistor("RL", "out", "0", 1e3)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("out"), 2.0, 1e-9, 1e-12) {
		t.Errorf("VCVS output = %g, want 2.0", sol.Voltage("out"))
	}
	// The VCVS is ideal: loading must not change the output.
	c2 := New()
	c2.AddVSource("V1", "ctl", "0", DC(0.25))
	c2.AddResistor("Rctl", "ctl", "0", 1e6)
	c2.AddVCVS("E1", "out", "0", "ctl", "0", 8)
	c2.AddResistor("RL", "out", "0", 1) // heavy load
	sol2, err := c2.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol2.Voltage("out"), 2.0, 1e-9, 1e-12) {
		t.Errorf("loaded VCVS output = %g, want 2.0", sol2.Voltage("out"))
	}
	// Its branch current is accessible (it drives the load).
	i, err := sol2.BranchCurrent("E1")
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(math.Abs(i), 2.0, 1e-9, 1e-12) {
		t.Errorf("VCVS branch current %g, want ±2 A", i)
	}
}

func TestVCVSIdealOpAmpFollower(t *testing.T) {
	// Classic behavioural op-amp: huge-gain VCVS with feedback becomes a
	// unity follower.
	c := New()
	c.AddVSource("VIN", "in", "0", DC(0.7))
	c.AddVCVS("EOP", "out", "0", "in", "out", 1e6)
	c.AddResistor("RL", "out", "0", 10e3)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("out"), 0.7, 1e-5, 0) {
		t.Errorf("follower output = %g, want ~0.7", sol.Voltage("out"))
	}
}

func TestVCVSAC(t *testing.T) {
	c := New()
	v := c.AddVSource("VIN", "in", "0", DC(0))
	v.ACMag = 1
	c.AddResistor("Rin", "in", "0", 1e6)
	c.AddVCVS("E1", "out", "0", "in", "0", -3)
	c.AddResistor("RL", "out", "0", 1e3)
	pts, err := c.AC([]float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	if got := pts[0].Mag("out"); !mathx.ApproxEqual(got, 3, 1e-9, 0) {
		t.Errorf("AC gain magnitude = %g, want 3", got)
	}
	if ph := pts[0].PhaseDeg("out"); math.Abs(math.Abs(ph)-180) > 1e-6 {
		t.Errorf("inverting VCVS phase = %g°, want ±180°", ph)
	}
}
