package circuit

import (
	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
)

// Auto-backend thresholds. MNA systems below sparseMinN unknowns factor
// faster dense (and, critically, every existing testbench sits far below
// it, so their results stay bit-identical); above it the sparse Markowitz
// LU wins as long as the stamped pattern is actually sparse. The density
// cap keeps pathological all-to-all netlists (where sparse bookkeeping is
// pure overhead) on the dense path. BENCH_6.json records the measured
// crossover these values encode.
const (
	sparseMinN       = 96
	sparseMaxDensity = 0.12
	// sparseResidualTol guards the sparse solution: ‖A·x − b‖∞ must stay
	// below tol·(1 + ‖A·x‖∞ + ‖b‖∞) or the solver falls back to dense for
	// the rest of the circuit's life. Threshold pivoting keeps well-posed
	// MNA residuals many orders below this.
	sparseResidualTol = 1e-7
)

// sparseFailHook, when non-nil, forces every sparse solve to be treated as
// a numeric failure — test instrumentation for the dense-fallback path.
var sparseFailHook func() bool

// chooseBackend decides dense vs. sparse for a freshly (re)built solve
// context and, when sparse, discovers the stamping pattern and allocates
// the sparse buffers. Called from (*Circuit).solver on every rebuild.
func (c *Circuit) chooseBackend(s *solver, n int) {
	s.useSparse = false
	s.sparseFailed = false
	s.spMat = nil
	if c.backend == BackendDense || n == 0 {
		return
	}
	if c.backend == BackendAuto && n < sparseMinN {
		return
	}
	pat := c.discoverPattern(n)
	if c.backend == BackendAuto && pat.Density() > sparseMaxDensity {
		return
	}
	nnz := pat.NNZ()
	s.spMat = pat
	s.spA0 = make([]float64, nnz)
	s.spIter = make([]float64, nnz)
	s.res = make([]float64, n)
	s.spLU = sparse.LU{}
	s.useSparse = true
}

// discoverPattern stamps every element once into a sparse.Builder to learn
// the set of matrix positions any analysis can touch. Transient mode with a
// positive Gmin is a structural superset of every mode: the capacitor and
// MOSFET gate-cap companions cover the DC leak and gate-leak positions, the
// inductor companion adds its branch diagonal, and the homotopy leak pins
// the device diagonals. Values stamped here are discarded — only positions
// matter.
func (c *Circuit) discoverPattern(n int) *sparse.Matrix {
	b := sparse.NewBuilder(n)
	st := &stamp{
		A: b, Rhs: make([]float64, n), X: make([]float64, n),
		Mode: modeTran, Dt: 1, Intg: BackwardEuler, Gmin: 1e-3, SrcScale: 1,
	}
	for _, e := range c.elements {
		e.stampInto(st)
	}
	return b.Freeze()
}

// factorAndSolve factors the stamped iteration system and solves for the
// Newton update, returning the solution vector (owned by the workspace).
// On the sparse backend a failed factorisation or an out-of-tolerance
// residual trips a permanent (until rebuild) dense fallback: the iteration
// is restamped densely and solved there, so callers never observe the
// sparse path failing — only ErrSingular when the matrix is truly
// defective.
func (c *Circuit) factorAndSolve(slv *solver, st *stamp) ([]float64, error) {
	ws := slv.ws
	if slv.useSparse {
		forced := sparseFailHook != nil && sparseFailHook()
		if err := slv.spLU.FactorInto(slv.spMat); err == nil {
			slv.spLU.SolveInto(ws.X, ws.B)
			slv.spMat.MulVecInto(slv.res, ws.X)
			axInf := linalg.VecNormInf(slv.res)
			linalg.VecSubInto(slv.res, slv.res, ws.B)
			scale := 1 + axInf + linalg.VecNormInf(ws.B)
			if m := met.Load(); m != nil {
				m.sparseSolves.Inc()
			}
			if !forced && linalg.VecNormInf(slv.res) <= sparseResidualTol*scale {
				return ws.X, nil
			}
		}
		c.fallbackToDense(slv, st)
	}
	if err := ws.Factor(); err != nil {
		return nil, err
	}
	ws.Solve()
	return ws.X, nil
}

// fallbackToDense abandons the sparse backend for this solve context and
// restamps the current iteration into the dense buffers so the caller can
// retry the factor/solve densely without disturbing the Newton state.
func (c *Circuit) fallbackToDense(slv *solver, st *stamp) {
	slv.useSparse = false
	slv.sparseFailed = true
	if m := met.Load(); m != nil {
		m.sparseFallbacks.Inc()
	}
	c.stampBaseline(slv, st)
	c.stampIteration(slv, st)
}
