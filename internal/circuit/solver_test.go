package circuit

import (
	"math"
	"testing"

	"repro/internal/device"
)

// mirrorTestbench builds a resistor-fed NMOS current mirror — the Fig. 3
// topology — exercising both linear (R, C, V) and nonlinear (MOSFET)
// stamps.
func mirrorTestbench(t testing.TB) *Circuit {
	t.Helper()
	tech := device.MustTech("180nm")
	c := New()
	c.AddVSource("VSUP", "rail", "0", DC(tech.VDD))
	c.AddResistor("RREF", "rail", "gate", 30e3)
	c.AddMOSFET("M1", "gate", "gate", "0", "0",
		device.NewMosfet(tech.NMOSParams(2e-6, 4*tech.Lmin, 300)))
	c.AddMOSFET("M2", "out", "gate", "0", "0",
		device.NewMosfet(tech.NMOSParams(2e-6, 4*tech.Lmin, 300)))
	c.AddResistor("RLOAD", "rail", "out", 10e3)
	c.AddCapacitor("CFILT", "gate", "0", 20e-12)
	return c
}

// TestNewtonDCZeroAllocs asserts the tentpole property: after the first
// solve has warmed the workspace, a steady-state Newton solve performs
// zero heap allocations.
func TestNewtonDCZeroAllocs(t *testing.T) {
	c := mirrorTestbench(t)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, c.NumUnknowns())
	cfg := defaultOPConfig()
	allocs := testing.AllocsPerRun(20, func() {
		copy(x, sol.X)
		if err := c.newtonDC(x, 0, 1, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state newtonDC allocates %.1f times per solve, want 0", allocs)
	}
}

// TestNewtonTranZeroAllocs asserts the same property for the transient
// Newton loop.
func TestNewtonTranZeroAllocs(t *testing.T) {
	c := mirrorTestbench(t)
	// One short transient initialises every companion-model state.
	if _, err := c.Transient(TranSpec{Stop: 5e-9, Step: 1e-9, Record: []string{"out"}}); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, c.NumUnknowns())
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	st := &stamp{X: x, Mode: modeTran, Dt: 1e-9, Time: 6e-9, Intg: BackwardEuler, SrcScale: 1}
	cfg := defaultOPConfig()
	cfg.maxIter = 100
	allocs := testing.AllocsPerRun(20, func() {
		copy(x, sol.X)
		if err := c.newtonTran(st, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state newtonTran allocates %.1f times per step, want 0", allocs)
	}
}

// TestWarmStartMatchesColdSolution verifies warm-started operating points
// agree with cold ones within the Newton tolerance after the circuit is
// perturbed between solves.
func TestWarmStartMatchesColdSolution(t *testing.T) {
	c := mirrorTestbench(t)
	if _, err := c.OperatingPoint(); err != nil {
		t.Fatal(err)
	}
	// Perturb the supply and re-solve: stage 0 (warm) should engage.
	v, err := c.VSourceByName("VSUP")
	if err != nil {
		t.Fatal(err)
	}
	v.W = DC(1.7)
	warm, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	c.ResetSolverState()
	cold, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.X {
		if d := math.Abs(warm.X[i] - cold.X[i]); d > 1e-7 {
			t.Fatalf("warm/cold solutions differ at unknown %d by %g", i, d)
		}
	}
}

// TestSetInitialGuess covers the seeding API: a good guess is accepted, a
// mis-sized one is rejected, and seeding never changes the solution.
func TestSetInitialGuess(t *testing.T) {
	ref := mirrorTestbench(t)
	sol, err := ref.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}

	c := mirrorTestbench(t)
	if err := c.SetInitialGuess(sol.X); err != nil {
		t.Fatal(err)
	}
	seeded, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sol.X {
		if d := math.Abs(seeded.X[i] - sol.X[i]); d > 1e-7 {
			t.Fatalf("seeded solution differs at unknown %d by %g", i, d)
		}
	}

	if err := c.SetInitialGuess([]float64{1, 2}); err == nil {
		t.Fatal("mis-sized initial guess accepted")
	}
}

// TestSolverRebuildsAfterTopologyChange guards the workspace invalidation:
// elements added after a solve must be stamped by the next one.
func TestSolverRebuildsAfterTopologyChange(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", DC(2))
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddResistor("R2", "out", "0", 1e3)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage("out"); math.Abs(v-1) > 1e-9 {
		t.Fatalf("divider gives %g, want 1", v)
	}
	// Halve the lower leg by adding a parallel resistor: 2 V · (500/1500).
	c.AddResistor("R3", "out", "0", 1e3)
	sol, err = c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage("out"); math.Abs(v-2.0/3.0) > 1e-9 {
		t.Fatalf("after topology change divider gives %g, want %g", v, 2.0/3.0)
	}
	// Growing the system (new node + branch) must also be safe.
	c.AddVSource("V2", "aux", "0", DC(5))
	sol, err = c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage("aux"); math.Abs(v-5) > 1e-9 {
		t.Fatalf("added source node at %g, want 5", v)
	}
}

// TestWarmStartFallsBackToColdLadder forces the warm path to fail by
// poisoning the cached solution with values far outside the basin of
// attraction and checks the ladder still recovers the right answer.
func TestWarmStartFallsBackToColdLadder(t *testing.T) {
	c := mirrorTestbench(t)
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	bogus := make([]float64, len(sol.X))
	for i := range bogus {
		bogus[i] = 1e6 // drives the exponential models far out of range
	}
	if err := c.SetInitialGuess(bogus); err != nil {
		t.Fatal(err)
	}
	again, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sol.X {
		if d := math.Abs(again.X[i] - sol.X[i]); d > 1e-7 {
			t.Fatalf("fallback solution differs at unknown %d by %g", i, d)
		}
	}
}
