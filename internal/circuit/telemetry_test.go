package circuit

import (
	"errors"
	"testing"
)

// NewtonIterations must accumulate across solves: it is the cost metric
// Monte-Carlo telemetry aggregates per trial.
func TestNewtonIterationsAccumulate(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", DC(1))
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddResistor("R2", "out", "0", 1e3)
	if got := c.NewtonIterations(); got != 0 {
		t.Fatalf("fresh circuit reports %d iterations", got)
	}
	if _, err := c.OperatingPoint(); err != nil {
		t.Fatal(err)
	}
	first := c.NewtonIterations()
	if first <= 0 {
		t.Fatal("solve recorded no Newton iterations")
	}
	if _, err := c.OperatingPoint(); err != nil {
		t.Fatal(err)
	}
	if c.NewtonIterations() <= first {
		t.Errorf("counter did not accumulate: %d -> %d", first, c.NewtonIterations())
	}
}

// A structurally singular system must surface the typed ErrSingular so
// harnesses can classify it as a convergence-class failure.
func TestSingularSystemReturnsTypedError(t *testing.T) {
	c := New()
	// Two floating nodes joined by a capacitor: no DC path to ground, so
	// the MNA matrix is singular in DC.
	c.AddCapacitor("C1", "a", "b", 1e-12)
	_, err := c.OperatingPoint()
	if err == nil {
		t.Fatal("floating capacitor solved in DC")
	}
	if !errors.Is(err, ErrSingular) && !errors.Is(err, ErrNoConvergence) {
		t.Errorf("error %v carries neither ErrSingular nor ErrNoConvergence", err)
	}
}
