package circuit

import (
	"errors"
	"fmt"
	"math"
)

// TranSpec configures a transient analysis.
type TranSpec struct {
	// Stop is the final time in seconds.
	Stop float64
	// Step is the fixed time step in seconds.
	Step float64
	// Integrator selects Backward-Euler (default) or Trapezoidal.
	Integrator Integrator
	// Record lists node names to record; empty records every node.
	Record []string
	// SkipInitialOP starts from the all-zero state instead of a DC
	// operating point (models a cold power-up).
	SkipInitialOP bool
}

// Waveforms is the result of a transient run: aligned time points and
// per-node sample series.
type Waveforms struct {
	Times []float64
	nodes map[string][]float64
}

// Node returns the recorded samples of the named node. It panics if the
// node was not recorded.
func (w *Waveforms) Node(name string) []float64 {
	s, ok := w.nodes[name]
	if !ok {
		panic(fmt.Sprintf("circuit: node %q was not recorded", name))
	}
	return s
}

// HasNode reports whether samples exist for the named node.
func (w *Waveforms) HasNode(name string) bool {
	_, ok := w.nodes[name]
	return ok
}

// Nodes lists recorded node names (unordered).
func (w *Waveforms) Nodes() []string {
	out := make([]string, 0, len(w.nodes))
	for n := range w.nodes {
		out = append(out, n)
	}
	return out
}

// Transient runs a fixed-step transient analysis. The initial condition is
// the DC operating point with all time-dependent sources evaluated at t=0
// (unless SkipInitialOP).
func (c *Circuit) Transient(spec TranSpec) (*Waveforms, error) {
	if spec.Stop <= 0 || spec.Step <= 0 {
		return nil, fmt.Errorf("circuit: invalid transient spec stop=%g step=%g", spec.Stop, spec.Step)
	}
	c.prepare()
	n := c.NumUnknowns()
	if n == 0 {
		return nil, errors.New("circuit: empty circuit")
	}

	// Initial condition.
	var x []float64
	if spec.SkipInitialOP {
		x = make([]float64, n)
	} else {
		sol, err := c.OperatingPoint()
		if err != nil {
			return nil, fmt.Errorf("circuit: transient initial OP: %w", err)
		}
		x = append([]float64(nil), sol.X...)
	}
	for _, e := range c.elements {
		if se, ok := e.(stateful); ok {
			se.initState(x)
		}
	}

	record := spec.Record
	if len(record) == 0 {
		record = c.NodeNames()
	}
	recIdx := make([]int, len(record))
	for i, name := range record {
		recIdx[i] = c.Node(name)
	}

	steps := int(spec.Stop/spec.Step + 0.5)
	wf := &Waveforms{
		Times: make([]float64, 0, steps+1),
		nodes: make(map[string][]float64, len(record)),
	}
	for _, name := range record {
		wf.nodes[name] = make([]float64, 0, steps+1)
	}
	sample := func(t float64, x []float64) {
		wf.Times = append(wf.Times, t)
		for i, name := range record {
			wf.nodes[name] = append(wf.nodes[name], nodeV(x, recIdx[i]))
		}
	}
	sample(0, x)

	st := &stamp{
		X: x, Mode: modeTran, Dt: spec.Step, Intg: spec.Integrator,
		SrcScale: 1,
	}
	cfg := defaultOPConfig()
	cfg.maxIter = 100

	for k := 1; k <= steps; k++ {
		st.Time = float64(k) * spec.Step
		if err := c.newtonTran(st, cfg); err != nil {
			return nil, fmt.Errorf("circuit: transient step %d (t=%g): %w", k, st.Time, err)
		}
		for _, e := range c.elements {
			if se, ok := e.(stateful); ok {
				se.accept(st)
			}
		}
		sample(st.Time, st.X)
	}
	c.captureAll(st.X)
	return wf, nil
}

// newtonTran converges one transient step in place in st.X. Like newtonDC
// it is allocation-free in steady state: the linear companion stamps are
// rebuilt once per timestep (their equivalent sources depend on the
// committed state), and each Newton iteration replays them by copy before
// stamping the nonlinear devices.
func (c *Circuit) newtonTran(st *stamp, cfg opConfig) error {
	slv := c.solver()
	c.stampBaseline(slv, st)
	for iter := 0; iter < cfg.maxIter; iter++ {
		c.newtonIters++
		c.stampIteration(slv, st)
		xNew, err := c.factorAndSolve(slv, st)
		if err != nil {
			return fmt.Errorf("%w: transient: %v", ErrSingular, err)
		}
		var delta float64
		for i := range st.X {
			d := xNew[i] - st.X[i]
			st.X[i] = xNew[i]
			if ad := math.Abs(d); ad > delta {
				delta = ad
			}
		}
		if anyNaN(st.X) {
			return errors.New("circuit: NaN in transient solution")
		}
		if delta < cfg.tolV*10 {
			return nil
		}
	}
	return ErrNoConvergence
}
