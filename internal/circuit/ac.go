package circuit

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/linalg"
)

// ACPoint is the small-signal response at one frequency.
type ACPoint struct {
	// Freq is the analysis frequency in hertz.
	Freq float64
	// V maps node name to complex small-signal voltage.
	V map[string]complex128
}

// Mag returns |V(node)| at this point.
func (p *ACPoint) Mag(node string) float64 { return cmplx.Abs(p.V[node]) }

// MagDB returns 20·log10|V(node)|.
func (p *ACPoint) MagDB(node string) float64 { return 20 * math.Log10(p.Mag(node)) }

// PhaseDeg returns the phase of V(node) in degrees.
func (p *ACPoint) PhaseDeg(node string) float64 {
	return cmplx.Phase(p.V[node]) * 180 / math.Pi
}

// AC linearises the circuit at its DC operating point and solves the
// complex small-signal system at each frequency in freqs. Stimulus comes
// from sources with non-zero ACMag.
func (c *Circuit) AC(freqs []float64) ([]ACPoint, error) {
	c.prepare()
	sol, err := c.OperatingPoint()
	if err != nil {
		return nil, fmt.Errorf("circuit: AC operating point: %w", err)
	}
	n := c.NumUnknowns()
	out := make([]ACPoint, 0, len(freqs))
	// One complex system, reused across the whole sweep: zeroed and
	// re-stamped per frequency, factored and solved in place.
	m := linalg.NewCMatrix(n, n)
	rhs := make([]complex128, n)
	for _, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("circuit: non-positive AC frequency %g", f)
		}
		omega := 2 * math.Pi * f
		m.Zero()
		for i := range rhs {
			rhs[i] = 0
		}
		for _, e := range c.elements {
			as, ok := e.(acStamper)
			if !ok {
				return nil, fmt.Errorf("circuit: element %q (%T) does not support AC analysis", e.name(), e)
			}
			as.stampAC(m, rhs, omega, sol.X)
		}
		if err := linalg.CSolveInPlace(m, rhs); err != nil {
			return nil, fmt.Errorf("circuit: AC solve at %g Hz: %w", f, err)
		}
		pt := ACPoint{Freq: f, V: make(map[string]complex128, len(c.nodeNames))}
		for i, name := range c.nodeNames {
			pt.V[name] = rhs[i]
		}
		out = append(out, pt)
	}
	return out, nil
}
