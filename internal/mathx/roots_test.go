package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectFindsRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %.15g, want sqrt(2)", root)
	}
}

func TestBisectRejectsNoSignChange(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err == nil {
		t.Fatal("expected error for no sign change")
	}
}

func TestBrentFindsRoot(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	root, err := Brent(f, 0, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f(root)) > 1e-12 {
		t.Errorf("f(root) = %g, not ~0", f(root))
	}
}

func TestBrentEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x - 2 }
	root, err := Brent(f, 2, 5, 1e-12)
	if err != nil || root != 2 {
		t.Errorf("root = %g, err = %v, want exact 2", root, err)
	}
}

func TestBrentPropertyRandomCubics(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		// Root placed inside the bracket by construction.
		x0 := -1 + 2*r.Float64()
		f := func(x float64) float64 { return (x - x0) * (x*x + 1) }
		root, err := Brent(f, -2, 2, 1e-13)
		return err == nil && math.Abs(root-x0) < 1e-9
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewton1D(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 3 }
	root, err := Newton1D(f, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Log(3)) > 1e-9 {
		t.Errorf("root = %g, want ln(3)", root)
	}
}

func TestInterp1D(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{0, 10, 20, 0}
	cases := []struct{ x, want float64 }{
		{-1, 0},  // clamp left
		{0, 0},   // exact node
		{0.5, 5}, // interior
		{3, 10},  // interior on last segment
		{5, 0},   // clamp right
		{2, 20},  // exact node
	}
	for _, c := range cases {
		if got := Interp1D(xs, ys, c.x); !ApproxEqual(got, c.want, 1e-12, 1e-12) {
			t.Errorf("Interp1D(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestInterp1DPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted x")
		}
	}()
	Interp1D([]float64{0, 2, 1}, []float64{0, 0, 0}, 0.5)
}

func TestLogspaceLinspace(t *testing.T) {
	ls := Logspace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range ls {
		if !ApproxEqual(ls[i], want[i], 1e-12, 0) {
			t.Errorf("Logspace[%d] = %g, want %g", i, ls[i], want[i])
		}
	}
	lin := Linspace(0, 3, 4)
	for i, w := range []float64{0, 1, 2, 3} {
		if lin[i] != w {
			t.Errorf("Linspace[%d] = %g, want %g", i, lin[i], w)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-13, 1e-12, 0) {
		t.Error("tight relative comparison failed")
	}
	if ApproxEqual(1.0, 1.1, 1e-3, 0) {
		t.Error("loose values compared equal")
	}
	if !ApproxEqual(0, 1e-15, 0, 1e-12) {
		t.Error("absolute tolerance near zero failed")
	}
}
