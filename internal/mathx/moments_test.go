package mathx

import (
	"encoding/json"
	"math"
	"testing"
)

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d
	}
	return d / m
}

// Merging per-chunk moments must agree with the single-pass accumulation
// to rounding, for every split point.
func TestMomentsMergeMatchesSequential(t *testing.T) {
	rng := NewRNG(101)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 0.55 + 0.02*rng.Norm()
	}
	var all Moments
	for _, x := range xs {
		all.Add(x)
	}
	for _, split := range []int{1, 7, 250, 500, 999} {
		var a, b Moments
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.Count != all.Count {
			t.Fatalf("split %d: count %d != %d", split, a.Count, all.Count)
		}
		if relDiff(a.Mean, all.Mean) > 1e-12 {
			t.Errorf("split %d: mean %g vs %g", split, a.Mean, all.Mean)
		}
		if relDiff(a.Variance(), all.Variance()) > 1e-9 {
			t.Errorf("split %d: variance %g vs %g", split, a.Variance(), all.Variance())
		}
		if a.Min != all.Min || a.Max != all.Max {
			t.Errorf("split %d: extrema (%g,%g) vs (%g,%g)", split, a.Min, a.Max, all.Min, all.Max)
		}
	}
}

// A fixed fold order must be bit-deterministic: folding the same chunk
// accumulators in the same order twice yields identical bits. This is the
// property the sharded campaign's global chunk grid relies on for
// bit-identical mean/std across shard counts.
func TestMomentsFoldOrderBitDeterministic(t *testing.T) {
	rng := NewRNG(202)
	chunks := make([]Moments, 16)
	for c := range chunks {
		for i := 0; i < 64; i++ {
			chunks[c].Add(rng.Norm())
		}
	}
	fold := func() Moments {
		var m Moments
		for _, c := range chunks {
			m.Merge(c)
		}
		return m
	}
	a, b := fold(), fold()
	if a != b {
		t.Fatalf("same fold order produced different bits: %+v vs %+v", a, b)
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Add(1)
	a.Add(3)
	a.Merge(b) // empty other: no-op
	if a.Count != 2 || a.Mean != 2 {
		t.Fatalf("merge with empty changed a: %+v", a)
	}
	var c Moments
	c.Merge(a) // empty receiver: copy
	if c != a {
		t.Fatalf("empty receiver merge: %+v != %+v", c, a)
	}
	if !math.IsNaN(b.MeanValue()) || !math.IsNaN(b.Variance()) {
		t.Fatal("empty moments should answer NaN")
	}
}

func TestMomentsJSONRoundTrip(t *testing.T) {
	var m Moments
	for _, x := range []float64{1, 2, 3, 4.5} {
		m.Add(x)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Moments
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip: %+v != %+v", back, m)
	}
}

// Running is a wrapper over Moments: both views must agree.
func TestRunningExposesMoments(t *testing.T) {
	var r Running
	for i := 0; i < 100; i++ {
		r.Add(float64(i))
	}
	m := r.Moments()
	if int(m.Count) != r.N() || m.MeanValue() != r.Mean() || m.Variance() != r.Variance() {
		t.Fatalf("Running and Moments views disagree: %+v vs n=%d mean=%g", m, r.N(), r.Mean())
	}
}
