package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without meeting tolerance.
var ErrNoConvergence = errors.New("mathx: no convergence")

// Bisect finds a root of f on [a, b] by bisection. f(a) and f(b) must have
// opposite signs. tol is the absolute interval tolerance.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("mathx: Bisect requires a sign change on [%g, %g] (f=%g, %g)", a, b, fa, fb)
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0, ErrNoConvergence
}

// Brent finds a root of f on [a, b] with Brent's method (inverse quadratic
// interpolation guarded by bisection). f(a) and f(b) must bracket a root.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("mathx: Brent requires a sign change on [%g, %g]", a, b)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return 0, ErrNoConvergence
}

// Newton1D finds a root of f starting at x0 using Newton's method with a
// numeric derivative and an absolute step tolerance tol.
func Newton1D(f func(float64) float64, x0, tol float64) (float64, error) {
	x := x0
	for i := 0; i < 100; i++ {
		fx := f(x)
		if math.Abs(fx) < tol {
			return x, nil
		}
		h := 1e-7 * (math.Abs(x) + 1)
		dfx := (f(x+h) - f(x-h)) / (2 * h)
		if dfx == 0 {
			return 0, errors.New("mathx: Newton1D hit zero derivative")
		}
		step := fx / dfx
		x -= step
		if math.Abs(step) < tol {
			return x, nil
		}
	}
	return 0, ErrNoConvergence
}

// Interp1D performs piecewise-linear interpolation of (xs, ys) at x,
// clamping outside the domain. xs must be strictly increasing; it panics
// otherwise or on mismatched lengths.
func Interp1D(xs, ys []float64, x float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("mathx: Interp1D needs equal-length non-empty inputs")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			panic("mathx: Interp1D x not strictly increasing")
		}
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[len(xs)-1] {
		return ys[len(ys)-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, len(xs)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo] + t*(ys[hi]-ys[lo])
}

// Logspace returns n points geometrically spaced from lo to hi inclusive.
// It panics unless lo, hi > 0 and n >= 2.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("mathx: Logspace needs positive endpoints")
	}
	if n < 2 {
		panic("mathx: Logspace needs n >= 2")
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Linspace returns n points linearly spaced from lo to hi inclusive. It
// panics for n < 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// Clamp returns x limited to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// or absolute tolerance abs (whichever is looser).
func ApproxEqual(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*scale
}
