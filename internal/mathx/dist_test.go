package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMoments(d Distribution, n int, seed uint64) (mean, variance float64) {
	r := NewRNG(seed)
	var run Running
	for i := 0; i < n; i++ {
		run.Add(d.Sample(r))
	}
	return run.Mean(), run.Variance()
}

func TestNormalMoments(t *testing.T) {
	d := NewNormal(3, 2)
	mean, variance := sampleMoments(d, 200000, 1)
	if !ApproxEqual(mean, 3, 0.02, 0.02) {
		t.Errorf("mean = %g, want ~3", mean)
	}
	if !ApproxEqual(variance, 4, 0.05, 0.05) {
		t.Errorf("variance = %g, want ~4", variance)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	d := NewNormal(0, 1)
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := d.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	d := NewNormal(1.5, 0.3)
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := d.Quantile(p)
		if back := d.CDF(x); math.Abs(back-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, back)
		}
	}
}

func TestNormQuantileAccuracy(t *testing.T) {
	// Round-trip against erfc-based CDF at many probabilities.
	for _, p := range Linspace(0.0005, 0.9995, 201) {
		x := NormQuantile(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(back-p) > 1e-12 {
			t.Fatalf("NormQuantile(%g): round trip error %g", p, back-p)
		}
	}
}

func TestNormQuantilePanicsOutOfDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormQuantile(%g) did not panic", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

func TestLogNormalMoments(t *testing.T) {
	d := NewLogNormal(0.2, 0.4)
	mean, variance := sampleMoments(d, 300000, 2)
	if !ApproxEqual(mean, d.Mean(), 0.02, 0) {
		t.Errorf("sample mean = %g, analytic %g", mean, d.Mean())
	}
	if !ApproxEqual(variance, d.Variance(), 0.08, 0) {
		t.Errorf("sample variance = %g, analytic %g", variance, d.Variance())
	}
}

func TestLogNormalCDFPositiveSupport(t *testing.T) {
	d := NewLogNormal(0, 1)
	if d.CDF(-1) != 0 || d.CDF(0) != 0 {
		t.Error("lognormal CDF must be 0 for x <= 0")
	}
	if got := d.CDF(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(1) = %g, want 0.5 for mu=0", got)
	}
}

func TestWeibullQuantileScale(t *testing.T) {
	w := NewWeibull(2, 10)
	// The scale parameter is the 63.2% point: CDF(eta) = 1 - 1/e.
	if got := w.CDF(10); math.Abs(got-(1-1/math.E)) > 1e-12 {
		t.Errorf("CDF(eta) = %g, want %g", got, 1-1/math.E)
	}
}

func TestWeibullMoments(t *testing.T) {
	w := NewWeibull(1.5, 4)
	mean, variance := sampleMoments(w, 300000, 3)
	if !ApproxEqual(mean, w.Mean(), 0.02, 0) {
		t.Errorf("sample mean = %g, analytic %g", mean, w.Mean())
	}
	if !ApproxEqual(variance, w.Variance(), 0.05, 0) {
		t.Errorf("sample variance = %g, analytic %g", variance, w.Variance())
	}
}

func TestWeibullQuantileRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		beta := 0.5 + 3*r.Float64()
		eta := 0.1 + 10*r.Float64()
		w := NewWeibull(beta, eta)
		p := r.Float64Open()
		x := w.Quantile(p)
		return math.Abs(w.CDF(x)-p) < 1e-9
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeibitLinearisesCDF(t *testing.T) {
	w := NewWeibull(3, 7)
	// Weibit(CDF(t)) = beta*ln(t) - beta*ln(eta): slope must equal beta.
	ts := Logspace(1, 100, 20)
	var lx, ly []float64
	for _, x := range ts {
		lx = append(lx, math.Log(x))
		ly = append(ly, Weibit(w.CDF(x)))
	}
	_, slope, r2 := LinFit(lx, ly)
	if math.Abs(slope-3) > 1e-9 || r2 < 1-1e-12 {
		t.Errorf("Weibull plot slope = %g (r2=%g), want 3", slope, r2)
	}
}

func TestUniformBasics(t *testing.T) {
	u := NewUniform(-2, 6)
	if u.Mean() != 2 {
		t.Errorf("mean = %g, want 2", u.Mean())
	}
	if !ApproxEqual(u.Variance(), 64.0/12, 1e-12, 0) {
		t.Errorf("variance = %g, want %g", u.Variance(), 64.0/12)
	}
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		x := u.Sample(r)
		if x < -2 || x >= 6 {
			t.Fatalf("sample %g out of [-2, 6)", x)
		}
	}
}

func TestDistributionQuantileMonotonic(t *testing.T) {
	dists := []Distribution{
		NewNormal(0, 1),
		NewLogNormal(0, 0.5),
		NewWeibull(2, 3),
		NewUniform(0, 1),
	}
	ps := Linspace(0.01, 0.99, 50)
	for _, d := range dists {
		prev := math.Inf(-1)
		for _, p := range ps {
			q := d.Quantile(p)
			if q < prev {
				t.Errorf("%T quantile not monotonic at p=%g", d, p)
			}
			prev = q
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewNormal(0, -1) },
		func() { NewLogNormal(0, -0.1) },
		func() { NewWeibull(0, 1) },
		func() { NewWeibull(1, 0) },
		func() { NewUniform(2, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
