package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs, or NaN for
// fewer than two samples. It uses a two-pass algorithm for stability.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the p-quantile of xs (p in [0, 1]) using linear
// interpolation between order statistics (type-7, the numpy default). The
// input need not be sorted; it is not modified. It panics on an empty slice
// or p outside [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("mathx: Quantile p=%g out of [0,1]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, p)
}

// QuantileSorted is Quantile for an already ascending-sorted slice: the
// O(n log n) copy-and-sort is skipped entirely, so repeated quantile reads
// of one dataset cost O(1) each. The input is not modified. Behaviour on
// an unsorted slice is undefined.
func QuantileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		panic("mathx: QuantileSorted of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("mathx: QuantileSorted p=%g out of [0,1]", p))
	}
	if len(s) == 1 {
		return s[0]
	}
	h := p * float64(len(s)-1)
	i := int(math.Floor(h))
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := h - float64(i)
	return s[i] + frac*(s[i+1]-s[i])
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It panics if the slices differ in length or have fewer than two points,
// and returns NaN if either input is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("mathx: Correlation length mismatch")
	}
	if len(xs) < 2 {
		panic("mathx: Correlation needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinFit fits y = a + b*x by least squares and returns the intercept a,
// slope b and coefficient of determination r2. It panics on mismatched or
// too-short inputs.
func LinFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) {
		panic("mathx: LinFit length mismatch")
	}
	if len(xs) < 2 {
		panic("mathx: LinFit needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		panic("mathx: LinFit with constant x")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// PowerFit fits y = c * x^n on strictly positive data by linear regression
// in log-log space, returning the prefactor c, exponent n and the log-space
// r2. This is the standard extraction for power-law aging data (ΔVT ∝ t^n).
func PowerFit(xs, ys []float64) (c, n, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic(fmt.Sprintf("mathx: PowerFit needs positive data, got (%g, %g)", xs[i], ys[i]))
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b, r2 := LinFit(lx, ly)
	return math.Exp(a), b, r2
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
	total       int
}

// NewHistogram returns a histogram with bins equal-width bins over
// [lo, hi). It panics for a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("mathx: histogram needs at least one bin")
	}
	if hi <= lo {
		panic(fmt.Sprintf("mathx: histogram range [%g, %g) is empty", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range
// ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Running accumulates streaming mean/variance via Welford's algorithm, so
// Monte-Carlo loops can track statistics without storing every sample. It
// is a thin unexported-state wrapper around Moments, which is the
// JSON-serializable form used when statistics must cross a process
// boundary (sharded campaigns, checkpoints).
type Running struct {
	m Moments
}

// Add records one sample.
func (r *Running) Add(x float64) { r.m.Add(x) }

// N returns the sample count.
func (r *Running) N() int { return int(r.m.Count) }

// Mean returns the running mean (NaN when empty).
func (r *Running) Mean() float64 { return r.m.MeanValue() }

// Variance returns the unbiased running variance (NaN with fewer than two
// samples).
func (r *Running) Variance() float64 { return r.m.Variance() }

// StdDev returns the running standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample seen (NaN when empty).
func (r *Running) Min() float64 {
	if r.m.Count == 0 {
		return math.NaN()
	}
	return r.m.Min
}

// Max returns the largest sample seen (NaN when empty).
func (r *Running) Max() float64 {
	if r.m.Count == 0 {
		return math.NaN()
	}
	return r.m.Max
}

// Moments returns a copy of the underlying mergeable accumulator.
func (r *Running) Moments() Moments { return r.m }

// Merge folds other into r, as if all of other's samples had been added to
// r. This combines per-worker statistics from parallel Monte-Carlo runs.
func (r *Running) Merge(other *Running) { r.m.Merge(other.m) }

// KSStatistic returns the one-sample Kolmogorov-Smirnov statistic D: the
// largest distance between the empirical CDF of xs and the distribution's
// CDF. It panics on an empty sample. Combined with KSCritical it is the
// goodness-of-fit check the reliability analyses use to validate Weibull
// and normal assumptions on simulated data.
func KSStatistic(xs []float64, d Distribution) float64 {
	if len(xs) == 0 {
		panic("mathx: KSStatistic of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	worst := 0.0
	for i, x := range s {
		f := d.CDF(x)
		// Empirical CDF jumps at each point: compare against both sides.
		lo := float64(i) / n
		hi := float64(i+1) / n
		if dd := math.Abs(f - lo); dd > worst {
			worst = dd
		}
		if dd := math.Abs(f - hi); dd > worst {
			worst = dd
		}
	}
	return worst
}

// KSCritical returns the approximate critical value of D at significance
// alpha for a sample of size n (asymptotic formula c(α)/√n, valid for
// n ≳ 35). Supported alphas: 0.10, 0.05, 0.01.
func KSCritical(n int, alpha float64) float64 {
	if n <= 0 {
		panic("mathx: KSCritical needs n > 0")
	}
	var c float64
	switch {
	case alpha >= 0.10:
		c = 1.224
	case alpha >= 0.05:
		c = 1.358
	default:
		c = 1.628
	}
	return c / math.Sqrt(float64(n))
}
