package mathx

import "math"

// Moments is a mergeable moment accumulator: count, mean and the centred
// second moment (M2) maintained with Welford's update, plus the sample
// extrema. Unlike Running it is JSON-serializable and designed to be the
// wire unit of distributed Monte-Carlo statistics: per-shard accumulators
// merge into the campaign total with Merge, which is algebraically exact
// (the merged mean/variance equal the mean/variance of the concatenated
// samples up to floating-point rounding of the merge formula itself).
// Folding the same accumulators in the same order is bit-deterministic,
// which is what lets a sharded campaign reproduce a single-shard run
// bit-for-bit when both fold per-chunk moments in global chunk order.
type Moments struct {
	Count int64   `json:"n"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Add folds one sample into m.
func (m *Moments) Add(x float64) {
	m.Count++
	if m.Count == 1 {
		m.Min, m.Max = x, x
	} else {
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	d := x - m.Mean
	m.Mean += d / float64(m.Count)
	m.M2 += d * (x - m.Mean)
}

// Merge folds other into m, as if every sample behind other had been
// added to m. The Chan et al. pairwise-update is exact for count, mean
// and M2; merging is commutative in value but, like any floating-point
// reduction, only bit-deterministic for a fixed fold order.
func (m *Moments) Merge(other Moments) {
	if other.Count == 0 {
		return
	}
	if m.Count == 0 {
		*m = other
		return
	}
	n1, n2 := float64(m.Count), float64(other.Count)
	total := n1 + n2
	delta := other.Mean - m.Mean
	m.Mean += delta * n2 / total
	m.M2 += other.M2 + delta*delta*n1*n2/total
	m.Count += other.Count
	if other.Min < m.Min {
		m.Min = other.Min
	}
	if other.Max > m.Max {
		m.Max = other.Max
	}
}

// MeanValue returns the accumulated mean (NaN when empty).
func (m *Moments) MeanValue() float64 {
	if m.Count == 0 {
		return math.NaN()
	}
	return m.Mean
}

// Variance returns the unbiased sample variance (NaN with fewer than two
// samples).
func (m *Moments) Variance() float64 {
	if m.Count < 2 {
		return math.NaN()
	}
	return m.M2 / float64(m.Count-1)
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }
