package mathx

import (
	"fmt"
	"math"
)

// Distribution is a one-dimensional probability distribution. All
// distributions in this package are immutable after construction and safe
// for concurrent use; sampling draws randomness exclusively from the RNG
// passed to Sample.
type Distribution interface {
	// Sample draws one variate using rng.
	Sample(rng *RNG) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Variance returns the distribution variance.
	Variance() float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile (inverse CDF) for p in (0, 1).
	Quantile(p float64) float64
}

// Normal is a Gaussian distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns a Normal distribution. It panics if sigma < 0.
func NewNormal(mu, sigma float64) Normal {
	if sigma < 0 {
		panic(fmt.Sprintf("mathx: negative sigma %g", sigma))
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// Sample draws a normal variate.
func (n Normal) Sample(rng *RNG) float64 { return n.Mu + n.Sigma*rng.Norm() }

// Mean returns mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns sigma^2.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// CDF returns the normal CDF at x.
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the inverse normal CDF at p.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*NormQuantile(p)
}

// LogNormal is a distribution whose logarithm is Normal(Mu, Sigma).
type LogNormal struct {
	Mu    float64 // mean of log(X)
	Sigma float64 // std-dev of log(X)
}

// NewLogNormal returns a LogNormal distribution with the given log-space
// parameters. It panics if sigma < 0.
func NewLogNormal(mu, sigma float64) LogNormal {
	if sigma < 0 {
		panic(fmt.Sprintf("mathx: negative sigma %g", sigma))
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Sample draws a lognormal variate.
func (l LogNormal) Sample(rng *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.Norm())
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Variance returns (exp(sigma^2)-1) * exp(2mu + sigma^2).
func (l LogNormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// CDF returns the lognormal CDF at x (0 for x <= 0).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.CDF(math.Log(x))
}

// Quantile returns the inverse CDF at p.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*NormQuantile(p))
}

// Weibull is the two-parameter Weibull distribution used throughout oxide
// breakdown statistics: CDF(x) = 1 - exp(-(x/Eta)^Beta). Beta is the shape
// (the "Weibull slope" of TDDB literature) and Eta the scale (the 63.2 %
// quantile).
type Weibull struct {
	Beta float64 // shape
	Eta  float64 // scale
}

// NewWeibull returns a Weibull distribution. It panics if either parameter
// is not positive.
func NewWeibull(beta, eta float64) Weibull {
	if beta <= 0 || eta <= 0 {
		panic(fmt.Sprintf("mathx: invalid Weibull parameters beta=%g eta=%g", beta, eta))
	}
	return Weibull{Beta: beta, Eta: eta}
}

// Sample draws a Weibull variate via inverse-CDF.
func (w Weibull) Sample(rng *RNG) float64 {
	return w.Quantile(rng.Float64Open())
}

// Mean returns eta * Gamma(1 + 1/beta).
func (w Weibull) Mean() float64 { return w.Eta * math.Gamma(1+1/w.Beta) }

// Variance returns eta^2 * (Gamma(1+2/beta) - Gamma(1+1/beta)^2).
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.Beta)
	g2 := math.Gamma(1 + 2/w.Beta)
	return w.Eta * w.Eta * (g2 - g1*g1)
}

// CDF returns 1 - exp(-(x/eta)^beta) for x >= 0 and 0 otherwise.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Eta, w.Beta))
}

// Quantile returns eta * (-ln(1-p))^(1/beta).
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Eta * math.Pow(-math.Log(1-p), 1/w.Beta)
}

// Weibit returns the Weibull plotting coordinate ln(-ln(1-F)); plotting
// Weibit(F) against ln(t) linearises a Weibull CDF with slope Beta, the
// standard representation of TDDB data.
func Weibit(f float64) float64 {
	return math.Log(-math.Log(1 - f))
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns a Uniform distribution. It panics if hi < lo.
func NewUniform(lo, hi float64) Uniform {
	if hi < lo {
		panic(fmt.Sprintf("mathx: uniform with hi %g < lo %g", hi, lo))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample draws a uniform variate.
func (u Uniform) Sample(rng *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*rng.Float64() }

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Variance returns (hi-lo)^2 / 12.
func (u Uniform) Variance() float64 { d := u.Hi - u.Lo; return d * d / 12 }

// CDF returns the uniform CDF at x.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile returns lo + p*(hi-lo).
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

// NormQuantile returns the standard normal inverse CDF at p using the
// Acklam rational approximation refined by one Halley step; absolute error
// is below 1e-13 over (0, 1). It panics for p outside (0, 1).
func NormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("mathx: NormQuantile p=%g out of (0,1)", p))
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
