// Package mathx provides the deterministic numerical substrate used across
// the reliability framework: a reproducible random number generator,
// probability distributions, summary statistics, root finding and
// interpolation. Everything is pure Go and allocation-light so Monte-Carlo
// loops can run millions of samples on a laptop. In paper terms this is
// the machinery under Section 2's statistical picture: the Gaussian
// sampling behind Pelgrom mismatch (Eq. 1), the yield statistics, and the
// split-stream RNG that makes every trial reproducible regardless of
// worker scheduling.
package mathx

import "math"

// RNG is a deterministic 64-bit PCG-XSL-RR generator. A zero RNG is not
// valid; construct one with NewRNG. Distinct streams can be derived with
// Split, which is what the Monte-Carlo engine uses to give every worker an
// independent, reproducible stream.
type RNG struct {
	state    uint64
	inc      uint64
	hasSpare bool
	spare    float64
}

const (
	pcgMultiplier = 6364136223846793005
	pcgDefaultInc = 1442695040888963407
)

// SplitMix64 is the SplitMix64 finalizer: an avalanching bijection on
// uint64 where flipping any input bit flips ~half the output bits. Seed
// and stream derivation pass through it so that adjacent seeds or
// adjacent shard/stream indices — the natural numbering of a sharded
// Monte-Carlo campaign — land on uncorrelated generator states instead of
// states one increment apart.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRNG returns a generator seeded with seed. The same seed always yields
// the same sequence. The seed is mixed through SplitMix64, so sequential
// seeds (1, 2, 3, …) start from statistically unrelated states.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: pcgDefaultInc}
	r.state = SplitMix64(seed) + r.inc
	r.Uint64()
	return r
}

// NewRNGStream returns a generator on an explicit stream; generators with
// different stream values produce uncorrelated sequences even for the same
// seed. Both seed and stream are mixed through SplitMix64 before use —
// without the mix the PCG increment of stream i and the state of seed s
// differ from stream i+1 / seed s+1 by small constants, and such nearly-
// identical (state, inc) pairs yield visibly correlated output prefixes.
func NewRNGStream(seed, stream uint64) *RNG {
	r := &RNG{inc: (SplitMix64(stream) << 1) | 1}
	r.state = SplitMix64(seed) + r.inc
	r.Uint64()
	return r
}

// Split derives the i-th child stream from r without disturbing r's own
// sequence position. Children are independent of each other and of the
// parent; NewRNGStream's SplitMix64 mix decorrelates adjacent child
// indices, which is what makes per-trial substreams indexed by the global
// trial number safe for variance estimation.
func (r *RNG) Split(i uint64) *RNG {
	return NewRNGStream(r.state^0x9e3779b97f4a7c15, i)
}

// Uint64 returns the next raw 64-bit value, combining two PCG-XSH-RR
// 32-bit outputs.
func (r *RNG) Uint64() uint64 {
	return uint64(r.uint32())<<32 | uint64(r.uint32())
}

func (r *RNG) uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return xorshifted>>rot | xorshifted<<((32-rot)&31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly 0 or 1, which
// is what inverse-CDF sampling needs.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	// Lemire rejection-free-ish bounded generation.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Norm returns a standard normal variate using the polar (Marsaglia)
// method. It is exact (no table lookups) and uses two uniforms per pair.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.hasSpare = true
			return u * f
		}
	}
}

// Exp returns an exponential variate with mean 1.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}
