package mathx

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
)

// rankError returns |rank(est) - p| under the empirical CDF of sorted xs:
// the fraction of samples the estimate's position is off by.
func rankError(sorted []float64, est, p float64) float64 {
	i := sort.SearchFloat64s(sorted, est)
	return math.Abs(float64(i)/float64(len(sorted)) - p)
}

// sketchErrBound is the documented worst-case rank error at the default
// compression: 2/δ at the median, tighter towards the tails.
const sketchErrBound = 2.0 / DefaultSketchCompression

func normalSamples(seed uint64, n int) []float64 {
	rng := NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 0.6 + 0.05*rng.Norm()
	}
	return xs
}

func TestSketchQuantileErrorBound(t *testing.T) {
	xs := normalSamples(31, 20000)
	var s Sketch
	for _, x := range xs {
		s.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		if e := rankError(sorted, s.Quantile(p), p); e > sketchErrBound {
			t.Errorf("p=%g: rank error %.4f > bound %.4f", p, e, sketchErrBound)
		}
	}
	if s.Quantile(0) != sorted[0] || s.Quantile(1) != sorted[len(sorted)-1] {
		t.Errorf("extrema not exact: q0=%g min=%g, q1=%g max=%g",
			s.Quantile(0), sorted[0], s.Quantile(1), sorted[len(sorted)-1])
	}
}

// Merged shard sketches must answer quantiles within the same bound as a
// single sketch over the union.
func TestSketchMergeErrorBound(t *testing.T) {
	xs := normalSamples(37, 16000)
	const shards = 16
	per := len(xs) / shards
	var merged Sketch
	for s := 0; s < shards; s++ {
		sub := NewSketch(0)
		for _, x := range xs[s*per : (s+1)*per] {
			sub.Add(x)
		}
		merged.Merge(sub)
	}
	if got, want := merged.Count(), int64(len(xs)); got != want {
		t.Fatalf("merged count %d != %d", got, want)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0.05, 0.5, 0.95, 0.99} {
		if e := rankError(sorted, merged.Quantile(p), p); e > sketchErrBound {
			t.Errorf("p=%g: merged rank error %.4f > bound %.4f", p, e, sketchErrBound)
		}
	}
}

// Same adds in the same order — and the same merges in the same order —
// must produce bit-identical sketches.
func TestSketchDeterministic(t *testing.T) {
	xs := normalSamples(41, 5000)
	build := func() *Sketch {
		var s Sketch
		for _, x := range xs {
			s.Add(x)
		}
		s.flush()
		return &s
	}
	a, b := build(), build()
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(p) != b.Quantile(p) {
			t.Fatalf("same input, different quantile at p=%g", p)
		}
	}
	mergeBuild := func() *Sketch {
		var m Sketch
		for c := 0; c < 10; c++ {
			sub := NewSketch(0)
			for _, x := range xs[c*500 : (c+1)*500] {
				sub.Add(x)
			}
			m.Merge(sub)
		}
		return &m
	}
	ma, mb := mergeBuild(), mergeBuild()
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if ma.Quantile(p) != mb.Quantile(p) {
			t.Fatalf("same merge order, different quantile at p=%g", p)
		}
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	var s Sketch
	for _, x := range normalSamples(43, 3000) {
		s.Add(x)
	}
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != s.Count() {
		t.Fatalf("count %d != %d after round trip", back.Count(), s.Count())
	}
	for _, p := range []float64{0, 0.05, 0.5, 0.95, 1} {
		if got, want := back.Quantile(p), s.Quantile(p); got != want {
			t.Errorf("p=%g: %g != %g after round trip", p, got, want)
		}
	}
}

func TestSketchEmptyAndSingle(t *testing.T) {
	var s Sketch
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sketch should answer NaN")
	}
	s.Add(3.25)
	for _, p := range []float64{0, 0.5, 1} {
		if got := s.Quantile(p); got != 3.25 {
			t.Fatalf("single-sample sketch Quantile(%g) = %g", p, got)
		}
	}
}

func TestSketchBoundedSize(t *testing.T) {
	var s Sketch
	for _, x := range normalSamples(47, 100000) {
		s.Add(x)
	}
	s.flush()
	if n := len(s.centroids); n > 2*DefaultSketchCompression {
		t.Fatalf("sketch grew to %d centroids for 100k samples (budget %d)",
			n, DefaultSketchCompression)
	}
}

func TestSketchAddNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(NaN) did not panic")
		}
	}()
	new(Sketch).Add(math.NaN())
}
