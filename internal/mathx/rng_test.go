package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %g", u)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sumsq += u * u
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %g, want ~%g", variance, 1.0/12)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var run Running
	for i := 0; i < n; i++ {
		run.Add(r.Norm())
	}
	if math.Abs(run.Mean()) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", run.Mean())
	}
	if math.Abs(run.Variance()-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", run.Variance())
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn bucket %d has %d/50000 hits, want ~10000", i, c)
		}
	}
}

func TestRNGIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitDeterministic(t *testing.T) {
	mk := func() uint64 {
		return NewRNG(23).Split(5).Uint64()
	}
	if mk() != mk() {
		t.Fatal("Split stream not reproducible")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(29)
	var run Running
	for i := 0; i < 100000; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("Exp returned negative %g", x)
		}
		run.Add(x)
	}
	if math.Abs(run.Mean()-1) > 0.02 {
		t.Errorf("Exp mean = %g, want ~1", run.Mean())
	}
}

func TestRNGFloat64OpenNeverZero(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			u := r.Float64Open()
			if u <= 0 || u >= 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
