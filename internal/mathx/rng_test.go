package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %g", u)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sumsq += u * u
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %g, want ~%g", variance, 1.0/12)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var run Running
	for i := 0; i < n; i++ {
		run.Add(r.Norm())
	}
	if math.Abs(run.Mean()) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", run.Mean())
	}
	if math.Abs(run.Variance()-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", run.Variance())
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn bucket %d has %d/50000 hits, want ~10000", i, c)
		}
	}
}

func TestRNGIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitDeterministic(t *testing.T) {
	mk := func() uint64 {
		return NewRNG(23).Split(5).Uint64()
	}
	if mk() != mk() {
		t.Fatal("Split stream not reproducible")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(29)
	var run Running
	for i := 0; i < 100000; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("Exp returned negative %g", x)
		}
		run.Add(x)
	}
	if math.Abs(run.Mean()-1) > 0.02 {
		t.Errorf("Exp mean = %g, want ~1", run.Mean())
	}
}

func TestRNGFloat64OpenNeverZero(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			u := r.Float64Open()
			if u <= 0 || u >= 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// streamCorr returns the Pearson correlation between the first n uniforms
// of two generators.
func streamCorr(a, b *RNG, n int) float64 {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = a.Float64()
		ys[i] = b.Float64()
	}
	return Correlation(xs, ys)
}

// Adjacent seeds must produce uncorrelated streams. Without the SplitMix64
// mix, NewRNG(s) and NewRNG(s+1) start from states one apart, which is
// exactly the pattern a naive per-shard "seed+shard" derivation produces.
func TestRNGAdjacentSeedsUncorrelated(t *testing.T) {
	const n = 4096
	for seed := uint64(1); seed < 8; seed++ {
		c := streamCorr(NewRNG(seed), NewRNG(seed+1), n)
		// |r| for independent samples is ~N(0, 1/sqrt(n)); 5/sqrt(n) is a
		// >5-sigma bound that a correlated pair fails by orders of magnitude.
		if math.Abs(c) > 5/math.Sqrt(n) {
			t.Errorf("seeds %d/%d: correlation %g", seed, seed+1, c)
		}
	}
}

// Adjacent explicit streams of the same seed must be uncorrelated — the
// substream pattern of a sharded campaign (one stream per shard).
func TestRNGAdjacentStreamsUncorrelated(t *testing.T) {
	const n = 4096
	for stream := uint64(0); stream < 8; stream++ {
		c := streamCorr(NewRNGStream(7, stream), NewRNGStream(7, stream+1), n)
		if math.Abs(c) > 5/math.Sqrt(n) {
			t.Errorf("streams %d/%d: correlation %g", stream, stream+1, c)
		}
	}
}

// Adjacent Split children — per-trial substreams indexed by the global
// trial number — must be pairwise uncorrelated.
func TestRNGSplitChildrenUncorrelated(t *testing.T) {
	const n = 4096
	parent := NewRNG(99)
	for i := uint64(0); i < 8; i++ {
		c := streamCorr(parent.Split(i), parent.Split(i+1), n)
		if math.Abs(c) > 5/math.Sqrt(n) {
			t.Errorf("children %d/%d: correlation %g", i, i+1, c)
		}
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit must flip a substantial fraction of output
	// bits (avalanche), averaged over inputs and bit positions.
	total := 0
	const trials = 64
	for i := uint64(0); i < trials; i++ {
		x := i * 0x9e3779b97f4a7c15
		for bit := uint(0); bit < 64; bit++ {
			diff := SplitMix64(x) ^ SplitMix64(x^(1<<bit))
			total += popcount64(diff)
		}
	}
	avg := float64(total) / float64(trials*64)
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %.1f bits, want ~32", avg)
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
