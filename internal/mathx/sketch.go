package mathx

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultSketchCompression is the centroid budget a zero-valued Sketch
// compresses to. At compression δ the sketch holds O(δ) centroids and the
// rank error of a quantile read is bounded by 2/δ at the median, tighter
// towards the tails (the q(1-q) size rule keeps extreme centroids small) —
// so the default bounds rank error to 2 % worst-case, typically well under
// 1 % in practice.
const DefaultSketchCompression = 100

// Centroid is one weighted cluster of a Sketch: Count samples whose mean
// is Mean.
type Centroid struct {
	Mean  float64 `json:"m"`
	Count float64 `json:"c"`
}

// Sketch is a t-digest-style quantile sketch: samples are clustered into
// a bounded list of centroids whose sizes follow the q(1-q) rule, so
// quantiles near 0 and 1 stay sharp while the middle of the distribution
// is summarised coarsely. It is the mergeable counterpart of a sorted
// sample buffer: Merge folds two sketches into one whose quantile reads
// carry the same bounded rank error, which is what lets sharded
// Monte-Carlo campaigns report p50/p95/p99 without shipping every trial
// value. All operations are deterministic: the same samples added in the
// same order — or the same sketches merged in the same order — produce a
// bit-identical sketch. The zero value is ready to use.
type Sketch struct {
	compression float64
	centroids   []Centroid
	count       float64
	min, max    float64
	buf         []float64
}

// NewSketch returns a sketch compressing to ~compression centroids;
// compression <= 0 selects DefaultSketchCompression.
func NewSketch(compression float64) *Sketch {
	s := &Sketch{}
	if compression > 0 {
		s.compression = compression
	}
	return s
}

func (s *Sketch) delta() float64 {
	if s.compression > 0 {
		return s.compression
	}
	return DefaultSketchCompression
}

// Count returns the number of samples the sketch summarises, including
// any still buffered.
func (s *Sketch) Count() int64 { return int64(s.count) + int64(len(s.buf)) }

// Add folds one sample into the sketch. NaN samples are rejected with a
// panic: an undefined metric must be accounted by the caller's NaN
// counter, never silently absorbed into the distribution.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) {
		panic("mathx: Sketch.Add(NaN)")
	}
	s.buf = append(s.buf, x)
	if float64(len(s.buf)) >= 4*s.delta() {
		s.flush()
	}
}

// flush drains the sample buffer into the centroid list and compresses.
func (s *Sketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	if s.count == 0 {
		s.min, s.max = s.buf[0], s.buf[len(s.buf)-1]
	} else {
		if s.buf[0] < s.min {
			s.min = s.buf[0]
		}
		if s.buf[len(s.buf)-1] > s.max {
			s.max = s.buf[len(s.buf)-1]
		}
	}
	for _, x := range s.buf {
		s.centroids = append(s.centroids, Centroid{Mean: x, Count: 1})
	}
	s.count += float64(len(s.buf))
	s.buf = s.buf[:0]
	s.compress()
}

// kScale is the t-digest k₁ scale function: k(q) = δ/2π · asin(2q−1).
// A centroid may span at most one k-unit, which makes its sample weight
// scale with √(q(1−q)) — large in the middle of the distribution, forced
// towards single samples at the tails — and bounds the compressed list to
// ~δ centroids.
func kScale(q, delta float64) float64 {
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	return delta / (2 * math.Pi) * math.Asin(2*q-1)
}

// compress rebuilds the centroid list with the deterministic merging-
// digest pass: a left-to-right sweep over the mean-sorted list, fusing
// neighbours while the fused centroid stays within one k-unit.
func (s *Sketch) compress() {
	if len(s.centroids) <= 1 {
		return
	}
	sort.SliceStable(s.centroids, func(i, j int) bool {
		return s.centroids[i].Mean < s.centroids[j].Mean
	})
	delta := s.delta()
	out := s.centroids[:1]
	done := 0.0 // weight of finalized centroids left of out's last
	kLow := kScale(0, delta)
	for _, c := range s.centroids[1:] {
		last := &out[len(out)-1]
		merged := last.Count + c.Count
		if kScale((done+merged)/s.count, delta)-kLow <= 1 {
			// Weighted-mean merge keeps the centroid exact for its samples.
			last.Mean += (c.Mean - last.Mean) * c.Count / merged
			last.Count = merged
			continue
		}
		done += last.Count
		kLow = kScale(done/s.count, delta)
		out = append(out, c)
	}
	s.centroids = out
}

// Merge folds other into s. Both sketches are flushed first; the result
// summarises the union of their samples with the same bounded rank error.
// Merging is deterministic: the same two sketches merged in the same
// order always produce a bit-identical result.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil {
		return
	}
	other.flush()
	if other.count == 0 {
		return
	}
	s.flush()
	if s.count == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	if s.compression == 0 {
		s.compression = other.compression
	}
	s.centroids = append(s.centroids, other.centroids...)
	s.count += other.count
	s.compress()
}

// Quantile returns the estimated p-quantile (p in [0, 1]), NaN when the
// sketch is empty. Reads interpolate linearly between adjacent centroid
// means and are anchored exactly at the observed extrema, so p=0 and p=1
// are error-free.
func (s *Sketch) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("mathx: Sketch.Quantile p=%g out of [0,1]", p))
	}
	s.flush()
	if s.count == 0 {
		return math.NaN()
	}
	if len(s.centroids) == 1 {
		return s.centroids[0].Mean
	}
	target := p * s.count
	// Cumulative rank at a centroid's mean is the weight strictly before
	// it plus half its own weight.
	sum := 0.0
	prevMean, prevRank := s.min, 0.0
	for _, c := range s.centroids {
		rank := sum + c.Count/2
		if target < rank {
			if rank == prevRank {
				return c.Mean
			}
			return prevMean + (c.Mean-prevMean)*(target-prevRank)/(rank-prevRank)
		}
		prevMean, prevRank = c.Mean, rank
		sum += c.Count
	}
	if target >= s.count {
		return s.max
	}
	if s.count == prevRank {
		return prevMean
	}
	return prevMean + (s.max-prevMean)*(target-prevRank)/(s.count-prevRank)
}

// sketchJSON is the canonical wire form of a Sketch.
type sketchJSON struct {
	Compression float64    `json:"compression,omitempty"`
	Count       float64    `json:"count"`
	Min         float64    `json:"min"`
	Max         float64    `json:"max"`
	Centroids   []Centroid `json:"centroids"`
}

// MarshalJSON encodes the flushed, compressed sketch; the round trip is
// lossless (the decoded sketch answers every quantile identically).
func (s *Sketch) MarshalJSON() ([]byte, error) {
	s.flush()
	return json.Marshal(sketchJSON{
		Compression: s.compression,
		Count:       s.count,
		Min:         s.min,
		Max:         s.max,
		Centroids:   s.centroids,
	})
}

// UnmarshalJSON decodes a sketch previously encoded by MarshalJSON.
func (s *Sketch) UnmarshalJSON(b []byte) error {
	var w sketchJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return fmt.Errorf("mathx: decoding sketch: %w", err)
	}
	*s = Sketch{
		compression: w.Compression,
		centroids:   w.Centroids,
		count:       w.Count,
		min:         w.Min,
		max:         w.Max,
	}
	return nil
}
