package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if v := Variance(xs); !ApproxEqual(v, 32.0/7, 1e-12, 0) {
		t.Errorf("Variance = %g, want %g", v, 32.0/7)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !ApproxEqual(got, c.want, 1e-12, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Median(xs) != 3 {
		t.Error("Median broken")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Correlation(xs, ys); !ApproxEqual(c, 1, 1e-12, 0) {
		t.Errorf("Correlation = %g, want 1", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(xs, neg); !ApproxEqual(c, -1, 1e-12, 0) {
		t.Errorf("Correlation = %g, want -1", c)
	}
}

func TestLinFitRecoversLine(t *testing.T) {
	xs := Linspace(0, 10, 50)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 - 0.7*x
	}
	a, b, r2 := LinFit(xs, ys)
	if !ApproxEqual(a, 3, 1e-9, 1e-9) || !ApproxEqual(b, -0.7, 1e-9, 1e-9) || r2 < 1-1e-12 {
		t.Errorf("LinFit = (%g, %g, %g), want (3, -0.7, 1)", a, b, r2)
	}
}

func TestPowerFitRecoversPowerLaw(t *testing.T) {
	xs := Logspace(0.1, 1000, 30)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5 * math.Pow(x, 0.25)
	}
	c, n, r2 := PowerFit(xs, ys)
	if !ApproxEqual(c, 2.5, 1e-9, 0) || !ApproxEqual(n, 0.25, 1e-9, 0) || r2 < 1-1e-12 {
		t.Errorf("PowerFit = (%g, %g, %g), want (2.5, 0.25, 1)", c, n, r2)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d, want 1, 2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %g, want 0.5", got)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	r := NewRNG(99)
	xs := make([]float64, 1000)
	var run Running
	for i := range xs {
		xs[i] = r.Norm()*3 + 1
		run.Add(xs[i])
	}
	if !ApproxEqual(run.Mean(), Mean(xs), 1e-10, 1e-10) {
		t.Errorf("running mean %g != batch %g", run.Mean(), Mean(xs))
	}
	if !ApproxEqual(run.Variance(), Variance(xs), 1e-10, 1e-10) {
		t.Errorf("running variance %g != batch %g", run.Variance(), Variance(xs))
	}
	lo, hi := MinMax(xs)
	if run.Min() != lo || run.Max() != hi {
		t.Error("running min/max disagree with batch")
	}
}

func TestRunningMergeEquivalence(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		n1 := 1 + r.Intn(50)
		n2 := 1 + r.Intn(50)
		var a, b, all Running
		for i := 0; i < n1; i++ {
			x := r.Norm()
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := r.Norm() * 2
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			ApproxEqual(a.Mean(), all.Mean(), 1e-9, 1e-12) &&
			ApproxEqual(a.Variance(), all.Variance(), 1e-9, 1e-12) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Error("merge with empty changed stats")
	}
	var c Running
	c.Merge(&a)
	if c.N() != 2 || c.Mean() != 2 {
		t.Error("merge into empty lost stats")
	}
}

func TestKSAcceptsMatchingDistribution(t *testing.T) {
	rng := NewRNG(31)
	d := NewNormal(2, 0.5)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	stat := KSStatistic(xs, d)
	if stat > KSCritical(len(xs), 0.01) {
		t.Errorf("KS rejected its own distribution: D=%g crit=%g", stat, KSCritical(len(xs), 0.01))
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	rng := NewRNG(37)
	uni := NewUniform(0, 1)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = uni.Sample(rng)
	}
	stat := KSStatistic(xs, NewNormal(0.5, 0.29))
	if stat < KSCritical(len(xs), 0.05) {
		t.Errorf("KS failed to reject a uniform sample against a normal: D=%g", stat)
	}
}

func TestKSWeibullSelfConsistency(t *testing.T) {
	rng := NewRNG(41)
	w := NewWeibull(2.5, 7)
	xs := make([]float64, 1500)
	for i := range xs {
		xs[i] = w.Sample(rng)
	}
	if stat := KSStatistic(xs, w); stat > KSCritical(len(xs), 0.01) {
		t.Errorf("Weibull KS self-test failed: D=%g", stat)
	}
}

func TestKSCriticalShrinksWithN(t *testing.T) {
	if KSCritical(100, 0.05) <= KSCritical(10000, 0.05) {
		t.Error("critical value must shrink with sample size")
	}
	if KSCritical(100, 0.01) <= KSCritical(100, 0.10) {
		t.Error("tighter alpha must raise the critical value")
	}
}
