package aging_test

import (
	"fmt"

	"repro/internal/aging"
)

// ExampleNBTIModel_ShiftDC shows the Eq. 3 closed form: threshold shift
// after one year of DC stress at a 5 MV/cm oxide field and 125 °C.
func ExampleNBTIModel_ShiftDC() {
	m := aging.DefaultNBTI()
	const year = 365.25 * 24 * 3600
	dvt := m.ShiftDC(5e8, 398, year)
	fmt.Printf("ΔVT after 1 year: %.0f mV\n", dvt*1e3)
	// Output:
	// ΔVT after 1 year: 105 mV
}

// ExampleNBTIModel_ShiftAfterRelax shows the universal relaxation: one hour
// after a 1000-second stress most of the recoverable component is gone.
func ExampleNBTIModel_ShiftAfterRelax() {
	m := aging.DefaultNBTI()
	stressed := m.ShiftDC(5e8, 350, 1e3)
	relaxed := m.ShiftAfterRelax(5e8, 350, 1e3, 3600)
	fmt.Printf("remaining fraction: %.2f\n", relaxed/stressed)
	// Output:
	// remaining fraction: 0.74
}

// ExampleTDDBModel_Eta shows the exponential field acceleration of oxide
// breakdown: one extra MV/cm costs about a decade and a half of lifetime.
func ExampleTDDBModel_Eta() {
	m := aging.DefaultTDDB()
	use := m.Eta(5e8, 330, 1e-12, 2.0)
	stress := m.Eta(6e8, 330, 1e-12, 2.0)
	fmt.Printf("acceleration: %.0fx\n", use/stress)
	// Output:
	// acceleration: 32x
}

// ExampleFitWeibull shows the TDDB data-reduction flow: fit breakdown
// times, then project an accelerated test to use conditions.
func ExampleFitWeibull() {
	// Six breakdown times from an (imaginary) accelerated test, seconds.
	times := []float64{1200, 2100, 2600, 3400, 4100, 5800}
	fit, err := aging.FitWeibull(times)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("beta=%.1f eta=%.0fs points=%d\n", fit.Beta, fit.Eta, fit.N)
	// Output:
	// beta=1.9 eta=3692s points=6
}
