package aging

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestFitWeibullRecoversParameters(t *testing.T) {
	rng := mathx.NewRNG(3)
	w := mathx.NewWeibull(2.2, 1e6)
	times := make([]float64, 500)
	for i := range times {
		times[i] = w.Sample(rng)
	}
	fit, err := FitWeibull(times)
	if err != nil {
		t.Fatal(err)
	}
	// Median-rank regression carries a modest downward beta bias; accept
	// ±15 %.
	if !mathx.ApproxEqual(fit.Beta, 2.2, 0.15, 0) {
		t.Errorf("beta = %g, want ~2.2", fit.Beta)
	}
	if !mathx.ApproxEqual(fit.Eta, 1e6, 0.1, 0) {
		t.Errorf("eta = %g, want ~1e6", fit.Eta)
	}
	if fit.R2 < 0.95 {
		t.Errorf("r² = %g too low for clean Weibull data", fit.R2)
	}
	if fit.N != 500 {
		t.Errorf("N = %d", fit.N)
	}
}

func TestFitWeibullValidation(t *testing.T) {
	if _, err := FitWeibull([]float64{1, 2}); err == nil {
		t.Error("two failures accepted")
	}
	if _, err := FitWeibull([]float64{1, -2, 3, 4}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := FitWeibullCensored([]float64{1, 2, 3}, []bool{true, true}); err == nil {
		t.Error("length mismatch accepted")
	}
	// All suspensions: no failures to fit.
	if _, err := FitWeibullCensored([]float64{1, 2, 3, 4}, []bool{false, false, false, true}); err == nil {
		t.Error("one failure accepted")
	}
}

func TestFitWeibullCensoredUnbiased(t *testing.T) {
	// Type-I censoring at eta: roughly 63% fail; the censored fit should
	// still recover the parameters, while a naive fit that drops
	// suspensions and re-ranks would bias eta low.
	rng := mathx.NewRNG(7)
	w := mathx.NewWeibull(3, 1000)
	const n = 600
	times := make([]float64, n)
	failed := make([]bool, n)
	const censorAt = 1000.0
	for i := range times {
		s := w.Sample(rng)
		if s <= censorAt {
			times[i], failed[i] = s, true
		} else {
			times[i], failed[i] = censorAt, false
		}
	}
	fit, err := FitWeibullCensored(times, failed)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(fit.Eta, 1000, 0.12, 0) {
		t.Errorf("censored eta = %g, want ~1000", fit.Eta)
	}
	if !mathx.ApproxEqual(fit.Beta, 3, 0.25, 0) {
		t.Errorf("censored beta = %g, want ~3", fit.Beta)
	}

	// The naive estimate (failures only, ranked among themselves).
	var failuresOnly []float64
	for i := range times {
		if failed[i] {
			failuresOnly = append(failuresOnly, times[i])
		}
	}
	naive, err := FitWeibull(failuresOnly)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(naive.Eta-1000) <= math.Abs(fit.Eta-1000) {
		t.Logf("note: naive eta %g happened to beat censored %g on this draw", naive.Eta, fit.Eta)
	}
	if naive.Eta >= 1000 {
		t.Errorf("naive fit should underestimate eta, got %g", naive.Eta)
	}
}

func TestFitWeibullOnTDDBStateMachine(t *testing.T) {
	// End-to-end: breakdown times produced by the TDDB state machine must
	// fit back to the model's own Weibull parameters.
	m := DefaultTDDB()
	eox, temp, area, tox := 1.1e9, 330.0, 1e-12, 2.0
	rng := mathx.NewRNG(11)
	eta := m.Eta(eox, temp, area, tox)
	dt := eta / 300
	var times []float64
	for i := 0; i < 400; i++ {
		st := m.NewTDDBState(area, tox, rng)
		tt := 0.0
		for st.Mode == Fresh && tt < 50*eta {
			m.Advance(st, dt, eox, temp, area)
			tt += dt
		}
		times = append(times, tt)
	}
	fit, err := FitWeibull(times)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(fit.Beta, m.WeibullSlope(tox), 0.15, 0) {
		t.Errorf("state-machine beta = %g, model %g", fit.Beta, m.WeibullSlope(tox))
	}
	if !mathx.ApproxEqual(fit.Eta, eta, 0.1, 0) {
		t.Errorf("state-machine eta = %g, model %g", fit.Eta, eta)
	}
}

func TestProjectedLifetime(t *testing.T) {
	m := DefaultTDDB()
	fit := &WeibullFit{Beta: 1.5, Eta: 1e5} // accelerated-test result
	// Relaxing the field and temperature must stretch the lifetime.
	useLife, err := m.ProjectedLifetime(fit, 1.2e9, 400, 5e8, 330, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	stressLife := mathx.NewWeibull(fit.Beta, fit.Eta).Quantile(0.001)
	if useLife <= stressLife {
		t.Errorf("use-condition life %g must exceed stress life %g", useLife, stressLife)
	}
	if useLife/stressLife < 1e3 {
		t.Errorf("field+temperature relaxation should buy decades, got ×%g", useLife/stressLife)
	}
	if _, err := m.ProjectedLifetime(fit, 1e9, 400, 5e8, 330, 1.5); err == nil {
		t.Error("bad failure target accepted")
	}
}

func TestSILCGrowsBeforeBreakdown(t *testing.T) {
	m := DefaultTDDB()
	st := m.NewTDDBState(1e-12, 2.0, mathx.NewRNG(5))
	if st.Leak() != 0 {
		t.Fatal("new oxide must not leak")
	}
	eta := m.Eta(9e8, 330, 1e-12, 2.0)
	var prev float64
	sawPreBDLeak := false
	for st.Mode == Fresh {
		m.Advance(st, eta/50, 9e8, 330, 1e-12)
		if st.Mode != Fresh {
			break
		}
		if st.Leak() < prev {
			t.Fatal("SILC must grow monotonically")
		}
		if st.Leak() > 0 {
			sawPreBDLeak = true
		}
		if st.Leak() > m.GSoft {
			t.Fatalf("SILC %g exceeded the soft-BD conductance", st.Leak())
		}
		prev = st.Leak()
	}
	if !sawPreBDLeak {
		t.Error("no SILC observed before breakdown")
	}
	// Breakdown jumps the leak discontinuously above the SILC level.
	if st.Leak() < m.GSoft {
		t.Errorf("post-BD leak %g below GSoft", st.Leak())
	}
}
