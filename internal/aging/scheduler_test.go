package aging

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
)

// mirrorCircuit builds an NMOS current mirror with a resistive reference.
func mirrorCircuit(tech *device.Technology) *circuit.Circuit {
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	c.AddResistor("RREF", "vdd", "ref", 20e3)
	m1 := device.NewMosfet(tech.NMOSParams(2e-6, 4*tech.Lmin, 300))
	m2 := device.NewMosfet(tech.NMOSParams(2e-6, 4*tech.Lmin, 300))
	c.AddMOSFET("M1", "ref", "ref", "0", "0", m1) // diode-connected
	c.AddMOSFET("M2", "out", "ref", "0", "0", m2)
	c.AddResistor("RL", "vdd", "out", 5e3)
	return c
}

func TestExtractStressOP(t *testing.T) {
	tech := device.MustTech("90nm")
	c := mirrorCircuit(tech)
	if _, err := c.OperatingPoint(); err != nil {
		t.Fatal(err)
	}
	stress := ExtractStressOP(c, 330)
	if len(stress) != 2 {
		t.Fatalf("extracted %d stresses", len(stress))
	}
	s1 := stress["M1"]
	if s1.Vgs <= 0 || s1.Duty != 1 || s1.TempK != 330 {
		t.Errorf("M1 stress implausible: %+v", s1)
	}
	// Diode-connected: vgs == vds.
	if !mathx.ApproxEqual(s1.Vgs, s1.Vds, 1e-9, 1e-12) {
		t.Errorf("diode-connected device must have vgs=vds: %+v", s1)
	}
}

func TestDeviceAgerMonotoneShift(t *testing.T) {
	tech := device.MustTech("65nm")
	dev := device.NewMosfet(tech.NMOSParams(1e-6, 65e-9, 300))
	ager := NewDeviceAger(Models{NBTI: DefaultNBTI(), HCI: DefaultHCI()}, dev, mathx.NewRNG(1))
	stress := Stress{Vgs: 1.1, Vds: 1.1, Duty: 1, TempK: 350}
	prev := 0.0
	for i := 0; i < 50; i++ {
		d := ager.Step(stress, 1e5)
		if d.DeltaVT < prev {
			t.Fatalf("shift decreased at step %d", i)
		}
		prev = d.DeltaVT
	}
	if prev <= 0 {
		t.Fatal("no degradation accumulated under stress")
	}
	if dev.Damage.DeltaVT != prev {
		t.Error("damage not installed on the device")
	}
	nbti, hci := ager.Shifts()
	if hci <= 0 {
		t.Error("nMOS saturation stress must produce HCI")
	}
	if nbti < 0 {
		t.Error("negative NBTI component")
	}
}

func TestPMOSNBTIDominatesNMOS(t *testing.T) {
	tech := device.MustTech("65nm")
	nm := device.NewMosfet(tech.NMOSParams(1e-6, 65e-9, 300))
	pm := device.NewMosfet(tech.PMOSParams(1e-6, 65e-9, 300))
	models := Models{NBTI: DefaultNBTI()}
	agerN := NewDeviceAger(models, nm, mathx.NewRNG(1))
	agerP := NewDeviceAger(models, pm, mathx.NewRNG(2))
	// Gate stress only, no drain bias: pure BTI.
	agerN.Step(Stress{Vgs: 1.1, Duty: 1, TempK: 350}, 1e7)
	agerP.Step(Stress{Vgs: -1.1, Duty: 1, TempK: 350}, 1e7)
	nbtiN, _ := agerN.Shifts()
	nbtiP, _ := agerP.Shifts()
	if nbtiP <= nbtiN {
		t.Errorf("NBTI must hit pMOS harder: pmos=%g nmos=%g", nbtiP, nbtiN)
	}
	if nbtiN <= 0 {
		t.Error("nMOS PBTI should be present but derated")
	}
}

func TestDutyReducesAging(t *testing.T) {
	tech := device.MustTech("65nm")
	mk := func(duty float64) float64 {
		dev := device.NewMosfet(tech.PMOSParams(1e-6, 65e-9, 300))
		ager := NewDeviceAger(Models{NBTI: DefaultNBTI()}, dev, mathx.NewRNG(1))
		ager.Step(Stress{Vgs: -1.1, Duty: duty, TempK: 350}, 1e7)
		n, _ := ager.Shifts()
		return n
	}
	if !(mk(0.25) < mk(0.5) && mk(0.5) < mk(1.0)) {
		t.Error("aging must increase with duty factor")
	}
	if mk(0) != 0 {
		t.Error("zero duty must not age")
	}
}

func TestCircuitAgerMirrorDrifts(t *testing.T) {
	tech := device.MustTech("90nm")
	c := mirrorCircuit(tech)
	ager := NewCircuitAger(c, Models{NBTI: DefaultNBTI(), HCI: DefaultHCI()}, 350, 42)
	const year = 365.25 * 24 * 3600
	traj, err := ager.AgeTo(LogCheckpoints(3600, 10*year, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 13 {
		t.Fatalf("trajectory has %d points", len(traj))
	}
	fresh := traj[0].Solution.Voltage("out")
	aged := traj[len(traj)-1].Solution.Voltage("out")
	// Degraded mirror sinks less current, so V(out) = VDD - I·RL rises.
	if aged <= fresh {
		t.Errorf("output should drift up as the mirror degrades: fresh=%g aged=%g", fresh, aged)
	}
	drift := aged - fresh
	if drift < 1e-4 || drift > 0.5 {
		t.Errorf("10-year drift %g V implausible", drift)
	}
	names := ager.SortedAgerNames()
	if len(names) != 2 || names[0] != "M1" {
		t.Errorf("SortedAgerNames = %v", names)
	}
}

func TestCircuitAgerDeterministic(t *testing.T) {
	tech := device.MustTech("90nm")
	run := func() float64 {
		c := mirrorCircuit(tech)
		ager := NewCircuitAger(c, DefaultModels(), 350, 7)
		traj, err := ager.AgeTo(LogCheckpoints(1e4, 1e8, 8))
		if err != nil {
			t.Fatal(err)
		}
		return traj[len(traj)-1].Solution.Voltage("out")
	}
	if run() != run() {
		t.Error("aging run not reproducible for fixed seed")
	}
}

func TestAgeToValidatesCheckpoints(t *testing.T) {
	tech := device.MustTech("90nm")
	c := mirrorCircuit(tech)
	ager := NewCircuitAger(c, DefaultModels(), 350, 1)
	if _, err := ager.AgeTo(nil); err == nil {
		t.Error("empty checkpoints accepted")
	}
	if _, err := ager.AgeTo([]float64{10, 5}); err == nil {
		t.Error("non-increasing checkpoints accepted")
	}
}

func TestDutyOverride(t *testing.T) {
	tech := device.MustTech("90nm")
	run := func(duty float64) float64 {
		c := mirrorCircuit(tech)
		ager := NewCircuitAger(c, Models{NBTI: DefaultNBTI(), HCI: DefaultHCI()}, 350, 3)
		ager.DutyOverride = map[string]float64{"M1": duty, "M2": duty}
		traj, err := ager.AgeTo([]float64{1e8})
		if err != nil {
			t.Fatal(err)
		}
		return traj[len(traj)-1].Solution.Voltage("out")
	}
	full := run(1)
	light := run(0.1)
	freshC := mirrorCircuit(tech)
	sol, _ := freshC.OperatingPoint()
	fresh := sol.Voltage("out")
	if math.Abs(light-fresh) >= math.Abs(full-fresh) {
		t.Errorf("light duty should age less: |%g| vs |%g|", light-fresh, full-fresh)
	}
}

func TestLifetimeTo(t *testing.T) {
	times := []float64{0, 1e2, 1e4, 1e6, 1e8}
	values := []float64{0, 0.01, 0.02, 0.04, 0.08}
	lt := LifetimeTo(times, values, 0.03, true)
	if lt <= 1e4 || lt >= 1e6 {
		t.Errorf("lifetime %g should be between the bracketing checkpoints", lt)
	}
	// Exact hit on a checkpoint.
	if got := LifetimeTo(times, values, 0.08, true); !mathx.ApproxEqual(got, 1e8, 1e-9, 0) {
		t.Errorf("exact hit = %g", got)
	}
	// Never crossed.
	if !math.IsInf(LifetimeTo(times, values, 1.0, true), 1) {
		t.Error("uncrossed limit must be +Inf")
	}
	// Falling metric.
	falling := []float64{1, 0.9, 0.5, 0.2, 0.1}
	lt2 := LifetimeTo(times, falling, 0.3, false)
	if lt2 <= 1e4 || lt2 >= 1e8 {
		t.Errorf("falling lifetime %g out of range", lt2)
	}
}

func TestLinCheckpoints(t *testing.T) {
	cps := LinCheckpoints(100, 4)
	want := []float64{25, 50, 75, 100}
	for i := range want {
		if cps[i] != want[i] {
			t.Errorf("LinCheckpoints[%d] = %g, want %g", i, cps[i], want[i])
		}
	}
}

func TestTDDBInCircuitEventuallyLeaks(t *testing.T) {
	// With TDDB enabled and brutal overdrive, some device should break
	// down and acquire gate leak within an exaggerated mission.
	tech := device.MustTech("45nm")
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(3.0)) // far above nominal 1.0 V
	c.AddResistor("R1", "vdd", "g", 1e3)
	dev := device.NewMosfet(tech.NMOSParams(10e-6, 45e-9, 300))
	c.AddMOSFET("M1", "d", "g", "0", "0", dev)
	c.AddResistor("RD", "vdd", "d", 10e3)
	ager := NewCircuitAger(c, Models{TDDB: DefaultTDDB()}, 400, 11)
	if _, err := ager.AgeTo(mathx.Logspace(1e4, 1e12, 30)); err != nil {
		t.Fatal(err)
	}
	if ager.Ager("M1").BDMode() == Fresh {
		t.Error("oxide survived an absurd overstress — TDDB coupling broken")
	}
	if dev.Damage.GateLeak <= 0 {
		t.Error("breakdown did not install gate leak")
	}
}
