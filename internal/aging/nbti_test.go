package aging

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestNBTIPowerLawExponent(t *testing.T) {
	m := DefaultNBTI()
	ts := mathx.Logspace(1, 1e8, 20)
	ys := make([]float64, len(ts))
	for i, tt := range ts {
		ys[i] = m.ShiftDC(5e8, 350, tt)
	}
	_, n, r2 := mathx.PowerFit(ts, ys)
	if !mathx.ApproxEqual(n, m.N, 1e-9, 0) || r2 < 1-1e-12 {
		t.Errorf("extracted exponent %g (r2=%g), want %g", n, r2, m.N)
	}
}

func TestNBTIFieldAndTemperatureAcceleration(t *testing.T) {
	m := DefaultNBTI()
	base := m.ShiftDC(4e8, 300, 1e6)
	if hi := m.ShiftDC(6e8, 300, 1e6); hi <= base {
		t.Errorf("field acceleration missing: %g <= %g", hi, base)
	}
	if hot := m.ShiftDC(4e8, 400, 1e6); hot <= base {
		t.Errorf("temperature acceleration missing: %g <= %g", hot, base)
	}
	// Eq. 3 field dependence is exactly exponential in Eox.
	r1 := m.ShiftDC(5e8, 300, 1e6) / m.ShiftDC(4e8, 300, 1e6)
	r2 := m.ShiftDC(6e8, 300, 1e6) / m.ShiftDC(5e8, 300, 1e6)
	if !mathx.ApproxEqual(r1, r2, 1e-9, 0) {
		t.Errorf("field dependence not exponential: ratios %g vs %g", r1, r2)
	}
}

func TestNBTIMagnitudeTenYears(t *testing.T) {
	// The calibration target: tens of mV over a 10-year life at use
	// conditions.
	m := DefaultNBTI()
	const tenYears = 10 * 365.25 * 24 * 3600
	dvt := m.ShiftDC(5e8, 300, tenYears)
	if dvt < 0.02 || dvt > 0.10 {
		t.Errorf("10-year shift %g V outside the plausible 20-100 mV band", dvt)
	}
}

func TestNBTIRelaxationMonotoneAndBounded(t *testing.T) {
	m := DefaultNBTI()
	eox, temp, ts := 5e8, 350.0, 1e5
	full := m.ShiftDC(eox, temp, ts)
	prev := full
	for _, tr := range mathx.Logspace(1e-6, 1e8, 30) {
		v := m.ShiftAfterRelax(eox, temp, ts, tr)
		if v > prev+1e-15 {
			t.Fatalf("relaxation not monotone at tRelax=%g", tr)
		}
		if v < m.PermFrac*full-1e-15 {
			t.Fatalf("relaxed below the permanent floor at tRelax=%g: %g < %g", tr, v, m.PermFrac*full)
		}
		prev = v
	}
	// Long relaxation approaches (but never reaches) the permanent part.
	late := m.ShiftAfterRelax(eox, temp, ts, 1e12)
	if late > 0.6*full {
		t.Errorf("after huge relaxation %g should be close to permanent %g", late, m.PermFrac*full)
	}
}

func TestNBTIRelaxSpansDecades(t *testing.T) {
	// The paper: relaxation has ~logarithmic time dependence spanning
	// microseconds to days. Check r(ξ) drops gradually, not as a step:
	// each decade of relaxation removes a modest additional fraction.
	m := DefaultNBTI()
	const ts = 1e3
	drops := []float64{}
	prev := m.RelaxFactor(ts, 1e-6)
	for _, tr := range mathx.Logspace(1e-5, 1e5, 11) {
		cur := m.RelaxFactor(ts, tr)
		drops = append(drops, prev-cur)
		prev = cur
	}
	for i, d := range drops {
		if d < 0 {
			t.Fatalf("relax factor rose at decade %d", i)
		}
		if d > 0.35 {
			t.Errorf("decade %d removed %g of the recoverable part — too step-like", i, d)
		}
	}
}

func TestNBTIACDutyBehaviour(t *testing.T) {
	m := DefaultNBTI()
	eox, temp, tt := 5e8, 350.0, 1e7
	dc := m.ShiftDC(eox, temp, tt)
	if got := m.ShiftAC(eox, temp, tt, 1); !mathx.ApproxEqual(got, dc, 1e-12, 0) {
		t.Errorf("duty=1 AC %g != DC %g", got, dc)
	}
	if got := m.ShiftAC(eox, temp, tt, 0); got != 0 {
		t.Errorf("duty=0 should give 0, got %g", got)
	}
	prev := 0.0
	for _, d := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		v := m.ShiftAC(eox, temp, tt, d)
		if v <= prev {
			t.Fatalf("AC shift not increasing with duty at %g", d)
		}
		prev = v
	}
	half := m.ShiftAC(eox, temp, tt, 0.5)
	if half >= dc || half < 0.2*dc {
		t.Errorf("50%% duty shift %g should be a substantial fraction of DC %g", half, dc)
	}
}

func TestNBTIACPanicsOnBadDuty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultNBTI().ShiftAC(5e8, 300, 1e6, 1.5)
}

func TestAdvancePowerLawMatchesClosedForm(t *testing.T) {
	k, n := 2e-3, 0.25
	// Single step vs many small steps must agree (consistency of the
	// equivalent-time transformation under constant stress).
	direct := k * math.Pow(1e6, n)
	stepped := 0.0
	for i := 0; i < 100; i++ {
		stepped = advancePowerLaw(stepped, k, n, 1e4)
	}
	if !mathx.ApproxEqual(stepped, direct, 1e-9, 0) {
		t.Errorf("stepped %g != direct %g", stepped, direct)
	}
}

func TestAdvancePowerLawVaryingStress(t *testing.T) {
	// Raising the prefactor mid-life must accelerate (higher final value
	// than staying at low stress, lower than all-high stress).
	n := 0.3
	lowOnly := advancePowerLaw(0, 1e-3, n, 2e6)
	highOnly := advancePowerLaw(0, 5e-3, n, 2e6)
	mixed := advancePowerLaw(advancePowerLaw(0, 1e-3, n, 1e6), 5e-3, n, 1e6)
	if !(lowOnly < mixed && mixed < highOnly) {
		t.Errorf("equivalent-time ordering broken: %g, %g, %g", lowOnly, mixed, highOnly)
	}
}

func TestAdvancePowerLawProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		k := 1e-4 + 1e-3*r.Float64()
		n := 0.1 + 0.5*r.Float64()
		dvt := 1e-3 * r.Float64()
		dt := 1e3 * r.Float64()
		out := advancePowerLaw(dvt, k, n, dt)
		// Monotone non-decreasing; zero dt is identity.
		return out >= dvt && advancePowerLaw(dvt, k, n, 0) == dvt
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNBTIMobilityCoupling(t *testing.T) {
	m := DefaultNBTI()
	if m.MobilityFactor(0) != 1 {
		t.Error("fresh mobility must be 1")
	}
	if f := m.MobilityFactor(0.05); f >= 1 || f < 0.9 {
		t.Errorf("mobility factor %g implausible for 50 mV shift", f)
	}
	if f := m.MobilityFactor(10); f < 0.5 {
		t.Error("mobility factor must be floored")
	}
}
