package aging

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/device"
)

// Regression: AgeTo used to step devices in map-iteration order; it must
// produce bit-identical trajectories and damage run-to-run.
func TestAgeToDeterministicTrajectories(t *testing.T) {
	tech := device.MustTech("65nm")
	checkpoints := LogCheckpoints(3600, 3.15e8, 8)
	run := func(seed uint64) ([]Checkpoint, map[string]device.Damage) {
		c := mirrorCircuit(tech)
		ager := NewCircuitAger(c, DefaultModels(), 360, seed)
		traj, err := ager.AgeTo(checkpoints)
		if err != nil {
			t.Fatal(err)
		}
		dmg := make(map[string]device.Damage)
		for _, m := range c.MOSFETs() {
			dmg[m.Name()] = m.Dev.Damage
		}
		return traj, dmg
	}
	trajA, dmgA := run(7)
	trajB, dmgB := run(7)
	if len(trajA) != len(trajB) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(trajA), len(trajB))
	}
	for i := range trajA {
		if trajA[i].Failed != trajB[i].Failed || trajA[i].Time != trajB[i].Time {
			t.Fatalf("checkpoint %d metadata differs", i)
		}
		if trajA[i].Failed {
			continue
		}
		for j := range trajA[i].Solution.X {
			if trajA[i].Solution.X[j] != trajB[i].Solution.X[j] {
				t.Fatalf("solution differs at checkpoint %d, unknown %d", i, j)
			}
		}
	}
	for name, d := range dmgA {
		if dmgB[name] != d {
			t.Fatalf("damage on %s differs between identical runs", name)
		}
	}
}

// Regression: LogCheckpoints(_, _, 1) used to panic inside mathx.Logspace.
func TestLogCheckpointsDegenerate(t *testing.T) {
	if got := LogCheckpoints(1, 100, 1); len(got) != 1 || got[0] != 100 {
		t.Errorf("LogCheckpoints n=1 = %v, want [100]", got)
	}
	if got := LogCheckpoints(1, 100, 0); got != nil {
		t.Errorf("LogCheckpoints n=0 = %v, want nil", got)
	}
	if got := LogCheckpoints(1, 100, 3); len(got) != 3 || math.Abs(got[2]-100) > 1e-9 {
		t.Errorf("LogCheckpoints n=3 = %v", got)
	}
}

func TestAgeToCtxCancelledReturnsPartial(t *testing.T) {
	tech := device.MustTech("90nm")
	c := mirrorCircuit(tech)
	ager := NewCircuitAger(c, DefaultModels(), 350, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	traj, err := ager.AgeToCtx(ctx, LogCheckpoints(3600, 3.15e8, 6))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The fresh t=0 point was already solved before the first cancellation
	// check; the partial trajectory must carry it.
	if len(traj) != 1 || traj[0].Time != 0 || traj[0].Failed {
		t.Errorf("partial trajectory = %+v, want just the fresh point", traj)
	}
}
