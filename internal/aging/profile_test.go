package aging

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
)

// pmosVehicle is a degradation-sensitive diode-connected pMOS stage.
func pmosVehicle(tech *device.Technology) *circuit.Circuit {
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	c.AddMOSFET("M1", "d", "d", "vdd", "vdd",
		device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300)))
	c.AddResistor("RD", "d", "0", 20e3)
	return c
}

func finalShift(t *testing.T, phases []MissionPhase) float64 {
	t.Helper()
	tech := device.MustTech("65nm")
	c := pmosVehicle(tech)
	ager := NewCircuitAger(c, Models{NBTI: DefaultNBTI()}, 300, 1)
	if _, err := ager.AgeProfile(phases); err != nil {
		t.Fatal(err)
	}
	m, err := c.MOSFETByName("M1")
	if err != nil {
		t.Fatal(err)
	}
	return m.Dev.Damage.DeltaVT
}

func TestAgeProfileHotPhaseAgesMore(t *testing.T) {
	const year = 365.25 * 24 * 3600
	allCold := finalShift(t, []MissionPhase{{Duration: year, TempK: 310, Checkpoints: 4}})
	halfHot := finalShift(t, []MissionPhase{
		{Duration: year / 2, TempK: 310, Checkpoints: 2},
		{Duration: year / 2, TempK: 400, Checkpoints: 2},
	})
	allHot := finalShift(t, []MissionPhase{{Duration: year, TempK: 400, Checkpoints: 4}})
	if !(allCold < halfHot && halfHot < allHot) {
		t.Errorf("profile ordering wrong: cold %g, mixed %g, hot %g", allCold, halfHot, allHot)
	}
}

func TestAgeProfileDutyPerPhase(t *testing.T) {
	const year = 365.25 * 24 * 3600
	idlePhase := finalShift(t, []MissionPhase{
		{Duration: year, TempK: 380, Checkpoints: 2, Duty: map[string]float64{"M1": 0.05}},
	})
	activePhase := finalShift(t, []MissionPhase{
		{Duration: year, TempK: 380, Checkpoints: 2},
	})
	if idlePhase >= activePhase {
		t.Errorf("5%% duty phase should age less: %g >= %g", idlePhase, activePhase)
	}
}

func TestAgeProfileRestoresAgerSettings(t *testing.T) {
	tech := device.MustTech("65nm")
	c := pmosVehicle(tech)
	ager := NewCircuitAger(c, Models{NBTI: DefaultNBTI()}, 333, 1)
	ager.DutyOverride = map[string]float64{"M1": 0.7}
	if _, err := ager.AgeProfile([]MissionPhase{
		{Duration: 1e6, TempK: 400, Checkpoints: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if ager.TempK != 333 || ager.DutyOverride["M1"] != 0.7 {
		t.Error("profile run clobbered the ager's settings")
	}
}

func TestAgeProfileValidation(t *testing.T) {
	tech := device.MustTech("65nm")
	ager := NewCircuitAger(pmosVehicle(tech), DefaultModels(), 300, 1)
	cases := [][]MissionPhase{
		nil,
		{{Duration: -1, TempK: 300, Checkpoints: 1}},
		{{Duration: 1, TempK: 0, Checkpoints: 1}},
		{{Duration: 1, TempK: 300, Checkpoints: 0}},
	}
	for i, phases := range cases {
		if _, err := ager.AgeProfile(phases); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestAgeProfileTrajectoryTimes(t *testing.T) {
	tech := device.MustTech("65nm")
	ager := NewCircuitAger(pmosVehicle(tech), Models{NBTI: DefaultNBTI()}, 300, 1)
	traj, err := ager.AgeProfile([]MissionPhase{
		{Duration: 100, TempK: 350, Checkpoints: 2},
		{Duration: 300, TempK: 400, Checkpoints: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 50, 100, 200, 300, 400}
	if len(traj) != len(want) {
		t.Fatalf("trajectory has %d points, want %d", len(traj), len(want))
	}
	for i, w := range want {
		if traj[i].Time != w {
			t.Errorf("time[%d] = %g, want %g", i, traj[i].Time, w)
		}
	}
}
