package aging

import (
	"sync/atomic"

	"repro/internal/obs"
)

// pkgMetrics holds the degradation engine's instruments: one latency
// histogram per mechanism (the paper's Section 3 taxonomy — TDDB, HCI,
// NBTI; electromigration lives in internal/em with its own metrics) plus
// step and checkpoint counters, so long missions report where their aging
// time goes mechanism by mechanism, the way Grasser-style benchmarks log
// every stress/relax phase separately.
type pkgMetrics struct {
	steps       *obs.Counter
	checkpoints *obs.Counter
	nbtiSeconds *obs.Histogram
	hciSeconds  *obs.Histogram
	tddbSeconds *obs.Histogram
	deltaVT     *obs.Gauge
}

var met atomic.Pointer[pkgMetrics]

// SetMetrics wires the aging engine's instrumentation into reg, or
// disables it when reg is nil.
//
// Metrics registered:
//
//	aging_steps_total        count  DeviceAger.Step calls (one device × one interval)
//	aging_checkpoints_total  count  aging checkpoints solved by CircuitAger.AgeTo(Ctx)
//	aging_nbti_step_seconds  s      per-step NBTI ΔVT update latency
//	aging_hci_step_seconds   s      per-step HCI ΔVT update latency
//	aging_tddb_step_seconds  s      per-step TDDB advance latency
//	aging_last_delta_vt      V      most recent composed ΔVT installed on a device
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&pkgMetrics{
		steps:       reg.Counter("aging_steps_total", "1", "device aging steps"),
		checkpoints: reg.Counter("aging_checkpoints_total", "1", "aging checkpoints solved"),
		nbtiSeconds: reg.Histogram("aging_nbti_step_seconds", "s", "NBTI step latency", nil),
		hciSeconds:  reg.Histogram("aging_hci_step_seconds", "s", "HCI step latency", nil),
		tddbSeconds: reg.Histogram("aging_tddb_step_seconds", "s", "TDDB step latency", nil),
		deltaVT:     reg.Gauge("aging_last_delta_vt", "V", "last composed threshold shift"),
	})
}
