package aging

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestHCIPowerLawExponent(t *testing.T) {
	m := DefaultHCI()
	ts := mathx.Logspace(10, 1e8, 15)
	ys := make([]float64, len(ts))
	for i, tt := range ts {
		ys[i] = m.Shift(5e-3, 5e8, 8e7, 300, tt, false)
	}
	_, n, r2 := mathx.PowerFit(ts, ys)
	if !mathx.ApproxEqual(n, m.N, 1e-9, 0) || r2 < 1-1e-12 {
		t.Errorf("exponent %g (r2=%g), want %g", n, r2, m.N)
	}
}

func TestHCILateralFieldAcceleration(t *testing.T) {
	m := DefaultHCI()
	// Eq. 2: exp(−Φit/(λ·Em)) — hugely sensitive to Em.
	low := m.Shift(5e-3, 5e8, 4e7, 300, 1e6, false)
	high := m.Shift(5e-3, 5e8, 8e7, 300, 1e6, false)
	if high <= low {
		t.Fatalf("lateral field acceleration missing: %g <= %g", high, low)
	}
	if high/low < 100 {
		t.Errorf("doubling Em should accelerate HCI by orders of magnitude, got ×%g", high/low)
	}
	if m.Shift(5e-3, 5e8, 0, 300, 1e6, false) != 0 {
		t.Error("zero lateral field must give zero HCI")
	}
}

func TestHCIPMOSWeaker(t *testing.T) {
	m := DefaultHCI()
	n := m.Shift(5e-3, 5e8, 8e7, 300, 1e6, false)
	p := m.Shift(5e-3, 5e8, 8e7, 300, 1e6, true)
	if p >= n {
		t.Errorf("pMOS HCI %g should be far below nMOS %g", p, n)
	}
	if !mathx.ApproxEqual(p/n, m.PMOSFactor, 1e-9, 0) {
		t.Errorf("pMOS derating %g, want %g", p/n, m.PMOSFactor)
	}
}

func TestHCITemperatureTrend(t *testing.T) {
	m := DefaultHCI()
	cold := m.Shift(5e-3, 5e8, 8e7, 250, 1e6, false)
	hot := m.Shift(5e-3, 5e8, 8e7, 400, 1e6, false)
	if hot <= cold {
		t.Errorf("deep-submicron HCI should worsen with T: %g <= %g", hot, cold)
	}
}

func TestHCICouplings(t *testing.T) {
	m := DefaultHCI()
	if m.MobilityFactor(0) != 1 || m.LambdaFactor(0) != 1 {
		t.Error("fresh factors must be 1")
	}
	if m.MobilityFactor(0.1) >= 1 {
		t.Error("mobility must degrade")
	}
	if m.LambdaFactor(0.1) <= 1 {
		t.Error("lambda (output conductance) must increase")
	}
}

func TestTDDBWeibullSlopeThinnerIsWider(t *testing.T) {
	m := DefaultTDDB()
	if m.WeibullSlope(8) <= m.WeibullSlope(2) {
		t.Error("thicker oxide must have steeper Weibull slope")
	}
	if m.WeibullSlope(0.5) != m.BetaMin {
		t.Error("slope must be floored at BetaMin")
	}
}

func TestTDDBEtaTrends(t *testing.T) {
	m := DefaultTDDB()
	base := m.Eta(5e8, 300, 1e-12, 2)
	if m.Eta(7e8, 300, 1e-12, 2) >= base {
		t.Error("higher field must shorten TBD")
	}
	if m.Eta(5e8, 400, 1e-12, 2) >= base {
		t.Error("higher temperature must shorten TBD")
	}
	if m.Eta(5e8, 300, 1e-10, 2) >= base {
		t.Error("larger area must shorten TBD (weakest link)")
	}
	// Area scaling is Poisson/weakest-link: η ∝ A^(−1/β).
	beta := m.WeibullSlope(2)
	r := m.Eta(5e8, 300, 1e-12, 2) / m.Eta(5e8, 300, 1e-11, 2)
	if !mathx.ApproxEqual(r, math.Pow(10, 1/beta), 1e-9, 0) {
		t.Errorf("area scaling ratio %g, want %g", r, math.Pow(10, 1/beta))
	}
}

func TestTDDBFieldAccelerationDecades(t *testing.T) {
	// ~1.5 decades of lifetime per MV/cm is the calibration.
	m := DefaultTDDB()
	r := m.Eta(5e8, 300, 1e-12, 2) / m.Eta(6e8, 300, 1e-12, 2)
	decades := math.Log10(r)
	if decades < 1.0 || decades > 2.0 {
		t.Errorf("1 MV/cm should buy 1-2 decades, got %g", decades)
	}
}

func TestModesForLadder(t *testing.T) {
	cases := []struct {
		tox  float64
		want []BDMode
	}{
		{7, []BDMode{HardBD}},
		{3, []BDMode{SoftBD, HardBD}},
		{1.8, []BDMode{SoftBD, ProgressiveBD, HardBD}},
	}
	for _, c := range cases {
		got := ModesFor(c.tox)
		if len(got) != len(c.want) {
			t.Errorf("ModesFor(%g) = %v", c.tox, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ModesFor(%g)[%d] = %v, want %v", c.tox, i, got[i], c.want[i])
			}
		}
	}
}

func TestTDDBStateProgressionUltraThin(t *testing.T) {
	// Drive an ultra-thin oxide hard and watch it walk the full ladder:
	// Fresh → SBD → PBD → HBD with leak growing monotonically.
	m := DefaultTDDB()
	rng := mathx.NewRNG(3)
	st := m.NewTDDBState(1e-12, 1.8, rng)
	if st.Mode != Fresh || st.Leak() != 0 {
		t.Fatal("new state must be fresh")
	}
	seen := map[BDMode]bool{Fresh: true}
	prevLeak := 0.0
	// Very high field so breakdown happens quickly in simulated time.
	for i := 0; i < 100000 && st.Mode != HardBD; i++ {
		m.Advance(st, 1e6, 1.2e9, 330, 1e-12)
		seen[st.Mode] = true
		if st.Leak() < prevLeak-1e-18 {
			t.Fatalf("leak decreased at step %d", i)
		}
		prevLeak = st.Leak()
	}
	for _, mode := range []BDMode{SoftBD, ProgressiveBD, HardBD} {
		if !seen[mode] {
			t.Errorf("mode %v never visited", mode)
		}
	}
	if st.Leak() != m.GHard {
		t.Errorf("HBD leak = %g, want %g", st.Leak(), m.GHard)
	}
	if st.MobilityFactor() != 0.80 {
		t.Errorf("HBD mobility factor = %g", st.MobilityFactor())
	}
}

func TestTDDBThickOxideSkipsSoftBD(t *testing.T) {
	m := DefaultTDDB()
	rng := mathx.NewRNG(5)
	st := m.NewTDDBState(1e-12, 7, rng)
	for i := 0; i < 200000 && st.Mode == Fresh; i++ {
		m.Advance(st, 1e7, 1.5e9, 350, 1e-12)
	}
	if st.Mode != HardBD {
		t.Fatalf("thick oxide should jump straight to HBD, got %v", st.Mode)
	}
}

func TestTDDBMidThicknessSBDThenHBD(t *testing.T) {
	m := DefaultTDDB()
	rng := mathx.NewRNG(7)
	st := m.NewTDDBState(1e-12, 3.5, rng)
	sawSBD := false
	for i := 0; i < 400000 && st.Mode != HardBD; i++ {
		m.Advance(st, 1e7, 1.5e9, 350, 1e-12)
		if st.Mode == SoftBD {
			sawSBD = true
		}
		if st.Mode == ProgressiveBD {
			t.Fatal("3.5 nm oxide must not enter PBD")
		}
	}
	if !sawSBD || st.Mode != HardBD {
		t.Errorf("mid-thickness ladder broken: sawSBD=%v final=%v", sawSBD, st.Mode)
	}
}

func TestTDDBSampledTBDMatchesWeibull(t *testing.T) {
	// Under constant stress, the state-machine breakdown times must
	// reproduce the analytic Weibull distribution.
	m := DefaultTDDB()
	eox, temp, area, tox := 1.1e9, 330.0, 1e-12, 2.0
	eta := m.Eta(eox, temp, area, tox)
	beta := m.WeibullSlope(tox)
	rng := mathx.NewRNG(11)
	const n = 3000
	times := make([]float64, 0, n)
	dt := eta / 200
	for i := 0; i < n; i++ {
		st := m.NewTDDBState(area, tox, rng)
		tt := 0.0
		for st.Mode == Fresh {
			m.Advance(st, dt, eox, temp, area)
			tt += dt
			if tt > eta*100 {
				break
			}
		}
		times = append(times, tt)
	}
	// Median check: Weibull median = η·(ln 2)^(1/β).
	wantMedian := eta * math.Pow(math.Ln2, 1/beta)
	gotMedian := mathx.Median(times)
	if !mathx.ApproxEqual(gotMedian, wantMedian, 0.08, 0) {
		t.Errorf("median TBD %g, Weibull says %g", gotMedian, wantMedian)
	}
	// Full-distribution check: Kolmogorov-Smirnov against the analytic
	// Weibull (generous alpha — the discrete stepping quantises the
	// times).
	ks := mathx.KSStatistic(times, mathx.NewWeibull(beta, eta))
	if ks > 2*mathx.KSCritical(len(times), 0.01) {
		t.Errorf("TBD sample KS=%g too far from the analytic Weibull", ks)
	}
}

func TestTDDBDeterministicPerSeed(t *testing.T) {
	m := DefaultTDDB()
	mk := func() float64 {
		st := m.NewTDDBState(1e-12, 2, mathx.NewRNG(99))
		tt := 0.0
		for st.Mode == Fresh && tt < 1e12 {
			m.Advance(st, 1e6, 1.1e9, 330, 1e-12)
			tt += 1e6
		}
		return tt
	}
	if mk() != mk() {
		t.Error("same seed must give same breakdown time")
	}
}

func TestTDDBConsumedLife(t *testing.T) {
	m := DefaultTDDB()
	st := m.NewTDDBState(1e-12, 2, mathx.NewRNG(1))
	if st.ConsumedLife() != 0 {
		t.Error("fresh consumed life must be 0")
	}
	m.Advance(st, 1e6, 1.1e9, 330, 1e-12)
	if st.ConsumedLife() <= 0 {
		t.Error("consumed life must grow under stress")
	}
}
