package aging

import "fmt"

// MissionPhase is one leg of a temperature/duty mission profile — e.g. an
// automotive profile alternating cold start, highway cruise and
// under-hood soak. Degradation models see each phase's temperature and
// the phase-local duty override.
type MissionPhase struct {
	// Duration in seconds.
	Duration float64
	// TempK is the junction temperature during this phase.
	TempK float64
	// Checkpoints subdivides the phase (≥1); stress is re-extracted at
	// each.
	Checkpoints int
	// Duty optionally overrides per-device duty during this phase.
	Duty map[string]float64
}

// AgeProfile walks the circuit through a multi-phase mission, re-solving
// the operating point and re-extracting stress at every checkpoint. The
// returned trajectory carries absolute mission time.
func (a *CircuitAger) AgeProfile(phases []MissionPhase) ([]Checkpoint, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("aging: empty mission profile")
	}
	for i, p := range phases {
		if p.Duration <= 0 {
			return nil, fmt.Errorf("aging: phase %d has non-positive duration", i)
		}
		if p.TempK <= 0 {
			return nil, fmt.Errorf("aging: phase %d has non-positive temperature", i)
		}
		if p.Checkpoints < 1 {
			return nil, fmt.Errorf("aging: phase %d needs at least one checkpoint", i)
		}
	}
	sol, err := a.Circuit.OperatingPoint()
	if err != nil {
		return nil, fmt.Errorf("aging: fresh operating point: %w", err)
	}
	traj := []Checkpoint{{Time: 0, Solution: sol}}
	savedTemp := a.TempK
	savedDuty := a.DutyOverride
	defer func() {
		a.TempK = savedTemp
		a.DutyOverride = savedDuty
	}()

	now := 0.0
	for _, p := range phases {
		a.TempK = p.TempK
		a.DutyOverride = p.Duty
		dt := p.Duration / float64(p.Checkpoints)
		for k := 0; k < p.Checkpoints; k++ {
			stress := ExtractStressOP(a.Circuit, a.TempK)
			for name, ager := range a.agers {
				s := stress[name]
				if a.DutyOverride != nil {
					if d, ok := a.DutyOverride[name]; ok {
						s.Duty = d
					}
				}
				ager.Step(s, dt)
			}
			now += dt
			sol, err := a.Circuit.OperatingPoint()
			if err != nil {
				traj = append(traj, Checkpoint{Time: now, Failed: true})
				continue
			}
			traj = append(traj, Checkpoint{Time: now, Solution: sol})
		}
	}
	return traj, nil
}
