package aging

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mathx"
)

// WeibullFit is the result of fitting breakdown data to a two-parameter
// Weibull distribution — the standard TDDB data-reduction step: plotting
// ln(−ln(1−F)) against ln(t) linearises the CDF with slope β.
type WeibullFit struct {
	// Beta is the fitted Weibull slope (shape).
	Beta float64
	// Eta is the fitted scale (63.2 % quantile) in the input time unit.
	Eta float64
	// R2 is the coefficient of determination of the rank regression.
	R2 float64
	// N is the number of failures used.
	N int
}

// FitWeibull fits breakdown times by median-rank regression (Benard's
// approximation F_i ≈ (i−0.3)/(n+0.4)). All samples are failures; use
// FitWeibullCensored when some units survived the test. It requires at
// least three strictly positive times.
func FitWeibull(times []float64) (*WeibullFit, error) {
	failed := make([]bool, len(times))
	for i := range failed {
		failed[i] = true
	}
	return FitWeibullCensored(times, failed)
}

// FitWeibullCensored fits breakdown data with suspensions (units removed
// from test or still alive at the end) using Johnson's adjusted-rank
// method: suspensions do not plot, but they push later failures to higher
// ranks. times[i] is the observed time of unit i; failed[i] marks real
// breakdowns.
func FitWeibullCensored(times []float64, failed []bool) (*WeibullFit, error) {
	if len(times) != len(failed) {
		return nil, fmt.Errorf("aging: times and failure flags must pair up")
	}
	type unit struct {
		t      float64
		failed bool
	}
	units := make([]unit, 0, len(times))
	nFail := 0
	for i, t := range times {
		if t <= 0 {
			return nil, fmt.Errorf("aging: non-positive time %g at %d", t, i)
		}
		units = append(units, unit{t, failed[i]})
		if failed[i] {
			nFail++
		}
	}
	if nFail < 3 {
		return nil, fmt.Errorf("aging: need at least 3 failures, have %d", nFail)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].t < units[j].t })

	n := float64(len(units))
	var lx, ly []float64
	prevRank := 0.0
	for i, u := range units {
		if !u.failed {
			continue
		}
		// Johnson adjusted rank: increment grows as suspensions pass.
		increment := (n + 1 - prevRank) / (n + 1 - float64(i))
		rank := prevRank + increment
		prevRank = rank
		f := (rank - 0.3) / (n + 0.4) // Benard median rank
		lx = append(lx, math.Log(u.t))
		ly = append(ly, mathx.Weibit(f))
	}
	a, b, r2 := mathx.LinFit(lx, ly)
	// ln(−ln(1−F)) = β·ln t − β·ln η  =>  slope β, intercept −β ln η.
	beta := b
	if beta <= 0 {
		return nil, fmt.Errorf("aging: non-positive fitted slope %g", beta)
	}
	eta := math.Exp(-a / beta)
	return &WeibullFit{Beta: beta, Eta: eta, R2: r2, N: nFail}, nil
}

// ProjectedLifetime extrapolates a fitted stress-test distribution to use
// conditions with the exponential field model and Arrhenius temperature
// acceleration (the same laws TDDBModel uses), returning the use-condition
// time at the given cumulative failure target (e.g. 0.0001 for 100 ppm).
func (m *TDDBModel) ProjectedLifetime(fit *WeibullFit,
	stressEox, stressTempK, useEox, useTempK, failureTarget float64) (float64, error) {
	if failureTarget <= 0 || failureTarget >= 1 {
		return 0, fmt.Errorf("aging: failure target %g out of (0,1)", failureTarget)
	}
	af := math.Exp(m.GammaE*(stressEox-useEox)) *
		math.Exp(m.EaBD/boltzmannEV*(1/useTempK-1/stressTempK))
	useEta := fit.Eta * af
	w := mathx.NewWeibull(fit.Beta, useEta)
	return w.Quantile(failureTarget), nil
}
