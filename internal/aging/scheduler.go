package aging

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/obs"
)

// Stress is the per-device stress condition over one aging interval,
// extracted from simulation.
type Stress struct {
	// Vgs, Vds, Vbs are representative terminal biases in volts.
	Vgs, Vds, Vbs float64
	// Duty is the fraction of the interval the device spends under gate
	// stress (1 for DC-biased analog branches).
	Duty float64
	// TempK is the junction temperature.
	TempK float64
}

// Models bundles the degradation mechanisms applied during aging. Nil
// members disable the mechanism.
type Models struct {
	NBTI *NBTIModel
	HCI  *HCIModel
	TDDB *TDDBModel
}

// DefaultModels enables all three mechanisms at default calibration.
func DefaultModels() Models {
	return Models{NBTI: DefaultNBTI(), HCI: DefaultHCI(), TDDB: DefaultTDDB()}
}

// DeviceAger accumulates wear for a single MOSFET across aging steps with
// time-varying stress.
type DeviceAger struct {
	models Models
	dev    *device.Mosfet

	nbtiShift float64 // recoverable+permanent envelope under current duty
	hciShift  float64
	tddb      *TDDBState
	elapsed   float64
}

// NewDeviceAger creates the wear tracker for dev; rng seeds the TDDB
// percolation draw.
func NewDeviceAger(models Models, dev *device.Mosfet, rng *mathx.RNG) *DeviceAger {
	a := &DeviceAger{models: models, dev: dev}
	if models.TDDB != nil {
		area := dev.Params.W * dev.Params.L
		a.tddb = models.TDDB.NewTDDBState(area, dev.Params.Tox*1e9, rng)
	}
	return a
}

// Step ages the device by dt seconds under the given stress and installs
// the resulting Damage on the device model.
func (a *DeviceAger) Step(stress Stress, dt float64) device.Damage {
	if dt < 0 {
		panic(fmt.Sprintf("aging: negative dt %g", dt))
	}
	m := met.Load()
	if m != nil {
		m.steps.Inc()
	}
	a.elapsed += dt
	isPMOS := a.dev.Params.Type == device.PMOS
	eox := a.dev.OxideField(stress.Vgs)
	duty := stress.Duty
	if duty <= 0 {
		duty = 0
	}

	// NBTI: negative gate bias on pMOS (flipped-space |vgs| with the gate
	// pulled below the source). nMOS PBTI exists but is far weaker; derate.
	if a.models.NBTI != nil {
		var sp obs.Span
		if m != nil {
			sp = obs.StartSpan(m.nbtiSeconds)
		}
		a.stepNBTI(stress, dt, eox, duty, isPMOS)
		sp.End()
	}

	// HCI: saturation stress with channel current flowing. The effective
	// lateral field follows |vds|.
	if a.models.HCI != nil && math.Abs(stress.Vds) > 0.1 && duty > 0 {
		var sp obs.Span
		if m != nil {
			sp = obs.StartSpan(m.hciSeconds)
		}
		em := a.dev.LateralField(stress.Vds)
		qi := a.dev.InversionCharge(stress.Vgs)
		k := a.models.HCI.Prefactor(qi, eox, em, stress.TempK, isPMOS)
		a.hciShift = advancePowerLaw(a.hciShift, k, a.models.HCI.N, duty*dt)
		sp.End()
	}

	// TDDB: the vertical field wears the oxide whenever the gate is
	// biased; duty scales the exposure time.
	if a.tddb != nil && duty > 0 {
		var sp obs.Span
		if m != nil {
			sp = obs.StartSpan(m.tddbSeconds)
		}
		area := a.dev.Params.W * a.dev.Params.L
		a.models.TDDB.Advance(a.tddb, duty*dt, eox, stress.TempK, area)
		sp.End()
	}

	dmg := a.damage()
	a.dev.Damage = dmg
	if m != nil {
		m.deltaVT.Set(dmg.DeltaVT)
	}
	return dmg
}

// stepNBTI advances the NBTI envelope for one interval (split out so the
// per-mechanism timing span wraps exactly the mechanism's work).
func (a *DeviceAger) stepNBTI(stress Stress, dt, eox, duty float64, isPMOS bool) {
	factor := 1.0
	gateStressed := false
	if isPMOS && stress.Vgs < -0.05 {
		gateStressed = true
	} else if !isPMOS && stress.Vgs > 0.05 {
		gateStressed = true
		factor = 0.1 // PBTI derating on nMOS
	}
	if gateStressed && duty > 0 {
		k := a.models.NBTI.prefactor(eox, stress.TempK) * factor
		// AC correction folds the per-cycle relaxation depth into the
		// effective prefactor (see ShiftAC).
		if duty < 1 {
			xi := (1 - duty) / duty
			r := 1 / (1 + a.models.NBTI.RelaxB*math.Pow(xi, a.models.NBTI.RelaxBeta))
			k *= a.models.NBTI.PermFrac + (1-a.models.NBTI.PermFrac)*r
		}
		a.nbtiShift = advancePowerLaw(a.nbtiShift, k, a.models.NBTI.N, duty*dt)
	}
}

// damage composes the current degradation state into a device.Damage.
func (a *DeviceAger) damage() device.Damage {
	d := device.FreshDamage()
	d.DeltaVT = a.nbtiShift + a.hciShift
	if a.models.NBTI != nil {
		d.MobilityFactor *= a.models.NBTI.MobilityFactor(a.nbtiShift)
	}
	if a.models.HCI != nil {
		d.MobilityFactor *= a.models.HCI.MobilityFactor(a.hciShift)
		d.LambdaFactor *= a.models.HCI.LambdaFactor(a.hciShift)
	}
	if a.tddb != nil {
		d.MobilityFactor *= a.tddb.MobilityFactor()
		d.GateLeak += a.tddb.Leak()
	}
	return d
}

// BDMode returns the present oxide-breakdown mode (Fresh when TDDB is
// disabled).
func (a *DeviceAger) BDMode() BDMode {
	if a.tddb == nil {
		return Fresh
	}
	return a.tddb.Mode
}

// Shifts returns the separate NBTI and HCI threshold-shift components.
func (a *DeviceAger) Shifts() (nbti, hci float64) { return a.nbtiShift, a.hciShift }

// ExtractStressOP derives per-device stress from the operating points
// captured at the circuit's last converged solution, assuming DC bias
// (duty = 1). tempK sets the junction temperature.
func ExtractStressOP(c *circuit.Circuit, tempK float64) map[string]Stress {
	out := make(map[string]Stress)
	for _, m := range c.MOSFETs() {
		vgs, vds, vbs := m.BiasVoltages()
		out[m.Name()] = Stress{Vgs: vgs, Vds: vds, Vbs: vbs, Duty: 1, TempK: tempK}
	}
	return out
}

// CircuitAger runs the full simulate→stress→degrade loop over a circuit.
type CircuitAger struct {
	Circuit *circuit.Circuit
	Models  Models
	// TempK is the mission junction temperature.
	TempK float64
	// DutyOverride, when non-nil, maps device name to stress duty factor
	// (for switched circuits whose duty is known by construction).
	DutyOverride map[string]float64
	// OnCheckpoint, when non-nil, is called synchronously from AgeToCtx
	// after each checkpoint solve with the count of mission checkpoints
	// completed so far (1-based, excluding the t=0 snapshot) and the
	// checkpoint just produced. It is a progress tap for long missions —
	// the job server streams these as events; it must not mutate the
	// circuit.
	OnCheckpoint func(done int, cp Checkpoint)

	agers map[string]*DeviceAger
}

// NewCircuitAger prepares agers for every MOSFET in the circuit. seed fixes
// the TDDB percolation draws, so a given (circuit, seed) ages identically
// on every run.
func NewCircuitAger(c *circuit.Circuit, models Models, tempK float64, seed uint64) *CircuitAger {
	root := mathx.NewRNG(seed)
	a := &CircuitAger{
		Circuit: c, Models: models, TempK: tempK,
		agers: make(map[string]*DeviceAger),
	}
	mosfets := c.MOSFETs()
	for i, m := range mosfets {
		a.agers[m.Name()] = NewDeviceAger(models, m.Dev, root.Split(uint64(i)))
	}
	return a
}

// Ager returns the per-device wear tracker.
func (a *CircuitAger) Ager(name string) *DeviceAger { return a.agers[name] }

// Checkpoint is one point of an aging trajectory.
type Checkpoint struct {
	// Time is the cumulative mission time in seconds.
	Time float64
	// Solution is the operating point at that age (nil if the circuit no
	// longer converges — a hard functional failure).
	Solution *circuit.Solution
	// Failed marks convergence failure.
	Failed bool
}

// AgeTo is AgeToCtx with context.Background().
//
// Deprecated: call AgeToCtx so long missions can be cancelled or bounded
// by a deadline; this wrapper remains for source compatibility only.
func (a *CircuitAger) AgeTo(checkpoints []float64) ([]Checkpoint, error) {
	return a.AgeToCtx(context.Background(), checkpoints)
}

// AgeToCtx ages the circuit from its current state through the given
// checkpoint times (strictly increasing, seconds). At each checkpoint the
// operating point is re-solved, stress re-extracted, and all devices aged
// over the next interval; the returned trajectory has one entry per
// checkpoint. Cancellation is checked before every checkpoint, and a
// cancelled run returns the partial trajectory computed so far alongside
// an error wrapping ctx.Err(). Devices are stepped in sorted name order
// so a given (circuit, seed, checkpoints) ages identically run-to-run.
func (a *CircuitAger) AgeToCtx(ctx context.Context, checkpoints []float64) ([]Checkpoint, error) {
	if len(checkpoints) == 0 {
		return nil, fmt.Errorf("aging: no checkpoints")
	}
	for i := 1; i < len(checkpoints); i++ {
		if checkpoints[i] <= checkpoints[i-1] {
			return nil, fmt.Errorf("aging: checkpoints not increasing at %d", i)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	traj := make([]Checkpoint, 0, len(checkpoints)+1)
	sol, err := a.Circuit.OperatingPoint()
	if err != nil {
		return nil, fmt.Errorf("aging: fresh operating point: %w", err)
	}
	traj = append(traj, Checkpoint{Time: 0, Solution: sol})

	names := a.SortedAgerNames()
	prev := 0.0
	for ck, t := range checkpoints {
		if err := ctx.Err(); err != nil {
			return traj, fmt.Errorf("aging: cancelled at t=%g: %w", prev, err)
		}
		stress := ExtractStressOP(a.Circuit, a.TempK)
		dt := t - prev
		for _, name := range names {
			s := stress[name]
			if a.DutyOverride != nil {
				if d, ok := a.DutyOverride[name]; ok {
					s.Duty = d
				}
			}
			a.agers[name].Step(s, dt)
		}
		prev = t
		if m := met.Load(); m != nil {
			m.checkpoints.Inc()
		}
		cp := Checkpoint{Time: t}
		if sol, err := a.Circuit.OperatingPoint(); err != nil {
			cp.Failed = true
		} else {
			cp.Solution = sol
		}
		traj = append(traj, cp)
		if a.OnCheckpoint != nil {
			a.OnCheckpoint(ck+1, cp)
		}
	}
	return traj, nil
}

// LogCheckpoints returns n log-spaced aging checkpoints from tFirst to
// tEnd — the right spacing for power-law degradation, where early decades
// matter as much as late ones. n == 1 degenerates to the single point
// tEnd (there is no spacing to choose); n < 1 returns nil.
func LogCheckpoints(tFirst, tEnd float64, n int) []float64 {
	if n < 1 {
		return nil
	}
	if n == 1 {
		return []float64{tEnd}
	}
	return mathx.Logspace(tFirst, tEnd, n)
}

// LinCheckpoints returns n linearly spaced checkpoints ending at tEnd
// (starting at tEnd/n).
func LinCheckpoints(tEnd float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = tEnd * float64(i+1) / float64(n)
	}
	return out
}

// LifetimeTo returns the time at which metric(t) first crosses limit,
// interpolating in log-time between trajectory points. times and values
// must be parallel, with times[0] allowed to be 0 (skipped for the log
// interpolation). It returns +Inf when the limit is never crossed. The
// metric is assumed monotone in the crossing region; rising reports
// whether the metric crosses the limit from below.
func LifetimeTo(times, values []float64, limit float64, rising bool) float64 {
	if len(times) != len(values) {
		panic("aging: LifetimeTo length mismatch")
	}
	crossed := func(v float64) bool {
		if rising {
			return v >= limit
		}
		return v <= limit
	}
	for i, v := range values {
		if !crossed(v) {
			continue
		}
		if i == 0 || times[i-1] <= 0 {
			return times[i]
		}
		// Log-time linear interpolation between i-1 and i.
		t0, t1 := math.Log(times[i-1]), math.Log(times[i])
		v0, v1 := values[i-1], values[i]
		if v1 == v0 {
			return times[i]
		}
		f := (limit - v0) / (v1 - v0)
		return math.Exp(t0 + f*(t1-t0))
	}
	return math.Inf(1)
}

// SortedAgerNames returns the device names with agers, sorted, for
// deterministic reporting.
func (a *CircuitAger) SortedAgerNames() []string {
	out := make([]string, 0, len(a.agers))
	for n := range a.agers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
