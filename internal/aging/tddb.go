package aging

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// BDMode is the oxide-breakdown progression state. Which modes occur
// depends on oxide thickness (paper §3.1): thick oxides go straight to
// hard breakdown; below ~5 nm a soft breakdown precedes it; below ~2.5 nm
// the soft breakdown wears out progressively before turning hard.
type BDMode int

const (
	// Fresh: no breakdown event yet (SILC-level wear only).
	Fresh BDMode = iota
	// SoftBD: a conductive percolation path with limited current.
	SoftBD
	// ProgressiveBD: the soft path grows steadily (ultra-thin oxides).
	ProgressiveBD
	// HardBD: full loss of dielectric properties, mA-range gate current.
	HardBD
)

// String names the mode.
func (m BDMode) String() string {
	switch m {
	case SoftBD:
		return "SBD"
	case ProgressiveBD:
		return "PBD"
	case HardBD:
		return "HBD"
	default:
		return "fresh"
	}
}

// TDDBModel parameterises time-dependent dielectric breakdown with the
// exponential field ("E") model and Weibull statistics:
//
//	η(E, T, A) = EtaRef · exp(−GammaE·Eox) · exp(EaBD/kT) · (ARef/A)^(1/β)
//	P(TBD ≤ t) = 1 − exp(−(t/η)^β)
//
// with β, the Weibull slope, shrinking with oxide thickness (thin oxides
// break down with much wider statistical spread).
type TDDBModel struct {
	// EtaRef is the scale-time prefactor in seconds.
	EtaRef float64
	// GammaE is the field-acceleration factor in m/V.
	GammaE float64
	// EaBD is the thermal activation energy in eV.
	EaBD float64
	// ARef is the reference gate area in m².
	ARef float64
	// BetaPerNM sets the Weibull slope: β = max(BetaMin, BetaPerNM·Tox[nm]).
	BetaPerNM, BetaMin float64
	// GSoft and GHard are the post-breakdown gate conductances in siemens.
	GSoft, GHard float64
	// TauPBD and PPBD control progressive-breakdown growth of the soft
	// path: G(t) = GSoft·(1 + (t−tSBD)/TauPBD)^PPBD.
	TauPBD, PPBD float64
	// GSILCMax caps the stress-induced leakage current conductance that
	// builds up *before* breakdown as traps accumulate in the oxide (the
	// paper: "a stress-induced leakage current (SILC) is produced during
	// this degradation stage"). The pre-BD leak grows as
	// GSILCMax·(consumed life)^SILCExp, remaining well below GSoft.
	GSILCMax, SILCExp float64
}

// DefaultTDDB returns a parameter set anchored so that a 2 nm oxide at its
// nominal use field has a 63 % breakdown time around 10⁹–10¹⁰ s, collapsing
// by decades under accelerated fields — the standard qualification picture.
func DefaultTDDB() *TDDBModel {
	return &TDDBModel{
		EtaRef:    1.5e8,
		GammaE:    3.45e-8, // ≈1.5 decades per MV/cm
		EaBD:      0.6,
		ARef:      1e-12, // 1 µm²
		BetaPerNM: 0.45,
		BetaMin:   1.0,
		GSoft:     2e-7, // ~0.2 µA at 1 V: SBD "lower gate currents"
		GHard:     2e-3, // mA range at standard voltages, per the paper
		TauPBD:    5e7,
		PPBD:      2.2,
		GSILCMax:  2e-9, // two decades below the SBD conductance
		SILCExp:   1.6,
	}
}

// WeibullSlope returns β for an oxide thickness in nm.
func (m *TDDBModel) WeibullSlope(toxNM float64) float64 {
	b := m.BetaPerNM * toxNM
	if b < m.BetaMin {
		b = m.BetaMin
	}
	return b
}

// Eta returns the Weibull scale time (63.2 % point) for oxide field eox
// (V/m), temperature tempK, gate area in m² and thickness toxNM.
func (m *TDDBModel) Eta(eox, tempK, area, toxNM float64) float64 {
	if area <= 0 {
		panic(fmt.Sprintf("aging: non-positive gate area %g", area))
	}
	beta := m.WeibullSlope(toxNM)
	return m.EtaRef *
		math.Exp(-m.GammaE*eox) *
		math.Exp(m.EaBD/(boltzmannEV*tempK)) *
		math.Pow(m.ARef/area, 1/beta)
}

// TBDDistribution returns the Weibull distribution of time-to-breakdown at
// fixed stress, for direct statistical analysis (Weibull plots etc.).
func (m *TDDBModel) TBDDistribution(eox, tempK, area, toxNM float64) mathx.Weibull {
	return mathx.NewWeibull(m.WeibullSlope(toxNM), m.Eta(eox, tempK, area, toxNM))
}

// ModesFor returns the breakdown mode sequence for an oxide thickness:
// thick oxide → {HBD}; 2.5–5 nm → {SBD, HBD}; < 2.5 nm → {SBD, PBD, HBD}.
func ModesFor(toxNM float64) []BDMode {
	switch {
	case toxNM >= 5:
		return []BDMode{HardBD}
	case toxNM >= 2.5:
		return []BDMode{SoftBD, HardBD}
	default:
		return []BDMode{SoftBD, ProgressiveBD, HardBD}
	}
}

// TDDBState tracks one device's oxide through the breakdown ladder under
// (possibly time-varying) stress. Normalised-age accounting makes the state
// exact for varying fields: the fraction of life consumed accumulates as
// Σ dt/η(stress), and breakdown fires when it crosses a Weibull-distributed
// critical value sampled once per device.
type TDDBState struct {
	Mode BDMode
	// consumed is the normalised age Σ dt/η.
	consumed float64
	// critAge is the sampled normalised age at first breakdown.
	critAge float64
	// critHBD is the sampled additional age from SBD to HBD (thick ladder).
	critHBD float64
	// tInMode is wall-clock time spent since entering the current mode.
	tInMode float64
	// leak is the present gate conductance in siemens.
	leak  float64
	toxNM float64
	beta  float64
}

// NewTDDBState samples a device's breakdown destiny. area in m², toxNM in
// nm. Uses rng for the Weibull draws; a device's fate is fixed at birth
// (its weakest percolation path), stress only sets how fast it is reached.
func (m *TDDBModel) NewTDDBState(area, toxNM float64, rng *mathx.RNG) *TDDBState {
	beta := m.WeibullSlope(toxNM)
	unit := mathx.NewWeibull(beta, 1)
	return &TDDBState{
		Mode:    Fresh,
		critAge: unit.Sample(rng),
		critHBD: unit.Sample(rng),
		toxNM:   toxNM,
		beta:    beta,
	}
}

// Advance ages the oxide by dt seconds at oxide field eox and temperature
// tempK (area in m² must match the construction-time device). It returns
// the new mode (which may be unchanged).
func (m *TDDBModel) Advance(st *TDDBState, dt, eox, tempK, area float64) BDMode {
	if dt <= 0 {
		return st.Mode
	}
	eta := m.Eta(eox, tempK, area, st.toxNM)
	switch st.Mode {
	case Fresh:
		st.consumed += dt / eta
		// SILC: trap accumulation leaks before any breakdown fires.
		frac := st.consumed / st.critAge
		if frac > 1 {
			frac = 1
		}
		st.leak = m.GSILCMax * math.Pow(frac, m.SILCExp)
		if st.consumed >= st.critAge {
			modes := ModesFor(st.toxNM)
			st.Mode = modes[0]
			st.tInMode = 0
			if st.Mode == HardBD {
				st.leak = m.GHard
			} else {
				st.leak = m.GSoft
			}
		}
	case SoftBD:
		st.tInMode += dt
		if st.toxNM < 2.5 {
			// Ultra-thin: soft BD becomes progressive immediately per the
			// paper ("SBD is followed by Progressive-BD"); we enter PBD
			// after a short latency of one tenth of TauPBD.
			if st.tInMode >= m.TauPBD/10 {
				st.Mode = ProgressiveBD
				st.tInMode = 0
			}
		} else {
			// Thicker ladder: an independent second Weibull draw governs
			// the SBD→HBD transition, accelerated by the same field law.
			st.consumed += dt / eta
			if st.consumed >= st.critAge+st.critHBD {
				st.Mode = HardBD
				st.leak = m.GHard
				st.tInMode = 0
			}
		}
	case ProgressiveBD:
		st.tInMode += dt
		// Slow gate-current growth over time (PBD signature).
		st.leak = m.GSoft * math.Pow(1+st.tInMode/m.TauPBD, m.PPBD)
		if st.leak >= m.GHard {
			st.leak = m.GHard
			st.Mode = HardBD
			st.tInMode = 0
		}
	case HardBD:
		st.tInMode += dt
		st.leak = m.GHard
	}
	return st.Mode
}

// Leak returns the present post-breakdown gate conductance in siemens.
func (st *TDDBState) Leak() float64 { return st.leak }

// MobilityFactor returns the channel-current derating associated with the
// breakdown state: the paper reports that a BD spot acts as local mobility
// reduction, with limited effect right after SBD and a significant one at
// longer times / harder breakdowns.
func (st *TDDBState) MobilityFactor() float64 {
	switch st.Mode {
	case SoftBD:
		return 0.98
	case ProgressiveBD:
		return 0.92
	case HardBD:
		return 0.80
	default:
		return 1
	}
}

// ConsumedLife returns the normalised fraction of the sampled breakdown
// life already consumed (can exceed 1 after breakdown).
func (st *TDDBState) ConsumedLife() float64 {
	if st.critAge == 0 {
		return 0
	}
	return st.consumed / st.critAge
}
