package aging

import (
	"fmt"

	"repro/internal/mathx"
)

// Phase is one leg of a stress/relax schedule.
type Phase struct {
	// Duration in seconds.
	Duration float64
	// Stressed marks the gate as biased (stress accumulates); otherwise
	// the device relaxes.
	Stressed bool
}

// TracePoint is one sample of a time-resolved degradation trace.
type TracePoint struct {
	// T is absolute time in seconds.
	T float64
	// DeltaVT is the instantaneous threshold shift in volts.
	DeltaVT float64
	// Stressed echoes the phase the sample belongs to.
	Stressed bool
}

// NBTITrace produces the time-resolved ΔVT waveform of a device walked
// through an arbitrary stress/relax schedule — the classic sawtooth of
// dynamic-NBTI measurements ([10] Chen et al.): growth along the power law
// while stressed, logarithmic-like decay of the recoverable component
// while relaxed, with the permanent component ratcheting upward.
// samplesPerPhase sets the time resolution inside each phase (log-spaced
// within relaxation phases, where the action spans decades).
func NBTITrace(m *NBTIModel, eox, tempK float64, schedule []Phase, samplesPerPhase int) ([]TracePoint, error) {
	if len(schedule) == 0 {
		return nil, fmt.Errorf("aging: empty schedule")
	}
	if samplesPerPhase < 2 {
		return nil, fmt.Errorf("aging: need at least 2 samples per phase")
	}
	for i, p := range schedule {
		if p.Duration <= 0 {
			return nil, fmt.Errorf("aging: phase %d has non-positive duration", i)
		}
	}
	var (
		out        []TracePoint
		now        float64
		stressTime float64 // accumulated effective stress time
		perm, rec  float64 // current components
	)
	k := func() float64 { return m.prefactor(eox, tempK) }
	for _, p := range schedule {
		if p.Stressed {
			// The recoverable part refills quickly on re-stress: resume
			// the power law from the equivalent time of the *current*
			// total, then grow.
			times := mathx.Linspace(0, p.Duration, samplesPerPhase)
			for _, dt := range times[1:] {
				total := advancePowerLaw(perm+rec, k(), m.N, dt)
				out = append(out, TracePoint{T: now + dt, DeltaVT: total, Stressed: true})
			}
			total := advancePowerLaw(perm+rec, k(), m.N, p.Duration)
			perm = m.PermFrac * total
			rec = (1 - m.PermFrac) * total
			stressTime += p.Duration
			now += p.Duration
		} else {
			if stressTime == 0 {
				// Nothing to relax yet; flat zero segment.
				out = append(out, TracePoint{T: now + p.Duration, DeltaVT: 0})
				now += p.Duration
				continue
			}
			// Log-spaced samples capture the decades-spanning decay.
			recAtPhaseStart := rec
			times := mathx.Logspace(p.Duration/1e4, p.Duration, samplesPerPhase)
			for _, dt := range times {
				r := m.RelaxFactor(stressTime, dt)
				out = append(out, TracePoint{T: now + dt, DeltaVT: perm + recAtPhaseStart*r})
			}
			rec = recAtPhaseStart * m.RelaxFactor(stressTime, p.Duration)
			now += p.Duration
		}
	}
	return out, nil
}

// PeriodicSchedule builds an n-cycle square schedule with the given period
// and stress duty factor — the AC-stress pattern of §3.3.
func PeriodicSchedule(period, duty float64, cycles int) ([]Phase, error) {
	if period <= 0 || duty <= 0 || duty >= 1 || cycles < 1 {
		return nil, fmt.Errorf("aging: bad periodic schedule (period=%g duty=%g cycles=%d)", period, duty, cycles)
	}
	out := make([]Phase, 0, 2*cycles)
	for i := 0; i < cycles; i++ {
		out = append(out,
			Phase{Duration: duty * period, Stressed: true},
			Phase{Duration: (1 - duty) * period, Stressed: false},
		)
	}
	return out, nil
}
