package aging

import (
	"testing"

	"repro/internal/mathx"
)

func TestMSMZeroDelayIsTruth(t *testing.T) {
	m := DefaultNBTI()
	ts := mathx.Logspace(1, 1e6, 10)
	res, err := MSMExperiment(m, 5e8, 350, ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.True {
		if !mathx.ApproxEqual(res.Measured[i], res.True[i], 1e-12, 0) {
			t.Fatalf("zero-delay measurement differs from truth at %d", i)
		}
	}
	if res.UnderestimatePct > 1e-9 {
		t.Error("zero delay must not underestimate")
	}
	if !mathx.ApproxEqual(res.TrueExponent, m.N, 1e-9, 0) {
		t.Errorf("true exponent %g != model %g", res.TrueExponent, m.N)
	}
}

func TestMSMDelayUnderestimatesShift(t *testing.T) {
	m := DefaultNBTI()
	ts := mathx.Logspace(1, 1e6, 10)
	res, err := MSMExperiment(m, 5e8, 350, ts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.True {
		if res.Measured[i] >= res.True[i] {
			t.Fatalf("delayed measurement must lose shift at point %d", i)
		}
	}
	if res.UnderestimatePct <= 0 || res.UnderestimatePct >= 60 {
		t.Errorf("underestimate %.1f%% implausible", res.UnderestimatePct)
	}
}

func TestMSMSlowMeasurementInflatesExponent(t *testing.T) {
	// The classic artefact: short stress times relax proportionally more
	// during the measurement gap (ξ = delay/tStress is larger), steepening
	// the apparent power law. Ultra-fast measurement recovers the true n.
	m := DefaultNBTI()
	ts := mathx.Logspace(1, 1e6, 12)
	ns, err := ExponentVsDelay(m, 5e8, 350, ts, []float64{1e-6, 1e-3, 1, 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Fatalf("apparent exponent must grow with delay: %v", ns)
		}
	}
	if ns[0] > m.N*1.1 {
		t.Errorf("microsecond measurement should recover ~true n: got %g vs %g", ns[0], m.N)
	}
	if ns[len(ns)-1] < m.N*1.08 {
		t.Errorf("100 s delay should visibly inflate n: got %g vs %g", ns[len(ns)-1], m.N)
	}
}

func TestMSMValidation(t *testing.T) {
	m := DefaultNBTI()
	if _, err := MSMExperiment(m, 5e8, 350, []float64{1, 2}, 0); err == nil {
		t.Error("too few points accepted")
	}
	if _, err := MSMExperiment(m, 5e8, 350, []float64{1, 2, 3}, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := MSMExperiment(m, 5e8, 350, []float64{3, 2, 4}, 0); err == nil {
		t.Error("non-increasing times accepted")
	}
}
