// Package aging implements the time-dependent degradation mechanisms of the
// paper's Section 3 — NBTI (Eq. 3) with universal relaxation, HCI (Eq. 2),
// and TDDB with the SBD/PBD/HBD mode ladder — plus the circuit-level aging
// scheduler that couples them to the simulator: simulate → extract stress →
// degrade → re-simulate.
package aging

import (
	"fmt"
	"math"
)

// boltzmannEV is k in eV/K.
const boltzmannEV = 8.617333262e-5

// NBTIModel is the negative-bias temperature instability model of Eq. 3:
//
//	ΔVT = A · exp(Eox/E0) · exp(−Ea/kT) · t^n
//
// augmented with the universal relaxation behaviour described in the paper:
// after stress removal the recoverable component decays approximately
// logarithmically over many decades, while a permanent component locks in.
type NBTIModel struct {
	// A is the process prefactor in volts.
	A float64
	// E0 is the oxide-field acceleration constant in V/m.
	E0 float64
	// Ea is the thermal activation energy in eV.
	Ea float64
	// N is the power-law time exponent (0.15-0.25 in literature).
	N float64
	// PermFrac is the fraction of the shift that never recovers.
	PermFrac float64
	// RelaxB and RelaxBeta parameterise the universal relaxation function
	// r(ξ) = 1/(1 + RelaxB·ξ^RelaxBeta), ξ = t_relax/t_stress.
	RelaxB, RelaxBeta float64
}

// DefaultNBTI returns parameters calibrated to give ~40 mV of DC shift
// after 10 years at a 5 MV/cm oxide field and 300 K — representative of the
// nanometer nodes the paper discusses.
func DefaultNBTI() *NBTIModel {
	return &NBTIModel{
		A:         0.16,
		E0:        1e9,
		Ea:        0.15,
		N:         0.2,
		PermFrac:  0.4,
		RelaxB:    0.6,
		RelaxBeta: 0.17,
	}
}

// ShiftDC returns the threshold shift in volts after tStress seconds of
// uninterrupted stress at oxide field eox (V/m) and temperature tempK.
func (m *NBTIModel) ShiftDC(eox, tempK, tStress float64) float64 {
	if tStress <= 0 {
		return 0
	}
	return m.prefactor(eox, tempK) * math.Pow(tStress, m.N)
}

// prefactor is the stress-dependent K in ΔVT = K·t^n.
func (m *NBTIModel) prefactor(eox, tempK float64) float64 {
	return m.A * math.Exp(eox/m.E0) * math.Exp(-m.Ea/(boltzmannEV*tempK))
}

// RelaxFactor returns the universal relaxation fraction r(ξ) ∈ (0, 1] for
// relaxation time tRelax after stress time tStress; the recoverable
// component is multiplied by it. r spans many time decades, matching the
// microsecond-to-days relaxation reported in the paper.
func (m *NBTIModel) RelaxFactor(tStress, tRelax float64) float64 {
	if tRelax <= 0 || tStress <= 0 {
		return 1
	}
	xi := tRelax / tStress
	return 1 / (1 + m.RelaxB*math.Pow(xi, m.RelaxBeta))
}

// ShiftAfterRelax returns the remaining shift tRelax seconds after the end
// of a tStress DC stress: the permanent part plus the relaxed recoverable
// part.
func (m *NBTIModel) ShiftAfterRelax(eox, tempK, tStress, tRelax float64) float64 {
	total := m.ShiftDC(eox, tempK, tStress)
	perm := m.PermFrac * total
	rec := (1 - m.PermFrac) * total
	return perm + rec*m.RelaxFactor(tStress, tRelax)
}

// ShiftAC returns the quasi-static envelope for periodic gate stress with
// the given duty factor ∈ (0, 1]: the device accumulates stress for
// duty·t seconds, and the recoverable component settles to the per-cycle
// relaxation depth r(ξ) with ξ = (1−duty)/duty.
func (m *NBTIModel) ShiftAC(eox, tempK, t, duty float64) float64 {
	if duty <= 0 {
		return 0
	}
	if duty > 1 {
		panic(fmt.Sprintf("aging: duty factor %g > 1", duty))
	}
	total := m.ShiftDC(eox, tempK, duty*t)
	if duty == 1 {
		return total
	}
	perm := m.PermFrac * total
	rec := (1 - m.PermFrac) * total
	xi := (1 - duty) / duty
	return perm + rec/(1+m.RelaxB*math.Pow(xi, m.RelaxBeta))
}

// MobilityFactor returns the mobility multiplier associated with an NBTI
// threshold shift: interface traps that shift VT also scatter carriers.
// The coupling uses the common linear-in-ΔVT first-order model.
func (m *NBTIModel) MobilityFactor(deltaVT float64) float64 {
	f := 1 - 0.5*deltaVT
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// advancePowerLaw advances a power-law degradation dvt = K·t^n by dt under
// a possibly changed prefactor K, using the equivalent-time transformation:
// the current dvt is converted to an equivalent stress time under K and the
// law is then advanced by dt. This is the standard way to integrate
// power-law aging under time-varying stress.
func advancePowerLaw(dvt, k, n, dt float64) float64 {
	if dt <= 0 || k <= 0 {
		return dvt
	}
	teq := 0.0
	if dvt > 0 {
		teq = math.Pow(dvt/k, 1/n)
	}
	return k * math.Pow(teq+dt, n)
}
