package aging

import (
	"testing"
)

func TestNBTITraceSawtooth(t *testing.T) {
	m := DefaultNBTI()
	schedule := []Phase{
		{Duration: 1e4, Stressed: true},
		{Duration: 1e4, Stressed: false},
		{Duration: 1e4, Stressed: true},
		{Duration: 1e4, Stressed: false},
	}
	trace, err := NBTITrace(m, 5e8, 350, schedule, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 40 {
		t.Fatalf("trace too sparse: %d points", len(trace))
	}
	// Time must be non-decreasing.
	for i := 1; i < len(trace); i++ {
		if trace[i].T < trace[i-1].T {
			t.Fatalf("time went backwards at %d", i)
		}
	}
	// Within the first stress phase the shift grows monotonically.
	var firstStressEnd int
	for i, p := range trace {
		if !p.Stressed {
			firstStressEnd = i
			break
		}
	}
	for i := 1; i < firstStressEnd; i++ {
		if trace[i].DeltaVT < trace[i-1].DeltaVT {
			t.Fatal("shift must grow under stress")
		}
	}
	// Within the first relax phase the shift decays.
	peak := trace[firstStressEnd-1].DeltaVT
	relaxEnd := firstStressEnd
	for relaxEnd < len(trace) && !trace[relaxEnd].Stressed {
		relaxEnd++
	}
	trough := trace[relaxEnd-1].DeltaVT
	if trough >= peak {
		t.Fatalf("no relaxation: peak %g, trough %g", peak, trough)
	}
	if trough < m.PermFrac*peak {
		t.Fatalf("relaxed below the permanent floor: %g < %g", trough, m.PermFrac*peak)
	}
	// The second stress phase must exceed the first peak (ratcheting).
	final := trace[len(trace)-1]
	maxAll := 0.0
	for _, p := range trace {
		if p.DeltaVT > maxAll {
			maxAll = p.DeltaVT
		}
	}
	if maxAll <= peak {
		t.Error("second stress cycle should ratchet above the first peak")
	}
	_ = final
}

func TestNBTITraceStartsRelaxed(t *testing.T) {
	m := DefaultNBTI()
	trace, err := NBTITrace(m, 5e8, 350, []Phase{
		{Duration: 100, Stressed: false},
		{Duration: 100, Stressed: true},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if trace[0].DeltaVT != 0 {
		t.Error("unstressed device must show zero shift")
	}
	if trace[len(trace)-1].DeltaVT <= 0 {
		t.Error("stress after idle must degrade")
	}
}

func TestNBTITraceValidation(t *testing.T) {
	m := DefaultNBTI()
	if _, err := NBTITrace(m, 5e8, 350, nil, 10); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NBTITrace(m, 5e8, 350, []Phase{{Duration: -1, Stressed: true}}, 10); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := NBTITrace(m, 5e8, 350, []Phase{{Duration: 1, Stressed: true}}, 1); err == nil {
		t.Error("single sample accepted")
	}
}

func TestPeriodicSchedule(t *testing.T) {
	sch, err := PeriodicSchedule(1e3, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sch) != 6 {
		t.Fatalf("schedule has %d phases", len(sch))
	}
	total := 0.0
	stressTotal := 0.0
	for _, p := range sch {
		total += p.Duration
		if p.Stressed {
			stressTotal += p.Duration
		}
	}
	if total != 3e3 || stressTotal != 0.25*3e3 {
		t.Errorf("durations wrong: total %g, stressed %g", total, stressTotal)
	}
	if _, err := PeriodicSchedule(1, 1.0, 3); err == nil {
		t.Error("duty=1 accepted")
	}
	if _, err := PeriodicSchedule(1, 0.5, 0); err == nil {
		t.Error("zero cycles accepted")
	}
}

func TestPeriodicTraceBelowDC(t *testing.T) {
	// After many 50% duty cycles the envelope must sit below an
	// uninterrupted DC stress of the same wall-clock duration.
	m := DefaultNBTI()
	sch, err := PeriodicSchedule(1e3, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := NBTITrace(m, 5e8, 350, sch, 8)
	if err != nil {
		t.Fatal(err)
	}
	maxAC := 0.0
	for _, p := range trace {
		if p.DeltaVT > maxAC {
			maxAC = p.DeltaVT
		}
	}
	dc := m.ShiftDC(5e8, 350, 20*1e3)
	if maxAC >= dc {
		t.Errorf("AC envelope %g should stay below DC %g", maxAC, dc)
	}
	if maxAC < 0.3*dc {
		t.Errorf("AC envelope %g implausibly far below DC %g", maxAC, dc)
	}
}
