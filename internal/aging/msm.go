package aging

import (
	"fmt"

	"repro/internal/mathx"
)

// MSMResult is the outcome of a simulated measure-stress-measure NBTI
// characterisation. The paper (§3.3) stresses that relaxation "greatly
// complicates the evaluation of NBTI, its modeling, and extrapolating its
// impact on circuitry": any measurement delay lets part of the shift
// relax away, distorting both the magnitude and the apparent time
// exponent. This experiment quantifies that artefact against the model's
// ground truth — the methodology behind the ultra-fast VT measurements the
// paper cites ([34] Reisinger et al.).
type MSMResult struct {
	// StressTimes are the cumulative stress times at each measurement.
	StressTimes []float64
	// True is the instantaneous (zero-delay) shift at each point.
	True []float64
	// Measured is the shift seen MeasureDelay seconds after interrupting
	// the stress.
	Measured []float64
	// MeasureDelay is the instrument delay in seconds.
	MeasureDelay float64
	// TrueExponent and ApparentExponent are the power-law exponents
	// extracted from each curve.
	TrueExponent, ApparentExponent float64
	// UnderestimatePct is the relative magnitude error at the final
	// stress time, in percent.
	UnderestimatePct float64
}

// MSMExperiment simulates an NBTI characterisation run: stress at oxide
// field eox and temperature tempK, interrupt at each of stressTimes, wait
// measureDelay, record the remaining shift. stressTimes must be positive
// and increasing; measureDelay must be non-negative.
func MSMExperiment(m *NBTIModel, eox, tempK float64, stressTimes []float64, measureDelay float64) (*MSMResult, error) {
	if len(stressTimes) < 3 {
		return nil, fmt.Errorf("aging: MSM needs at least 3 stress times")
	}
	if measureDelay < 0 {
		return nil, fmt.Errorf("aging: negative measurement delay %g", measureDelay)
	}
	for i, t := range stressTimes {
		if t <= 0 || (i > 0 && t <= stressTimes[i-1]) {
			return nil, fmt.Errorf("aging: stress times must be positive and increasing")
		}
	}
	res := &MSMResult{
		StressTimes:  append([]float64(nil), stressTimes...),
		MeasureDelay: measureDelay,
	}
	for _, ts := range stressTimes {
		res.True = append(res.True, m.ShiftDC(eox, tempK, ts))
		res.Measured = append(res.Measured, m.ShiftAfterRelax(eox, tempK, ts, measureDelay))
	}
	_, nTrue, _ := mathx.PowerFit(res.StressTimes, res.True)
	_, nApp, _ := mathx.PowerFit(res.StressTimes, res.Measured)
	res.TrueExponent = nTrue
	res.ApparentExponent = nApp
	last := len(stressTimes) - 1
	res.UnderestimatePct = 100 * (res.True[last] - res.Measured[last]) / res.True[last]
	return res, nil
}

// ExponentVsDelay sweeps the measurement delay and returns the apparent
// power-law exponent at each — the canonical plot showing why slow
// measurement setups systematically over-extract n and why the field moved
// to microsecond measurements.
func ExponentVsDelay(m *NBTIModel, eox, tempK float64, stressTimes, delays []float64) ([]float64, error) {
	out := make([]float64, 0, len(delays))
	for _, d := range delays {
		r, err := MSMExperiment(m, eox, tempK, stressTimes, d)
		if err != nil {
			return nil, err
		}
		out = append(out, r.ApparentExponent)
	}
	return out, nil
}
