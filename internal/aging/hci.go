package aging

import "math"

// HCIModel is the hot-carrier injection model of Eq. 2 (Wang et al.):
//
//	ΔVT = A · (Qi/QiRef) · exp(Eox/E0) · exp(−Φit/(λ·Em)) · t^n
//
// Φit is the trap-generation energy expressed in volts (i.e. φit/q), λ the
// hot-electron mean free path, Em the peak lateral field. HCI barely
// recovers (the paper: "this recovery is negligible in comparison to NBTI
// relaxation"), so the model is monotone in stress time.
type HCIModel struct {
	// A is the prefactor in volts.
	A float64
	// QiRef normalises the inversion charge (C/m²).
	QiRef float64
	// E0 is the vertical-field acceleration constant in V/m.
	E0 float64
	// PhiIt is the trap generation energy in volts (φit/q ≈ 3.7 V).
	PhiIt float64
	// Lambda is the hot-carrier mean free path in metres.
	Lambda float64
	// N is the time exponent (≈ 0.45 in literature).
	N float64
	// TempExp scales degradation with (T/300K)^TempExp; for deep-submicron
	// technologies HCI worsens slightly with temperature ([44]).
	TempExp float64
	// PMOSFactor derates the model for p-channel devices, where holes are
	// "much cooler than electrons".
	PMOSFactor float64
}

// DefaultHCI returns parameters giving ~50 mV after 10 years of continuous
// worst-case stress on a 65 nm nMOS, derating rapidly at lower drain bias.
func DefaultHCI() *HCIModel {
	return &HCIModel{
		A:          1.1e-3,
		QiRef:      5e-3, // Cox' · ~0.3 V overdrive at 2 nm oxide
		E0:         1e9,
		PhiIt:      3.7,
		Lambda:     8e-9,
		N:          0.45,
		TempExp:    0.5,
		PMOSFactor: 0.15,
	}
}

// Prefactor returns K in ΔVT = K·t^n for inversion charge qi (C/m²),
// vertical field eox (V/m), lateral field em (V/m) and temperature tempK.
func (m *HCIModel) Prefactor(qi, eox, em, tempK float64, isPMOS bool) float64 {
	if em <= 0 {
		return 0
	}
	k := m.A * (qi / m.QiRef) *
		math.Exp(eox/m.E0) *
		math.Exp(-m.PhiIt/(m.Lambda*em)) *
		math.Pow(tempK/300, m.TempExp)
	if isPMOS {
		k *= m.PMOSFactor
	}
	return k
}

// Shift returns the threshold shift after t seconds of continuous stress.
func (m *HCIModel) Shift(qi, eox, em, tempK, t float64, isPMOS bool) float64 {
	if t <= 0 {
		return 0
	}
	return m.Prefactor(qi, eox, em, tempK, isPMOS) * math.Pow(t, m.N)
}

// MobilityFactor returns the carrier-mobility multiplier coupled to an HCI
// threshold shift (interface states near the drain degrade mobility too).
func (m *HCIModel) MobilityFactor(deltaVT float64) float64 {
	f := 1 - 0.8*deltaVT
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// LambdaFactor returns the channel-length-modulation multiplier for an HCI
// shift: drain-side interface states visibly degrade the output resistance
// ([22] models gd degradation from interface-state generation).
func (m *HCIModel) LambdaFactor(deltaVT float64) float64 {
	return 1 + 3*deltaVT
}
