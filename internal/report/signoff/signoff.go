// Package signoff defines the versioned compliance report a composite
// signoff campaign emits — the paper's joint yield-and-reliability
// verdict in one structured document. The paper argues (§2–§3, §5) that
// nanometer designs must be judged on parametric yield under process
// variability (Pelgrom mismatch, Eq. 1), worst-case global corners,
// front-end wear-out (NBTI/HCI drift, TDDB with Weibull statistics,
// Eq. 2–3) and back-end electromigration (Black's equation, Eq. 4)
// together, because each mechanism erodes the margin the others leave.
// A Report carries exactly that composition: the corner sweep with its
// worst-case identification, the Monte-Carlo yield (Wilson interval and
// σ-margin) at that worst corner, the aging roll-up, the FIT rate and
// MTBF from the Weibull/Black machinery, a failure Pareto by the
// variation.FailureKind taxonomy, and the provenance of every sub-job
// that produced a section. The schema is versioned (SchemaVersion) and
// deterministic: no timestamps, no maps, no NaN/Inf — undefined
// quantities are encoded by absence — so the same campaign produces a
// byte-identical JSON report whether it ran through the CLI or the job
// service, which is what makes reports cacheable and diffable.
package signoff

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/report"
)

// SchemaVersion is the report schema version, bumped on any
// field-semantics change so archived reports stay interpretable.
const SchemaVersion = 1

// Report is one campaign's compliance verdict. Sections are nil when
// the producing sub-job failed or was skipped; Violations then explains
// why the report is partial.
type Report struct {
	// SchemaVersion is the schema version of this document (SchemaVersion).
	SchemaVersion int `json:"schema_version"`
	// Circuit is the deck title; Tech the technology node it targets.
	Circuit string `json:"circuit,omitempty"`
	Tech    string `json:"tech,omitempty"`
	// Node is the monitored node; SpecLo/SpecHi its spec window [V]
	// (absent side = unbounded).
	Node   string   `json:"node"`
	SpecLo *float64 `json:"spec_lo,omitempty"`
	SpecHi *float64 `json:"spec_hi,omitempty"`
	// Pass is the composite verdict: every present section passed and no
	// section is missing. Violations lists each failed criterion.
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
	// Corners, Yield, Aging and Reliability are the per-stage sections.
	Corners     *CornersSection     `json:"corners,omitempty"`
	Yield       *YieldSection       `json:"yield,omitempty"`
	Aging       *AgingSection       `json:"aging,omitempty"`
	Reliability *ReliabilitySection `json:"reliability,omitempty"`
	// Pareto ranks trial outcomes of the Monte-Carlo stage by failure
	// class, most frequent first.
	Pareto []ParetoEntry `json:"pareto,omitempty"`
	// Provenance records every sub-job of the campaign DAG, in DAG
	// declaration order.
	Provenance []SubJob `json:"provenance,omitempty"`
}

// CornersSection is the worst-case corner sweep (paper §2.2: global
// process corners bound the die-to-die component of variability).
type CornersSection struct {
	// SigmaVT [V] and SigmaBeta (fractional) are the 3σ levels that
	// defined the corners.
	SigmaVT   float64 `json:"sigma_vt"`
	SigmaBeta float64 `json:"sigma_beta"`
	// Corners holds each corner's measurement in sweep order (TT first).
	Corners []CornerResult `json:"corners"`
	// Worst names the worst-case corner — minimal spec margin, or
	// largest deviation from TT when the spec is one-sided on neither
	// end; WorstV is its value [V].
	Worst  string  `json:"worst"`
	WorstV float64 `json:"worst_v"`
	// Pass reports whether every corner met the spec window.
	Pass bool `json:"pass"`
}

// CornerResult is one corner's measurement and verdict.
type CornerResult struct {
	// Name is the corner (TT/SS/FF/SF/FS); V the measured node voltage.
	Name string  `json:"name"`
	V    float64 `json:"v"`
	// Pass is the spec verdict (a NaN measurement fails).
	Pass bool `json:"pass"`
	// Margin is the distance to the nearest spec edge [V] (negative when
	// out of spec); absent when the measurement was NaN.
	Margin *float64 `json:"margin,omitempty"`
}

// YieldSection is the Monte-Carlo parametric yield at the worst corner
// (paper Eq. 1: Pelgrom mismatch sets σ(ΔVT) = A_VT/√(WL); yield is the
// fraction of dies inside the spec window, with a Wilson 95 % interval).
type YieldSection struct {
	// Corner names the global corner the campaign was pinned to.
	Corner string `json:"corner"`
	// Trials is the requested die count; Completed how many reached a
	// verdict; PassCount how many met spec.
	Trials    int `json:"trials"`
	Completed int `json:"completed"`
	PassCount int `json:"pass_count"`
	// YieldPct is the point yield in percent, with the Wilson 95 %
	// interval [YieldLoPct, YieldHiPct]. NaN dies count as rejects.
	YieldPct   float64 `json:"yield_pct"`
	YieldLoPct float64 `json:"yield_lo_pct"`
	YieldHiPct float64 `json:"yield_hi_pct"`
	// Mean and StdDev summarise the metric distribution [V]; absent when
	// no die produced a finite value.
	Mean   *float64 `json:"mean,omitempty"`
	StdDev *float64 `json:"std_dev,omitempty"`
	// SigmaMargin is the distance from the mean to the nearest spec edge
	// in units of σ — the design-centering figure of merit; absent when
	// σ is zero or undefined.
	SigmaMargin *float64 `json:"sigma_margin,omitempty"`
}

// AgingSection is the mission-aging roll-up (paper §3.1–§3.3: NBTI/HCI
// threshold drift and mobility degradation over the mission).
type AgingSection struct {
	// Years is the mission length; TempK the junction temperature.
	Years float64 `json:"years"`
	TempK float64 `json:"temp_k"`
	// Converged reports whether the circuit still met its operating
	// point at end of life.
	Converged bool `json:"converged"`
	// WorstDevice is the device with the largest |ΔVT| at end of life;
	// WorstDeltaVT its shift [V]. Absent when the deck has no MOSFETs.
	WorstDevice  string   `json:"worst_device,omitempty"`
	WorstDeltaVT *float64 `json:"worst_delta_vt,omitempty"`
	// BDModes counts devices per oxide-breakdown mode at end of life,
	// sorted by mode name.
	BDModes []BDModeCount `json:"bd_modes,omitempty"`
}

// BDModeCount is one oxide-breakdown mode's device count.
type BDModeCount struct {
	Mode  string `json:"mode"`
	Count int    `json:"count"`
}

// ReliabilitySection is the wear-out failure-rate roll-up: FIT and MTBF
// composed from electromigration (Black's equation, paper Eq. 4) and
// TDDB (Weibull scale η, paper Eq. 2–3), treating each channel as an
// exponential hazard at its characteristic life and summing rates —
// the standard series-system FIT budget of a signoff flow (paper §5).
type ReliabilitySection struct {
	// TargetFIT is the budget [failures / 10⁹ device-hours] the verdict
	// compares against.
	TargetFIT float64 `json:"target_fit"`
	// FIT is the composite failure rate [failures / 10⁹ device-hours];
	// absent when every channel is unbounded (no finite wear-out risk).
	FIT *float64 `json:"fit,omitempty"`
	// MTBFHours is 1/λ for the composite rate; absent with FIT.
	MTBFHours *float64 `json:"mtbf_hours,omitempty"`
	// Pass reports FIT ≤ TargetFIT (vacuously true when FIT is absent)
	// AND no EM current-density violation.
	Pass bool `json:"pass"`
	// EM and TDDB break the composite down by channel.
	EM   *EMSection   `json:"em,omitempty"`
	TDDB *TDDBSection `json:"tddb,omitempty"`
}

// EMSection is the electromigration channel (paper Eq. 4, Black's
// equation MTTF = C·J⁻ⁿ·exp(Ea/kT), with Blech-length immunity).
type EMSection struct {
	// Checked counts wires assessed; Immune those below the Blech
	// product (infinite EM life).
	Checked int `json:"checked"`
	Immune  int `json:"immune"`
	// Violations lists wires whose EM life misses the mission target.
	Violations []EMViolation `json:"violations,omitempty"`
	// WorstWire is the mortal wire with the shortest life; WorstMTTFYears
	// its Black MTTF [years]. Absent when every wire is immune.
	WorstWire      string   `json:"worst_wire,omitempty"`
	WorstMTTFYears *float64 `json:"worst_mttf_years,omitempty"`
	// FIT is the channel's series failure rate; absent when unbounded.
	FIT *float64 `json:"fit,omitempty"`
}

// EMViolation is one wire that misses the EM lifetime target.
type EMViolation struct {
	// Wire is the offending wire; MTTFYears its Black MTTF [years].
	Wire      string  `json:"wire"`
	MTTFYears float64 `json:"mttf_years"`
	// JDensityAm2 is the current density [A/m²]; SuggestedWidthM the
	// minimal width [m] that would meet the target.
	JDensityAm2     float64 `json:"j_density_a_m2"`
	SuggestedWidthM float64 `json:"suggested_width_m"`
}

// TDDBSection is the oxide-breakdown channel (paper Eq. 2–3: Weibull-
// distributed time to breakdown with thickness-dependent slope β).
type TDDBSection struct {
	// Devices counts MOSFETs assessed; Beta is the Weibull slope at the
	// technology's oxide thickness.
	Devices int     `json:"devices"`
	Beta    float64 `json:"beta"`
	// WorstDevice is the device with the shortest characteristic life η;
	// WorstEtaYears that life [years]. Absent when no device stresses
	// its oxide.
	WorstDevice   string   `json:"worst_device,omitempty"`
	WorstEtaYears *float64 `json:"worst_eta_years,omitempty"`
	// FIT is the channel's series failure rate; absent when unbounded.
	FIT *float64 `json:"fit,omitempty"`
}

// ParetoEntry is one failure class's share of the Monte-Carlo trials.
type ParetoEntry struct {
	// Kind is a variation.FailureKind name, "nan_reject" (die measured
	// NaN) or "out_of_spec" (finite value outside the window).
	Kind string `json:"kind"`
	// Count is the number of trials; Percent its share of completed
	// trials.
	Count   int     `json:"count"`
	Percent float64 `json:"percent"`
}

// SubJob is one campaign DAG node's provenance record.
type SubJob struct {
	// Name is the DAG node; Analysis the jobspec kind it ran ("" for
	// inline computations).
	Name     string `json:"name"`
	Analysis string `json:"analysis,omitempty"`
	// Hash is the sub-spec's canonical hash — the result-cache key it
	// shares with an identical standalone submission.
	Hash string `json:"hash,omitempty"`
	// Cached marks a sub-result answered from the spec-keyed result
	// cache; Resumed one restored from a campaign checkpoint; Skipped
	// one that never ran because a dependency failed.
	Cached  bool `json:"cached,omitempty"`
	Resumed bool `json:"resumed,omitempty"`
	Skipped bool `json:"skipped,omitempty"`
	// Error is the node's failure message, when it failed.
	Error string `json:"error,omitempty"`
}

// Ptr wraps a finite float for an optional field; NaN/±Inf become
// absent, keeping the schema's no-NaN/Inf contract.
func Ptr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// Text renders the report as the CLI's human-readable compliance
// summary, using the same table machinery as the figure renderers.
func (r *Report) Text() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	title := fmt.Sprintf("Signoff report v%d — %s", r.SchemaVersion, verdict)
	if r.Circuit != "" {
		title += " — " + r.Circuit
	}
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "node %s  spec [%s, %s]", r.Node, optV(r.SpecLo, "-inf"), optV(r.SpecHi, "+inf"))
	if r.Tech != "" {
		fmt.Fprintf(&b, "  tech %s", r.Tech)
	}
	b.WriteString("\n")

	if c := r.Corners; c != nil {
		t := report.NewTable(fmt.Sprintf("corners (worst %s)", c.Worst), "corner", "V", "margin", "verdict")
		for _, cr := range c.Corners {
			t.AddRow(cr.Name, report.SI(cr.V, "V"), optV(cr.Margin, "-"), passStr(cr.Pass))
		}
		b.WriteString(t.String())
	}
	if y := r.Yield; y != nil {
		fmt.Fprintf(&b, "yield @ %s: %.1f%% [%.1f, %.1f]  (%d/%d pass",
			y.Corner, y.YieldPct, y.YieldLoPct, y.YieldHiPct, y.PassCount, y.Completed)
		if y.SigmaMargin != nil {
			fmt.Fprintf(&b, ", σ-margin %.2f", *y.SigmaMargin)
		}
		b.WriteString(")\n")
	}
	if a := r.Aging; a != nil {
		fmt.Fprintf(&b, "aging %gy @ %gK: converged=%v", a.Years, a.TempK, a.Converged)
		if a.WorstDevice != "" && a.WorstDeltaVT != nil {
			fmt.Fprintf(&b, "  worst ΔVT %s (%s)", report.SI(*a.WorstDeltaVT, "V"), a.WorstDevice)
		}
		b.WriteString("\n")
	}
	if rel := r.Reliability; rel != nil {
		if rel.FIT != nil {
			fmt.Fprintf(&b, "reliability: %.3g FIT (target %g), MTBF %s  %s\n",
				*rel.FIT, rel.TargetFIT, report.Years(*rel.MTBFHours*3600), passStr(rel.Pass))
		} else {
			fmt.Fprintf(&b, "reliability: no finite wear-out channel (target %g FIT)  %s\n",
				rel.TargetFIT, passStr(rel.Pass))
		}
		if rel.EM != nil {
			fmt.Fprintf(&b, "  em: %d wires, %d immune, %d violations\n",
				rel.EM.Checked, rel.EM.Immune, len(rel.EM.Violations))
		}
		if rel.TDDB != nil && rel.TDDB.WorstDevice != "" && rel.TDDB.WorstEtaYears != nil {
			fmt.Fprintf(&b, "  tddb: β %.2f, worst η %.3g y (%s)\n",
				rel.TDDB.Beta, *rel.TDDB.WorstEtaYears, rel.TDDB.WorstDevice)
		}
	}
	if len(r.Pareto) > 0 {
		t := report.NewTable("failure pareto", "kind", "count", "%")
		for _, p := range r.Pareto {
			t.AddRow(p.Kind, fmt.Sprintf("%d", p.Count), fmt.Sprintf("%.1f", p.Percent))
		}
		b.WriteString(t.String())
	}
	if len(r.Provenance) > 0 {
		t := report.NewTable("provenance", "sub-job", "analysis", "hash", "source")
		for _, s := range r.Provenance {
			src := "executed"
			switch {
			case s.Cached:
				src = "cache"
			case s.Resumed:
				src = "checkpoint"
			case s.Skipped:
				src = "skipped"
			case s.Error != "":
				src = "failed"
			}
			h := s.Hash
			if len(h) > 12 {
				h = h[:12]
			}
			t.AddRow(s.Name, s.Analysis, h, src)
		}
		b.WriteString(t.String())
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	return b.String()
}

func passStr(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

func optV(v *float64, unset string) string {
	if v == nil {
		return unset
	}
	return report.SI(*v, "V")
}
