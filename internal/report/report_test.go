package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mathx"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Error("missing title")
	}
	// All data lines should be equally wide (alignment).
	if len(lines[3]) == 0 || len(lines[1]) < len("name  value") {
		t.Errorf("alignment looks broken:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Error("NumRows wrong")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "x", "y", "s")
	tb.AddRowf(1.23456789, 42, "hi")
	out := tb.String()
	if !strings.Contains(out, "1.235") {
		t.Errorf("float not formatted with 4 significant digits:\n%s", out)
	}
	if !strings.Contains(out, "42") || !strings.Contains(out, "hi") {
		t.Errorf("row content missing:\n%s", out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if !strings.Contains(tb.String(), "only") {
		t.Error("short row lost")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"x", "y"}, [][]float64{{1, 2}, {3.5, -4}})
	want := "x,y\n1,2\n3.5,-4\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{2.5e-9, "s", "2.5ns"},
		{4.7e3, "Ω", "4.7kΩ"},
		{0, "V", "0V"},
		{1.1, "V", "1.1V"},
		{3e6, "Hz", "3MHz"},
		{2e-6, "A", "2uA"},
		{1.5e-13, "F", "150fF"},
		{math.Inf(1), "s", "infs"},
	}
	for _, c := range cases {
		if got := SI(c.v, c.unit); got != c.want {
			t.Errorf("SI(%g, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestYears(t *testing.T) {
	const year = 365.25 * 24 * 3600
	if got := Years(10 * year); got != "10yr" {
		t.Errorf("Years = %q", got)
	}
	if Years(math.Inf(1)) != "inf" {
		t.Error("infinite lifetime must print inf")
	}
}

func TestTextHist(t *testing.T) {
	h := mathx.NewHistogram(0, 10, 2)
	for i := 0; i < 8; i++ {
		h.Add(2)
	}
	h.Add(7)
	h.Add(-5)
	out := TextHist(h, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // 2 bins + under/over note
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Error("fullest bin should reach full width")
	}
	if !strings.Contains(lines[2], "under: 1") {
		t.Error("missing under/over note")
	}
}

func TestSeries(t *testing.T) {
	out := Series("fig", "x", "y", []float64{1, 2}, []float64{10, 20})
	if !strings.Contains(out, "fig") || !strings.Contains(out, "20") {
		t.Errorf("series output wrong:\n%s", out)
	}
}
