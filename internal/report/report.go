// Package report renders analysis results as aligned ASCII tables, CSV
// series and text histograms — the output format of the cmd/ tools and the
// benchmark harness, chosen so every paper figure regenerates as a series
// that can be eyeballed in a terminal or piped into a plotting tool. The
// figure generators in internal/figures emit their Fig. 1-6 artefacts
// through these renderers.
package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/mathx"
)

// Table is an aligned ASCII table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v for strings and %.4g for floats.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// CSV renders headers plus rows as comma-separated values.
func CSV(headers []string, rows [][]float64) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SI formats a value with an engineering prefix, e.g. SI(2.5e-9, "s") →
// "2.5ns".
func SI(v float64, unit string) string {
	if v == 0 {
		return "0" + unit
	}
	if math.IsInf(v, 1) {
		return "inf" + unit
	}
	if math.IsInf(v, -1) {
		return "-inf" + unit
	}
	prefixes := []struct {
		mag float64
		sym string
	}{
		{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
		{1e-12, "p"}, {1e-15, "f"},
	}
	a := math.Abs(v)
	for _, p := range prefixes {
		if a >= p.mag {
			return fmt.Sprintf("%.3g%s%s", v/p.mag, p.sym, unit)
		}
	}
	return fmt.Sprintf("%.3g%s", v, unit)
}

// Years formats a duration in seconds as years for lifetime reporting.
func Years(seconds float64) string {
	if math.IsInf(seconds, 1) {
		return "inf"
	}
	const year = 365.25 * 24 * 3600
	return fmt.Sprintf("%.3gyr", seconds/year)
}

// TextHist renders a histogram as horizontal bars, one line per bin.
func TextHist(h *mathx.Histogram, width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%10.3g | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	if h.Under > 0 || h.Over > 0 {
		fmt.Fprintf(&b, "(under: %d, over: %d)\n", h.Under, h.Over)
	}
	return b.String()
}

// WeibullPlot renders breakdown times as the standard TDDB plot: the
// Benard median-rank Weibit ln(−ln(1−F)) against ln(t), the coordinates in
// which a Weibull distribution is a straight line with slope β. times need
// not be sorted.
func WeibullPlot(title string, times []float64) string {
	s := append([]float64(nil), times...)
	for i := 1; i < len(s); i++ { // insertion sort; plots are small
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	t := NewTable(title, "t", "ln t", "F (median rank)", "weibit")
	n := float64(len(s))
	for i, x := range s {
		f := (float64(i+1) - 0.3) / (n + 0.4)
		t.AddRowf(x, math.Log(x), f, mathx.Weibit(f))
	}
	return t.String()
}

// Series prints an (x, y) series as two aligned columns with a header —
// the canonical "figure" output of the bench harness.
func Series(title, xName, yName string, xs, ys []float64) string {
	t := NewTable(title, xName, yName)
	for i := range xs {
		t.AddRowf(xs[i], ys[i])
	}
	return t.String()
}
