package device

import "math"

// Diode is a junction diode with ideal exponential characteristics and a
// small parallel conductance for numerical robustness.
type Diode struct {
	// IS is the saturation current in amperes.
	IS float64
	// N is the emission coefficient.
	N float64
	// TempK is the junction temperature in kelvin.
	TempK float64
	// Gmin is a parallel conductance in siemens that keeps the Jacobian
	// non-singular when the diode is deeply off.
	Gmin float64
}

// NewDiode returns a diode with typical silicon parameters (IS = 1e-14 A,
// N = 1) at temperature tempK.
func NewDiode(tempK float64) *Diode {
	return &Diode{IS: 1e-14, N: 1, TempK: tempK, Gmin: 1e-12}
}

// Eval returns the diode current and conductance at forward voltage v. The
// exponential is linearised above a critical voltage to avoid overflow
// during Newton iterations, in the usual SPICE manner.
func (d *Diode) Eval(v float64) (i, g float64) {
	vt := d.N * thermalVoltage(d.TempK)
	// Critical voltage beyond which the exponential is extrapolated
	// linearly (SPICE's "junction voltage limiting" applied inside the
	// model itself, which keeps Eval a pure function).
	vcrit := vt * math.Log(vt/(math.Sqrt2*d.IS))
	if v <= vcrit {
		e := math.Exp(v / vt)
		i = d.IS * (e - 1)
		g = d.IS * e / vt
	} else {
		ecrit := math.Exp(vcrit / vt)
		gcrit := d.IS * ecrit / vt
		icrit := d.IS * (ecrit - 1)
		i = icrit + gcrit*(v-vcrit)
		g = gcrit
	}
	i += d.Gmin * v
	g += d.Gmin
	return i, g
}
