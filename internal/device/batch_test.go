package device

import (
	"math/rand"
	"testing"
)

// TestBatchEvalBitIdentical asserts the SoA kernel reproduces scalar Eval
// exactly — bit-for-bit — across device types, bias quadrants and random
// mismatch, which is what lets batched Monte-Carlo campaigns replace the
// scalar path without perturbing any result.
func TestBatchEvalBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tech := MustTech("65nm")
	cases := []MOSParams{
		tech.NMOSParams(1e-6, 2*tech.Lmin, 300),
		tech.PMOSParams(2e-6, 3*tech.Lmin, 350),
	}
	biases := [][3]float64{
		{1.0, 0.8, 0}, {0.3, 0.05, -0.2}, {1.2, -0.6, 0.1}, {-0.2, 0.4, 0}, {0.6, 1.1, -0.5},
	}
	for ci, p := range cases {
		damage := Damage{DeltaVT: 0.015, MobilityFactor: 0.93, LambdaFactor: 1.1, GateLeak: 1e-9}
		const nTrials = 64
		batch := NewMosfetBatch(p, damage, nTrials)
		scalars := make([]*Mosfet, nTrials)
		for i := 0; i < nTrials; i++ {
			mm := Mismatch{
				DeltaVT0:   0.02 * rng.NormFloat64(),
				BetaFactor: 1 + 0.05*rng.NormFloat64(),
				DeltaGamma: 0.01 * rng.NormFloat64(),
			}
			batch.SetTrial(i, mm)
			scalars[i] = &Mosfet{Params: p, Mismatch: mm, Damage: damage}
		}
		out := make([]OperatingPoint, nTrials)
		for _, bias := range biases {
			batch.EvalInto(out, bias[0], bias[1], bias[2])
			for i, m := range scalars {
				want := m.Eval(bias[0], bias[1], bias[2])
				got := out[i]
				if got != want {
					t.Fatalf("case %d bias %v trial %d:\n got %+v\nwant %+v", ci, bias, i, got, want)
				}
			}
		}
	}
}

func TestBatchEvalAllocFree(t *testing.T) {
	tech := MustTech("90nm")
	batch := NewMosfetBatch(tech.NMOSParams(1e-6, 2*tech.Lmin, 300), FreshDamage(), 128)
	out := make([]OperatingPoint, batch.Len())
	allocs := testing.AllocsPerRun(20, func() { batch.EvalInto(out, 0.9, 0.6, 0) })
	if allocs != 0 {
		t.Fatalf("EvalInto allocated %v times, want 0", allocs)
	}
}

// BenchmarkEvalScalarVsBatch quantifies the hoisting win of the SoA
// kernel over per-trial scalar evaluation.
func BenchmarkEvalScalar(b *testing.B) {
	tech := MustTech("65nm")
	p := tech.NMOSParams(1e-6, 2*tech.Lmin, 300)
	const nTrials = 256
	devs := make([]*Mosfet, nTrials)
	for i := range devs {
		devs[i] = NewMosfet(p)
		devs[i].Mismatch.DeltaVT0 = 0.01 * float64(i%7)
	}
	out := make([]OperatingPoint, nTrials)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t, d := range devs {
			out[t] = d.Eval(0.9, 0.6, 0)
		}
	}
}

func BenchmarkEvalBatch(b *testing.B) {
	tech := MustTech("65nm")
	p := tech.NMOSParams(1e-6, 2*tech.Lmin, 300)
	const nTrials = 256
	batch := NewMosfetBatch(p, FreshDamage(), nTrials)
	for i := 0; i < nTrials; i++ {
		batch.DeltaVT0[i] = 0.01 * float64(i%7)
	}
	out := make([]OperatingPoint, nTrials)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.EvalInto(out, 0.9, 0.6, 0)
	}
}
