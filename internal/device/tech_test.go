package device

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestTechByName(t *testing.T) {
	for _, name := range Nodes() {
		tech, err := TechByName(name)
		if err != nil {
			t.Fatalf("TechByName(%q): %v", name, err)
		}
		if tech.Name != name {
			t.Errorf("got %q, want %q", tech.Name, name)
		}
	}
	if _, err := TechByName("7nm"); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestTechMonotoneScaling(t *testing.T) {
	ts := SortedByTox()
	for i := 1; i < len(ts); i++ {
		if ts[i].ToxNM >= ts[i-1].ToxNM {
			t.Fatalf("SortedByTox not decreasing at %d", i)
		}
		if ts[i].Lmin >= ts[i-1].Lmin {
			t.Errorf("thinner oxide should pair with shorter channel: %s vs %s", ts[i].Name, ts[i-1].Name)
		}
		if ts[i].VDD > ts[i-1].VDD {
			t.Errorf("VDD should not increase with scaling: %s", ts[i].Name)
		}
	}
}

func TestAVTTrendMatchesBenchmarkAboveBreak(t *testing.T) {
	for _, tox := range []float64{10, 12, 15, 20, 25} {
		if got, want := AVTTrend(tox), TuinhoutBenchmarkAVT(tox); got != want {
			t.Errorf("AVTTrend(%g) = %g, want benchmark %g", tox, got, want)
		}
	}
}

func TestAVTTrendFlattensBelowBreak(t *testing.T) {
	// Below 10 nm the measured AVT sits above the benchmark line (matching
	// improves more slowly than the rule predicts) — the key message of
	// Fig. 1.
	for _, tox := range []float64{1.5, 2, 4, 8} {
		trend := AVTTrend(tox)
		bench := TuinhoutBenchmarkAVT(tox)
		if trend <= bench {
			t.Errorf("AVTTrend(%g) = %g should exceed benchmark %g", tox, trend, bench)
		}
	}
	// Continuity at the breakpoint.
	if !mathx.ApproxEqual(AVTTrend(10-1e-12), AVTTrend(10), 1e-9, 1e-9) {
		t.Error("AVTTrend discontinuous at 10 nm")
	}
}

func TestSigmaVTPelgromScaling(t *testing.T) {
	tech := MustTech("180nm")
	// Quadrupling the area halves σ (at zero distance).
	s1 := tech.SigmaVT(1e-6, 1e-6, 0)
	s2 := tech.SigmaVT(2e-6, 2e-6, 0)
	if !mathx.ApproxEqual(s1/s2, 2, 1e-9, 0) {
		t.Errorf("area scaling broken: σ ratio = %g, want 2", s1/s2)
	}
	// Distance term grows with D.
	sNear := tech.SigmaVT(1e-6, 1e-6, 1e-6)
	sFar := tech.SigmaVT(1e-6, 1e-6, 100e-6)
	if sFar <= sNear {
		t.Errorf("distance term missing: %g <= %g", sFar, sNear)
	}
	// Magnitude check: 180 nm (Tox = 4 nm) has AVT = 3 + 0.7·4 = 5.8 mV·µm
	// from the Fig. 1 trend, so a 1 µm² pair shows σ(ΔVT) = 5.8 mV.
	if !mathx.ApproxEqual(s1, 5.8e-3, 1e-6, 0) {
		t.Errorf("σ(ΔVT) = %g V, want 5.8 mV for 1 µm² at 180 nm", s1)
	}
}

func TestSigmaBetaScaling(t *testing.T) {
	tech := MustTech("90nm")
	s1 := tech.SigmaBeta(1e-6, 1e-6)
	s4 := tech.SigmaBeta(4e-6, 1e-6)
	if !mathx.ApproxEqual(s1/s4, 2, 1e-9, 0) {
		t.Errorf("beta mismatch area scaling broken: ratio %g", s1/s4)
	}
	if s1 <= 0 || s1 > 0.2 {
		t.Errorf("σ(Δβ/β) = %g implausible", s1)
	}
}

func TestTechAVTConsistentWithTrend(t *testing.T) {
	for _, name := range Nodes() {
		tech := MustTech(name)
		want := AVTTrend(tech.ToxNM)
		if !mathx.ApproxEqual(tech.AVTmVum(), want, 1e-9, 1e-9) {
			t.Errorf("%s: AVT = %g mV·µm, trend says %g", name, tech.AVTmVum(), want)
		}
	}
}

func TestParamsBuilders(t *testing.T) {
	tech := MustTech("65nm")
	n := tech.NMOSParams(1e-6, 65e-9, 300)
	p := tech.PMOSParams(1e-6, 65e-9, 300)
	if n.Type != NMOS || p.Type != PMOS {
		t.Fatal("wrong device types")
	}
	if err := n.Validate(); err != nil {
		t.Errorf("NMOS params invalid: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("PMOS params invalid: %v", err)
	}
	// Longer channel reduces lambda.
	long := tech.NMOSParams(1e-6, 650e-9, 300)
	if long.Lambda >= n.Lambda {
		t.Error("lambda should shrink with channel length")
	}
}

func TestSigmaVTPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustTech("65nm").SigmaVT(0, 1e-6, 0)
}

func TestDiodeForwardReverse(t *testing.T) {
	d := NewDiode(300)
	iF, gF := d.Eval(0.6)
	if iF <= 0 || gF <= 0 {
		t.Fatalf("forward diode: i=%g g=%g", iF, gF)
	}
	iR, gR := d.Eval(-5)
	if iR > 0 {
		t.Errorf("reverse current %g should be <= 0", iR)
	}
	if gR <= 0 {
		t.Errorf("reverse conductance %g must stay positive (gmin)", gR)
	}
	// ~60 mV/decade at N=1.
	i1, _ := d.Eval(0.5)
	i2, _ := d.Eval(0.56)
	dec := math.Log10(i2 / i1)
	if math.Abs(dec-1) > 0.05 {
		t.Errorf("60 mV should give one decade, got %g", dec)
	}
}

func TestDiodeLimitingKeepsFinite(t *testing.T) {
	d := NewDiode(300)
	i, g := d.Eval(5) // would overflow the raw exponential's usefulness
	if math.IsInf(i, 0) || math.IsNaN(i) || math.IsInf(g, 0) {
		t.Fatalf("diode limiting failed: i=%g g=%g", i, g)
	}
	// Continuity across the critical voltage.
	const h = 1e-9
	vc := 0.7
	i1, _ := d.Eval(vc - h)
	i2, _ := d.Eval(vc + h)
	if math.Abs(i2-i1) > 1e-3*math.Abs(i1) {
		t.Errorf("diode current discontinuous near limit: %g vs %g", i1, i2)
	}
}
