// Package device implements the transistor-level compact models used by the
// circuit simulator and the reliability analyses: an EKV-flavoured MOSFET
// model that is smooth from subthreshold through saturation (so Newton
// iterations converge reliably), a junction diode, and technology cards for
// CMOS nodes from 0.8 µm down to 32 nm.
//
// The MOSFET model exposes explicit degradation hooks (threshold shift,
// mobility reduction, output-conductance change, post-breakdown gate
// leakage) so the aging package can "wear out" a device exactly the way the
// paper's Section 3 describes: NBTI (§3.3) and HCI (§3.2) shift VT and
// carrier mobility, TDDB (§3.1) adds a gate-leakage path and a local
// mobility collapse. The technology cards carry the per-node Pelgrom AVT
// coefficients behind Section 2's Fig. 1 trend.
package device

import (
	"fmt"
	"math"
)

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

const (
	// NMOS is an n-channel device.
	NMOS MOSType = iota
	// PMOS is a p-channel device.
	PMOS
)

// String returns "nmos" or "pmos".
func (t MOSType) String() string {
	if t == PMOS {
		return "pmos"
	}
	return "nmos"
}

// Thermal voltage kT/q at T kelvin.
func thermalVoltage(tempK float64) float64 {
	const kOverQ = 8.617333262e-5 // V/K
	return kOverQ * tempK
}

// MOSParams is the full parameter set of one MOSFET instance. Voltages are
// in volts, lengths in metres, KP in A/V².
type MOSParams struct {
	Type MOSType
	// W and L are the drawn channel width and length in metres.
	W, L float64
	// VT0 is the zero-bias threshold voltage magnitude (positive for both
	// device types).
	VT0 float64
	// KP is the transconductance parameter µ·Cox in A/V².
	KP float64
	// Lambda is the channel-length-modulation coefficient in 1/V.
	Lambda float64
	// Gamma is the body-effect coefficient in sqrt(V).
	Gamma float64
	// Phi is twice the Fermi potential in V (typically ~0.7 V).
	Phi float64
	// N is the subthreshold slope factor (typically 1.2-1.5).
	N float64
	// TempK is the device temperature in kelvin.
	TempK float64
	// Tox is the gate-oxide thickness in metres (used by the reliability
	// models for field computation and by mismatch trend models).
	Tox float64
}

// Validate reports whether the parameter set is physically usable.
func (p *MOSParams) Validate() error {
	switch {
	case p.W <= 0 || p.L <= 0:
		return fmt.Errorf("device: non-positive geometry W=%g L=%g", p.W, p.L)
	case p.KP <= 0:
		return fmt.Errorf("device: non-positive KP %g", p.KP)
	case p.N < 1:
		return fmt.Errorf("device: slope factor N=%g < 1", p.N)
	case p.Phi <= 0:
		return fmt.Errorf("device: non-positive Phi %g", p.Phi)
	case p.TempK <= 0:
		return fmt.Errorf("device: non-positive temperature %g", p.TempK)
	case p.Tox <= 0:
		return fmt.Errorf("device: non-positive Tox %g", p.Tox)
	}
	return nil
}

// Mismatch is the per-instance process variation applied to a device, as
// sampled by the variation package from the Pelgrom model (Eq. 1 of the
// paper).
type Mismatch struct {
	// DeltaVT0 is the threshold-voltage deviation in volts.
	DeltaVT0 float64
	// BetaFactor multiplies the current factor (1.0 means nominal); it
	// models σ(Δβ)/β.
	BetaFactor float64
	// DeltaGamma is the body-factor deviation in sqrt(V).
	DeltaGamma float64
}

// NominalMismatch returns the identity mismatch.
func NominalMismatch() Mismatch { return Mismatch{BetaFactor: 1} }

// Damage is the accumulated wear-out state of a device, produced by the
// aging package. A zero-value Damage is *not* fresh (BetaFactor semantics);
// use FreshDamage.
type Damage struct {
	// DeltaVT is the magnitude increase of the threshold voltage in volts
	// (NBTI on pMOS, HCI on nMOS both increase |VT|).
	DeltaVT float64
	// MobilityFactor multiplies KP; 1.0 is fresh, degradation pushes it
	// below 1 (interface traps reduce carrier mobility).
	MobilityFactor float64
	// LambdaFactor multiplies Lambda; HCI-generated interface states near
	// the drain degrade the output conductance, modelled as increased
	// channel-length modulation.
	LambdaFactor float64
	// GateLeak is an added gate conductance in siemens produced by oxide
	// breakdown; it is split equally between gate-source and gate-drain
	// paths.
	GateLeak float64
}

// FreshDamage returns the no-degradation state.
func FreshDamage() Damage {
	return Damage{MobilityFactor: 1, LambdaFactor: 1}
}

// Add returns the composition of two damage states: VT shifts add, mobility
// and lambda factors multiply, gate-leak conductances add.
func (d Damage) Add(other Damage) Damage {
	return Damage{
		DeltaVT:        d.DeltaVT + other.DeltaVT,
		MobilityFactor: d.MobilityFactor * other.MobilityFactor,
		LambdaFactor:   d.LambdaFactor * other.LambdaFactor,
		GateLeak:       d.GateLeak + other.GateLeak,
	}
}

// OperatingPoint is the result of evaluating the large-signal model at one
// bias point.
type OperatingPoint struct {
	// ID is the drain current in amperes, defined as flowing into the
	// drain terminal. For a PMOS in normal operation ID is negative.
	ID float64
	// Gm is dID/dVGS in siemens.
	Gm float64
	// Gds is dID/dVDS in siemens.
	Gds float64
	// Gmb is dID/dVBS in siemens.
	Gmb float64
	// VTeff is the effective threshold magnitude including body effect,
	// mismatch and damage.
	VTeff float64
	// Region is a coarse classification: "off", "triode" or "saturation".
	Region string
}

// Mosfet bundles parameters with instance-specific mismatch and damage. The
// zero value is unusable; use NewMosfet.
type Mosfet struct {
	Params   MOSParams
	Mismatch Mismatch
	Damage   Damage
}

// NewMosfet returns a fresh, nominal device with the given parameters.
func NewMosfet(p MOSParams) *Mosfet {
	return &Mosfet{Params: p, Mismatch: NominalMismatch(), Damage: FreshDamage()}
}

// Temperature-scaling constants: carrier mobility falls as (T/300)^-1.5
// (phonon scattering) and the threshold magnitude drops ~1 mV/K — the
// textbook silicon values. Both are anchored at 300 K, so parameter cards
// extracted at room temperature are reproduced exactly there.
const (
	refTempK    = 300.0
	mobilityExp = -1.5
	vtTempSlope = -1e-3 // V/K
)

// Beta returns the effective current factor KP·W/L including mismatch,
// mobility degradation and temperature scaling.
func (m *Mosfet) Beta() float64 {
	tScale := math.Pow(m.Params.TempK/refTempK, mobilityExp)
	return m.Params.KP * m.Params.W / m.Params.L * tScale *
		m.Mismatch.BetaFactor * m.Damage.MobilityFactor
}

// VT returns the effective zero-body-bias threshold magnitude including
// mismatch, damage and temperature scaling.
func (m *Mosfet) VT() float64 {
	return m.Params.VT0 + vtTempSlope*(m.Params.TempK-refTempK) +
		m.Mismatch.DeltaVT0 + m.Damage.DeltaVT
}

// ekvF is the EKV interpolation function F(x) = ln²(1 + exp(x/2)): ~exp(x)
// deep in weak inversion, ~(x/2)² in strong inversion.
func ekvF(x float64) float64 {
	l := softplus(x / 2)
	return l * l
}

// ekvFPrime is dF/dx = ln(1+exp(x/2)) · sigmoid(x/2).
func ekvFPrime(x float64) float64 {
	return softplus(x/2) * sigmoid(x/2)
}

// softplus computes ln(1+exp(x)) without overflow.
func softplus(x float64) float64 {
	if x > 40 {
		return x
	}
	if x < -40 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// sigmoid computes 1/(1+exp(-x)).
func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Eval computes the drain current and small-signal conductances at the
// terminal voltages vgs, vds, vbs (all source-referred, in the actual node
// convention — no sign flipping required by the caller for PMOS).
//
// The model is an EKV-style charge-sheet interpolation:
//
//	ID = Ispec · [F((VP-VS)/Vt) − F((VP-VD)/Vt)] · (1 + λ·VDSeff)
//
// with VP = (VGS − VTeff)/n and F(x) = ln²(1+e^{x/2}). It conducts
// symmetrically for reversed VDS, which matters for pass gates, and is
// C¹-smooth everywhere.
func (m *Mosfet) Eval(vgs, vds, vbs float64) OperatingPoint {
	p := &m.Params
	sign := 1.0
	if p.Type == PMOS {
		sign = -1
		vgs, vds, vbs = -vgs, -vds, -vbs
	}
	// Source-drain swap: evaluate with the lower-potential terminal acting
	// as the source, which makes the model exactly symmetric under
	// terminal exchange (as a physical MOSFET is).
	swapped := false
	if vds < 0 {
		swapped = true
		vgs, vds, vbs = vgs-vds, -vds, vbs-vds
	}
	vt := thermalVoltage(p.TempK)
	n := p.N

	// Body effect on the threshold (vsb = -vbs in flipped space). For
	// vsb < 0 (forward body bias) the square root is extrapolated
	// linearly, which keeps the model C¹-smooth and matches the physical
	// trend of VT lowering.
	vsb := -vbs
	gamma := p.Gamma + m.Mismatch.DeltaGamma
	phi := p.Phi
	sqrtPhi := math.Sqrt(phi)
	var sq, dsq float64
	if vsb >= 0 {
		sq = math.Sqrt(phi + vsb)
		dsq = 1 / (2 * sq)
	} else {
		sq = sqrtPhi + vsb/(2*sqrtPhi)
		dsq = 1 / (2 * sqrtPhi)
	}
	vteff := m.VT() + gamma*(sq-sqrtPhi)
	dvtdvsb := gamma * dsq

	beta := m.Beta()
	ispec := 2 * n * beta * vt * vt

	vp := (vgs - vteff) / n
	xf := vp / vt
	xr := (vp - vds) / vt
	ff := ekvF(xf)
	fr := ekvF(xr)

	lambda := p.Lambda * m.Damage.LambdaFactor
	clm := 1 + lambda*vds // vds >= 0 after the swap
	dclm := lambda

	idCore := ispec * (ff - fr)
	id := idCore * clm

	// Derivatives in flipped space.
	dfdxf := ekvFPrime(xf)
	dfdxr := ekvFPrime(xr)
	// dID/dVGS: VP depends on VGS with slope 1/n.
	gm := ispec * (dfdxf - dfdxr) / (n * vt) * clm
	// dID/dVDS: xr depends on VDS with slope -1/vt; plus CLM term.
	gds := ispec*dfdxr/vt*clm + idCore*dclm
	// dID/dVBS: vsb = -vbs, vteff rises with vsb, vp falls.
	// dvp/dvbs = -dvteff/dvbs / n = dvtdvsb/n (since dvsb/dvbs = -1).
	gmb := ispec * (dfdxf - dfdxr) * dvtdvsb / (n * vt) * clm

	region := classifyRegion(vgs, vds, vteff)

	// Undo the source-drain swap: I(vgs,vds,vbs) = -I'(vgs-vds,-vds,vbs-vds),
	// so the chain rule gives gm=-gm', gds=gm'+gds'+gmb', gmb=-gmb'.
	if swapped {
		id, gm, gds, gmb = -id, -gm, gm+gds+gmb, -gmb
	}

	// Map back to actual polarity: ID flips sign, conductances are
	// invariant (double sign flip).
	return OperatingPoint{
		ID:     sign * id,
		Gm:     gm,
		Gds:    gds,
		Gmb:    gmb,
		VTeff:  vteff,
		Region: region,
	}
}

func classifyRegion(vgs, vds, vteff float64) string {
	vov := vgs - vteff
	switch {
	case vov < 0:
		return "off"
	case math.Abs(vds) < vov:
		return "triode"
	default:
		return "saturation"
	}
}

// GateCapacitance returns the lumped gate-source and gate-drain
// capacitances in farads. A Meyer-style 50/50 split of the oxide
// capacitance is used; overlap capacitance is folded in via a 10 % adder.
// Constant capacitances keep the transient Jacobian linear in C while
// preserving realistic RC time scales.
func (m *Mosfet) GateCapacitance() (cgs, cgd float64) {
	const eps0 = 8.8541878128e-12 // F/m
	const epsRel = 3.9            // SiO2
	cox := eps0 * epsRel / m.Params.Tox * m.Params.W * m.Params.L
	half := 0.55 * cox // 50% channel share + 10% overlap adder
	return half, half
}

// OxideField returns the vertical oxide field magnitude in V/m for a given
// gate-source voltage; the aging models accelerate with this field.
func (m *Mosfet) OxideField(vgs float64) float64 {
	return math.Abs(vgs) / m.Params.Tox
}

// LateralField returns the peak lateral channel field estimate in V/m used
// by the hot-carrier model: the drain-saturation voltage drop across a
// pinch-off region of length ~0.2·L.
func (m *Mosfet) LateralField(vds float64) float64 {
	lpinch := 0.2 * m.Params.L
	return math.Abs(vds) / lpinch
}

// InversionCharge returns an estimate of the inversion-layer charge per
// unit area (C/m²) at the given overdrive, Qi ≈ Cox'·(VGS−VT), clamped at
// weak inversion.
func (m *Mosfet) InversionCharge(vgs float64) float64 {
	const eps0 = 8.8541878128e-12
	const epsRel = 3.9
	coxPrime := eps0 * epsRel / m.Params.Tox
	vov := math.Abs(vgs) - m.VT()
	if vov < 0.01 {
		vov = 0.01
	}
	return coxPrime * vov
}
