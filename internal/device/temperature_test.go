package device

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func deviceAt(tempK float64) *Mosfet {
	tech := MustTech("180nm")
	return NewMosfet(tech.NMOSParams(1e-6, 180e-9, tempK))
}

func TestTemperatureAnchoredAt300K(t *testing.T) {
	m := deviceAt(300)
	// At the reference temperature the card values apply unmodified.
	if m.VT() != m.Params.VT0 {
		t.Errorf("VT at 300K = %g, want card value %g", m.VT(), m.Params.VT0)
	}
	want := m.Params.KP * m.Params.W / m.Params.L
	if !mathx.ApproxEqual(m.Beta(), want, 1e-12, 0) {
		t.Errorf("Beta at 300K = %g, want %g", m.Beta(), want)
	}
}

func TestThresholdDropsWithTemperature(t *testing.T) {
	cold := deviceAt(250)
	hot := deviceAt(400)
	if hot.VT() >= cold.VT() {
		t.Errorf("VT must fall with T: %g >= %g", hot.VT(), cold.VT())
	}
	// ~1 mV/K slope.
	slope := (hot.VT() - cold.VT()) / 150
	if !mathx.ApproxEqual(slope, -1e-3, 1e-9, 0) {
		t.Errorf("VT slope = %g V/K, want -1 mV/K", slope)
	}
}

func TestMobilityFallsWithTemperature(t *testing.T) {
	cold := deviceAt(300)
	hot := deviceAt(400)
	ratio := hot.Beta() / cold.Beta()
	want := math.Pow(400.0/300.0, -1.5)
	if !mathx.ApproxEqual(ratio, want, 1e-9, 0) {
		t.Errorf("mobility scaling = %g, want %g", ratio, want)
	}
}

func TestStrongInversionCurrentFallsWithT(t *testing.T) {
	// High overdrive: mobility loss dominates, hot device is weaker.
	cold := deviceAt(300)
	hot := deviceAt(400)
	iCold := cold.Eval(1.8, 1.8, 0).ID
	iHot := hot.Eval(1.8, 1.8, 0).ID
	if iHot >= iCold {
		t.Errorf("strong-inversion current should fall with T: %g >= %g", iHot, iCold)
	}
}

func TestSubthresholdCurrentRisesWithT(t *testing.T) {
	// Near/below threshold: the VT drop dominates, hot device leaks more.
	cold := deviceAt(300)
	hot := deviceAt(400)
	iCold := cold.Eval(0.3, 1.0, 0).ID
	iHot := hot.Eval(0.3, 1.0, 0).ID
	if iHot <= iCold {
		t.Errorf("subthreshold current should rise with T: %g <= %g", iHot, iCold)
	}
}

func TestZeroTemperatureCoefficientBiasExists(t *testing.T) {
	// Between those regimes lies the ZTC bias point where the two effects
	// cancel — a well-known MOSFET property the model must reproduce:
	// dID/dT changes sign somewhere in the gate-bias range.
	cold := deviceAt(300)
	hot := deviceAt(380)
	sign := func(vgs float64) float64 {
		return hot.Eval(vgs, 1.8, 0).ID - cold.Eval(vgs, 1.8, 0).ID
	}
	low := sign(0.35)
	high := sign(1.8)
	if !(low > 0 && high < 0) {
		t.Fatalf("expected T-coefficient sign flip: low=%g high=%g", low, high)
	}
	ztc, err := mathx.Bisect(sign, 0.35, 1.8, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ztc < 0.4 || ztc > 1.5 {
		t.Errorf("ZTC bias %g V implausible", ztc)
	}
}
