package device

import (
	"fmt"
	"math"
	"sort"
)

// Technology is a CMOS process card: the per-node constants needed to build
// devices, sample mismatch and run the reliability models. Field names use
// the units noted in comments.
type Technology struct {
	// Name identifies the node, e.g. "65nm".
	Name string
	// Lmin is the minimum drawn channel length in metres.
	Lmin float64
	// VDD is the nominal supply voltage in volts.
	VDD float64
	// ToxNM is the gate-oxide thickness in nanometres.
	ToxNM float64
	// VT0N and VT0P are nominal threshold magnitudes in volts.
	VT0N, VT0P float64
	// KPN and KPP are the transconductance parameters in A/V².
	KPN, KPP float64
	// LambdaN and LambdaP are channel-length-modulation coefficients at
	// minimum length, in 1/V.
	LambdaN, LambdaP float64
	// Gamma is the body-effect coefficient in sqrt(V).
	Gamma float64
	// AVT is the Pelgrom threshold-mismatch coefficient in V·m (so that
	// σ(ΔVT) = AVT/sqrt(W·L) with W, L in metres).
	AVT float64
	// ABeta is the Pelgrom current-factor mismatch coefficient, fractional
	// per metre: σ(Δβ/β) = ABeta/sqrt(W·L).
	ABeta float64
	// SVT is the distance coefficient of Eq. 1 in V/m.
	SVT float64
}

// Tox returns the oxide thickness in metres.
func (t *Technology) Tox() float64 { return t.ToxNM * 1e-9 }

// AVTmVum returns AVT in the conventional mV·µm units used in Fig. 1.
func (t *Technology) AVTmVum() float64 { return t.AVT * 1e3 * 1e6 }

// TuinhoutBenchmarkAVT returns the AVT (in mV·µm) predicted by Tuinhout's
// 1 mV·µm per nm of gate oxide rule for an oxide thickness in nm. The paper
// (Fig. 1) shows this rule holding down to ~10 nm oxides and breaking below.
func TuinhoutBenchmarkAVT(toxNM float64) float64 { return 1.0 * toxNM }

// AVTTrend models the measured AVT(Tox) trend of Fig. 1 in mV·µm: linear at
// 1 mV·µm/nm above 10 nm and flattening below, where matching improves
// "only slightly" with further oxide scaling. The two branches are
// continuous at 10 nm.
func AVTTrend(toxNM float64) float64 {
	if toxNM <= 0 {
		panic(fmt.Sprintf("device: non-positive Tox %g nm", toxNM))
	}
	const breakNM = 10.0
	if toxNM >= breakNM {
		return TuinhoutBenchmarkAVT(toxNM)
	}
	// Below the breakpoint the slope drops to 0.7 mV·µm/nm with a 3 mV·µm
	// offset; continuous at 10 nm (0.7*10+3 = 10).
	return 3.0 + 0.7*toxNM
}

// nodes is the built-in technology table, oldest first. AVT values follow
// AVTTrend; electrical parameters are representative textbook/ITRS-flavour
// numbers, adequate for trend reproduction (we never claim absolute match).
var nodes = []Technology{
	{Name: "800nm", Lmin: 800e-9, VDD: 5.0, ToxNM: 15.0, VT0N: 0.85, VT0P: 0.95, KPN: 90e-6, KPP: 30e-6, LambdaN: 0.02, LambdaP: 0.03, Gamma: 0.6},
	{Name: "500nm", Lmin: 500e-9, VDD: 3.3, ToxNM: 12.0, VT0N: 0.75, VT0P: 0.85, KPN: 110e-6, KPP: 38e-6, LambdaN: 0.03, LambdaP: 0.04, Gamma: 0.55},
	{Name: "350nm", Lmin: 350e-9, VDD: 3.3, ToxNM: 7.5, VT0N: 0.60, VT0P: 0.70, KPN: 140e-6, KPP: 48e-6, LambdaN: 0.04, LambdaP: 0.05, Gamma: 0.55},
	{Name: "250nm", Lmin: 250e-9, VDD: 2.5, ToxNM: 5.0, VT0N: 0.52, VT0P: 0.58, KPN: 180e-6, KPP: 60e-6, LambdaN: 0.06, LambdaP: 0.08, Gamma: 0.5},
	{Name: "180nm", Lmin: 180e-9, VDD: 1.8, ToxNM: 4.0, VT0N: 0.45, VT0P: 0.50, KPN: 230e-6, KPP: 80e-6, LambdaN: 0.08, LambdaP: 0.11, Gamma: 0.5},
	{Name: "130nm", Lmin: 130e-9, VDD: 1.2, ToxNM: 2.3, VT0N: 0.38, VT0P: 0.42, KPN: 290e-6, KPP: 100e-6, LambdaN: 0.11, LambdaP: 0.15, Gamma: 0.45},
	{Name: "90nm", Lmin: 90e-9, VDD: 1.1, ToxNM: 2.0, VT0N: 0.35, VT0P: 0.38, KPN: 340e-6, KPP: 120e-6, LambdaN: 0.15, LambdaP: 0.20, Gamma: 0.42},
	{Name: "65nm", Lmin: 65e-9, VDD: 1.1, ToxNM: 1.8, VT0N: 0.33, VT0P: 0.35, KPN: 400e-6, KPP: 140e-6, LambdaN: 0.19, LambdaP: 0.25, Gamma: 0.40},
	{Name: "45nm", Lmin: 45e-9, VDD: 1.0, ToxNM: 1.4, VT0N: 0.31, VT0P: 0.33, KPN: 450e-6, KPP: 160e-6, LambdaN: 0.24, LambdaP: 0.30, Gamma: 0.38},
	{Name: "32nm", Lmin: 32e-9, VDD: 0.9, ToxNM: 1.2, VT0N: 0.30, VT0P: 0.31, KPN: 500e-6, KPP: 180e-6, LambdaN: 0.30, LambdaP: 0.36, Gamma: 0.35},
}

func init() {
	for i := range nodes {
		t := &nodes[i]
		t.AVT = AVTTrend(t.ToxNM) * 1e-3 * 1e-6 // mV·µm -> V·m
		t.ABeta = 1.5e-8                        // ~1.5 %·µm expressed per metre
		t.SVT = 3e-6 * 1e-2                     // 3 µV/µm expressed in V/m... see below
	}
	// SVT: long-range gradient term of Eq. 1; 2 µV per µm of separation is a
	// representative value, i.e. 2e-6 V / 1e-6 m = 2 V/m... the literature
	// quotes S_VT around 1-4 µV/µm, which is V per metre × 1e0; set it
	// directly:
	for i := range nodes {
		nodes[i].SVT = 2.0 // V/m ≡ 2 µV/µm
	}
}

// Nodes returns the names of all built-in technologies, oldest first.
func Nodes() []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

// TechByName returns the technology card with the given name.
func TechByName(name string) (*Technology, error) {
	for i := range nodes {
		if nodes[i].Name == name {
			t := nodes[i]
			return &t, nil
		}
	}
	return nil, fmt.Errorf("device: unknown technology %q (have %v)", name, Nodes())
}

// MustTech is TechByName that panics on unknown names; for tests and
// examples.
func MustTech(name string) *Technology {
	t, err := TechByName(name)
	if err != nil {
		panic(err)
	}
	return t
}

// NMOSParams builds nominal n-channel parameters for this technology at
// geometry (w, l) metres and temperature tempK.
func (t *Technology) NMOSParams(w, l, tempK float64) MOSParams {
	return MOSParams{
		Type: NMOS, W: w, L: l,
		VT0: t.VT0N, KP: t.KPN,
		Lambda: t.LambdaN * t.Lmin / l, // CLM weakens with longer channels
		Gamma:  t.Gamma, Phi: 0.7, N: 1.3,
		TempK: tempK, Tox: t.Tox(),
	}
}

// PMOSParams builds nominal p-channel parameters for this technology.
func (t *Technology) PMOSParams(w, l, tempK float64) MOSParams {
	return MOSParams{
		Type: PMOS, W: w, L: l,
		VT0: t.VT0P, KP: t.KPP,
		Lambda: t.LambdaP * t.Lmin / l,
		Gamma:  t.Gamma, Phi: 0.7, N: 1.3,
		TempK: tempK, Tox: t.Tox(),
	}
}

// SigmaVT returns the Pelgrom σ(ΔVT) in volts for a device pair of
// geometry (w, l) metres at separation d metres, per Eq. 1 of the paper:
//
//	σ²(ΔVT) = AVT²/(W·L) + SVT²·D²
func (t *Technology) SigmaVT(w, l, d float64) float64 {
	if w <= 0 || l <= 0 {
		panic(fmt.Sprintf("device: non-positive geometry %g×%g", w, l))
	}
	area := t.AVT * t.AVT / (w * l)
	dist := t.SVT * t.SVT * d * d
	return math.Sqrt(area + dist)
}

// SigmaBeta returns the relative current-factor mismatch σ(Δβ/β) for
// geometry (w, l) metres.
func (t *Technology) SigmaBeta(w, l float64) float64 {
	if w <= 0 || l <= 0 {
		panic(fmt.Sprintf("device: non-positive geometry %g×%g", w, l))
	}
	return t.ABeta / math.Sqrt(w*l)
}

// SortedByTox returns the built-in technologies ordered by decreasing oxide
// thickness; this is the x-axis ordering of Fig. 1.
func SortedByTox() []Technology {
	out := append([]Technology(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].ToxNM > out[j].ToxNM })
	return out
}
