package device

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func testNMOS() *Mosfet {
	t := MustTech("180nm")
	return NewMosfet(t.NMOSParams(1e-6, 180e-9, 300))
}

func testPMOS() *Mosfet {
	t := MustTech("180nm")
	return NewMosfet(t.PMOSParams(2e-6, 180e-9, 300))
}

func TestNMOSOffWhenBelowThreshold(t *testing.T) {
	m := testNMOS()
	op := m.Eval(0, 1.8, 0)
	if math.Abs(op.ID) > 1e-7 {
		t.Errorf("off-state current %g too large", op.ID)
	}
	if op.Region != "off" {
		t.Errorf("region = %q, want off", op.Region)
	}
}

func TestNMOSSaturationCurrentScalesWithOverdrive(t *testing.T) {
	m := testNMOS()
	id1 := m.Eval(0.9, 1.8, 0).ID
	id2 := m.Eval(1.35, 1.8, 0).ID
	if id1 <= 0 || id2 <= 0 {
		t.Fatalf("saturation currents must be positive: %g, %g", id1, id2)
	}
	// Square law: doubling the overdrive should give roughly 4x current.
	ratio := id2 / id1
	if ratio < 3 || ratio > 5 {
		t.Errorf("current ratio for 2x overdrive = %g, want ~4", ratio)
	}
}

func TestPMOSCurrentSign(t *testing.T) {
	m := testPMOS()
	// Normal PMOS operation: source at VDD. With vgs = -1.2, vds = -1.2
	// the device conducts and ID (into drain) must be negative.
	op := m.Eval(-1.2, -1.2, 0)
	if op.ID >= 0 {
		t.Errorf("PMOS drain current = %g, want negative", op.ID)
	}
	if op.Gm <= 0 || op.Gds <= 0 {
		t.Errorf("PMOS conductances must be positive: gm=%g gds=%g", op.Gm, op.Gds)
	}
}

func TestDrainSourceSymmetry(t *testing.T) {
	// Swapping drain and source must reverse the current: with body and
	// gate referenced to the same node, ID(vgs, vds) with the channel
	// reversed equals -ID evaluated from the other end.
	m := testNMOS()
	vg, vd, vs, vb := 1.5, 0.3, 0.1, 0.0
	fwd := m.Eval(vg-vs, vd-vs, vb-vs).ID
	rev := m.Eval(vg-vd, vs-vd, vb-vd).ID
	if !mathx.ApproxEqual(fwd, -rev, 1e-6, 1e-15) {
		t.Errorf("symmetry violated: fwd=%g rev=%g", fwd, rev)
	}
}

func TestDerivativesMatchNumeric(t *testing.T) {
	devs := []*Mosfet{testNMOS(), testPMOS()}
	biases := [][3]float64{
		{0.8, 1.0, 0}, {0.4, 0.05, 0}, {1.5, 1.8, -0.3},
		{-0.8, -1.0, 0}, {-1.5, -1.8, 0.3}, {0.2, 0.5, 0},
		{0.8, -0.5, -0.6}, {1.2, -0.05, -0.1}, // reverse-conduction (swapped) branch
	}
	const h = 1e-6
	for _, m := range devs {
		for _, b := range biases {
			vgs, vds, vbs := b[0], b[1], b[2]
			op := m.Eval(vgs, vds, vbs)
			gmNum := (m.Eval(vgs+h, vds, vbs).ID - m.Eval(vgs-h, vds, vbs).ID) / (2 * h)
			gdsNum := (m.Eval(vgs, vds+h, vbs).ID - m.Eval(vgs, vds-h, vbs).ID) / (2 * h)
			gmbNum := (m.Eval(vgs, vds, vbs+h).ID - m.Eval(vgs, vds, vbs-h).ID) / (2 * h)
			if !mathx.ApproxEqual(op.Gm, gmNum, 1e-4, 1e-12) {
				t.Errorf("%v bias %v: gm=%g numeric %g", m.Params.Type, b, op.Gm, gmNum)
			}
			if !mathx.ApproxEqual(op.Gds, gdsNum, 1e-4, 1e-12) {
				t.Errorf("%v bias %v: gds=%g numeric %g", m.Params.Type, b, op.Gds, gdsNum)
			}
			if !mathx.ApproxEqual(op.Gmb, gmbNum, 1e-3, 1e-12) {
				t.Errorf("%v bias %v: gmb=%g numeric %g", m.Params.Type, b, op.Gmb, gmbNum)
			}
		}
	}
}

func TestCurrentContinuityProperty(t *testing.T) {
	// The model must be smooth: small bias steps give small current steps.
	m := testNMOS()
	if err := quick.Check(func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		vgs := 2.0 * r.Float64()
		vds := 2.0 * r.Float64()
		const h = 1e-7
		i0 := m.Eval(vgs, vds, 0).ID
		i1 := m.Eval(vgs+h, vds, 0).ID
		// Slope bounded by a generous gm bound.
		return math.Abs(i1-i0) < 1e-2*h+1e-15
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBodyEffectRaisesThreshold(t *testing.T) {
	m := testNMOS()
	op0 := m.Eval(1.0, 1.8, 0)
	opRev := m.Eval(1.0, 1.8, -0.9) // reverse body bias (vsb = +0.9)
	if opRev.VTeff <= op0.VTeff {
		t.Errorf("VTeff with reverse body bias %g <= nominal %g", opRev.VTeff, op0.VTeff)
	}
	if opRev.ID >= op0.ID {
		t.Errorf("reverse body bias should reduce current: %g >= %g", opRev.ID, op0.ID)
	}
}

func TestDamageReducesCurrent(t *testing.T) {
	fresh := testNMOS()
	aged := testNMOS()
	aged.Damage = Damage{DeltaVT: 0.05, MobilityFactor: 0.9, LambdaFactor: 1.3}
	iFresh := fresh.Eval(1.0, 1.8, 0).ID
	iAged := aged.Eval(1.0, 1.8, 0).ID
	if iAged >= iFresh {
		t.Errorf("aged current %g >= fresh %g", iAged, iFresh)
	}
	// Output conductance must increase with LambdaFactor > 1.
	gFresh := fresh.Eval(1.0, 1.8, 0).Gds
	gAged := aged.Eval(1.0, 1.8, 0).Gds
	if gAged/iAged <= gFresh/iFresh {
		t.Errorf("normalised gds should rise with damage: %g vs %g", gAged/iAged, gFresh/iFresh)
	}
}

func TestDamageAddComposition(t *testing.T) {
	a := Damage{DeltaVT: 0.02, MobilityFactor: 0.95, LambdaFactor: 1.1, GateLeak: 1e-6}
	b := Damage{DeltaVT: 0.03, MobilityFactor: 0.90, LambdaFactor: 1.2, GateLeak: 2e-6}
	c := a.Add(b)
	if !mathx.ApproxEqual(c.DeltaVT, 0.05, 1e-12, 0) {
		t.Error("DeltaVT should add")
	}
	if !mathx.ApproxEqual(c.MobilityFactor, 0.855, 1e-12, 0) {
		t.Error("MobilityFactor should multiply")
	}
	if !mathx.ApproxEqual(c.GateLeak, 3e-6, 1e-12, 0) {
		t.Error("GateLeak should add")
	}
	fresh := FreshDamage()
	if d := fresh.Add(a); d != a {
		t.Error("adding to fresh damage should be identity")
	}
}

func TestMismatchShiftsCurrent(t *testing.T) {
	m1 := testNMOS()
	m2 := testNMOS()
	m2.Mismatch = Mismatch{DeltaVT0: 0.01, BetaFactor: 1}
	i1 := m1.Eval(0.8, 1.8, 0).ID
	i2 := m2.Eval(0.8, 1.8, 0).ID
	if i2 >= i1 {
		t.Errorf("positive DeltaVT0 should reduce NMOS current: %g >= %g", i2, i1)
	}
}

func TestSubthresholdSlope(t *testing.T) {
	// In weak inversion, current should be exponential in VGS with slope
	// factor n: decade per n·Vt·ln(10) ≈ 100 mV at n=1.3, T=300K.
	m := testNMOS()
	v1, v2 := 0.20, 0.30
	i1 := m.Eval(v1, 1.0, 0).ID
	i2 := m.Eval(v2, 1.0, 0).ID
	slope := (v2 - v1) / math.Log10(i2/i1) * 1000 // mV/decade
	want := 1.3 * 0.02585 * math.Ln10 * 1000
	if math.Abs(slope-want) > 8 {
		t.Errorf("subthreshold slope %g mV/dec, want ~%g", slope, want)
	}
}

func TestGateCapacitancePositive(t *testing.T) {
	m := testNMOS()
	cgs, cgd := m.GateCapacitance()
	if cgs <= 0 || cgd <= 0 {
		t.Fatalf("capacitances must be positive: %g, %g", cgs, cgd)
	}
	// W=1µm, L=180nm, Tox=4nm: Cox ~ 8.6e-3 F/m² × 1.8e-13 m² ≈ 1.6 fF.
	if cgs > 5e-15 || cgs < 1e-16 {
		t.Errorf("cgs = %g F implausible", cgs)
	}
}

func TestFieldHelpers(t *testing.T) {
	m := testNMOS()
	eox := m.OxideField(1.8)
	if !mathx.ApproxEqual(eox, 1.8/4e-9, 1e-12, 0) {
		t.Errorf("OxideField = %g", eox)
	}
	em := m.LateralField(1.8)
	if !mathx.ApproxEqual(em, 1.8/(0.2*180e-9), 1e-12, 0) {
		t.Errorf("LateralField = %g", em)
	}
	if qi := m.InversionCharge(1.8); qi <= 0 {
		t.Errorf("InversionCharge = %g", qi)
	}
}

func TestValidate(t *testing.T) {
	p := MustTech("90nm").NMOSParams(1e-6, 90e-9, 300)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := p
	bad.W = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero width accepted")
	}
	bad = p
	bad.TempK = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative temperature accepted")
	}
}
