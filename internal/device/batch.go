package device

import (
	"fmt"
	"math"
)

// MosfetBatch evaluates the EKV compact model for one device geometry
// across many Monte-Carlo trials in a single pass — the
// structure-of-arrays companion of Mosfet.Eval. The trials share MOSParams
// and Damage (mismatch is the per-die quantity the paper's Section 2
// samples; damage is a per-device trajectory) and differ only in their
// Mismatch triple, stored as parallel slices indexed by trial.
//
// EvalInto hoists every trial-invariant subexpression (temperature
// scaling, the body-effect square root, the source-drain swap of the bias
// point) out of the loop while performing the per-trial arithmetic in
// exactly the association order of Mosfet.Eval, so its results are
// bit-identical to evaluating N scalar devices — the property that lets
// batched Monte-Carlo campaigns reproduce unbatched results verbatim.
type MosfetBatch struct {
	Params MOSParams
	Damage Damage

	// Per-trial mismatch, structure-of-arrays: the three slices are
	// parallel and their common length is the batch size.
	DeltaVT0   []float64
	BetaFactor []float64
	DeltaGamma []float64
}

// NewMosfetBatch returns a batch of n nominal trials of the given device.
func NewMosfetBatch(p MOSParams, damage Damage, n int) *MosfetBatch {
	b := &MosfetBatch{
		Params:     p,
		Damage:     damage,
		DeltaVT0:   make([]float64, n),
		BetaFactor: make([]float64, n),
		DeltaGamma: make([]float64, n),
	}
	for i := range b.BetaFactor {
		b.BetaFactor[i] = 1
	}
	return b
}

// Len returns the batch size.
func (b *MosfetBatch) Len() int { return len(b.DeltaVT0) }

// SetTrial installs one trial's mismatch.
func (b *MosfetBatch) SetTrial(t int, m Mismatch) {
	b.DeltaVT0[t] = m.DeltaVT0
	b.BetaFactor[t] = m.BetaFactor
	b.DeltaGamma[t] = m.DeltaGamma
}

// EvalInto evaluates every trial at the shared bias point (vgs, vds, vbs)
// into out, which must have length Len(). It allocates nothing.
func (b *MosfetBatch) EvalInto(out []OperatingPoint, vgs, vds, vbs float64) {
	n := b.Len()
	if len(out) != n {
		panic(fmt.Sprintf("device: EvalInto out length %d, batch %d", len(out), n))
	}
	p := &b.Params

	// ------- trial-invariant prefix, mirroring Mosfet.Eval line for line.
	sign := 1.0
	if p.Type == PMOS {
		sign = -1
		vgs, vds, vbs = -vgs, -vds, -vbs
	}
	swapped := false
	if vds < 0 {
		swapped = true
		vgs, vds, vbs = vgs-vds, -vds, vbs-vds
	}
	vt := thermalVoltage(p.TempK)
	nSlope := p.N

	vsb := -vbs
	phi := p.Phi
	sqrtPhi := math.Sqrt(phi)
	var sq, dsq float64
	if vsb >= 0 {
		sq = math.Sqrt(phi + vsb)
		dsq = 1 / (2 * sq)
	} else {
		sq = sqrtPhi + vsb/(2*sqrtPhi)
		dsq = 1 / (2 * sqrtPhi)
	}

	// VT() = VT0 + slope·ΔT + ΔVT0 + damage; Beta() = ((KP·W)/L)·tScale·
	// βFactor·mobility. The hoisted prefixes keep the left-to-right
	// association of the scalar methods so the remaining per-trial products
	// produce identical bits.
	vtBase := p.VT0 + vtTempSlope*(p.TempK-refTempK)
	tScale := math.Pow(p.TempK/refTempK, mobilityExp)
	betaBase := p.KP * p.W / p.L * tScale
	mobility := b.Damage.MobilityFactor
	dmgVT := b.Damage.DeltaVT

	lambda := p.Lambda * b.Damage.LambdaFactor
	clm := 1 + lambda*vds
	dclm := lambda
	twoN := 2 * nSlope
	nvt := nSlope * vt

	// ------- per-trial loop: only mismatch-dependent arithmetic remains.
	for t := 0; t < n; t++ {
		gamma := p.Gamma + b.DeltaGamma[t]
		vteff := vtBase + b.DeltaVT0[t] + dmgVT + gamma*(sq-sqrtPhi)
		dvtdvsb := gamma * dsq

		beta := betaBase * b.BetaFactor[t] * mobility
		ispec := twoN * beta * vt * vt

		vp := (vgs - vteff) / nSlope
		xf := vp / vt
		xr := (vp - vds) / vt
		ff := ekvF(xf)
		fr := ekvF(xr)

		idCore := ispec * (ff - fr)
		id := idCore * clm

		dfdxf := ekvFPrime(xf)
		dfdxr := ekvFPrime(xr)
		gm := ispec * (dfdxf - dfdxr) / nvt * clm
		gds := ispec*dfdxr/vt*clm + idCore*dclm
		gmb := ispec * (dfdxf - dfdxr) * dvtdvsb / nvt * clm

		region := classifyRegion(vgs, vds, vteff)

		if swapped {
			id, gm, gds, gmb = -id, -gm, gm+gds+gmb, -gmb
		}
		out[t] = OperatingPoint{
			ID:     sign * id,
			Gm:     gm,
			Gds:    gds,
			Gmb:    gmb,
			VTeff:  vteff,
			Region: region,
		}
	}
}
