package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/jobspec"
	"repro/internal/store"
)

// State is a job's lifecycle state. The machine is strictly forward:
// queued → running → {done, failed, cancelled}, or queued → cancelled
// directly when a job is cancelled before a worker picks it up.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry of a job's ordered event log, streamed as NDJSON by
// GET /v1/jobs/{id}/events. Seq is dense and strictly increasing per job.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued | started | progress | done | failed | cancelled
	// Stage/Done/Total carry progress samples ("trial" or "checkpoint").
	Stage string `json:"stage,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	// Error carries the failure or cancellation cause on terminal events.
	Error string `json:"error,omitempty"`
}

// Job is one submitted analysis tracked by the server. All mutable state
// is guarded by mu; the event log only grows, and changed is closed and
// replaced on every append so streamers can wait without polling.
type Job struct {
	ID   string
	Spec *jobspec.Spec
	// specHash is the canonical content address of Spec, computed once at
	// admission; it keys the store's result cache.
	specHash string
	// tenant owns the job (DefaultTenant in single-tenant mode) and class
	// is its priority class; both are fixed at admission and drive the
	// fair-share scheduler, so they are immutable and safe to read without
	// mu.
	tenant string
	class  string
	// internal marks a fleet-dispatched shard sub-job: still owned by its
	// originating tenant (polls scope to it), but scheduled from the
	// quota-exempt fleet lane, because the parent campaign already holds
	// the tenant's max_running slot on the dispatching node. Fixed at
	// admission like tenant and class.
	internal bool

	mu              sync.Mutex
	state           State
	submitted       time.Time
	started         time.Time
	finished        time.Time
	result          json.RawMessage // encoded *jobspec.Result, set on finish
	errMsg          string
	partial         bool // result was cut short (never cached)
	cached          bool // result served from the spec-hash cache
	cancelRequested bool
	cancel          context.CancelFunc // non-nil while running
	events          []Event
	changed         chan struct{}

	// resume holds journaled campaign checkpoint payloads recovered from
	// the store — chunks the previous process completed before it died.
	// Written once in restoredJob before the job is published, read once
	// by the worker; the queue hand-off orders the two.
	resume []json.RawMessage
}

func newJob(id string, spec *jobspec.Spec, hash, tenant, class string, now time.Time) *Job {
	j := &Job{
		ID: id, Spec: spec, specHash: hash,
		tenant:    tenant,
		class:     class,
		state:     StateQueued,
		submitted: now,
		changed:   make(chan struct{}),
	}
	j.appendLocked(Event{Type: "queued"})
	return j
}

// laneID resolves the queue lane the job is scheduled from: its tenant,
// except for fleet-internal shard sub-jobs, which share the quota-exempt
// fleet lane.
func (j *Job) laneID() string {
	if j.internal {
		return fleetLane
	}
	return j.tenant
}

// newCachedJob builds a job that is born terminal: its result is the
// byte-identical snapshot of an earlier run with the same canonical
// spec hash, so it never touches the queue or the worker pool.
func newCachedJob(id string, spec *jobspec.Spec, hash, tenant, class string, result json.RawMessage, now time.Time) *Job {
	j := &Job{
		ID: id, Spec: spec, specHash: hash,
		tenant:    tenant,
		class:     class,
		state:     StateDone,
		submitted: now,
		finished:  now,
		result:    result,
		cached:    true,
		changed:   make(chan struct{}),
	}
	j.appendLocked(Event{Type: "queued"})
	j.appendLocked(Event{Type: "done"})
	return j
}

// resumable reports whether a recovered job can be re-run to a verdict
// instead of being finalized. Monte-Carlo campaigns checkpoint whole
// grid chunks and signoff campaigns checkpoint completed DAG nodes, so
// an interrupted one re-enqueues with its journaled checkpoints and
// re-runs at most the unit that was in flight; the other analyses have
// no checkpoint grid and keep the fail-with-cause path.
func resumable(r store.RecoveredJob) bool {
	if r.State != store.StateInterrupted || r.Spec == nil {
		return false
	}
	switch r.Spec.Analysis {
	case jobspec.KindMC:
		return r.Spec.MC != nil
	case jobspec.KindSignoff:
		return r.Spec.Signoff != nil
	}
	return false
}

// restoredJob rebuilds a Job from its journaled lifecycle after a
// restart. Per-trial progress events are not journaled, so the restored
// job carries a condensed event log of its lifecycle transitions. A
// Monte-Carlo campaign that was running when the previous process died
// goes back on the queue carrying its journaled checkpoints — this is
// the fix for the all-or-nothing campaign loss, where every interrupted
// run was finalized as failed with an InterruptedError. Interrupted
// jobs of other analysis kinds still take that path, keeping whatever
// partial result snapshot reached the disk.
func restoredJob(r store.RecoveredJob, now time.Time) *Job {
	j := &Job{
		ID: r.ID, Spec: r.Spec, specHash: r.Hash,
		tenant:    r.Tenant,
		class:     r.Class,
		internal:  r.Internal,
		state:     StateQueued,
		submitted: r.Submitted,
		changed:   make(chan struct{}),
	}
	// Journals written before multi-tenancy carry no tenant; their jobs
	// belong to the default tenant with default priority.
	if j.tenant == "" {
		j.tenant = DefaultTenant
	}
	if !validClass(j.class) {
		j.class = ClassInteractive
	}
	j.appendLocked(Event{Type: "queued"})
	switch r.State {
	case store.StateQueued:
		// Stays queued; the server re-enqueues it behind the workers.
	case store.StateInterrupted:
		if resumable(r) {
			for _, cp := range r.Checkpoints {
				j.resume = append(j.resume, cp.Data)
			}
			// The event log records how much of the campaign survived the
			// crash; the worker's execution will resume from there.
			j.appendLocked(Event{Type: "progress", Stage: "resume",
				Done: len(r.Checkpoints), Total: r.Spec.ResumeUnits()})
			break
		}
		j.state = StateFailed
		j.started = r.Started
		j.finished = now
		j.errMsg = (&store.InterruptedError{JobID: r.ID, Started: r.Started}).Error()
		j.result = r.Result
		j.partial = true
		j.appendLocked(Event{Type: "started"})
		j.appendLocked(Event{Type: "failed", Error: j.errMsg})
	default: // done | failed | cancelled
		j.state = State(r.State)
		j.started = r.Started
		j.finished = r.Finished
		j.errMsg = r.Error
		j.result = r.Result
		if !r.Started.IsZero() {
			j.appendLocked(Event{Type: "started"})
		}
		j.appendLocked(Event{Type: string(j.state), Error: j.errMsg})
	}
	return j
}

// appendLocked appends an event and wakes streamers. Callers outside the
// constructor must hold mu.
func (j *Job) appendLocked(ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// addProgress records one execution progress sample as an event.
func (j *Job) addProgress(p jobspec.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return // late sample after cancellation already finalized the job
	}
	j.appendLocked(Event{Type: "progress", Stage: p.Stage, Done: p.Done, Total: p.Total})
}

// start transitions queued → running and installs the job's cancel
// function. It returns false when the job is no longer queued (cancelled
// while waiting), in which case the worker must skip it.
func (j *Job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.appendLocked(Event{Type: "started"})
	return true
}

// requestCancel asks the job to stop. A queued job is finalized
// immediately (the worker will skip it); a running job has its context
// cancelled and finalizes when the engine returns with its partial
// result. Terminal jobs are untouched. It returns true only when the job
// was finalized right here (queued → cancelled), so callers know whether
// to account the terminal state themselves or leave it to finish().
func (j *Job) requestCancel(reason string) (finalized bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		j.errMsg = reason
		j.appendLocked(Event{Type: "cancelled", Error: reason})
		return true
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
		}
	}
	return false
}

// finish finalizes a running job from the executor's return values. The
// terminal state, the persisted (possibly partial) result and the final
// event are committed under one lock acquisition, so a streamer never
// observes a terminal state without its terminal event.
func (j *Job) finish(res *jobspec.Result, execErr error, now time.Time) State {
	var raw json.RawMessage
	if res != nil {
		b, err := json.Marshal(res)
		if err != nil && execErr == nil {
			execErr = fmt.Errorf("serve: result not encodable: %w", err)
		}
		raw = b
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = now
	j.result = raw
	j.partial = res != nil && res.Partial
	switch {
	case execErr != nil:
		if j.cancelRequested {
			j.state = StateCancelled
		} else {
			j.state = StateFailed
		}
		j.errMsg = execErr.Error()
	case j.cancelRequested:
		// Engine returned cleanly after cancellation: the result holds the
		// exactly-accounted partial run.
		j.state = StateCancelled
		if res != nil && res.Warning != "" {
			j.errMsg = res.Warning
		}
	default:
		// Includes Partial results from the job's own timeout: the run
		// answered with what it measured, which is a completed job.
		j.state = StateDone
	}
	ev := Event{Type: string(j.state), Error: j.errMsg}
	j.appendLocked(ev)
	return j.state
}

// eventCount returns the current length of the event log.
func (j *Job) eventCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// terminalInfo returns the job's state and finished time — what the
// retention policy needs to pick eviction candidates.
func (j *Job) terminalInfo() (State, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.finished
}

// terminalSnapshot returns everything the store needs to journal a
// terminal transition: the state, the failure cause, the encoded result
// and whether the result may enter the spec-hash cache. Only a complete
// (non-partial) result of a cache-participating spec that was actually
// computed here — not itself served from the cache — is cacheable.
func (j *Job) terminalSnapshot() (st State, errMsg string, raw json.RawMessage, cacheable bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cacheable = j.state == StateDone && j.result != nil &&
		!j.partial && !j.cached && !j.Spec.NoCache
	return j.state, j.errMsg, j.result, cacheable
}

// eventsSince returns a copy of up to max events from seq on (max <= 0 =
// unbounded), whether the job is terminal, and a channel that closes on
// the next change — everything a streamer needs for one race-free
// iteration. The bound keeps one streamer's copy-under-lock O(max) even
// against a job with a huge progress log, so a thousand concurrent
// subscribers cannot stall progress appends behind full-log copies.
func (j *Job) eventsSince(seq, max int) (evs []Event, terminal bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < len(j.events) {
		end := len(j.events)
		if max > 0 && seq+max < end {
			end = seq + max
		}
		evs = append(evs, j.events[seq:end]...)
	}
	return evs, j.state.Terminal(), j.changed
}

// View is the JSON representation of a job served by the API. List
// responses omit Spec and Result; the single-job endpoint includes them.
type View struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Tenant owns the job; Class is its scheduling priority class.
	Tenant    string       `json:"tenant,omitempty"`
	Class     string       `json:"class,omitempty"`
	Analysis  jobspec.Kind `json:"analysis"`
	Submitted time.Time    `json:"submitted"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Error     string       `json:"error,omitempty"`
	Events    int          `json:"events"`
	// Cached marks a job answered from the spec-keyed result cache
	// instead of being executed.
	Cached bool          `json:"cached,omitempty"`
	Spec   *jobspec.Spec `json:"spec,omitempty"`
	// Result is the encoded jobspec.Result (present once terminal, also
	// for cancelled jobs that persisted a partial result).
	Result json.RawMessage `json:"result,omitempty"`
}

// view snapshots the job.
func (j *Job) view(full bool) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:        j.ID,
		State:     j.state,
		Tenant:    j.tenant,
		Class:     j.class,
		Analysis:  j.Spec.Analysis,
		Submitted: j.submitted,
		Error:     j.errMsg,
		Events:    len(j.events),
		Cached:    j.cached,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if full {
		v.Spec = j.Spec
		v.Result = j.result
	}
	return v
}

// snapshot returns the fields the worker needs without racing the
// handlers.
func (j *Job) snapshot() (state State, submitted time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.submitted
}
