package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

const inverterDeck = `
* cmos inverter at 90nm
.tech 90nm
.temp 300
VDD vdd 0 DC 1.1
VIN in 0 DC 0.55
MN out in 0 0 NMOS W=1u L=90n
MP out in vdd vdd PMOS W=2u L=90n
.end
`

// newTestServer builds a server on an httptest listener and tears both
// down at cleanup (shutdown first, so streaming handlers end before the
// listener closes).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

// submit POSTs a spec and returns the raw response; the body is decoded
// into view only on 202.
func submit(t *testing.T, ts *httptest.Server, spec *jobspec.Spec) (*http.Response, View) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, v
}

func getJob(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", id, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitTerminal polls the job until it reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, ts, id)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mcSpec(trials int) *jobspec.Spec {
	return &jobspec.Spec{
		Analysis: jobspec.KindMC,
		Netlist:  inverterDeck,
		Seed:     1,
		MC:       &jobspec.MCParams{Trials: trials, Node: "out"},
	}
}

// blockingExec returns an executor that signals on started and then holds
// its job until release closes (returning a full result) or the job
// context is cancelled (returning a partial result, the way the real
// engines do under a drain deadline).
func blockingExec(started chan<- string, release <-chan struct{}) ExecFunc {
	return func(ctx context.Context, spec *jobspec.Spec, _ jobspec.Options) (*jobspec.Result, error) {
		started <- string(spec.Analysis)
		select {
		case <-release:
			return &jobspec.Result{Kind: spec.Analysis}, nil
		case <-ctx.Done():
			return &jobspec.Result{Kind: spec.Analysis, Partial: true, Warning: "drained: " + ctx.Err().Error()}, nil
		}
	}
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 2, DefaultTimeout: time.Minute})
	resp, v := submit(t, ts, &jobspec.Spec{
		Analysis: jobspec.KindOP, Netlist: inverterDeck, Record: []string{"out"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if v.ID == "" || v.Analysis != jobspec.KindOP {
		t.Fatalf("submit view = %+v", v)
	}

	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (error %q)", fin.State, fin.Error)
	}
	if fin.Spec == nil || fin.Spec.Timeout != jobspec.Duration(time.Minute) {
		t.Errorf("server default timeout not applied: %+v", fin.Spec)
	}
	var res jobspec.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatalf("result not decodable: %v", err)
	}
	if res.Kind != jobspec.KindOP || res.OP == nil || len(res.OP.Nodes) != 1 {
		t.Fatalf("result = %+v", res)
	}
	if out := res.OP.Nodes[0].V; out <= 0 || out >= 1.1 {
		t.Errorf("V(out) = %g, want inside the rails", out)
	}

	// The list endpoint shows the job without spec or result payloads.
	resp2, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list struct {
		Jobs []View `json:"jobs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID || list.Jobs[0].Spec != nil || list.Jobs[0].Result != nil {
		t.Errorf("list = %+v", list.Jobs)
	}

	// Unknown IDs are 404s on every per-job endpoint.
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/nope"},
		{http.MethodDelete, "/v1/jobs/nope"},
		{http.MethodGet, "/v1/jobs/nope/events"},
	} {
		r, err := http.NewRequest(req.method, ts.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name, body, want string
	}{
		{"malformed json", "{not json", "decoding spec"},
		{"unknown field", `{"analysis":"op","netlist":"x","typo_field":1}`, "decoding spec"},
		{"netlist file refused", `{"analysis":"op","netlist_file":"/etc/passwd"}`, "inline netlists only"},
		{"unknown analysis", `{"analysis":"bogus","netlist":"x"}`, "unknown analysis"},
		{"mc without node", `{"analysis":"mc","netlist":"x"}`, "mc needs a node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			b, _ := io.ReadAll(resp.Body)
			if !strings.Contains(string(b), tc.want) {
				t.Errorf("body %q does not mention %q", b, tc.want)
			}
		})
	}
}

func TestEventsStreamOrdering(t *testing.T) {
	const trials = 16
	_, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1, ProgressEvery: 1})
	resp, v := submit(t, ts, mcSpec(trials))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// The stream ends at the terminal event, so reading to EOF is the
	// whole lifecycle regardless of whether we raced the execution.
	es, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Exact shape: queued, started, one progress per trial in strictly
	// increasing order, then done — with dense sequence numbers.
	if len(events) != trials+3 {
		t.Fatalf("got %d events, want %d: %+v", len(events), trials+3, events)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (not dense): %+v", i, ev.Seq, ev)
		}
	}
	if events[0].Type != "queued" || events[1].Type != "started" {
		t.Fatalf("prologue = %+v", events[:2])
	}
	for i := 0; i < trials; i++ {
		ev := events[2+i]
		if ev.Type != "progress" || ev.Stage != "trial" || ev.Done != i+1 || ev.Total != trials {
			t.Fatalf("progress %d = %+v", i, ev)
		}
	}
	if last := events[len(events)-1]; last.Type != "done" {
		t.Fatalf("terminal event = %+v", last)
	}

	// ?from= resumes mid-log: asking for the tail yields only the tail.
	es2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, v.ID, len(events)-1))
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Body.Close()
	tail, err := io.ReadAll(es2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(tail, []byte("\n")); n != 1 || !bytes.Contains(tail, []byte(`"done"`)) {
		t.Errorf("tail = %q", tail)
	}

	// A malformed ?from= is a 400, not a hung stream.
	es3, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	es3.Body.Close()
	if es3.StatusCode != http.StatusBadRequest {
		t.Errorf("from=-1 status = %d", es3.StatusCode)
	}
}

func TestQueueFullExactRejections(t *testing.T) {
	const (
		workers = 2
		depth   = 3
		burst   = 5 // beyond workers+depth: every one must bounce
	)
	started := make(chan string, workers+depth+burst)
	release := make(chan struct{})
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		QueueDepth: depth, Workers: workers, Registry: reg,
		Execute: blockingExec(started, release),
	})
	// Seed the smoothed job-duration estimate so the Retry-After hint is
	// a deterministic function of the backlog: with avg 8 s jobs, depth 3
	// and 2 workers a rejected client waits ceil((3+1)*8/2) = 16 s.
	s.observeJobDuration(8 * time.Second)

	// Fill the workers first so the queue occupancy is deterministic.
	var accepted []string
	for i := 0; i < workers; i++ {
		resp, v := submit(t, ts, mcSpec(10))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("worker-fill submit %d: status %d", i, resp.StatusCode)
		}
		accepted = append(accepted, v.ID)
	}
	for i := 0; i < workers; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never picked up the first jobs")
		}
	}
	// Now fill the queue to capacity...
	for i := 0; i < depth; i++ {
		resp, v := submit(t, ts, mcSpec(10))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue-fill submit %d: status %d", i, resp.StatusCode)
		}
		accepted = append(accepted, v.ID)
	}
	// ...and every further submission in the burst must be rejected with
	// backpressure: 503 plus a Retry-After hint.
	for i := 0; i < burst; i++ {
		resp, _ := submit(t, ts, mcSpec(10))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("burst submit %d: status %d, want 503", i, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "16" {
			t.Errorf("Retry-After = %q, want the load-derived 16", got)
		}
	}
	// The hint tracks load: folding a slower job into the estimate
	// (EWMA 0.7*8 + 0.3*16 = 10.4 s) raises the same-backlog hint to
	// ceil(4*10.4/2) = 21.
	s.observeJobDuration(16 * time.Second)
	respSlow, _ := submit(t, ts, mcSpec(10))
	if respSlow.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-EWMA submit: status %d, want 503", respSlow.StatusCode)
	}
	if got := respSlow.Header.Get("Retry-After"); got != "21" {
		t.Errorf("Retry-After after slower jobs = %q, want 21 (> 16: hint must scale with load)", got)
	}

	close(release)
	for _, id := range accepted {
		if v := waitTerminal(t, ts, id); v.State != StateDone {
			t.Errorf("job %s = %s", id, v.State)
		}
	}

	snap := reg.Snapshot()
	if n, _ := snap.Counter("serve_jobs_rejected_total"); n != burst+1 {
		t.Errorf("serve_jobs_rejected_total = %d, want %d", n, burst+1)
	}
	if n, _ := snap.Counter("serve_jobs_submitted_total"); n != workers+depth {
		t.Errorf("serve_jobs_submitted_total = %d, want %d", n, workers+depth)
	}
	if n, _ := snap.Counter("serve_jobs_done_total"); n != workers+depth {
		t.Errorf("serve_jobs_done_total = %d, want %d", n, workers+depth)
	}
	// The per-kind label dimension rode along.
	if n, _ := snap.Counter("serve_jobs_submitted_mc_total"); n != workers+depth {
		t.Errorf("serve_jobs_submitted_mc_total = %d, want %d", n, workers+depth)
	}
}

func TestCancelRunningJobPersistsPartial(t *testing.T) {
	// A real Monte-Carlo job big enough to still be running when the
	// DELETE lands; the first progress event tells us it is mid-flight.
	_, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1, ProgressEvery: 1})
	resp, v := submit(t, ts, mcSpec(200000))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	es, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	sc := bufio.NewScanner(es.Body)
	cancelled := false
	var terminal Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "progress" && !cancelled {
			cancelled = true
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
			if err != nil {
				t.Fatal(err)
			}
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			dresp.Body.Close()
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("DELETE status = %d", dresp.StatusCode)
			}
		}
		terminal = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !cancelled {
		t.Fatal("job finished before any progress event; enlarge the trial count")
	}
	if terminal.Type != "cancelled" {
		t.Fatalf("stream ended with %+v, want cancelled", terminal)
	}

	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateCancelled {
		t.Fatalf("state = %s", fin.State)
	}
	if fin.Result == nil {
		t.Fatal("cancelled job persisted no partial result")
	}
	var res jobspec.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.MC == nil {
		t.Fatalf("result = %+v", res)
	}
	mc := res.MC
	if mc.Cancelled == 0 {
		t.Error("no trials accounted as cancelled")
	}
	if got := len(mc.Values) + mc.Failures + mc.NaNs + mc.Cancelled; got != mc.Requested {
		t.Errorf("accounting: %d values + %d failed + %d NaN + %d cancelled != %d requested",
			len(mc.Values), mc.Failures, mc.NaNs, mc.Cancelled, mc.Requested)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1, Execute: blockingExec(started, release)})

	_, running := submit(t, ts, mcSpec(10))
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never started")
	}
	_, queued := submit(t, ts, mcSpec(10))

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dv View
	if err := json.NewDecoder(dresp.Body).Decode(&dv); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dv.State != StateCancelled {
		t.Fatalf("queued job after DELETE = %s, want cancelled immediately", dv.State)
	}

	close(release)
	if v := waitTerminal(t, ts, running.ID); v.State != StateDone {
		t.Errorf("running job = %s", v.State)
	}
	// The worker must skip the cancelled job, not run it: its state stays
	// cancelled with no started timestamp.
	if v := getJob(t, ts, queued.ID); v.State != StateCancelled || v.Started != nil {
		t.Errorf("cancelled job = %+v", v)
	}
	// Cancelling a terminal job is a no-op, not an error.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	dresp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var dv2 View
	if err := json.NewDecoder(dresp2.Body).Decode(&dv2); err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dv2.State != StateDone {
		t.Errorf("terminal job after DELETE = %s", dv2.State)
	}
}

func TestGracefulDrainPersistsPartialResults(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{}) // never closed: only the drain unblocks jobs
	reg := obs.NewRegistry()
	s := NewServer(Config{QueueDepth: 2, Workers: 1, Registry: reg, Execute: blockingExec(started, release)})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, running := submit(t, ts, mcSpec(10))
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	_, queued := submit(t, ts, mcSpec(10))

	// Shut down with a budget the blocked job will exhaust.
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		errc <- s.Shutdown(ctx)
	}()

	// Admission closes as soon as the drain begins: poll until the first
	// 503, which must mention draining (not queue pressure).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"analysis":"op","netlist":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if !strings.Contains(string(b), "draining") {
				t.Fatalf("drain rejection body = %q", b)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission never closed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Shutdown returned nil despite a blocked job")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned")
	}

	// The running job was cut off by the drain deadline but persisted the
	// partial result its executor returned.
	rv := getJob(t, ts, running.ID)
	if rv.State != StateDone {
		t.Fatalf("drained running job = %s (error %q)", rv.State, rv.Error)
	}
	var res jobspec.Result
	if err := json.Unmarshal(rv.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Partial || !strings.Contains(res.Warning, "drained") {
		t.Errorf("persisted result = %+v, want the executor's partial", res)
	}

	// The job still queued when the budget ran out never ran: cancelled.
	qv := getJob(t, ts, queued.ID)
	if qv.State != StateCancelled || qv.Started != nil {
		t.Errorf("drained queued job = %+v", qv)
	}
	if n, _ := reg.Snapshot().Counter("serve_jobs_cancelled_total"); n != 1 {
		t.Errorf("serve_jobs_cancelled_total = %d, want 1", n)
	}

	// Shutdown is idempotent.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown = %v", err)
	}
}

func TestPanicInExecutorFailsOneJobOnly(t *testing.T) {
	boom := func(ctx context.Context, spec *jobspec.Spec, _ jobspec.Options) (*jobspec.Result, error) {
		if spec.Analysis == jobspec.KindMC {
			panic("pathological spec")
		}
		return &jobspec.Result{Kind: spec.Analysis}, nil
	}
	_, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 1, Execute: boom})

	_, bad := submit(t, ts, mcSpec(10))
	if v := waitTerminal(t, ts, bad.ID); v.State != StateFailed || !strings.Contains(v.Error, "panicked") {
		t.Fatalf("panicking job = %s (error %q)", v.State, v.Error)
	}
	// The server survived: the next job runs to completion on the same
	// worker.
	_, good := submit(t, ts, &jobspec.Spec{Analysis: jobspec.KindOP, Netlist: inverterDeck})
	if v := waitTerminal(t, ts, good.ID); v.State != StateDone {
		t.Errorf("follow-up job = %s", v.State)
	}
}

func TestObservabilityEndpointsOnJobMux(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1, Registry: reg})
	_, v := submit(t, ts, &jobspec.Spec{Analysis: jobspec.KindOP, Netlist: inverterDeck})
	waitTerminal(t, ts, v.ID)

	for path, want := range map[string]string{
		"/metrics":      "serve_jobs_submitted_total",
		"/metrics.json": "serve_jobs_submitted_op_total",
		"/debug/vars":   "serve_jobs",
		"/healthz":      `"status": "ok"`,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
			continue
		}
		if !strings.Contains(string(b), want) {
			t.Errorf("GET %s: body does not contain %q", path, want)
		}
	}
}
