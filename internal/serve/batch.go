package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/jobspec"
)

// maxBatchRecords bounds the in-memory batch table. Batch envelopes are
// ephemeral groupings — the jobs inside them are journaled individually
// and survive restarts, the grouping does not — so the table holds the
// most recent envelopes and silently forgets the oldest.
const maxBatchRecords = 256

// batchRecord is the server-side memory of one POST /v1/batches: which
// job each spec index resolved to, and how (fresh, cache hit, or
// duplicate of an identical sibling spec).
type batchRecord struct {
	id        string
	tenant    string
	submitted time.Time
	refs      []batchJobRef
}

type batchJobRef struct {
	index  int
	jobID  string
	cached bool
	// dupOf is the index of the identical earlier spec this one was folded
	// into (-1 when the spec got its own job).
	dupOf int
}

// batchJobView is one spec's entry in a batch response.
type batchJobView struct {
	// Index is the spec's position in the submitted batch.
	Index int `json:"index"`
	// JobID names the job answering this spec — shared with every
	// duplicate sibling.
	JobID string `json:"job_id"`
	// State is the job's current state (absent when the job has since
	// been evicted by the retention policy).
	State State `json:"state,omitempty"`
	// Cached marks a spec answered from the result cache without running.
	Cached bool `json:"cached,omitempty"`
	// DuplicateOf points at the earlier spec index this one was
	// deduplicated into; absent for specs that got their own job.
	DuplicateOf *int `json:"duplicate_of,omitempty"`
}

// batchView is the response of POST /v1/batches and GET /v1/batches/{id}.
type batchView struct {
	ID        string         `json:"id"`
	Tenant    string         `json:"tenant"`
	Submitted time.Time      `json:"submitted"`
	Jobs      []batchJobView `json:"jobs"`
	// States counts the batch's jobs by current state; Terminal is true
	// once every job is done, failed or cancelled.
	States   map[string]int `json:"states"`
	Terminal bool           `json:"terminal"`
}

// handleBatchSubmit admits one request carrying a sweep of specs under
// the tenant's quotas, atomically: either every non-cached spec is
// enqueued or none is. Specs that are identical after defaulting (equal
// canonical hash) are folded into one job; specs whose hash already has
// a cached result are answered from the cache without a queue slot or a
// trial-rate debit. Batch specs default to the batch priority class
// (X-Priority overrides) — a sweep should not preempt interactive work.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request, ts *tenantState) {
	tenant := tenantID(ts)
	class, err := requestClass(r, ClassBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError(ErrBadArgument, err))
		return
	}
	batch := new(jobspec.Batch)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(batch); err != nil {
		writeError(w, http.StatusBadRequest,
			apiError(ErrInvalidSpec, fmt.Errorf("decoding batch: %w", err)))
		return
	}
	for i, sp := range batch.Specs {
		if sp != nil && sp.NetlistFile != "" {
			writeError(w, http.StatusBadRequest, apiError(ErrInvalidSpec, fmt.Errorf(
				"batch spec %d: the job server accepts inline netlists only (set \"netlist\", not \"netlist_file\")", i)))
			return
		}
	}
	batch.ApplyDefaults()
	if s.cfg.DefaultTimeout > 0 {
		for _, sp := range batch.Specs {
			if sp != nil && sp.Timeout == 0 {
				sp.Timeout = jobspec.Duration(s.cfg.DefaultTimeout)
			}
		}
	}
	if err := batch.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, apiError(ErrInvalidSpec, err))
		return
	}

	// Dedup pass: hash every spec, fold identical siblings onto the first
	// occurrence. firstIdx maps hash → owning spec index.
	n := len(batch.Specs)
	hashes := make([]string, n)
	dupOf := make([]int, n)
	firstIdx := map[string]int{}
	for i, sp := range batch.Specs {
		hashes[i] = sp.CanonicalHash()
		if j, seen := firstIdx[hashes[i]]; seen {
			dupOf[i] = j
		} else {
			firstIdx[hashes[i]] = i
			dupOf[i] = -1
		}
	}
	// Cache pass over the unique specs.
	cachedRaw := map[int]json.RawMessage{}
	if st := s.cfg.Store; st != nil {
		for i, sp := range batch.Specs {
			if dupOf[i] != -1 || sp.NoCache {
				continue
			}
			if _, raw, ok := st.CachedResult(hashes[i]); ok {
				cachedRaw[i] = raw
			}
		}
	}
	// Rate admission covers only the work that will actually run.
	cost := 0.0
	var toRun []int
	for i := range batch.Specs {
		if dupOf[i] != -1 {
			continue
		}
		if _, hit := cachedRaw[i]; hit {
			continue
		}
		toRun = append(toRun, i)
		cost += trialCost(batch.Specs[i])
	}
	if !s.admitRate(w, ts, cost) {
		return
	}
	// Admit the runnable specs atomically; nothing is journaled or
	// visible until the whole set has a queue slot.
	queued := make(map[int]*Job, len(toRun))
	jobsToPush := make([]*Job, 0, len(toRun))
	for _, i := range toRun {
		j := s.addJob(batch.Specs[i], hashes[i], tenant, class, false)
		queued[i] = j
		jobsToPush = append(jobsToPush, j)
	}
	if err := s.queue.tryPush(s.tenantCfg(tenant), jobsToPush...); err != nil {
		for _, j := range queued {
			s.removeJob(j.ID)
		}
		if ts != nil {
			ts.refund(cost)
		}
		s.rejectPush(w, err, ts)
		return
	}
	now := time.Now()
	refs := make([]batchJobRef, n)
	allTerminal := true
	for i := range batch.Specs {
		switch {
		case dupOf[i] != -1:
			// Filled below once the owning index has its job.
		case queued[i] != nil:
			j := queued[i]
			refs[i] = batchJobRef{index: i, jobID: j.ID, dupOf: -1}
			s.met.submitted.Inc()
			s.met.kindCounter(batch.Specs[i].Analysis).Inc()
			s.met.tenantAdmitted(tenant).Inc()
			s.persistSubmitted(j, now)
			allTerminal = false
		default:
			raw := cachedRaw[i]
			j := s.addCachedJob(batch.Specs[i], hashes[i], tenant, class, raw)
			if j == nil {
				// Drain began mid-admission: the already-queued siblings run
				// to completion under the drain (and land in the cache), but
				// the batch as a unit is refused, matching the single-submit
				// drain contract.
				writeError(w, http.StatusServiceUnavailable, ErrorBody{
					Code: ErrDraining, Message: errDraining.Error(), RetryAfterS: s.retryAfterHint()})
				return
			}
			refs[i] = batchJobRef{index: i, jobID: j.ID, cached: true, dupOf: -1}
			s.met.submitted.Inc()
			s.met.kindCounter(batch.Specs[i].Analysis).Inc()
			s.met.tenantAdmitted(tenant).Inc()
			s.met.batchCached.Inc()
			s.met.finished(StateDone)
			s.persistSubmitted(j, now)
			if st := s.cfg.Store; st != nil {
				// cacheable=false: the cache already holds the canonical entry.
				s.storeErr(st.JobTerminal(j.ID, string(StateDone), "", raw, false, now))
			}
		}
	}
	for i := range batch.Specs {
		if d := dupOf[i]; d != -1 {
			refs[i] = batchJobRef{index: i, jobID: refs[d].jobID, cached: refs[d].cached, dupOf: d}
			s.met.batchDeduped.Inc()
			if !refs[d].cached {
				allTerminal = false
			}
		}
	}
	s.met.batches.Inc()
	s.met.depth.Set(float64(s.queue.depth()))
	s.met.tenantDepth(tenant).Set(float64(s.queue.tenantDepth(tenant)))
	s.enforceRetention(now)

	rec := &batchRecord{tenant: tenant, submitted: now, refs: refs}
	s.batchMu.Lock()
	s.nextBatchID++
	rec.id = fmt.Sprintf("batch-%06d", s.nextBatchID)
	s.batches[rec.id] = rec
	s.batchOrder = append(s.batchOrder, rec.id)
	if len(s.batchOrder) > maxBatchRecords {
		evict := s.batchOrder[0]
		s.batchOrder = s.batchOrder[1:]
		delete(s.batches, evict)
	}
	s.batchMu.Unlock()

	status := http.StatusAccepted
	if allTerminal {
		status = http.StatusOK
	}
	writeJSON(w, status, s.batchViewOf(rec))
}

// handleBatchGet reports a batch's jobs and aggregate state. Batch
// envelopes are ephemeral (bounded in-memory table, not journaled):
// after eviction or a restart the jobs remain addressable individually
// but the envelope answers 404.
func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request, ts *tenantState) {
	s.batchMu.Lock()
	rec := s.batches[r.PathValue("id")]
	s.batchMu.Unlock()
	if rec == nil || (s.tenants != nil && rec.tenant != tenantID(ts)) {
		writeError(w, http.StatusNotFound, apiError(ErrNotFound, errors.New("no such batch")))
		return
	}
	writeJSON(w, http.StatusOK, s.batchViewOf(rec))
}

// batchViewOf resolves a batch record against the live job table.
func (s *Server) batchViewOf(rec *batchRecord) batchView {
	v := batchView{
		ID:        rec.id,
		Tenant:    rec.tenant,
		Submitted: rec.submitted,
		Jobs:      make([]batchJobView, len(rec.refs)),
		States:    map[string]int{},
		Terminal:  true,
	}
	for i, ref := range rec.refs {
		jv := batchJobView{Index: ref.index, JobID: ref.jobID, Cached: ref.cached}
		if ref.dupOf != -1 {
			d := ref.dupOf
			jv.DuplicateOf = &d
		}
		if j := s.job(ref.jobID); j != nil {
			st, _ := j.terminalInfo()
			jv.State = st
			v.States[string(st)]++
			if !st.Terminal() {
				v.Terminal = false
			}
		} else {
			v.States["evicted"]++
		}
		v.Jobs[i] = jv
	}
	return v
}
