package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

// --- raw-URL helpers (fleet tests address servers by base URL, which
// must be known before the server starts, so httptest.NewServer's
// after-the-fact URL does not fit) ---

// serveOn mounts a server on a pre-created listener and returns its base
// URL. The listener is closed by the caller (some tests close it early,
// on purpose — that is the failure under test).
func serveOn(ln net.Listener, s *Server) string {
	go func() { _ = http.Serve(ln, s) }()
	return "http://" + ln.Addr().String()
}

func doURL(t *testing.T, method, url, key string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding body: %v", method, url, err)
		}
	}
	return resp
}

func submitURL(t *testing.T, base, key string, spec *jobspec.Spec) View {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var v View
	resp := doURL(t, "POST", base+"/v1/jobs", key, body, &v)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit to %s: status %d, want 202", base, resp.StatusCode)
	}
	return v
}

func getURL(t *testing.T, base, key, id string) (View, int) {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func waitTerminalURL(t *testing.T, base, key, id string) View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, status := getURL(t, base, key, id)
		if status == http.StatusOK && v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still not terminal via %s (status %d, state %s)", id, base, status, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- satellite 1: shard dispatch must carry the submitting tenant's
// credential ---

// TestShardDispatchTenantAuth runs a sharded campaign between two
// legacy-peer servers that BOTH require tenant keys: the dispatch path
// must authenticate every shard sub-job (submit, poll, cleanup) as the
// submitting tenant, so every shard lands on the peer — zero fallbacks —
// and the merged moments stay bit-identical to an unsharded run. Before
// the fix, dispatchShard sent only Content-Type, the peer 401'd every
// shard, and the campaign silently degraded to all-local execution.
func TestShardDispatchTenantAuth(t *testing.T) {
	regPeer := obs.NewRegistry()
	_, tsPeer := newTestServer(t, Config{
		QueueDepth: 16, Workers: 2, Registry: regPeer, Tenants: twoTenants(),
	})

	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		QueueDepth: 4, Workers: 1, Registry: reg, Tenants: twoTenants(),
		Peers: []string{tsPeer.URL},
	})

	spec := mcSpec(96)
	spec.Seed = 51
	spec.MC.Shards = 4
	_, v := submitAs(t, ts, "k-acme", spec)
	fin := waitTerminalAs(t, ts, "k-acme", v.ID)
	if fin.State != StateDone {
		t.Fatalf("sharded campaign = %s (error %q), want done", fin.State, fin.Error)
	}
	if n, _ := reg.Snapshot().Counter("serve_shards_dispatched_total"); n != 4 {
		t.Errorf("serve_shards_dispatched_total = %d, want 4 (tenant credential not propagated?)", n)
	}
	if n, _ := reg.Snapshot().Counter("serve_shard_fallbacks_total"); n != 0 {
		t.Errorf("serve_shard_fallbacks_total = %d, want 0", n)
	}
	// The peer owns the sub-jobs under the originating tenant.
	if n, _ := regPeer.Snapshot().Counter("serve_tenant_acme_admitted_total"); n != 4 {
		t.Errorf("peer admitted %d acme sub-jobs, want 4", n)
	}

	var got jobspec.Result
	if err := json.Unmarshal(fin.Result, &got); err != nil {
		t.Fatal(err)
	}
	ref := mcSpec(96)
	ref.Seed = 51
	ref.ApplyDefaults()
	want, err := jobspec.Execute(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.MC.Stats.Moments != want.MC.Stats.Moments {
		t.Errorf("tenant-authenticated sharded moments\n%+v\ndiffer from the unsharded run's\n%+v",
			got.MC.Stats.Moments, want.MC.Stats.Moments)
	}
}

// TestShardDispatchAuthRejectionCounted: when the peer demands keys the
// dispatching server cannot supply, the campaign must still complete by
// local fallback — and the fallbacks must be counted as auth rejections,
// distinct from unreachable peers, so the operator sees a key problem,
// not a network one.
func TestShardDispatchAuthRejectionCounted(t *testing.T) {
	_, tsPeer := newTestServer(t, Config{QueueDepth: 16, Workers: 2, Tenants: twoTenants()})

	// The origin runs single-tenant: it has no credential to attach.
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		QueueDepth: 4, Workers: 1, Registry: reg, Peers: []string{tsPeer.URL},
	})

	spec := mcSpec(48)
	spec.Seed = 52
	spec.MC.Shards = 2
	_, v := submit(t, ts, spec)
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("campaign = %s (error %q), want local-fallback done", fin.State, fin.Error)
	}
	var got jobspec.Result
	if err := json.Unmarshal(fin.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.MC == nil || got.MC.Completed() != 48 {
		t.Fatalf("fallback campaign = %+v, want 48 completed trials", got.MC)
	}
	snap := reg.Snapshot()
	if n, _ := snap.Counter("serve_shard_fallbacks_total"); n != 2 {
		t.Errorf("serve_shard_fallbacks_total = %d, want 2", n)
	}
	if n, _ := snap.Counter("serve_shard_fallbacks_auth_total"); n != 2 {
		t.Errorf("serve_shard_fallbacks_auth_total = %d, want 2", n)
	}
	if n, _ := snap.Counter("serve_shard_fallbacks_unreachable_total"); n != 0 {
		t.Errorf("serve_shard_fallbacks_unreachable_total = %d, want 0", n)
	}
}

// --- satellite 2: dispatch timeouts ---

// TestShardDispatchHungPeer points Peers at a listener that accepts TCP
// and then never answers — the failure mode http.DefaultClient (no
// timeout) turned into a worker goroutine parked forever. With
// ShardHTTPTimeout the dispatch must time out, fall back locally
// (counted as unreachable), finish the campaign, and leak no goroutines.
func TestShardDispatchHungPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold every connection open, answer nothing
		}
	}()

	baseline := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		QueueDepth: 4, Workers: 1, Registry: reg,
		Peers:            []string{"http://" + ln.Addr().String()},
		ShardHTTPTimeout: 300 * time.Millisecond,
	})

	spec := mcSpec(48)
	spec.Seed = 53
	spec.MC.Shards = 2
	start := time.Now()
	_, v := submit(t, ts, spec)
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("campaign = %s (error %q), want local-fallback done", fin.State, fin.Error)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("campaign took %s against a hung peer; the timeout did not bite", elapsed)
	}
	snap := reg.Snapshot()
	if n, _ := snap.Counter("serve_shard_fallbacks_unreachable_total"); n != 2 {
		t.Errorf("serve_shard_fallbacks_unreachable_total = %d, want 2", n)
	}
	if n, _ := snap.Counter("serve_shard_fallbacks_auth_total"); n != 0 {
		t.Errorf("serve_shard_fallbacks_auth_total = %d, want 0", n)
	}

	// No goroutine may stay parked on the hung sockets.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+15 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d now vs baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// --- fleet federation ---

// twoNodeFleet builds the shared two-node fleet table. Probe pacing is
// set to an hour so the background prober never interferes: tests drive
// probeFleet by hand with a synthetic clock for determinism.
func twoNodeFleet(self, urlA, urlB, dirA, dirB string) *FleetConfig {
	return &FleetConfig{
		Self: self,
		Key:  "k-fleet",
		Nodes: []FleetNode{
			{ID: "a", URL: urlA, DataDir: dirA},
			{ID: "b", URL: urlB, DataDir: dirB},
		},
		ProbeEvery:    jobspec.Duration(time.Hour),
		QuarantineMax: jobspec.Duration(time.Hour),
		TakeoverAfter: 2,
	}
}

// TestFleetForwarding: a job submitted on node A is answered by node B —
// poll, events stream and cancel all forward to the owner resolved from
// the ID prefix — while the hop guard keeps an unknown ID at one extra
// hop (404, no loop) and cross-tenant probing stays a 404 through the
// forwarder.
func TestFleetForwarding(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	sA := NewServer(Config{QueueDepth: 8, Workers: 1, Registry: regA, Tenants: twoTenants(),
		Fleet: twoNodeFleet("a", urlA, urlB, "", "")})
	sB := NewServer(Config{QueueDepth: 8, Workers: 1, Registry: regB, Tenants: twoTenants(),
		Fleet: twoNodeFleet("b", urlA, urlB, "", "")})
	serveOn(lnA, sA)
	serveOn(lnB, sB)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sA.Shutdown(ctx)
		_ = sB.Shutdown(ctx)
		lnA.Close()
		lnB.Close()
	})

	v := submitURL(t, urlA, "k-acme", mcSpec(8))
	if ownerFromID(v.ID) != "a" {
		t.Fatalf("job id %q does not carry the owner prefix", v.ID)
	}

	// Poll through B: forwarded to A, answered 200.
	fin := waitTerminalURL(t, urlB, "k-acme", v.ID)
	if fin.State != StateDone {
		t.Fatalf("forwarded job = %s, want done", fin.State)
	}
	if n, _ := regB.Snapshot().Counter("serve_fleet_forwards_total"); n == 0 {
		t.Error("B answered A's job without forwarding")
	}

	// The events stream forwards too, ending with the terminal event.
	req, err := http.NewRequest("GET", urlB+"/v1/jobs/"+v.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer k-acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded events stream: status %d", resp.StatusCode)
	}
	var lastType string
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			break
		}
		lastType = ev.Type
	}
	resp.Body.Close()
	if lastType != "done" {
		t.Errorf("forwarded stream ended with %q, want done", lastType)
	}

	// Cross-tenant access stays a 404 through the forwarder: B forwards
	// with the caller's tenant scope, and A refuses to leak acme's job to
	// beta exactly as it would locally.
	if _, status := getURL(t, urlB, "k-beta", v.ID); status != http.StatusNotFound {
		t.Errorf("cross-tenant forwarded GET: status %d, want 404", status)
	}

	// Hop guard: an ID no node holds costs one forward each way, never a
	// loop — B asks owner A, A answers 404 without re-forwarding.
	if _, status := getURL(t, urlB, "k-acme", "a-job-999999"); status != http.StatusNotFound {
		t.Errorf("unknown fleet job: status %d, want 404", status)
	}
	// An unprefixed ID resolves to no owner and dies locally.
	if _, status := getURL(t, urlB, "k-acme", "nope"); status != http.StatusNotFound {
		t.Errorf("unprefixed id: status %d, want 404", status)
	}
}

// TestFleetQuarantineRecovery drives the probe state machine by hand: a
// dead node is quarantined with growing backoff (no hammering — a probe
// inside the backoff window is skipped), and a recovered node is probed
// back to healthy, resuming placement eligibility.
func TestFleetQuarantineRecovery(t *testing.T) {
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lnB.Addr().String()
	urlB := "http://" + addrB

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	// A's own URL is never dialed by A; a placeholder keeps the table valid.
	sA := NewServer(Config{QueueDepth: 8, Workers: 1, Registry: regA,
		Fleet: twoNodeFleet("a", "http://127.0.0.1:1", urlB, "", "")})
	sB := NewServer(Config{QueueDepth: 8, Workers: 1, Registry: regB,
		Fleet: twoNodeFleet("b", "http://127.0.0.1:1", urlB, "", "")})
	serveOn(lnB, sB)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sA.Shutdown(ctx)
		_ = sB.Shutdown(ctx)
		lnB.Close()
	})

	now := time.Now()
	sA.probeFleet(now)
	if got := sA.met.fleetHealthy.Value(); got != 2 {
		t.Fatalf("healthy nodes after first probe = %v, want 2", got)
	}

	// Kill B's listener: the next due probe fails and quarantines it.
	lnB.Close()
	sA.probeFleet(now.Add(3 * time.Hour))
	if got := sA.met.fleetHealthy.Value(); got != 1 {
		t.Fatalf("healthy nodes after kill = %v, want 1", got)
	}
	fails, _ := regA.Snapshot().Counter("serve_fleet_probe_failures_total")
	if fails != 1 {
		t.Fatalf("probe failures = %d, want 1", fails)
	}

	// Inside the backoff window the quarantined node is NOT re-probed.
	before, _ := regA.Snapshot().Counter("serve_fleet_probes_total")
	sA.probeFleet(now.Add(3*time.Hour + time.Second))
	if after, _ := regA.Snapshot().Counter("serve_fleet_probes_total"); after != before {
		t.Errorf("quarantined node probed inside its backoff window (%d -> %d)", before, after)
	}

	// B comes back on the same address; the next due probe recovers it.
	lnB2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer lnB2.Close()
	serveOn(lnB2, sB)
	sA.probeFleet(now.Add(6 * time.Hour))
	if got := sA.met.fleetHealthy.Value(); got != 2 {
		t.Fatalf("healthy nodes after recovery = %v, want 2", got)
	}
	sA.fleet.mu.Lock()
	p := sA.fleet.peers["b"]
	healthy, consec := p.healthy, p.fails
	sA.fleet.mu.Unlock()
	if !healthy || consec != 0 {
		t.Errorf("recovered peer healthy=%v fails=%d, want true/0", healthy, consec)
	}
}

// TestFleetKillAndFailoverResume is the two-node acceptance run, under
// -race via `make race-fleet`: a campaign freezes mid-run on its owning
// node B while node A, seeing B's running job through the probes,
// enforces the tenant's fleet-wide max_running=1 by holding its own acme
// job queued. Then B dies (listener closed, worker still frozen — a
// hang, the worst kind of death) and after TakeoverAfter failed probes A
// adopts B's job from B's journal, resumes it from the last merged chunk
// checkpoint, and finishes it bit-identical to an uninterrupted
// single-node run — after which A's own job, no longer capped by B's
// phantom load, runs too.
func TestFleetKillAndFailoverResume(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	tenants := []TenantConfig{
		{ID: "acme", Key: "k-acme", Weight: 1, MaxRunning: 1},
	}

	regA := obs.NewRegistry()
	stA := mustStore(t, dirA, regA)
	sA := NewServer(Config{QueueDepth: 8, Workers: 1, Store: stA, Registry: regA,
		Tenants: tenants, Fleet: twoNodeFleet("a", urlA, urlB, dirA, dirB)})
	serveOn(lnA, sA)

	// B's executor runs the real engine but freezes inside the checkpoint
	// hook after chunk 1 is journaled — the moment a death hurts most.
	const trials = 96 // chunk size 24 → a 4-chunk campaign
	frozen := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	execB := func(ctx context.Context, sp *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error) {
		inner := opts.OnCheckpoint
		opts.OnCheckpoint = func(cp jobspec.Checkpoint) {
			if inner != nil {
				inner(cp)
			}
			if cp.Seq == 1 {
				once.Do(func() { close(frozen) })
				<-release
			}
		}
		return jobspec.ExecuteOpts(ctx, sp, opts)
	}
	regB := obs.NewRegistry()
	stB := mustStore(t, dirB, regB)
	sB := NewServer(Config{QueueDepth: 8, Workers: 1, Store: stB, Registry: regB,
		Tenants: tenants, Fleet: twoNodeFleet("b", urlA, urlB, dirA, dirB), Execute: execB})
	serveOn(lnB, sB)

	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sA.Shutdown(ctx)
		_ = sB.Shutdown(ctx)
		lnA.Close()
		lnB.Close()
		stA.Close()
		stB.Close()
	})

	spec := mcSpec(trials)
	spec.Seed = 61
	vB := submitURL(t, urlB, "k-acme", spec)
	if ownerFromID(vB.ID) != "b" {
		t.Fatalf("job id %q not owned by b", vB.ID)
	}
	select {
	case <-frozen:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign never journaled its second checkpoint")
	}

	// A probes B healthy and sees acme running one job fleet-wide.
	now := time.Now()
	sA.probeFleet(now)
	if n := sA.fleet.runningFor("acme"); n != 1 {
		t.Fatalf("fleet-wide acme running = %d, want 1", n)
	}

	// Fleet-wide max_running: A's own acme job must hold in the queue
	// while B runs the tenant's one slot.
	vA := submitURL(t, urlA, "k-acme", mcSpec(8))
	time.Sleep(300 * time.Millisecond)
	if v, _ := getURL(t, urlA, "k-acme", vA.ID); v.State != StateQueued {
		t.Fatalf("A's job = %s while B holds acme's fleet-wide slot, want queued", v.State)
	}

	// Kill B: the listener dies, the frozen worker keeps holding the job —
	// exactly what a survivor sees when a peer hangs or loses power.
	lnB.Close()

	// Two failed probe rounds cross TakeoverAfter=2; A (lowest live ID)
	// adopts B's unfinished campaign from B's journal.
	sA.probeFleet(now.Add(3 * time.Hour))
	sA.probeFleet(now.Add(6 * time.Hour))
	if n, _ := regA.Snapshot().Counter("serve_fleet_takeovers_total"); n != 1 {
		t.Fatalf("serve_fleet_takeovers_total = %d, want 1", n)
	}
	if n, _ := regA.Snapshot().Counter("serve_jobs_resumed_total"); n != 1 {
		t.Errorf("serve_jobs_resumed_total = %d, want 1 (adoption should resume from checkpoints)", n)
	}

	// The adopted campaign finishes on A, resumed from B's checkpoints,
	// bit-identical to an uninterrupted run.
	fin := waitTerminalURL(t, urlA, "k-acme", vB.ID)
	if fin.State != StateDone {
		t.Fatalf("adopted campaign = %s (error %q), want done", fin.State, fin.Error)
	}
	var got jobspec.Result
	if err := json.Unmarshal(fin.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.MC == nil || got.MC.Stats == nil {
		t.Fatalf("adopted result carries no campaign stats: %+v", got.MC)
	}
	if got.MC.Resumed != 2 {
		t.Errorf("adopted campaign resumed %d chunks, want the 2 B journaled", got.MC.Resumed)
	}
	if got.MC.Completed() != trials {
		t.Errorf("adopted campaign completed %d trials, want %d", got.MC.Completed(), trials)
	}
	ref := mcSpec(trials)
	ref.Seed = 61
	ref.ApplyDefaults()
	want, err := jobspec.Execute(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.MC.Stats.Moments != want.MC.Stats.Moments {
		t.Errorf("failover-resumed moments\n%+v\ndiffer from the uninterrupted run's\n%+v",
			got.MC.Stats.Moments, want.MC.Stats.Moments)
	}

	// With B dead its phantom load no longer counts: A's own acme job got
	// the fleet-wide slot back and finished.
	finA := waitTerminalURL(t, urlA, "k-acme", vA.ID)
	if finA.State != StateDone {
		t.Errorf("A's queued job = %s after failover, want done", finA.State)
	}
}

// TestFleetShardPlacement: fleet placement sends shards to the probed
// least-backlog node instead of the blind rotation — and with every peer
// quarantined it keeps everything local without a single dispatch
// attempt.
func TestFleetShardPlacement(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	sA := NewServer(Config{QueueDepth: 16, Workers: 1, Registry: regA, Tenants: twoTenants(),
		Fleet: twoNodeFleet("a", urlA, urlB, "", "")})
	sB := NewServer(Config{QueueDepth: 16, Workers: 2, Registry: regB, Tenants: twoTenants(),
		Fleet: twoNodeFleet("b", urlA, urlB, "", "")})
	serveOn(lnA, sA)
	serveOn(lnB, sB)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sA.Shutdown(ctx)
		_ = sB.Shutdown(ctx)
		lnA.Close()
		lnB.Close()
	})

	// Before any probe: every peer is unknown/unhealthy, so shards stay
	// local — no blind dispatch into the dark.
	spec := mcSpec(48)
	spec.Seed = 71
	spec.MC.Shards = 2
	v := submitURL(t, urlA, "k-acme", spec)
	fin := waitTerminalURL(t, urlA, "k-acme", v.ID)
	if fin.State != StateDone {
		t.Fatalf("pre-probe campaign = %s, want done", fin.State)
	}
	snap := regA.Snapshot()
	if n, _ := snap.Counter("serve_shards_placed_local_total"); n != 2 {
		t.Errorf("serve_shards_placed_local_total = %d, want 2 (no healthy peer)", n)
	}
	if n, _ := snap.Counter("serve_shard_fallbacks_total"); n != 0 {
		t.Errorf("serve_shard_fallbacks_total = %d, want 0 — local placement is not a fallback", n)
	}

	// After a probe, B (idle, more workers) is eligible: a sharded
	// campaign spreads across both nodes and the peer executes real
	// sub-jobs under the submitting tenant.
	sA.probeFleet(time.Now())
	spec2 := mcSpec(96)
	spec2.Seed = 72
	spec2.MC.Shards = 4
	v2 := submitURL(t, urlA, "k-acme", spec2)
	fin2 := waitTerminalURL(t, urlA, "k-acme", v2.ID)
	if fin2.State != StateDone {
		t.Fatalf("fleet-placed campaign = %s (error %q), want done", fin2.State, fin2.Error)
	}
	if n, _ := regA.Snapshot().Counter("serve_shards_dispatched_total"); n == 0 {
		t.Error("no shard reached the healthy peer")
	}
	if n, _ := regA.Snapshot().Counter("serve_shard_fallbacks_total"); n != 0 {
		t.Errorf("serve_shard_fallbacks_total = %d, want 0", n)
	}
	// The peer ran the dispatched shards as fleet-internal sub-jobs:
	// admitted and executed, but never charged to acme's own instruments.
	if n, _ := regB.Snapshot().Counter("serve_jobs_submitted_total"); n == 0 {
		t.Error("peer accepted no sub-jobs")
	}
	if n, _ := regB.Snapshot().Counter("serve_tenant_acme_admitted_total"); n != 0 {
		t.Errorf("peer charged %d fleet-internal sub-jobs to acme's admission counter, want 0", n)
	}

	var got jobspec.Result
	if err := json.Unmarshal(fin2.Result, &got); err != nil {
		t.Fatal(err)
	}
	ref := mcSpec(96)
	ref.Seed = 72
	ref.ApplyDefaults()
	want, err := jobspec.Execute(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.MC.Stats.Moments != want.MC.Stats.Moments {
		t.Errorf("fleet-placed moments\n%+v\ndiffer from the unsharded run's\n%+v",
			got.MC.Stats.Moments, want.MC.Stats.Moments)
	}
}

// TestFleetConfigValidate covers the config guards that keep a bad
// fleet.json from running half-federated.
func TestFleetConfigValidate(t *testing.T) {
	base := func() *FleetConfig {
		c := &FleetConfig{Self: "a", Key: "k", Nodes: []FleetNode{
			{ID: "a", URL: "http://h1:1"}, {ID: "b", URL: "http://h2:1"},
		}}
		c.applyDefaults()
		return c
	}
	if err := base().validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*FleetConfig){
		"no key":         func(c *FleetConfig) { c.Key = "" },
		"self missing":   func(c *FleetConfig) { c.Self = "zz" },
		"dup id":         func(c *FleetConfig) { c.Nodes[1].ID = "a" },
		"dup url":        func(c *FleetConfig) { c.Nodes[1].URL = c.Nodes[0].URL },
		"empty id":       func(c *FleetConfig) { c.Nodes[0].ID = "" },
		"reserved infix": func(c *FleetConfig) { c.Nodes[0].ID = "x-job-y"; c.Self = "x-job-y" },
		"no url":         func(c *FleetConfig) { c.Nodes[1].URL = "" },
	}
	for name, mutate := range cases {
		c := base()
		mutate(c)
		if err := c.validate(); err == nil {
			t.Errorf("%s: validate accepted a broken config", name)
		}
	}
	if owner := ownerFromID("b-job-000123"); owner != "b" {
		t.Errorf("ownerFromID = %q, want b", owner)
	}
	if owner := ownerFromID("job-000123"); owner != "" {
		t.Errorf("ownerFromID(unprefixed) = %q, want empty", owner)
	}
	if n, ok := jobSeq("a-job-000042", "a-"); !ok || n != 42 {
		t.Errorf("jobSeq own prefix = %d,%v, want 42,true", n, ok)
	}
	if _, ok := jobSeq("b-job-000042", "a-"); ok {
		t.Error("jobSeq accepted a foreign prefix")
	}
}
