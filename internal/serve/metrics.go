package serve

import (
	"repro/internal/jobspec"
	"repro/internal/obs"
)

// metrics holds the job service's instruments, folded into the same
// registry the simulation stack publishes to, so one /metrics scrape
// shows queue pressure next to Newton iterations. All instruments are
// obs nil-receiver-safe: a server built without a Registry pays one nil
// check per event.
//
// Metrics registered:
//
//	serve_jobs_submitted_total        count  jobs accepted into the queue
//	serve_jobs_submitted_<kind>_total count  accepted jobs by analysis kind (per-job labels)
//	serve_jobs_rejected_total         count  submissions refused with 503 backpressure
//	serve_jobs_done_total             count  jobs finished successfully (incl. partial-on-timeout)
//	serve_jobs_failed_total           count  jobs that errored or panicked
//	serve_jobs_cancelled_total        count  jobs cancelled (client DELETE or shutdown drain)
//	serve_jobs_evicted_total          count  terminal jobs evicted by the retention policy
//	serve_jobs_resumed_total          count  interrupted campaigns re-enqueued with their checkpoints
//	serve_checkpoints_total           count  campaign chunk checkpoints journaled by workers
//	serve_shards_dispatched_total     count  campaign shards answered by peer servers
//	serve_shard_fallbacks_total       count  peer shard dispatches that fell back to local execution
//	serve_shard_fallbacks_auth_total  count  fallbacks caused by a peer rejecting the shard 401/403
//	serve_shard_fallbacks_unreachable_total count fallbacks caused by an unreachable or timed-out peer
//	serve_shards_placed_local_total   count  shards fleet placement ran on this node (least loaded / no healthy peer)
//	serve_fleet_probes_total          count  fleet health probes issued
//	serve_fleet_probe_failures_total  count  fleet health probes that failed
//	serve_fleet_forwards_total        count  requests forwarded to the owning fleet node
//	serve_fleet_takeovers_total       count  jobs adopted from dead fleet peers
//	serve_fleet_nodes_healthy         gauge  fleet nodes currently healthy (this one included)
//	serve_subjobs_cached_total        count  signoff sub-jobs answered from the result cache
//	serve_store_errors_total          count  store writes that failed (job state stays in memory)
//	serve_batches_submitted_total     count  batch submissions accepted
//	serve_batch_specs_deduped_total   count  batch specs folded into an identical sibling spec
//	serve_batch_specs_cached_total    count  batch specs answered from the result cache
//	serve_queue_depth                 gauge  jobs waiting in the bounded queue
//	serve_jobs_inflight               gauge  jobs currently executing on the worker pool
//	serve_event_subscribers           gauge  open /events streams
//	serve_job_seconds                 s      submit→finish latency of finished jobs
//	serve_queue_wait_seconds          s      submit→start wait of started jobs
//
// plus the per-tenant family documented at the tenant helpers below.
type metrics struct {
	reg              *obs.Registry
	submitted        *obs.Counter
	rejected         *obs.Counter
	done             *obs.Counter
	failed           *obs.Counter
	cancelled        *obs.Counter
	evicted          *obs.Counter
	resumed          *obs.Counter
	checkpoints      *obs.Counter
	shardsDispatched          *obs.Counter
	shardFallbacks            *obs.Counter
	shardFallbacksAuth        *obs.Counter
	shardFallbacksUnreachable *obs.Counter
	shardsLocal               *obs.Counter
	fleetProbes               *obs.Counter
	fleetProbeFails           *obs.Counter
	fleetForwards             *obs.Counter
	fleetTakeovers            *obs.Counter
	fleetHealthy              *obs.Gauge
	subjobsCached             *obs.Counter
	storeErrors      *obs.Counter
	batches          *obs.Counter
	batchDeduped     *obs.Counter
	batchCached      *obs.Counter
	depth            *obs.Gauge
	inflight         *obs.Gauge
	subscribers      *obs.Gauge
	jobSecs          *obs.Histogram
	waitSecs         *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:              reg,
		submitted:        reg.Counter("serve_jobs_submitted_total", "1", "jobs accepted into the queue"),
		rejected:         reg.Counter("serve_jobs_rejected_total", "1", "submissions rejected with backpressure"),
		done:             reg.Counter("serve_jobs_done_total", "1", "jobs finished successfully"),
		failed:           reg.Counter("serve_jobs_failed_total", "1", "jobs that errored or panicked"),
		cancelled:        reg.Counter("serve_jobs_cancelled_total", "1", "jobs cancelled by client or shutdown"),
		evicted:          reg.Counter("serve_jobs_evicted_total", "1", "terminal jobs evicted by the retention policy"),
		resumed:          reg.Counter("serve_jobs_resumed_total", "1", "interrupted campaigns re-enqueued with their checkpoints"),
		checkpoints:      reg.Counter("serve_checkpoints_total", "1", "campaign chunk checkpoints journaled by workers"),
		shardsDispatched:          reg.Counter("serve_shards_dispatched_total", "1", "campaign shards answered by peer servers"),
		shardFallbacks:            reg.Counter("serve_shard_fallbacks_total", "1", "peer shard dispatches that fell back to local execution"),
		shardFallbacksAuth:        reg.Counter("serve_shard_fallbacks_auth_total", "1", "shard fallbacks caused by a peer auth rejection"),
		shardFallbacksUnreachable: reg.Counter("serve_shard_fallbacks_unreachable_total", "1", "shard fallbacks caused by an unreachable or timed-out peer"),
		shardsLocal:               reg.Counter("serve_shards_placed_local_total", "1", "shards fleet placement ran on this node"),
		fleetProbes:               reg.Counter("serve_fleet_probes_total", "1", "fleet health probes issued"),
		fleetProbeFails:           reg.Counter("serve_fleet_probe_failures_total", "1", "fleet health probes that failed"),
		fleetForwards:             reg.Counter("serve_fleet_forwards_total", "1", "requests forwarded to the owning fleet node"),
		fleetTakeovers:            reg.Counter("serve_fleet_takeovers_total", "1", "jobs adopted from dead fleet peers"),
		fleetHealthy:              reg.Gauge("serve_fleet_nodes_healthy", "1", "fleet nodes currently healthy"),
		subjobsCached:             reg.Counter("serve_subjobs_cached_total", "1", "signoff sub-jobs answered from the result cache"),
		storeErrors:      reg.Counter("serve_store_errors_total", "1", "store writes that failed"),
		batches:          reg.Counter("serve_batches_submitted_total", "1", "batch submissions accepted"),
		batchDeduped:     reg.Counter("serve_batch_specs_deduped_total", "1", "batch specs folded into an identical sibling spec"),
		batchCached:      reg.Counter("serve_batch_specs_cached_total", "1", "batch specs answered from the result cache"),
		depth:            reg.Gauge("serve_queue_depth", "1", "jobs waiting in the bounded queue"),
		inflight:         reg.Gauge("serve_jobs_inflight", "1", "jobs currently executing"),
		subscribers:      reg.Gauge("serve_event_subscribers", "1", "open /events streams"),
		jobSecs:          reg.Histogram("serve_job_seconds", "s", "submit-to-finish job latency", nil),
		waitSecs:         reg.Histogram("serve_queue_wait_seconds", "s", "submit-to-start queue wait", nil),
	}
}

// kindCounter returns the per-analysis-kind submission counter — the
// per-job label dimension, encoded into the metric name because the obs
// registry is flat. Registry get-or-create makes this cheap and
// idempotent; a nil registry returns a nil (no-op) counter.
func (m *metrics) kindCounter(kind jobspec.Kind) *obs.Counter {
	return m.reg.Counter("serve_jobs_submitted_"+string(kind)+"_total", "1",
		"accepted jobs with analysis "+string(kind))
}

// Per-tenant instruments, label-in-name like kindCounter. Tenant ids are
// operator-chosen from a small static keyfile, so the name space stays
// bounded.
//
//	serve_tenant_<id>_admitted_total   count  jobs of the tenant admitted to the queue
//	serve_tenant_<id>_rejected_total   count  submissions refused by the tenant's own quota (429)
//	serve_tenant_<id>_scheduled_total  count  jobs of the tenant handed to workers
//	serve_tenant_<id>_trials_total     count  trials completed for the tenant (non-MC jobs count 1)
//	serve_tenant_<id>_queue_depth      gauge  jobs of the tenant waiting in the queue

func (m *metrics) tenantAdmitted(tenant string) *obs.Counter {
	return m.reg.Counter("serve_tenant_"+tenant+"_admitted_total", "1",
		"jobs of tenant "+tenant+" admitted to the queue")
}

func (m *metrics) tenantRejected(tenant string) *obs.Counter {
	return m.reg.Counter("serve_tenant_"+tenant+"_rejected_total", "1",
		"submissions of tenant "+tenant+" rejected by its own quota")
}

func (m *metrics) tenantScheduled(tenant string) *obs.Counter {
	return m.reg.Counter("serve_tenant_"+tenant+"_scheduled_total", "1",
		"jobs of tenant "+tenant+" handed to workers")
}

func (m *metrics) tenantTrials(tenant string) *obs.Counter {
	return m.reg.Counter("serve_tenant_"+tenant+"_trials_total", "1",
		"trials completed for tenant "+tenant)
}

func (m *metrics) tenantDepth(tenant string) *obs.Gauge {
	return m.reg.Gauge("serve_tenant_"+tenant+"_queue_depth", "1",
		"jobs of tenant "+tenant+" waiting in the queue")
}

// finished bumps the terminal-state counter for st.
func (m *metrics) finished(st State) {
	switch st {
	case StateDone:
		m.done.Inc()
	case StateFailed:
		m.failed.Inc()
	case StateCancelled:
		m.cancelled.Inc()
	}
}
