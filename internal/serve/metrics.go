package serve

import (
	"repro/internal/jobspec"
	"repro/internal/obs"
)

// metrics holds the job service's instruments, folded into the same
// registry the simulation stack publishes to, so one /metrics scrape
// shows queue pressure next to Newton iterations. All instruments are
// obs nil-receiver-safe: a server built without a Registry pays one nil
// check per event.
//
// Metrics registered:
//
//	serve_jobs_submitted_total        count  jobs accepted into the queue
//	serve_jobs_submitted_<kind>_total count  accepted jobs by analysis kind (per-job labels)
//	serve_jobs_rejected_total         count  submissions refused with 503 backpressure
//	serve_jobs_done_total             count  jobs finished successfully (incl. partial-on-timeout)
//	serve_jobs_failed_total           count  jobs that errored or panicked
//	serve_jobs_cancelled_total        count  jobs cancelled (client DELETE or shutdown drain)
//	serve_jobs_evicted_total          count  terminal jobs evicted by the retention policy
//	serve_jobs_resumed_total          count  interrupted campaigns re-enqueued with their checkpoints
//	serve_checkpoints_total           count  campaign chunk checkpoints journaled by workers
//	serve_shards_dispatched_total     count  campaign shards answered by peer servers
//	serve_shard_fallbacks_total       count  peer shard dispatches that fell back to local execution
//	serve_subjobs_cached_total        count  signoff sub-jobs answered from the result cache
//	serve_store_errors_total          count  store writes that failed (job state stays in memory)
//	serve_queue_depth                 gauge  jobs waiting in the bounded queue
//	serve_jobs_inflight               gauge  jobs currently executing on the worker pool
//	serve_job_seconds                 s      submit→finish latency of finished jobs
//	serve_queue_wait_seconds          s      submit→start wait of started jobs
type metrics struct {
	reg              *obs.Registry
	submitted        *obs.Counter
	rejected         *obs.Counter
	done             *obs.Counter
	failed           *obs.Counter
	cancelled        *obs.Counter
	evicted          *obs.Counter
	resumed          *obs.Counter
	checkpoints      *obs.Counter
	shardsDispatched *obs.Counter
	shardFallbacks   *obs.Counter
	subjobsCached    *obs.Counter
	storeErrors      *obs.Counter
	depth            *obs.Gauge
	inflight         *obs.Gauge
	jobSecs          *obs.Histogram
	waitSecs         *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:              reg,
		submitted:        reg.Counter("serve_jobs_submitted_total", "1", "jobs accepted into the queue"),
		rejected:         reg.Counter("serve_jobs_rejected_total", "1", "submissions rejected with backpressure"),
		done:             reg.Counter("serve_jobs_done_total", "1", "jobs finished successfully"),
		failed:           reg.Counter("serve_jobs_failed_total", "1", "jobs that errored or panicked"),
		cancelled:        reg.Counter("serve_jobs_cancelled_total", "1", "jobs cancelled by client or shutdown"),
		evicted:          reg.Counter("serve_jobs_evicted_total", "1", "terminal jobs evicted by the retention policy"),
		resumed:          reg.Counter("serve_jobs_resumed_total", "1", "interrupted campaigns re-enqueued with their checkpoints"),
		checkpoints:      reg.Counter("serve_checkpoints_total", "1", "campaign chunk checkpoints journaled by workers"),
		shardsDispatched: reg.Counter("serve_shards_dispatched_total", "1", "campaign shards answered by peer servers"),
		shardFallbacks:   reg.Counter("serve_shard_fallbacks_total", "1", "peer shard dispatches that fell back to local execution"),
		subjobsCached:    reg.Counter("serve_subjobs_cached_total", "1", "signoff sub-jobs answered from the result cache"),
		storeErrors:      reg.Counter("serve_store_errors_total", "1", "store writes that failed"),
		depth:            reg.Gauge("serve_queue_depth", "1", "jobs waiting in the bounded queue"),
		inflight:         reg.Gauge("serve_jobs_inflight", "1", "jobs currently executing"),
		jobSecs:          reg.Histogram("serve_job_seconds", "s", "submit-to-finish job latency", nil),
		waitSecs:         reg.Histogram("serve_queue_wait_seconds", "s", "submit-to-start queue wait", nil),
	}
}

// kindCounter returns the per-analysis-kind submission counter — the
// per-job label dimension, encoded into the metric name because the obs
// registry is flat. Registry get-or-create makes this cheap and
// idempotent; a nil registry returns a nil (no-op) counter.
func (m *metrics) kindCounter(kind jobspec.Kind) *obs.Counter {
	return m.reg.Counter("serve_jobs_submitted_"+string(kind)+"_total", "1",
		"accepted jobs with analysis "+string(kind))
}

// finished bumps the terminal-state counter for st.
func (m *metrics) finished(st State) {
	switch st {
	case StateDone:
		m.done.Inc()
	case StateFailed:
		m.failed.Inc()
	case StateCancelled:
		m.cancelled.Inc()
	}
}
