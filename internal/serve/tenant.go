package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/jobspec"
)

// DefaultTenant is the implicit tenant every request belongs to when the
// server runs without a tenant keyfile — the single-tenant mode of the
// pre-multi-tenant API, kept bit-compatible: weight 1, no quotas, no
// authentication.
const DefaultTenant = "default"

// Priority classes. Within one tenant the scheduler always serves
// interactive jobs before batch jobs; across tenants the weighted
// fair-share holds regardless of class, so a tenant cannot jump the
// inter-tenant queue by marking everything interactive.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

// validClass reports whether c names a priority class ("" is resolved to
// a default by the caller before scheduling).
func validClass(c string) bool { return c == ClassInteractive || c == ClassBatch }

// TenantConfig is one tenant's entry in the -tenants keyfile: identity,
// API key, fair-share weight and admission quotas. The JSON form is the
// keyfile wire format:
//
//	{"tenants": [
//	  {"id": "acme", "key": "k-acme", "weight": 3,
//	   "max_queued": 64, "max_running": 4,
//	   "trial_rate": 5000, "trial_burst": 20000}
//	]}
type TenantConfig struct {
	// ID names the tenant (metrics label, journal field, job owner).
	ID string `json:"id"`
	// Key is the static API key presented as "Authorization: Bearer
	// <key>" or "X-API-Key: <key>".
	Key string `json:"key"`
	// Weight is the fair-share weight (default 1). Under saturation two
	// tenants with weights 3:1 are scheduled trials in a 3:1 ratio.
	Weight float64 `json:"weight,omitempty"`
	// MaxQueued bounds the tenant's accepted-but-not-running jobs
	// (0 = bounded only by the global queue). Beyond it submissions are
	// rejected 429 with a Retry-After derived from the tenant's own
	// backlog.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning bounds the tenant's concurrently executing jobs
	// (0 = bounded only by the worker pool). Jobs beyond it stay queued.
	MaxRunning int `json:"max_running,omitempty"`
	// TrialRate is the tenant's admission budget in estimated trials per
	// second (0 = unlimited): a token bucket debits each submission by
	// its spec's trial cost, and an empty bucket rejects 429 with the
	// refill time as Retry-After.
	TrialRate float64 `json:"trial_rate,omitempty"`
	// TrialBurst is the bucket capacity (default 10× TrialRate): the
	// largest trial volume admitted in one burst.
	TrialBurst float64 `json:"trial_burst,omitempty"`
}

// applyDefaults normalises a keyfile entry in place.
func (c *TenantConfig) applyDefaults() {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.TrialRate > 0 && c.TrialBurst <= 0 {
		c.TrialBurst = 10 * c.TrialRate
	}
}

// validate rejects unusable keyfile entries.
func (c *TenantConfig) validate() error {
	if c.ID == "" {
		return fmt.Errorf("serve: tenant with empty id")
	}
	if strings.ContainsAny(c.ID, " \t\n") {
		return fmt.Errorf("serve: tenant id %q contains whitespace", c.ID)
	}
	if c.Key == "" {
		return fmt.Errorf("serve: tenant %s has no key", c.ID)
	}
	if c.MaxQueued < 0 || c.MaxRunning < 0 || c.TrialRate < 0 || c.TrialBurst < 0 {
		return fmt.Errorf("serve: tenant %s has a negative quota", c.ID)
	}
	return nil
}

// LoadTenants reads a tenant keyfile ({"tenants": [...]}), defaults and
// validates every entry, and rejects duplicate ids or keys (a shared key
// would make attribution ambiguous).
func LoadTenants(path string) ([]TenantConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: tenants file: %w", err)
	}
	var doc struct {
		Tenants []TenantConfig `json:"tenants"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	if len(doc.Tenants) == 0 {
		return nil, fmt.Errorf("serve: tenants file %s lists no tenants", path)
	}
	ids := map[string]bool{}
	keys := map[string]bool{}
	for i := range doc.Tenants {
		t := &doc.Tenants[i]
		t.applyDefaults()
		if err := t.validate(); err != nil {
			return nil, err
		}
		if ids[t.ID] {
			return nil, fmt.Errorf("serve: duplicate tenant id %q", t.ID)
		}
		if keys[t.Key] {
			return nil, fmt.Errorf("serve: tenants %s: duplicate key (key of %q)", path, t.ID)
		}
		ids[t.ID] = true
		keys[t.Key] = true
	}
	return doc.Tenants, nil
}

// tenantState is one tenant's runtime admission state: its config plus
// the trial-rate token bucket. Scheduling state (queue, pass, running)
// lives in the fair-share queue; this struct owns only what admission
// consults before a job exists.
type tenantState struct {
	cfg TenantConfig

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// takeTrials debits the token bucket by cost trials at time now. When
// the budget is short it returns ok=false and the whole seconds to wait
// until cost tokens will have accumulated — the 429 Retry-After.
func (t *tenantState) takeTrials(cost float64, now time.Time) (ok bool, waitSec int) {
	if t.cfg.TrialRate <= 0 || cost <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.last.IsZero() {
		t.tokens = t.cfg.TrialBurst
	} else {
		t.tokens = math.Min(t.cfg.TrialBurst, t.tokens+t.cfg.TrialRate*now.Sub(t.last).Seconds())
	}
	t.last = now
	if t.tokens >= cost {
		t.tokens -= cost
		return true, 0
	}
	short := cost - t.tokens
	wait := int(math.Ceil(short / t.cfg.TrialRate))
	if wait < 1 {
		wait = 1
	}
	if wait > 300 {
		wait = 300
	}
	return false, wait
}

// refund returns cost tokens to the bucket — the compensation when a
// submission debited its trial cost but was then rejected by a queue
// quota, so a rejected request never burns rate budget.
func (t *tenantState) refund(cost float64) {
	if t.cfg.TrialRate <= 0 || cost <= 0 {
		return
	}
	t.mu.Lock()
	t.tokens = math.Min(t.cfg.TrialBurst, t.tokens+cost)
	t.mu.Unlock()
}

// trialCost estimates the admission cost of a spec in trials — the unit
// the per-tenant rate budget is denominated in. Analyses without a
// Monte-Carlo campaign cost 1: the budget is an anti-flood control, not
// a cycle-exact accountant.
func trialCost(spec *jobspec.Spec) float64 {
	switch spec.Analysis {
	case jobspec.KindMC:
		if spec.MC == nil {
			return 1
		}
		if r := spec.MC.Range; r != nil {
			return float64(r.To - r.From)
		}
		return float64(spec.MC.Trials)
	case jobspec.KindCentering:
		if spec.Centering == nil {
			return 1
		}
		return float64(spec.Centering.Trials) * float64(spec.Centering.MaxIters+1)
	case jobspec.KindSignoff:
		if spec.Signoff == nil {
			return 1
		}
		return float64(spec.Signoff.Trials)
	}
	return 1
}

// tenantSet resolves API keys and ids to runtime tenant state. With no
// keyfile the set is nil and every request maps to DefaultTenant.
type tenantSet struct {
	byKey map[string]*tenantState
	byID  map[string]*tenantState
	// fleetKey, when non-empty, is the shared node-to-node fleet
	// credential: it authenticates like a key but scopes itself to the
	// tenant named by the X-Relsim-Tenant header (or the default tenant
	// without one). Set by NewServer when both a keyfile and a fleet
	// config are present.
	fleetKey string
}

func newTenantSet(cfgs []TenantConfig) *tenantSet {
	if len(cfgs) == 0 {
		return nil
	}
	ts := &tenantSet{byKey: map[string]*tenantState{}, byID: map[string]*tenantState{}}
	for _, c := range cfgs {
		c.applyDefaults()
		st := &tenantState{cfg: c}
		ts.byKey[c.Key] = st
		ts.byID[c.ID] = st
	}
	return ts
}

// requestKey extracts the API key a request presents ("Authorization:
// Bearer <key>" or "X-API-Key"), empty when none.
func requestKey(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimPrefix(auth, "Bearer ")
	}
	return ""
}

// authenticate resolves the request's API key to a tenant. A nil set
// (no keyfile) accepts everything as the default tenant. The shared
// fleet key authenticates node-to-node calls and acts for the tenant
// the X-Relsim-Tenant header names (401 for an unknown one — a peer
// must not mint tenants this node's keyfile does not know).
func (ts *tenantSet) authenticate(r *http.Request) (*tenantState, bool) {
	if ts == nil {
		return nil, true
	}
	key := requestKey(r)
	if key == "" {
		return nil, false
	}
	if ts.fleetKey != "" && key == ts.fleetKey {
		id := r.Header.Get(fleetTenantHeader)
		if st, ok := ts.byID[id]; ok {
			return st, true
		}
		if id == "" || id == DefaultTenant {
			return nil, true
		}
		return nil, false
	}
	st, ok := ts.byKey[key]
	return st, ok
}

// id returns the tenant id an authenticated state stands for (the
// default tenant for nil).
func tenantID(st *tenantState) string {
	if st == nil {
		return DefaultTenant
	}
	return st.cfg.ID
}
