package serve

import (
	"errors"
	"sync"
)

// errQueueFull rejects a submission when the bounded queue is at
// capacity — the server's backpressure signal (HTTP 503 + Retry-After).
var errQueueFull = errors.New("serve: job queue full")

// errDraining rejects a submission once shutdown has begun.
var errDraining = errors.New("serve: server is draining")

// jobQueue is a bounded FIFO of accepted-but-not-yet-running jobs. The
// buffered channel is the queue; the mutex only serializes push against
// close so a draining server can never panic on a concurrent submit.
type jobQueue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

func newJobQueue(depth int) *jobQueue {
	return &jobQueue{ch: make(chan *Job, depth)}
}

// tryPush enqueues without blocking: a full queue is an immediate
// errQueueFull, which is what gives the server exact backpressure
// accounting (a burst of capacity+k submissions yields exactly k
// rejections).
func (q *jobQueue) tryPush(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errDraining
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return errQueueFull
	}
}

// close stops admission; workers drain whatever is already queued.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// depth returns the current number of queued jobs.
func (q *jobQueue) depth() int { return len(q.ch) }

// capacity returns the queue bound.
func (q *jobQueue) capacity() int { return cap(q.ch) }
