package serve

import (
	"errors"
	"fmt"
	"sync"
)

// errQueueFull rejects a submission when the global queue bound is
// reached — the server's capacity backpressure (HTTP 503 + Retry-After).
var errQueueFull = errors.New("serve: job queue full")

// errDraining rejects a submission once shutdown has begun.
var errDraining = errors.New("serve: server is draining")

// errTenantQueueFull rejects a submission that would exceed the
// submitting tenant's own max_queued quota — a per-tenant 429, distinct
// from the global-capacity 503, because the remedy is different: the
// tenant must drain its own backlog, not wait for global capacity.
type errTenantQueueFull struct {
	tenant string
	limit  int
}

func (e *errTenantQueueFull) Error() string {
	return fmt.Sprintf("serve: tenant %s queue full (max_queued %d)", e.tenant, e.limit)
}

// jobQueue is the weighted fair-share scheduler that replaced the single
// bounded FIFO: each tenant owns two FIFO lanes (interactive before
// batch) and a stride-scheduling pass value. Workers pop the job of the
// eligible tenant with the smallest pass; every pop advances that
// tenant's pass by 1/weight, so under saturation tenants are scheduled
// jobs in proportion to their weights, an idle tenant's pass is clamped
// to the global virtual clock when it returns (no banked credit), and a
// tenant at its max_running cap is skipped without blocking the others.
// The global capacity bound keeps the exact backpressure accounting of
// the old FIFO: a burst of capacity+k admissible submissions yields
// exactly k rejections.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool

	capGlobal int
	queued    int
	clock     float64

	tenants map[string]*tenantLane

	// fleetRunning, when set (fleet mode), reports how many jobs of a
	// tenant the healthy peer nodes are currently running, so the
	// max_running check below enforces the cap fleet-wide. It is called
	// under q.mu and takes the fleet table's own lock, so fleet code must
	// never acquire q.mu while holding that lock (the prober releases it
	// before calling poke).
	fleetRunning func(tenant string) int
}

// tenantLane is one tenant's scheduling state.
type tenantLane struct {
	id         string
	weight     float64
	maxQueued  int
	maxRunning int

	interactive []*Job
	batch       []*Job
	running     int
	// pass is the stride-scheduling virtual time; scheduled counts pops
	// handed to workers over the lane's lifetime (restored from the
	// journal after a restart so fair-share accounting survives).
	pass      float64
	scheduled int
}

func (l *tenantLane) depth() int { return len(l.interactive) + len(l.batch) }

func newJobQueue(depth int) *jobQueue {
	q := &jobQueue{capGlobal: depth, tenants: map[string]*tenantLane{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// laneLocked returns (creating if needed) the tenant's lane. Tenants
// outside the keyfile — the single-tenant default — get weight 1 and no
// per-tenant quotas.
func (q *jobQueue) laneLocked(tenant string, cfg *TenantConfig) *tenantLane {
	l := q.tenants[tenant]
	if l == nil {
		l = &tenantLane{id: tenant, weight: 1}
		if cfg != nil {
			if cfg.Weight > 0 {
				l.weight = cfg.Weight
			}
			l.maxQueued = cfg.MaxQueued
			l.maxRunning = cfg.MaxRunning
		}
		q.tenants[tenant] = l
	}
	return l
}

// tryPush admits jobs atomically for one tenant: either every job is
// enqueued or none is. It rejects with errDraining after close,
// errTenantQueueFull when the tenant's own max_queued quota cannot hold
// them, and errQueueFull when global capacity cannot — checked in that
// order, so a tenant over its own quota sees its own 429 even when the
// server is also globally full.
func (q *jobQueue) tryPush(cfg *TenantConfig, jobs ...*Job) error {
	if len(jobs) == 0 {
		return nil
	}
	lane := jobs[0].laneID()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errDraining
	}
	l := q.laneLocked(lane, cfg)
	if l.maxQueued > 0 && l.depth()+len(jobs) > l.maxQueued {
		return &errTenantQueueFull{tenant: lane, limit: l.maxQueued}
	}
	if q.queued+len(jobs) > q.capGlobal {
		return errQueueFull
	}
	q.pushLocked(l, jobs)
	return nil
}

// forcePush enqueues without quota or capacity checks — the restore
// path, which must never drop work the previous process had accepted
// (the queue was sized to fit it).
func (q *jobQueue) forcePush(cfg *TenantConfig, jobs ...*Job) error {
	if len(jobs) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errDraining
	}
	q.pushLocked(q.laneLocked(jobs[0].laneID(), cfg), jobs)
	return nil
}

func (q *jobQueue) pushLocked(l *tenantLane, jobs []*Job) {
	if l.depth() == 0 {
		// A lane going busy re-enters the schedule at the current virtual
		// time: idling earns no credit against active tenants.
		if l.pass < q.clock {
			l.pass = q.clock
		}
	}
	for _, j := range jobs {
		if j.class == ClassBatch {
			l.batch = append(l.batch, j)
		} else {
			l.interactive = append(l.interactive, j)
		}
	}
	q.queued += len(jobs)
	q.cond.Broadcast()
}

// pop blocks until a job is schedulable and returns it, or returns
// ok=false when the queue is closed and fully drained. The caller must
// pair every successful pop with exactly one done() when the job leaves
// execution, or max_running accounting wedges the tenant.
func (q *jobQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.selectLocked(); j != nil {
			return j, true
		}
		if q.closed && q.queued == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
}

// selectLocked implements the stride pick: among tenants with queued
// work and running headroom, the smallest pass wins (ties broken by id
// for determinism); within the winner, interactive before batch.
func (q *jobQueue) selectLocked() *Job {
	var best *tenantLane
	for _, l := range q.tenants {
		if l.depth() == 0 {
			continue
		}
		if l.maxRunning > 0 {
			running := l.running
			// Fleet mode: the cap counts the whole fleet's running jobs for
			// the tenant, not just this node's. The internal shard lane is
			// exempt (it has no cap to begin with).
			if q.fleetRunning != nil && l.id != fleetLane {
				running += q.fleetRunning(l.id)
			}
			if running >= l.maxRunning {
				continue
			}
		}
		if best == nil || l.pass < best.pass || (l.pass == best.pass && l.id < best.id) {
			best = l
		}
	}
	if best == nil {
		return nil
	}
	var j *Job
	if len(best.interactive) > 0 {
		j = best.interactive[0]
		best.interactive = best.interactive[1:]
	} else {
		j = best.batch[0]
		best.batch = best.batch[1:]
	}
	if best.pass > q.clock {
		q.clock = best.pass
	}
	best.pass += 1 / best.weight
	best.running++
	best.scheduled++
	q.queued--
	return j
}

// done releases the job's running slot; it wakes waiters because a
// tenant previously at its max_running cap may now be schedulable.
func (q *jobQueue) done(j *Job) {
	q.mu.Lock()
	if l := q.tenants[j.laneID()]; l != nil && l.running > 0 {
		l.running--
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// poke wakes blocked workers without changing queue state. The fleet
// prober calls it after every probe round: a peer going down (or coming
// back) changes fleet-wide max_running headroom, and a worker parked in
// pop would otherwise not notice until local state changed.
func (q *jobQueue) poke() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

// tenantLoads snapshots per-tenant local load — running and queued jobs
// per real tenant lane — for the /v1/fleet document the peers' probes
// consume. The internal shard lane is excluded: its jobs are accounted
// by their originating campaign on the dispatching node.
func (q *jobQueue) tenantLoads() map[string]fleetLoad {
	q.mu.Lock()
	defer q.mu.Unlock()
	var m map[string]fleetLoad
	for id, l := range q.tenants {
		if id == fleetLane {
			continue
		}
		if l.running == 0 && l.depth() == 0 {
			continue
		}
		if m == nil {
			m = make(map[string]fleetLoad)
		}
		m[id] = fleetLoad{Running: l.running, Queued: l.depth()}
	}
	return m
}

// restoreScheduled seeds per-tenant fair-share accounting from the
// journal after a restart: each tenant's pass resumes at
// scheduled/weight, so a tenant that consumed more than its share
// before the crash does not start the new process at parity.
func (q *jobQueue) restoreScheduled(counts map[string]int, cfg func(string) *TenantConfig) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for tenant, n := range counts {
		l := q.laneLocked(tenant, cfg(tenant))
		l.scheduled = n
		l.pass = float64(n) / l.weight
	}
	// The clock resumes at the laggard's pass: lanes keep their relative
	// debt, and the idle-clamp in pushLocked cannot erase it.
	first := true
	for _, l := range q.tenants {
		if first || l.pass < q.clock {
			q.clock = l.pass
			first = false
		}
	}
}

// close stops admission; workers drain whatever is already queued.
func (q *jobQueue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// depth returns the total number of queued jobs across all tenants.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// tenantDepth returns one tenant's queued-job count.
func (q *jobQueue) tenantDepth(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if l := q.tenants[tenant]; l != nil {
		return l.depth()
	}
	return 0
}

// tenantScheduled returns how many jobs of the tenant have been handed
// to workers (including the journal-restored count).
func (q *jobQueue) tenantScheduled(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if l := q.tenants[tenant]; l != nil {
		return l.scheduled
	}
	return 0
}

// capacity returns the global queue bound.
func (q *jobQueue) capacity() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.capGlobal
}
