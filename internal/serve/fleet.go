package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/jobspec"
	"repro/internal/store"
)

// Fleet federation: N relsim processes acting as one service. Each node
// owns the jobs it admits (node-prefixed IDs), answers reads for any
// fleet job by forwarding to the owner, places campaign shards on the
// least-loaded healthy node instead of the blind Peers rotation,
// enforces tenant max_running against the whole fleet's running count,
// and — when a peer with a reachable data dir stays dead past the
// takeover threshold — adopts the peer's unfinished jobs by replaying
// its journal checkpoints, so a campaign survives the death of the node
// that was running it.

// Fleet request headers.
const (
	// fleetForwardedHeader is the hop guard: a node answering a forwarded
	// request never forwards it again, so a job unknown to the whole
	// fleet costs exactly one extra hop, not a loop.
	fleetForwardedHeader = "X-Relsim-Forwarded"
	// fleetTenantHeader carries the tenant a fleet-key request acts for:
	// node-to-node calls authenticate with the shared fleet key and scope
	// themselves to the originating tenant with this header.
	fleetTenantHeader = "X-Relsim-Tenant"
)

// fleetLane is the scheduling lane of fleet-internal shard sub-jobs. It
// is exempt from tenant quotas on purpose: a shard's parent campaign
// already consumed its tenant's max_running slot on the dispatching
// node, and attributing the shard to the tenant again would let a
// fleet-wide cap deadlock a campaign against its own shards.
const fleetLane = "_fleet"

// FleetNode is one node of the static fleet table.
type FleetNode struct {
	// ID names the node; it prefixes the node's job IDs (<id>-job-NNNNNN),
	// so owners are resolvable from an ID alone.
	ID string `json:"id"`
	// URL is the node's base URL (e.g. "http://host:9090").
	URL string `json:"url"`
	// DataDir is the node's store directory as visible from the other
	// nodes (shared filesystem or handed-off volume). Empty disables
	// failover adoption for this node: peers can detect it dead but have
	// no journal to adopt from.
	DataDir string `json:"data_dir,omitempty"`
}

// FleetConfig is the -fleet fleet.json document: the static node table
// plus the shared node-to-node credential and the health/failover
// knobs. Every node of a fleet loads the same file and names itself
// via Self.
type FleetConfig struct {
	// Self is the ID of the node loading the config.
	Self string `json:"self"`
	// Key is the shared fleet API key node-to-node requests authenticate
	// with (probes, shard dispatch, forwarding). It is a server-to-server
	// credential: combined with the X-Relsim-Tenant header it acts for
	// any tenant, so it must not be handed to clients.
	Key string `json:"key"`
	// Nodes is the full fleet table, including the node itself.
	Nodes []FleetNode `json:"nodes"`
	// ProbeEvery paces the health prober (default 1s).
	ProbeEvery jobspec.Duration `json:"probe_every,omitempty"`
	// QuarantineMax caps the exponential backoff between probes of an
	// unhealthy node (default 30s).
	QuarantineMax jobspec.Duration `json:"quarantine_max,omitempty"`
	// TakeoverAfter is the number of consecutive probe failures after
	// which the lowest-ID healthy node adopts the dead node's unfinished
	// jobs from its DataDir (default 5; negative disables takeover).
	TakeoverAfter int `json:"takeover_after,omitempty"`
}

func (c *FleetConfig) applyDefaults() {
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = jobspec.Duration(time.Second)
	}
	if c.QuarantineMax <= 0 {
		c.QuarantineMax = jobspec.Duration(30 * time.Second)
	}
	if c.TakeoverAfter == 0 {
		c.TakeoverAfter = 5
	}
}

func (c *FleetConfig) validate() error {
	if c.Key == "" {
		return errors.New("serve: fleet config has no key")
	}
	if len(c.Nodes) == 0 {
		return errors.New("serve: fleet config lists no nodes")
	}
	ids := map[string]bool{}
	urls := map[string]bool{}
	self := false
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.ID == "" {
			return errors.New("serve: fleet node with empty id")
		}
		if strings.ContainsAny(n.ID, " \t\n/") || strings.Contains(n.ID, "-job-") {
			return fmt.Errorf("serve: fleet node id %q is not usable as a job-ID prefix", n.ID)
		}
		if n.URL == "" {
			return fmt.Errorf("serve: fleet node %s has no url", n.ID)
		}
		n.URL = strings.TrimRight(n.URL, "/")
		if ids[n.ID] {
			return fmt.Errorf("serve: duplicate fleet node id %q", n.ID)
		}
		if urls[n.URL] {
			return fmt.Errorf("serve: duplicate fleet node url %q", n.URL)
		}
		ids[n.ID] = true
		urls[n.URL] = true
		if n.ID == c.Self {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("serve: fleet self %q is not in the node table", c.Self)
	}
	return nil
}

// LoadFleet reads, defaults and validates a fleet.json.
func LoadFleet(path string) (*FleetConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: fleet file: %w", err)
	}
	c := new(FleetConfig)
	if err := json.Unmarshal(b, c); err != nil {
		return nil, fmt.Errorf("serve: fleet file %s: %w", path, err)
	}
	c.applyDefaults()
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return c, nil
}

// fleetLoad is one tenant's load on one node, as exchanged by probes.
type fleetLoad struct {
	Running int `json:"running"`
	Queued  int `json:"queued"`
}

// fleetPeer is the prober's view of one other node.
type fleetPeer struct {
	node    FleetNode
	healthy bool
	// fails counts consecutive probe failures; backoff and next implement
	// the exponential quarantine (a dead node is probed ever more rarely,
	// capped at QuarantineMax, instead of being hammered every tick).
	fails   int
	backoff time.Duration
	next    time.Time
	// Last reported load, cleared on failure so a dead node stops
	// counting against fleet-wide quotas and shard placement.
	queueDepth int
	inflight   int
	loads      map[string]fleetLoad
	// adopting latches once this node has taken (or is taking) over the
	// peer's jobs for the current outage; reset when the peer recovers.
	adopting bool
}

// fleetState is the server's runtime fleet view: the validated config,
// the resolved self entry, and the probed peer table.
type fleetState struct {
	cfg  FleetConfig
	self FleetNode

	mu    sync.Mutex
	peers map[string]*fleetPeer
}

func newFleetState(cfg *FleetConfig) *fleetState {
	f := &fleetState{cfg: *cfg, peers: map[string]*fleetPeer{}}
	for _, n := range cfg.Nodes {
		if n.ID == cfg.Self {
			f.self = n
			continue
		}
		f.peers[n.ID] = &fleetPeer{node: n, backoff: time.Duration(cfg.ProbeEvery)}
	}
	return f
}

// peerIDs returns the peer ids sorted, for deterministic iteration.
func (f *fleetState) peerIDs() []string {
	ids := make([]string, 0, len(f.peers))
	for id := range f.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// due returns the nodes whose next probe is due at now.
func (f *fleetState) due(now time.Time) []FleetNode {
	f.mu.Lock()
	defer f.mu.Unlock()
	var nodes []FleetNode
	for _, id := range f.peerIDs() {
		if p := f.peers[id]; !now.Before(p.next) {
			nodes = append(nodes, p.node)
		}
	}
	return nodes
}

// recordSuccess folds a successful probe into the peer table.
func (f *fleetState) recordSuccess(id string, st fleetStatus, now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.peers[id]
	if p == nil {
		return
	}
	p.healthy = true
	p.fails = 0
	p.backoff = time.Duration(f.cfg.ProbeEvery)
	p.next = now // probe again on the regular tick
	p.queueDepth = st.QueueDepth
	p.inflight = st.Inflight
	p.loads = st.Tenants
	p.adopting = false
}

// recordFailure folds a failed probe into the peer table: the node goes
// unhealthy, its reported load is cleared (it is not running anything
// we should count), and its next probe backs off exponentially. It
// returns whether this node should now adopt the peer's jobs: the
// failure streak crossed TakeoverAfter, the peer published a DataDir,
// no adoption is already underway, and this node is the fleet's
// designated adopter (lowest ID among the live ones — one survivor
// adopts, not all of them).
func (f *fleetState) recordFailure(id string, now time.Time) (adopt bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.peers[id]
	if p == nil {
		return false
	}
	p.healthy = false
	p.fails++
	p.queueDepth, p.inflight, p.loads = 0, 0, nil
	p.backoff *= 2
	if max := time.Duration(f.cfg.QuarantineMax); p.backoff > max {
		p.backoff = max
	}
	if min := time.Duration(f.cfg.ProbeEvery); p.backoff < min {
		p.backoff = min
	}
	p.next = now.Add(p.backoff)
	if f.cfg.TakeoverAfter < 0 || p.fails < f.cfg.TakeoverAfter ||
		p.adopting || p.node.DataDir == "" || !f.isAdopterLocked() {
		return false
	}
	p.adopting = true
	return true
}

// abortAdoption un-latches a failed takeover so the next probe round
// retries it.
func (f *fleetState) abortAdoption(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p := f.peers[id]; p != nil {
		p.adopting = false
	}
}

// isAdopterLocked reports whether this node is the fleet's designated
// adopter: the lexicographically smallest ID among itself and the
// currently-healthy peers.
func (f *fleetState) isAdopterLocked() bool {
	for id, p := range f.peers {
		if p.healthy && id < f.self.ID {
			return false
		}
	}
	return true
}

// healthyCount returns how many fleet nodes are currently healthy,
// counting this one.
func (f *fleetState) healthyCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 1
	for _, p := range f.peers {
		if p.healthy {
			n++
		}
	}
	return n
}

// runningFor sums the running jobs the healthy peers report for a
// tenant — the remote half of fleet-wide max_running. Unreachable peers
// count zero: quota enforcement degrades to per-node rather than
// wedging admission on stale data.
func (f *fleetState) runningFor(tenant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, p := range f.peers {
		if p.healthy {
			n += p.loads[tenant].Running
		}
	}
	return n
}

// leastLoaded picks the node shard should run on: among this node (at
// localLoad) and the healthy peers, the smallest queued+inflight
// backlog wins; ties are split round-robin by shard index so a
// uniformly-loaded fleet spreads shards like the old rotation did. An
// empty URL means "run it here".
func (f *fleetState) leastLoaded(shard, localLoad int) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	type cand struct {
		url  string
		load int
	}
	cands := []cand{{url: "", load: localLoad}}
	for _, id := range f.peerIDs() {
		if p := f.peers[id]; p.healthy {
			cands = append(cands, cand{url: p.node.URL, load: p.queueDepth + p.inflight})
		}
	}
	min := cands[0].load
	for _, c := range cands[1:] {
		if c.load < min {
			min = c.load
		}
	}
	best := cands[:0]
	for _, c := range cands {
		if c.load == min {
			best = append(best, c)
		}
	}
	return best[shard%len(best)].url
}

// forwardTargets orders the nodes a request for a job with the given
// owner prefix should be tried against: the owner first (even when
// quarantined — one direct attempt is cheap and authoritative), then
// the healthy survivors, who may have adopted the job.
func (f *fleetState) forwardTargets(owner string) []FleetNode {
	f.mu.Lock()
	defer f.mu.Unlock()
	var nodes []FleetNode
	if p := f.peers[owner]; p != nil {
		nodes = append(nodes, p.node)
	}
	for _, id := range f.peerIDs() {
		if id == owner {
			continue
		}
		if p := f.peers[id]; p.healthy {
			nodes = append(nodes, p.node)
		}
	}
	return nodes
}

// peerViews snapshots the peer table for /v1/fleet.
func (f *fleetState) peerViews() []fleetPeerView {
	f.mu.Lock()
	defer f.mu.Unlock()
	views := make([]fleetPeerView, 0, len(f.peers))
	for _, id := range f.peerIDs() {
		p := f.peers[id]
		views = append(views, fleetPeerView{
			ID: id, URL: p.node.URL, Healthy: p.healthy,
			ConsecFails: p.fails, QueueDepth: p.queueDepth,
			Inflight: p.inflight, Adopted: p.adopting,
		})
	}
	return views
}

// fleetStatus is the GET /v1/fleet document: this node's identity and
// load — what the other nodes' probes consume — plus its view of the
// peers (operator introspection; probes ignore it).
type fleetStatus struct {
	Node       string               `json:"node,omitempty"`
	QueueDepth int                  `json:"queue_depth"`
	Inflight   int                  `json:"inflight"`
	Workers    int                  `json:"workers"`
	Tenants    map[string]fleetLoad `json:"tenants,omitempty"`
	Peers      []fleetPeerView      `json:"peers,omitempty"`
}

// fleetPeerView is one peer row of the /v1/fleet document.
type fleetPeerView struct {
	ID          string `json:"id"`
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	ConsecFails int    `json:"consec_fails,omitempty"`
	QueueDepth  int    `json:"queue_depth"`
	Inflight    int    `json:"inflight"`
	Adopted     bool   `json:"adopted,omitempty"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request, ts *tenantState) {
	st := fleetStatus{
		Node:       s.nodeID,
		QueueDepth: s.queue.depth(),
		Inflight:   int(s.met.inflight.Value()),
		Workers:    s.cfg.Workers,
		Tenants:    s.queue.tenantLoads(),
	}
	if s.fleet != nil {
		st.Peers = s.fleet.peerViews()
	}
	writeJSON(w, http.StatusOK, st)
}

// ownerFromID resolves the fleet node a job ID belongs to from its
// prefix ("" for unprefixed pre-fleet IDs).
func ownerFromID(id string) string {
	if i := strings.Index(id, "-job-"); i > 0 {
		return id[:i]
	}
	return ""
}

// jobSeq parses the numeric sequence out of a job ID carrying the given
// node prefix; IDs with a different prefix (adopted from another node)
// report ok=false so they never advance this node's ID counter.
func jobSeq(id, prefix string) (int, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(id[len(prefix):], "job-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// prober is the fleet health loop: one goroutine per server, probing
// due peers every ProbeEvery until shutdown.
func (s *Server) prober() {
	defer s.wg.Done()
	t := time.NewTicker(time.Duration(s.fleet.cfg.ProbeEvery))
	defer t.Stop()
	for {
		select {
		case <-s.proberStop:
			return
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.probeFleet(time.Now())
		}
	}
}

// probeFleet runs one probe round: every due peer is probed, results
// are folded into the fleet table, takeovers run for peers that crossed
// the threshold, and the scheduler is woken — a peer death may have
// freed fleet-wide quota headroom, a recovery may have changed it.
// Exposed as a method (tests call it directly with a long ProbeEvery)
// so quarantine and failover are deterministic under test.
func (s *Server) probeFleet(now time.Time) {
	f := s.fleet
	for _, node := range f.due(now) {
		s.met.fleetProbes.Inc()
		st, err := s.probePeer(node)
		if err != nil {
			s.met.fleetProbeFails.Inc()
			if f.recordFailure(node.ID, now) {
				if aerr := s.adoptPeerJobs(node); aerr != nil {
					s.storeErr(aerr)
					f.abortAdoption(node.ID)
				}
			}
			continue
		}
		f.recordSuccess(node.ID, st, now)
	}
	s.met.fleetHealthy.Set(float64(f.healthyCount()))
	s.queue.poke()
}

// probePeer fetches one peer's /v1/fleet status.
func (s *Server) probePeer(node FleetNode) (fleetStatus, error) {
	req, err := http.NewRequestWithContext(s.baseCtx, http.MethodGet, node.URL+"/v1/fleet", nil)
	if err != nil {
		return fleetStatus{}, err
	}
	req.Header.Set("Authorization", "Bearer "+s.fleet.cfg.Key)
	resp, err := s.probeClient.Do(req)
	if err != nil {
		return fleetStatus{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxSpecBytes))
	if err != nil {
		return fleetStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return fleetStatus{}, fmt.Errorf("serve: fleet probe of %s answered %d", node.ID, resp.StatusCode)
	}
	var st fleetStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return fleetStatus{}, err
	}
	if st.Node != node.ID {
		return fleetStatus{}, fmt.Errorf("serve: fleet node at %s answered as %q, want %q",
			node.URL, st.Node, node.ID)
	}
	return st, nil
}

// adoptPeerJobs is the failover path: replay the dead peer's journal
// (read-only — the directory stays intact for the owner's own restart)
// and take over every job it had accepted but not finished: queued jobs
// re-run from scratch, interrupted resumable campaigns resume from
// their journaled checkpoints, so the merged result is bit-identical to
// an uninterrupted run. Fleet-internal shard sub-jobs are skipped —
// their dispatching owner's fallback already re-ran them — as are
// non-resumable interrupted jobs, which only their owner can fail
// meaningfully.
func (s *Server) adoptPeerJobs(node FleetNode) error {
	recovered, err := store.ReadJournal(node.DataDir)
	if err != nil {
		return err
	}
	now := time.Now()
	adopted := 0
	for _, r := range recovered {
		if r.Internal {
			continue
		}
		if r.State != store.StateQueued && !resumable(r) {
			continue
		}
		if s.job(r.ID) != nil {
			continue // already adopted in an earlier outage
		}
		j := restoredJob(r, now)
		s.mu.Lock()
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.mu.Unlock()
		// Journal the adoption locally — submission under this node's
		// ownership plus the checkpoints that survived — so a restart of
		// this node resumes the adopted campaign too.
		if st := s.cfg.Store; st != nil {
			s.storeErr(st.JobSubmitted(j.ID, j.Spec, j.specHash, store.SubmitMeta{
				Tenant: j.tenant, Class: j.class, Node: s.nodeID, Internal: false,
			}, now))
			for _, cp := range r.Checkpoints {
				s.storeErr(st.JobCheckpoint(j.ID, cp.Chunk, cp.Data, now))
			}
		}
		if len(j.resume) > 0 {
			s.met.resumed.Inc()
		}
		if err := s.queue.forcePush(s.laneCfg(j), j); err != nil {
			if j.requestCancel("adopted job dropped: " + err.Error()) {
				s.met.finished(StateCancelled)
				s.persistTerminal(j)
			}
			continue
		}
		adopted++
	}
	s.met.fleetTakeovers.Add(int64(adopted))
	return nil
}

// forwardJob proxies a request for a job this node does not hold to the
// fleet node that does: the ID's owner first, then the healthy
// survivors (an adopted job lives on whoever took it over). It reports
// whether a response was written; false means no node claimed the job
// and the caller should answer its own 404. Forwarded requests carry
// the hop guard, so the receiving node never forwards again.
func (s *Server) forwardJob(w http.ResponseWriter, r *http.Request, id string, ts *tenantState) bool {
	if s.fleet == nil || r.Header.Get(fleetForwardedHeader) != "" {
		return false
	}
	streaming := strings.HasSuffix(r.URL.Path, "/events")
	for _, node := range s.fleet.forwardTargets(ownerFromID(id)) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, node.URL+r.URL.RequestURI(), nil)
		if err != nil {
			continue
		}
		req.Header.Set("Authorization", "Bearer "+s.fleet.cfg.Key)
		req.Header.Set(fleetForwardedHeader, s.nodeID)
		req.Header.Set(fleetTenantHeader, tenantID(ts))
		client := s.probeClient
		if streaming {
			// Event streams outlive any sane fixed timeout; the proxied
			// request dies with the client's own context instead.
			client = s.streamClient
		}
		resp, err := client.Do(req)
		if err != nil {
			continue // node unreachable; try the next candidate
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxSpecBytes))
			resp.Body.Close()
			continue // not there either
		}
		relayResponse(w, resp)
		resp.Body.Close()
		s.met.fleetForwards.Inc()
		return true
	}
	return false
}

// relayResponse copies a proxied node's response through, flushing per
// chunk so NDJSON event streams arrive live.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			_ = rc.Flush()
		}
		if rerr != nil {
			return
		}
	}
}

// isFleetReq reports whether the request authenticated with the shared
// fleet key — a node-to-node call (shard dispatch, probe, forward).
func (s *Server) isFleetReq(r *http.Request) bool {
	return s.fleet != nil && requestKey(r) == s.fleet.cfg.Key
}

// laneCfg resolves the queue-lane config a job is pushed under: nil
// (no quotas, weight 1) for fleet-internal shard sub-jobs, the owning
// tenant's keyfile entry otherwise.
func (s *Server) laneCfg(j *Job) *TenantConfig {
	if j.internal {
		return nil
	}
	return s.tenantCfg(j.tenant)
}
