package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

func fptr(v float64) *float64 { return &v }

// signoffServeSpec is the signoff campaign the serve-layer suite drives:
// the shared inverter against its full output range, small enough that a
// whole campaign runs in milliseconds.
func signoffServeSpec() *jobspec.Spec {
	return &jobspec.Spec{
		Analysis: jobspec.KindSignoff,
		Netlist:  inverterDeck,
		Seed:     3,
		Signoff: &jobspec.SignoffParams{
			Node: "out", Lo: fptr(0), Hi: fptr(1.0), Trials: 48,
		},
	}
}

// TestSignoffHTTPMatchesCLIAndCacheResubmission pins the determinism
// contract of docs/REPORT_SCHEMA.md end to end: the report a spec
// produces through the HTTP job service is byte-identical to the one the
// in-process (CLI) path produces, and resubmitting the same spec is
// answered from the spec-keyed result cache without re-running anything.
func TestSignoffHTTPMatchesCLIAndCacheResubmission(t *testing.T) {
	reg := obs.NewRegistry()
	st := mustStore(t, t.TempDir(), reg)
	t.Cleanup(func() { st.Close() })
	_, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 2, Store: st, Registry: reg})

	_, v := submit(t, ts, signoffServeSpec())
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("signoff job = %s (error %q), want done", fin.State, fin.Error)
	}
	var httpRes jobspec.Result
	if err := json.Unmarshal(fin.Result, &httpRes); err != nil {
		t.Fatal(err)
	}
	if httpRes.Signoff == nil {
		t.Fatal("no signoff report over HTTP")
	}

	cliSpec := signoffServeSpec()
	cliSpec.ApplyDefaults()
	cliRes, err := jobspec.Execute(context.Background(), cliSpec)
	if err != nil {
		t.Fatal(err)
	}
	httpJSON, err := json.Marshal(httpRes.Signoff)
	if err != nil {
		t.Fatal(err)
	}
	cliJSON, err := json.Marshal(cliRes.Signoff)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(httpJSON, cliJSON) {
		t.Errorf("HTTP and CLI reports differ:\nhttp: %s\ncli:  %s", httpJSON, cliJSON)
	}

	// Resubmission: born terminal from the cache — answered 200 with the
	// snapshot inline, no queue slot — and byte-identical result.
	body, _ := json.Marshal(signoffServeSpec())
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmission status %d, want 200 (cache hit)", resp.StatusCode)
	}
	var fin2 View
	if err := json.NewDecoder(resp.Body).Decode(&fin2); err != nil {
		t.Fatal(err)
	}
	if !fin2.Cached {
		t.Error("resubmitted signoff spec was re-executed instead of served from the cache")
	}
	if !bytes.Equal(fin.Result, fin2.Result) {
		t.Error("cached resubmission returned different result bytes")
	}
}

// TestSignoffSubJobFailureOverServe knocks over the Monte-Carlo sub-job
// under the server's executor: the campaign job must still land in done
// with a structured partial report — corners intact, yield absent, the
// failed node named — instead of erroring the whole job away.
func TestSignoffSubJobFailureOverServe(t *testing.T) {
	exec := func(ctx context.Context, sp *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error) {
		if sp.Analysis == jobspec.KindMC {
			return nil, context.DeadlineExceeded
		}
		return jobspec.ExecuteOpts(ctx, sp, opts)
	}
	_, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1, Execute: exec})

	_, v := submit(t, ts, signoffServeSpec())
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("campaign with a failed sub-job = %s (error %q), want done with a partial report", fin.State, fin.Error)
	}
	var res jobspec.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("result not marked partial")
	}
	r := res.Signoff
	if r == nil {
		t.Fatal("no report in the partial result")
	}
	if r.Pass || r.Yield != nil || r.Corners == nil {
		t.Errorf("partial report wrong shape: pass=%v yield=%v corners=%v", r.Pass, r.Yield != nil, r.Corners != nil)
	}
	var named bool
	for _, sj := range r.Provenance {
		if sj.Name == "mc" && sj.Error != "" {
			named = true
		}
	}
	if !named {
		t.Errorf("provenance does not record the mc failure: %+v", r.Provenance)
	}
}

// TestSignoffSubJobCacheHitProvenance seeds the result cache with a
// standalone corner sweep whose spec hashes identically to the signoff
// campaign's corners sub-spec, then runs the campaign: the sub-job must
// be answered from the cache and say so in the report's provenance.
func TestSignoffSubJobCacheHitProvenance(t *testing.T) {
	reg := obs.NewRegistry()
	st := mustStore(t, t.TempDir(), reg)
	t.Cleanup(func() { st.Close() })
	_, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 2, Store: st, Registry: reg})

	// The standalone twin of the campaign's corners sub-job: same
	// netlist text, seed and parameters (after defaults), so the same
	// canonical hash and the same cache entry.
	parent := signoffServeSpec()
	parent.ApplyDefaults()
	corners := &jobspec.Spec{
		Analysis: jobspec.KindCorners,
		Netlist:  parent.Netlist,
		Seed:     parent.Seed,
		Corners: &jobspec.CornersParams{
			Node:    parent.Signoff.Node,
			SigmaVT: parent.Signoff.SigmaVT, SigmaBeta: parent.Signoff.SigmaBeta,
			Lo: parent.Signoff.Lo, Hi: parent.Signoff.Hi,
		},
	}
	_, vc := submit(t, ts, corners)
	if fin := waitTerminal(t, ts, vc.ID); fin.State != StateDone {
		t.Fatalf("seeding corners job = %s (error %q)", fin.State, fin.Error)
	}

	_, v := submit(t, ts, signoffServeSpec())
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("signoff job = %s (error %q)", fin.State, fin.Error)
	}
	var res jobspec.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, sj := range res.Signoff.Provenance {
		if sj.Name == "corners" {
			hit = sj.Cached
		}
	}
	if !hit {
		t.Fatalf("corners sub-job not served from the cache: %+v", res.Signoff.Provenance)
	}
	if n, _ := reg.Snapshot().Counter("serve_subjobs_cached_total"); n < 1 {
		t.Errorf("serve_subjobs_cached_total = %d, want >= 1", n)
	}
}

// TestKillAndResumeSignoffCampaign is the composite-campaign twin of
// TestKillAndResumeCampaign: the server is "SIGKILLed" right after the
// first DAG node's checkpoint hits the journal, and a fresh server over
// that disk image must finish the campaign — restoring the completed
// node from its checkpoint instead of recomputing it, and saying so in
// the report's provenance.
func TestKillAndResumeSignoffCampaign(t *testing.T) {
	dirA := t.TempDir()
	regA := obs.NewRegistry()
	stA := mustStore(t, dirA, regA)

	frozen := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var frozenNode string
	exec := func(ctx context.Context, sp *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error) {
		inner := opts.OnCheckpoint
		opts.OnCheckpoint = func(cp jobspec.Checkpoint) {
			if inner != nil {
				inner(cp) // journal + fsync first: the kill lands after the write
			}
			if cp.Stage == "subjob" {
				once.Do(func() {
					var named struct {
						Name string `json:"name"`
					}
					_ = json.Unmarshal(cp.Data, &named)
					frozenNode = named.Name
					close(frozen)
				})
				<-release
			}
		}
		return jobspec.ExecuteOpts(ctx, sp, opts)
	}
	sA := NewServer(Config{QueueDepth: 2, Workers: 1, Store: stA, Registry: regA, Execute: exec})
	tsA := httptest.NewServer(sA)
	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sA.Shutdown(ctx)
		tsA.Close()
		stA.Close()
	})

	_, v := submit(t, tsA, signoffServeSpec())
	select {
	case <-frozen:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign never journaled a sub-job checkpoint")
	}

	dirB := t.TempDir()
	copyTree(t, dirA, dirB)

	// The restarted server counts what it executes: the checkpointed
	// node must never reach the engine again.
	kindOfNode := map[string]jobspec.Kind{
		"corners": jobspec.KindCorners, "mc": jobspec.KindMC, "age": jobspec.KindAge,
	}
	var mu sync.Mutex
	reran := map[jobspec.Kind]int{}
	execB := func(ctx context.Context, sp *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error) {
		mu.Lock()
		reran[sp.Analysis]++
		mu.Unlock()
		return jobspec.ExecuteOpts(ctx, sp, opts)
	}
	regB := obs.NewRegistry()
	stB := mustStore(t, dirB, regB)
	t.Cleanup(func() { stB.Close() })
	sB := NewServer(Config{QueueDepth: 2, Workers: 1, Store: stB, Registry: regB, Execute: execB})
	tsB := httptest.NewServer(sB)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sB.Shutdown(ctx)
		tsB.Close()
	})

	if n, _ := regB.Snapshot().Counter("serve_jobs_resumed_total"); n != 1 {
		t.Errorf("serve_jobs_resumed_total = %d, want 1", n)
	}
	fin := waitTerminal(t, tsB, v.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed campaign = %s (error %q), want done", fin.State, fin.Error)
	}
	var res jobspec.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("resumed campaign still partial: %s", res.Warning)
	}
	var resumed bool
	for _, sj := range res.Signoff.Provenance {
		if sj.Name == frozenNode {
			resumed = sj.Resumed
		}
		if sj.Error != "" || sj.Skipped {
			t.Errorf("node %s not clean after resume: %+v", sj.Name, sj)
		}
	}
	if !resumed {
		t.Fatalf("checkpointed node %q not marked resumed: %+v", frozenNode, res.Signoff.Provenance)
	}
	mu.Lock()
	defer mu.Unlock()
	if k, ok := kindOfNode[frozenNode]; ok && reran[k] != 0 {
		t.Errorf("checkpointed node %q re-executed %d times after resume", frozenNode, reran[k])
	}
	// The report must still read as one coherent campaign.
	if res.Signoff.Yield == nil || res.Signoff.Yield.Corner != res.Signoff.Corners.Worst {
		t.Error("resumed report lost the corner-pinned yield linkage")
	}
	if !strings.HasPrefix(v.ID, "job-") {
		t.Fatalf("unexpected job id %q", v.ID)
	}
}
