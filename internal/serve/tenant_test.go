package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
	"repro/internal/store"
)

// twoTenants is the canonical 3:1 pair used across these tests.
func twoTenants() []TenantConfig {
	return []TenantConfig{
		{ID: "acme", Key: "k-acme", Weight: 3},
		{ID: "beta", Key: "k-beta", Weight: 1},
	}
}

// doAs performs an authenticated request and decodes the JSON body into
// out (when non-nil and the status has a body worth decoding).
func doAs(t *testing.T, ts *httptest.Server, key, method, path string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding body: %v", method, path, err)
		}
	}
	return resp
}

func submitAs(t *testing.T, ts *httptest.Server, key string, spec *jobspec.Spec) (*http.Response, View) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var v View
	resp := doAs(t, ts, key, "POST", "/v1/jobs", body, &v)
	return resp, v
}

// TestTenantAuth: with a keyfile every /v1 route demands a listed key,
// and a valid key cannot see another tenant's jobs.
func TestTenantAuth(t *testing.T) {
	release := make(chan struct{})
	close(release)
	started := make(chan string, 64)
	_, ts := newTestServer(t, Config{
		Workers: 1, Tenants: twoTenants(),
		Execute: blockingExec(started, release),
	})

	// No key and unknown key: 401 with the envelope code.
	for _, key := range []string{"", "k-wrong"} {
		var e ErrorBody
		resp := doAs(t, ts, key, "GET", "/v1/jobs", nil, &e)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: status %d, want 401", key, resp.StatusCode)
		}
		if e.Code != ErrUnauthorized {
			t.Fatalf("key %q: code %q, want %q", key, e.Code, ErrUnauthorized)
		}
	}

	// A valid key submits; the job is stamped with its tenant.
	resp, v := submitAs(t, ts, "k-acme", mcSpec(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	if v.Tenant != "acme" || v.Class != ClassInteractive {
		t.Fatalf("view tenant/class = %q/%q, want acme/interactive", v.Tenant, v.Class)
	}
	<-started

	// The other tenant cannot read, cancel or stream it — 404, not 403,
	// so job ids cannot be probed across tenants.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/" + v.ID},
		{"DELETE", "/v1/jobs/" + v.ID},
		{"GET", "/v1/jobs/" + v.ID + "/events"},
	} {
		var e ErrorBody
		resp := doAs(t, ts, "k-beta", probe.method, probe.path, nil, &e)
		if resp.StatusCode != http.StatusNotFound || e.Code != ErrNotFound {
			t.Fatalf("%s %s as beta: status %d code %q, want 404 %q",
				probe.method, probe.path, resp.StatusCode, e.Code, ErrNotFound)
		}
	}
	// And its listing does not include it.
	var list struct{ Jobs []View }
	doAs(t, ts, "k-beta", "GET", "/v1/jobs", nil, &list)
	if len(list.Jobs) != 0 {
		t.Fatalf("beta sees %d foreign jobs", len(list.Jobs))
	}
	// Naming a foreign tenant in the filter is refused outright.
	var e ErrorBody
	resp = doAs(t, ts, "k-beta", "GET", "/v1/jobs?tenant=acme", nil, &e)
	if resp.StatusCode != http.StatusForbidden || e.Code != ErrForbidden {
		t.Fatalf("cross-tenant filter: status %d code %q, want 403 %q", resp.StatusCode, e.Code, ErrForbidden)
	}
	// An invalid priority class is a structured 400.
	body, _ := json.Marshal(mcSpec(2))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer k-acme")
	req.Header.Set("X-Priority", "urgent")
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	var e2 ErrorBody
	if err := json.NewDecoder(raw.Body).Decode(&e2); err != nil {
		t.Fatal(err)
	}
	if raw.StatusCode != http.StatusBadRequest || e2.Code != ErrBadArgument {
		t.Fatalf("bad class: status %d code %q, want 400 %q", raw.StatusCode, e2.Code, ErrBadArgument)
	}
}

// TestFairShareWeightedTrials is the acceptance scenario: two saturating
// tenants with weights 3:1 complete trials within 10% of 3:1, and
// neither starves. The executor is gated on a token channel, so the
// measurement point — exactly 200 finished jobs with both backlogs
// non-empty — is deterministic.
func TestFairShareWeightedTrials(t *testing.T) {
	step := make(chan struct{})
	exec := func(ctx context.Context, spec *jobspec.Spec, _ jobspec.Options) (*jobspec.Result, error) {
		select {
		case <-step:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &jobspec.Result{Kind: spec.Analysis, MC: &jobspec.MCOutcome{
			Node: "out", Requested: 5, Values: []float64{1, 2, 3, 4, 5},
		}}, nil
	}
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 512, Registry: reg, Execute: exec, Tenants: twoTenants(),
	})
	defer close(step)

	// Saturate both tenants: acme offers 3× beta's volume and far more
	// than its share of the measured window.
	for i := 0; i < 300; i++ {
		spec := mcSpec(5)
		spec.Seed = uint64(i + 1)
		if resp, _ := submitAs(t, ts, "k-acme", spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("acme submit %d: status %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < 100; i++ {
		spec := mcSpec(5)
		spec.Seed = uint64(1000 + i)
		if resp, _ := submitAs(t, ts, "k-beta", spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("beta submit %d: status %d", i, resp.StatusCode)
		}
	}
	// Let exactly 200 jobs finish (1000 trials), then measure.
	for i := 0; i < 200; i++ {
		step <- struct{}{}
	}
	acme := s.met.tenantTrials("acme")
	beta := s.met.tenantTrials("beta")
	deadline := time.Now().Add(10 * time.Second)
	for acme.Value()+beta.Value() < 1000 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d trials finished after 10s", acme.Value()+beta.Value())
		}
		time.Sleep(time.Millisecond)
	}
	a, b := float64(acme.Value()), float64(beta.Value())
	if b == 0 || a == 0 {
		t.Fatalf("a tenant starved: acme %v beta %v trials", a, b)
	}
	if ratio := a / b; ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("completed-trial share %0.0f:%0.0f (ratio %.2f), want within 10%% of 3:1", a, b, ratio)
	}
	// Both tenants still had backlog at the measurement point, so the
	// share was measured under saturation, not offered-load imbalance.
	if s.queue.tenantDepth("acme") == 0 || s.queue.tenantDepth("beta") == 0 {
		t.Fatalf("backlog drained during measurement: acme %d beta %d queued",
			s.queue.tenantDepth("acme"), s.queue.tenantDepth("beta"))
	}
}

// TestTenantQueueQuota429: a tenant over its own max_queued gets 429
// tenant_queue_full with a Retry-After, while other tenants — and global
// capacity — are unaffected.
func TestTenantQueueQuota429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	tenants := []TenantConfig{
		{ID: "acme", Key: "k-acme", MaxQueued: 2},
		{ID: "beta", Key: "k-beta"},
	}
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 64, Tenants: tenants,
		Execute: blockingExec(started, release),
	})
	defer close(release)

	// First job occupies the worker (not the queue)...
	if resp, _ := submitAs(t, ts, "k-acme", mcSpec(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plug submit: status %d", resp.StatusCode)
	}
	<-started
	// ...two more fill acme's quota...
	for i := 0; i < 2; i++ {
		spec := mcSpec(2)
		spec.Seed = uint64(10 + i)
		if resp, _ := submitAs(t, ts, "k-acme", spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: status %d", i, resp.StatusCode)
		}
	}
	// ...and the third is the tenant's own 429, not a global 503.
	spec := mcSpec(2)
	spec.Seed = 99
	body, _ := json.Marshal(spec)
	var e ErrorBody
	resp := doAs(t, ts, "k-acme", "POST", "/v1/jobs", body, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota: status %d, want 429", resp.StatusCode)
	}
	if e.Code != ErrTenantQueueFull {
		t.Fatalf("over-quota code %q, want %q", e.Code, ErrTenantQueueFull)
	}
	if e.RetryAfterS < 1 {
		t.Fatalf("over-quota retry_after_s = %d, want >= 1", e.RetryAfterS)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-quota response has no Retry-After header")
	}
	// beta is untouched by acme's quota.
	spec = mcSpec(2)
	spec.Seed = 77
	if resp, _ := submitAs(t, ts, "k-beta", spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("beta submit during acme quota exhaustion: status %d", resp.StatusCode)
	}
}

// TestTrialRateLimit429: the token bucket debits each submission by its
// spec's trial cost and answers 429 rate_limited with the refill time
// once empty.
func TestTrialRateLimit429(t *testing.T) {
	release := make(chan struct{})
	close(release)
	started := make(chan string, 64)
	tenants := []TenantConfig{{ID: "acme", Key: "k-acme", TrialRate: 1, TrialBurst: 10}}
	_, ts := newTestServer(t, Config{
		Workers: 1, Tenants: tenants, Execute: blockingExec(started, release),
	})

	// 8 trials fit the burst of 10...
	if resp, _ := submitAs(t, ts, "k-acme", mcSpec(8)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	// ...the next 8 do not (2 tokens left, refill 1/s).
	spec := mcSpec(8)
	spec.Seed = 2
	body, _ := json.Marshal(spec)
	var e ErrorBody
	resp := doAs(t, ts, "k-acme", "POST", "/v1/jobs", body, &e)
	if resp.StatusCode != http.StatusTooManyRequests || e.Code != ErrRateLimited {
		t.Fatalf("rate-limited: status %d code %q, want 429 %q", resp.StatusCode, e.Code, ErrRateLimited)
	}
	if e.RetryAfterS < 1 {
		t.Fatalf("rate-limited retry_after_s = %d, want >= 1 (bucket refill)", e.RetryAfterS)
	}
}

func batchOf(specs ...*jobspec.Spec) []byte {
	b, _ := json.Marshal(jobspec.Batch{Specs: specs})
	return b
}

// TestBatchDedupAndCache: identical sweep points inside one batch share
// one job, and points whose result is already cached are answered
// without a queue slot — both observable through the serve_batch_*
// metrics.
func TestBatchDedupAndCache(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(), reg, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	exec := func(ctx context.Context, spec *jobspec.Spec, _ jobspec.Options) (*jobspec.Result, error) {
		return &jobspec.Result{Kind: spec.Analysis, MC: &jobspec.MCOutcome{
			Node: "out", Requested: spec.MC.Trials, Values: []float64{1},
		}}, nil
	}
	s, ts := newTestServer(t, Config{Workers: 2, Registry: reg, Store: st, Execute: exec})

	s1, s2 := mcSpec(4), mcSpec(4)
	s2.Seed = 2
	s1dup := mcSpec(4) // identical to s1 after defaulting

	var bv batchView
	resp := doAs(t, ts, "", "POST", "/v1/batches", batchOf(s1, s1dup, s2), &bv)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: status %d, want 202", resp.StatusCode)
	}
	if len(bv.Jobs) != 3 {
		t.Fatalf("batch reports %d jobs, want 3", len(bv.Jobs))
	}
	if bv.Jobs[1].JobID != bv.Jobs[0].JobID {
		t.Fatalf("duplicate spec got its own job %s (owner %s)", bv.Jobs[1].JobID, bv.Jobs[0].JobID)
	}
	if bv.Jobs[1].DuplicateOf == nil || *bv.Jobs[1].DuplicateOf != 0 {
		t.Fatalf("duplicate_of = %v, want 0", bv.Jobs[1].DuplicateOf)
	}
	if bv.Jobs[2].JobID == bv.Jobs[0].JobID {
		t.Fatal("distinct specs share a job")
	}
	if got := s.met.batchDeduped.Value(); got != 1 {
		t.Fatalf("serve_batch_specs_deduped_total = %d, want 1", got)
	}
	waitTerminal(t, ts, bv.Jobs[0].JobID)
	waitTerminal(t, ts, bv.Jobs[2].JobID)

	// Resubmitting a sweep overlapping the finished points hits the
	// result cache: the overlapping job is born done (cached), only the
	// new point queues.
	s3 := mcSpec(4)
	s3.Seed = 3
	var bv2 batchView
	resp = doAs(t, ts, "", "POST", "/v1/batches", batchOf(s1, s3), &bv2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second batch: status %d, want 202", resp.StatusCode)
	}
	if !bv2.Jobs[0].Cached || bv2.Jobs[0].State != StateDone {
		t.Fatalf("overlapping point: cached=%v state=%s, want cache hit born done",
			bv2.Jobs[0].Cached, bv2.Jobs[0].State)
	}
	if bv2.Jobs[1].Cached {
		t.Fatal("fresh point reported as cached")
	}
	if got := s.met.batchCached.Value(); got != 1 {
		t.Fatalf("serve_batch_specs_cached_total = %d, want 1", got)
	}
	if got := s.met.batches.Value(); got != 2 {
		t.Fatalf("serve_batches_submitted_total = %d, want 2", got)
	}

	// The batch endpoint aggregates live job states.
	waitTerminal(t, ts, bv2.Jobs[1].JobID)
	var bg batchView
	resp = doAs(t, ts, "", "GET", "/v1/batches/"+bv2.ID, nil, &bg)
	if resp.StatusCode != http.StatusOK || !bg.Terminal || bg.States["done"] != 2 {
		t.Fatalf("batch get: status %d terminal %v states %v, want 200/terminal/2 done",
			resp.StatusCode, bg.Terminal, bg.States)
	}
	// Unknown batch id: structured 404.
	var e ErrorBody
	resp = doAs(t, ts, "", "GET", "/v1/batches/batch-999999", nil, &e)
	if resp.StatusCode != http.StatusNotFound || e.Code != ErrNotFound {
		t.Fatalf("missing batch: status %d code %q", resp.StatusCode, e.Code)
	}
}

// TestBatchAtomicQuota: a batch that cannot fully fit the tenant's quota
// admits nothing.
func TestBatchAtomicQuota(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	tenants := []TenantConfig{{ID: "acme", Key: "k-acme", MaxQueued: 2}}
	_, ts := newTestServer(t, Config{
		Workers: 1, Tenants: tenants, Execute: blockingExec(started, release),
	})
	defer close(release)

	// Occupy the worker so batch jobs stay queued.
	if resp, _ := submitAs(t, ts, "k-acme", mcSpec(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plug submit: status %d", resp.StatusCode)
	}
	<-started

	sp := func(seed uint64) *jobspec.Spec {
		s := mcSpec(2)
		s.Seed = seed
		return s
	}
	var e ErrorBody
	resp := doAs(t, ts, "k-acme", "POST", "/v1/batches", batchOf(sp(1), sp(2), sp(3)), &e)
	if resp.StatusCode != http.StatusTooManyRequests || e.Code != ErrTenantQueueFull {
		t.Fatalf("oversized batch: status %d code %q, want 429 %q", resp.StatusCode, e.Code, ErrTenantQueueFull)
	}
	// Nothing from the rejected batch is visible.
	var list struct{ Jobs []View }
	doAs(t, ts, "k-acme", "GET", "/v1/jobs", nil, &list)
	if len(list.Jobs) != 1 {
		t.Fatalf("rejected batch leaked jobs: %d listed, want 1 (the plug)", len(list.Jobs))
	}
	// The same sweep split to fit the quota is admitted.
	var bv batchView
	resp = doAs(t, ts, "k-acme", "POST", "/v1/batches", batchOf(sp(1), sp(2)), &bv)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fitting batch: status %d, want 202", resp.StatusCode)
	}
	if bv.Jobs[0].State != StateQueued || bv.Tenant != "acme" {
		t.Fatalf("fitting batch: state %s tenant %s", bv.Jobs[0].State, bv.Tenant)
	}
}

// TestListPagination: limit/page_token walk the submit order without
// gaps or repeats, and state filtering composes with it.
func TestListPagination(t *testing.T) {
	release := make(chan struct{})
	close(release)
	started := make(chan string, 64)
	_, ts := newTestServer(t, Config{Workers: 2, Execute: blockingExec(started, release)})

	var ids []string
	for i := 0; i < 5; i++ {
		spec := mcSpec(2)
		spec.Seed = uint64(i + 1)
		resp, v := submit(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
		waitTerminal(t, ts, v.ID)
	}

	type page struct {
		Jobs          []View `json:"jobs"`
		NextPageToken string `json:"next_page_token"`
	}
	var got []string
	token := ""
	pages := 0
	for {
		path := "/v1/jobs?limit=2"
		if token != "" {
			path += "&page_token=" + token
		}
		var p page
		if resp := doAs(t, ts, "", "GET", path, nil, &p); resp.StatusCode != http.StatusOK {
			t.Fatalf("list: status %d", resp.StatusCode)
		}
		pages++
		for _, v := range p.Jobs {
			got = append(got, v.ID)
		}
		if p.NextPageToken == "" {
			break
		}
		token = p.NextPageToken
	}
	if pages != 3 || len(got) != 5 {
		t.Fatalf("pagination walked %d pages / %d jobs, want 3 / 5", pages, len(got))
	}
	for i, id := range got {
		if id != ids[i] {
			t.Fatalf("page order: job %d = %s, want %s", i, id, ids[i])
		}
	}

	// State filter: everything is done, so filtering on queued is empty
	// and on done returns all five.
	var p page
	doAs(t, ts, "", "GET", "/v1/jobs?state=queued", nil, &p)
	if len(p.Jobs) != 0 {
		t.Fatalf("state=queued lists %d jobs, want 0", len(p.Jobs))
	}
	doAs(t, ts, "", "GET", "/v1/jobs?state=done", nil, &p)
	if len(p.Jobs) != 5 {
		t.Fatalf("state=done lists %d jobs, want 5", len(p.Jobs))
	}
	// Malformed parameters are structured 400s.
	for _, bad := range []string{"?limit=0", "?limit=x", "?state=bogus"} {
		var e ErrorBody
		resp := doAs(t, ts, "", "GET", "/v1/jobs"+bad, nil, &e)
		if resp.StatusCode != http.StatusBadRequest || e.Code != ErrBadArgument {
			t.Fatalf("list%s: status %d code %q, want 400 %q", bad, resp.StatusCode, e.Code, ErrBadArgument)
		}
	}
}

// TestReadyzDrain: /readyz fails during a drain while /healthz stays
// green, so balancers rotate the instance out without killing it.
func TestReadyzDrain(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, Execute: blockingExec(started, release)})

	if resp := doAs(t, ts, "", "GET", "/readyz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: status %d, want 200", resp.StatusCode)
	}
	if _, v := submit(t, ts, mcSpec(2)); v.ID == "" {
		t.Fatal("submit failed")
	}
	<-started

	drainDone := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		close(drainDone)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var e ErrorBody
		resp := doAs(t, ts, "", "GET", "/readyz", nil, &e)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if e.Code != ErrNotReady {
				t.Fatalf("draining readyz code %q, want %q", e.Code, ErrNotReady)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz still 200 5s into the drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var health map[string]any
	if resp := doAs(t, ts, "", "GET", "/healthz", nil, &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: status %d, want 200 (liveness)", resp.StatusCode)
	}
	if health["draining"] != true {
		t.Fatal("healthz does not report draining")
	}
	close(release)
	<-drainDone
}

// TestRestartFairShareAccounting: journaled tenant provenance rebuilds
// the scheduler's per-tenant scheduled counts and stride passes, so a
// tenant that consumed more than its share before a restart does not
// resume at parity.
func TestRestartFairShareAccounting(t *testing.T) {
	dir := t.TempDir()
	exec := func(ctx context.Context, spec *jobspec.Spec, _ jobspec.Options) (*jobspec.Result, error) {
		return &jobspec.Result{Kind: spec.Analysis}, nil
	}
	open := func() *store.Store {
		st, err := store.Open(dir, obs.NewRegistry(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := open()
	s1 := NewServer(Config{Workers: 1, Store: st, Execute: exec, Tenants: twoTenants()})
	ts1 := httptest.NewServer(s1)
	for i := 0; i < 6; i++ {
		spec := mcSpec(2)
		spec.Seed = uint64(i + 1)
		spec.NoCache = true
		if resp, v := submitAs(t, ts1, "k-acme", spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("acme submit %d: status %d", i, resp.StatusCode)
		} else {
			waitTerminalAs(t, ts1, "k-acme", v.ID)
		}
	}
	for i := 0; i < 2; i++ {
		spec := mcSpec(2)
		spec.Seed = uint64(100 + i)
		spec.NoCache = true
		if resp, v := submitAs(t, ts1, "k-beta", spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("beta submit %d: status %d", i, resp.StatusCode)
		} else {
			waitTerminalAs(t, ts1, "k-beta", v.ID)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()
	ts1.Close()
	st.Close()

	st2 := open()
	defer st2.Close()
	s2 := NewServer(Config{Workers: 1, Store: st2, Execute: exec, Tenants: twoTenants()})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	if got := s2.queue.tenantScheduled("acme"); got != 6 {
		t.Fatalf("restored acme scheduled = %d, want 6", got)
	}
	if got := s2.queue.tenantScheduled("beta"); got != 2 {
		t.Fatalf("restored beta scheduled = %d, want 2", got)
	}
	// Stride state: pass = scheduled/weight, so acme (6/3) and beta (2/1)
	// resume dead even — acme's extra volume was exactly its 3× share.
	s2.queue.mu.Lock()
	pa, pb := s2.queue.tenants["acme"].pass, s2.queue.tenants["beta"].pass
	s2.queue.mu.Unlock()
	if pa != 2 || pb != 2 {
		t.Fatalf("restored passes acme=%v beta=%v, want 2 and 2", pa, pb)
	}
}

// waitTerminalAs is waitTerminal with a tenant key.
func waitTerminalAs(t *testing.T, ts *httptest.Server, key, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v View
		resp := doAs(t, ts, key, "GET", "/v1/jobs/"+id, nil, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", id, resp.StatusCode)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestInteractiveBeforeBatch: within one tenant the scheduler serves the
// interactive lane before the batch lane regardless of arrival order.
func TestInteractiveBeforeBatch(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, Execute: blockingExec(started, release)})
	defer close(release)

	// Plug the worker, then queue one batch job before one interactive.
	if resp, _ := submit(t, ts, mcSpec(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatal("plug submit failed")
	}
	<-started
	post := func(class string, seed uint64) View {
		spec := mcSpec(2)
		spec.Seed = seed
		body, _ := json.Marshal(spec)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("X-Priority", class)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit class %s: status %d", class, resp.StatusCode)
		}
		return v
	}
	vb := post(ClassBatch, 11)
	vi := post(ClassInteractive, 12)
	if vb.Class != ClassBatch || vi.Class != ClassInteractive {
		t.Fatalf("classes %q/%q not echoed", vb.Class, vi.Class)
	}
	// Unblock the plug only: the next pop must be the interactive job
	// even though the batch job arrived first.
	release <- struct{}{}
	if got := <-started; got != "mc" {
		t.Fatalf("unexpected start signal %q", got)
	}
	// The running job now is the interactive one.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gi := getJob(t, ts, vi.ID)
		gb := getJob(t, ts, vb.ID)
		if gi.State == StateRunning {
			if gb.State != StateQueued {
				t.Fatalf("batch job state %s while interactive runs, want queued", gb.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interactive job still %s, batch %s", gi.State, gb.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = s
}
