package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

// lineStream is a minimal streaming ResponseWriter: it counts NDJSON
// lines and keeps only the last one, so a thousand concurrent
// subscribers do not hold a thousand full copies of the event log. It
// deliberately does not implement write deadlines — the handler treats
// that as "not a socket" and streams without the slow-reader guard.
type lineStream struct {
	buf   []byte
	lines int
	last  string
}

func (w *lineStream) Header() http.Header { return http.Header{} }
func (w *lineStream) WriteHeader(int)     {}
func (w *lineStream) Flush()              {}
func (w *lineStream) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		if line := string(w.buf[:i]); line != "" {
			w.lines++
			w.last = line
		}
		w.buf = w.buf[i+1:]
	}
}

// TestEventFanoutThousandSubscribers drives 1000 concurrent /events
// streams over one job whose log exceeds the per-iteration batch bound,
// under -race: every subscriber must see the full event sequence with
// exactly one terminal event, the subscriber gauge must return to zero,
// and no handler goroutine may outlive its stream. The thousand run the
// handler in-process (no OS fd pressure — the fan-out's locking is what
// is exercised); a handful more ride real sockets end to end.
func TestEventFanoutThousandSubscribers(t *testing.T) {
	const (
		subscribers = 1000
		sockets     = 8
		progressN   = 600 // > 2 batches of maxEventBatch
	)
	release := make(chan struct{})
	exec := func(ctx context.Context, spec *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error) {
		for i := 0; i < progressN; i++ {
			opts.OnProgress(jobspec.Progress{Stage: "trial", Done: i + 1, Total: progressN})
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &jobspec.Result{Kind: spec.Analysis}, nil
	}
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, Registry: reg, Execute: exec})

	baseline := runtime.NumGoroutine()
	_, v := submit(t, ts, mcSpec(2))
	if v.ID == "" {
		t.Fatal("submit failed")
	}
	wantEvents := progressN + 3 // queued + started + progress... + done

	streams := make([]*lineStream, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		streams[i] = &lineStream{}
		wg.Add(1)
		go func(w *lineStream) {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/v1/jobs/"+v.ID+"/events", nil)
			s.ServeHTTP(w, req) // returns only when the stream ends
		}(streams[i])
	}
	sockLines := make([]int, sockets)
	sockLast := make([]string, sockets)
	for i := 0; i < sockets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 64<<10), 64<<10)
			for sc.Scan() {
				if len(sc.Bytes()) > 0 {
					sockLines[i]++
					sockLast[i] = sc.Text()
				}
			}
		}(i)
	}

	// Let everyone attach, then finish the job; every stream must end.
	deadline := time.Now().Add(30 * time.Second)
	for s.met.subscribers.Value() < subscribers+sockets {
		if time.Now().After(deadline) {
			t.Fatalf("only %v subscribers attached after 30s", s.met.subscribers.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, w := range streams {
		if w.lines != wantEvents {
			t.Fatalf("subscriber %d saw %d events, want %d", i, w.lines, wantEvents)
		}
		var ev Event
		if err := json.Unmarshal([]byte(w.last), &ev); err != nil {
			t.Fatalf("subscriber %d last line: %v", i, err)
		}
		if ev.Type != "done" || ev.Seq != wantEvents-1 {
			t.Fatalf("subscriber %d ended with %s/seq %d, want done/seq %d",
				i, ev.Type, ev.Seq, wantEvents-1)
		}
	}
	for i := 0; i < sockets; i++ {
		if sockLines[i] != wantEvents {
			t.Fatalf("socket subscriber %d saw %d events, want %d", i, sockLines[i], wantEvents)
		}
		var ev Event
		if err := json.Unmarshal([]byte(sockLast[i]), &ev); err != nil || ev.Type != "done" {
			t.Fatalf("socket subscriber %d ended with %q (%v), want done", i, sockLast[i], err)
		}
	}

	// All streams closed: gauge back to zero, handler goroutines gone.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if s.met.subscribers.Value() == 0 && runtime.NumGoroutine() <= baseline+20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: %v subscribers, %d goroutines (baseline %d)",
				s.met.subscribers.Value(), runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEventSlowReaderDisconnect: a subscriber that stops draining its
// socket is cut off by the write deadline instead of parking the handler
// goroutine forever — the subscriber gauge returns to zero while the job
// is still running, and the job is unaffected.
func TestEventSlowReaderDisconnect(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, spec *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error) {
		// Emit enough events to outgrow every buffer between server and
		// stalled client; bounded so a failing test cannot eat unbounded
		// memory.
		for i := 0; i < 400000; i++ {
			select {
			case <-release:
				return &jobspec.Result{Kind: spec.Analysis}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
			opts.OnProgress(jobspec.Progress{Stage: "trial", Done: i + 1, Total: 400000})
		}
		<-release
		return &jobspec.Result{Kind: spec.Analysis}, nil
	}
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Workers: 1, Registry: reg, Execute: exec,
		EventWriteTimeout: 200 * time.Millisecond,
	})
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()

	_, v := submit(t, ts, mcSpec(2))
	if v.ID == "" {
		t.Fatal("submit failed")
	}
	// Open the stream by hand and then never read from the socket.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10) // shrink the client's window: less to fill
	}
	fmt.Fprintf(conn, "GET /v1/jobs/%s/events HTTP/1.1\r\nHost: x\r\n\r\n", v.ID)

	// The handler attaches, fills the socket buffers, hits the write
	// deadline and disconnects — all while the job keeps running.
	deadline := time.Now().Add(20 * time.Second)
	attached := false
	for {
		n := s.met.subscribers.Value()
		if n >= 1 {
			attached = true
		}
		if attached && n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow reader not disconnected after 20s (subscribers %v, attached %v)", n, attached)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The job is unaffected by its slow consumer.
	if gi := getJob(t, ts, v.ID); gi.State.Terminal() {
		t.Fatalf("job reached %s before release; disconnect should not touch it", gi.State)
	}
	close(release)
	released = true
	waitTerminal(t, ts, v.ID)
}

// TestEventBatchBound: one iteration of the stream loop copies at most
// maxEventBatch events, so a huge backlog is drained in bounded slices
// rather than one full-log copy under the job lock.
func TestEventBatchBound(t *testing.T) {
	j := newJob("job-000001", mcSpec(1), "h", DefaultTenant, ClassInteractive, time.Now())
	for i := 0; i < 3*maxEventBatch; i++ {
		j.mu.Lock()
		j.appendLocked(Event{Type: "progress", Stage: "trial", Done: i + 1})
		j.mu.Unlock()
	}
	seen, from, iters := 0, 0, 0
	for {
		evs, _, _ := j.eventsSince(from, maxEventBatch)
		if len(evs) == 0 {
			break
		}
		if len(evs) > maxEventBatch {
			t.Fatalf("iteration returned %d events, bound is %d", len(evs), maxEventBatch)
		}
		for k, ev := range evs {
			if ev.Seq != from+k {
				t.Fatalf("gap: event %d has seq %d", from+k, ev.Seq)
			}
		}
		seen += len(evs)
		from += len(evs)
		iters++
	}
	// queued + 3×maxEventBatch progress events, in ceil(total/batch) slices.
	total := 3*maxEventBatch + 1
	if seen != total {
		t.Fatalf("drained %d events, want %d", seen, total)
	}
	if want := (total + maxEventBatch - 1) / maxEventBatch; iters != want {
		t.Fatalf("drained in %d iterations, want %d", iters, want)
	}
}
