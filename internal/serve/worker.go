package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/jobspec"
	"repro/internal/variation"
)

// worker is one execution loop of the pool: it pops jobs off the
// fair-share queue until the queue closes and drains (shutdown), running
// each under a per-job context derived from the server's base context so
// both a client DELETE and a drain deadline cancel it. Every pop is
// paired with exactly one done() so the tenant's max_running slot is
// released even when the job is skipped or panics.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.met.depth.Set(float64(s.queue.depth()))
		// Fleet-internal shard sub-jobs are accounted by their originating
		// campaign on the dispatching node, not by this node's per-tenant
		// instruments.
		if !j.internal {
			s.met.tenantDepth(j.tenant).Set(float64(s.queue.tenantDepth(j.tenant)))
			s.met.tenantScheduled(j.tenant).Inc()
		}
		s.runJob(j)
		s.queue.done(j)
	}
}

// runJob executes one job end to end. Panics anywhere in the execution
// path are recovered here and fail the one job with the same structured
// PanicError the trial engines use — a pathological spec can never take
// down the server.
func (s *Server) runJob(j *Job) {
	if s.baseCtx.Err() != nil {
		// Drain deadline passed while this job sat in the queue.
		if j.requestCancel("server shut down before the job started") {
			s.met.finished(StateCancelled)
			s.persistTerminal(j)
		}
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.start(cancel, time.Now()) {
		return // cancelled while queued; already finalized and counted
	}
	if st := s.cfg.Store; st != nil {
		// Journal the transition: a crash from here until the terminal
		// record classifies the job as interrupted at replay.
		s.storeErr(st.JobRunning(j.ID, time.Now()))
	}
	_, submitted := j.snapshot()
	s.met.waitSecs.Observe(time.Since(submitted).Seconds())
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	started := time.Now()

	opts := jobspec.Options{
		OnProgress:    j.addProgress,
		ProgressEvery: s.cfg.ProgressEvery,
		// Resume carries the chunk checkpoints a dead process journaled for
		// this job (nil for fresh submissions): the campaign folds them in
		// and re-runs only the chunks past the last one.
		Resume: j.resume,
	}
	if st := s.cfg.Store; st != nil {
		opts.OnCheckpoint = func(cp jobspec.Checkpoint) {
			// Journal every completed campaign chunk: the durable unit of
			// resume. A crash from here on loses at most the chunk in flight.
			s.storeErr(st.JobCheckpoint(j.ID, cp.Seq, cp.Data, time.Now()))
			s.met.checkpoints.Inc()
		}
	}
	if len(s.cfg.Peers) > 0 || s.fleet != nil {
		opts.RunShard = func(ctx context.Context, shard int, sub *jobspec.Spec) (*jobspec.Result, error) {
			return s.runShard(ctx, j, shard, sub)
		}
	}
	opts.RunSub = s.runSubJob
	var (
		res *jobspec.Result
		err error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: job panicked: %w",
					&variation.PanicError{Value: r, Stack: debug.Stack()})
			}
		}()
		res, err = s.cfg.Execute(ctx, j.Spec, opts)
	}()
	// Deliberately no tenant stamp inside the result document: cached
	// results replay byte-identical across tenants, and the job view's
	// owner-scoped tenant field is the only place ownership belongs — a
	// cross-tenant cache hit must not reveal who computed the entry.
	st := j.finish(res, err, time.Now())
	s.met.finished(st)
	// Completed-trial accounting feeds the fair-share share measurement:
	// Monte-Carlo jobs count their completed trials, everything else
	// counts 1 per finished job.
	if res != nil && res.MC != nil {
		s.met.tenantTrials(j.tenant).Add(int64(res.MC.Completed()))
	} else if st == StateDone {
		s.met.tenantTrials(j.tenant).Inc()
	}
	s.met.jobSecs.Observe(time.Since(submitted).Seconds())
	s.observeJobDuration(time.Since(started))
	s.persistTerminal(j)
	s.enforceRetention(time.Now())
}

// runSubJob is the jobspec.Options.RunSub hook: one sub-job of a
// composite signoff campaign, answered from the spec-keyed result cache
// when an identical standalone submission already computed it, and
// executed in the parent job's worker slot otherwise. Running inline —
// not through the bounded queue — is deliberate: a campaign that
// enqueued its own sub-jobs while occupying a worker could deadlock a
// fully-loaded pool on itself.
func (s *Server) runSubJob(ctx context.Context, name string, sub *jobspec.Spec) (*jobspec.Result, bool, error) {
	if st := s.cfg.Store; st != nil && !sub.NoCache {
		if _, raw, ok := st.CachedResult(sub.CanonicalHash()); ok {
			res := new(jobspec.Result)
			if err := json.Unmarshal(raw, res); err == nil {
				s.met.subjobsCached.Inc()
				return res, true, nil
			}
			// An undecodable cache snapshot falls through to execution.
		}
	}
	res, err := s.cfg.Execute(ctx, sub, jobspec.Options{})
	return res, false, err
}
