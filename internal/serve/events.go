package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// handleEvents streams a job's event log as NDJSON: one JSON-encoded
// Event per line, flushed as produced, from the beginning of the log (or
// ?from=<seq>) until the job reaches a terminal state or the client
// disconnects. Because a job's terminal state and its terminal event
// commit under one lock, the stream always ends with exactly one of
// "done", "failed" or "cancelled".
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errors.New("from must be a non-negative integer"))
			return
		}
		// Explicit bounds check: a resume point past the end of the log
		// names events that do not exist. from == len(events) is the
		// legitimate "everything so far seen" resume (it waits on a live
		// job and ends immediately on a terminal one); anything beyond is
		// a client bug rejected deterministically instead of leaning on
		// slice semantics.
		if n > j.eventCount() {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("from=%d is beyond the end of the event log (%d events)", n, j.eventCount()))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, terminal, wait := j.eventsSince(from)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
		}
		from += len(evs)
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// The snapshot was taken atomically: terminal means the final
			// event is already in evs (or was streamed earlier).
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}
