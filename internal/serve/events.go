package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// maxEventBatch bounds how many events one streamer copies out of the
// job's log per iteration. It caps the per-subscriber buffer (the copied
// slice) and the time spent holding the job's lock, so a thousand
// concurrent subscribers on one chatty job stay O(batch) each instead of
// repeatedly copying the whole log under the lock.
const maxEventBatch = 256

// handleEvents streams a job's event log as NDJSON: one JSON-encoded
// Event per line, flushed as produced, from the beginning of the log (or
// ?from=<seq>) until the job reaches a terminal state or the client
// disconnects. Because a job's terminal state and its terminal event
// commit under one lock, the stream always ends with exactly one of
// "done", "failed" or "cancelled". A reader that stops draining its
// socket is disconnected after Config.EventWriteTimeout rather than
// parking the handler goroutine (and its event buffer) forever.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, ts *tenantState) {
	id := r.PathValue("id")
	j := s.jobForTenant(id, ts)
	if j == nil {
		if s.forwardJob(w, r, id, ts) {
			return
		}
		writeError(w, http.StatusNotFound, apiError(ErrNotFound, errors.New("no such job")))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest,
				apiError(ErrBadArgument, errors.New("from must be a non-negative integer")))
			return
		}
		// Explicit bounds check: a resume point past the end of the log
		// names events that do not exist. from == len(events) is the
		// legitimate "everything so far seen" resume (it waits on a live
		// job and ends immediately on a terminal one); anything beyond is
		// a client bug rejected deterministically instead of leaning on
		// slice semantics.
		if n > j.eventCount() {
			writeError(w, http.StatusBadRequest, apiError(ErrBadArgument,
				fmt.Errorf("from=%d is beyond the end of the event log (%d events)", n, j.eventCount())))
			return
		}
		from = n
	}
	s.met.subscribers.Add(1)
	defer s.met.subscribers.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// The write deadline is the slow-reader guard. Test recorders do not
	// support deadlines (ErrNotSupported) — they aren't sockets, so there
	// is nothing to guard and the error is ignored.
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	for {
		evs, terminal, wait := j.eventsSince(from, maxEventBatch)
		if len(evs) > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.EventWriteTimeout))
			for _, ev := range evs {
				if err := enc.Encode(ev); err != nil {
					return // client went away or stopped reading
				}
			}
			from += len(evs)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if len(evs) == maxEventBatch {
			// The log may hold more than one batch; drain before waiting.
			continue
		}
		if terminal {
			// The snapshot was taken atomically: terminal means the final
			// event is already in evs (or was streamed earlier).
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}
