package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
	"repro/internal/store"
)

// blockTrials marks the spec a crash-test executor must hold forever —
// a plain mc spec to the validator, a barrier to the fake engine.
const blockTrials = 777

func mustStore(t *testing.T, dir string, reg *obs.Registry) *store.Store {
	t.Helper()
	st, err := store.Open(dir, reg, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// waitCounter polls the registry until a counter reaches want: the
// in-memory terminal state commits before the journal append, so tests
// that depend on persistence (cache hits, crash replay) synchronize on
// the store's own append counter instead of racing the worker.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, _ := reg.Snapshot().Counter(name)
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", name, n, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func compactJSON(t *testing.T, b []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compacting %q: %v", b, err)
	}
	return buf.String()
}

// TestCrashRecovery kills a server mid-campaign — one job done, one
// running, one queued, all journaled — and restarts against the same
// data directory: the done job must be served without recomputation and
// byte-identical, the running Monte-Carlo campaign must be re-enqueued
// and run to a verdict (no checkpoints reached the disk, so it re-runs
// in full — but it no longer manufactures an InterruptedError), and the
// queued job must re-run to the same seeded values a direct execution
// produces.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	reg1 := obs.NewRegistry()
	st1 := mustStore(t, dir, reg1)

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	exec := func(ctx context.Context, spec *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error) {
		if spec.Analysis == jobspec.KindMC && spec.MC != nil && spec.MC.Trials == blockTrials {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &jobspec.Result{Kind: spec.Analysis, Partial: true, Warning: "crash-test job unblocked"}, nil
		}
		return jobspec.ExecuteOpts(ctx, spec, opts)
	}
	s1 := NewServer(Config{QueueDepth: 4, Workers: 1, Store: st1, Execute: exec})
	ts1 := httptest.NewServer(s1)
	// The "crash": ts1/s1 are simply abandoned — no Shutdown, no
	// store.Close — so the journal ends exactly where the process died.
	// The blocked worker is only released at cleanup, long after the
	// second server has taken over the directory.
	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s1.Shutdown(ctx)
		ts1.Close()
	})

	// Job A completes for real before the crash.
	specA := mcSpec(24)
	specA.Seed = 11
	_, a := submit(t, ts1, specA)
	finA := waitTerminal(t, ts1, a.ID)
	if finA.State != StateDone {
		t.Fatalf("job A = %s (error %q)", finA.State, finA.Error)
	}

	// Job B is running (the executor holds it) when the process dies.
	specB := mcSpec(blockTrials)
	specB.Seed = 12
	_, b := submit(t, ts1, specB)
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job B never started")
	}

	// Job C is queued behind B on the single worker.
	specC := mcSpec(32)
	specC.Seed = 13
	_, c := submit(t, ts1, specC)
	if v := getJob(t, ts1, c.ID); v.State != StateQueued {
		t.Fatalf("job C = %s before the crash, want queued", v.State)
	}
	// Let the journal reach the exact crash point: A fully terminal
	// (submitted+running+done), B mid-run (submitted+running), C accepted
	// (submitted) — six appends.
	waitCounter(t, reg1, "store_journal_appends_total", 6)

	// Restart: a fresh store and server over the same directory.
	reg2 := obs.NewRegistry()
	st2 := mustStore(t, dir, reg2)
	t.Cleanup(func() { st2.Close() })
	s2 := NewServer(Config{QueueDepth: 4, Workers: 1, Store: st2, Registry: reg2})
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
		ts2.Close()
	})

	if n, _ := reg2.Snapshot().Counter("store_replayed_jobs_total"); n != 3 {
		t.Errorf("store_replayed_jobs_total = %d, want 3", n)
	}

	// A: served verbatim from its snapshot, not recomputed.
	ra := getJob(t, ts2, a.ID)
	if ra.State != StateDone {
		t.Fatalf("recovered job A = %s (error %q)", ra.State, ra.Error)
	}
	if compactJSON(t, ra.Result) != compactJSON(t, finA.Result) {
		t.Errorf("recovered result A differs from the pre-crash result:\n%s\n%s", ra.Result, finA.Result)
	}
	if n, _ := reg2.Snapshot().Counter("serve_jobs_submitted_total"); n != 0 {
		t.Errorf("restore counted %d submissions; recovered jobs are not resubmissions", n)
	}

	// B: the fix — the interrupted campaign re-enqueues (here with zero
	// journaled checkpoints, so it re-runs in full) and reaches a real
	// verdict instead of an InterruptedError.
	rb := waitTerminal(t, ts2, b.ID)
	if rb.State != StateDone {
		t.Fatalf("recovered job B = %s (error %q), want the campaign re-run to done", rb.State, rb.Error)
	}
	var gotB jobspec.Result
	if err := json.Unmarshal(rb.Result, &gotB); err != nil {
		t.Fatal(err)
	}
	if gotB.MC == nil || gotB.MC.Completed() != blockTrials {
		t.Fatalf("resumed job B = %+v, want %d completed trials", gotB.MC, blockTrials)
	}
	if n, _ := reg2.Snapshot().Counter("serve_jobs_resumed_total"); n != 1 {
		t.Errorf("serve_jobs_resumed_total = %d, want 1", n)
	}

	// C: re-enqueued and re-run; the seeded trials land on the same
	// values a direct execution of the identical spec produces.
	rc := waitTerminal(t, ts2, c.ID)
	if rc.State != StateDone {
		t.Fatalf("recovered job C = %s (error %q)", rc.State, rc.Error)
	}
	ref := mcSpec(32)
	ref.Seed = 13
	ref.ApplyDefaults()
	want, err := jobspec.Execute(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	var got jobspec.Result
	if err := json.Unmarshal(rc.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seed != want.Seed {
		t.Errorf("re-run seed = %d, want %d", got.Seed, want.Seed)
	}
	if got.MC == nil || len(got.MC.Values) != len(want.MC.Values) {
		t.Fatalf("re-run produced %+v, want %d values", got.MC, len(want.MC.Values))
	}
	for i := range got.MC.Values {
		if got.MC.Values[i] != want.MC.Values[i] {
			t.Fatalf("re-run trial %d = %g, direct execution = %g: recovery is not deterministic",
				i, got.MC.Values[i], want.MC.Values[i])
		}
	}
}

// TestCacheHitOnResubmit resubmits a byte-equivalent spec and expects a
// job born terminal from the spec-keyed cache: 200 (not 202), marked
// cached, never started, result byte-identical — across a restart too —
// while a no_cache spec runs fresh.
func TestCacheHitOnResubmit(t *testing.T) {
	dir := t.TempDir()
	spec := mcSpec(24)
	spec.Seed = 7

	reg := obs.NewRegistry()
	st := mustStore(t, dir, reg)
	s, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 1, Store: st, Registry: reg})
	t.Cleanup(func() { st.Close() })

	_, first := submit(t, ts, spec)
	fin := waitTerminal(t, ts, first.ID)
	if fin.State != StateDone || fin.Cached {
		t.Fatalf("first run = %+v", fin)
	}
	// The job turns visibly done before the worker journals it; wait for
	// the terminal append (submitted+running+done) so the resubmission
	// below deterministically finds the cache entry.
	waitCounter(t, reg, "store_journal_appends_total", 3)

	resubmit := func(ts *httptest.Server, sp *jobspec.Spec) (*http.Response, View) {
		t.Helper()
		body, _ := json.Marshal(sp)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return resp, v
	}

	resp, hit := resubmit(ts, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit status = %d, want 200 (completed immediately)", resp.StatusCode)
	}
	if hit.State != StateDone || !hit.Cached {
		t.Fatalf("cache-hit view = %+v, want done+cached", hit)
	}
	// Never executed: no started timestamp, terminal at admission.
	if hit.Started != nil || hit.Finished == nil {
		t.Errorf("cache-hit timestamps = started %v finished %v; the job must not run", hit.Started, hit.Finished)
	}
	if compactJSON(t, hit.Result) != compactJSON(t, fin.Result) {
		t.Errorf("cached result differs from the original:\n%s\n%s", hit.Result, fin.Result)
	}
	if n, _ := reg.Snapshot().Counter("store_cache_hits_total"); n != 1 {
		t.Errorf("store_cache_hits_total = %d, want 1", n)
	}

	// An identical spec that opts out runs fresh.
	optOut := mcSpec(24)
	optOut.Seed = 7
	optOut.NoCache = true
	respN, vn := resubmit(ts, optOut)
	if respN.StatusCode != http.StatusAccepted {
		t.Fatalf("no_cache status = %d, want 202", respN.StatusCode)
	}
	if fn := waitTerminal(t, ts, vn.ID); fn.State != StateDone || fn.Cached {
		t.Fatalf("no_cache run = %+v, want a fresh execution", fn)
	}
	if n, _ := reg.Snapshot().Counter("store_cache_hits_total"); n != 1 {
		t.Errorf("no_cache submission consulted the cache (hits = %d)", n)
	}

	// The cache is durable: a restarted server answers the same spec
	// from the replayed journal.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
	st.Close()

	reg2 := obs.NewRegistry()
	st2 := mustStore(t, dir, reg2)
	_, ts2 := newTestServer(t, Config{QueueDepth: 4, Workers: 1, Store: st2, Registry: reg2})
	t.Cleanup(func() { st2.Close() })
	resp2, hit2 := resubmit(ts2, spec)
	if resp2.StatusCode != http.StatusOK || !hit2.Cached {
		t.Fatalf("post-restart resubmit: status %d, view %+v", resp2.StatusCode, hit2)
	}
	if compactJSON(t, hit2.Result) != compactJSON(t, fin.Result) {
		t.Errorf("post-restart cached result differs from the original")
	}
	if n, _ := reg2.Snapshot().Counter("store_cache_hits_total"); n != 1 {
		t.Errorf("store_cache_hits_total after restart = %d, want 1", n)
	}
}

// TestRetentionBoundsTerminalJobs drives more terminal jobs than the
// retention cap and expects the oldest evicted — from the in-memory
// table, the list view, and (when a store is configured) the journal —
// while the newest stay serveable.
func TestRetentionBoundsTerminalJobs(t *testing.T) {
	run := func(t *testing.T, dir string) {
		reg := obs.NewRegistry()
		cfg := Config{QueueDepth: 8, Workers: 1, Registry: reg, MaxTerminalJobs: 2}
		var st *store.Store
		if dir != "" {
			st = mustStore(t, dir, reg)
			t.Cleanup(func() { st.Close() })
			cfg.Store = st
		}
		_, ts := newTestServer(t, cfg)

		var ids []string
		for i := 0; i < 5; i++ {
			// Distinct seeds keep the spec hashes distinct, so every
			// submission is a real run, never a cache hit.
			_, v := submit(t, ts, &jobspec.Spec{
				Analysis: jobspec.KindOP, Netlist: inverterDeck, Seed: uint64(i + 1),
			})
			if v.ID == "" {
				t.Fatalf("submit %d not accepted", i)
			}
			waitTerminal(t, ts, v.ID)
			ids = append(ids, v.ID)
		}

		// Retention runs in the worker goroutine after the terminal state
		// is already visible (with a store, the fsync'd terminal record
		// sits between the two), so the list converges to the bound rather
		// than hitting it atomically with the final job's completion.
		var list struct {
			Jobs []View `json:"jobs"`
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(ts.URL + "/v1/jobs")
			if err != nil {
				t.Fatal(err)
			}
			list.Jobs = nil
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if len(list.Jobs) == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("list holds %d jobs, want the 2 retained: %+v", len(list.Jobs), list.Jobs)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if list.Jobs[0].ID != ids[3] || list.Jobs[1].ID != ids[4] {
			t.Errorf("retained %s/%s, want the newest %s/%s",
				list.Jobs[0].ID, list.Jobs[1].ID, ids[3], ids[4])
		}
		// Evicted jobs are gone, not dangling: 404, never a nil panic.
		gone, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
		if err != nil {
			t.Fatal(err)
		}
		gone.Body.Close()
		if gone.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job GET = %d, want 404", gone.StatusCode)
		}
		if n, _ := reg.Snapshot().Counter("serve_jobs_evicted_total"); n != 3 {
			t.Errorf("serve_jobs_evicted_total = %d, want 3", n)
		}
		if st != nil {
			if n := st.Jobs(); n != 2 {
				t.Errorf("journal retains %d jobs, want the same 2 as memory", n)
			}
			if n, _ := reg.Snapshot().Counter("store_evictions_total"); n != 3 {
				t.Errorf("store_evictions_total = %d, want 3", n)
			}
		}
	}
	t.Run("memory-only", func(t *testing.T) { run(t, "") })
	t.Run("with-store", func(t *testing.T) { run(t, t.TempDir()) })
}

// TestRetentionByAge evicts terminal jobs past MaxTerminalAge on the
// next admission, regardless of count.
func TestRetentionByAge(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		QueueDepth: 4, Workers: 1, Registry: reg,
		MaxTerminalJobs: -1, // unbounded count: only age evicts
		MaxTerminalAge:  time.Nanosecond,
	})
	_, a := submit(t, ts, &jobspec.Spec{Analysis: jobspec.KindOP, Netlist: inverterDeck})
	// With a nanosecond bound the retention pass at the job's own
	// completion already ages it out, so "terminal" is observed as the
	// transition from existing to 404 — never as a dangling entry.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + a.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never aged out (last status %d)", a.ID, resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n, _ := reg.Snapshot().Counter("serve_jobs_evicted_total"); n < 1 {
		t.Error("no eviction counted for the aged-out job")
	}
}

// TestEventsFromPastEndRejected pins the ?from= boundary on a terminal
// job: from == len(events) is the legitimate "seen everything" resume
// (empty stream, immediate EOF), anything beyond is a 400.
func TestEventsFromPastEndRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1})
	_, v := submit(t, ts, &jobspec.Spec{Analysis: jobspec.KindOP, Netlist: inverterDeck})
	fin := waitTerminal(t, ts, v.ID)
	if fin.Events == 0 {
		t.Fatal("terminal job has an empty event log")
	}

	at, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events?from=" + strconv.Itoa(fin.Events))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(at.Body)
	at.Body.Close()
	if at.StatusCode != http.StatusOK || len(body) != 0 {
		t.Errorf("from == len(events): status %d body %q, want an empty 200 stream", at.StatusCode, body)
	}

	past, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events?from=" + strconv.Itoa(fin.Events+1))
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(past.Body)
	past.Body.Close()
	if past.StatusCode != http.StatusBadRequest {
		t.Errorf("from past the end: status %d, want 400", past.StatusCode)
	}
	if !strings.Contains(string(pbody), "beyond the end") {
		t.Errorf("from past the end: body %q does not name the bound", pbody)
	}
}

// TestRetryAfterDerivation pins the pure load model: cold servers say
// "come right back", the estimate scales with backlog per worker, and
// the clamp caps pathological backlogs.
func TestRetryAfterDerivation(t *testing.T) {
	cases := []struct {
		depth, workers int
		avg            float64
		want           int
	}{
		{0, 4, 0, 1},      // cold start: no duration data yet
		{0, 1, 0.2, 1},    // sub-second jobs round up to the minimum
		{9, 1, 2, 20},     // (9+1)*2/1
		{9, 5, 2, 4},      // same backlog, five workers
		{10, 0, 3, 33},    // workers clamps to 1
		{5000, 1, 2, 300}, // pathological backlog hits the cap
	}
	for _, tc := range cases {
		if got := retryAfter(tc.depth, tc.workers, tc.avg); got != tc.want {
			t.Errorf("retryAfter(%d, %d, %g) = %d, want %d", tc.depth, tc.workers, tc.avg, got, tc.want)
		}
	}
}
