package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/jobspec"
)

// Shard dispatch pacing and bounds.
const (
	// shardPollMin/Max bound the jittered exponential backoff of the
	// terminal-state poll against a peer: the first poll comes quickly
	// (short shards answer fast), long shards settle at one poll every
	// couple of seconds instead of hammering the peer at a fixed 50 ms.
	shardPollMin = 50 * time.Millisecond
	shardPollMax = 2 * time.Second
	// shardPollRetries bounds consecutive transient (transport-level)
	// poll failures tolerated before the dispatch is declared failed and
	// the shard falls back to local execution.
	shardPollRetries = 4
	// shardCleanupGrace bounds the best-effort DELETE that frees a peer's
	// worker when the campaign dies first. It runs detached from the
	// (already-cancelled) campaign context, but never longer than this.
	shardCleanupGrace = 2 * time.Second
)

// Dispatch failure causes, counted separately so an auth misconfig (a
// -tenants peer rejecting uncredentialed shards) is distinguishable
// from a dead peer in the fallback metrics.
const (
	causeAuth        = "auth"
	causeUnreachable = "unreachable"
	causePeer        = "peer"
)

// dispatchFailure classifies why a shard dispatch failed.
type dispatchFailure struct {
	cause string // causeAuth | causeUnreachable | causePeer
	err   error
}

func (e *dispatchFailure) Error() string { return e.err.Error() }
func (e *dispatchFailure) Unwrap() error { return e.err }

func dispatchCause(err error) string {
	var df *dispatchFailure
	if errors.As(err, &df) {
		return df.cause
	}
	return causePeer
}

// runShard is the jobspec.Options.RunShard hook: shard k of job j's
// campaign runs as a trial-range sub-job over the same /v1/jobs API
// this server exposes. With a fleet config the target is the
// least-loaded healthy node (which may be this one); with the legacy
// static Peers list it is Peers[k mod len(Peers)]. Any dispatch failure
// — peer unreachable, submission rejected, shard job failed — falls
// back to executing the shard locally, so a dead peer costs throughput,
// never the campaign.
func (s *Server) runShard(ctx context.Context, j *Job, shard int, sub *jobspec.Spec) (*jobspec.Result, error) {
	peer := s.pickShardTarget(shard)
	if peer == "" {
		// Fleet placement chose this node — least loaded, or no healthy
		// peer. Not a failure, just local work.
		s.met.shardsLocal.Inc()
		return jobspec.ExecuteOpts(ctx, sub, jobspec.Options{})
	}
	res, err := s.dispatchShard(ctx, peer, j.tenant, sub)
	if err == nil {
		s.met.shardsDispatched.Inc()
		return res, nil
	}
	if ctx.Err() != nil {
		// The campaign itself was cancelled; don't mask that with a local
		// re-run the merge would only have to cancel again.
		return nil, err
	}
	s.met.shardFallbacks.Inc()
	switch dispatchCause(err) {
	case causeAuth:
		s.met.shardFallbacksAuth.Inc()
	case causeUnreachable:
		s.met.shardFallbacksUnreachable.Inc()
	}
	return jobspec.ExecuteOpts(ctx, sub, jobspec.Options{})
}

// pickShardTarget resolves where a shard should run: "" means locally.
func (s *Server) pickShardTarget(shard int) string {
	if s.fleet != nil {
		return s.fleet.leastLoaded(shard, s.queue.depth()+int(s.met.inflight.Value()))
	}
	if len(s.cfg.Peers) > 0 {
		return s.cfg.Peers[shard%len(s.cfg.Peers)]
	}
	return ""
}

// shardHeaders attaches the credentials a peer will demand: the shared
// fleet key scoped to the submitting job's tenant in fleet mode, or —
// with the legacy static Peers list — the tenant's own API key when
// this server knows it. This is the fix for the silent-fallback bug
// where dispatches carried no credentials at all, so a peer started
// with -tenants answered 401 to every shard forever.
func (s *Server) shardHeaders(req *http.Request, tenant string) {
	if s.fleet != nil {
		req.Header.Set("Authorization", "Bearer "+s.fleet.cfg.Key)
		req.Header.Set(fleetTenantHeader, tenant)
		return
	}
	if s.tenants != nil {
		if st := s.tenants.byID[tenant]; st != nil {
			req.Header.Set("Authorization", "Bearer "+st.cfg.Key)
		}
	}
}

// dispatchShard runs one shard sub-spec on a peer end to end: submit,
// poll to terminal with jittered exponential backoff, decode the
// result. All requests go through the dedicated shard client with a
// real timeout — a peer that accepts TCP but never answers times out
// instead of parking the campaign's worker goroutine forever.
func (s *Server) dispatchShard(ctx context.Context, peer, tenant string, sub *jobspec.Spec) (*jobspec.Result, error) {
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding shard spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: shard submit: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	s.shardHeaders(req, tenant)
	resp, err := s.shardClient.Do(req)
	if err != nil {
		return nil, &dispatchFailure{cause: causeUnreachable,
			err: fmt.Errorf("serve: shard submit to %s: %w", peer, err)}
	}
	v, err := decodePeerView(peer, resp)
	if err != nil {
		return nil, err
	}
	// A 200 is the peer's result cache answering a previously computed
	// identical shard: already terminal, no polling needed.
	backoff := shardPollMin
	transient := 0
	for !v.State.Terminal() {
		// Full jitter up to 25% on top of the exponential step desynchronizes
		// the polls of concurrent shards against one peer.
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)/4+1))
		select {
		case <-ctx.Done():
			s.cancelPeerShard(ctx, peer, tenant, v.ID)
			return nil, fmt.Errorf("serve: shard on %s: %w", peer, ctx.Err())
		case <-time.After(wait):
		}
		if backoff *= 2; backoff > shardPollMax {
			backoff = shardPollMax
		}
		greq, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/jobs/"+v.ID, nil)
		if err != nil {
			return nil, fmt.Errorf("serve: shard poll: %w", err)
		}
		s.shardHeaders(greq, tenant)
		gresp, err := s.shardClient.Do(greq)
		if err != nil {
			if ctx.Err() != nil {
				s.cancelPeerShard(ctx, peer, tenant, v.ID)
				return nil, fmt.Errorf("serve: shard on %s: %w", peer, ctx.Err())
			}
			// Transport-level poll failures are retried (bounded): a shard
			// mid-run on a briefly unreachable peer is not lost work.
			if transient++; transient > shardPollRetries {
				return nil, &dispatchFailure{cause: causeUnreachable,
					err: fmt.Errorf("serve: polling shard on %s: %w", peer, err)}
			}
			continue
		}
		nv, err := decodePeerView(peer, gresp)
		if err != nil {
			return nil, err
		}
		transient = 0
		v = nv
	}
	if v.State != StateDone {
		return nil, fmt.Errorf("serve: shard job %s on %s ended %s: %s", v.ID, peer, v.State, v.Error)
	}
	res := new(jobspec.Result)
	if err := json.Unmarshal(v.Result, res); err != nil {
		return nil, fmt.Errorf("serve: decoding shard result from %s: %w", peer, err)
	}
	return res, nil
}

// cancelPeerShard frees the peer's worker when the campaign dies before
// its shard does. The campaign context is already cancelled, so the
// request runs detached from it — but with its values intact and a
// short grace deadline, never the old context-free request that could
// hang as long as the dead peer held the socket open.
func (s *Server) cancelPeerShard(ctx context.Context, peer, tenant, id string) {
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), shardCleanupGrace)
	defer cancel()
	req, err := http.NewRequestWithContext(dctx, http.MethodDelete, peer+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	s.shardHeaders(req, tenant)
	if resp, err := s.shardClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// decodePeerView consumes one peer API response into a job View,
// classifying any non-2xx status as a dispatch failure — 401/403 as an
// auth failure (misconfigured credentials), everything else as a peer
// verdict.
func decodePeerView(peer string, resp *http.Response) (View, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxSpecBytes))
	if err != nil {
		return View{}, &dispatchFailure{cause: causeUnreachable,
			err: fmt.Errorf("serve: reading peer %s response: %w", peer, err)}
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		cause := causePeer
		if resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden {
			cause = causeAuth
		}
		return View{}, &dispatchFailure{cause: cause,
			err: fmt.Errorf("serve: peer %s answered %d: %s", peer, resp.StatusCode, bytes.TrimSpace(b))}
	}
	var v View
	if err := json.Unmarshal(b, &v); err != nil {
		return View{}, fmt.Errorf("serve: decoding peer %s view: %w", peer, err)
	}
	return v, nil
}
