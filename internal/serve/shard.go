package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/jobspec"
)

// shardPollEvery paces the terminal-state poll against a peer serving a
// dispatched shard. Shards are whole trial-range sub-campaigns, so tens
// of milliseconds of polling latency is noise next to their runtime.
const shardPollEvery = 50 * time.Millisecond

// runShard is the jobspec.Options.RunShard hook when Config.Peers is
// set: shard k of a campaign is submitted to Peers[k mod len(Peers)] as
// a trial-range sub-job over the same /v1/jobs API this server exposes,
// and its terminal result is returned to the scatter-gather merge. Any
// dispatch failure — peer unreachable, submission rejected, shard job
// failed — falls back to executing the shard locally, so a dead peer
// costs throughput, never the campaign.
func (s *Server) runShard(ctx context.Context, shard int, sub *jobspec.Spec) (*jobspec.Result, error) {
	peer := s.cfg.Peers[shard%len(s.cfg.Peers)]
	res, err := s.dispatchShard(ctx, peer, sub)
	if err == nil {
		s.met.shardsDispatched.Inc()
		return res, nil
	}
	if ctx.Err() != nil {
		// The campaign itself was cancelled; don't mask that with a local
		// re-run the merge would only have to cancel again.
		return nil, err
	}
	s.met.shardFallbacks.Inc()
	return jobspec.ExecuteOpts(ctx, sub, jobspec.Options{})
}

// dispatchShard runs one shard sub-spec on a peer end to end: submit,
// poll to terminal, decode the result.
func (s *Server) dispatchShard(ctx context.Context, peer string, sub *jobspec.Spec) (*jobspec.Result, error) {
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding shard spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: shard submit: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: shard submit to %s: %w", peer, err)
	}
	v, err := decodePeerView(peer, resp)
	if err != nil {
		return nil, err
	}
	// A 200 is the peer's result cache answering a previously computed
	// identical shard: already terminal, no polling needed.
	for !v.State.Terminal() {
		select {
		case <-ctx.Done():
			// Best effort: free the peer's worker before giving up.
			if dreq, derr := http.NewRequest(http.MethodDelete, peer+"/v1/jobs/"+v.ID, nil); derr == nil {
				if dresp, derr := http.DefaultClient.Do(dreq); derr == nil {
					dresp.Body.Close()
				}
			}
			return nil, fmt.Errorf("serve: shard on %s: %w", peer, ctx.Err())
		case <-time.After(shardPollEvery):
		}
		greq, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/jobs/"+v.ID, nil)
		if err != nil {
			return nil, fmt.Errorf("serve: shard poll: %w", err)
		}
		gresp, err := http.DefaultClient.Do(greq)
		if err != nil {
			return nil, fmt.Errorf("serve: polling shard on %s: %w", peer, err)
		}
		if v, err = decodePeerView(peer, gresp); err != nil {
			return nil, err
		}
	}
	if v.State != StateDone {
		return nil, fmt.Errorf("serve: shard job %s on %s ended %s: %s", v.ID, peer, v.State, v.Error)
	}
	res := new(jobspec.Result)
	if err := json.Unmarshal(v.Result, res); err != nil {
		return nil, fmt.Errorf("serve: decoding shard result from %s: %w", peer, err)
	}
	return res, nil
}

// decodePeerView consumes one peer API response into a job View,
// treating any non-2xx status as a dispatch failure.
func decodePeerView(peer string, resp *http.Response) (View, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxSpecBytes))
	if err != nil {
		return View{}, fmt.Errorf("serve: reading peer %s response: %w", peer, err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return View{}, fmt.Errorf("serve: peer %s answered %d: %s", peer, resp.StatusCode, bytes.TrimSpace(b))
	}
	var v View
	if err := json.Unmarshal(b, &v); err != nil {
		return View{}, fmt.Errorf("serve: decoding peer %s view: %w", peer, err)
	}
	return v, nil
}
