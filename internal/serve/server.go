// Package serve is the long-running reliability-simulation job service —
// the paper's §5.2 resilience loop (monitor → control → knob) presumes
// reliability analyses run continuously as parameterized campaigns, and
// this package turns the one-shot engines into exactly that. It exposes
// a multi-tenant HTTP API over the versioned jobspec schema: submit
// (POST /v1/jobs), submit a sweep (POST /v1/batches), poll
// (GET /v1/jobs/{id}), stream per-trial/per-checkpoint progress as
// NDJSON (GET /v1/jobs/{id}/events), cancel (DELETE /v1/jobs/{id}) and
// list (GET /v1/jobs, paginated). Tenants are authenticated by static
// API keys from a keyfile; each carries a fair-share weight, queue and
// concurrency quotas and a trial-rate budget, and a weighted fair-share
// scheduler with interactive/batch priority classes replaces the old
// single FIFO so no tenant can starve another. Quota rejections answer
// 429 with a structured error envelope and a Retry-After derived from
// the tenant's own backlog; global capacity exhaustion keeps the old
// 503. Behind the API sits a worker pool sized off GOMAXPROCS driving
// jobspec.Execute with per-job cancellation, obs instruments folded
// into the shared registry, and graceful shutdown that stops admission,
// drains running jobs up to a deadline and persists partial results.
// Jobs inherit the engines' fault isolation: a panicking trial fails
// one job, never the server.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
	"repro/internal/store"
)

// ExecFunc runs one job. The default is jobspec.ExecuteOpts; tests
// substitute controllable executors to exercise the lifecycle.
type ExecFunc func(ctx context.Context, spec *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error)

// Config parameterizes a Server. The zero value is usable: every field
// has a production default.
type Config struct {
	// QueueDepth bounds the number of accepted-but-not-running jobs
	// (default 64). Submissions beyond it are rejected with 503.
	QueueDepth int
	// Workers sizes the execution pool (default GOMAXPROCS).
	Workers int
	// DefaultTimeout is applied to specs that carry no timeout of their
	// own (0 = unbounded).
	DefaultTimeout time.Duration
	// Registry receives the serve_* instruments and is served on the
	// job mux at /metrics, /metrics.json and /debug/vars (nil disables
	// both).
	Registry *obs.Registry
	// Execute overrides the job executor (tests); nil means
	// jobspec.ExecuteOpts.
	Execute ExecFunc
	// ProgressEvery forwards to jobspec.Options: emit every k-th
	// progress sample (0 = auto, ~200 samples per job).
	ProgressEvery int
	// Store persists job lifecycles and results to disk and provides the
	// spec-keyed result cache (nil = in-memory only, no cache). Jobs
	// recovered by store.Open are restored by NewServer: terminal jobs
	// are served without recomputation, queued jobs are re-enqueued,
	// Monte-Carlo campaigns interrupted mid-run are re-enqueued with
	// their journaled chunk checkpoints and resumed, and interrupted
	// jobs of other kinds are failed with a structured InterruptedError.
	// Workers journal one checkpoint per completed campaign chunk, so a
	// crash loses at most the chunk that was in flight.
	Store *store.Store
	// Peers lists base URLs of other relsim job servers (e.g.
	// "http://host:9090") that campaign shards are dispatched to when a
	// spec sets mc.shards > 1: shard k goes to Peers[k mod len(Peers)]
	// as a trial-range sub-job. A peer failure falls back to executing
	// that shard locally, so a dead peer degrades throughput, never
	// correctness. Empty = every shard runs in this process. Ignored when
	// Fleet is set — fleet placement is health-checked and load-aware.
	Peers []string
	// Fleet, when set, federates this server with the other nodes of the
	// table: node-prefixed job IDs, request forwarding to owners,
	// health-probed least-backlog shard placement, fleet-wide tenant
	// max_running, and journal-replay failover for dead peers. Load it
	// with LoadFleet; an invalid config panics in NewServer, because
	// silently running un-federated would mask a misconfigured fleet.
	Fleet *FleetConfig
	// ShardHTTPTimeout bounds every node-to-node shard dispatch request —
	// submit, poll, cancel (default 15s). This is what turns a peer that
	// accepts TCP and then stalls into a fallback instead of a worker
	// goroutine parked forever.
	ShardHTTPTimeout time.Duration
	// MaxTerminalJobs bounds the retained terminal jobs (default 512,
	// negative = unbounded); the oldest are evicted first. Queued and
	// running jobs are never evicted. This is what keeps a long-running
	// server's memory — and, with a Store, its disk journal — flat under
	// sustained traffic.
	MaxTerminalJobs int
	// MaxTerminalAge evicts terminal jobs older than this (0 = no age
	// bound). Age is measured from the job's finish time and enforced on
	// admission and job completion.
	MaxTerminalAge time.Duration
	// Tenants is the static tenant table (id, API key, weight, quotas).
	// Empty means single-tenant mode: no authentication, every job owned
	// by DefaultTenant with weight 1 and no quotas — the pre-multi-tenant
	// behaviour, bit for bit. Non-empty means every /v1 request must
	// present a listed key.
	Tenants []TenantConfig
	// EventWriteTimeout bounds one NDJSON write on a /v1/jobs/{id}/events
	// stream (default 10s): a reader that stops draining its socket is
	// disconnected instead of parking a handler goroutine forever.
	EventWriteTimeout time.Duration
}

// Server is the job service. Create it with NewServer — the worker pool
// starts immediately — mount it on any listener via http.Handler, and
// stop it with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   *jobQueue
	met     *metrics
	tenants *tenantSet
	baseCtx context.Context
	stopAll context.CancelFunc
	wg      sync.WaitGroup

	// Fleet state: nil outside fleet mode. nodeID/idPrefix derive from
	// Fleet.Self ("" / "" single-node); the clients separate concerns —
	// shardClient and probeClient carry real timeouts, streamClient (event
	// forwarding) is bounded only by a dial timeout plus the caller's own
	// request context, because a streamed job can legitimately run for
	// hours.
	fleet        *fleetState
	nodeID       string
	idPrefix     string
	shardClient  *http.Client
	probeClient  *http.Client
	streamClient *http.Client
	proberStop   chan struct{}
	proberOnce   sync.Once
	// ready flips once journal replay and restore have completed; until
	// then /readyz answers 503 not_ready (liveness /healthz is unaffected).
	ready atomic.Bool

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool

	// batchMu guards the ephemeral batch table: groupings of job IDs per
	// POST /v1/batches, kept for GET /v1/batches/{id} aggregation. The
	// jobs themselves are journaled; the grouping is in-memory only and
	// bounded (oldest evicted), so a restart keeps every job and result
	// but forgets which batch envelope they arrived in.
	batchMu     sync.Mutex
	batches     map[string]*batchRecord
	batchOrder  []string
	nextBatchID int

	// durMu guards durEWMA, the smoothed execution time (seconds) of
	// recently finished jobs, which load-scales the Retry-After hint.
	durMu   sync.Mutex
	durEWMA float64
}

// NewServer builds a server, restores any jobs recovered by the
// configured store, and starts its worker pool.
func NewServer(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Execute == nil {
		cfg.Execute = jobspec.ExecuteOpts
	}
	if cfg.MaxTerminalJobs == 0 {
		cfg.MaxTerminalJobs = 512
	}
	if cfg.EventWriteTimeout <= 0 {
		cfg.EventWriteTimeout = 10 * time.Second
	}
	if cfg.ShardHTTPTimeout <= 0 {
		cfg.ShardHTTPTimeout = 15 * time.Second
	}
	var recovered []store.RecoveredJob
	if cfg.Store != nil {
		recovered = cfg.Store.Recovered()
	}
	// A restart may hand back more runnable jobs (queued plus resumable
	// campaigns) than the configured depth; the queue grows to fit them
	// so recovery never drops accepted work. Admission backpressure
	// still kicks in at the same occupancy.
	depth := cfg.QueueDepth
	if n := countRecoveredRunnable(recovered); n > depth {
		depth = n
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		queue:      newJobQueue(depth),
		met:        newMetrics(cfg.Registry),
		tenants:    newTenantSet(cfg.Tenants),
		baseCtx:    ctx,
		stopAll:    cancel,
		jobs:       make(map[string]*Job),
		batches:    make(map[string]*batchRecord),
		proberStop: make(chan struct{}),
	}
	s.shardClient = &http.Client{Timeout: cfg.ShardHTTPTimeout}
	if fc := cfg.Fleet; fc != nil {
		fc.applyDefaults()
		if err := fc.validate(); err != nil {
			panic(err) // a misconfigured fleet must not run silently un-federated
		}
		s.fleet = newFleetState(fc)
		s.nodeID = fc.Self
		s.idPrefix = fc.Self + "-"
		if s.tenants != nil {
			s.tenants.fleetKey = fc.Key
		}
		// Probes must fail fast relative to their own cadence; shard
		// dispatch can afford the longer timeout.
		probeTimeout := 2 * time.Duration(fc.ProbeEvery)
		if probeTimeout > 10*time.Second {
			probeTimeout = 10 * time.Second
		}
		if probeTimeout > cfg.ShardHTTPTimeout {
			probeTimeout = cfg.ShardHTTPTimeout
		}
		// Probes dial fresh every time: a cached keep-alive connection to a
		// node whose listener died still answers, turning the health check
		// into a liveness check of a stale socket.
		s.probeClient = &http.Client{
			Timeout:   probeTimeout,
			Transport: &http.Transport{DisableKeepAlives: true},
		}
		s.streamClient = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
		}}
		s.queue.fleetRunning = s.fleet.runningFor
	}
	s.routes()
	s.restore(recovered)
	s.ready.Store(true)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.fleet != nil {
		s.wg.Add(1)
		go s.prober()
	}
	return s
}

// tenantCfg returns the keyfile entry of a tenant id, nil for tenants
// outside the keyfile (the default tenant in single-tenant mode).
func (s *Server) tenantCfg(id string) *TenantConfig {
	if s.tenants == nil {
		return nil
	}
	if st := s.tenants.byID[id]; st != nil {
		return &st.cfg
	}
	return nil
}

func countRecoveredRunnable(recovered []store.RecoveredJob) int {
	n := 0
	for _, r := range recovered {
		if r.State == store.StateQueued || resumable(r) {
			n++
		}
	}
	return n
}

// restore rebuilds the job table from the store's replayed journal,
// before the worker pool starts: terminal jobs are served as-is (their
// persisted results byte-identical), queued jobs go back on the queue,
// interrupted Monte-Carlo campaigns re-enqueue with their journaled
// checkpoints so the worker resumes them from the last completed chunk,
// and other jobs that died mid-run are finalized as failed with a
// structured InterruptedError — a new transition in this process, so it
// is counted and journaled, and the next restart replays it as plain
// failed. Fair-share accounting survives the restart: every recovered
// job that had reached a worker counts toward its tenant's scheduled
// total, so a tenant that consumed more than its share before the crash
// does not restart at parity.
func (s *Server) restore(recovered []store.RecoveredJob) {
	now := time.Now()
	scheduled := map[string]int{}
	for _, r := range recovered {
		j := restoredJob(r, now)
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		// The ID counter resumes past this node's own jobs; adopted jobs
		// carry another node's prefix and must not advance it.
		if n, ok := jobSeq(r.ID, s.idPrefix); ok && n > s.nextID {
			s.nextID = n
		}
		if !r.Started.IsZero() {
			scheduled[j.laneID()]++
		}
		switch r.State {
		case store.StateQueued:
			if err := s.queue.forcePush(s.laneCfg(j), j); err != nil {
				// Unreachable — restore precedes any drain — but a dropped
				// job must still reach a terminal state.
				if j.requestCancel("recovered queued job dropped: " + err.Error()) {
					s.met.finished(StateCancelled)
					s.persistTerminal(j)
				}
			}
		case store.StateInterrupted:
			if resumable(r) {
				s.met.resumed.Inc()
				if err := s.queue.forcePush(s.laneCfg(j), j); err != nil {
					if j.requestCancel("recovered campaign dropped: " + err.Error()) {
						s.met.finished(StateCancelled)
						s.persistTerminal(j)
					}
				}
				break
			}
			s.met.finished(StateFailed)
			s.persistTerminal(j)
		}
	}
	s.queue.restoreScheduled(scheduled, s.tenantCfg)
	s.met.depth.Set(float64(s.queue.depth()))
	s.enforceRetention(now)
}

// authed wraps a /v1 handler with tenant authentication. In
// single-tenant mode (no keyfile) every request passes with a nil
// tenant state; with a keyfile, a missing or unknown key answers 401
// before the handler runs.
func (s *Server) authed(h func(http.ResponseWriter, *http.Request, *tenantState)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ts, ok := s.tenants.authenticate(r)
		if !ok {
			writeError(w, http.StatusUnauthorized,
				apiError(ErrUnauthorized, errors.New("missing or unknown API key")))
			return
		}
		h(w, r, ts)
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.authed(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.authed(s.handleList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.authed(s.handleGet))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.authed(s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.authed(s.handleEvents))
	s.mux.HandleFunc("POST /v1/batches", s.authed(s.handleBatchSubmit))
	s.mux.HandleFunc("GET /v1/batches/{id}", s.authed(s.handleBatchGet))
	s.mux.HandleFunc("GET /v1/fleet", s.authed(s.handleFleet))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	if s.cfg.Registry != nil {
		// One listener for jobs and observability: the obs endpoints ride
		// the job mux, so -serve needs no separate -metrics-addr.
		h := obs.Handler(s.cfg.Registry)
		s.mux.Handle("GET /metrics", h)
		s.mux.Handle("GET /metrics.json", h)
		s.mux.Handle("GET /debug/vars", h)
		// The expvar dump only contains the registry once it is published;
		// the fixed name makes this idempotent process-wide.
		obs.PublishExpvar("obs", s.cfg.Registry)
	}
}

// ServeHTTP makes the server mountable on any http.Server or test mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown gracefully stops the server: admission closes (new submits
// get 503), workers drain queued and running jobs, and when ctx expires
// before the drain completes every active job's context is cancelled so
// the engines return — and the jobs persist — their partial results. It
// returns ctx.Err() when the deadline forced the drain, nil on a clean
// drain. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.proberOnce.Do(func() { close(s.proberStop) })
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.stopAll() // cancel every running job; engines return partials
		<-done
	}
	s.stopAll()
	return err
}

// addJob allocates the next job ID (node-prefixed in fleet mode, so IDs
// are unique fleet-wide and name their owner) and tracks the new queued
// job. internal marks fleet-dispatched shard sub-jobs, which schedule
// from the quota-exempt fleet lane.
func (s *Server) addJob(spec *jobspec.Spec, hash, tenant, class string, internal bool) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := newJob(fmt.Sprintf("%sjob-%06d", s.idPrefix, s.nextID), spec, hash, tenant, class, time.Now())
	j.internal = internal
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j
}

// addCachedJob tracks a job born terminal from a cache hit. It returns
// nil while draining, so the caller falls through to the queue push and
// its canonical "draining" rejection.
func (s *Server) addCachedJob(spec *jobspec.Spec, hash, tenant, class string, result json.RawMessage) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	s.nextID++
	j := newCachedJob(fmt.Sprintf("%sjob-%06d", s.idPrefix, s.nextID), spec, hash, tenant, class, result, time.Now())
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j
}

func (s *Server) removeJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return
	}
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// persistTerminal journals a job's terminal transition (and, when the
// result is a complete cacheable computation, enters it into the
// spec-hash cache). Store write failures are counted, not fatal: the
// job's in-memory state is already committed and still serveable.
func (s *Server) persistTerminal(j *Job) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	state, errMsg, raw, cacheable := j.terminalSnapshot()
	s.storeErr(st.JobTerminal(j.ID, string(state), errMsg, raw, cacheable, time.Now()))
}

// persistSubmitted journals a job's admission with its tenant/class
// provenance, so a restart rebuilds both the job and the fair-share
// accounting it participates in.
func (s *Server) persistSubmitted(j *Job, now time.Time) {
	if st := s.cfg.Store; st != nil {
		s.storeErr(st.JobSubmitted(j.ID, j.Spec, j.specHash,
			store.SubmitMeta{Tenant: j.tenant, Class: j.class,
				Node: s.nodeID, Internal: j.internal}, now))
	}
}

// storeErr counts a store write failure (nil is a no-op).
func (s *Server) storeErr(err error) {
	if err != nil {
		s.met.storeErrors.Inc()
	}
}

// enforceRetention applies the terminal-job retention policy: at most
// MaxTerminalJobs retained terminal jobs (oldest submitted evicted
// first) and none finished longer than MaxTerminalAge ago. Queued and
// running jobs are never evicted. Evictions propagate to the store,
// where journal compaction reclaims the disk — the in-memory map and
// the journal enforce one consistent bound. This is the fix for the
// unbounded retention leak: without it every terminal job (spec, event
// log, result) lived for the life of the process.
func (s *Server) enforceRetention(now time.Time) {
	maxN := s.cfg.MaxTerminalJobs
	maxAge := s.cfg.MaxTerminalAge
	if maxN < 0 && maxAge <= 0 {
		return
	}
	s.mu.Lock()
	type term struct {
		id       string
		finished time.Time
	}
	var terminal []term
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if st, fin := j.terminalInfo(); st.Terminal() {
			terminal = append(terminal, term{id, fin})
		}
	}
	over := 0
	if maxN >= 0 {
		over = len(terminal) - maxN
	}
	var drop []string
	for i, t := range terminal {
		evict := i < over
		if !evict && maxAge > 0 && !t.finished.IsZero() && now.Sub(t.finished) > maxAge {
			evict = true
		}
		if evict {
			drop = append(drop, t.id)
		}
	}
	if len(drop) > 0 {
		dropSet := make(map[string]bool, len(drop))
		for _, id := range drop {
			dropSet[id] = true
			delete(s.jobs, id)
		}
		live := s.order[:0]
		for _, id := range s.order {
			if !dropSet[id] {
				live = append(live, id)
			}
		}
		s.order = live
	}
	s.mu.Unlock()
	if len(drop) == 0 {
		return
	}
	s.met.evicted.Add(int64(len(drop)))
	if st := s.cfg.Store; st != nil {
		s.storeErr(st.Evict(drop, now))
	}
}

// retryAfter derives the backpressure hint from load: the queued work
// ahead of a retrying client, spread over the worker pool, at the
// smoothed recent job duration. Clamped to [1, 300] s so a cold server
// still answers "1" and a pathological backlog cannot park clients for
// hours.
func retryAfter(depth, workers int, avgSec float64) int {
	if workers < 1 {
		workers = 1
	}
	est := math.Ceil(float64(depth+1) * avgSec / float64(workers))
	switch {
	case est < 1:
		return 1
	case est > 300:
		return 300
	}
	return int(est)
}

func (s *Server) avgJobSec() float64 {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	return s.durEWMA
}

func (s *Server) retryAfterHint() int {
	return retryAfter(s.queue.depth(), s.cfg.Workers, s.avgJobSec())
}

// tenantRetryAfterHint estimates when the tenant's own backlog will have
// drained enough to admit again: its queued jobs spread over the workers
// it can actually occupy (its max_running cap, if tighter than the
// pool). This is the 429 hint — a function of the tenant's own state,
// deliberately independent of other tenants' backlogs.
func (s *Server) tenantRetryAfterHint(tenant string, cfg *TenantConfig) int {
	workers := s.cfg.Workers
	if cfg != nil && cfg.MaxRunning > 0 && cfg.MaxRunning < workers {
		workers = cfg.MaxRunning
	}
	return retryAfter(s.queue.tenantDepth(tenant), workers, s.avgJobSec())
}

// observeJobDuration folds one finished job's execution time into the
// smoothed estimate behind Retry-After.
func (s *Server) observeJobDuration(d time.Duration) {
	s.durMu.Lock()
	if sec := d.Seconds(); s.durEWMA == 0 {
		s.durEWMA = sec
	} else {
		s.durEWMA = 0.7*s.durEWMA + 0.3*sec
	}
	s.durMu.Unlock()
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobForTenant resolves a job id within the caller's tenant scope: with
// a keyfile, a job owned by another tenant is reported exactly like a
// missing one, so ids cannot be probed across tenants.
func (s *Server) jobForTenant(id string, ts *tenantState) *Job {
	j := s.job(id)
	if j == nil {
		return nil
	}
	if s.tenants != nil && j.tenant != tenantID(ts) {
		return nil
	}
	return j
}

// requestClass resolves the X-Priority header to a scheduling class.
func requestClass(r *http.Request, def string) (string, error) {
	c := r.Header.Get("X-Priority")
	if c == "" {
		return def, nil
	}
	if !validClass(c) {
		return "", fmt.Errorf("unknown priority class %q (want %q or %q)",
			c, ClassInteractive, ClassBatch)
	}
	return c, nil
}

// maxSpecBytes bounds a submitted spec or batch (netlists ride inline).
const maxSpecBytes = 8 << 20

// rejectPush maps a queue admission error to its wire response: tenant
// quota → 429 tenant_queue_full with the tenant's own backlog as
// Retry-After; global capacity or drain → 503 with the load-scaled
// global hint.
func (s *Server) rejectPush(w http.ResponseWriter, err error, ts *tenantState) {
	var tqf *errTenantQueueFull
	if errors.As(err, &tqf) {
		s.met.tenantRejected(tqf.tenant).Inc()
		body := apiError(ErrTenantQueueFull, err)
		body.RetryAfterS = s.tenantRetryAfterHint(tqf.tenant, s.tenantCfg(tqf.tenant))
		writeError(w, http.StatusTooManyRequests, body)
		return
	}
	s.met.rejected.Inc()
	code := ErrQueueFull
	if errors.Is(err, errDraining) {
		code = ErrDraining
	}
	body := apiError(code, err)
	body.RetryAfterS = s.retryAfterHint()
	writeError(w, http.StatusServiceUnavailable, body)
}

// admitRate debits the tenant's trial-rate bucket for cost trials; on an
// empty bucket it answers the 429 itself and returns false.
func (s *Server) admitRate(w http.ResponseWriter, ts *tenantState, cost float64) bool {
	if ts == nil {
		return true
	}
	ok, wait := ts.takeTrials(cost, time.Now())
	if ok {
		return true
	}
	s.met.tenantRejected(ts.cfg.ID).Inc()
	body := apiError(ErrRateLimited, fmt.Errorf(
		"serve: tenant %s trial-rate budget exhausted (%.0f trials requested)", ts.cfg.ID, cost))
	body.RetryAfterS = wait
	writeError(w, http.StatusTooManyRequests, body)
	return false
}

// decodeSpec reads and validates one submission body into a
// defaults-applied spec, answering the 400 itself on failure.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) *jobspec.Spec {
	spec := new(jobspec.Spec)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		writeError(w, http.StatusBadRequest, apiError(ErrInvalidSpec, fmt.Errorf("decoding spec: %w", err)))
		return nil
	}
	if spec.NetlistFile != "" {
		writeError(w, http.StatusBadRequest, apiError(ErrInvalidSpec,
			errors.New("the job server accepts inline netlists only (set \"netlist\", not \"netlist_file\")")))
		return nil
	}
	spec.ApplyDefaults()
	if s.cfg.DefaultTimeout > 0 && spec.Timeout == 0 {
		spec.Timeout = jobspec.Duration(s.cfg.DefaultTimeout)
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, apiError(ErrInvalidSpec, err))
		return nil
	}
	return spec
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, ts *tenantState) {
	tenant := tenantID(ts)
	// Fleet-internal submissions (a peer dispatching a campaign shard with
	// the shared fleet key) bypass per-tenant admission — trial-rate and
	// max_queued were already charged to the campaign on the dispatching
	// node — and schedule from the quota-exempt fleet lane.
	internal := s.isFleetReq(r)
	class, err := requestClass(r, ClassInteractive)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError(ErrBadArgument, err))
		return
	}
	spec := s.decodeSpec(w, r)
	if spec == nil {
		return
	}
	hash := spec.CanonicalHash()
	// Spec-keyed result cache: every analysis is a pure function of the
	// defaults-applied (Spec, Seed), so an identical resubmission is
	// answered with the persisted snapshot — byte-identical, no queue
	// slot, no recomputation, no trial-rate debit — as a job born
	// terminal (200, not 202).
	if st := s.cfg.Store; st != nil && !spec.NoCache {
		if _, raw, ok := st.CachedResult(hash); ok {
			if j := s.addCachedJob(spec, hash, tenant, class, raw); j != nil {
				s.met.submitted.Inc()
				s.met.kindCounter(spec.Analysis).Inc()
				s.met.tenantAdmitted(tenant).Inc()
				s.met.finished(StateDone)
				now := time.Now()
				s.persistSubmitted(j, now)
				// cacheable=false: the cache already holds the canonical
				// entry this snapshot was copied from.
				s.storeErr(st.JobTerminal(j.ID, string(StateDone), "", raw, false, now))
				s.enforceRetention(now)
				writeJSON(w, http.StatusOK, j.view(true))
				return
			}
			// Draining: fall through to the push below for the canonical
			// "draining" 503.
		}
	}
	cost := trialCost(spec)
	if !internal && !s.admitRate(w, ts, cost) {
		return
	}
	j := s.addJob(spec, hash, tenant, class, internal)
	var pushCfg *TenantConfig
	if !internal {
		pushCfg = s.tenantCfg(tenant)
	}
	if err := s.queue.tryPush(pushCfg, j); err != nil {
		s.removeJob(j.ID)
		if !internal && ts != nil {
			ts.refund(cost)
		}
		s.rejectPush(w, err, ts)
		return
	}
	s.met.submitted.Inc()
	s.met.kindCounter(spec.Analysis).Inc()
	s.met.depth.Set(float64(s.queue.depth()))
	if !internal {
		s.met.tenantAdmitted(tenant).Inc()
		s.met.tenantDepth(tenant).Set(float64(s.queue.tenantDepth(tenant)))
	}
	s.persistSubmitted(j, time.Now())
	s.enforceRetention(time.Now())
	writeJSON(w, http.StatusAccepted, j.view(false))
}

// List pagination bounds.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

func (s *Server) handleList(w http.ResponseWriter, r *http.Request, ts *tenantState) {
	q := r.URL.Query()
	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest,
				apiError(ErrBadArgument, errors.New("limit must be a positive integer")))
			return
		}
		if n > maxListLimit {
			n = maxListLimit
		}
		limit = n
	}
	stateFilter := q.Get("state")
	if stateFilter != "" && !State(stateFilter).Terminal() &&
		State(stateFilter) != StateQueued && State(stateFilter) != StateRunning {
		writeError(w, http.StatusBadRequest,
			apiError(ErrBadArgument, fmt.Errorf("unknown state %q", stateFilter)))
		return
	}
	// Tenant scope: with a keyfile the listing is always the caller's own
	// jobs, and naming any other tenant is refused; in single-tenant mode
	// the tenant parameter is a free filter (operator tooling).
	tenantFilter := q.Get("tenant")
	if s.tenants != nil {
		own := tenantID(ts)
		if tenantFilter != "" && tenantFilter != own {
			writeError(w, http.StatusForbidden,
				apiError(ErrForbidden, fmt.Errorf("key is not tenant %q", tenantFilter)))
			return
		}
		tenantFilter = own
	}
	token := q.Get("page_token")
	// Snapshot under the lock, skipping ids whose jobs were evicted
	// between the order copy and the map read — the list must stay
	// stable (no gaps, no nils) while the retention policy runs. s.order
	// is submit-ordered, so the page token — the last job ID of the
	// previous page — resumes positionally: find it in the order and
	// continue one past it. In fleet mode adopted jobs interleave foreign
	// node prefixes into the order, so IDs are no longer lexicographically
	// monotonic; only when the token's job has been evicted does the scan
	// fall back to the old string comparison (safe: eviction is
	// oldest-first, so everything retained after an evicted token is
	// lexicographically past it within one node's sequence).
	s.mu.Lock()
	start := 0
	if token != "" {
		start = -1
		for i, id := range s.order {
			if id == token {
				start = i + 1
				break
			}
		}
	}
	jobs := make([]*Job, 0, len(s.order))
	for i, id := range s.order {
		if token != "" {
			if start >= 0 {
				if i < start {
					continue
				}
			} else if id <= token {
				continue
			}
		}
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	views := make([]View, 0, min(limit, len(jobs)))
	next := ""
	for _, j := range jobs {
		v := j.view(false)
		if tenantFilter != "" && v.Tenant != tenantFilter {
			continue
		}
		if stateFilter != "" && string(v.State) != stateFilter {
			continue
		}
		if len(views) == limit {
			// One past the page: there is more, so the page token is the
			// last returned job's ID.
			next = views[limit-1].ID
			break
		}
		views = append(views, v)
	}
	resp := map[string]any{"jobs": views}
	if next != "" {
		resp["next_page_token"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, ts *tenantState) {
	id := r.PathValue("id")
	j := s.jobForTenant(id, ts)
	if j == nil {
		if s.forwardJob(w, r, id, ts) {
			return
		}
		writeError(w, http.StatusNotFound, apiError(ErrNotFound, errors.New("no such job")))
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, ts *tenantState) {
	id := r.PathValue("id")
	j := s.jobForTenant(id, ts)
	if j == nil {
		if s.forwardJob(w, r, id, ts) {
			return
		}
		writeError(w, http.StatusNotFound, apiError(ErrNotFound, errors.New("no such job")))
		return
	}
	if j.requestCancel("cancelled by client") {
		s.met.finished(StateCancelled)
		s.persistTerminal(j)
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

// handleHealth is liveness: the process is up and serving HTTP. It
// reports state (including draining) but never fails for it — use
// /readyz to take a draining or replaying instance out of rotation.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"draining":    draining,
		"jobs":        total,
		"queue_depth": s.queue.depth(),
		"queue_cap":   s.queue.capacity(),
		"inflight":    int(s.met.inflight.Value()),
		"workers":     s.cfg.Workers,
	})
}

// handleReady is readiness: 200 only when the server can usefully accept
// work — journal replay finished and no drain in progress. Load
// balancers poll this one; /healthz stays green through both conditions
// so a draining instance is not killed mid-drain.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable,
			apiError(ErrNotReady, errors.New("journal replay in progress")))
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable,
			apiError(ErrNotReady, errors.New("server is draining")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
