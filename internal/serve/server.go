// Package serve is the long-running reliability-simulation job service —
// the paper's §5.2 resilience loop (monitor → control → knob) presumes
// reliability analyses run continuously as parameterized campaigns, and
// this package turns the one-shot engines into exactly that. It exposes
// an HTTP API over the versioned jobspec schema: submit (POST /v1/jobs),
// poll (GET /v1/jobs/{id}), stream per-trial/per-checkpoint progress as
// NDJSON (GET /v1/jobs/{id}/events), cancel (DELETE /v1/jobs/{id}) and
// list (GET /v1/jobs). Behind the API sits a bounded queue with exact
// backpressure (503 + Retry-After when full), a worker pool sized off
// GOMAXPROCS driving jobspec.Execute with per-job cancellation, obs
// instruments folded into the shared registry, and graceful shutdown
// that stops admission, drains running jobs up to a deadline and
// persists partial results. Jobs inherit the engines' fault isolation:
// a panicking trial fails one job, never the server.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

// ExecFunc runs one job. The default is jobspec.ExecuteOpts; tests
// substitute controllable executors to exercise the lifecycle.
type ExecFunc func(ctx context.Context, spec *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error)

// Config parameterizes a Server. The zero value is usable: every field
// has a production default.
type Config struct {
	// QueueDepth bounds the number of accepted-but-not-running jobs
	// (default 64). Submissions beyond it are rejected with 503.
	QueueDepth int
	// Workers sizes the execution pool (default GOMAXPROCS).
	Workers int
	// DefaultTimeout is applied to specs that carry no timeout of their
	// own (0 = unbounded).
	DefaultTimeout time.Duration
	// Registry receives the serve_* instruments and is served on the
	// job mux at /metrics, /metrics.json and /debug/vars (nil disables
	// both).
	Registry *obs.Registry
	// Execute overrides the job executor (tests); nil means
	// jobspec.ExecuteOpts.
	Execute ExecFunc
	// ProgressEvery forwards to jobspec.Options: emit every k-th
	// progress sample (0 = auto, ~200 samples per job).
	ProgressEvery int
}

// Server is the job service. Create it with NewServer — the worker pool
// starts immediately — mount it on any listener via http.Handler, and
// stop it with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   *jobQueue
	met     *metrics
	baseCtx context.Context
	stopAll context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool
}

// NewServer builds a server and starts its worker pool.
func NewServer(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Execute == nil {
		cfg.Execute = jobspec.ExecuteOpts
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		queue:   newJobQueue(cfg.QueueDepth),
		met:     newMetrics(cfg.Registry),
		baseCtx: ctx,
		stopAll: cancel,
		jobs:    make(map[string]*Job),
	}
	s.routes()
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.cfg.Registry != nil {
		// One listener for jobs and observability: the obs endpoints ride
		// the job mux, so -serve needs no separate -metrics-addr.
		h := obs.Handler(s.cfg.Registry)
		s.mux.Handle("GET /metrics", h)
		s.mux.Handle("GET /metrics.json", h)
		s.mux.Handle("GET /debug/vars", h)
		// The expvar dump only contains the registry once it is published;
		// the fixed name makes this idempotent process-wide.
		obs.PublishExpvar("obs", s.cfg.Registry)
	}
}

// ServeHTTP makes the server mountable on any http.Server or test mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown gracefully stops the server: admission closes (new submits
// get 503), workers drain queued and running jobs, and when ctx expires
// before the drain completes every active job's context is cancelled so
// the engines return — and the jobs persist — their partial results. It
// returns ctx.Err() when the deadline forced the drain, nil on a clean
// drain. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.stopAll() // cancel every running job; engines return partials
		<-done
	}
	s.stopAll()
	return err
}

// newID allocates the next job ID.
func (s *Server) addJob(spec *jobspec.Spec) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := newJob(fmt.Sprintf("job-%06d", s.nextID), spec, time.Now())
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j
}

func (s *Server) removeJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	if n := len(s.order); n > 0 && s.order[n-1] == id {
		s.order = s.order[:n-1]
	}
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// maxSpecBytes bounds a submitted spec (the netlist rides inline).
const maxSpecBytes = 8 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec := new(jobspec.Spec)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	if spec.NetlistFile != "" {
		writeError(w, http.StatusBadRequest,
			errors.New("the job server accepts inline netlists only (set \"netlist\", not \"netlist_file\")"))
		return
	}
	spec.ApplyDefaults()
	if s.cfg.DefaultTimeout > 0 && spec.Timeout == 0 {
		spec.Timeout = jobspec.Duration(s.cfg.DefaultTimeout)
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j := s.addJob(spec)
	if err := s.queue.tryPush(j); err != nil {
		s.removeJob(j.ID)
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.met.submitted.Inc()
	s.met.kindCounter(spec.Analysis).Inc()
	s.met.depth.Set(float64(s.queue.depth()))
	writeJSON(w, http.StatusAccepted, j.view(false))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if j.requestCancel("cancelled by client") {
		s.met.finished(StateCancelled)
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"draining":    draining,
		"jobs":        total,
		"queue_depth": s.queue.depth(),
		"queue_cap":   s.queue.capacity(),
		"inflight":    int(s.met.inflight.Value()),
		"workers":     s.cfg.Workers,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
