package serve

import (
	"context"
	"encoding/json"
	"io/fs"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

// copyTree snapshots a data directory file by file — the disk image a
// SIGKILLed process leaves behind.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, p)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKillAndResumeCampaign is the end-to-end acceptance run for the
// checkpoint/resume path, under -race via `make race-shard`: a server
// is "SIGKILLed" mid-campaign (its data directory copied out from under
// it while the executor is frozen between chunks), and a fresh server
// over that disk image must finish the campaign from the last
// journaled checkpoint — re-running only the chunks past it, with the
// merged moments bit-identical to an uninterrupted run.
func TestKillAndResumeCampaign(t *testing.T) {
	dirA := t.TempDir()
	regA := obs.NewRegistry()
	stA := mustStore(t, dirA, regA)

	const trials = 96 // chunk size 24 → a 4-chunk campaign grid
	spec := mcSpec(trials)
	spec.Seed = 21

	// The real engine runs the trials; only the checkpoint hook is
	// intercepted, freezing the campaign right after chunk 1 is fsync'd
	// to the journal — the moment a SIGKILL would hurt the most.
	frozen := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	exec := func(ctx context.Context, sp *jobspec.Spec, opts jobspec.Options) (*jobspec.Result, error) {
		inner := opts.OnCheckpoint
		opts.OnCheckpoint = func(cp jobspec.Checkpoint) {
			if inner != nil {
				inner(cp)
			}
			if cp.Seq == 1 {
				once.Do(func() { close(frozen) })
				<-release
			}
		}
		return jobspec.ExecuteOpts(ctx, sp, opts)
	}
	sA := NewServer(Config{QueueDepth: 2, Workers: 1, Store: stA, Registry: regA, Execute: exec})
	tsA := httptest.NewServer(sA)
	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sA.Shutdown(ctx)
		tsA.Close()
		stA.Close()
	})

	_, v := submit(t, tsA, spec)
	select {
	case <-frozen:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign never journaled its second checkpoint")
	}

	// The "kill": the journal is quiesced (the worker is blocked inside
	// the checkpoint hook, after the append+fsync), so the copy is
	// exactly the disk image of a process that died right here.
	dirB := t.TempDir()
	copyTree(t, dirA, dirB)

	regB := obs.NewRegistry()
	stB := mustStore(t, dirB, regB)
	t.Cleanup(func() { stB.Close() })
	sB := NewServer(Config{QueueDepth: 2, Workers: 1, Store: stB, Registry: regB})
	tsB := httptest.NewServer(sB)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sB.Shutdown(ctx)
		tsB.Close()
	})

	if n, _ := regB.Snapshot().Counter("serve_jobs_resumed_total"); n != 1 {
		t.Errorf("serve_jobs_resumed_total = %d, want 1", n)
	}
	fin := waitTerminal(t, tsB, v.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed campaign = %s (error %q), want done", fin.State, fin.Error)
	}
	var got jobspec.Result
	if err := json.Unmarshal(fin.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.MC == nil || got.MC.Stats == nil {
		t.Fatalf("resumed result carries no campaign stats: %+v", got.MC)
	}
	if got.MC.Resumed != 2 {
		t.Errorf("resumed %d chunks, want the 2 that were journaled", got.MC.Resumed)
	}
	if got.MC.Completed() != trials {
		t.Errorf("resumed campaign completed %d trials, want %d", got.MC.Completed(), trials)
	}
	// At most one chunk of re-work: the restarted server executed (and
	// re-journaled) only the 2 chunks past the last checkpoint, never the
	// 2 it inherited.
	if n, _ := regB.Snapshot().Counter("serve_checkpoints_total"); n != 2 {
		t.Errorf("restarted server journaled %d checkpoints, want only the 2 remaining chunks", n)
	}

	// The merge-exactness contract: the resumed verdict's moments are
	// bit-identical to an uninterrupted run of the identical spec.
	ref := mcSpec(trials)
	ref.Seed = 21
	ref.ApplyDefaults()
	want, err := jobspec.Execute(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if want.MC == nil || want.MC.Stats == nil {
		t.Fatalf("reference run carries no stats: %+v", want.MC)
	}
	if got.MC.Stats.Moments != want.MC.Stats.Moments {
		t.Errorf("resumed moments\n%+v\ndiffer from the uninterrupted run's\n%+v",
			got.MC.Stats.Moments, want.MC.Stats.Moments)
	}
}

// TestShardedCampaignPeerDispatch runs a k=4 campaign whose shards are
// dispatched to a peer job server over HTTP and scatter-gathered back:
// every shard must be answered by the peer, and the merged moments must
// be bit-identical to an unsharded local run.
func TestShardedCampaignPeerDispatch(t *testing.T) {
	regPeer := obs.NewRegistry()
	_, tsPeer := newTestServer(t, Config{QueueDepth: 16, Workers: 2, Registry: regPeer})

	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 1, Registry: reg, Peers: []string{tsPeer.URL}})

	spec := mcSpec(96)
	spec.Seed = 33
	spec.MC.Shards = 4
	_, v := submit(t, ts, spec)
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("sharded campaign = %s (error %q), want done", fin.State, fin.Error)
	}
	var got jobspec.Result
	if err := json.Unmarshal(fin.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.MC == nil || got.MC.Stats == nil || got.MC.Shards != 4 {
		t.Fatalf("sharded outcome = %+v, want stats from a 4-way fan-out", got.MC)
	}
	if got.MC.Completed() != 96 {
		t.Errorf("sharded campaign completed %d trials, want 96", got.MC.Completed())
	}
	if n, _ := reg.Snapshot().Counter("serve_shards_dispatched_total"); n != 4 {
		t.Errorf("serve_shards_dispatched_total = %d, want 4", n)
	}
	if n, _ := reg.Snapshot().Counter("serve_shard_fallbacks_total"); n != 0 {
		t.Errorf("serve_shard_fallbacks_total = %d, want 0", n)
	}
	// The peer actually executed the trial-range sub-jobs.
	if n, _ := regPeer.Snapshot().Counter("serve_jobs_submitted_total"); n != 4 {
		t.Errorf("peer accepted %d sub-jobs, want 4", n)
	}

	ref := mcSpec(96)
	ref.Seed = 33
	ref.ApplyDefaults()
	want, err := jobspec.Execute(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.MC.Stats.Moments != want.MC.Stats.Moments {
		t.Errorf("peer-sharded moments\n%+v\ndiffer from the unsharded run's\n%+v",
			got.MC.Stats.Moments, want.MC.Stats.Moments)
	}
}

// TestShardPeerFallbackLocal points Peers at an address nothing listens
// on: every dispatch must fall back to local execution and the campaign
// must still complete — a dead peer costs throughput, never the result.
func TestShardPeerFallbackLocal(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 1, Registry: reg,
		Peers: []string{"http://127.0.0.1:1"}})

	spec := mcSpec(96)
	spec.Seed = 34
	spec.MC.Shards = 2
	_, v := submit(t, ts, spec)
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("campaign with a dead peer = %s (error %q), want local fallback to done", fin.State, fin.Error)
	}
	var got jobspec.Result
	if err := json.Unmarshal(fin.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.MC == nil || got.MC.Completed() != 96 {
		t.Fatalf("fallback campaign = %+v, want 96 completed trials", got.MC)
	}
	if n, _ := reg.Snapshot().Counter("serve_shard_fallbacks_total"); n != 2 {
		t.Errorf("serve_shard_fallbacks_total = %d, want 2", n)
	}
	if n, _ := reg.Snapshot().Counter("serve_shards_dispatched_total"); n != 0 {
		t.Errorf("serve_shards_dispatched_total = %d, want 0", n)
	}
}
