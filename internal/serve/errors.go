package serve

import (
	"net/http"
	"strconv"
)

// ErrCode is the machine-readable error taxonomy of the /v1 API. Every
// non-2xx response carries exactly one code in the JSON error envelope;
// HTTP status codes stay what they always were (the envelope refines,
// never replaces, the status), so pre-envelope clients that switch on
// status keep working.
type ErrCode string

const (
	// ErrInvalidSpec (400): the submitted spec or batch failed decoding or
	// validation; Message names the offending field (and spec index for
	// batches).
	ErrInvalidSpec ErrCode = "invalid_spec"
	// ErrBadArgument (400): a query parameter, path value or header is
	// malformed (bad ?from, unknown priority class, bad limit).
	ErrBadArgument ErrCode = "bad_argument"
	// ErrUnauthorized (401): the server runs with a tenant keyfile and the
	// request carried no key or an unknown one.
	ErrUnauthorized ErrCode = "unauthorized"
	// ErrForbidden (403): the key is valid but names a different tenant
	// than the request tries to act for.
	ErrForbidden ErrCode = "forbidden"
	// ErrNotFound (404): no such job or batch — including jobs that exist
	// but belong to another tenant, which are indistinguishable from
	// absent by design.
	ErrNotFound ErrCode = "not_found"
	// ErrTenantQueueFull (429): the submitting tenant's own max_queued
	// quota is exhausted; retry_after_s is derived from that tenant's own
	// backlog, not global load.
	ErrTenantQueueFull ErrCode = "tenant_queue_full"
	// ErrRateLimited (429): the tenant's trial-rate token bucket cannot
	// cover the submission; retry_after_s is the bucket's refill time.
	ErrRateLimited ErrCode = "rate_limited"
	// ErrQueueFull (503): global queue capacity exhausted — the shared
	// backpressure signal, tenant-independent.
	ErrQueueFull ErrCode = "queue_full"
	// ErrDraining (503): the server is shutting down and admits nothing.
	ErrDraining ErrCode = "draining"
	// ErrNotReady (503): /readyz only — journal replay has not finished or
	// a drain is in progress.
	ErrNotReady ErrCode = "not_ready"
)

// ErrorBody is the structured error envelope every /v1 endpoint returns
// on failure:
//
//	{"code": "tenant_queue_full", "message": "...", "retry_after_s": 12}
//
// retry_after_s duplicates the Retry-After header for clients that only
// see the body; job_id is set when the error concerns a job that exists.
type ErrorBody struct {
	Code        ErrCode `json:"code"`
	Message     string  `json:"message"`
	RetryAfterS int     `json:"retry_after_s,omitempty"`
	JobID       string  `json:"job_id,omitempty"`
}

// writeError emits the error envelope. A positive RetryAfterS is also
// surfaced as the Retry-After header, keeping header-driven retry loops
// working unchanged.
func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	if body.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(body.RetryAfterS))
	}
	writeJSON(w, status, body)
}

// apiError builds the common code+message envelope from an error value.
func apiError(code ErrCode, err error) ErrorBody {
	return ErrorBody{Code: code, Message: err.Error()}
}
