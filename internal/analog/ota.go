// Package analog provides a complete analog building block — a two-stage
// Miller-compensated OTA — together with the measurements the paper says
// degradation erodes: DC gain, unity-gain bandwidth, phase margin, CMRR
// and input offset. It is the repository's "realistic analog circuit"
// vehicle: variability sets its offset and yield (§2), NBTI/HCI eat its
// gain over life (§3.2: "the performance of analog circuits (e.g. gain or
// CMRR) is influenced").
package analog

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
)

// OTAConfig sizes the two-stage amplifier.
type OTAConfig struct {
	Tech *device.Technology
	// WPair is the input-pair width; the pair uses 2×Lmin length.
	WPair float64
	// WLoad is the first-stage NMOS mirror width.
	WLoad float64
	// WTail is the tail/bias PMOS width.
	WTail float64
	// WDrv and WSrc size the second stage (NMOS driver, PMOS source).
	WDrv, WSrc float64
	// CC is the Miller compensation capacitor.
	CC float64
	// CL is the load capacitance.
	CL float64
	// IBias is the reference current into the bias mirror.
	IBias float64
	// VCM is the input common-mode voltage.
	VCM float64
}

// DefaultOTA returns a working 180 nm design: ~50 dB DC gain, MHz-range
// GBW into 2 pF.
func DefaultOTA() OTAConfig {
	tech := device.MustTech("180nm")
	return OTAConfig{
		Tech:  tech,
		WPair: 16e-6,
		WLoad: 4e-6,
		WTail: 16e-6,
		WDrv:  12e-6,
		WSrc:  24e-6,
		CC:    1e-12,
		CL:    2e-12,
		IBias: 20e-6,
		VCM:   0.9,
	}
}

// OTA is one amplifier instance: the circuit plus handles to its devices
// and measurement nodes. The testbench wraps the amplifier in the classic
// open-loop measurement harness — a huge inductor closes the loop at DC
// (so the operating point self-biases) while leaving it open at AC.
type OTA struct {
	Config  OTAConfig
	Circuit *circuit.Circuit
	// Devices by role, for mismatch/aging access.
	M1, M2, M3, M4, MTail, MDrv, MSrc, MBias *circuit.MOSFET
	// vin is the differential stimulus source; vcmAC the common-mode one.
	vin *circuit.VSource
	vcm *circuit.VSource
}

// NewOTA builds the amplifier and its measurement harness.
func NewOTA(cfg OTAConfig) (*OTA, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("analog: missing technology")
	}
	if cfg.CC <= 0 || cfg.CL <= 0 || cfg.IBias <= 0 {
		return nil, fmt.Errorf("analog: non-positive CC/CL/IBias")
	}
	t := cfg.Tech
	l1 := 2 * t.Lmin
	c := circuit.New()
	o := &OTA{Config: cfg, Circuit: c}

	c.AddVSource("VDD", "vdd", "0", circuit.DC(t.VDD))
	// Bias mirror: IBIAS pulls current out of the PMOS diode MBIAS.
	c.AddISource("IBIAS", "nbias", "0", circuit.DC(cfg.IBias))
	o.MBias = c.AddMOSFET("MBIAS", "nbias", "nbias", "vdd", "vdd",
		device.NewMosfet(t.PMOSParams(cfg.WTail, l1, 300)))
	// Tail source for the input pair.
	o.MTail = c.AddMOSFET("MTAIL", "tail", "nbias", "vdd", "vdd",
		device.NewMosfet(t.PMOSParams(cfg.WTail, l1, 300)))
	// PMOS input pair.
	o.M1 = c.AddMOSFET("M1", "n1", "inp", "tail", "vdd",
		device.NewMosfet(t.PMOSParams(cfg.WPair, l1, 300)))
	o.M2 = c.AddMOSFET("M2", "n2", "inn", "tail", "vdd",
		device.NewMosfet(t.PMOSParams(cfg.WPair, l1, 300)))
	// NMOS mirror load (diode on n1).
	o.M3 = c.AddMOSFET("M3", "n1", "n1", "0", "0",
		device.NewMosfet(t.NMOSParams(cfg.WLoad, l1, 300)))
	o.M4 = c.AddMOSFET("M4", "n2", "n1", "0", "0",
		device.NewMosfet(t.NMOSParams(cfg.WLoad, l1, 300)))
	// Second stage: NMOS driver from n2, PMOS current-source load.
	o.MDrv = c.AddMOSFET("MDRV", "out", "n2", "0", "0",
		device.NewMosfet(t.NMOSParams(cfg.WDrv, l1, 300)))
	o.MSrc = c.AddMOSFET("MSRC", "out", "nbias", "vdd", "vdd",
		device.NewMosfet(t.PMOSParams(cfg.WSrc, l1, 300)))
	// Miller compensation and load.
	c.AddCapacitor("CC", "n2", "out", cfg.CC)
	c.AddCapacitor("CL", "out", "0", cfg.CL)

	// Measurement harness. In this topology inp (M1, whose drain carries
	// the mirror diode) is the *inverting* input: raising inp lowers the
	// mirror current, lifts n2 and drops out. The DC feedback therefore
	// closes from out to inp through a huge inductor (short at DC, open
	// at AC), while a huge capacitor AC-grounds inp to the common-mode
	// source. The differential stimulus drives the non-inverting input
	// inn directly.
	o.vin = c.AddVSource("VIN", "inn", "0", circuit.DC(cfg.VCM))
	o.vcm = c.AddVSource("VCM", "cm", "0", circuit.DC(cfg.VCM))
	c.AddInductor("LFB", "out", "inp", 1e6)
	c.AddCapacitor("CAC", "inp", "cm", 1)
	c.AddResistor("RCM", "cm", "inp", 1e12) // keeps inp's DC path defined
	return o, nil
}

// OperatingPoint solves and returns the DC solution.
func (o *OTA) OperatingPoint() (*circuit.Solution, error) {
	return o.Circuit.OperatingPoint()
}

// InputOffset returns the input-referred offset voltage: with the
// unity-DC-feedback harness the loop drives the inverting input (and with
// it the output) to VCM − Vos, so the offset is VCM − V(inp).
func (o *OTA) InputOffset() (float64, error) {
	sol, err := o.OperatingPoint()
	if err != nil {
		return 0, err
	}
	return o.Config.VCM - sol.Voltage("inp"), nil
}

// Specs holds the measured small-signal performance.
type Specs struct {
	// DCGainDB is the open-loop differential gain at 10 Hz in dB.
	DCGainDB float64
	// GBW is the unity-gain frequency in Hz.
	GBW float64
	// PhaseMarginDeg is 180° + phase(out) at the unity-gain frequency.
	PhaseMarginDeg float64
	// CMRRDB is the common-mode rejection ratio at 1 kHz in dB.
	CMRRDB float64
}

// Measure runs the AC analyses and extracts the spec set.
func (o *OTA) Measure() (*Specs, error) {
	// Differential gain sweep.
	o.vin.ACMag = 1
	o.vcm.ACMag = 0
	freqs := mathx.Logspace(10, 1e9, 73)
	pts, err := o.Circuit.AC(freqs)
	if err != nil {
		return nil, fmt.Errorf("analog: differential AC: %w", err)
	}
	s := &Specs{DCGainDB: pts[0].MagDB("out")}

	// Unity crossing: first point where the gain falls below 0 dB.
	s.GBW = math.NaN()
	for i := 1; i < len(pts); i++ {
		g0, g1 := pts[i-1].MagDB("out"), pts[i].MagDB("out")
		if g0 >= 0 && g1 < 0 {
			f := g0 / (g0 - g1)
			s.GBW = math.Exp(math.Log(pts[i-1].Freq) + f*(math.Log(pts[i].Freq)-math.Log(pts[i-1].Freq)))
			ph0, ph1 := pts[i-1].PhaseDeg("out"), pts[i].PhaseDeg("out")
			s.PhaseMarginDeg = 180 + unwrapTo(ph0+f*(ph1-ph0))
			break
		}
	}
	if math.IsNaN(s.GBW) {
		return nil, fmt.Errorf("analog: no unity-gain crossing below 1 GHz (gain %g dB)", s.DCGainDB)
	}

	// Common-mode gain: stimulate both inputs (inp directly, inn through
	// the AC-shorted capacitor from the cm node).
	o.vin.ACMag = 1
	o.vcm.ACMag = 1
	cmPts, err := o.Circuit.AC([]float64{1e3})
	o.vcm.ACMag = 0
	if err != nil {
		return nil, fmt.Errorf("analog: common-mode AC: %w", err)
	}
	dmPts, err := o.Circuit.AC([]float64{1e3})
	if err != nil {
		return nil, err
	}
	cmGain := cmPts[0].Mag("out")
	dmGain := dmPts[0].Mag("out")
	if cmGain <= 0 {
		return nil, fmt.Errorf("analog: zero common-mode gain")
	}
	s.CMRRDB = 20 * math.Log10(dmGain/cmGain)
	return s, nil
}

// unwrapTo folds a phase into (-360, 0] so that 180+phase is a meaningful
// margin for an inverting two-stage loop.
func unwrapTo(ph float64) float64 {
	for ph > 0 {
		ph -= 360
	}
	for ph <= -360 {
		ph += 360
	}
	return ph
}

// PairDevices returns the matched input pair, the first target for
// mismatch studies.
func (o *OTA) PairDevices() (*device.Mosfet, *device.Mosfet) {
	return o.M1.Dev, o.M2.Dev
}

// AllDevices lists every transistor in the amplifier.
func (o *OTA) AllDevices() []*circuit.MOSFET {
	return []*circuit.MOSFET{o.M1, o.M2, o.M3, o.M4, o.MTail, o.MDrv, o.MSrc, o.MBias}
}
