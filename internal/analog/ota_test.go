package analog

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/variation"
)

func TestOTAOperatingPoint(t *testing.T) {
	o, err := NewOTA(DefaultOTA())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := o.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	vdd := o.Config.Tech.VDD
	// The DC feedback must park the output near the input common mode.
	out := sol.Voltage("out")
	if math.Abs(out-o.Config.VCM) > 0.2 {
		t.Errorf("output DC %g far from VCM %g", out, o.Config.VCM)
	}
	// Internal nodes inside the rails.
	for _, n := range []string{"n1", "n2", "tail", "nbias"} {
		v := sol.Voltage(n)
		if v < -0.05 || v > vdd+0.05 {
			t.Errorf("node %s at %g outside rails", n, v)
		}
	}
	// Tail current splits between the pair.
	i1 := o.M1.OP().ID
	i2 := o.M2.OP().ID
	it := o.MTail.OP().ID
	if !mathx.ApproxEqual(i1+i2, it, 0.05, 1e-9) {
		t.Errorf("pair currents %g+%g don't sum to tail %g", i1, i2, it)
	}
}

func TestOTASpecsPlausible(t *testing.T) {
	o, err := NewOTA(DefaultOTA())
	if err != nil {
		t.Fatal(err)
	}
	s, err := o.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if s.DCGainDB < 40 || s.DCGainDB > 100 {
		t.Errorf("DC gain %.1f dB outside the plausible two-stage band", s.DCGainDB)
	}
	if s.GBW < 1e5 || s.GBW > 1e9 {
		t.Errorf("GBW %g Hz implausible", s.GBW)
	}
	if s.PhaseMarginDeg < 20 || s.PhaseMarginDeg > 120 {
		t.Errorf("phase margin %.1f° implausible", s.PhaseMarginDeg)
	}
	if s.CMRRDB < 20 {
		t.Errorf("CMRR %.1f dB too low for a differential pair", s.CMRRDB)
	}
}

func TestOTAOffsetNominalSmall(t *testing.T) {
	o, err := NewOTA(DefaultOTA())
	if err != nil {
		t.Fatal(err)
	}
	vos, err := o.InputOffset()
	if err != nil {
		t.Fatal(err)
	}
	// Matched devices: only systematic offset remains.
	if math.Abs(vos) > 0.02 {
		t.Errorf("nominal offset %g V too large", vos)
	}
}

func TestOTAOffsetFollowsPairMismatch(t *testing.T) {
	// Injecting ΔVT on one input device must appear ~1:1 at the input.
	o, err := NewOTA(DefaultOTA())
	if err != nil {
		t.Fatal(err)
	}
	base, err := o.InputOffset()
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := o.PairDevices()
	d1.Mismatch = device.Mismatch{DeltaVT0: 5e-3, BetaFactor: 1}
	shifted, err := o.InputOffset()
	if err != nil {
		t.Fatal(err)
	}
	delta := math.Abs(shifted - base)
	if delta < 3e-3 || delta > 8e-3 {
		t.Errorf("5 mV pair ΔVT produced %g V of offset, want ~5 mV", delta)
	}
}

func TestOTAOffsetMonteCarlo(t *testing.T) {
	// MC offset σ should be close to √2 × single-device σVT of the pair
	// (load mismatch adds on top).
	cfg := DefaultOTA()
	res, err := variation.MonteCarlo(60, 9, func(rng *mathx.RNG, _ int) (float64, error) {
		o, err := NewOTA(cfg)
		if err != nil {
			return 0, err
		}
		for _, m := range o.AllDevices() {
			m.Dev.Mismatch = variation.SampleMismatch(cfg.Tech, m.Dev.Params.W, m.Dev.Params.L, rng)
		}
		return o.InputOffset()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures > 3 {
		t.Fatalf("%d MC trials failed", res.Failures)
	}
	sigma := res.StdDev()
	pairSigma := cfg.Tech.SigmaVT(cfg.WPair, 2*cfg.Tech.Lmin, 0)
	if sigma < 0.5*pairSigma || sigma > 4*pairSigma {
		t.Errorf("offset σ %g vs pair σVT %g out of band", sigma, pairSigma)
	}
}

func TestOTAGainDegradesWithAging(t *testing.T) {
	fresh, err := NewOTA(DefaultOTA())
	if err != nil {
		t.Fatal(err)
	}
	sF, err := fresh.Measure()
	if err != nil {
		t.Fatal(err)
	}
	aged, err := NewOTA(DefaultOTA())
	if err != nil {
		t.Fatal(err)
	}
	// Pure HCI output-conductance degradation on the second stage: the
	// interface states near the drains double the channel-length
	// modulation, halving the stage's output resistance — a clean ~6 dB
	// gain loss without the bias-current confound (threshold shifts lower
	// the currents, which *raises* gm/I and can mask the loss).
	for _, m := range []*device.Mosfet{aged.MDrv.Dev, aged.MSrc.Dev} {
		d := device.FreshDamage()
		d.LambdaFactor = 2.0
		m.Damage = d
	}
	sA, err := aged.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if sA.DCGainDB >= sF.DCGainDB-3 {
		t.Errorf("doubled output-stage λ should cost ~6 dB: fresh %.1f dB, aged %.1f dB",
			sF.DCGainDB, sA.DCGainDB)
	}
}

func TestOTAValidation(t *testing.T) {
	bad := DefaultOTA()
	bad.CC = 0
	if _, err := NewOTA(bad); err == nil {
		t.Error("zero Miller cap accepted")
	}
	bad = DefaultOTA()
	bad.Tech = nil
	if _, err := NewOTA(bad); err == nil {
		t.Error("missing tech accepted")
	}
}
