package variation

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
)

// CornerByName returns the named standard corner at the given 3σ levels
// (see StandardCorners); ok is false for an unknown name.
func CornerByName(name string, sigmaVT, sigmaBeta float64) (Corner, bool) {
	for _, co := range StandardCorners(sigmaVT, sigmaBeta) {
		if co.Name == name {
			return co, true
		}
	}
	return Corner{}, false
}

// ApplyRandomMismatchAtCorner samples fresh local mismatch for every
// MOSFET on top of a named die corner's per-polarity shift — the
// composition corner-pinned Monte-Carlo uses: the systematic component
// is held at the corner while the Pelgrom part still varies per die.
// The RNG draw order matches ApplyRandomMismatch, so a TT corner at
// zero sigma reproduces the nominal campaign bit-for-bit.
func ApplyRandomMismatchAtCorner(c *circuit.Circuit, tech *device.Technology, co Corner, rng *mathx.RNG) {
	for _, m := range c.MOSFETs() {
		mm := SampleMismatch(tech, m.Dev.Params.W, m.Dev.Params.L, rng)
		if m.Dev.Params.Type == device.PMOS {
			mm.DeltaVT0 += co.DeltaVTP
			mm.BetaFactor *= co.BetaP
		} else {
			mm.DeltaVT0 += co.DeltaVTN
			mm.BetaFactor *= co.BetaN
		}
		m.Dev.Mismatch = mm
	}
}

// ResizeMOSFET re-derives a MOSFET's parameter set at scale× its current
// width. The parameters are rebuilt through the technology's parameter
// constructors rather than patched in place, because β = KP·W/L is baked
// into the card at construction — mutating W alone would leave the
// current factor stale. Mismatch and accumulated damage are preserved;
// the new width is returned.
func ResizeMOSFET(m *circuit.MOSFET, tech *device.Technology, tempK, scale float64) float64 {
	if scale <= 0 {
		panic(fmt.Sprintf("variation: non-positive resize scale %g", scale))
	}
	p := m.Dev.Params
	w := p.W * scale
	if p.Type == device.PMOS {
		m.Dev.Params = tech.PMOSParams(w, p.L, tempK)
	} else {
		m.Dev.Params = tech.NMOSParams(w, p.L, tempK)
	}
	return w
}

// CenteringStep is one point of a design-centering trajectory.
type CenteringStep struct {
	// Iteration numbers the accepted move (0 is the uncentered baseline).
	Iteration int `json:"iteration"`
	// Device is the resized device ("" at the baseline point) and Scale
	// its cumulative width scale after the move.
	Device string  `json:"device,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	// Yield is the spec yield at this sizing (NaN dies count as rejects).
	Yield YieldEstimate `json:"yield"`
	// Mean and Sigma summarise the metric distribution at this sizing.
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
}

// CenteringResult is the outcome of a greedy design-centering search.
type CenteringResult struct {
	// Baseline and Final are the first and last trajectory points.
	Baseline, Final CenteringStep
	// Trajectory holds every accepted point, baseline first.
	Trajectory []CenteringStep
	// Scales maps each device to its final cumulative width scale
	// (1 when untouched).
	Scales map[string]float64
	// Converged reports the search stopped because no candidate improved
	// (as opposed to hitting MaxIters).
	Converged bool
}

// Centering is a greedy coordinate-descent design-centering search
// (paper §4.2: sizing against variability — widening a device shrinks
// its Pelgrom σ as 1/√(WL) at the cost of area). Each iteration
// evaluates widening and narrowing every candidate device by Step and
// accepts the best improving move; candidates are compared with common
// random numbers (every evaluation reuses the same seed), so the
// comparison is paired, deterministic and independent of evaluation
// order.
type Centering struct {
	// Devices lists the move axes, evaluated in sorted order for
	// determinism. An entry is either a single MOSFET name or several
	// names joined by '+' (e.g. "M1+M2"): a group is resized as one
	// move, which is how matched pairs must be driven — widening one
	// side of a differential pair alone trades its Pelgrom σ for a
	// systematic offset and loses. No device may appear in two entries.
	Devices []string
	// Spec is the pass window of the monitored metric.
	Spec Spec
	// Step is the width scale of one move (> 1); MaxScale bounds any
	// device's cumulative scale to [1/MaxScale, MaxScale].
	Step, MaxScale float64
	// MaxIters bounds the number of accepted moves.
	MaxIters int
	// Evaluate measures the metric distribution at the given sizing
	// (device → cumulative width scale). Implementations must be
	// deterministic in the sizing: the optimizer re-evaluates and
	// compares across iterations.
	Evaluate func(ctx context.Context, scales map[string]float64) (*MCResult, error)
}

// Run executes the search from the all-ones sizing. The context is
// checked between candidate evaluations; cancellation returns the
// trajectory so far with ErrCancelled.
func (c *Centering) Run(ctx context.Context) (*CenteringResult, error) {
	if c.Evaluate == nil || len(c.Devices) == 0 {
		return nil, fmt.Errorf("variation: centering needs devices and an evaluator")
	}
	if c.Step <= 1 || c.MaxScale < c.Step || c.MaxIters < 1 {
		return nil, fmt.Errorf("variation: centering needs step > 1, max_scale >= step, max_iters >= 1")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	devices := append([]string(nil), c.Devices...)
	sort.Strings(devices)
	groups := make(map[string][]string, len(devices))
	scales := make(map[string]float64)
	for _, d := range devices {
		members := strings.Split(d, "+")
		for _, m := range members {
			if _, dup := scales[m]; dup {
				return nil, fmt.Errorf("variation: centering device %q appears in more than one group", m)
			}
			scales[m] = 1
		}
		groups[d] = members
	}
	base, err := c.point(ctx, 0, "", 0, scales)
	if err != nil {
		return nil, err
	}
	res := &CenteringResult{Baseline: base, Trajectory: []CenteringStep{base}, Scales: scales}
	best := base

	for iter := 1; iter <= c.MaxIters; iter++ {
		type move struct {
			device string
			scale  float64 // candidate cumulative scale
			step   CenteringStep
		}
		var winner *move
		for _, d := range devices {
			for _, factor := range []float64{c.Step, 1 / c.Step} {
				// Group members always move together, so they share one
				// cumulative scale; read it off the first member.
				cand := scales[groups[d][0]] * factor
				if cand > c.MaxScale || cand < 1/c.MaxScale {
					continue
				}
				if err := ctx.Err(); err != nil {
					res.Final = best
					return res, fmt.Errorf("variation: centering: %w", ErrCancelled)
				}
				trial := cloneScales(scales)
				for _, m := range groups[d] {
					trial[m] = cand
				}
				st, err := c.point(ctx, iter, d, cand, trial)
				if err != nil {
					return nil, fmt.Errorf("variation: centering candidate %s×%.3g: %w", d, cand, err)
				}
				if winner == nil || betterStep(st, winner.step) {
					winner = &move{device: d, scale: cand, step: st}
				}
			}
		}
		if winner == nil || !betterStep(winner.step, best) {
			res.Converged = true
			break
		}
		for _, m := range groups[winner.device] {
			scales[m] = winner.scale
		}
		best = winner.step
		res.Trajectory = append(res.Trajectory, best)
	}
	res.Final = best
	res.Scales = scales
	return res, nil
}

// point evaluates one sizing into a trajectory step.
func (c *Centering) point(ctx context.Context, iter int, dev string, scale float64, scales map[string]float64) (CenteringStep, error) {
	r, err := c.Evaluate(ctx, scales)
	if err != nil {
		return CenteringStep{}, err
	}
	st := CenteringStep{
		Iteration: iter, Device: dev, Scale: scale,
		Mean: r.Mean(), Sigma: r.StdDev(),
	}
	if r.Stats != nil {
		st.Yield = r.Stats.Yield()
	} else {
		y := EstimateYield(r.Values, c.Spec)
		// NaN dies are measured rejects: count them in the denominator,
		// consistent with MCStats.Yield.
		st.Yield = YieldFromCounts(y.Pass, y.Total+r.NaNs)
	}
	return st, nil
}

// betterStep orders candidate steps: higher yield wins; ties break on
// the larger σ-margin proxy (smaller σ at equal yield means more margin
// to the spec edges), then on device name and upsizing for determinism.
func betterStep(a, b CenteringStep) bool {
	if a.Yield.Yield != b.Yield.Yield {
		return a.Yield.Yield > b.Yield.Yield
	}
	as, bs := a.Sigma, b.Sigma
	aOK, bOK := !math.IsNaN(as) && as > 0, !math.IsNaN(bs) && bs > 0
	if aOK && bOK && as != bs {
		return as < bs
	}
	if aOK != bOK {
		return aOK
	}
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	return a.Scale > b.Scale
}

func cloneScales(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
