package variation

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestLatinHypercubeStratification(t *testing.T) {
	const n, dims = 64, 5
	s := LatinHypercube(n, dims, 3)
	if len(s) != n || len(s[0]) != dims {
		t.Fatalf("shape %d×%d", len(s), len(s[0]))
	}
	// Exactly one sample per stratum in every dimension.
	for d := 0; d < dims; d++ {
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := s[i][d]
			if v < 0 || v >= 1 {
				t.Fatalf("sample %g out of [0,1)", v)
			}
			bin := int(v * n)
			if seen[bin] {
				t.Fatalf("dimension %d has two samples in stratum %d", d, bin)
			}
			seen[bin] = true
		}
	}
}

func TestLatinHypercubeDeterministic(t *testing.T) {
	a := LatinHypercube(16, 3, 7)
	b := LatinHypercube(16, 3, 7)
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("LHS not reproducible")
			}
		}
	}
}

func TestLHSNormalsMoments(t *testing.T) {
	s := LHSNormals(512, 4, 9)
	for d := 0; d < 4; d++ {
		var run mathx.Running
		for i := range s {
			run.Add(s[i][d])
		}
		// Stratification nails the marginal much tighter than sqrt(n) MC.
		if math.Abs(run.Mean()) > 0.02 {
			t.Errorf("dim %d mean %g", d, run.Mean())
		}
		if math.Abs(run.StdDev()-1) > 0.05 {
			t.Errorf("dim %d std %g", d, run.StdDev())
		}
	}
}

func TestLHSReducesEstimatorVariance(t *testing.T) {
	// Estimate E[max_i |x_i|] over 8 dimensions with batches of 25
	// samples; the LHS batch means must scatter less than plain MC.
	const dims, batch, reps = 8, 25, 40
	statistic := func(rows [][]float64) float64 {
		total := 0.0
		for _, row := range rows {
			worst := 0.0
			for _, v := range row {
				if a := math.Abs(v); a > worst {
					worst = a
				}
			}
			total += worst
		}
		return total / float64(len(rows))
	}
	var mcMeans, lhsMeans mathx.Running
	for r := uint64(0); r < reps; r++ {
		rng := mathx.NewRNG(1000 + r)
		mcRows := make([][]float64, batch)
		for i := range mcRows {
			row := make([]float64, dims)
			for d := range row {
				row[d] = rng.Norm()
			}
			mcRows[i] = row
		}
		mcMeans.Add(statistic(mcRows))
		lhsMeans.Add(statistic(LHSNormals(batch, dims, 2000+r)))
	}
	if lhsMeans.StdDev() >= mcMeans.StdDev() {
		t.Errorf("LHS estimator σ %g not below MC %g", lhsMeans.StdDev(), mcMeans.StdDev())
	}
}

func TestLatinHypercubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LatinHypercube(0, 3, 1)
}
