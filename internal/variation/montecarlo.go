package variation

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// Trial is one Monte-Carlo evaluation. It receives a private, reproducible
// RNG stream and the trial index, and returns the sampled metric. Returning
// an error marks the trial failed (counted, not fatal).
type Trial func(rng *mathx.RNG, i int) (float64, error)

// MCResult is the outcome of a Monte-Carlo run. Values holds the metric of
// every successful trial in trial order (failed trials are skipped).
type MCResult struct {
	Values []float64
	// Failures counts trials that ran but returned an error or panicked —
	// the simulator could not produce a result at all (non-convergence,
	// bad topology, model panic).
	Failures int
	// NaNs counts trials that returned NaN without an error — the
	// simulation ran but the metric was undefined. Distinguishing the two
	// matters for yield accounting: a NaN die is a measured reject, an
	// errored trial is missing data.
	NaNs int
	// Cancelled counts trials that never ran because the run's context
	// was cancelled. Values/Failures/NaNs then describe a partial run:
	// Cancelled + NaNs + Failures + len(Values) == N always holds.
	Cancelled int
	// Errors holds one structured record per failed trial, in trial
	// order; len(Errors) == Failures.
	Errors []*TrialError
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
	// N is the requested trial count.
	N int
	// Stats is the mergeable statistical summary of the run, set by the
	// Campaign engine (and usable standalone via MCStats.Merge). When
	// Values is empty — sharded or resumed campaigns don't ship per-trial
	// values — Mean/StdDev/Quantile/Completed answer from Stats instead.
	Stats *MCStats
	// Resumed counts chunks restored from checkpoints instead of re-run.
	Resumed int

	// sorted caches an ascending copy of Values for Quantile; sortedN
	// records the length it was built for. The cache is rebuilt when the
	// length changes and must be explicitly invalidated (Invalidate or
	// SetValues) when Values is replaced at unchanged length — length
	// alone cannot detect that mutation.
	sorted  []float64
	sortedN int
}

// Append adds a successful trial value, invalidating the quantile cache.
func (r *MCResult) Append(v float64) {
	r.Values = append(r.Values, v)
	r.Invalidate()
}

// SetValues replaces the value set, invalidating the quantile cache —
// also when the new slice has the same length as the old one, which the
// length-keyed rebuild check cannot detect on its own. Snapshot/restore
// paths that swap Values wholesale must use this (or call Invalidate)
// rather than assigning the field directly.
func (r *MCResult) SetValues(vs []float64) {
	r.Values = vs
	r.Invalidate()
}

// Invalidate drops the quantile cache. Any code that mutates Values in
// place or replaces it by direct field assignment must call this before
// the next Quantile read.
func (r *MCResult) Invalidate() {
	r.sorted = nil
	r.sortedN = 0
}

// Mean returns the sample mean of the collected values (NaN when no trial
// succeeded). Without per-trial values it answers from the merged Stats.
func (r *MCResult) Mean() float64 {
	if len(r.Values) == 0 && r.Stats != nil {
		return r.Stats.Mean()
	}
	return mathx.Mean(r.Values)
}

// StdDev returns the sample standard deviation (NaN when no trial
// succeeded). Without per-trial values it answers from the merged Stats.
func (r *MCResult) StdDev() float64 {
	if len(r.Values) == 0 && r.Stats != nil {
		return r.Stats.StdDev()
	}
	return mathx.StdDev(r.Values)
}

// Quantile returns the p-quantile of the collected values, or NaN when no
// trial succeeded — consistent with Mean/StdDev rather than panicking.
// The sorted order is computed once and cached, so reading a whole family
// of quantiles (yield reports read p50/p95/p99/…) costs one sort total
// instead of one per call; Append/SetValues/Invalidate drop the cache.
// Without per-trial values the sketch in Stats answers with bounded rank
// error.
func (r *MCResult) Quantile(p float64) float64 {
	if len(r.Values) == 0 {
		if r.Stats != nil {
			return r.Stats.Quantile(p)
		}
		return math.NaN()
	}
	if r.sorted == nil || r.sortedN != len(r.Values) {
		r.sorted = append(r.sorted[:0], r.Values...)
		sort.Float64s(r.sorted)
		r.sortedN = len(r.Values)
	}
	return mathx.QuantileSorted(r.sorted, p)
}

// Completed returns the number of trials that actually ran to a verdict.
func (r *MCResult) Completed() int {
	if r.Stats != nil {
		return r.Stats.Completed()
	}
	return len(r.Values) + r.NaNs + r.Failures
}

// Merge folds other into r as mergeable statistics: both results'
// Stats (derived from Values on demand) combine exactly for moments and
// counts, with bounded-error quantiles. Per-trial Values and Errors are
// not carried over — a merged result reports from Stats. Merge results in
// ascending shard order for bit-determinism across runs.
func (r *MCResult) Merge(other *MCResult) {
	if other == nil {
		return
	}
	if r.Stats == nil {
		r.Stats = statsFromValues(r)
	}
	os := other.Stats
	if os == nil {
		os = statsFromValues(other)
	}
	r.Stats.Merge(os)
	r.N += other.N
	r.NaNs = r.Stats.NaNs
	r.Failures = r.Stats.Failures
	r.Cancelled += other.Cancelled
	r.Resumed += other.Resumed
	if other.Elapsed > r.Elapsed {
		r.Elapsed = other.Elapsed // shards run concurrently: wall time is the max
	}
	r.SetValues(nil)
	r.Errors = nil
}

// statsFromValues derives an MCStats from a result that only carries
// per-trial values (a pre-campaign MCResult).
func statsFromValues(r *MCResult) *MCStats {
	st := &MCStats{NaNs: r.NaNs}
	for _, v := range r.Values {
		st.addValue(v, false)
	}
	for _, te := range r.Errors {
		st.addFailure(te)
	}
	st.Failures = r.Failures // trust the counter even if Errors were trimmed
	return st
}

// ErrorsByKind tallies the structured failures by taxonomy kind.
func (r *MCResult) ErrorsByKind() map[FailureKind]int { return CountByKind(r.Errors) }

// MonteCarlo is MonteCarloCtx with context.Background().
//
// Deprecated: call MonteCarloCtx so the run can be cancelled or bounded
// by a deadline; this wrapper remains for source compatibility only.
func MonteCarlo(n int, seed uint64, trial Trial) (*MCResult, error) {
	return MonteCarloCtx(context.Background(), n, seed, trial)
}

// MonteCarloCtx runs n trials with the given seed. Trials execute in
// parallel but every trial's RNG stream depends only on (seed, index), so
// results are bit-identical regardless of GOMAXPROCS; n <= 0 is an error.
// A panicking trial is recovered inside its worker and recorded as a
// structured *TrialError instead of crashing the process. When ctx is
// cancelled the dispatcher stops handing out work, the workers drain, and
// the partial result is returned with accurate Failures/NaNs/Cancelled
// counts alongside an error wrapping ErrCancelled.
func MonteCarloCtx(ctx context.Context, n int, seed uint64, trial Trial) (*MCResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("variation: MonteCarlo needs n > 0, got %d", n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	root := mathx.NewRNG(seed)
	type slot struct {
		value float64
		ok    bool
		nan   bool
		done  bool
		err   *TrialError
	}
	slots := make([]slot, n)
	m := met.Load()
	// runOne executes a single trial with panic isolation: a recovered
	// panic fills the slot with a structured error and the worker moves on
	// to the next trial. Per-trial latency is recorded here in the worker
	// (panicking trials included); outcome counters are tallied once during
	// result assembly.
	runOne := func(i int) {
		var sp obs.Span
		if m != nil {
			sp = obs.StartSpan(m.trialSeconds)
		}
		defer func() {
			sp.End()
			if r := recover(); r != nil {
				slots[i] = slot{done: true, err: &TrialError{
					Index: i, Phase: "trial",
					Cause: &PanicError{Value: r, Stack: debug.Stack()},
				}}
			}
		}()
		rng := root.Split(uint64(i))
		v, err := trial(rng, i)
		switch {
		case err != nil:
			slots[i] = slot{done: true, err: &TrialError{Index: i, Phase: "trial", Cause: err}}
		case math.IsNaN(v):
			slots[i] = slot{done: true, nan: true}
		default:
			slots[i] = slot{done: true, value: v, ok: true}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					// Cancelled after dispatch: leave the slot unrun.
					continue
				}
				runOne(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	res := &MCResult{N: n, Values: make([]float64, 0, n)}
	for _, s := range slots {
		switch {
		case s.ok:
			res.Values = append(res.Values, s.value)
		case s.nan:
			res.NaNs++
		case s.done:
			res.Failures++
			res.Errors = append(res.Errors, s.err)
		default:
			res.Cancelled++
		}
	}
	res.Elapsed = time.Since(start)
	if m != nil {
		m.record(res)
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("%w after %d/%d trials: %v", ErrCancelled, res.Completed(), n, err)
	}
	return res, nil
}

// Spec is an interval specification on a metric: the circuit passes when
// Lo <= value <= Hi. Use ±Inf for one-sided specs.
type Spec struct {
	Name   string
	Lo, Hi float64
}

// Pass reports whether v meets the spec.
func (s Spec) Pass(v float64) bool { return v >= s.Lo && v <= s.Hi }

// YieldEstimate is a binomial yield with a Wilson 95 % confidence interval.
type YieldEstimate struct {
	Pass, Total int
	Yield       float64
	// Lo95 and Hi95 bound the Wilson score interval.
	Lo95, Hi95 float64
}

// String formats the estimate as "87.3% [84.1, 90.0]".
func (y YieldEstimate) String() string {
	return fmt.Sprintf("%.1f%% [%.1f, %.1f]", 100*y.Yield, 100*y.Lo95, 100*y.Hi95)
}

// EstimateYield computes the fraction of values meeting spec with a Wilson
// 95 % interval. Failed (absent) trials are not counted; pass total
// separately if they should count as fails.
func EstimateYield(values []float64, spec Spec) YieldEstimate {
	pass := 0
	for _, v := range values {
		if spec.Pass(v) {
			pass++
		}
	}
	return YieldFromCounts(pass, len(values))
}

// YieldFromCounts computes the Wilson interval for pass successes out of
// total trials.
func YieldFromCounts(pass, total int) YieldEstimate {
	y := YieldEstimate{Pass: pass, Total: total}
	if total == 0 {
		return y
	}
	p := float64(pass) / float64(total)
	y.Yield = p
	const z = 1.959963984540054 // 97.5th normal percentile
	n := float64(total)
	denom := 1 + z*z/n
	centre := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	y.Lo95 = math.Max(0, centre-half)
	y.Hi95 = math.Min(1, centre+half)
	return y
}
