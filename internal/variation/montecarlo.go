package variation

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/mathx"
)

// Trial is one Monte-Carlo evaluation. It receives a private, reproducible
// RNG stream and the trial index, and returns the sampled metric. Returning
// an error marks the trial failed (counted, not fatal).
type Trial func(rng *mathx.RNG, i int) (float64, error)

// MCResult is the outcome of a Monte-Carlo run. Values holds the metric of
// every successful trial in trial order (failed trials are skipped).
type MCResult struct {
	Values []float64
	// Failures counts trials that returned an error — the simulator could
	// not produce a result at all (non-convergence, bad topology).
	Failures int
	// NaNs counts trials that returned NaN without an error — the
	// simulation ran but the metric was undefined. Distinguishing the two
	// matters for yield accounting: a NaN die is a measured reject, an
	// errored trial is missing data.
	NaNs int
	// N is the requested trial count.
	N int
}

// Mean returns the sample mean of the collected values.
func (r *MCResult) Mean() float64 { return mathx.Mean(r.Values) }

// StdDev returns the sample standard deviation.
func (r *MCResult) StdDev() float64 { return mathx.StdDev(r.Values) }

// Quantile returns the p-quantile of the collected values.
func (r *MCResult) Quantile(p float64) float64 { return mathx.Quantile(r.Values, p) }

// MonteCarlo runs n trials with the given seed. Trials execute in parallel
// but every trial's RNG stream depends only on (seed, index), so results
// are bit-identical regardless of GOMAXPROCS. Only trial errors are
// tolerated; n <= 0 is an error.
func MonteCarlo(n int, seed uint64, trial Trial) (*MCResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("variation: MonteCarlo needs n > 0, got %d", n)
	}
	root := mathx.NewRNG(seed)
	type slot struct {
		value float64
		ok    bool
		nan   bool
	}
	slots := make([]slot, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rng := root.Split(uint64(i))
				v, err := trial(rng, i)
				switch {
				case err != nil:
					// leave the slot marked failed
				case math.IsNaN(v):
					slots[i] = slot{nan: true}
				default:
					slots[i] = slot{value: v, ok: true}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	res := &MCResult{N: n, Values: make([]float64, 0, n)}
	for _, s := range slots {
		switch {
		case s.ok:
			res.Values = append(res.Values, s.value)
		case s.nan:
			res.NaNs++
		default:
			res.Failures++
		}
	}
	return res, nil
}

// Spec is an interval specification on a metric: the circuit passes when
// Lo <= value <= Hi. Use ±Inf for one-sided specs.
type Spec struct {
	Name   string
	Lo, Hi float64
}

// Pass reports whether v meets the spec.
func (s Spec) Pass(v float64) bool { return v >= s.Lo && v <= s.Hi }

// YieldEstimate is a binomial yield with a Wilson 95 % confidence interval.
type YieldEstimate struct {
	Pass, Total int
	Yield       float64
	// Lo95 and Hi95 bound the Wilson score interval.
	Lo95, Hi95 float64
}

// String formats the estimate as "87.3% [84.1, 90.0]".
func (y YieldEstimate) String() string {
	return fmt.Sprintf("%.1f%% [%.1f, %.1f]", 100*y.Yield, 100*y.Lo95, 100*y.Hi95)
}

// EstimateYield computes the fraction of values meeting spec with a Wilson
// 95 % interval. Failed (absent) trials are not counted; pass total
// separately if they should count as fails.
func EstimateYield(values []float64, spec Spec) YieldEstimate {
	pass := 0
	for _, v := range values {
		if spec.Pass(v) {
			pass++
		}
	}
	return YieldFromCounts(pass, len(values))
}

// YieldFromCounts computes the Wilson interval for pass successes out of
// total trials.
func YieldFromCounts(pass, total int) YieldEstimate {
	y := YieldEstimate{Pass: pass, Total: total}
	if total == 0 {
		return y
	}
	p := float64(pass) / float64(total)
	y.Yield = p
	const z = 1.959963984540054 // 97.5th normal percentile
	n := float64(total)
	denom := 1 + z*z/n
	centre := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	y.Lo95 = math.Max(0, centre-half)
	y.Hi95 = math.Min(1, centre+half)
	return y
}
