package variation

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
)

func TestSamplePairMatchesEq1(t *testing.T) {
	tech := device.MustTech("180nm")
	rng := mathx.NewRNG(1)
	w, l, d := 2e-6, 0.5e-6, 10e-6
	var run mathx.Running
	for i := 0; i < 100000; i++ {
		run.Add(SamplePairDeltaVT(tech, w, l, d, rng))
	}
	want := tech.SigmaVT(w, l, d)
	if !mathx.ApproxEqual(run.StdDev(), want, 0.02, 0) {
		t.Errorf("sampled σ = %g, Eq. 1 says %g", run.StdDev(), want)
	}
	if math.Abs(run.Mean()) > want/50 {
		t.Errorf("mismatch mean %g not ~0", run.Mean())
	}
}

func TestSingleDeviceSigmaIsPairOverSqrt2(t *testing.T) {
	tech := device.MustTech("90nm")
	rng := mathx.NewRNG(2)
	w, l := 1e-6, 0.1e-6
	var run mathx.Running
	for i := 0; i < 100000; i++ {
		run.Add(SampleMismatch(tech, w, l, rng).DeltaVT0)
	}
	want := tech.SigmaVT(w, l, 0) / math.Sqrt2
	if !mathx.ApproxEqual(run.StdDev(), want, 0.02, 0) {
		t.Errorf("single-device σ = %g, want %g", run.StdDev(), want)
	}
	// The difference of two independent single-device samples must
	// reproduce the pair sigma.
	rng2 := mathx.NewRNG(3)
	var diff mathx.Running
	for i := 0; i < 100000; i++ {
		a := SampleMismatch(tech, w, l, rng2).DeltaVT0
		b := SampleMismatch(tech, w, l, rng2).DeltaVT0
		diff.Add(a - b)
	}
	if !mathx.ApproxEqual(diff.StdDev(), tech.SigmaVT(w, l, 0), 0.02, 0) {
		t.Errorf("pair reconstruction σ = %g, want %g", diff.StdDev(), tech.SigmaVT(w, l, 0))
	}
}

func TestLERGrowsWithScaling(t *testing.T) {
	oldTech := device.MustTech("180nm")
	newTech := device.MustTech("45nm")
	w := 0.5e-6
	if LERSigmaVT(newTech, w) <= LERSigmaVT(oldTech, w) {
		t.Error("LER should worsen with scaling")
	}
	// Wider devices average LER down as 1/sqrt(W).
	s1 := LERSigmaVT(newTech, 0.25e-6)
	s2 := LERSigmaVT(newTech, 1e-6)
	if !mathx.ApproxEqual(s1/s2, 2, 1e-9, 0) {
		t.Errorf("LER width scaling ratio = %g, want 2", s1/s2)
	}
}

func TestApplyRandomMismatch(t *testing.T) {
	tech := device.MustTech("65nm")
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(1.1))
	for _, nm := range []string{"M1", "M2", "M3"} {
		c.AddMOSFET(nm, "vdd", "vdd", "0", "0", device.NewMosfet(tech.NMOSParams(1e-6, 65e-9, 300)))
	}
	rng := mathx.NewRNG(7)
	corner := GlobalCorner{DeltaVT0: 0.05, BetaFactor: 0.9}
	ApplyRandomMismatch(c, tech, corner, rng)
	seen := map[float64]bool{}
	for _, m := range c.MOSFETs() {
		dv := m.Dev.Mismatch.DeltaVT0
		if seen[dv] {
			t.Error("two devices got identical mismatch — RNG reuse?")
		}
		seen[dv] = true
		// The global corner must dominate the local sigma here (50 mV vs
		// ~2 mV), so all shifts should be clearly positive.
		if dv < 0.02 {
			t.Errorf("corner not applied: DeltaVT0 = %g", dv)
		}
		if m.Dev.Mismatch.BetaFactor > 1.0 {
			t.Errorf("corner beta not applied: %g", m.Dev.Mismatch.BetaFactor)
		}
	}
	ResetMismatch(c)
	for _, m := range c.MOSFETs() {
		if m.Dev.Mismatch != device.NominalMismatch() {
			t.Error("ResetMismatch did not restore nominal")
		}
	}
}

func TestMonteCarloDeterministicAcrossRuns(t *testing.T) {
	trial := func(rng *mathx.RNG, i int) (float64, error) {
		return rng.Norm() + float64(i)*1e-9, nil
	}
	a, err := MonteCarlo(500, 42, trial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(500, 42, trial)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("trial %d differs across runs", i)
		}
	}
	c, _ := MonteCarlo(500, 43, trial)
	same := 0
	for i := range a.Values {
		if a.Values[i] == c.Values[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/500 identical values", same)
	}
}

func TestMonteCarloCountsFailures(t *testing.T) {
	res, err := MonteCarlo(100, 1, func(rng *mathx.RNG, i int) (float64, error) {
		if i%10 == 0 {
			return 0, errors.New("boom")
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 10 || len(res.Values) != 90 {
		t.Errorf("failures = %d, values = %d", res.Failures, len(res.Values))
	}
	if res.NaNs != 0 {
		t.Errorf("error trials must not count as NaNs, got %d", res.NaNs)
	}
}

func TestMonteCarloRejectsBadN(t *testing.T) {
	if _, err := MonteCarlo(0, 1, func(*mathx.RNG, int) (float64, error) { return 0, nil }); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestMonteCarloNaNCountedSeparately(t *testing.T) {
	res, err := MonteCarlo(10, 1, func(rng *mathx.RNG, i int) (float64, error) {
		return math.NaN(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NaNs != 10 || res.Failures != 0 {
		t.Errorf("NaN results should count as NaNs, got NaNs=%d failures=%d", res.NaNs, res.Failures)
	}
	if len(res.Values) != 0 {
		t.Errorf("NaN results must not enter Values, got %d", len(res.Values))
	}
}

func TestMonteCarloMixedNaNAndErrorTrials(t *testing.T) {
	res, err := MonteCarlo(30, 1, func(rng *mathx.RNG, i int) (float64, error) {
		switch i % 3 {
		case 0:
			return 0, errors.New("solver blew up")
		case 1:
			return math.NaN(), nil
		}
		return float64(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 10 || res.NaNs != 10 || len(res.Values) != 10 {
		t.Errorf("failures=%d NaNs=%d values=%d, want 10/10/10",
			res.Failures, res.NaNs, len(res.Values))
	}
}

func TestMonteCarloStatisticsConverge(t *testing.T) {
	res, err := MonteCarlo(200000, 5, func(rng *mathx.RNG, _ int) (float64, error) {
		return 3 + 2*rng.Norm(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(res.Mean(), 3, 0.01, 0) {
		t.Errorf("mean = %g", res.Mean())
	}
	if !mathx.ApproxEqual(res.StdDev(), 2, 0.02, 0) {
		t.Errorf("std = %g", res.StdDev())
	}
	if !mathx.ApproxEqual(res.Quantile(0.5), 3, 0.02, 0) {
		t.Errorf("median = %g", res.Quantile(0.5))
	}
}

func TestSpecPass(t *testing.T) {
	s := Spec{Name: "gain", Lo: 10, Hi: 20}
	if !s.Pass(15) || s.Pass(9) || s.Pass(21) {
		t.Error("Spec.Pass broken")
	}
	open := Spec{Name: "inl", Lo: math.Inf(-1), Hi: 0.5}
	if !open.Pass(-100) || open.Pass(0.6) {
		t.Error("one-sided spec broken")
	}
}

func TestYieldEstimate(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i) // 0..99
	}
	y := EstimateYield(values, Spec{Lo: 0, Hi: 49})
	if y.Pass != 50 || y.Total != 100 {
		t.Fatalf("pass=%d total=%d", y.Pass, y.Total)
	}
	if !mathx.ApproxEqual(y.Yield, 0.5, 1e-12, 0) {
		t.Errorf("yield = %g", y.Yield)
	}
	if y.Lo95 >= 0.5 || y.Hi95 <= 0.5 {
		t.Errorf("CI [%g, %g] must straddle 0.5", y.Lo95, y.Hi95)
	}
	if y.Hi95-y.Lo95 > 0.25 {
		t.Errorf("CI width %g too wide for n=100", y.Hi95-y.Lo95)
	}
}

func TestYieldCIProperty(t *testing.T) {
	// The Wilson interval is always inside [0, 1] and contains the point
	// estimate.
	if err := quick.Check(func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		total := 1 + r.Intn(1000)
		pass := r.Intn(total + 1)
		y := YieldFromCounts(pass, total)
		return y.Lo95 >= 0 && y.Hi95 <= 1 && y.Lo95 <= y.Yield+1e-12 && y.Hi95 >= y.Yield-1e-12
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestYieldFromZeroTotal(t *testing.T) {
	y := YieldFromCounts(0, 0)
	if y.Yield != 0 || y.Lo95 != 0 || y.Hi95 != 0 {
		t.Error("zero-total yield should be all zeros")
	}
}

func TestGlobalCornerSampling(t *testing.T) {
	rng := mathx.NewRNG(11)
	var vts, betas mathx.Running
	for i := 0; i < 50000; i++ {
		c := SampleGlobalCorner(0.03, 0.05, rng)
		vts.Add(c.DeltaVT0)
		betas.Add(c.BetaFactor)
	}
	if !mathx.ApproxEqual(vts.StdDev(), 0.03, 0.05, 0) {
		t.Errorf("corner VT σ = %g", vts.StdDev())
	}
	if !mathx.ApproxEqual(betas.Mean(), 1, 0.01, 0) {
		t.Errorf("corner beta mean = %g", betas.Mean())
	}
}
