package variation

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
)

func batchTestCircuit(t *testing.T, tech *device.Technology) *circuit.Circuit {
	t.Helper()
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	c.AddResistor("R1", "vdd", "d1", 10e3)
	c.AddMOSFET("M2", "d1", "g", "0", "0", device.NewMosfet(tech.NMOSParams(2e-6, 2*tech.Lmin, 300)))
	c.AddMOSFET("M1", "g", "g", "0", "0", device.NewMosfet(tech.NMOSParams(1e-6, 2*tech.Lmin, 300)))
	c.AddMOSFET("M3", "d1", "d1", "vdd", "vdd", device.NewMosfet(tech.PMOSParams(4e-6, 3*tech.Lmin, 300)))
	return c
}

// TestMismatchBatchBitIdentical pins SampleTrial+ApplyTrial to the exact
// per-device state ApplyRandomMismatch produces from the same RNG stream —
// the property that lets the batched Monte-Carlo path reuse one circuit
// across trials without perturbing results.
func TestMismatchBatchBitIdentical(t *testing.T) {
	tech := device.MustTech("65nm")
	corner := GlobalCorner{DeltaVT0: 0.012, BetaFactor: 0.97}
	const trials = 16

	ref := batchTestCircuit(t, tech)
	want := make([]map[string]device.Mismatch, trials)
	for i := 0; i < trials; i++ {
		rng := mathx.NewRNG(42).Split(uint64(i))
		ApplyRandomMismatch(ref, tech, corner, rng)
		want[i] = map[string]device.Mismatch{}
		for _, m := range ref.MOSFETs() {
			want[i][m.Name()] = m.Dev.Mismatch
		}
	}

	c := batchTestCircuit(t, tech)
	b := NewMismatchBatch(c, tech, trials)
	if b.Devices() != 3 || b.Trials() != trials {
		t.Fatalf("batch shape %d devices x %d trials, want 3 x %d", b.Devices(), b.Trials(), trials)
	}
	for i := 0; i < trials; i++ {
		b.SampleTrial(i, corner, mathx.NewRNG(42).Split(uint64(i)))
	}
	// Apply out of order to prove trials are independent slots.
	for _, i := range []int{5, 0, 15, 5, 9} {
		b.ApplyTrial(i)
		for _, m := range c.MOSFETs() {
			if got := m.Dev.Mismatch; got != want[i][m.Name()] {
				t.Fatalf("trial %d dev %s: batch %+v, ApplyRandomMismatch %+v",
					i, m.Name(), got, want[i][m.Name()])
			}
		}
	}
}

// TestQuantileCache asserts MCResult.Quantile sorts once per dataset:
// repeated reads are allocation-free, and appending values invalidates the
// cached order.
func TestQuantileCache(t *testing.T) {
	r := &MCResult{}
	for i := 0; i < 1000; i++ {
		r.Append(float64((i * 7919) % 1000))
	}
	if got, want := r.Quantile(0), 0.0; got != want {
		t.Fatalf("Quantile(0) = %g, want %g", got, want)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, p := range []float64{0.05, 0.5, 0.95, 0.99} {
			r.Quantile(p)
		}
	})
	if allocs != 0 {
		t.Fatalf("cached Quantile reads allocate %.1f times, want 0", allocs)
	}
	if got, want := r.Quantile(0.5), mathx.Quantile(r.Values, 0.5); got != want {
		t.Fatalf("cached median %g, uncached %g", got, want)
	}

	// Appending must invalidate: the new maximum is visible immediately.
	r.Append(5000)
	if got := r.Quantile(1); got != 5000 {
		t.Fatalf("Quantile(1) after append = %g, want 5000", got)
	}
}
