package variation

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/mathx"
)

func TestMinAreaForOffsetRoundTrip(t *testing.T) {
	tech := device.MustTech("90nm")
	area, err := MinAreaForOffset(tech, 5e-3, 0.997, 0)
	if err != nil {
		t.Fatal(err)
	}
	if area <= 0 {
		t.Fatal("non-positive area")
	}
	// At that area, σ·z must equal the spec.
	w := math.Sqrt(area)
	sigma := tech.SigmaVT(w, w, 0)
	z := mathx.NormQuantile((1 + 0.997) / 2)
	if !mathx.ApproxEqual(sigma*z, 5e-3, 1e-9, 0) {
		t.Errorf("round trip: σ·z = %g, want 5 mV", sigma*z)
	}
}

func TestMinAreaMonteCarloConfirms(t *testing.T) {
	// Fabricate pairs at exactly the computed area and verify the yield.
	tech := device.MustTech("65nm")
	const spec, yield = 8e-3, 0.9
	area, err := MinAreaForOffset(tech, spec, yield, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := math.Sqrt(area)
	rng := mathx.NewRNG(3)
	pass, total := 0, 20000
	for i := 0; i < total; i++ {
		if math.Abs(SamplePairDeltaVT(tech, w, w, 0, rng)) < spec {
			pass++
		}
	}
	got := float64(pass) / float64(total)
	if math.Abs(got-yield) > 0.01 {
		t.Errorf("MC yield %g, want %g", got, yield)
	}
}

func TestMinAreaTighterSpecNeedsMoreArea(t *testing.T) {
	tech := device.MustTech("90nm")
	a1, err := MinAreaForOffset(tech, 10e-3, 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := MinAreaForOffset(tech, 2e-3, 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 5× tighter spec needs 25× the area.
	if !mathx.ApproxEqual(a2/a1, 25, 1e-9, 0) {
		t.Errorf("area scaling = %g, want 25", a2/a1)
	}
}

func TestMinAreaGradientDominatedFails(t *testing.T) {
	tech := device.MustTech("90nm")
	// 1 mV spec at 3σ with devices 1 mm apart: gradient 2 V/m × 1e-3 m =
	// 2 mV already exceeds the σ budget.
	if _, err := MinAreaForOffset(tech, 1e-3, 0.997, 1e-3); err == nil {
		t.Error("gradient-dominated spec accepted")
	}
}

func TestMinAreaValidation(t *testing.T) {
	tech := device.MustTech("90nm")
	if _, err := MinAreaForOffset(tech, 0, 0.9, 0); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := MinAreaForOffset(tech, 1e-3, 1.5, 0); err == nil {
		t.Error("bad yield accepted")
	}
}

func TestMirrorAccuracyTrends(t *testing.T) {
	tech := device.MustTech("90nm")
	// More overdrive → VT term shrinks.
	lowVov := MirrorAccuracy(tech, 1e-6, 1e-6, 0.1)
	highVov := MirrorAccuracy(tech, 1e-6, 1e-6, 0.4)
	if highVov >= lowVov {
		t.Errorf("overdrive should improve accuracy: %g >= %g", highVov, lowVov)
	}
	// Bigger devices → better.
	small := MirrorAccuracy(tech, 1e-6, 0.1e-6, 0.2)
	big := MirrorAccuracy(tech, 4e-6, 0.4e-6, 0.2)
	if big >= small {
		t.Errorf("area should improve accuracy: %g >= %g", big, small)
	}
}

func TestSizeMirrorForAccuracyRoundTrip(t *testing.T) {
	tech := device.MustTech("65nm")
	const target, vov = 0.01, 0.2
	area, err := SizeMirrorForAccuracy(tech, target, vov)
	if err != nil {
		t.Fatal(err)
	}
	w := math.Sqrt(area)
	if got := MirrorAccuracy(tech, w, w, vov); !mathx.ApproxEqual(got, target, 1e-9, 0) {
		t.Errorf("round trip accuracy %g, want %g", got, target)
	}
	if _, err := SizeMirrorForAccuracy(tech, 0, vov); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := SizeMirrorForAccuracy(tech, 0.01, 0); err == nil {
		t.Error("zero overdrive accepted")
	}
}

func TestSampleMismatchWithLERWiderSigma(t *testing.T) {
	tech := device.MustTech("45nm")
	w, l := 0.2e-6, 45e-9
	var plain, withLER mathx.Running
	r1 := mathx.NewRNG(1)
	r2 := mathx.NewRNG(2)
	for i := 0; i < 50000; i++ {
		plain.Add(SampleMismatch(tech, w, l, r1).DeltaVT0)
		withLER.Add(SampleMismatchWithLER(tech, w, l, r2).DeltaVT0)
	}
	if withLER.StdDev() <= plain.StdDev() {
		t.Errorf("LER should widen the distribution: %g <= %g", withLER.StdDev(), plain.StdDev())
	}
	// Quadrature check.
	want := math.Sqrt(math.Pow(tech.SigmaVT(w, l, 0), 2)+math.Pow(LERSigmaVT(tech, w), 2)) / math.Sqrt2
	if !mathx.ApproxEqual(withLER.StdDev(), want, 0.03, 0) {
		t.Errorf("σ with LER = %g, want %g", withLER.StdDev(), want)
	}
}
