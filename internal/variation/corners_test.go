package variation

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
)

func inverterCircuit(tech *device.Technology) *circuit.Circuit {
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	c.AddVSource("VIN", "in", "0", circuit.DC(tech.VDD/2))
	c.AddMOSFET("MN", "out", "in", "0", "0",
		device.NewMosfet(tech.NMOSParams(1e-6, tech.Lmin, 300)))
	c.AddMOSFET("MP", "out", "in", "vdd", "vdd",
		device.NewMosfet(tech.PMOSParams(2e-6, tech.Lmin, 300)))
	return c
}

func switchPoint(c *circuit.Circuit) (float64, error) {
	sol, err := c.OperatingPoint()
	if err != nil {
		return 0, err
	}
	return sol.Voltage("out"), nil
}

func TestStandardCornersShape(t *testing.T) {
	cs := StandardCorners(0.03, 0.05)
	if len(cs) != 5 {
		t.Fatalf("got %d corners", len(cs))
	}
	byName := map[string]Corner{}
	for _, c := range cs {
		byName[c.Name] = c
	}
	if byName["TT"].DeltaVTN != 0 || byName["TT"].BetaN != 1 {
		t.Error("TT must be nominal")
	}
	if byName["SS"].DeltaVTN <= 0 || byName["FF"].DeltaVTN >= 0 {
		t.Error("SS slow / FF fast VT signs wrong")
	}
	if byName["SF"].DeltaVTN <= 0 || byName["SF"].DeltaVTP >= 0 {
		t.Error("SF must be slow-N fast-P")
	}
}

func TestCornerSkewMovesInverterOutput(t *testing.T) {
	// At mid-rail input, an SF corner (weak nMOS, strong pMOS) pulls the
	// inverter output up; FS pulls it down. TT sits between them.
	tech := device.MustTech("90nm")
	c := inverterCircuit(tech)
	vals, err := CornerSweep(c, StandardCorners(0.04, 0.08), switchPoint)
	if err != nil {
		t.Fatal(err)
	}
	if !(vals["SF"] > vals["TT"] && vals["TT"] > vals["FS"]) {
		t.Errorf("corner ordering wrong: SF=%g TT=%g FS=%g", vals["SF"], vals["TT"], vals["FS"])
	}
	// The symmetric corners move the output far less than the skewed ones.
	ssShift := abs64(vals["SS"] - vals["TT"])
	sfShift := abs64(vals["SF"] - vals["TT"])
	if ssShift >= sfShift {
		t.Errorf("skewed corner should dominate the ratioed metric: SS %g vs SF %g", ssShift, sfShift)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestCornerSweepResetsState(t *testing.T) {
	tech := device.MustTech("90nm")
	c := inverterCircuit(tech)
	if _, err := CornerSweep(c, StandardCorners(0.05, 0.05), switchPoint); err != nil {
		t.Fatal(err)
	}
	for _, m := range c.MOSFETs() {
		if m.Dev.Mismatch != device.NominalMismatch() {
			t.Fatal("corner sweep left mismatch applied")
		}
	}
}

func TestStandardCornersPanicOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StandardCorners(-0.01, 0.05)
}
