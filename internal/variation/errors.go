package variation

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/circuit"
)

// FailureKind classifies why a trial produced no value. Large-scale
// failure-probability studies need the distinction: a convergence failure
// is a property of the sampled die (and may itself be the failure signal),
// a model panic is a bug to fix, and a cancelled trial is missing data
// that must not bias the estimate.
type FailureKind int

const (
	// FailOther is an unclassified trial error (bad topology, user error).
	FailOther FailureKind = iota
	// FailConvergence is a solver convergence failure (Newton, singular
	// MNA matrix) — the sampled die could not be biased.
	FailConvergence
	// FailPanic is a model panic recovered inside a worker goroutine.
	FailPanic
	// FailCancelled marks work abandoned because the run's context was
	// cancelled or timed out.
	FailCancelled
)

// String names the kind for reports.
func (k FailureKind) String() string {
	switch k {
	case FailConvergence:
		return "convergence"
	case FailPanic:
		return "panic"
	case FailCancelled:
		return "cancelled"
	default:
		return "other"
	}
}

// ErrCancelled is the sentinel wrapped by every error a run returns when
// it is stopped early by context cancellation or deadline. Callers test
// with errors.Is and still receive the partial result alongside it.
var ErrCancelled = errors.New("variation: run cancelled")

// PanicError carries a panic recovered from a worker goroutine, with the
// stack captured at the panic site. It converts a crash of one trial into
// data the run can account for.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack at recovery.
	Stack []byte
}

// Error formats the panic value; the stack is available on the field.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// TrialError is the structured failure record of a single trial: which
// trial, which phase of the pipeline, and the underlying cause.
type TrialError struct {
	// Index is the trial index in [0, N).
	Index int
	// Phase names the pipeline stage that failed: "build", "mismatch",
	// "age", "measure", or "trial" when the stage is opaque.
	Phase string
	// Cause is the underlying error (possibly a *PanicError).
	Cause error
}

// Error formats the record as "trial 17 [measure]: <cause>".
func (e *TrialError) Error() string {
	return fmt.Sprintf("trial %d [%s]: %v", e.Index, e.Phase, e.Cause)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *TrialError) Unwrap() error { return e.Cause }

// Kind classifies the cause.
func (e *TrialError) Kind() FailureKind { return ClassifyFailure(e.Cause) }

// ClassifyFailure maps an arbitrary trial error onto the failure
// taxonomy. It understands context cancellation, recovered panics and the
// circuit solver's convergence sentinels; everything else is FailOther.
func ClassifyFailure(err error) FailureKind {
	switch {
	case err == nil:
		return FailOther
	case errors.Is(err, ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return FailCancelled
	case errors.Is(err, circuit.ErrNoConvergence),
		errors.Is(err, circuit.ErrSingular):
		return FailConvergence
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return FailPanic
	}
	return FailOther
}

// CountByKind tallies structured trial errors by failure kind.
func CountByKind(errs []*TrialError) map[FailureKind]int {
	if len(errs) == 0 {
		return nil
	}
	out := make(map[FailureKind]int)
	for _, e := range errs {
		out[e.Kind()]++
	}
	return out
}

// CountByPhase tallies structured trial errors by pipeline phase.
func CountByPhase(errs []*TrialError) map[string]int {
	if len(errs) == 0 {
		return nil
	}
	out := make(map[string]int)
	for _, e := range errs {
		out[e.Phase]++
	}
	return out
}
