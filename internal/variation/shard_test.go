package variation

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/mathx"
)

// gaussTrial is a cheap deterministic stand-in for a die solve: one
// normal draw from the trial's private stream, with a NaN and a failure
// sprinkled in to exercise the accounting.
func gaussTrial(rng *mathx.RNG, i int) (float64, error) {
	if i == 13 {
		return 0, fmt.Errorf("synthetic failure")
	}
	if i == 29 {
		return math.NaN(), nil
	}
	return 0.6 + 0.05*rng.Norm(), nil
}

func TestChunkGridCoversTrials(t *testing.T) {
	for _, trials := range []int{1, 3, 4, 5, 255, 256, 257, 777, 1000, 4096} {
		cs := ChunkSize(trials)
		nc := NumChunks(trials)
		if cs < 1 || cs > 256 {
			t.Fatalf("trials=%d: chunk size %d", trials, cs)
		}
		covered := 0
		for i := 0; i < nc; i++ {
			from, to := ChunkRange(trials, i)
			if from != covered || to <= from {
				t.Fatalf("trials=%d chunk %d: range [%d,%d) after %d", trials, i, from, to, covered)
			}
			covered = to
		}
		if covered != trials {
			t.Fatalf("trials=%d: grid covers %d", trials, covered)
		}
	}
}

// A full-range campaign must reproduce MonteCarloCtx bit-for-bit: same
// per-trial RNG substreams, same values in trial order, same accounting.
func TestCampaignMatchesMonteCarlo(t *testing.T) {
	const n, seed = 600, 7
	mc, err := MonteCarloCtx(context.Background(), n, seed, gaussTrial)
	if err != nil {
		t.Fatal(err)
	}
	camp := &Campaign{Trials: n, Seed: seed, Trial: gaussTrial, KeepValues: true}
	cr, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Values) != len(mc.Values) {
		t.Fatalf("campaign %d values, MonteCarloCtx %d", len(cr.Values), len(mc.Values))
	}
	for i := range cr.Values {
		if cr.Values[i] != mc.Values[i] {
			t.Fatalf("value %d: %g != %g", i, cr.Values[i], mc.Values[i])
		}
	}
	if cr.Failures != mc.Failures || cr.NaNs != mc.NaNs || cr.Completed() != mc.Completed() {
		t.Fatalf("accounting: campaign (%d,%d,%d) vs mc (%d,%d,%d)",
			cr.Failures, cr.NaNs, cr.Completed(), mc.Failures, mc.NaNs, mc.Completed())
	}
	// Stats must agree with the value set they summarise (Welford vs
	// two-pass mean differ only in rounding).
	if got, want := cr.Stats.Mean(), mathx.Mean(cr.Values); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stats mean %g != values mean %g", got, want)
	}
	if int(cr.Stats.Moments.Count) != len(cr.Values) {
		t.Fatalf("stats count %d != %d values", cr.Stats.Moments.Count, len(cr.Values))
	}
}

// k-shard scatter-gather (k in {1, 4, 16}) must yield identical trial
// counts, bit-identical mean/std/pass, and quantiles within the sketch's
// rank-error bound versus the single-shard run.
func TestCampaignShardMergeBitIdentical(t *testing.T) {
	const trials, seed = 1024, 11
	spec := &Spec{Name: "v", Lo: 0.5, Hi: 0.7}
	full := &Campaign{Trials: trials, Seed: seed, Trial: gaussTrial, Spec: spec, KeepValues: true}
	ref, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), ref.Values...)
	sort.Float64s(sorted)

	nc := NumChunks(trials)
	cs := ChunkSize(trials)
	for _, k := range []int{1, 4, 16} {
		shards := k
		if shards > nc {
			shards = nc
		}
		// One chunk-stat list per shard, gathered then folded in global
		// chunk order — exactly what the jobspec scatter-gather does.
		chunkStats := make(map[int]ChunkStat)
		for s := 0; s < shards; s++ {
			firstChunk := s * nc / shards
			lastChunk := (s + 1) * nc / shards
			from := firstChunk * cs
			to := lastChunk * cs
			if to > trials {
				to = trials
			}
			camp := &Campaign{
				Trials: trials, Seed: seed, Trial: gaussTrial, Spec: spec,
				From: from, To: to,
				OnChunk: func(st ChunkStat) { chunkStats[st.Chunk] = st },
			}
			if _, err := camp.Run(context.Background()); err != nil {
				t.Fatalf("k=%d shard %d: %v", k, s, err)
			}
		}
		if len(chunkStats) != nc {
			t.Fatalf("k=%d: gathered %d/%d chunks", k, len(chunkStats), nc)
		}
		var merged MCStats
		for c := 0; c < nc; c++ {
			st := chunkStats[c]
			merged.Merge(&st.Stats)
		}
		if got, want := merged.Completed(), ref.Completed(); got != want {
			t.Fatalf("k=%d: completed %d != %d", k, got, want)
		}
		if merged.Mean() != ref.Stats.Mean() {
			t.Errorf("k=%d: mean %v != %v (not bit-identical)", k, merged.Mean(), ref.Stats.Mean())
		}
		if merged.StdDev() != ref.Stats.StdDev() {
			t.Errorf("k=%d: std %v != %v (not bit-identical)", k, merged.StdDev(), ref.Stats.StdDev())
		}
		if merged.Pass != ref.Stats.Pass {
			t.Errorf("k=%d: pass %d != %d", k, merged.Pass, ref.Stats.Pass)
		}
		if merged.Yield() != ref.Stats.Yield() {
			t.Errorf("k=%d: yield %v != %v", k, merged.Yield(), ref.Stats.Yield())
		}
		for _, p := range []float64{0.05, 0.5, 0.95} {
			est := merged.Quantile(p)
			i := sort.SearchFloat64s(sorted, est)
			if e := math.Abs(float64(i)/float64(len(sorted)) - p); e > 2.0/mathx.DefaultSketchCompression {
				t.Errorf("k=%d p=%g: rank error %.4f over bound", k, p, e)
			}
		}
	}
}

// Resuming from the first m chunk checkpoints must reproduce the
// uninterrupted run's moments bit-for-bit while re-running only the
// remaining chunks.
func TestCampaignResumeBitIdentical(t *testing.T) {
	const trials, seed = 900, 3
	var chunks []ChunkStat
	full := &Campaign{
		Trials: trials, Seed: seed, Trial: gaussTrial,
		OnChunk: func(st ChunkStat) { chunks = append(chunks, st) },
	}
	ref, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	nc := NumChunks(trials)
	if len(chunks) != nc {
		t.Fatalf("expected %d chunk checkpoints, got %d", nc, len(chunks))
	}
	for _, m := range []int{1, nc - 1, nc} {
		var reran int
		var mu sync.Mutex
		camp := &Campaign{
			Trials: trials, Seed: seed, Trial: gaussTrial,
			Resume: chunks[:m],
			OnChunk: func(ChunkStat) {
				mu.Lock()
				reran++
				mu.Unlock()
			},
		}
		res, err := camp.Run(context.Background())
		if err != nil {
			t.Fatalf("resume m=%d: %v", m, err)
		}
		if res.Resumed != m || reran != nc-m {
			t.Fatalf("m=%d: resumed %d, re-ran %d (want %d, %d)", m, res.Resumed, reran, m, nc-m)
		}
		if res.Completed() != ref.Completed() {
			t.Fatalf("m=%d: completed %d != %d", m, res.Completed(), ref.Completed())
		}
		if res.Stats.Moments != ref.Stats.Moments {
			t.Fatalf("m=%d: moments %+v != %+v (not bit-identical)", m, res.Stats.Moments, ref.Stats.Moments)
		}
	}
}

// A checkpoint from a different grid (wrong trial count) must be
// rejected, not silently merged.
func TestCampaignResumeRejectsForeignChunk(t *testing.T) {
	camp := &Campaign{
		Trials: 400, Seed: 1, Trial: gaussTrial,
		Resume: []ChunkStat{{Chunk: 0, From: 0, To: 64}}, // grid says [0,100)
	}
	if _, err := camp.Run(context.Background()); err == nil {
		t.Fatal("foreign chunk accepted")
	}
}

func TestCampaignRejectsMisalignedRange(t *testing.T) {
	camp := &Campaign{Trials: 400, Seed: 1, Trial: gaussTrial, From: 37, To: 200}
	if _, err := camp.Run(context.Background()); err == nil {
		t.Fatal("misaligned range accepted")
	}
}

// Cancellation mid-campaign returns the completed portion with exact
// accounting and never emits a checkpoint for the partial chunk.
func TestCampaignCancelPartial(t *testing.T) {
	const trials = 1024
	ctx, cancel := context.WithCancel(context.Background())
	var emitted []ChunkStat
	camp := &Campaign{
		Trials: trials, Seed: 5,
		Trial: func(rng *mathx.RNG, i int) (float64, error) {
			if i == 300 {
				cancel()
			}
			return rng.Float64(), nil
		},
		OnChunk: func(st ChunkStat) { emitted = append(emitted, st) },
	}
	res, err := camp.Run(ctx)
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if res.Cancelled == 0 || res.Completed()+res.Cancelled != trials {
		t.Fatalf("accounting: completed %d + cancelled %d != %d", res.Completed(), res.Cancelled, trials)
	}
	for _, st := range emitted {
		if got := st.Stats.Completed(); got != st.To-st.From {
			t.Fatalf("checkpoint for incomplete chunk %d: %d/%d trials", st.Chunk, got, st.To-st.From)
		}
	}
}

// Satellite regression: replacing Values at unchanged length must not
// serve stale quantiles. The cache keys on length, so a same-length
// replacement through SetValues (or Invalidate) has to drop it.
func TestQuantileCacheInvalidatedOnSameLengthReplace(t *testing.T) {
	r := &MCResult{Values: []float64{1, 2, 3, 4, 5}}
	if got := r.Quantile(0.5); got != 3 {
		t.Fatalf("median = %g, want 3", got)
	}
	r.SetValues([]float64{10, 20, 30, 40, 50}) // same length, new data
	if got := r.Quantile(0.5); got != 30 {
		t.Fatalf("stale quantile after same-length SetValues: got %g, want 30", got)
	}
	// In-place mutation + explicit Invalidate must also refresh.
	r.Values[4] = -100
	r.Invalidate()
	if got := r.Quantile(0); got != -100 {
		t.Fatalf("stale quantile after Invalidate: got %g, want -100", got)
	}
}

// Merging two value-carrying results must agree with the statistics of
// the concatenated value sets.
func TestMCResultMerge(t *testing.T) {
	a := &MCResult{N: 3, Values: []float64{1, 2, 3}}
	b := &MCResult{N: 4, Values: []float64{4, 5, 6, 7}, NaNs: 1}
	all := append(append([]float64(nil), a.Values...), b.Values...)
	a.Merge(b)
	if a.N != 7 || a.NaNs != 1 {
		t.Fatalf("merged N=%d NaNs=%d", a.N, a.NaNs)
	}
	if got, want := a.Mean(), mathx.Mean(all); math.Abs(got-want) > 1e-12 {
		t.Fatalf("merged mean %g != %g", got, want)
	}
	if got, want := a.StdDev(), mathx.StdDev(all); math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged std %g != %g", got, want)
	}
	if a.Completed() != 8 {
		t.Fatalf("merged completed %d, want 8", a.Completed())
	}
}
