package variation

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/mathx"
)

// MinAreaForOffset inverts the Pelgrom law (Eq. 1): the minimum gate area
// W·L (m²) a matched pair needs so that |ΔVT| stays below offsetSpec volts
// with the given yield (e.g. 0.997 for a ±3σ design). The distance term is
// evaluated at separation d; when the area term alone cannot meet the spec
// because the gradient term already exceeds it, an error is returned —
// the layout, not the sizing, must change.
func MinAreaForOffset(tech *device.Technology, offsetSpec, yield, d float64) (float64, error) {
	if offsetSpec <= 0 {
		return 0, fmt.Errorf("variation: non-positive offset spec %g", offsetSpec)
	}
	if yield <= 0 || yield >= 1 {
		return 0, fmt.Errorf("variation: yield %g out of (0,1)", yield)
	}
	// |ΔVT| < spec with probability `yield` for a centred normal:
	// spec = z · σ with z = Φ⁻¹((1+yield)/2).
	z := mathx.NormQuantile((1 + yield) / 2)
	sigmaMax := offsetSpec / z
	grad := tech.SVT * d
	if grad >= sigmaMax {
		return 0, fmt.Errorf("variation: gradient term %g V at D=%g m already exceeds the σ budget %g V — reduce spacing or add common-centroid layout", grad, d, sigmaMax)
	}
	// σ² = AVT²/(WL) + (SVT·D)²  =>  WL = AVT² / (σmax² − grad²).
	return tech.AVT * tech.AVT / (sigmaMax*sigmaMax - grad*grad), nil
}

// MirrorAccuracy translates a threshold mismatch into a current-mirror
// ratio error: δI/I ≈ gm/I · ΔVT ≈ 2·ΔVT/Vov in strong inversion. It
// returns the σ of the relative current error for a pair of geometry
// (w, l) at overdrive vov, combining the VT and β terms of Eq. 1 (they add
// in quadrature, being independent).
func MirrorAccuracy(tech *device.Technology, w, l, vov float64) float64 {
	if vov <= 0 {
		panic(fmt.Sprintf("variation: non-positive overdrive %g", vov))
	}
	sVT := tech.SigmaVT(w, l, 0)
	sBeta := tech.SigmaBeta(w, l)
	vtTerm := 2 * sVT / vov
	return math.Sqrt(vtTerm*vtTerm + sBeta*sBeta)
}

// SizeMirrorForAccuracy returns the gate area (m²) a current mirror needs
// for a relative current accuracy of sigmaRel at overdrive vov. Both the
// VT and β Pelgrom terms scale as 1/√(WL), so the area follows directly.
func SizeMirrorForAccuracy(tech *device.Technology, sigmaRel, vov float64) (float64, error) {
	if sigmaRel <= 0 {
		return 0, fmt.Errorf("variation: non-positive accuracy target %g", sigmaRel)
	}
	if vov <= 0 {
		return 0, fmt.Errorf("variation: non-positive overdrive %g", vov)
	}
	// σ_rel² = [ (2·AVT/vov)² + ABeta² ] / (W·L)
	vtTerm := 2 * tech.AVT / vov
	num := vtTerm*vtTerm + tech.ABeta*tech.ABeta
	return num / (sigmaRel * sigmaRel), nil
}

// SampleMismatchWithLER draws a device's local variation including the
// line-edge-roughness contribution of §2, which adds in quadrature to the
// Pelgrom area term and dominates for narrow devices in scaled nodes.
func SampleMismatchWithLER(tech *device.Technology, w, l float64, rng *mathx.RNG) device.Mismatch {
	sigmaPelgrom := tech.SigmaVT(w, l, 0) / math.Sqrt2
	sigmaLER := LERSigmaVT(tech, w) / math.Sqrt2
	sigmaVT := math.Sqrt(sigmaPelgrom*sigmaPelgrom + sigmaLER*sigmaLER)
	sigmaBeta := tech.SigmaBeta(w, l) / math.Sqrt2
	return device.Mismatch{
		DeltaVT0:   sigmaVT * rng.Norm(),
		BetaFactor: 1 + sigmaBeta*rng.Norm(),
	}
}
