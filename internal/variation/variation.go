// Package variation implements the time-zero variability layer of the
// paper's Section 2: Pelgrom-law mismatch sampling (Eq. 1), the Tuinhout
// AVT(Tox) trend of Fig. 1, a line-edge-roughness contribution, global
// (die-to-die) corners, and a deterministic parallel Monte-Carlo engine
// with yield estimation.
package variation

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
)

// SamplePairDeltaVT draws one ΔVT sample for a matched device pair of
// geometry (w, l) at separation d in technology tech — the quantity whose
// standard deviation Eq. 1 describes.
func SamplePairDeltaVT(tech *device.Technology, w, l, d float64, rng *mathx.RNG) float64 {
	return tech.SigmaVT(w, l, d) * rng.Norm()
}

// SampleMismatch draws the local variation of a single device. Individual
// devices deviate with σ_pair/√2 so that the difference of two independent
// samples reproduces the pair σ of Eq. 1.
func SampleMismatch(tech *device.Technology, w, l float64, rng *mathx.RNG) device.Mismatch {
	sigmaVT := tech.SigmaVT(w, l, 0) / math.Sqrt2
	sigmaBeta := tech.SigmaBeta(w, l) / math.Sqrt2
	return device.Mismatch{
		DeltaVT0:   sigmaVT * rng.Norm(),
		BetaFactor: 1 + sigmaBeta*rng.Norm(),
	}
}

// LERSigmaVT returns the additional threshold σ (volts) contributed by
// line-edge roughness for a device of width w metres. LER is uncorrelated
// edge noise, so its variance averages down with width:
//
//	σ²_LER = (K_LER)² · Wref/W
//
// with K_LER calibrated per technology from its minimum length — shorter
// channels are proportionally more sensitive to edge position.
func LERSigmaVT(tech *device.Technology, w float64) float64 {
	if w <= 0 {
		panic(fmt.Sprintf("variation: non-positive width %g", w))
	}
	// K_LER: 1 mV at W = 1 µm for a 180 nm device, growing as the channel
	// shortens (edge roughness is a fixed ~2 nm rms while L shrinks).
	k := 1e-3 * (180e-9 / tech.Lmin)
	const wref = 1e-6
	return k * math.Sqrt(wref/w)
}

// GlobalCorner is a die-to-die process shift applied identically to every
// device on a die (systematic component; the local Pelgrom part rides on
// top).
type GlobalCorner struct {
	// DeltaVT0 shifts every threshold in volts.
	DeltaVT0 float64
	// BetaFactor scales every current factor.
	BetaFactor float64
}

// NominalCorner returns the typical-typical corner.
func NominalCorner() GlobalCorner { return GlobalCorner{BetaFactor: 1} }

// SampleGlobalCorner draws a die-level corner with the given sigmas.
func SampleGlobalCorner(sigmaVT, sigmaBeta float64, rng *mathx.RNG) GlobalCorner {
	return GlobalCorner{
		DeltaVT0:   sigmaVT * rng.Norm(),
		BetaFactor: 1 + sigmaBeta*rng.Norm(),
	}
}

// ApplyRandomMismatch samples fresh local mismatch for every MOSFET in the
// circuit on top of the given global corner. Existing damage is preserved.
func ApplyRandomMismatch(c *circuit.Circuit, tech *device.Technology, corner GlobalCorner, rng *mathx.RNG) {
	for _, m := range c.MOSFETs() {
		mm := SampleMismatch(tech, m.Dev.Params.W, m.Dev.Params.L, rng)
		mm.DeltaVT0 += corner.DeltaVT0
		mm.BetaFactor *= corner.BetaFactor
		m.Dev.Mismatch = mm
	}
}

// ResetMismatch restores every MOSFET in the circuit to nominal.
func ResetMismatch(c *circuit.Circuit) {
	for _, m := range c.MOSFETs() {
		m.Dev.Mismatch = device.NominalMismatch()
	}
}
