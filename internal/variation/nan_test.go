package variation

import (
	"context"
	"math"
	"testing"

	"repro/internal/mathx"
)

// TestMCStatsYieldCountsNaNRejects pins the NaN accounting contract: a
// die whose metric is NaN ran to a verdict — a measured reject — so it
// belongs in the yield denominator (but never the numerator), exactly
// like an out-of-spec die and unlike an errored trial (missing data).
// Before the fix the denominator was Moments.Count alone, so NaN dies
// silently inflated yield.
func TestMCStatsYieldCountsNaNRejects(t *testing.T) {
	var st MCStats
	st.Pass = 3
	st.NaNs = 2
	st.Moments.Count = 6 // finite measurements (3 in spec, 3 out)
	y := st.Yield()
	if y.Pass != 3 || y.Total != 8 {
		t.Fatalf("Yield = %d/%d, want 3/8 (NaN dies in the denominator)", y.Pass, y.Total)
	}
}

// TestCampaignYieldWithNaNDies drives the same contract through a real
// campaign: half the dies measure NaN, half measure in-spec, and the
// merged yield must be 50 % of all dies, not 100 % of the finite ones.
func TestCampaignYieldWithNaNDies(t *testing.T) {
	const trials = 48
	camp := &Campaign{
		Trials: trials,
		Seed:   7,
		Spec:   &Spec{Name: "m", Lo: 0.5, Hi: 1.5},
		From:   0,
		To:     trials,
		Trial: func(_ *mathx.RNG, i int) (float64, error) {
			if i%2 == 1 {
				return math.NaN(), nil
			}
			return 1.0, nil
		},
	}
	r, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.NaNs != trials/2 {
		t.Fatalf("NaNs = %d, want %d", r.NaNs, trials/2)
	}
	y := r.Stats.Yield()
	if y.Pass != trials/2 || y.Total != trials {
		t.Errorf("campaign yield = %d/%d, want %d/%d", y.Pass, y.Total, trials/2, trials)
	}
	// The dispersion summary stays clean: NaN dies are excluded from the
	// moments, so mean/σ describe the finite population.
	if got := r.Stats.Mean(); math.IsNaN(got) || got != 1.0 {
		t.Errorf("mean = %v, want 1.0 over the finite dies only", got)
	}
	if int(r.Stats.Moments.Count) != trials/2 {
		t.Errorf("moment count = %d, want the %d finite dies", r.Stats.Moments.Count, trials/2)
	}
}

// TestCenteringRejectsDuplicateGroupMember guards the matched-group move
// syntax: one device driven by two axes would make moves order-dependent.
func TestCenteringRejectsDuplicateGroupMember(t *testing.T) {
	c := &Centering{
		Devices:  []string{"M1+M2", "M2"},
		Step:     1.25,
		MaxScale: 4,
		MaxIters: 1,
		Evaluate: func(context.Context, map[string]float64) (*MCResult, error) {
			t.Fatal("evaluate must not run for a malformed group set")
			return nil, nil
		},
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("duplicate group member accepted")
	}
}
