package variation

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
)

// Corner is a named die-level process corner with independent n- and
// p-channel shifts — the systematic component of variability that corner
// analysis sweeps while Monte Carlo handles the local part. "Slow" means
// higher threshold and lower current factor.
type Corner struct {
	Name string
	// DeltaVTN / DeltaVTP shift the thresholds in volts.
	DeltaVTN, DeltaVTP float64
	// BetaN / BetaP scale the current factors.
	BetaN, BetaP float64
}

// StandardCorners builds the five classic corners at the given sigma
// levels (typically the 3σ global spread): TT, SS, FF and the skewed SF
// (slow n, fast p) and FS corners that stress ratioed logic and SRAM
// hardest.
func StandardCorners(sigmaVT, sigmaBeta float64) []Corner {
	if sigmaVT < 0 || sigmaBeta < 0 {
		panic(fmt.Sprintf("variation: negative corner sigmas %g, %g", sigmaVT, sigmaBeta))
	}
	slowVT, fastVT := +sigmaVT, -sigmaVT
	slowB, fastB := 1-sigmaBeta, 1+sigmaBeta
	return []Corner{
		{Name: "TT", BetaN: 1, BetaP: 1},
		{Name: "SS", DeltaVTN: slowVT, DeltaVTP: slowVT, BetaN: slowB, BetaP: slowB},
		{Name: "FF", DeltaVTN: fastVT, DeltaVTP: fastVT, BetaN: fastB, BetaP: fastB},
		{Name: "SF", DeltaVTN: slowVT, DeltaVTP: fastVT, BetaN: slowB, BetaP: fastB},
		{Name: "FS", DeltaVTN: fastVT, DeltaVTP: slowVT, BetaN: fastB, BetaP: slowB},
	}
}

// Apply installs the corner on every MOSFET of the circuit, replacing any
// existing mismatch (corner analysis is run at the systematic point, with
// local variation off).
func (co Corner) Apply(c *circuit.Circuit) {
	for _, m := range c.MOSFETs() {
		mm := device.NominalMismatch()
		if m.Dev.Params.Type == device.PMOS {
			mm.DeltaVT0 = co.DeltaVTP
			mm.BetaFactor = co.BetaP
		} else {
			mm.DeltaVT0 = co.DeltaVTN
			mm.BetaFactor = co.BetaN
		}
		m.Dev.Mismatch = mm
	}
}

// CornerSweep evaluates a metric at every corner and returns the values in
// corner order; the circuit's mismatch state is reset to nominal
// afterwards.
func CornerSweep(c *circuit.Circuit, corners []Corner, metric func(*circuit.Circuit) (float64, error)) (map[string]float64, error) {
	out := make(map[string]float64, len(corners))
	defer ResetMismatch(c)
	for _, co := range corners {
		co.Apply(c)
		v, err := metric(c)
		if err != nil {
			return nil, fmt.Errorf("variation: corner %s: %w", co.Name, err)
		}
		out[co.Name] = v
	}
	return out, nil
}
