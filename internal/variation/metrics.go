package variation

import (
	"sync/atomic"

	"repro/internal/obs"
)

// pkgMetrics holds the Monte-Carlo engine's instruments. Trial latency is
// recorded per trial inside the worker (lock-striped histogram); the
// outcome counters are added during single-threaded result assembly so
// they always sum consistently with the MCResult they describe.
type pkgMetrics struct {
	trials       *obs.Counter
	nans         *obs.Counter
	cancelled    *obs.Counter
	trialSeconds *obs.Histogram
	// chunks counts campaign grid chunks computed to completion here;
	// chunksResumed counts chunks restored from checkpoints instead of
	// re-run — together they expose how much re-work a resume saved.
	chunks        *obs.Counter
	chunksResumed *obs.Counter
	// failures indexes by FailureKind (other, convergence, panic,
	// cancelled) — a counter per taxonomy kind.
	failures [4]*obs.Counter
}

var met atomic.Pointer[pkgMetrics]

// SetMetrics wires the Monte-Carlo engine's instrumentation into reg, or
// disables it when reg is nil.
//
// Metrics registered:
//
//	variation_trials_total                        count  trials run to a verdict
//	variation_trial_nans_total                    count  trials that returned NaN
//	variation_trials_cancelled_total              count  trials never run (context cancelled)
//	variation_trial_seconds                       s      per-trial latency histogram
//	variation_mc_chunks_total                     count  campaign chunks computed to completion
//	variation_mc_chunks_resumed_total             count  campaign chunks restored from checkpoints
//	variation_trial_failures_other_total          count  failed trials by taxonomy kind
//	variation_trial_failures_convergence_total    count
//	variation_trial_failures_panic_total          count
//	variation_trial_failures_cancelled_total      count
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	m := &pkgMetrics{
		trials:       reg.Counter("variation_trials_total", "1", "Monte-Carlo trials run to a verdict"),
		nans:         reg.Counter("variation_trial_nans_total", "1", "trials whose metric was NaN"),
		cancelled:    reg.Counter("variation_trials_cancelled_total", "1", "trials never run due to cancellation"),
		trialSeconds: reg.Histogram("variation_trial_seconds", "s", "per-trial latency", nil),
		chunks: reg.Counter("variation_mc_chunks_total", "1",
			"campaign grid chunks computed to completion"),
		chunksResumed: reg.Counter("variation_mc_chunks_resumed_total", "1",
			"campaign grid chunks restored from checkpoints"),
	}
	for k := FailOther; k <= FailCancelled; k++ {
		m.failures[k] = reg.Counter(
			"variation_trial_failures_"+k.String()+"_total", "1",
			"failed trials classified as "+k.String())
	}
	met.Store(m)
}

// record adds one finished MCResult to the global counters. Called once
// per run from the assembling goroutine.
func (m *pkgMetrics) record(res *MCResult) {
	m.trials.Add(int64(res.Completed()))
	m.nans.Add(int64(res.NaNs))
	m.cancelled.Add(int64(res.Cancelled))
	for _, te := range res.Errors {
		m.failures[te.Kind()].Inc()
	}
}
