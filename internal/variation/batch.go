package variation

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
)

// MismatchBatch holds pre-sampled local mismatch for every MOSFET of a
// circuit across a block of Monte-Carlo trials, structure-of-arrays style:
// one flat slice per mismatch component, indexed trial-major. It exists so
// a batched campaign can (a) resolve and sort the device list once per
// chunk instead of once per trial, and (b) separate sampling (which must
// consume the RNG stream in exactly ApplyRandomMismatch's order for
// reproducibility) from application (which touches the shared circuit and
// so must happen inside the trial's exclusive window).
type MismatchBatch struct {
	devs []*circuit.MOSFET
	tech *device.Technology
	n    int

	// Trial-major component arrays: entry t*len(devs)+d belongs to trial t,
	// device d (devices in the circuit's sorted-by-name order, matching
	// ApplyRandomMismatch's iteration order).
	deltaVT0   []float64
	betaFactor []float64
}

// NewMismatchBatch prepares a batch of trials local-mismatch samples for
// every MOSFET in c. The device list is captured (sorted by name) at
// construction; adding devices afterwards invalidates the batch.
func NewMismatchBatch(c *circuit.Circuit, tech *device.Technology, trials int) *MismatchBatch {
	if trials <= 0 {
		panic(fmt.Sprintf("variation: MismatchBatch needs trials > 0, got %d", trials))
	}
	devs := c.MOSFETs()
	return &MismatchBatch{
		devs:       devs,
		tech:       tech,
		n:          trials,
		deltaVT0:   make([]float64, trials*len(devs)),
		betaFactor: make([]float64, trials*len(devs)),
	}
}

// Trials returns the batch's trial capacity.
func (b *MismatchBatch) Trials() int { return b.n }

// Devices returns the number of MOSFETs the batch covers.
func (b *MismatchBatch) Devices() int { return len(b.devs) }

// SampleTrial draws trial t's mismatch for every device into the batch
// arrays, performing exactly the arithmetic of ApplyRandomMismatch — same
// device order, same per-device RNG consumption, same corner composition —
// so ApplyTrial(t) after SampleTrial(t, corner, rng) leaves the circuit in
// the bit-identical state ApplyRandomMismatch(c, tech, corner, rng) would.
func (b *MismatchBatch) SampleTrial(t int, corner GlobalCorner, rng *mathx.RNG) {
	b.check(t)
	base := t * len(b.devs)
	for d, m := range b.devs {
		mm := SampleMismatch(b.tech, m.Dev.Params.W, m.Dev.Params.L, rng)
		mm.DeltaVT0 += corner.DeltaVT0
		mm.BetaFactor *= corner.BetaFactor
		b.deltaVT0[base+d] = mm.DeltaVT0
		b.betaFactor[base+d] = mm.BetaFactor
	}
}

// ApplyTrial installs trial t's stored mismatch onto the circuit's devices.
// Damage is untouched, matching ApplyRandomMismatch.
func (b *MismatchBatch) ApplyTrial(t int) {
	b.check(t)
	base := t * len(b.devs)
	for d, m := range b.devs {
		m.Dev.Mismatch = device.Mismatch{
			DeltaVT0:   b.deltaVT0[base+d],
			BetaFactor: b.betaFactor[base+d],
		}
	}
}

func (b *MismatchBatch) check(t int) {
	if t < 0 || t >= b.n {
		panic(fmt.Sprintf("variation: trial %d out of batch range [0,%d)", t, b.n))
	}
}
