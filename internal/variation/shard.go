package variation

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// This file is the sharded, resumable Monte-Carlo campaign engine. The
// collect-all-then-sort MCResult cannot be merged, streamed or resumed —
// a campaign that dies at trial 9,900 of 10,000 re-runs from zero. The
// campaign engine replaces that with mergeable statistics over a fixed
// global chunk grid:
//
//   - The trial axis [0, Trials) is cut into chunks whose size is a pure
//     function of Trials (ChunkSize), so every executor — single-shard,
//     k-shard, resumed — sees the identical grid.
//   - Each chunk folds its trials, in trial order, into an MCStats
//     (mergeable moments + quantile sketch + outcome counts).
//   - The campaign result is the fold of per-chunk stats in ascending
//     chunk order, regardless of which process computed which chunk.
//
// Because both the per-trial RNG substream (Split on the global trial
// index) and the fold order are functions of the global grid alone, a
// k-shard scatter-gather reproduces the single-shard mean/std/yield
// bit-for-bit, and quantiles within the sketch's documented rank-error
// bound. Completed chunks are surfaced through OnChunk so a durability
// layer can checkpoint them; a resumed campaign re-runs at most the one
// chunk that was in flight when the process died.

// maxChunkTrials bounds a chunk: small enough that losing the in-flight
// chunk is cheap re-work, large enough that checkpoint overhead stays
// negligible.
const maxChunkTrials = 256

// ChunkSize returns the campaign chunk size for a trial count — a pure
// function of trials (min(256, ceil(trials/4))), so every executor of the
// same campaign derives the identical global chunk grid.
func ChunkSize(trials int) int {
	c := (trials + 3) / 4
	if c > maxChunkTrials {
		c = maxChunkTrials
	}
	if c < 1 {
		c = 1
	}
	return c
}

// NumChunks returns the number of grid chunks for a trial count.
func NumChunks(trials int) int {
	cs := ChunkSize(trials)
	return (trials + cs - 1) / cs
}

// ChunkRange returns chunk i's half-open global trial range [from, to).
func ChunkRange(trials, i int) (from, to int) {
	cs := ChunkSize(trials)
	from = i * cs
	to = from + cs
	if to > trials {
		to = trials
	}
	return from, to
}

// MCStats is the mergeable statistical summary of a set of Monte-Carlo
// trials: exact moments and extrema of the successful values, a bounded-
// error quantile sketch, the spec-pass count, and the failure accounting.
// Merging per-chunk MCStats in a fixed order is bit-deterministic for
// count/mean/M2/pass (and therefore mean, std and yield), and keeps
// quantiles within the sketch's rank-error bound.
type MCStats struct {
	// Moments summarises the successful trial values exactly.
	Moments mathx.Moments `json:"moments"`
	// Sketch summarises the value distribution for quantile reads.
	Sketch *mathx.Sketch `json:"sketch,omitempty"`
	// Pass counts values meeting the campaign spec (0 when no spec).
	Pass int `json:"pass,omitempty"`
	// NaNs and Failures mirror MCResult's accounting.
	NaNs     int `json:"nans,omitempty"`
	Failures int `json:"failures,omitempty"`
	// ByKind tallies failures by taxonomy kind name.
	ByKind map[string]int `json:"by_kind,omitempty"`
	// First is the first structured failure, in trial order.
	First string `json:"first_failure,omitempty"`
}

// addValue folds one successful trial value.
func (s *MCStats) addValue(v float64, pass bool) {
	s.Moments.Add(v)
	if s.Sketch == nil {
		s.Sketch = &mathx.Sketch{}
	}
	s.Sketch.Add(v)
	if pass {
		s.Pass++
	}
}

// addFailure folds one failed trial.
func (s *MCStats) addFailure(te *TrialError) {
	s.Failures++
	if s.ByKind == nil {
		s.ByKind = make(map[string]int)
	}
	s.ByKind[te.Kind().String()]++
	if s.First == "" {
		s.First = te.Error()
	}
}

// Merge folds other into s, as if other's trials had been folded here.
// Count, mean, M2, pass and the outcome counters merge exactly; the
// sketch merge is deterministic with bounded rank error. Fold shards in
// ascending global chunk order to reproduce a single-shard run
// bit-for-bit.
func (s *MCStats) Merge(other *MCStats) {
	if other == nil {
		return
	}
	s.Moments.Merge(other.Moments)
	if other.Sketch != nil {
		if s.Sketch == nil {
			s.Sketch = &mathx.Sketch{}
		}
		s.Sketch.Merge(other.Sketch)
	}
	s.Pass += other.Pass
	s.NaNs += other.NaNs
	s.Failures += other.Failures
	if len(other.ByKind) > 0 && s.ByKind == nil {
		s.ByKind = make(map[string]int, len(other.ByKind))
	}
	for k, n := range other.ByKind {
		s.ByKind[k] += n
	}
	if s.First == "" {
		s.First = other.First
	}
}

// Completed returns the trials summarised to a verdict.
func (s *MCStats) Completed() int { return int(s.Moments.Count) + s.NaNs + s.Failures }

// Mean returns the mean of the successful values (NaN when none).
func (s *MCStats) Mean() float64 { return s.Moments.MeanValue() }

// StdDev returns the sample standard deviation of the successful values.
func (s *MCStats) StdDev() float64 { return s.Moments.StdDev() }

// Quantile returns the sketch's p-quantile estimate (NaN when empty).
func (s *MCStats) Quantile(p float64) float64 {
	if s.Sketch == nil {
		return math.NaN()
	}
	return s.Sketch.Quantile(p)
}

// Yield returns the Wilson-interval yield of the pass count over the
// measured dies. A NaN trial is a measured reject — the die ran but its
// metric was undefined — so it counts in the denominator, consistent with
// the FailureKind accounting and the MCResult contract ("a NaN die is a
// measured reject, an errored trial is missing data"). Errored trials are
// missing data and stay out of both numerator and denominator.
func (s *MCStats) Yield() YieldEstimate {
	return YieldFromCounts(s.Pass, int(s.Moments.Count)+s.NaNs)
}

// ChunkStat is one completed grid chunk's summary — the unit of
// checkpointing and of shard scatter-gather. From/To are global trial
// indices.
type ChunkStat struct {
	Chunk int     `json:"chunk"`
	From  int     `json:"from"`
	To    int     `json:"to"`
	Stats MCStats `json:"stats"`
}

// Campaign is a resumable Monte-Carlo run over a trial sub-range of the
// global chunk grid. The zero value is not runnable: Trials, Seed and
// Trial are required.
type Campaign struct {
	// Trials is the TOTAL campaign trial count — it defines the global
	// chunk grid and the RNG substream of every trial, even when this
	// executor only runs a sub-range.
	Trials int
	// Seed is the campaign seed; trial i draws from NewRNG(Seed).Split(i)
	// exactly as MonteCarloCtx does, so a campaign reproduces it.
	Seed uint64
	// Trial evaluates one die (see MonteCarloCtx for the contract).
	Trial Trial
	// Spec, when non-nil, counts per-trial passes into MCStats.Pass.
	Spec *Spec
	// From/To select the half-open trial sub-range to execute; both zero
	// means the full campaign. They must be chunk-aligned on the global
	// grid.
	From, To int
	// Resume supplies chunk summaries recovered from checkpoints; those
	// chunks are folded without re-running their trials.
	Resume []ChunkStat
	// OnChunk, when non-nil, receives every newly-computed (not resumed)
	// complete chunk, in ascending chunk order. This is the checkpoint
	// hook: a chunk emitted here is durable re-work saved on resume.
	OnChunk func(ChunkStat)
	// KeepValues also collects per-trial values and structured errors into
	// the MCResult (single-process runs that render histograms); sharded
	// and resumed runs leave it false and report from Stats alone.
	KeepValues bool
}

// Run executes the campaign's trial range. The returned MCResult carries
// merged Stats (plus Values/Errors when KeepValues); its counters obey
// Cancelled + NaNs + Failures + successes == To-From. Cancellation
// mid-run returns the completed portion with an error wrapping
// ErrCancelled, exactly like MonteCarloCtx; the partially-run chunk is
// folded into Stats but never emitted through OnChunk, so checkpoints
// only ever describe complete chunks.
func (c *Campaign) Run(ctx context.Context) (*MCResult, error) {
	if c.Trials <= 0 {
		return nil, fmt.Errorf("variation: campaign needs Trials > 0, got %d", c.Trials)
	}
	if c.Trial == nil {
		return nil, fmt.Errorf("variation: campaign needs a Trial function")
	}
	from, to := c.From, c.To
	if from == 0 && to == 0 {
		to = c.Trials
	}
	cs := ChunkSize(c.Trials)
	if from < 0 || to > c.Trials || from >= to {
		return nil, fmt.Errorf("variation: campaign range [%d,%d) outside [0,%d)", from, to, c.Trials)
	}
	if from%cs != 0 || (to%cs != 0 && to != c.Trials) {
		return nil, fmt.Errorf("variation: campaign range [%d,%d) not aligned to the %d-trial chunk grid", from, to, cs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	resumed := make(map[int]ChunkStat, len(c.Resume))
	for _, st := range c.Resume {
		ef, et := ChunkRange(c.Trials, st.Chunk)
		if st.From != ef || st.To != et {
			return nil, fmt.Errorf("variation: resume chunk %d range [%d,%d) does not match grid [%d,%d) — checkpoint from a different campaign?",
				st.Chunk, st.From, st.To, ef, et)
		}
		resumed[st.Chunk] = st
	}

	start := time.Now()
	root := mathx.NewRNG(c.Seed)
	m := met.Load()
	res := &MCResult{N: to - from, Stats: &MCStats{}}
	completed := 0
	firstChunk, lastChunk := from/cs, (to+cs-1)/cs
	for chunk := firstChunk; chunk < lastChunk; chunk++ {
		if st, ok := resumed[chunk]; ok {
			res.Stats.Merge(&st.Stats)
			res.Resumed++
			completed += st.To - st.From
			if m != nil {
				m.chunksResumed.Inc()
			}
			continue
		}
		if ctx.Err() != nil {
			break
		}
		cf, ct := ChunkRange(c.Trials, chunk)
		slots := runChunkTrials(ctx, root, cf, ct, c.Trial, m)
		// Fold in trial order: the sequential fold is what makes the final
		// Stats independent of worker scheduling and shard count.
		st := ChunkStat{Chunk: chunk, From: cf, To: ct}
		ran := 0
		for i, sl := range slots {
			switch {
			case sl.ok:
				st.Stats.addValue(sl.value, c.Spec != nil && c.Spec.Pass(sl.value))
				if c.KeepValues {
					res.Values = append(res.Values, sl.value)
				}
				ran++
			case sl.nan:
				st.Stats.NaNs++
				ran++
			case sl.done:
				st.Stats.addFailure(sl.err)
				if c.KeepValues {
					res.Errors = append(res.Errors, sl.err)
				}
				ran++
			default:
				_ = i // cancelled before dispatch: accounted below
			}
		}
		res.Stats.Merge(&st.Stats)
		completed += ran
		if ran == ct-cf {
			// Only a complete chunk is checkpoint-worthy.
			if m != nil {
				m.chunks.Inc()
			}
			if c.OnChunk != nil {
				c.OnChunk(st)
			}
		}
	}
	res.NaNs = res.Stats.NaNs
	res.Failures = res.Stats.Failures
	res.Cancelled = (to - from) - completed
	res.Elapsed = time.Since(start)
	if m != nil {
		m.record(res)
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("%w after %d/%d trials: %v", ErrCancelled, res.Completed(), to-from, err)
	}
	return res, nil
}

// trialSlot is one trial's outcome, indexed by position within a chunk.
type trialSlot struct {
	value float64
	ok    bool
	nan   bool
	done  bool
	err   *TrialError
}

// runChunkTrials executes global trials [from, to) in parallel with the
// same panic isolation, per-trial RNG substreams and cancellation
// semantics as MonteCarloCtx. Slot i holds global trial from+i.
func runChunkTrials(ctx context.Context, root *mathx.RNG, from, to int, trial Trial, m *pkgMetrics) []trialSlot {
	n := to - from
	slots := make([]trialSlot, n)
	runOne := func(g int) {
		var sp obs.Span
		if m != nil {
			sp = obs.StartSpan(m.trialSeconds)
		}
		defer func() {
			sp.End()
			if r := recover(); r != nil {
				slots[g-from] = trialSlot{done: true, err: &TrialError{
					Index: g, Phase: "trial",
					Cause: &PanicError{Value: r, Stack: debug.Stack()},
				}}
			}
		}()
		rng := root.Split(uint64(g))
		v, err := trial(rng, g)
		switch {
		case err != nil:
			slots[g-from] = trialSlot{done: true, err: &TrialError{Index: g, Phase: "trial", Cause: err}}
		case math.IsNaN(v):
			slots[g-from] = trialSlot{done: true, nan: true}
		default:
			slots[g-from] = trialSlot{done: true, value: v, ok: true}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range next {
				if ctx.Err() != nil {
					continue
				}
				runOne(g)
			}
		}()
	}
dispatch:
	for g := from; g < to; g++ {
		select {
		case next <- g:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return slots
}
