package variation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/mathx"
)

func TestMonteCarloPanicIsolated(t *testing.T) {
	res, err := MonteCarlo(50, 1, func(rng *mathx.RNG, i int) (float64, error) {
		if i%7 == 0 {
			panic(fmt.Sprintf("model blew up on trial %d", i))
		}
		return float64(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPanics := 8 // i = 0, 7, 14, ..., 49
	if res.Failures != wantPanics || len(res.Errors) != wantPanics {
		t.Fatalf("failures=%d errors=%d, want %d", res.Failures, len(res.Errors), wantPanics)
	}
	if len(res.Values) != 50-wantPanics {
		t.Errorf("values=%d, want %d", len(res.Values), 50-wantPanics)
	}
	if res.Cancelled != 0 {
		t.Errorf("no cancellation happened, got Cancelled=%d", res.Cancelled)
	}
	for _, te := range res.Errors {
		if te.Index%7 != 0 {
			t.Errorf("structured error has wrong trial index %d", te.Index)
		}
		if te.Kind() != FailPanic {
			t.Errorf("panic classified as %v", te.Kind())
		}
		var pe *PanicError
		if !errors.As(te, &pe) {
			t.Fatalf("cause of %v is not a *PanicError", te)
		}
		if len(pe.Stack) == 0 {
			t.Error("recovered panic lost its stack")
		}
	}
	if kinds := res.ErrorsByKind(); kinds[FailPanic] != wantPanics {
		t.Errorf("ErrorsByKind = %v", kinds)
	}
	if res.Elapsed <= 0 {
		t.Error("run elapsed time not recorded")
	}
}

func TestMonteCarloCancellationReturnsPartial(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(5*time.Millisecond, cancel)
	// Every dispatched trial blocks until cancellation, so only a handful
	// (at most the worker count) ever executes and the rest must be
	// accounted as Cancelled.
	res, err := MonteCarloCtx(ctx, n, 1, func(rng *mathx.RNG, i int) (float64, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrCancelled", err)
	}
	if res == nil {
		t.Fatal("cancelled run must still return the partial result")
	}
	if res.Cancelled == 0 {
		t.Error("no trials accounted as cancelled")
	}
	if got := len(res.Values) + res.NaNs + res.Failures + res.Cancelled; got != n {
		t.Errorf("accounting leak: %d values + %d NaNs + %d failures + %d cancelled != %d",
			len(res.Values), res.NaNs, res.Failures, res.Cancelled, n)
	}
	if res.Completed() != n-res.Cancelled {
		t.Errorf("Completed() = %d, want %d", res.Completed(), n-res.Cancelled)
	}
	for _, te := range res.Errors {
		if te.Kind() != FailCancelled {
			t.Errorf("trial aborted by ctx classified as %v", te.Kind())
		}
	}
}

func TestMonteCarloDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	res, err := MonteCarloCtx(ctx, 100000, 1, func(rng *mathx.RNG, i int) (float64, error) {
		time.Sleep(200 * time.Microsecond)
		return 1, nil
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("deadline run returned %v, want ErrCancelled", err)
	}
	if res.Cancelled == 0 {
		t.Error("deadline left no trials cancelled")
	}
	if got := len(res.Values) + res.NaNs + res.Failures + res.Cancelled; got != res.N {
		t.Errorf("accounting leak: %d != %d", got, res.N)
	}
}

// Regression: a run in which every trial failed must degrade to NaN
// statistics instead of panicking in Quantile.
func TestMCResultEmptyValuesConsistentNaN(t *testing.T) {
	res, err := MonteCarlo(10, 1, func(rng *mathx.RNG, i int) (float64, error) {
		return 0, errors.New("all dies dead")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 || res.Failures != 10 {
		t.Fatalf("unexpected accounting: %+v", res)
	}
	if !math.IsNaN(res.Mean()) {
		t.Error("Mean of empty values must be NaN")
	}
	if !math.IsNaN(res.StdDev()) {
		t.Error("StdDev of empty values must be NaN")
	}
	if !math.IsNaN(res.Quantile(0.5)) {
		t.Error("Quantile of empty values must be NaN, not a panic")
	}
}

func TestClassifyFailure(t *testing.T) {
	cases := []struct {
		err  error
		want FailureKind
	}{
		{nil, FailOther},
		{errors.New("anything"), FailOther},
		{circuit.ErrNoConvergence, FailConvergence},
		{fmt.Errorf("trial: %w", circuit.ErrSingular), FailConvergence},
		{&PanicError{Value: "boom"}, FailPanic},
		{fmt.Errorf("wrap: %w", &PanicError{Value: 3}), FailPanic},
		{context.Canceled, FailCancelled},
		{context.DeadlineExceeded, FailCancelled},
		{fmt.Errorf("run: %w", ErrCancelled), FailCancelled},
	}
	for _, c := range cases {
		if got := ClassifyFailure(c.err); got != c.want {
			t.Errorf("ClassifyFailure(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	for k, want := range map[FailureKind]string{
		FailOther: "other", FailConvergence: "convergence",
		FailPanic: "panic", FailCancelled: "cancelled",
	} {
		if k.String() != want {
			t.Errorf("FailureKind(%d).String() = %q", k, k.String())
		}
	}
}

func TestTrialErrorFormatAndUnwrap(t *testing.T) {
	cause := circuit.ErrNoConvergence
	te := &TrialError{Index: 17, Phase: "measure", Cause: cause}
	if !errors.Is(te, circuit.ErrNoConvergence) {
		t.Error("TrialError must unwrap to its cause")
	}
	if te.Error() != "trial 17 [measure]: circuit: operating point did not converge" {
		t.Errorf("unexpected format %q", te.Error())
	}
	if te.Kind() != FailConvergence {
		t.Errorf("kind = %v", te.Kind())
	}
}

// Trials returning the solver's convergence sentinel must classify as
// convergence failures in the structured accounting.
func TestMonteCarloConvergenceClassification(t *testing.T) {
	res, err := MonteCarlo(10, 1, func(rng *mathx.RNG, i int) (float64, error) {
		if i < 3 {
			return 0, fmt.Errorf("op: %w", circuit.ErrNoConvergence)
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := res.ErrorsByKind()
	if kinds[FailConvergence] != 3 {
		t.Errorf("ErrorsByKind = %v, want 3 convergence failures", kinds)
	}
}
