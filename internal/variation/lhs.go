package variation

import (
	"fmt"

	"repro/internal/mathx"
)

// LatinHypercube returns n samples in [0,1)^dims with Latin-hypercube
// stratification: each dimension is divided into n equal bins, every bin
// receives exactly one sample, and the bin-to-sample assignment is an
// independent random permutation per dimension. Transform columns through
// a Quantile function (e.g. mathx.NormQuantile) to sample arbitrary
// marginals. Compared with plain Monte Carlo, LHS removes the variance of
// each dimension's empirical marginal, tightening smooth statistics for
// the same sample count.
func LatinHypercube(n, dims int, seed uint64) [][]float64 {
	if n <= 0 || dims <= 0 {
		panic(fmt.Sprintf("variation: invalid LHS shape %d×%d", n, dims))
	}
	rng := mathx.NewRNG(seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dims)
	}
	for d := 0; d < dims; d++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			// Sample uniformly inside the assigned stratum.
			out[i][d] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return out
}

// LHSNormals returns n stratified standard-normal sample vectors of the
// given dimensionality (LatinHypercube pushed through the normal inverse
// CDF).
func LHSNormals(n, dims int, seed uint64) [][]float64 {
	u := LatinHypercube(n, dims, seed)
	for _, row := range u {
		for d, v := range row {
			if v <= 0 {
				v = 0.5 / float64(2*n)
			}
			row[d] = mathx.NormQuantile(v)
		}
	}
	return u
}
