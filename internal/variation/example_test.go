package variation_test

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/variation"
)

// ExampleMinAreaForOffset sizes a matched pair with the inverted Pelgrom
// law: how much gate area does a 5 mV / 3σ offset budget cost at 90 nm?
func ExampleMinAreaForOffset() {
	tech := device.MustTech("90nm")
	area, err := variation.MinAreaForOffset(tech, 5e-3, 0.997, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("required area: %.1f um^2\n", area*1e12)
	// Output:
	// required area: 6.8 um^2
}

// ExampleMonteCarlo estimates a mismatch yield with a reproducible
// parallel Monte-Carlo run.
func ExampleMonteCarlo() {
	tech := device.MustTech("65nm")
	res, err := variation.MonteCarlo(2000, 42, func(rng *mathx.RNG, _ int) (float64, error) {
		return variation.SamplePairDeltaVT(tech, 1e-6, 65e-9, 0, rng), nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	y := variation.EstimateYield(res.Values, variation.Spec{Lo: -0.03, Hi: 0.03})
	fmt.Printf("pairs within ±30 mV: %s\n", y)
	// Output:
	// pairs within ±30 mV: 92.5% [91.2, 93.5]
}

// ExampleCorner_Apply runs the skewed SF corner on a metric.
func ExampleCorner_Apply() {
	corners := variation.StandardCorners(0.03, 0.08)
	for _, c := range corners {
		if c.Name == "SF" {
			fmt.Printf("SF: nMOS ΔVT %+.0f mV, pMOS ΔVT %+.0f mV\n",
				c.DeltaVTN*1e3, c.DeltaVTP*1e3)
		}
	}
	// Output:
	// SF: nMOS ΔVT +30 mV, pMOS ΔVT -30 mV
}
