package digital

import (
	"math"
	"testing"

	"repro/internal/aging"
	"repro/internal/device"
)

func TestBuildRingValidation(t *testing.T) {
	tech := device.MustTech("90nm")
	sz := DefaultInverter(tech)
	if _, err := BuildRingOscillator(tech, 4, sz, 1e-15); err == nil {
		t.Error("even stage count accepted")
	}
	if _, err := BuildRingOscillator(tech, 1, sz, 1e-15); err == nil {
		t.Error("single stage accepted")
	}
	if _, err := BuildRingOscillator(tech, 5, sz, 0); err == nil {
		t.Error("zero load accepted")
	}
}

func TestRingOscillates(t *testing.T) {
	tech := device.MustTech("90nm")
	ro, err := BuildRingOscillator(tech, 5, DefaultInverter(tech), 2e-15)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ro.MeasureFrequency()
	if err != nil {
		t.Fatal(err)
	}
	if f < 1e8 || f > 1e11 {
		t.Errorf("ring frequency %g Hz implausible for 90 nm", f)
	}
	// The analytic estimate should be in the right ballpark (same decade).
	est := ro.EstimatedFrequency()
	ratio := f / est
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("measured %g vs estimate %g: ratio %g out of band", f, est, ratio)
	}
}

func TestMoreStagesSlower(t *testing.T) {
	tech := device.MustTech("90nm")
	measure := func(stages int) float64 {
		ro, err := BuildRingOscillator(tech, stages, DefaultInverter(tech), 2e-15)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ro.MeasureFrequency()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f5 := measure(5)
	f9 := measure(9)
	if f9 >= f5 {
		t.Errorf("9-stage ring (%g) must be slower than 5-stage (%g)", f9, f5)
	}
	// Frequency ∝ 1/stages to first order.
	ratio := f5 / f9
	if ratio < 1.3 || ratio > 2.6 {
		t.Errorf("5→9 stage slowdown ×%g, expected ~1.8", ratio)
	}
}

func TestHeavierLoadSlower(t *testing.T) {
	tech := device.MustTech("90nm")
	measure := func(cl float64) float64 {
		ro, err := BuildRingOscillator(tech, 5, DefaultInverter(tech), cl)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ro.MeasureFrequency()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if measure(8e-15) >= measure(2e-15) {
		t.Error("quadrupled load must slow the ring")
	}
}

func TestPropagationDelay(t *testing.T) {
	tech := device.MustTech("90nm")
	tphl, tplh, err := PropagationDelay(tech, DefaultInverter(tech), 5e-15)
	if err != nil {
		t.Fatal(err)
	}
	if tphl <= 0 || tplh <= 0 {
		t.Fatal("delays must be positive")
	}
	if tphl > 1e-9 || tplh > 1e-9 {
		t.Errorf("delays %g/%g implausibly slow for 90 nm", tphl, tplh)
	}
}

func TestDelayGrowsWithLoad(t *testing.T) {
	tech := device.MustTech("90nm")
	sz := DefaultInverter(tech)
	h1, l1, err := PropagationDelay(tech, sz, 2e-15)
	if err != nil {
		t.Fatal(err)
	}
	h2, l2, err := PropagationDelay(tech, sz, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	if h2 <= h1 || l2 <= l1 {
		t.Errorf("delay must grow with load: %g->%g, %g->%g", h1, h2, l1, l2)
	}
}

func TestAgedRingSlowsDown(t *testing.T) {
	tech := device.MustTech("65nm")
	ro, err := BuildRingOscillator(tech, 5, DefaultInverter(tech), 2e-15)
	if err != nil {
		t.Fatal(err)
	}
	const tenYears = 10 * 365.25 * 24 * 3600
	res, err := AgeRing(ro, tenYears, 400,
		aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.AgedHz >= res.FreshHz {
		t.Errorf("aged ring must be slower: %g >= %g", res.AgedHz, res.FreshHz)
	}
	if res.SlowdownPct < 0.5 || res.SlowdownPct > 50 {
		t.Errorf("10-year slowdown %.2f%% outside the plausible band", res.SlowdownPct)
	}
	if res.WorstDeltaVT <= 0 {
		t.Error("no threshold shift recorded")
	}
}

func TestAgeRingDeterministic(t *testing.T) {
	tech := device.MustTech("65nm")
	run := func() float64 {
		ro, err := BuildRingOscillator(tech, 5, DefaultInverter(tech), 2e-15)
		if err != nil {
			t.Fatal(err)
		}
		res, err := AgeRing(ro, 1e8, 380, aging.Models{NBTI: aging.DefaultNBTI()}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.AgedHz
	}
	if run() != run() {
		t.Error("ring aging not reproducible")
	}
}

func TestFirstAfter(t *testing.T) {
	xs := []float64{1, 3, 5}
	if firstAfter(xs, 2) != 3 || firstAfter(xs, 1) != 1 {
		t.Error("firstAfter broken")
	}
	if v := firstAfter(xs, 9); !math.IsNaN(v) {
		t.Error("expected NaN when no crossing follows")
	}
}
