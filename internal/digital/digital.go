// Package digital provides the digital-side reliability vehicles of the
// paper: CMOS inverters with measured propagation delay, ring oscillators
// with transient-extracted frequency, and the delay/frequency degradation
// analysis ("digital circuits mostly suffer from a variable delay,
// reducing the overall operation speed" — §2; NBTI/HCI "translates to
// slower circuits" — §3).
package digital

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/emc"
)

// InverterSize is the device sizing of one inverter.
type InverterSize struct {
	// WN, WP are channel widths in metres; L is the channel length.
	WN, WP, L float64
}

// DefaultInverter returns a 2:1 P:N sized minimum-length inverter.
func DefaultInverter(tech *device.Technology) InverterSize {
	return InverterSize{WN: 1e-6, WP: 2e-6, L: tech.Lmin}
}

// addInverter wires one inverter from in to out and returns its devices.
func addInverter(c *circuit.Circuit, name, in, out, vdd string, tech *device.Technology, sz InverterSize) (mn, mp *circuit.MOSFET) {
	dn := device.NewMosfet(tech.NMOSParams(sz.WN, sz.L, 300))
	dp := device.NewMosfet(tech.PMOSParams(sz.WP, sz.L, 300))
	mn = c.AddMOSFET(name+"N", out, in, "0", "0", dn)
	mp = c.AddMOSFET(name+"P", out, in, vdd, vdd, dp)
	return mn, mp
}

// RingOscillator is an odd-stage inverter ring with per-stage load
// capacitors and a start-up kick source.
type RingOscillator struct {
	Circuit *circuit.Circuit
	Tech    *device.Technology
	Stages  int
	Size    InverterSize
	CLoad   float64
	// Nodes are the stage outputs, Nodes[0] is the observation node.
	Nodes []string
	// SupplyName names the VDD source (a knob can retune it).
	SupplyName string
}

// BuildRingOscillator constructs a ring of stages inverters (odd, ≥ 3) in
// the given technology with cload farads on every stage output.
func BuildRingOscillator(tech *device.Technology, stages int, sz InverterSize, cload float64) (*RingOscillator, error) {
	if stages < 3 || stages%2 == 0 {
		return nil, fmt.Errorf("digital: ring needs an odd stage count >= 3, got %d", stages)
	}
	if cload <= 0 {
		return nil, fmt.Errorf("digital: non-positive load %g", cload)
	}
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	ro := &RingOscillator{
		Circuit: c, Tech: tech, Stages: stages, Size: sz, CLoad: cload,
		SupplyName: "VDD",
	}
	for i := 0; i < stages; i++ {
		ro.Nodes = append(ro.Nodes, fmt.Sprintf("n%d", i))
	}
	for i := 0; i < stages; i++ {
		in := ro.Nodes[(i+stages-1)%stages]
		out := ro.Nodes[i]
		addInverter(c, fmt.Sprintf("X%d", i), in, out, "vdd", tech, sz)
		c.AddCapacitor(fmt.Sprintf("CL%d", i), out, "0", cload)
	}
	// Start-up kick: the DC solution of a ring is the metastable mid-rail
	// point; a brief current pulse into stage 0 breaks the symmetry.
	c.AddISource("IKICK", "0", ro.Nodes[0], circuit.Pulse{
		Low: 0, High: 200e-6,
		Rise: 1e-12, Fall: 1e-12,
		Width: ro.estimateDelay() * 2,
	})
	return ro, nil
}

// estimateDelay returns a crude per-stage delay estimate C·VDD/(2·Idsat)
// used to size the transient window.
func (ro *RingOscillator) estimateDelay() float64 {
	probe := device.NewMosfet(ro.Tech.NMOSParams(ro.Size.WN, ro.Size.L, 300))
	idsat := probe.Eval(ro.Tech.VDD, ro.Tech.VDD, 0).ID
	if idsat <= 0 {
		return 1e-9
	}
	cgs, cgd := probe.GateCapacitance()
	ctot := ro.CLoad + 3*(cgs+cgd) // fan-out gate load, Miller-ish adder
	return ctot * ro.Tech.VDD / (2 * idsat)
}

// EstimatedFrequency returns the analytic frequency estimate
// 1/(2·stages·tp); MeasureFrequency supersedes it with a simulation.
func (ro *RingOscillator) EstimatedFrequency() float64 {
	return 1 / (2 * float64(ro.Stages) * ro.estimateDelay())
}

// MeasureFrequency runs a transient long enough for several oscillation
// periods and extracts the frequency from the spacing of rising
// mid-supply crossings on stage 0. The devices' present damage state is in
// effect, so calling it before and after aging measures the degradation.
func (ro *RingOscillator) MeasureFrequency() (float64, error) {
	est := 2 * float64(ro.Stages) * ro.estimateDelay() // period estimate
	const settlePeriods, measurePeriods = 4, 8
	stop := est * (settlePeriods + measurePeriods) * 2 // ×2 safety for slow (aged) rings
	step := est / (float64(ro.Stages) * 12)
	wf, err := ro.Circuit.Transient(circuit.TranSpec{
		Stop: stop, Step: step,
		Integrator: circuit.Trapezoidal,
		Record:     []string{ro.Nodes[0]},
	})
	if err != nil {
		return 0, fmt.Errorf("digital: ring transient: %w", err)
	}
	crossings := emc.CrossingTimes(wf.Times, wf.Node(ro.Nodes[0]), ro.Tech.VDD/2, true)
	if len(crossings) < 4 {
		return 0, fmt.Errorf("digital: ring did not oscillate (%d crossings)", len(crossings))
	}
	// Average over the last few periods, skipping start-up.
	tail := crossings[len(crossings)/2:]
	if len(tail) < 2 {
		tail = crossings
	}
	period := (tail[len(tail)-1] - tail[0]) / float64(len(tail)-1)
	if period <= 0 {
		return 0, fmt.Errorf("digital: non-positive period %g", period)
	}
	return 1 / period, nil
}

// PropagationDelay drives a single loaded inverter with a full-swing pulse
// and measures the 50 %-to-50 % high-to-low and low-to-high delays.
func PropagationDelay(tech *device.Technology, sz InverterSize, cload float64) (tphl, tplh float64, err error) {
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	probe := device.NewMosfet(tech.NMOSParams(sz.WN, sz.L, 300))
	idsat := probe.Eval(tech.VDD, tech.VDD, 0).ID
	cgs, cgd := probe.GateCapacitance()
	tEst := (cload + 3*(cgs+cgd)) * tech.VDD / (2 * idsat)
	half := 40 * tEst
	edge := tEst / 10
	c.AddVSource("VIN", "in", "0", circuit.Pulse{
		Low: 0, High: tech.VDD,
		Delay: half / 4, Rise: edge, Fall: edge,
		Width: half, Period: 2 * half,
	})
	addInverter(c, "X", "in", "out", "vdd", tech, sz)
	c.AddCapacitor("CL", "out", "0", cload)
	wf, err := c.Transient(circuit.TranSpec{
		Stop: 2 * half, Step: tEst / 25,
		Integrator: circuit.Trapezoidal,
		Record:     []string{"in", "out"},
	})
	if err != nil {
		return 0, 0, fmt.Errorf("digital: delay transient: %w", err)
	}
	mid := tech.VDD / 2
	inRise := emc.CrossingTimes(wf.Times, wf.Node("in"), mid, true)
	inFall := emc.CrossingTimes(wf.Times, wf.Node("in"), mid, false)
	outFall := emc.CrossingTimes(wf.Times, wf.Node("out"), mid, false)
	outRise := emc.CrossingTimes(wf.Times, wf.Node("out"), mid, true)
	if len(inRise) == 0 || len(inFall) == 0 || len(outFall) == 0 || len(outRise) == 0 {
		return 0, 0, fmt.Errorf("digital: missing transitions (in %d/%d, out %d/%d)",
			len(inRise), len(inFall), len(outFall), len(outRise))
	}
	tphl = firstAfter(outFall, inRise[0]) - inRise[0]
	tplh = firstAfter(outRise, inFall[0]) - inFall[0]
	if tphl <= 0 || tplh <= 0 {
		return 0, 0, fmt.Errorf("digital: non-causal delays tphl=%g tplh=%g", tphl, tplh)
	}
	return tphl, tplh, nil
}

// firstAfter returns the first crossing at or after t (NaN when none).
func firstAfter(xs []float64, t float64) float64 {
	for _, x := range xs {
		if x >= t {
			return x
		}
	}
	return math.NaN()
}
