package digital

import (
	"fmt"

	"repro/internal/aging"
)

// DegradationResult compares a ring oscillator before and after a mission.
type DegradationResult struct {
	// FreshHz and AgedHz are the measured oscillation frequencies.
	FreshHz, AgedHz float64
	// SlowdownPct = 100·(fresh−aged)/fresh.
	SlowdownPct float64
	// WorstDeltaVT is the largest threshold shift across ring devices.
	WorstDeltaVT float64
}

// AgeRing ages the ring oscillator's devices over a mission of the given
// length and temperature and measures the frequency before and after. In
// a free-running ring every gate sees ~50 % signal duty, which is what the
// BTI duty model receives; the stress bias is the full rail (each device's
// gate swings rail to rail).
func AgeRing(ro *RingOscillator, missionSeconds, tempK float64, models aging.Models, seed uint64) (*DegradationResult, error) {
	fresh, err := ro.MeasureFrequency()
	if err != nil {
		return nil, fmt.Errorf("digital: fresh frequency: %w", err)
	}
	ager := aging.NewCircuitAger(ro.Circuit, models, tempK, seed)
	vdd := ro.Tech.VDD
	// Rail-to-rail switching stress at 50 % duty for every device. The
	// operating-point extraction would see the metastable mid-rail DC
	// solution, which is not what a toggling gate experiences, so the
	// stress is imposed explicitly.
	for _, name := range ager.SortedAgerNames() {
		m, err := ro.Circuit.MOSFETByName(name)
		if err != nil {
			return nil, err
		}
		vgs := vdd
		if m.Dev.Params.Type.String() == "pmos" {
			vgs = -vdd
		}
		st := aging.Stress{Vgs: vgs, Vds: vgs, Duty: 0.5, TempK: tempK}
		ager.Ager(name).Step(st, missionSeconds)
	}
	res := &DegradationResult{FreshHz: fresh}
	for _, name := range ager.SortedAgerNames() {
		m, _ := ro.Circuit.MOSFETByName(name)
		if dvt := m.Dev.Damage.DeltaVT; dvt > res.WorstDeltaVT {
			res.WorstDeltaVT = dvt
		}
	}
	aged, err := ro.MeasureFrequency()
	if err != nil {
		return nil, fmt.Errorf("digital: aged frequency: %w", err)
	}
	res.AgedHz = aged
	res.SlowdownPct = 100 * (fresh - aged) / fresh
	return res, nil
}
