package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
)

func voutMetric(node string) func(*circuit.Circuit) (float64, error) {
	return func(c *circuit.Circuit) (float64, error) {
		sol, err := c.OperatingPoint()
		if err != nil {
			return 0, err
		}
		return sol.Voltage(node), nil
	}
}

func TestVTSensitivitiesIdentifyCriticalDevice(t *testing.T) {
	// Cascode-ish stack: the bottom (gm-setting) device should dominate
	// the output sensitivity over a diode-connected helper biased
	// elsewhere.
	tech := device.MustTech("90nm")
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	c.AddVSource("VG", "g", "0", circuit.DC(0.55))
	c.AddResistor("RD", "vdd", "d", 20e3)
	c.AddMOSFET("Mmain", "d", "g", "0", "0",
		device.NewMosfet(tech.NMOSParams(2e-6, 180e-9, 300)))
	// A lightly coupled side branch: diode device through a big resistor.
	c.AddResistor("RS", "vdd", "x", 1e6)
	c.AddMOSFET("Mside", "x", "x", "0", "0",
		device.NewMosfet(tech.NMOSParams(1e-6, 180e-9, 300)))

	sens, err := VTSensitivities(c, voutMetric("d"), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != 2 {
		t.Fatalf("got %d sensitivities", len(sens))
	}
	if sens[0].Device != "Mmain" {
		t.Errorf("dominant device = %s, want Mmain (sens %v)", sens[0].Device, sens)
	}
	// Raising the nMOS threshold lowers its current, raising V(d):
	// positive sensitivity.
	if sens[0].DMetricDVT <= 0 {
		t.Errorf("main sensitivity %g should be positive", sens[0].DMetricDVT)
	}
	// The decoupled device's influence on V(d) must be negligible.
	var side float64
	for _, s := range sens {
		if s.Device == "Mside" {
			side = s.DMetricDVT
		}
	}
	if abs(side) > abs(sens[0].DMetricDVT)/100 {
		t.Errorf("side branch sensitivity %g too large", side)
	}
}

func TestVTSensitivitiesRestoreState(t *testing.T) {
	tech := device.MustTech("90nm")
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	c.AddResistor("RD", "vdd", "d", 20e3)
	m := device.NewMosfet(tech.NMOSParams(2e-6, 180e-9, 300))
	m.Damage = device.Damage{DeltaVT: 0.02, MobilityFactor: 0.9, LambdaFactor: 1.1}
	c.AddMOSFET("M1", "d", "d", "0", "0", m)
	before := m.Damage
	if _, err := VTSensitivities(c, voutMetric("d"), 1e-3); err != nil {
		t.Fatal(err)
	}
	if m.Damage != before {
		t.Error("sensitivity analysis leaked damage-state changes")
	}
}

func TestVTSensitivitiesValidation(t *testing.T) {
	c := circuit.New()
	c.AddVSource("V1", "a", "0", circuit.DC(1))
	c.AddResistor("R1", "a", "0", 1e3)
	if _, err := VTSensitivities(c, voutMetric("a"), 1e-3); err == nil {
		t.Error("MOSFET-free circuit accepted")
	}
	tech := device.MustTech("90nm")
	c.AddMOSFET("M1", "a", "a", "0", "0",
		device.NewMosfet(tech.NMOSParams(1e-6, 90e-9, 300)))
	if _, err := VTSensitivities(c, voutMetric("a"), 0); err == nil {
		t.Error("zero perturbation accepted")
	}
}

func TestDamageSnapshotRoundTrip(t *testing.T) {
	tech := device.MustTech("65nm")
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(1.1))
	m := device.NewMosfet(tech.NMOSParams(1e-6, 65e-9, 300))
	m.Damage = device.Damage{DeltaVT: 0.03, MobilityFactor: 0.95, LambdaFactor: 1.2, GateLeak: 1e-7}
	c.AddMOSFET("M1", "vdd", "vdd", "0", "0", m)
	snap := DamageSnapshot(c)
	m.Damage = device.FreshDamage()
	RestoreDamage(c, snap)
	if m.Damage.DeltaVT != 0.03 || m.Damage.GateLeak != 1e-7 {
		t.Error("snapshot round trip lost state")
	}
}
