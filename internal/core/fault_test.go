package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/variation"
)

// TestRunSurvivesPanickingBuild injects a panic into every third Build
// call: the run must complete, report each blown trial as a structured
// build-phase failure, and keep the yield denominator at the survivors.
func TestRunSurvivesPanickingBuild(t *testing.T) {
	const nTrials = 21
	s := ampSim("90nm", 3)
	inner := s.Build
	var calls int64
	s.Build = func() (*circuit.Circuit, error) {
		// Call 1 is the nominal warm-start build; trials are calls
		// 2..nTrials+1, so calls 3, 6, ..., 21 panic: 7 trials.
		if atomic.AddInt64(&calls, 1)%3 == 0 {
			panic("fab line on fire")
		}
		return inner()
	}
	res, err := s.Run(nTrials, Mission{Duration: year, TempK: 350, Checkpoints: 3})
	if err != nil {
		t.Fatal(err)
	}
	const wantErrors = 7
	if res.Errors != wantErrors || len(res.TrialErrors) != wantErrors {
		t.Fatalf("errors=%d structured=%d, want %d", res.Errors, len(res.TrialErrors), wantErrors)
	}
	for _, te := range res.TrialErrors {
		if te.Phase != "build" {
			t.Errorf("panic attributed to phase %q, want build", te.Phase)
		}
		if te.Kind() != variation.FailPanic {
			t.Errorf("panic classified as %v", te.Kind())
		}
	}
	if res.Telemetry.ErrorsByPhase["build"] != wantErrors {
		t.Errorf("ErrorsByPhase = %v", res.Telemetry.ErrorsByPhase)
	}
	if res.Telemetry.ErrorsByKind[variation.FailPanic] != wantErrors {
		t.Errorf("ErrorsByKind = %v", res.Telemetry.ErrorsByKind)
	}
	if got := res.Yield[0].Total; got != nTrials-wantErrors {
		t.Errorf("yield denominator %d, want %d survivors", got, nTrials-wantErrors)
	}
	if got := len(res.FailureTimes) + res.Errors; got != nTrials {
		t.Errorf("failure times + errors = %d, want %d", got, nTrials)
	}
	if res.Cancelled != 0 {
		t.Errorf("Cancelled = %d on an uncancelled run", res.Cancelled)
	}
}

// TestRunSurvivesPanickingMeasure blows up exactly one Measure call and
// checks the failure lands in the measure phase.
func TestRunSurvivesPanickingMeasure(t *testing.T) {
	s := ampSim("90nm", 5)
	var once sync.Once
	inner := s.Metrics[0].Measure
	s.Metrics[0].Measure = func(c *circuit.Circuit) (float64, error) {
		blow := false
		once.Do(func() { blow = true })
		if blow {
			panic("monitor divided by zero")
		}
		return inner(c)
	}
	res, err := s.Run(12, Mission{Duration: year, TempK: 350, Checkpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 1 || len(res.TrialErrors) != 1 {
		t.Fatalf("errors=%d structured=%d, want exactly 1", res.Errors, len(res.TrialErrors))
	}
	te := res.TrialErrors[0]
	if te.Phase != "measure" {
		t.Errorf("panic attributed to phase %q, want measure", te.Phase)
	}
	var pe *variation.PanicError
	if !errors.As(te, &pe) || len(pe.Stack) == 0 {
		t.Error("measure panic lost its PanicError/stack")
	}
}

// TestRunCtxCancellationPartialResult cancels mid-run and checks the
// partial result carries accurate Cancelled accounting.
func TestRunCtxCancellationPartialResult(t *testing.T) {
	const nTrials = 400
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := ampSim("90nm", 11)
	inner := s.Build
	var calls int64
	s.Build = func() (*circuit.Circuit, error) {
		if atomic.AddInt64(&calls, 1) == 6 {
			cancel()
		}
		return inner()
	}
	res, err := s.RunCtx(ctx, nTrials, Mission{Duration: year, TempK: 350, Checkpoints: 2})
	if !errors.Is(err, variation.ErrCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrCancelled", err)
	}
	if res == nil {
		t.Fatal("cancelled run must still return the partial result")
	}
	if res.Cancelled == 0 {
		t.Error("no trials accounted as cancelled")
	}
	if res.Telemetry.Completed != nTrials-res.Cancelled {
		t.Errorf("Completed = %d, want %d", res.Telemetry.Completed, nTrials-res.Cancelled)
	}
	if got := len(res.FailureTimes) + res.Errors + res.Cancelled; got != nTrials {
		t.Errorf("accounting leak: %d failure-times + %d errors + %d cancelled != %d",
			len(res.FailureTimes), res.Errors, res.Cancelled, nTrials)
	}
	for k := range res.Yield {
		if res.Yield[k].Total > res.Telemetry.Completed {
			t.Errorf("yield denominator %d exceeds completed trials %d",
				res.Yield[k].Total, res.Telemetry.Completed)
		}
	}
}

// TestRunCtxPreCancelled hands Run an already-dead context: nothing may
// execute and every trial must be accounted as cancelled.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := ampSim("90nm", 1)
	res, err := s.RunCtx(ctx, 10, Mission{Duration: year, TempK: 350, Checkpoints: 2})
	if !errors.Is(err, variation.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if res.Cancelled != 10 || res.Telemetry.Completed != 0 {
		t.Errorf("cancelled=%d completed=%d, want 10/0", res.Cancelled, res.Telemetry.Completed)
	}
}

func TestRunTelemetry(t *testing.T) {
	s := ampSim("90nm", 2)
	res, err := s.Run(8, Mission{Duration: year, TempK: 350, Checkpoints: 3})
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry
	if tel.Completed != 8 {
		t.Errorf("Completed = %d, want 8", tel.Completed)
	}
	if tel.WallTime <= 0 {
		t.Error("wall time not recorded")
	}
	if tel.NewtonIterations <= 0 {
		t.Error("Newton iteration total not recorded")
	}
	if res.Errors == 0 && (tel.ErrorsByPhase != nil || tel.ErrorsByKind != nil) {
		t.Error("error maps must be nil on a clean run")
	}
}

// Regression: Mission{Checkpoints: 1} used to panic inside
// mathx.Logspace; it must now mean "end-of-life only".
func TestMissionSingleCheckpoint(t *testing.T) {
	m := Mission{Duration: 10 * year, TempK: 350, Checkpoints: 1}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ts := m.CheckpointTimes()
	if len(ts) != 1 || ts[0] != 10*year {
		t.Fatalf("CheckpointTimes = %v, want [%g]", ts, 10*year)
	}
	s := ampSim("90nm", 4)
	res, err := s.Run(6, m)
	if err != nil {
		t.Fatal(err)
	}
	// t=0 prepended plus the single end-of-life checkpoint.
	if len(res.Times) != 2 || len(res.Yield) != 2 {
		t.Errorf("got %d times / %d yields, want 2/2", len(res.Times), len(res.Yield))
	}
}

// Regression: YieldAt on an empty result used to index out of range.
func TestYieldAtEmptyResult(t *testing.T) {
	empty := &Result{}
	if got := empty.YieldAt(5); got != (variation.YieldEstimate{}) {
		t.Errorf("YieldAt on empty result = %+v, want zero estimate", got)
	}
}

// A cancelled run must not burn meaningful wall time after the deadline.
func TestRunCtxDeadlineStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	s := ampSim("65nm", 8)
	start := time.Now()
	res, err := s.RunCtx(ctx, 100000, Mission{Duration: 20 * year, TempK: 400, Checkpoints: 8})
	if !errors.Is(err, variation.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v to stop", elapsed)
	}
	if res.Cancelled == 0 {
		t.Error("deadline left no trials cancelled")
	}
	if res.Telemetry.Completed+res.Cancelled != 100000 {
		t.Errorf("accounting leak: completed %d + cancelled %d != 100000",
			res.Telemetry.Completed, res.Cancelled)
	}
}
