package core

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestHazardFlatForExponential(t *testing.T) {
	// Constant-hazard (exponential) failures: the life-table estimate must
	// be flat at λ = 1/mean.
	rng := mathx.NewRNG(1)
	const lambda = 1e-3
	times := make([]float64, 50000)
	for i := range times {
		times[i] = rng.Exp() / lambda
	}
	// Keep λ·binWidth small: the life-table estimator reads
	// (1−e^{−λw})/w, which undershoots λ for coarse bins.
	edges := mathx.Linspace(0, 600, 7)
	h, err := EstimateHazard(times, edges)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range h.Rate {
		if math.IsNaN(r) {
			t.Fatalf("bin %d has no at-risk units", i)
		}
		if !mathx.ApproxEqual(r, lambda, 0.1, 0) {
			t.Errorf("bin %d hazard %g, want ~%g", i, r, lambda)
		}
	}
}

func TestHazardRisingForWeibullWearOut(t *testing.T) {
	// β > 1 Weibull (wear-out) must show a rising hazard.
	rng := mathx.NewRNG(2)
	w := mathx.NewWeibull(3, 1000)
	times := make([]float64, 50000)
	for i := range times {
		times[i] = w.Sample(rng)
	}
	edges := mathx.Linspace(0, 1500, 6)
	h, err := EstimateHazard(times, edges)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(h.Rate); i++ {
		if math.IsNaN(h.Rate[i]) {
			continue
		}
		if h.Rate[i] <= h.Rate[i-1] {
			t.Errorf("hazard not rising at bin %d: %g <= %g", i, h.Rate[i], h.Rate[i-1])
		}
	}
	// Onset detection: the threshold crossed somewhere inside the range.
	onset := h.WearOutOnset(h.Rate[len(h.Rate)-1] / 2)
	if math.IsInf(onset, 1) || onset == 0 {
		t.Errorf("wear-out onset %g not detected mid-range", onset)
	}
}

func TestHazardSurvivorsStayAtRisk(t *testing.T) {
	times := []float64{10, 20, math.Inf(1), math.Inf(1)}
	h, err := EstimateHazard(times, []float64{0, 15, 30})
	if err != nil {
		t.Fatal(err)
	}
	if h.AtRisk[0] != 4 || h.Failures[0] != 1 {
		t.Errorf("bin 0: atRisk=%d fails=%d", h.AtRisk[0], h.Failures[0])
	}
	if h.AtRisk[1] != 3 || h.Failures[1] != 1 {
		t.Errorf("bin 1: atRisk=%d fails=%d", h.AtRisk[1], h.Failures[1])
	}
}

func TestHazardValidation(t *testing.T) {
	if _, err := EstimateHazard([]float64{1}, []float64{0}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := EstimateHazard([]float64{1}, []float64{5, 2}); err == nil {
		t.Error("decreasing edges accepted")
	}
}

func TestHazardOnReliabilityRun(t *testing.T) {
	// End-to-end: the PMOS amp Monte-Carlo failure times show wear-out —
	// a hazard that rises toward end of life.
	s := ampSim("65nm", 21)
	res, err := s.Run(80, Mission{Duration: 20 * year, TempK: 400, Checkpoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	h, err := EstimateHazard(res.FailureTimes, mathx.Logspace(1e4, 20*year, 6))
	if err != nil {
		t.Fatal(err)
	}
	// The last finite hazard must exceed the first (wear-out wall).
	var first, last float64 = math.NaN(), math.NaN()
	for _, r := range h.Rate {
		if !math.IsNaN(r) && r > 0 {
			if math.IsNaN(first) {
				first = r
			}
			last = r
		}
	}
	if math.IsNaN(first) || math.IsNaN(last) {
		t.Skip("no failures in range — mission too gentle for this seed")
	}
	if last < first {
		t.Errorf("hazard should rise into wear-out: first %g, last %g", first, last)
	}
}
