package core

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestMetricsConsistentWithTelemetry runs a full reliability study with the
// whole-stack instrumentation enabled and checks that the obs counters
// stamped into Result.Telemetry.Metrics move by exactly the amounts the
// Result itself reports: the two accounting paths (structured telemetry
// and the metrics registry) must never drift apart, or operators watching
// /metrics would see a different run than the one the JSON report records.
func TestMetricsConsistentWithTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	before := reg.Snapshot()
	s := ampSim("90nm", 7)
	mission := Mission{Duration: 10 * year, TempK: 350, Checkpoints: 4}
	const nTrials = 32
	res, err := s.RunCtx(context.Background(), nTrials, mission)
	if err != nil {
		t.Fatal(err)
	}

	after := res.Telemetry.Metrics
	if after == nil {
		t.Fatal("Telemetry.Metrics is nil with metrics enabled")
	}
	delta := func(name string) int64 {
		b, _ := before.Counter(name)
		a, ok := after.Counter(name)
		if !ok {
			t.Fatalf("counter %q missing from snapshot", name)
		}
		return a - b
	}

	if got := delta("core_runs_total"); got != 1 {
		t.Errorf("core_runs_total moved by %d, want 1", got)
	}
	if got := delta("core_trials_completed_total"); got != int64(res.Telemetry.Completed) {
		t.Errorf("core_trials_completed_total moved by %d, Telemetry.Completed = %d",
			got, res.Telemetry.Completed)
	}
	if got := delta("core_trial_errors_total"); got != int64(res.Errors) {
		t.Errorf("core_trial_errors_total moved by %d, Result.Errors = %d", got, res.Errors)
	}
	if got := delta("core_trials_cancelled_total"); got != int64(res.Cancelled) {
		t.Errorf("core_trials_cancelled_total moved by %d, Result.Cancelled = %d",
			got, res.Cancelled)
	}

	// The circuit-level Newton counter covers everything Telemetry counts
	// plus the nominal warm-start solve RunCtx performs outside any trial,
	// so it must be >= and within one extra operating point of the
	// telemetry total.
	newton := delta("circuit_newton_iterations_total")
	if newton < res.Telemetry.NewtonIterations {
		t.Errorf("circuit_newton_iterations_total moved by %d < Telemetry.NewtonIterations %d",
			newton, res.Telemetry.NewtonIterations)
	}

	// The per-trial latency histogram must have recorded every completed
	// trial (cancelled trials never start the span).
	h := after.Histogram("core_trial_seconds")
	if h == nil {
		t.Fatal("core_trial_seconds missing from snapshot")
	}
	var hb int64
	if prev := before.Histogram("core_trial_seconds"); prev != nil {
		hb = prev.Count
	}
	if got := h.Count - hb; got != int64(res.Telemetry.Completed) {
		t.Errorf("core_trial_seconds recorded %d trials, Telemetry.Completed = %d",
			got, res.Telemetry.Completed)
	}

	// A second run against the same registry must advance the counters
	// cumulatively — snapshots are process totals, not per-run resets.
	res2, err := s.RunCtx(context.Background(), nTrials, mission)
	if err != nil {
		t.Fatal(err)
	}
	done1, _ := after.Counter("core_trials_completed_total")
	done2, ok := res2.Telemetry.Metrics.Counter("core_trials_completed_total")
	if !ok || done2-done1 != int64(res2.Telemetry.Completed) {
		t.Errorf("second run moved core_trials_completed_total by %d, want %d",
			done2-done1, res2.Telemetry.Completed)
	}
}

// TestMetricsDisabledLeavesTelemetryBare checks the disabled path: no
// registry, no snapshot, and RunCtx still produces a full Result.
func TestMetricsDisabledLeavesTelemetryBare(t *testing.T) {
	EnableMetrics(nil)
	s := ampSim("90nm", 3)
	res, err := s.RunCtx(context.Background(), 8,
		Mission{Duration: year, TempK: 350, Checkpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry.Metrics != nil {
		t.Error("Telemetry.Metrics non-nil with metrics disabled")
	}
	if res.Telemetry.Completed != 8 {
		t.Errorf("Completed = %d, want 8", res.Telemetry.Completed)
	}
}
