package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/variation"
)

// The full-stack integration test: a hierarchical netlist goes through
// parsing, Monte-Carlo fabrication, mission aging, yield extraction,
// sensitivity ranking and report rendering — every layer of the repository
// in one flow, the way a user of the library would chain them.

const integrationDeck = `
* two-stage reliability vehicle
.tech 65nm
.subckt STAGE in out vdd
MP out in vdd vdd PMOS W=4u L=130n
RL out 0 20k
.ends
VDD vdd 0 DC 1.1
VB  b1  0 DC 0.6
X1 b1 o1 vdd STAGE
.end
`

func TestFullStackNetlistToYield(t *testing.T) {
	// Parse once to locate the nominal output.
	d, err := netlist.Parse(integrationDeck)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.MOSFETs["X1.MP"]; !ok {
		t.Fatalf("hierarchy flattening lost the device: %v", len(d.MOSFETs))
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	vnom := sol.Voltage("o1")
	if vnom <= 0 || vnom >= 1.1 {
		t.Fatalf("nominal output %g outside rails", vnom)
	}

	// Sensitivity: the single PMOS must dominate (it is the only device).
	sens, err := VTSensitivities(d.Circuit, func(c *circuit.Circuit) (float64, error) {
		s, err := c.OperatingPoint()
		if err != nil {
			return 0, err
		}
		return s.Voltage("o1"), nil
	}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if sens[0].Device != "X1.MP" || sens[0].DMetricDVT == 0 {
		t.Fatalf("sensitivity ranking wrong: %+v", sens)
	}

	// Reliability simulation over a 10-year mission.
	sim := &Simulator{
		Build: func() (*circuit.Circuit, error) {
			dd, err := netlist.Parse(integrationDeck)
			if err != nil {
				return nil, err
			}
			return dd.Circuit, nil
		},
		Tech:   d.Tech,
		Models: aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()},
		Metrics: []Metric{{
			Name: "vout",
			Measure: func(c *circuit.Circuit) (float64, error) {
				s, err := c.OperatingPoint()
				if err != nil {
					return 0, err
				}
				return s.Voltage("o1"), nil
			},
			Spec: variation.Spec{Name: "vout", Lo: 0.8 * vnom, Hi: 1.2 * vnom},
		}},
		Seed: 2024,
	}
	res, err := sim.Run(50, Mission{Duration: 10 * year, TempK: 380, Checkpoints: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 2 {
		t.Fatalf("%d trials errored", res.Errors)
	}
	if res.Yield[0].Yield < 0.9 {
		t.Errorf("time-zero yield %v too low", res.Yield[0])
	}
	if last := res.Yield[len(res.Yield)-1]; last.Yield >= res.Yield[0].Yield {
		t.Errorf("no wear-out visible: %v -> %v", res.Yield[0], last)
	}
	if math.IsInf(res.MedianTTF(), 1) {
		t.Log("median TTF infinite — more than half the dies survived (acceptable)")
	}

	// Hazard estimation from the failure times.
	h, err := EstimateHazard(res.FailureTimes, []float64{1e5, 1e7, 10 * year})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Rate) != 2 {
		t.Fatal("hazard bins wrong")
	}

	// Report rendering holds the whole story.
	tb := report.NewTable("yield over life", "age", "yield")
	for k := range res.Times {
		tb.AddRow(report.Years(res.Times[k]), res.Yield[k].String())
	}
	out := tb.String()
	if !strings.Contains(out, "yield over life") || tb.NumRows() != len(res.Times) {
		t.Error("report rendering broken")
	}
}

func TestWeibullPlotRendering(t *testing.T) {
	out := report.WeibullPlot("TBD plot", []float64{3, 1, 2})
	if !strings.Contains(out, "weibit") {
		t.Error("missing weibit column")
	}
	lines := strings.Count(out, "\n")
	if lines != 6 { // title + header + sep + 3 rows
		t.Errorf("unexpected plot shape (%d lines):\n%s", lines, out)
	}
}
