package core

import (
	"math"
	"testing"

	"repro/internal/aging"
	"repro/internal/circuit"
)

// TestNaNMetricExcludedFromMomentsButCountedInYield pins the NaN
// accounting contract on the reliability-simulator path: a die whose
// metric measures NaN is a measured reject — it stays in the yield
// denominator (it failed its spec) but out of the moment summary, which
// would otherwise be poisoned to NaN mean/σ for every surviving die at
// the checkpoint. Mirrors variation.MCStats.Yield.
func TestNaNMetricExcludedFromMomentsButCountedInYield(t *testing.T) {
	const trials = 40
	s := ampSim("90nm", 17)
	s.Models = aging.Models{}
	// Make the measurement undefined for roughly half the dies: mismatch
	// scatters V(d) around its nominal value, and dies above it go NaN.
	base, _ := s.Build()
	sol, _ := base.OperatingPoint()
	vnom := sol.Voltage("d")
	inner := s.Metrics[0].Measure
	s.Metrics[0].Measure = func(c *circuit.Circuit) (float64, error) {
		v, err := inner(c)
		if err != nil {
			return 0, err
		}
		if v > vnom {
			return math.NaN(), nil
		}
		return v, nil
	}
	res, err := s.Run(trials, Mission{Duration: year, TempK: 350, Checkpoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d trial errors, want a clean run", res.Errors)
	}
	st := res.MetricStats[0][0]
	if st.Count == 0 || st.Count == trials {
		t.Fatalf("finite-die count = %d of %d: the NaN split did not bite", st.Count, trials)
	}
	if math.IsNaN(st.Mean) || math.IsNaN(res.MetricMeans[0][0]) {
		t.Error("NaN die poisoned the moment summary")
	}
	// Every NaN die still reached a verdict: full denominator, and a NaN
	// can never pass a spec window.
	y := res.YieldAt(0)
	if y.Total != trials {
		t.Errorf("yield denominator = %d, want all %d measured dies", y.Total, trials)
	}
	if y.Pass > int(st.Count) {
		t.Errorf("passes (%d) exceed finite dies (%d): a NaN passed the spec", y.Pass, st.Count)
	}
}
