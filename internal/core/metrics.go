package core

import (
	"sync/atomic"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/variation"
)

// pkgMetrics holds the reliability simulator's own instruments plus the
// registry they came from, so a finished run can stamp a whole-stack
// Snapshot into its Result.Telemetry.
type pkgMetrics struct {
	reg          *obs.Registry
	trialsDone   *obs.Counter
	trialErrors  *obs.Counter
	cancelled    *obs.Counter
	runs         *obs.Counter
	trialSeconds *obs.Histogram
}

var met atomic.Pointer[pkgMetrics]

// SetMetrics wires the core simulator's instrumentation into reg, or
// disables it when reg is nil. The counters are added during the
// single-threaded accounting pass of RunCtx, so for any single run their
// deltas equal the Result.Telemetry fields exactly.
//
// Metrics registered:
//
//	core_runs_total                count  RunCtx invocations
//	core_trials_completed_total    count  trials run to a verdict (== Telemetry.Completed summed)
//	core_trial_errors_total        count  trials whose simulation failed (== Result.Errors summed)
//	core_trials_cancelled_total    count  trials never run (== Result.Cancelled summed)
//	core_trial_seconds             s      per-trial wall time (fabricate + age + measure)
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&pkgMetrics{
		reg:          reg,
		runs:         reg.Counter("core_runs_total", "1", "reliability runs started"),
		trialsDone:   reg.Counter("core_trials_completed_total", "1", "reliability trials run to a verdict"),
		trialErrors:  reg.Counter("core_trial_errors_total", "1", "reliability trials that errored"),
		cancelled:    reg.Counter("core_trials_cancelled_total", "1", "reliability trials cancelled before running"),
		trialSeconds: reg.Histogram("core_trial_seconds", "s", "per-trial fabricate+age+measure latency", nil),
	})
}

// EnableMetrics wires the whole reliability stack — linalg, circuit,
// variation, aging and core itself — into one registry in a single call
// (nil disables everything). The emc and em packages sit beside this
// stack rather than under it, so callers that use them wire
// emc.SetMetrics / em.SetMetrics separately.
func EnableMetrics(reg *obs.Registry) {
	linalg.SetMetrics(reg)
	circuit.SetMetrics(reg)
	variation.SetMetrics(reg)
	aging.SetMetrics(reg)
	SetMetrics(reg)
}
