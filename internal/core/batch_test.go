package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/circuit"
)

// TestBatchedRunBitIdentical pins the contract of Simulator.Batch: reusing
// one circuit across a chunk of trials (snapshot-restored damage, reset
// solver state, re-seeded guess) must reproduce the one-circuit-per-trial
// run bit for bit — yield, failure times, metric means, and even the total
// Newton iteration count, which would drift if a reused die started from
// different solver state than a fresh build.
func TestBatchedRunBitIdentical(t *testing.T) {
	mission := Mission{Duration: 5 * year, TempK: 380, Checkpoints: 4}
	const trials = 24
	ref, err := ampSim("90nm", 42).Run(trials, mission)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{5, 8, 64} {
		s := ampSim("90nm", 42)
		s.Batch = batch
		got, err := s.Run(trials, mission)
		if err != nil {
			t.Fatalf("Batch=%d: %v", batch, err)
		}
		if got.Errors != ref.Errors || got.Cancelled != ref.Cancelled {
			t.Fatalf("Batch=%d: errors/cancelled %d/%d, want %d/%d",
				batch, got.Errors, got.Cancelled, ref.Errors, ref.Cancelled)
		}
		for k := range ref.Yield {
			if got.Yield[k] != ref.Yield[k] {
				t.Fatalf("Batch=%d: yield differs at checkpoint %d: %+v vs %+v",
					batch, k, got.Yield[k], ref.Yield[k])
			}
			for m := range ref.MetricMeans[k] {
				if got.MetricMeans[k][m] != ref.MetricMeans[k][m] {
					t.Fatalf("Batch=%d: metric mean differs at checkpoint %d metric %d: %g vs %g",
						batch, k, m, got.MetricMeans[k][m], ref.MetricMeans[k][m])
				}
			}
		}
		if len(got.FailureTimes) != len(ref.FailureTimes) {
			t.Fatalf("Batch=%d: %d failure times, want %d",
				batch, len(got.FailureTimes), len(ref.FailureTimes))
		}
		for i := range ref.FailureTimes {
			if got.FailureTimes[i] != ref.FailureTimes[i] {
				t.Fatalf("Batch=%d: failure time %d differs", batch, i)
			}
		}
		if got.Telemetry.NewtonIterations != ref.Telemetry.NewtonIterations {
			t.Fatalf("Batch=%d: %d Newton iterations, want %d — reused circuits are not starting from fresh-build state",
				batch, got.Telemetry.NewtonIterations, ref.Telemetry.NewtonIterations)
		}
	}
}

// TestBatchedRunSurvivesFailingBuild checks the chunk loop records a
// build failure as that trial's error and rebuilds for the next trial
// instead of wedging the whole chunk.
func TestBatchedRunSurvivesFailingBuild(t *testing.T) {
	s := ampSim("90nm", 7)
	inner := s.Build
	var mu sync.Mutex
	calls := 0
	s.Build = func() (*circuit.Circuit, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n%3 == 0 {
			return nil, errors.New("flaky fab")
		}
		return inner()
	}
	s.Batch = 4
	const trials = 12
	res, err := s.Run(trials, Mission{Duration: year, TempK: 350, Checkpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("no build failures recorded despite flaky Build")
	}
	if got := res.Errors + len(res.FailureTimes); got != trials {
		t.Fatalf("errors + verdicts = %d, want %d — a chunk wedged after a build failure", got, trials)
	}
	for _, te := range res.TrialErrors {
		if te.Phase != "build" {
			t.Fatalf("unexpected error phase %q: %v", te.Phase, te)
		}
	}
}
