package core

import (
	"fmt"
	"math"
	"sort"
)

// HazardCurve is a life-table estimate of the instantaneous failure rate
// λ(t) from Monte-Carlo failure times: the quantity whose early-decreasing
// / flat / late-increasing shape is the classic reliability bathtub. Our
// wear-out mechanisms produce the right-hand wall of that bathtub.
type HazardCurve struct {
	// Edges are the n+1 bin boundaries in seconds.
	Edges []float64
	// Failures[i] counts failures inside bin i.
	Failures []int
	// AtRisk[i] counts units alive at the start of bin i.
	AtRisk []int
	// Rate[i] is the estimated hazard in failures per unit-second:
	// Failures[i] / (AtRisk[i] · width_i). NaN when nothing was at risk.
	Rate []float64
}

// EstimateHazard bins failure times (as produced by Result.FailureTimes,
// +Inf marking survivors) into the given increasing edges. Failures before
// the first edge reduce the at-risk population but are not binned.
func EstimateHazard(failureTimes []float64, edges []float64) (*HazardCurve, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("core: hazard needs at least 2 bin edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("core: hazard edges must increase")
		}
	}
	times := append([]float64(nil), failureTimes...)
	sort.Float64s(times)

	nBins := len(edges) - 1
	h := &HazardCurve{
		Edges:    append([]float64(nil), edges...),
		Failures: make([]int, nBins),
		AtRisk:   make([]int, nBins),
		Rate:     make([]float64, nBins),
	}
	for b := 0; b < nBins; b++ {
		lo, hi := edges[b], edges[b+1]
		atRisk, fails := 0, 0
		for _, t := range times {
			if t >= lo {
				atRisk++
			}
			if t >= lo && t < hi {
				fails++
			}
		}
		h.AtRisk[b] = atRisk
		h.Failures[b] = fails
		if atRisk == 0 {
			h.Rate[b] = math.NaN()
			continue
		}
		h.Rate[b] = float64(fails) / (float64(atRisk) * (hi - lo))
	}
	return h, nil
}

// WearOutOnset returns the time of the first bin whose hazard exceeds
// thresholdPerSecond — a simple operational definition of where the
// bathtub's wear-out wall begins. It returns +Inf when the hazard never
// reaches the threshold.
func (h *HazardCurve) WearOutOnset(thresholdPerSecond float64) float64 {
	for i, r := range h.Rate {
		if !math.IsNaN(r) && r >= thresholdPerSecond {
			return h.Edges[i]
		}
	}
	return math.Inf(1)
}
