// Package core is the top of the stack: it combines the time-zero
// variability layer (Pelgrom Monte-Carlo sampling), the time-dependent
// degradation layer (NBTI/HCI/TDDB aging) and a specification system into
// a single reliability simulator that answers the paper's headline
// question — how does yield evolve over a product lifetime in a nanometer
// CMOS technology, and when do circuits drop out of spec?
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/variation"
)

// Metric is one monitored performance figure with its acceptance spec.
type Metric struct {
	Name string
	// Measure evaluates the metric on a circuit (typically from its
	// operating point or an AC analysis).
	Measure func(c *circuit.Circuit) (float64, error)
	// Spec is the pass interval.
	Spec variation.Spec
}

// Mission describes the use conditions over which reliability is assessed.
type Mission struct {
	// Duration is the mission length in seconds.
	Duration float64
	// TempK is the junction temperature.
	TempK float64
	// Checkpoints is the number of aging checkpoints (log-spaced from
	// Duration/1e6 unless LinearTime).
	Checkpoints int
	// LinearTime selects linear checkpoint spacing (log-spaced is the
	// right default for power-law aging).
	LinearTime bool
	// Duty maps device names to stress duty factors (default 1).
	Duty map[string]float64
}

// CheckpointTimes expands the mission into concrete times. A single
// checkpoint degenerates to the mission end for both spacings — end-of-
// life yield with no intermediate snapshots.
func (m Mission) CheckpointTimes() []float64 {
	if m.LinearTime {
		return aging.LinCheckpoints(m.Duration, m.Checkpoints)
	}
	return aging.LogCheckpoints(m.Duration/1e6, m.Duration, m.Checkpoints)
}

// Validate checks the mission.
func (m Mission) Validate() error {
	switch {
	case m.Duration <= 0:
		return fmt.Errorf("core: non-positive mission duration %g", m.Duration)
	case m.TempK <= 0:
		return fmt.Errorf("core: non-positive temperature %g", m.TempK)
	case m.Checkpoints < 1:
		return fmt.Errorf("core: need at least one checkpoint")
	}
	return nil
}

// Simulator runs Monte-Carlo reliability analysis: every trial fabricates
// one die (fresh mismatch sample), ages it through the mission and records
// the monitored metrics at every checkpoint.
type Simulator struct {
	// Build constructs a fresh nominal circuit. It must return a new
	// instance on every call (trials run in parallel).
	Build func() (*circuit.Circuit, error)
	// Tech supplies the mismatch coefficients.
	Tech *device.Technology
	// Models are the degradation mechanisms (zero value disables aging).
	Models aging.Models
	// Metrics are the monitored specs.
	Metrics []Metric
	// GlobalSigmaVT / GlobalSigmaBeta enable die-to-die corners on top of
	// local mismatch (0 disables).
	GlobalSigmaVT, GlobalSigmaBeta float64
	// Seed makes the whole analysis reproducible.
	Seed uint64
	// Batch is the number of consecutive trials evaluated on one reused
	// circuit instance before it is rebuilt: each worker builds a die once
	// per chunk, then re-fabricates it in place (damage snapshot restored,
	// fresh mismatch applied, solver state reset) for the remaining trials,
	// amortising netlist construction, pattern discovery and symbolic
	// factorisation. Results are bit-identical for any Batch value — the
	// per-trial RNG streams depend only on (Seed, index). Values <= 1 run
	// the classic one-circuit-per-trial path.
	Batch int
}

// Result is the outcome of a reliability run.
type Result struct {
	// Times are the checkpoint times (with t=0 prepended).
	Times []float64
	// Yield[k] is the fraction of trials meeting every spec at Times[k].
	Yield []variation.YieldEstimate
	// MetricMeans[k][m] is the mean of metric m over surviving evaluations
	// at checkpoint k — the MeanValue projection of MetricStats, kept for
	// compatibility.
	MetricMeans [][]float64
	// MetricStats[k][m] is the mergeable moment summary (count, mean,
	// variance, extrema) of metric m over surviving evaluations at
	// Times[k], so dispersion over life is available without retaining
	// per-trial values.
	MetricStats [][]mathx.Moments
	// FailureTimes holds each trial's first out-of-spec time (+Inf for
	// survivors), sorted ascending.
	FailureTimes []float64
	// Trials is the requested trial count; Errors counts trials whose
	// simulation failed outright.
	Trials, Errors int
	// Cancelled counts trials that never ran because the run's context
	// was cancelled; the rest of the result then describes a partial run
	// over Trials - Cancelled dies.
	Cancelled int
	// TrialErrors holds one structured record per errored trial, in
	// trial order; len(TrialErrors) == Errors.
	TrialErrors []*variation.TrialError
	// Telemetry summarises run execution for operators.
	Telemetry RunTelemetry
	// MetricNames echoes the metric order of MetricMeans.
	MetricNames []string
}

// RunTelemetry is the execution accounting of a reliability run — the
// operational counters a production service exports next to the yield
// answer itself.
type RunTelemetry struct {
	// Completed counts trials that ran to a verdict (succeeded or failed).
	Completed int
	// WallTime is the end-to-end run duration.
	WallTime time.Duration
	// NewtonIterations totals solver iterations across every trial —
	// the dominant cost driver of a run.
	NewtonIterations int64
	// ErrorsByPhase counts structured trial failures by pipeline phase
	// (build, mismatch, age, measure); nil when no trial failed.
	ErrorsByPhase map[string]int
	// ErrorsByKind counts structured trial failures by taxonomy kind
	// (convergence, panic, cancelled, other); nil when no trial failed.
	ErrorsByKind map[variation.FailureKind]int
	// Metrics is the whole-stack obs snapshot taken as the run finished —
	// solver, Monte-Carlo, and aging instruments in JSON-exportable form.
	// Nil unless metrics were enabled (core.EnableMetrics / SetMetrics).
	// The snapshot is cumulative across the process; the core_* counters
	// move by exactly this run's Completed/Errors/Cancelled.
	Metrics *obs.Snapshot
}

// MedianTTF returns the median failure time (+Inf when most trials
// survive).
func (r *Result) MedianTTF() float64 {
	if len(r.FailureTimes) == 0 {
		return math.Inf(1)
	}
	return r.FailureTimes[len(r.FailureTimes)/2]
}

// YieldAt returns the yield estimate nearest to time t, or a zero
// YieldEstimate when the result holds no checkpoints (every trial failed
// or was cancelled).
func (r *Result) YieldAt(t float64) variation.YieldEstimate {
	if len(r.Yield) == 0 {
		return variation.YieldEstimate{}
	}
	best, dist := 0, math.Inf(1)
	for i, tt := range r.Times {
		if d := math.Abs(tt - t); d < dist {
			best, dist = i, d
		}
	}
	return r.Yield[best]
}

// trialOut is the private outcome of one reliability trial.
type trialOut struct {
	ok        bool
	cancelled bool        // never ran: context cancelled before dispatch
	inSpec    []bool      // per checkpoint
	values    [][]float64 // per checkpoint per metric
	err       *variation.TrialError
	newton    int64 // Newton iterations spent by this trial's circuit
}

// Run is RunCtx with context.Background().
//
// Deprecated: call RunCtx so the campaign can be cancelled or bounded by
// a deadline; this wrapper remains for source compatibility only.
func (s *Simulator) Run(nTrials int, mission Mission) (*Result, error) {
	return s.RunCtx(context.Background(), nTrials, mission)
}

// RunCtx executes nTrials Monte-Carlo reliability trials. Trials run in
// parallel but the result depends only on (Simulator.Seed, nTrials).
// Each trial is fault-isolated: a panic in
// Build, mismatch sampling, aging or a Measure callback is recovered in
// the worker and recorded as a structured TrialError instead of crashing
// the run. When ctx is cancelled or its deadline passes, dispatch stops,
// in-flight trials drain, and the partial Result — with accurate
// Errors/Cancelled accounting and telemetry — is returned alongside an
// error wrapping variation.ErrCancelled.
func (s *Simulator) RunCtx(ctx context.Context, nTrials int, mission Mission) (*Result, error) {
	if nTrials <= 0 {
		return nil, fmt.Errorf("core: nTrials must be positive")
	}
	if s.Build == nil || s.Tech == nil || len(s.Metrics) == 0 {
		return nil, fmt.Errorf("core: simulator needs Build, Tech and at least one Metric")
	}
	if err := mission.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := met.Load()
	if m != nil {
		m.runs.Inc()
	}
	start := time.Now()
	times := append([]float64{0}, mission.CheckpointTimes()...)
	nCk := len(times)
	nMet := len(s.Metrics)

	outs := make([]trialOut, nTrials)
	root := mathx.NewRNG(s.Seed)
	guess := s.nominalGuess()

	batch := s.Batch
	if batch < 1 {
		batch = 1
	}
	nChunks := (nTrials + batch - 1) / batch
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	var wg sync.WaitGroup
	jobs := make(chan int) // chunk start index
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for start := range jobs {
				end := start + batch
				if end > nTrials {
					end = nTrials
				}
				s.runChunk(ctx, outs[start:end], start, root, times, mission, guess, m)
			}
		}()
	}
	sentEnd := 0
dispatch:
	for start := 0; start < nTrials; start += batch {
		select {
		case jobs <- start:
			sentEnd = start + batch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if sentEnd > nTrials {
		sentEnd = nTrials
	}
	for i := sentEnd; i < nTrials; i++ {
		outs[i].cancelled = true
	}

	res := &Result{Times: times, Trials: nTrials}
	for _, m := range s.Metrics {
		res.MetricNames = append(res.MetricNames, m.Name)
	}
	res.Yield = make([]variation.YieldEstimate, nCk)
	res.MetricMeans = make([][]float64, nCk)
	res.MetricStats = make([][]mathx.Moments, nCk)
	for k := 0; k < nCk; k++ {
		pass, total := 0, 0
		stats := make([]mathx.Moments, nMet)
		for _, o := range outs {
			if !o.ok {
				continue
			}
			total++
			if o.inSpec[k] {
				pass++
			}
			if o.values[k] != nil {
				for m, v := range o.values[k] {
					// A NaN metric is a measured reject: it already failed
					// the spec check, but folding it into the moments would
					// poison mean/σ for every surviving die at this
					// checkpoint. Keep it out of the dispersion summary,
					// mirroring variation.MCStats (NaNs counted for yield,
					// excluded from Moments).
					if math.IsNaN(v) {
						continue
					}
					stats[m].Add(v)
				}
			}
		}
		res.Yield[k] = variation.YieldFromCounts(pass, total)
		means := make([]float64, nMet)
		for m := range means {
			means[m] = stats[m].MeanValue()
		}
		res.MetricMeans[k] = means
		res.MetricStats[k] = stats
	}
	for _, o := range outs {
		res.Telemetry.NewtonIterations += o.newton
		switch {
		case o.cancelled:
			res.Cancelled++
			continue
		case !o.ok:
			res.Errors++
			if o.err != nil {
				res.TrialErrors = append(res.TrialErrors, o.err)
			}
			continue
		}
		ft := math.Inf(1)
		for k, in := range o.inSpec {
			if !in {
				ft = times[k]
				break
			}
		}
		res.FailureTimes = append(res.FailureTimes, ft)
	}
	sort.Float64s(res.FailureTimes)
	res.Telemetry.Completed = nTrials - res.Cancelled
	res.Telemetry.WallTime = time.Since(start)
	res.Telemetry.ErrorsByPhase = variation.CountByPhase(res.TrialErrors)
	res.Telemetry.ErrorsByKind = variation.CountByKind(res.TrialErrors)
	if m != nil {
		m.trialsDone.Add(int64(res.Telemetry.Completed))
		m.trialErrors.Add(int64(res.Errors))
		m.cancelled.Add(int64(res.Cancelled))
		res.Telemetry.Metrics = m.reg.Snapshot()
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("core: %w after %d/%d trials: %v",
			variation.ErrCancelled, res.Telemetry.Completed, nTrials, err)
	}
	return res, nil
}

// nominalGuess solves the nominal build once and hands its solution to
// every trial as a warm start: mismatch and corners only perturb the bias
// point, so each trial's first Newton solve starts next to its answer
// instead of climbing the cold homotopy ladder. The guess is read-only
// and shared; trials that diverge from it fall back to the cold ladder
// inside OperatingPoint, so this is purely a performance hint — a failing
// or even panicking nominal build just disables it.
func (s *Simulator) nominalGuess() (guess []float64) {
	defer func() { _ = recover() }()
	if c0, err := s.Build(); err == nil {
		if sol, err := c0.OperatingPoint(); err == nil {
			guess = sol.X
		}
	}
	return
}

// runChunk evaluates the trials [start, start+len(outs)) on one worker.
// With Batch > 1 one circuit is built for the whole chunk and re-fabricated
// in place between trials — damage restored to its post-Build snapshot,
// solver warm-start state reset, the nominal guess re-seeded — which is
// exactly the state a fresh Build produces, so results are bit-identical
// to the one-circuit-per-trial path. A die whose trial errors or panics is
// dropped (its state is suspect) and the next trial rebuilds.
func (s *Simulator) runChunk(ctx context.Context, outs []trialOut, start int, root *mathx.RNG, times []float64, mission Mission, guess []float64, m *pkgMetrics) {
	var c *circuit.Circuit
	var devs []*circuit.MOSFET
	var snap []device.Damage
	for k := range outs {
		i := start + k
		if ctx.Err() != nil {
			outs[k].cancelled = true
			continue
		}
		var sp obs.Span
		if m != nil {
			sp = obs.StartSpan(m.trialSeconds)
		}
		if c == nil {
			c2, err := s.buildTrialCircuit(guess)
			if err != nil {
				outs[k] = trialOut{err: &variation.TrialError{Index: i, Phase: "build", Cause: err}}
				sp.End()
				continue
			}
			c = c2
			if len(outs) > 1 {
				devs = c.MOSFETs()
				snap = make([]device.Damage, len(devs))
				for d, mos := range devs {
					snap[d] = mos.Dev.Damage
				}
			}
		} else {
			for d, mos := range devs {
				mos.Dev.Damage = snap[d]
			}
			c.ResetSolverState()
			if guess != nil {
				_ = c.SetInitialGuess(guess)
			}
		}
		outs[k] = s.runTrialOn(c, i, root.Split(uint64(i)), times, mission)
		if !outs[k].ok {
			c = nil
		}
		sp.End()
	}
}

// buildTrialCircuit runs the user Build callback with panic isolation and
// seeds the warm-start guess. A recovered panic is returned as a
// *variation.PanicError so the caller can tag it with the build phase.
func (s *Simulator) buildTrialCircuit(guess []float64) (c *circuit.Circuit, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, &variation.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	c, err = s.Build()
	if err != nil {
		return nil, err
	}
	if guess != nil {
		// Best effort: a stale or mis-sized guess is simply ignored.
		_ = c.SetInitialGuess(guess)
	}
	return c, nil
}

// runTrialOn ages and measures one die on an already-built (possibly
// reused) circuit. A panic anywhere in the trial pipeline is recovered
// here and converted into a structured TrialError tagged with the phase
// that blew up, so one pathological die cannot take down the whole run.
// Newton iterations are accounted as the delta over the trial, so circuit
// reuse does not double-count earlier trials' work.
func (s *Simulator) runTrialOn(c *circuit.Circuit, index int, rng *mathx.RNG, times []float64, mission Mission) (out trialOut) {
	newton0 := c.NewtonIterations()
	phase := "mismatch"
	defer func() {
		out.newton = c.NewtonIterations() - newton0
		if r := recover(); r != nil {
			out = trialOut{newton: out.newton, err: &variation.TrialError{
				Index: index, Phase: phase,
				Cause: &variation.PanicError{Value: r, Stack: debug.Stack()},
			}}
		}
	}()
	corner := variation.NominalCorner()
	if s.GlobalSigmaVT > 0 || s.GlobalSigmaBeta > 0 {
		corner = variation.SampleGlobalCorner(s.GlobalSigmaVT, s.GlobalSigmaBeta, rng.Split(0))
	}
	variation.ApplyRandomMismatch(c, s.Tech, corner, rng.Split(1))

	phase = "age"
	ager := aging.NewCircuitAger(c, s.Models, mission.TempK, rng.Split(2).Uint64())
	ager.DutyOverride = mission.Duty

	out.inSpec = make([]bool, len(times))
	out.values = make([][]float64, len(times))

	measure := func(k int) {
		phase = "measure"
		vals := make([]float64, len(s.Metrics))
		pass := true
		for m, met := range s.Metrics {
			v, err := met.Measure(c)
			if err != nil {
				pass = false
				vals = nil
				break
			}
			vals[m] = v
			if !met.Spec.Pass(v) {
				pass = false
			}
		}
		out.inSpec[k] = pass
		out.values[k] = vals
	}

	measure(0)
	prev := 0.0
	for k := 1; k < len(times); k++ {
		phase = "age"
		if _, err := c.OperatingPoint(); err != nil {
			// Hard failure: everything from here on is out of spec.
			for j := k; j < len(times); j++ {
				out.inSpec[j] = false
			}
			out.ok = true
			return
		}
		stress := aging.ExtractStressOP(c, mission.TempK)
		for _, name := range ager.SortedAgerNames() {
			st := stress[name]
			if mission.Duty != nil {
				if d, ok := mission.Duty[name]; ok {
					st.Duty = d
				}
			}
			ager.Ager(name).Step(st, times[k]-prev)
		}
		prev = times[k]
		measure(k)
	}
	out.ok = true
	return
}
