// Package core is the top of the stack: it combines the time-zero
// variability layer (Pelgrom Monte-Carlo sampling), the time-dependent
// degradation layer (NBTI/HCI/TDDB aging) and a specification system into
// a single reliability simulator that answers the paper's headline
// question — how does yield evolve over a product lifetime in a nanometer
// CMOS technology, and when do circuits drop out of spec?
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/variation"
)

// Metric is one monitored performance figure with its acceptance spec.
type Metric struct {
	Name string
	// Measure evaluates the metric on a circuit (typically from its
	// operating point or an AC analysis).
	Measure func(c *circuit.Circuit) (float64, error)
	// Spec is the pass interval.
	Spec variation.Spec
}

// Mission describes the use conditions over which reliability is assessed.
type Mission struct {
	// Duration is the mission length in seconds.
	Duration float64
	// TempK is the junction temperature.
	TempK float64
	// Checkpoints is the number of aging checkpoints (log-spaced from
	// Duration/1e6 unless LinearTime).
	Checkpoints int
	// LinearTime selects linear checkpoint spacing (log-spaced is the
	// right default for power-law aging).
	LinearTime bool
	// Duty maps device names to stress duty factors (default 1).
	Duty map[string]float64
}

// CheckpointTimes expands the mission into concrete times.
func (m Mission) CheckpointTimes() []float64 {
	if m.LinearTime {
		return aging.LinCheckpoints(m.Duration, m.Checkpoints)
	}
	return aging.LogCheckpoints(m.Duration/1e6, m.Duration, m.Checkpoints)
}

// Validate checks the mission.
func (m Mission) Validate() error {
	switch {
	case m.Duration <= 0:
		return fmt.Errorf("core: non-positive mission duration %g", m.Duration)
	case m.TempK <= 0:
		return fmt.Errorf("core: non-positive temperature %g", m.TempK)
	case m.Checkpoints < 1:
		return fmt.Errorf("core: need at least one checkpoint")
	}
	return nil
}

// Simulator runs Monte-Carlo reliability analysis: every trial fabricates
// one die (fresh mismatch sample), ages it through the mission and records
// the monitored metrics at every checkpoint.
type Simulator struct {
	// Build constructs a fresh nominal circuit. It must return a new
	// instance on every call (trials run in parallel).
	Build func() (*circuit.Circuit, error)
	// Tech supplies the mismatch coefficients.
	Tech *device.Technology
	// Models are the degradation mechanisms (zero value disables aging).
	Models aging.Models
	// Metrics are the monitored specs.
	Metrics []Metric
	// GlobalSigmaVT / GlobalSigmaBeta enable die-to-die corners on top of
	// local mismatch (0 disables).
	GlobalSigmaVT, GlobalSigmaBeta float64
	// Seed makes the whole analysis reproducible.
	Seed uint64
}

// Result is the outcome of a reliability run.
type Result struct {
	// Times are the checkpoint times (with t=0 prepended).
	Times []float64
	// Yield[k] is the fraction of trials meeting every spec at Times[k].
	Yield []variation.YieldEstimate
	// MetricMeans[k][m] is the mean of metric m over surviving evaluations
	// at checkpoint k.
	MetricMeans [][]float64
	// FailureTimes holds each trial's first out-of-spec time (+Inf for
	// survivors), sorted ascending.
	FailureTimes []float64
	// Trials is the requested trial count; Errors counts trials whose
	// simulation failed outright.
	Trials, Errors int
	// MetricNames echoes the metric order of MetricMeans.
	MetricNames []string
}

// MedianTTF returns the median failure time (+Inf when most trials
// survive).
func (r *Result) MedianTTF() float64 {
	if len(r.FailureTimes) == 0 {
		return math.Inf(1)
	}
	return r.FailureTimes[len(r.FailureTimes)/2]
}

// YieldAt returns the yield estimate nearest to time t.
func (r *Result) YieldAt(t float64) variation.YieldEstimate {
	best, dist := 0, math.Inf(1)
	for i, tt := range r.Times {
		if d := math.Abs(tt - t); d < dist {
			best, dist = i, d
		}
	}
	return r.Yield[best]
}

// Run executes nTrials Monte-Carlo reliability trials. Trials run in
// parallel but the result depends only on (Simulator.Seed, nTrials).
func (s *Simulator) Run(nTrials int, mission Mission) (*Result, error) {
	if nTrials <= 0 {
		return nil, fmt.Errorf("core: nTrials must be positive")
	}
	if s.Build == nil || s.Tech == nil || len(s.Metrics) == 0 {
		return nil, fmt.Errorf("core: simulator needs Build, Tech and at least one Metric")
	}
	if err := mission.Validate(); err != nil {
		return nil, err
	}
	times := append([]float64{0}, mission.CheckpointTimes()...)
	nCk := len(times)
	nMet := len(s.Metrics)

	type trialOut struct {
		ok     bool
		inSpec []bool      // per checkpoint
		values [][]float64 // per checkpoint per metric
	}
	outs := make([]trialOut, nTrials)
	root := mathx.NewRNG(s.Seed)

	// Solve the nominal build once and hand its solution to every trial as
	// a warm start: mismatch and corners only perturb the bias point, so
	// each trial's first Newton solve starts next to its answer instead of
	// climbing the cold homotopy ladder. The guess is read-only and shared;
	// trials that diverge from it fall back to the cold ladder inside
	// OperatingPoint, so this is purely a performance hint.
	var guess []float64
	if c0, err := s.Build(); err == nil {
		if sol, err := c0.OperatingPoint(); err == nil {
			guess = sol.X
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > nTrials {
		workers = nTrials
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outs[i] = s.runTrial(root.Split(uint64(i)), times, mission, guess)
			}
		}()
	}
	for i := 0; i < nTrials; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	res := &Result{Times: times, Trials: nTrials}
	for _, m := range s.Metrics {
		res.MetricNames = append(res.MetricNames, m.Name)
	}
	res.Yield = make([]variation.YieldEstimate, nCk)
	res.MetricMeans = make([][]float64, nCk)
	for k := 0; k < nCk; k++ {
		pass, total := 0, 0
		sums := make([]float64, nMet)
		counts := 0
		for _, o := range outs {
			if !o.ok {
				continue
			}
			total++
			if o.inSpec[k] {
				pass++
			}
			if o.values[k] != nil {
				counts++
				for m, v := range o.values[k] {
					sums[m] += v
				}
			}
		}
		res.Yield[k] = variation.YieldFromCounts(pass, total)
		means := make([]float64, nMet)
		for m := range means {
			if counts > 0 {
				means[m] = sums[m] / float64(counts)
			} else {
				means[m] = math.NaN()
			}
		}
		res.MetricMeans[k] = means
	}
	for _, o := range outs {
		if !o.ok {
			res.Errors++
			continue
		}
		ft := math.Inf(1)
		for k, in := range o.inSpec {
			if !in {
				ft = times[k]
				break
			}
		}
		res.FailureTimes = append(res.FailureTimes, ft)
	}
	sort.Float64s(res.FailureTimes)
	return res, nil
}

// runTrial fabricates, ages and measures one die. guess, when non-nil, is
// a nominal operating-point solution used to warm-start the trial's first
// solve.
func (s *Simulator) runTrial(rng *mathx.RNG, times []float64, mission Mission, guess []float64) (out struct {
	ok     bool
	inSpec []bool
	values [][]float64
}) {
	c, err := s.Build()
	if err != nil {
		return
	}
	if guess != nil {
		// Best effort: a stale or mis-sized guess is simply ignored.
		_ = c.SetInitialGuess(guess)
	}
	corner := variation.NominalCorner()
	if s.GlobalSigmaVT > 0 || s.GlobalSigmaBeta > 0 {
		corner = variation.SampleGlobalCorner(s.GlobalSigmaVT, s.GlobalSigmaBeta, rng.Split(0))
	}
	variation.ApplyRandomMismatch(c, s.Tech, corner, rng.Split(1))

	ager := aging.NewCircuitAger(c, s.Models, mission.TempK, rng.Split(2).Uint64())
	ager.DutyOverride = mission.Duty

	out.inSpec = make([]bool, len(times))
	out.values = make([][]float64, len(times))

	measure := func(k int) {
		vals := make([]float64, len(s.Metrics))
		pass := true
		for m, met := range s.Metrics {
			v, err := met.Measure(c)
			if err != nil {
				pass = false
				vals = nil
				break
			}
			vals[m] = v
			if !met.Spec.Pass(v) {
				pass = false
			}
		}
		out.inSpec[k] = pass
		out.values[k] = vals
	}

	measure(0)
	prev := 0.0
	for k := 1; k < len(times); k++ {
		if _, err := c.OperatingPoint(); err != nil {
			// Hard failure: everything from here on is out of spec.
			for j := k; j < len(times); j++ {
				out.inSpec[j] = false
			}
			out.ok = true
			return
		}
		stress := aging.ExtractStressOP(c, mission.TempK)
		for _, name := range ager.SortedAgerNames() {
			st := stress[name]
			if mission.Duty != nil {
				if d, ok := mission.Duty[name]; ok {
					st.Duty = d
				}
			}
			ager.Ager(name).Step(st, times[k]-prev)
		}
		prev = times[k]
		measure(k)
	}
	out.ok = true
	return
}
