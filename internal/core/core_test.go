package core

import (
	"math"
	"testing"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/variation"
)

const year = 365.25 * 24 * 3600

// ampSim builds a Simulator around a PMOS common-source stage: the bias
// current (and hence the output voltage across RD) collapses as NBTI
// raises |VT|, making it a sensitive reliability vehicle. Ratiometric
// circuits like current mirrors cancel common aging to first order; this
// one deliberately does not.
func ampSim(techName string, seed uint64) *Simulator {
	tech := device.MustTech(techName)
	build := func() (*circuit.Circuit, error) {
		c := circuit.New()
		c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
		c.AddVSource("VG", "g", "0", circuit.DC(tech.VDD-0.45))
		m := device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300))
		c.AddMOSFET("M1", "d", "g", "vdd", "vdd", m)
		c.AddResistor("RD", "d", "0", 20e3)
		return c, nil
	}
	// Fresh nominal output voltage (used to centre the spec).
	c, _ := build()
	sol, _ := c.OperatingPoint()
	vnom := sol.Voltage("d")

	return &Simulator{
		Build:  build,
		Tech:   tech,
		Models: aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()},
		Metrics: []Metric{{
			Name: "vout",
			Measure: func(c *circuit.Circuit) (float64, error) {
				sol, err := c.OperatingPoint()
				if err != nil {
					return 0, err
				}
				return sol.Voltage("d"), nil
			},
			Spec: variation.Spec{Name: "vout", Lo: 0.85 * vnom, Hi: 1.15 * vnom},
		}},
		Seed: seed,
	}
}

func TestRunValidation(t *testing.T) {
	s := ampSim("90nm", 1)
	mission := Mission{Duration: year, TempK: 350, Checkpoints: 3}
	if _, err := s.Run(0, mission); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := s.Run(4, Mission{Duration: -1, TempK: 350, Checkpoints: 3}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := s.Run(4, Mission{Duration: 1, TempK: 0, Checkpoints: 3}); err == nil {
		t.Error("zero temperature accepted")
	}
	bad := *s
	bad.Metrics = nil
	if _, err := bad.Run(4, mission); err == nil {
		t.Error("no metrics accepted")
	}
}

func TestYieldDecaysOverLife(t *testing.T) {
	s := ampSim("65nm", 7)
	res, err := s.Run(60, Mission{Duration: 20 * year, TempK: 400, Checkpoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 5 {
		t.Fatalf("%d/60 trials errored", res.Errors)
	}
	y0 := res.Yield[0].Yield
	yEnd := res.Yield[len(res.Yield)-1].Yield
	if y0 < 0.8 {
		t.Errorf("time-zero yield %g too low — mismatch spec miscentred?", y0)
	}
	if yEnd >= y0 {
		t.Errorf("yield should decay with age: %g -> %g", y0, yEnd)
	}
	// Yield must be monotone non-increasing within statistical identity
	// (same trials, failure latches at first violation in FailureTimes,
	// though per-checkpoint spec checks may flicker; allow small slack).
	for k := 1; k < len(res.Yield); k++ {
		if res.Yield[k].Yield > res.Yield[k-1].Yield+0.1 {
			t.Errorf("yield jumped up at checkpoint %d: %g -> %g",
				k, res.Yield[k-1].Yield, res.Yield[k].Yield)
		}
	}
	if len(res.FailureTimes) == 0 {
		t.Fatal("no failure times recorded")
	}
	if got := len(res.FailureTimes) + res.Errors; got != 60 {
		t.Errorf("failure times + errors = %d, want 60", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	mission := Mission{Duration: 5 * year, TempK: 380, Checkpoints: 4}
	a, err := ampSim("90nm", 42).Run(24, mission)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ampSim("90nm", 42).Run(24, mission)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Yield {
		if a.Yield[k] != b.Yield[k] {
			t.Fatalf("yield differs at checkpoint %d", k)
		}
	}
	for i := range a.FailureTimes {
		if a.FailureTimes[i] != b.FailureTimes[i] {
			t.Fatal("failure times differ between identical runs")
		}
	}
	c, err := ampSim("90nm", 43).Run(24, mission)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := range a.Yield {
		if a.Yield[k] != c.Yield[k] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical yield trajectories")
	}
}

func TestMissionCheckpointSpacing(t *testing.T) {
	logM := Mission{Duration: 1e8, TempK: 300, Checkpoints: 5}
	lin := Mission{Duration: 1e8, TempK: 300, Checkpoints: 5, LinearTime: true}
	lt := logM.CheckpointTimes()
	nt := lin.CheckpointTimes()
	if len(lt) != 5 || len(nt) != 5 {
		t.Fatal("wrong checkpoint counts")
	}
	// Log spacing: constant ratio; linear: constant difference.
	r1 := lt[1] / lt[0]
	r2 := lt[2] / lt[1]
	if math.Abs(r1-r2) > 1e-9*r1 {
		t.Error("log spacing not geometric")
	}
	d1 := nt[1] - nt[0]
	d2 := nt[2] - nt[1]
	if math.Abs(d1-d2) > 1e-6 {
		t.Error("linear spacing not arithmetic")
	}
	if nt[4] != 1e8 || math.Abs(lt[4]-1e8) > 1 {
		t.Error("last checkpoint must hit the mission end")
	}
}

func TestMedianTTFAndYieldAt(t *testing.T) {
	r := &Result{
		Times: []float64{0, 10, 100},
		Yield: []variation.YieldEstimate{
			variation.YieldFromCounts(10, 10),
			variation.YieldFromCounts(5, 10),
			variation.YieldFromCounts(1, 10),
		},
		FailureTimes: []float64{10, 10, 100, math.Inf(1), math.Inf(1)},
	}
	if r.MedianTTF() != 100 {
		t.Errorf("median TTF = %g", r.MedianTTF())
	}
	if r.YieldAt(9).Pass != 5 {
		t.Error("YieldAt picked the wrong checkpoint")
	}
	if r.YieldAt(1e6).Pass != 1 {
		t.Error("YieldAt must clamp to the last checkpoint")
	}
	empty := &Result{}
	if !math.IsInf(empty.MedianTTF(), 1) {
		t.Error("empty result must report infinite TTF")
	}
}

func TestVariabilityOnlyRun(t *testing.T) {
	// With aging disabled (zero Models), yield must stay flat over time.
	s := ampSim("90nm", 5)
	s.Models = aging.Models{}
	res, err := s.Run(40, Mission{Duration: 10 * year, TempK: 400, Checkpoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Yield[0]
	for k, y := range res.Yield {
		if y != first {
			t.Errorf("yield changed at checkpoint %d without aging: %v vs %v", k, y, first)
		}
	}
}

func TestGlobalCornerWidensSpread(t *testing.T) {
	mission := Mission{Duration: year, TempK: 350, Checkpoints: 2}
	local := ampSim("90nm", 9)
	local.Models = aging.Models{}
	resLocal, err := local.Run(50, mission)
	if err != nil {
		t.Fatal(err)
	}
	global := ampSim("90nm", 9)
	global.Models = aging.Models{}
	global.GlobalSigmaVT = 0.05
	resGlobal, err := global.Run(50, mission)
	if err != nil {
		t.Fatal(err)
	}
	if resGlobal.Yield[0].Yield >= resLocal.Yield[0].Yield {
		t.Errorf("die-to-die corners should cost yield: %v vs %v",
			resGlobal.Yield[0], resLocal.Yield[0])
	}
}
