package core

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/device"
)

// Sensitivity quantifies how strongly one device's threshold shift moves a
// circuit metric — the design-time analysis §6 of the paper calls for:
// knowing which transistor dominates the degradation of each performance
// lets the designer guard exactly there (sizing, stress relief, or a
// knob).
type Sensitivity struct {
	// Device is the MOSFET element name.
	Device string
	// DMetricDVT is ∂(metric)/∂(ΔVT) in metric-units per volt.
	DMetricDVT float64
}

// VTSensitivities perturbs each MOSFET's threshold by deltaVT (a small
// positive value, e.g. 1 mV) one at a time and returns the centred
// finite-difference sensitivity of the metric, sorted by descending
// magnitude. The circuit's damage state is restored afterwards.
func VTSensitivities(c *circuit.Circuit, metric func(*circuit.Circuit) (float64, error), deltaVT float64) ([]Sensitivity, error) {
	if deltaVT <= 0 {
		return nil, fmt.Errorf("core: perturbation must be positive, got %g", deltaVT)
	}
	mosfets := c.MOSFETs()
	if len(mosfets) == 0 {
		return nil, fmt.Errorf("core: circuit has no MOSFETs")
	}
	out := make([]Sensitivity, 0, len(mosfets))
	for _, m := range mosfets {
		saved := m.Dev.Damage
		perturb := func(sign float64) (float64, error) {
			d := saved
			d.DeltaVT += sign * deltaVT
			m.Dev.Damage = d
			defer func() { m.Dev.Damage = saved }()
			return metric(c)
		}
		plus, err := perturb(+1)
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity of %s (+): %w", m.Name(), err)
		}
		minus, err := perturb(-1)
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity of %s (-): %w", m.Name(), err)
		}
		out = append(out, Sensitivity{
			Device:     m.Name(),
			DMetricDVT: (plus - minus) / (2 * deltaVT),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return abs(out[i].DMetricDVT) > abs(out[j].DMetricDVT)
	})
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// DamageSnapshot captures the damage state of every MOSFET so an analysis
// can restore it (paired with RestoreDamage).
func DamageSnapshot(c *circuit.Circuit) map[string]device.Damage {
	out := make(map[string]device.Damage)
	for _, m := range c.MOSFETs() {
		out[m.Name()] = m.Dev.Damage
	}
	return out
}

// RestoreDamage reinstalls a snapshot taken with DamageSnapshot.
func RestoreDamage(c *circuit.Circuit, snap map[string]device.Damage) {
	for _, m := range c.MOSFETs() {
		if d, ok := snap[m.Name()]; ok {
			m.Dev.Damage = d
		}
	}
}
