// Package adapt implements the "knobs and monitors" resilience concept of
// the paper's Section 5.2 (Fig. 6): monitors measure the actual performance
// of a running circuit, knobs are tunable circuit parameters, and a control
// algorithm picks the knob configuration that keeps every monitored
// specification satisfied as the circuit degrades. The package provides
// exhaustive and greedy (coordinate-descent) controllers and a mission
// runner that interleaves aging with re-tuning, so adaptive and static
// designs can be compared over a lifetime.
package adapt

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/variation"
)

// Monitor measures one performance figure of the system — the paper calls
// for "simple measurement circuits"; here a monitor is any function of the
// simulated circuit.
type Monitor struct {
	Name    string
	Measure func(c *circuit.Circuit) (float64, error)
}

// OPVoltageMonitor returns a monitor reading a DC node voltage.
func OPVoltageMonitor(name, node string) Monitor {
	return Monitor{Name: name, Measure: func(c *circuit.Circuit) (float64, error) {
		sol, err := c.OperatingPoint()
		if err != nil {
			return 0, err
		}
		return sol.Voltage(node), nil
	}}
}

// ACGainMonitor returns a monitor reading |V(node)| from a small-signal AC
// analysis at freq (the stimulus source must have ACMag set).
func ACGainMonitor(name, node string, freq float64) Monitor {
	return Monitor{Name: name, Measure: func(c *circuit.Circuit) (float64, error) {
		pts, err := c.AC([]float64{freq})
		if err != nil {
			return 0, err
		}
		return pts[0].Mag(node), nil
	}}
}

// SupplyCurrentMonitor returns a monitor reading the magnitude of the
// current drawn from the named voltage source — the power cost the paper
// acknowledges adaptation may incur.
func SupplyCurrentMonitor(name, source string) Monitor {
	return Monitor{Name: name, Measure: func(c *circuit.Circuit) (float64, error) {
		sol, err := c.OperatingPoint()
		if err != nil {
			return 0, err
		}
		i, err := sol.BranchCurrent(source)
		if err != nil {
			return 0, err
		}
		return math.Abs(i), nil
	}}
}

// Knob is one tunable circuit parameter with discrete settings — a
// reconfigurable bias, a switchable device bank, a body-bias level.
type Knob struct {
	Name   string
	Levels []float64
	// Apply installs a level value into the circuit.
	Apply func(value float64)
	idx   int
}

// NewKnob builds a knob and applies its first level. It panics on an empty
// level list or nil Apply.
func NewKnob(name string, levels []float64, apply func(float64)) *Knob {
	if len(levels) == 0 || apply == nil {
		panic("adapt: knob needs levels and an apply function")
	}
	k := &Knob{Name: name, Levels: levels, Apply: apply}
	k.SetIndex(0)
	return k
}

// VSourceKnob builds a knob that retunes a DC voltage source.
func VSourceKnob(name string, src *circuit.VSource, levels []float64) *Knob {
	return NewKnob(name, levels, func(v float64) { src.W = circuit.DC(v) })
}

// ISourceKnob builds a knob that retunes a DC current source.
func ISourceKnob(name string, src *circuit.ISource, levels []float64) *Knob {
	return NewKnob(name, levels, func(v float64) { src.W = circuit.DC(v) })
}

// SetIndex selects and applies level i.
func (k *Knob) SetIndex(i int) {
	if i < 0 || i >= len(k.Levels) {
		panic(fmt.Sprintf("adapt: knob %s index %d out of range", k.Name, i))
	}
	k.idx = i
	k.Apply(k.Levels[i])
}

// Index returns the current level index.
func (k *Knob) Index() int { return k.idx }

// Value returns the current level value.
func (k *Knob) Value() float64 { return k.Levels[k.idx] }

// Policy selects the control search strategy.
type Policy int

const (
	// Exhaustive searches the full knob-setting product space — optimal
	// but exponential in knob count.
	Exhaustive Policy = iota
	// Greedy runs coordinate descent over knobs — linear per sweep, may
	// stop at a local optimum.
	Greedy
)

// String names the policy.
func (p Policy) String() string {
	if p == Greedy {
		return "greedy"
	}
	return "exhaustive"
}

// Controller closes the monitor → control → knob loop of Fig. 6.
type Controller struct {
	Knobs    []*Knob
	Monitors []Monitor
	// Specs are parallel to Monitors.
	Specs  []variation.Spec
	Policy Policy
}

// NewController validates and builds a controller.
func NewController(knobs []*Knob, monitors []Monitor, specs []variation.Spec, policy Policy) (*Controller, error) {
	if len(knobs) == 0 {
		return nil, fmt.Errorf("adapt: controller needs at least one knob")
	}
	if len(monitors) == 0 || len(monitors) != len(specs) {
		return nil, fmt.Errorf("adapt: monitors (%d) and specs (%d) must pair up", len(monitors), len(specs))
	}
	return &Controller{Knobs: knobs, Monitors: monitors, Specs: specs, Policy: policy}, nil
}

// Evaluate measures every monitor and reports the spec-violation cost: 0
// when all specs pass, growing with normalised violation distance.
func (ct *Controller) Evaluate(c *circuit.Circuit) (values []float64, cost float64, err error) {
	values = make([]float64, len(ct.Monitors))
	for i, m := range ct.Monitors {
		v, err := m.Measure(c)
		if err != nil {
			return nil, 0, fmt.Errorf("adapt: monitor %s: %w", m.Name, err)
		}
		values[i] = v
		cost += specCost(ct.Specs[i], v)
	}
	return values, cost, nil
}

// specCost is the normalised violation distance of value v against spec s.
func specCost(s variation.Spec, v float64) float64 {
	scale := math.Max(math.Abs(s.Lo), math.Abs(s.Hi))
	if math.IsInf(scale, 0) || scale == 0 {
		scale = 1
	}
	switch {
	case v < s.Lo:
		return (s.Lo - v) / scale
	case v > s.Hi:
		return (v - s.Hi) / scale
	default:
		return 0
	}
}

// TuneResult reports one control action.
type TuneResult struct {
	// InSpec is true when a configuration satisfying all specs was found
	// (and left applied).
	InSpec bool
	// Cost is the residual violation cost of the applied configuration.
	Cost float64
	// Values are the monitor readings at the applied configuration.
	Values []float64
	// Evaluations counts monitor-sweep evaluations spent searching.
	Evaluations int
}

// Tune searches the knob space for the lowest-cost configuration and
// leaves it applied.
func (ct *Controller) Tune(c *circuit.Circuit) (*TuneResult, error) {
	switch ct.Policy {
	case Greedy:
		return ct.tuneGreedy(c)
	default:
		return ct.tuneExhaustive(c)
	}
}

func (ct *Controller) tuneExhaustive(c *circuit.Circuit) (*TuneResult, error) {
	best := make([]int, len(ct.Knobs))
	cur := make([]int, len(ct.Knobs))
	bestCost := math.Inf(1)
	var bestValues []float64
	evals := 0

	var rec func(k int) error
	rec = func(k int) error {
		if k == len(ct.Knobs) {
			values, cost, err := ct.Evaluate(c)
			evals++
			if err != nil {
				// An unconvergent configuration is just a bad one.
				return nil
			}
			if cost < bestCost {
				bestCost = cost
				copy(best, cur)
				bestValues = values
			}
			return nil
		}
		for i := range ct.Knobs[k].Levels {
			cur[k] = i
			ct.Knobs[k].SetIndex(i)
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	if math.IsInf(bestCost, 1) {
		return nil, fmt.Errorf("adapt: no knob configuration converges")
	}
	for k, i := range best {
		ct.Knobs[k].SetIndex(i)
	}
	return &TuneResult{InSpec: bestCost == 0, Cost: bestCost, Values: bestValues, Evaluations: evals}, nil
}

func (ct *Controller) tuneGreedy(c *circuit.Circuit) (*TuneResult, error) {
	values, cost, err := ct.Evaluate(c)
	evals := 1
	if err != nil {
		values, cost = nil, math.Inf(1)
	}
	const maxSweeps = 5
	for sweep := 0; sweep < maxSweeps && cost > 0; sweep++ {
		improved := false
		for _, knob := range ct.Knobs {
			bestIdx := knob.Index()
			bestCost := cost
			var bestValues []float64 = values
			for i := range knob.Levels {
				if i == knob.Index() {
					continue
				}
				knob.SetIndex(i)
				v, cc, err := ct.Evaluate(c)
				evals++
				if err != nil {
					continue
				}
				if cc < bestCost {
					bestCost, bestIdx, bestValues = cc, i, v
				}
			}
			knob.SetIndex(bestIdx)
			if bestCost < cost {
				cost, values = bestCost, bestValues
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	if math.IsInf(cost, 1) {
		return nil, fmt.Errorf("adapt: no converging configuration found")
	}
	return &TuneResult{InSpec: cost == 0, Cost: cost, Values: values, Evaluations: evals}, nil
}
