package adapt

import (
	"math"
	"testing"
)

func TestStandbyLifetime(t *testing.T) {
	if StandbyLifetime(100, 0) != 100 {
		t.Error("no spares = unit lifetime")
	}
	if StandbyLifetime(100, 3) != 400 {
		t.Error("standby lifetimes must add")
	}
}

func TestStandbyUnitsFor(t *testing.T) {
	if StandbyUnitsFor(100, 50) != 1 {
		t.Error("already sufficient should need one unit")
	}
	if StandbyUnitsFor(100, 1000) != 10 {
		t.Errorf("got %d, want 10", StandbyUnitsFor(100, 1000))
	}
	if StandbyUnitsFor(100, 1050) != 11 {
		t.Error("must round up")
	}
	if StandbyUnitsFor(100, math.Inf(1)) != math.MaxInt32 {
		t.Error("infinite target must cap")
	}
}

func TestTMRLifetime(t *testing.T) {
	if TMRLifetime([]float64{10, 30, 20}) != 20 {
		t.Error("TMR dies at the second failure")
	}
	// The wear-out trap: tightly clustered failures barely outlive a
	// single unit despite 3× area.
	if got := TMRLifetime([]float64{99, 100, 101}); got != 100 {
		t.Errorf("clustered TMR = %g", got)
	}
}

func TestRedundancyVsAdaptationStory(t *testing.T) {
	// Numbers from the Fig. 6 reproduction: the static amplifier leaves
	// spec after ~0.003 stress-years while the adaptive one survives the
	// 30-year mission. Matching that with standby redundancy needs four
	// orders of magnitude of area.
	const staticTTF = 0.00317 // years
	const missionYears = 30.0
	units := StandbyUnitsFor(staticTTF, missionYears)
	if units < 5000 {
		t.Errorf("redundancy multiplier %d should be absurd — the paper's point", units)
	}
}

func TestRedundancyPanics(t *testing.T) {
	for i, f := range []func(){
		func() { StandbyLifetime(1, -1) },
		func() { StandbyUnitsFor(0, 10) },
		func() { TMRLifetime([]float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
