package adapt

import (
	"math"
	"testing"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/variation"
)

// TestBodyBiasKnobCompensatesAging exercises the second classic knob of
// the knobs-and-monitors toolbox: adaptive body biasing. Forward body bias
// lowers |VT| through the body effect, buying back the threshold shift
// that NBTI accumulated — without touching the gate bias.
func TestBodyBiasKnobCompensatesAging(t *testing.T) {
	tech := device.MustTech("65nm")
	build := func() (*circuit.Circuit, *Knob, Monitor) {
		c := circuit.New()
		c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
		vg := c.AddVSource("VG", "g", "0", circuit.DC(tech.VDD-0.45))
		vg.ACMag = 1
		// The bulk rides on its own source: the body-bias knob.
		vb := c.AddVSource("VB", "bulk", "0", circuit.DC(tech.VDD))
		c.AddResistor("RD", "d", "0", 20e3)
		m := device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300))
		c.AddMOSFET("M1", "d", "g", "vdd", "bulk", m)
		// Levels walk the pMOS bulk below VDD: forward body bias.
		knob := VSourceKnob("vbb", vb, mathx.Linspace(tech.VDD, tech.VDD-0.4, 6))
		return c, knob, ACGainMonitor("gain", "d", 1e3)
	}

	c, knob, gain := build()
	ctrl, err := NewController([]*Knob{knob}, []Monitor{gain},
		[]variation.Spec{{Name: "gain", Lo: 5, Hi: math.Inf(1)}}, Exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	tr0, err := ctrl.Tune(c)
	if err != nil {
		t.Fatal(err)
	}
	if !tr0.InSpec {
		t.Fatalf("fresh amplifier cannot meet spec (gain %v)", tr0.Values)
	}
	freshKnob := knob.Index()

	// Age for one year at 380 K — a shift inside the ~0.1 V recovery
	// authority a 0.4 V forward body bias has through the body effect.
	ager := aging.NewCircuitAger(c, aging.Models{NBTI: aging.DefaultNBTI()}, 380, 5)
	const oneYear = 365.25 * 24 * 3600
	if _, err := ager.AgeTo([]float64{oneYear}); err != nil {
		t.Fatal(err)
	}
	// Without re-tuning the gain has sagged.
	_, costAged, err := ctrl.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if costAged == 0 {
		t.Skip("mission too gentle — amp still in spec without help")
	}
	tr1, err := ctrl.Tune(c)
	if err != nil {
		t.Fatal(err)
	}
	if !tr1.InSpec {
		t.Fatalf("body-bias knob could not recover the spec (cost %g)", tr1.Cost)
	}
	if tr1.Evaluations < 2 {
		t.Error("controller did not search")
	}
	if knob.Index() == freshKnob {
		t.Error("recovery without moving the body bias — test vehicle broken")
	}
	// The chosen bulk voltage is below VDD: forward body bias on pMOS.
	if knob.Value() >= tech.VDD {
		t.Errorf("expected forward body bias, knob at %g", knob.Value())
	}
}
