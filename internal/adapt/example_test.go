package adapt_test

import (
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/variation"
)

// Example wires up the Fig. 6 loop: a gain monitor, a gate-bias knob and
// an exhaustive controller that finds a configuration meeting the spec.
func Example() {
	tech := device.MustTech("65nm")
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	vg := c.AddVSource("VG", "g", "0", circuit.DC(tech.VDD-0.3))
	vg.ACMag = 1
	c.AddResistor("RD", "d", "0", 20e3)
	c.AddMOSFET("M1", "d", "g", "vdd", "vdd",
		device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300)))

	knob := adapt.VSourceKnob("vbias", vg, mathx.Linspace(tech.VDD-0.3, 0.3, 8))
	ctrl, err := adapt.NewController(
		[]*adapt.Knob{knob},
		[]adapt.Monitor{adapt.ACGainMonitor("gain", "d", 1e3)},
		[]variation.Spec{{Name: "gain", Lo: 5, Hi: math.Inf(1)}},
		adapt.Exhaustive,
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	tr, err := ctrl.Tune(c)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("in spec: %v (gain %.1f at knob level %d)\n", tr.InSpec, tr.Values[0], knob.Index())
	// Output:
	// in spec: true (gain 5.9 at knob level 2)
}
