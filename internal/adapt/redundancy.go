package adapt

import (
	"fmt"
	"math"
	"sort"
)

// The paper's §5 argues that the classical resilience approaches —
// overdesign and redundancy — "introduce an unacceptable power and area
// penalty" compared with knobs and monitors. These helpers quantify the
// redundancy side of that comparison so the benches can put numbers on it.

// StandbyLifetime returns the system lifetime of cold-standby redundancy
// with the given number of spares and a perfect failure switch: each unit
// wears only while active, so lifetimes add.
func StandbyLifetime(unitTTF float64, spares int) float64 {
	if spares < 0 {
		panic(fmt.Sprintf("adapt: negative spare count %d", spares))
	}
	return unitTTF * float64(spares+1)
}

// StandbyUnitsFor returns how many total units (active + spares) standby
// redundancy needs to reach targetTTF — the area multiplier of the
// redundancy approach. It returns a huge count capped at math.MaxInt32 for
// effectively unreachable targets and 1 when the unit already suffices.
func StandbyUnitsFor(unitTTF, targetTTF float64) int {
	if unitTTF <= 0 {
		panic(fmt.Sprintf("adapt: non-positive unit TTF %g", unitTTF))
	}
	if targetTTF <= unitTTF {
		return 1
	}
	if math.IsInf(targetTTF, 1) {
		return math.MaxInt32
	}
	n := math.Ceil(targetTTF / unitTTF)
	if n > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(n)
}

// TMRLifetime returns the lifetime of a triple-modular-redundant system
// (2-of-3 majority voting): the system fails at the *second* unit failure.
// Note the classic wear-out result — with identically aging units TMR can
// die *earlier* than a single unit once failures cluster, while costing 3×
// the area.
func TMRLifetime(unitTTFs []float64) float64 {
	if len(unitTTFs) != 3 {
		panic(fmt.Sprintf("adapt: TMR needs exactly 3 units, got %d", len(unitTTFs)))
	}
	s := append([]float64(nil), unitTTFs...)
	sort.Float64s(s)
	return s[1]
}
