package adapt

import (
	"fmt"
	"math"

	"repro/internal/aging"
)

// MissionPoint is one checkpoint of a lifetime run.
type MissionPoint struct {
	// Time is the mission age in seconds.
	Time float64
	// InSpec reports whether all monitored specs held at this age.
	InSpec bool
	// Values are the monitor readings.
	Values []float64
	// KnobIndices snapshots the applied configuration (nil for static
	// runs).
	KnobIndices []int
	// Cost is the residual spec-violation cost.
	Cost float64
}

// MissionResult is a full lifetime trajectory.
type MissionResult struct {
	Points []MissionPoint
	// Adaptive records whether the controller was re-tuning.
	Adaptive bool
}

// TimeToFailure returns the first checkpoint time at which the system left
// spec, or +Inf if it survived the whole mission.
func (m *MissionResult) TimeToFailure() float64 {
	for _, p := range m.Points {
		if !p.InSpec {
			return p.Time
		}
	}
	return math.Inf(1)
}

// SurvivedCheckpoints counts in-spec checkpoints.
func (m *MissionResult) SurvivedCheckpoints() int {
	n := 0
	for _, p := range m.Points {
		if p.InSpec {
			n++
		}
	}
	return n
}

// RunMission ages the circuit along checkpoints. When adaptive is true the
// controller re-tunes at every checkpoint (including t=0); otherwise the
// knobs stay at their initial configuration and the monitors just watch.
// The circuit inside ager must be the one the controller's knobs and
// monitors are bound to.
func RunMission(ager *aging.CircuitAger, ctrl *Controller, checkpoints []float64, adaptive bool) (*MissionResult, error) {
	if len(checkpoints) == 0 {
		return nil, fmt.Errorf("adapt: no checkpoints")
	}
	res := &MissionResult{Adaptive: adaptive}

	observe := func(t float64) error {
		var pt MissionPoint
		pt.Time = t
		if adaptive {
			tr, err := ctrl.Tune(ager.Circuit)
			if err != nil {
				pt.InSpec = false
				pt.Cost = math.Inf(1)
				res.Points = append(res.Points, pt)
				return nil
			}
			pt.InSpec = tr.InSpec
			pt.Values = tr.Values
			pt.Cost = tr.Cost
			idx := make([]int, len(ctrl.Knobs))
			for i, k := range ctrl.Knobs {
				idx[i] = k.Index()
			}
			pt.KnobIndices = idx
		} else {
			values, cost, err := ctrl.Evaluate(ager.Circuit)
			if err != nil {
				pt.InSpec = false
				pt.Cost = math.Inf(1)
				res.Points = append(res.Points, pt)
				return nil
			}
			pt.InSpec = cost == 0
			pt.Values = values
			pt.Cost = cost
		}
		res.Points = append(res.Points, pt)
		return nil
	}

	if err := observe(0); err != nil {
		return nil, err
	}
	prev := 0.0
	for _, t := range checkpoints {
		if t <= prev {
			return nil, fmt.Errorf("adapt: checkpoints must increase (got %g after %g)", t, prev)
		}
		// Solve the OP at the applied configuration so stress extraction
		// sees the true bias, then age the interval.
		if _, err := ager.Circuit.OperatingPoint(); err == nil {
			stress := aging.ExtractStressOP(ager.Circuit, ager.TempK)
			for _, name := range ager.SortedAgerNames() {
				s := stress[name]
				if ager.DutyOverride != nil {
					if d, ok := ager.DutyOverride[name]; ok {
						s.Duty = d
					}
				}
				ager.Ager(name).Step(s, t-prev)
			}
		}
		prev = t
		if err := observe(t); err != nil {
			return nil, err
		}
	}
	return res, nil
}
