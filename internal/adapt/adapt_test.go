package adapt

import (
	"math"
	"testing"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/variation"
)

// ampSystem builds a common-source amplifier with a gate-bias knob and a
// gain monitor — the canonical knobs-and-monitors demonstrator.
type ampSystem struct {
	circ *circuit.Circuit
	knob *Knob
	gain Monitor
}

func buildAmp(tech *device.Technology) *ampSystem {
	// PMOS common-source stage: NBTI (the dominant aging mechanism) hits
	// p-channel devices at full strength, so this amplifier measurably
	// degrades over a mission. The gate-bias knob compensates by pulling
	// the gate further below the source as |VT| grows.
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	vg := c.AddVSource("VG", "g", "0", circuit.DC(tech.VDD-0.45))
	vg.ACMag = 1
	c.AddResistor("RD", "d", "0", 20e3)
	m := device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300))
	c.AddMOSFET("M1", "d", "g", "vdd", "vdd", m)
	// Knob levels run from weak bias (gate near the rail) to strong.
	knob := VSourceKnob("vbias", vg, mathx.Linspace(tech.VDD-0.44, 0.2, 10))
	return &ampSystem{
		circ: c,
		knob: knob,
		gain: ACGainMonitor("gain", "d", 1e3),
	}
}

func TestKnobBasics(t *testing.T) {
	applied := 0.0
	k := NewKnob("k", []float64{1, 2, 3}, func(v float64) { applied = v })
	if applied != 1 || k.Index() != 0 || k.Value() != 1 {
		t.Fatal("knob must apply its first level at construction")
	}
	k.SetIndex(2)
	if applied != 3 || k.Value() != 3 {
		t.Error("SetIndex did not apply")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range index should panic")
		}
	}()
	k.SetIndex(5)
}

func TestNewKnobPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKnob("bad", nil, func(float64) {})
}

func TestControllerValidation(t *testing.T) {
	k := NewKnob("k", []float64{1}, func(float64) {})
	m := Monitor{Name: "m", Measure: func(*circuit.Circuit) (float64, error) { return 0, nil }}
	s := variation.Spec{Lo: 0, Hi: 1}
	if _, err := NewController(nil, []Monitor{m}, []variation.Spec{s}, Greedy); err == nil {
		t.Error("no knobs accepted")
	}
	if _, err := NewController([]*Knob{k}, []Monitor{m}, nil, Greedy); err == nil {
		t.Error("mismatched specs accepted")
	}
	if _, err := NewController([]*Knob{k}, []Monitor{m}, []variation.Spec{s}, Greedy); err != nil {
		t.Errorf("valid controller rejected: %v", err)
	}
}

func TestSpecCost(t *testing.T) {
	s := variation.Spec{Lo: 10, Hi: 20}
	if specCost(s, 15) != 0 {
		t.Error("in-spec value must cost 0")
	}
	if specCost(s, 5) <= 0 || specCost(s, 25) <= 0 {
		t.Error("violations must cost > 0")
	}
	if specCost(s, 5) <= specCost(s, 9) {
		t.Error("cost must grow with violation distance")
	}
}

func TestTuneFindsGainConfiguration(t *testing.T) {
	tech := device.MustTech("90nm")
	for _, policy := range []Policy{Exhaustive, Greedy} {
		sys := buildAmp(tech)
		ctrl, err := NewController(
			[]*Knob{sys.knob},
			[]Monitor{sys.gain},
			[]variation.Spec{{Name: "gain", Lo: 4, Hi: math.Inf(1)}},
			policy,
		)
		if err != nil {
			t.Fatal(err)
		}
		// Start the knob at the lowest bias, which underbiases the amp.
		sys.knob.SetIndex(0)
		tr, err := ctrl.Tune(sys.circ)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if !tr.InSpec {
			t.Fatalf("%v: no configuration met gain spec (cost %g, values %v)", policy, tr.Cost, tr.Values)
		}
		if tr.Values[0] < 4 {
			t.Errorf("%v: applied config gain %g below spec", policy, tr.Values[0])
		}
		if tr.Evaluations < 2 {
			t.Errorf("%v: suspiciously few evaluations (%d)", policy, tr.Evaluations)
		}
	}
}

func TestGreedyCheaperThanExhaustive(t *testing.T) {
	tech := device.MustTech("90nm")
	sysA := buildAmp(tech)
	// Add a second dummy knob to blow up the exhaustive product space.
	dummyA := NewKnob("dummy", mathx.Linspace(0, 1, 6), func(float64) {})
	ctrlA, _ := NewController([]*Knob{sysA.knob, dummyA}, []Monitor{sysA.gain},
		[]variation.Spec{{Lo: 4, Hi: math.Inf(1)}}, Exhaustive)
	trA, err := ctrlA.Tune(sysA.circ)
	if err != nil {
		t.Fatal(err)
	}

	sysB := buildAmp(tech)
	dummyB := NewKnob("dummy", mathx.Linspace(0, 1, 6), func(float64) {})
	ctrlB, _ := NewController([]*Knob{sysB.knob, dummyB}, []Monitor{sysB.gain},
		[]variation.Spec{{Lo: 4, Hi: math.Inf(1)}}, Greedy)
	trB, err := ctrlB.Tune(sysB.circ)
	if err != nil {
		t.Fatal(err)
	}
	if !trA.InSpec || !trB.InSpec {
		t.Fatal("both policies should find a valid configuration")
	}
	if trB.Evaluations >= trA.Evaluations {
		t.Errorf("greedy used %d evals, exhaustive %d — expected fewer", trB.Evaluations, trA.Evaluations)
	}
}

func TestAdaptiveOutlivesStatic(t *testing.T) {
	tech := device.MustTech("65nm")
	const year = 365.25 * 24 * 3600
	checkpoints := mathx.Logspace(1e5, 30*year, 14)
	gainSpec := variation.Spec{Name: "gain", Lo: 5.0, Hi: math.Inf(1)}

	run := func(adaptive bool) *MissionResult {
		sys := buildAmp(tech)
		ctrl, err := NewController([]*Knob{sys.knob}, []Monitor{sys.gain},
			[]variation.Spec{gainSpec}, Exhaustive)
		if err != nil {
			t.Fatal(err)
		}
		// Static design: tuned once at t=0 (like a well-designed fresh
		// chip), then left alone.
		if _, err := ctrl.Tune(sys.circ); err != nil {
			t.Fatal(err)
		}
		ager := aging.NewCircuitAger(sys.circ,
			aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}, 400, 99)
		res, err := RunMission(ager, ctrl, checkpoints, adaptive)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	static := run(false)
	adaptive := run(true)
	ttfS := static.TimeToFailure()
	ttfA := adaptive.TimeToFailure()
	if !(ttfA > ttfS) {
		t.Errorf("adaptive TTF %g should exceed static %g", ttfA, ttfS)
	}
	if adaptive.SurvivedCheckpoints() <= static.SurvivedCheckpoints() {
		t.Errorf("adaptive survived %d checkpoints, static %d",
			adaptive.SurvivedCheckpoints(), static.SurvivedCheckpoints())
	}
	// The adaptive run must actually have moved a knob at some point.
	moved := false
	first := adaptive.Points[0].KnobIndices[0]
	for _, p := range adaptive.Points[1:] {
		if len(p.KnobIndices) > 0 && p.KnobIndices[0] != first {
			moved = true
		}
	}
	if !moved {
		t.Error("adaptive controller never moved the knob")
	}
}

func TestRunMissionValidation(t *testing.T) {
	tech := device.MustTech("90nm")
	sys := buildAmp(tech)
	ctrl, _ := NewController([]*Knob{sys.knob}, []Monitor{sys.gain},
		[]variation.Spec{{Lo: 0, Hi: math.Inf(1)}}, Greedy)
	ager := aging.NewCircuitAger(sys.circ, aging.DefaultModels(), 350, 1)
	if _, err := RunMission(ager, ctrl, nil, true); err == nil {
		t.Error("empty checkpoints accepted")
	}
	if _, err := RunMission(ager, ctrl, []float64{5, 2}, true); err == nil {
		t.Error("decreasing checkpoints accepted")
	}
}

func TestMissionResultHelpers(t *testing.T) {
	r := &MissionResult{Points: []MissionPoint{
		{Time: 0, InSpec: true},
		{Time: 10, InSpec: true},
		{Time: 20, InSpec: false},
	}}
	if r.TimeToFailure() != 20 {
		t.Errorf("TTF = %g", r.TimeToFailure())
	}
	if r.SurvivedCheckpoints() != 2 {
		t.Errorf("survived = %d", r.SurvivedCheckpoints())
	}
	all := &MissionResult{Points: []MissionPoint{{Time: 0, InSpec: true}}}
	if !math.IsInf(all.TimeToFailure(), 1) {
		t.Error("survivor TTF must be +Inf")
	}
}

func TestSupplyCurrentMonitor(t *testing.T) {
	tech := device.MustTech("90nm")
	sys := buildAmp(tech)
	mon := SupplyCurrentMonitor("idd", "VDD")
	i, err := mon.Measure(sys.circ)
	if err != nil {
		t.Fatal(err)
	}
	if i <= 0 || i > 1e-2 {
		t.Errorf("supply current %g implausible", i)
	}
}

func TestOPVoltageMonitor(t *testing.T) {
	tech := device.MustTech("90nm")
	sys := buildAmp(tech)
	mon := OPVoltageMonitor("vd", "d")
	v, err := mon.Measure(sys.circ)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v >= tech.VDD {
		t.Errorf("drain voltage %g outside rails", v)
	}
}
