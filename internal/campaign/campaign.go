// Package campaign runs a composite reliability campaign as a directed
// acyclic graph of named sub-steps. The paper's resilience loop (§5.2)
// and its M16 product milestone call for signoff-grade analyses that
// compose: automated worst-case corner analysis feeding Monte-Carlo
// yield at the identified corner, with aging (NBTI/HCI/TDDB, §3) and
// electromigration (§3.4, Black's equation) roll-ups alongside — one
// campaign, several engines, explicit data dependencies. This package is
// the orchestration substrate for that composition: callers describe
// steps as Nodes with dependencies, and Run executes them with maximal
// concurrency among ready nodes, deterministic failure propagation
// (a failed node skips its dependents with a structured cause instead of
// aborting the graph), per-node completion hooks for checkpointing, and
// a resume map so a restarted campaign re-runs only what is missing.
// The package is deliberately generic — node payloads are opaque values
// — so the jobspec layer can build signoff graphs on top without a
// dependency cycle.
package campaign

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Node is one step of a campaign graph. Run receives the values of every
// dependency, keyed by node name; it is only called once all Deps have
// completed successfully.
type Node struct {
	// Name identifies the node; it must be unique within the graph.
	Name string
	// Deps lists the names of nodes whose values Run needs.
	Deps []string
	// Run computes the node's value. A returned error marks the node
	// failed and skips its transitive dependents.
	Run func(ctx context.Context, deps map[string]any) (any, error)
}

// Outcome is the terminal state of one node after Run returns.
type Outcome struct {
	// Name is the node's name.
	Name string
	// Value is what the node's Run returned (or the restored value when
	// Resumed).
	Value any
	// Err is the node's failure, a *SkipError when a dependency failed,
	// or nil on success.
	Err error
	// Skipped reports that the node never ran because a dependency
	// failed or the context was cancelled first; Err carries the cause.
	Skipped bool
	// Resumed reports that the value was restored from Options.Resume
	// instead of executing Run.
	Resumed bool
	// Elapsed is the node's wall time (zero for resumed/skipped nodes).
	Elapsed time.Duration
}

// OK reports whether the node produced a usable value.
func (o *Outcome) OK() bool { return o != nil && o.Err == nil && !o.Skipped }

// SkipError is the structured cause attached to a node that was skipped
// because a dependency did not produce a value.
type SkipError struct {
	// Node is the skipped node; Dep the dependency that failed or was
	// itself skipped; Cause that dependency's error.
	Node, Dep string
	Cause     error
}

func (e *SkipError) Error() string {
	return fmt.Sprintf("campaign: node %q skipped: dependency %q failed: %v", e.Node, e.Dep, e.Cause)
}

// Unwrap exposes the dependency's failure for errors.Is/As chains.
func (e *SkipError) Unwrap() error { return e.Cause }

// Options tunes one Run invocation.
type Options struct {
	// Resume maps node names to previously-computed values. A node found
	// here does not execute; its outcome carries the restored value with
	// Resumed set. Unknown names are ignored.
	Resume map[string]any
	// OnDone, when non-nil, is called once per node in completion order,
	// serially (never concurrently), including resumed and skipped nodes.
	// It is the checkpoint hook: persisting each outcome as it lands is
	// what lets a killed campaign resume.
	OnDone func(o *Outcome)
	// Workers caps concurrently-running nodes; 0 means no cap (the graph
	// width is the natural bound).
	Workers int
}

// Result is the terminal state of a whole graph run.
type Result struct {
	// Outcomes holds every node's terminal state, keyed by name.
	Outcomes map[string]*Outcome
	// Order is the completion order of the run (resumed nodes first).
	Order []string
}

// Complete reports whether every node produced a usable value.
func (r *Result) Complete() bool {
	for _, o := range r.Outcomes {
		if !o.OK() {
			return false
		}
	}
	return true
}

// Outcome returns the named node's outcome (nil when unknown).
func (r *Result) Outcome(name string) *Outcome { return r.Outcomes[name] }

// Failed returns the names of nodes that ran and failed, sorted.
func (r *Result) Failed() []string {
	var out []string
	for name, o := range r.Outcomes {
		if o.Err != nil && !o.Skipped {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Skipped returns the names of nodes that never ran, sorted.
func (r *Result) Skipped() []string {
	var out []string
	for name, o := range r.Outcomes {
		if o.Skipped {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Run executes the graph. Ready nodes (all dependencies satisfied) run
// concurrently, bounded by Options.Workers; a node whose dependency
// failed or was skipped is skipped with a *SkipError outcome rather than
// aborting the run, so one broken engine still yields a partial campaign
// with structured causes. Graph-shape mistakes — duplicate or empty
// names, unknown dependencies, cycles — fail up front before any node
// runs. A panicking node is recovered and recorded as that node's error.
// When ctx is cancelled, running nodes see the cancellation through
// their own ctx, not-yet-started nodes are skipped, and Run returns the
// partial Result alongside ctx's error.
func Run(ctx context.Context, nodes []Node, opts Options) (*Result, error) {
	if err := check(nodes); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	byName := make(map[string]*Node, len(nodes))
	waiting := make(map[string]int, len(nodes)) // unmet dependency count
	dependents := make(map[string][]string, len(nodes))
	for i := range nodes {
		n := &nodes[i]
		byName[n.Name] = n
		waiting[n.Name] = len(n.Deps)
		for _, d := range n.Deps {
			dependents[d] = append(dependents[d], n.Name)
		}
	}

	res := &Result{Outcomes: make(map[string]*Outcome, len(nodes))}
	type doneMsg struct {
		name    string
		value   any
		err     error
		elapsed time.Duration
	}
	done := make(chan doneMsg)
	running := 0
	sem := opts.Workers

	// finish records o, fires the hook, and unblocks dependents. It runs
	// only on the coordinating goroutine, so Outcomes and the hook need
	// no locking.
	var ready []string
	finish := func(o *Outcome) {
		res.Outcomes[o.Name] = o
		res.Order = append(res.Order, o.Name)
		if opts.OnDone != nil {
			opts.OnDone(o)
		}
		for _, depName := range dependents[o.Name] {
			waiting[depName]--
			if waiting[depName] == 0 {
				ready = append(ready, depName)
			}
		}
	}

	// Seed: resumed nodes complete instantly; nodes with no deps are
	// ready. Iterate in declaration order for a deterministic resume
	// prefix.
	for i := range nodes {
		if waiting[nodes[i].Name] == 0 {
			ready = append(ready, nodes[i].Name)
		}
	}

	start := func(name string) {
		n := byName[name]
		// Snapshot the dependency values here, on the coordinating
		// goroutine: the Outcomes map keeps growing while the node runs,
		// so the spawned goroutine must never touch it.
		deps := make(map[string]any, len(n.Deps))
		for _, d := range n.Deps {
			deps[d] = res.Outcomes[d].Value
		}
		running++
		go func() {
			t0 := time.Now()
			value, err := runNode(ctx, n, deps)
			done <- doneMsg{name: name, value: value, err: err, elapsed: time.Since(t0)}
		}()
	}

	for len(res.Outcomes) < len(nodes) {
		// Drain the ready list: resume, skip, or start each node.
		for len(ready) > 0 && (sem <= 0 || running < sem) {
			name := ready[0]
			ready = ready[1:]
			n := byName[name]
			if v, ok := opts.Resume[name]; ok {
				finish(&Outcome{Name: name, Value: v, Resumed: true})
				continue
			}
			if cause, dep := failedDep(n, res.Outcomes); dep != "" {
				finish(&Outcome{Name: name, Skipped: true,
					Err: &SkipError{Node: name, Dep: dep, Cause: cause}})
				continue
			}
			if err := ctx.Err(); err != nil {
				finish(&Outcome{Name: name, Skipped: true,
					Err: fmt.Errorf("campaign: node %q skipped: %w", name, err)})
				continue
			}
			start(name)
		}
		if running == 0 {
			// After the drain loop, an empty in-flight set means an empty
			// ready list too (capacity can only be exhausted by running
			// nodes) — every remaining node already completed.
			break
		}
		msg := <-done
		running--
		finish(&Outcome{Name: msg.name, Value: msg.value, Err: msg.err, Elapsed: msg.elapsed})
	}
	return res, ctx.Err()
}

// runNode invokes n.Run with panic isolation on the dependency values
// snapshotted by the coordinator.
func runNode(ctx context.Context, n *Node, deps map[string]any) (value any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: node %q panicked: %v", n.Name, r)
		}
	}()
	return n.Run(ctx, deps)
}

// failedDep returns the first dependency of n that did not produce a
// value, with its cause ("" when all are fine). Dependencies are checked
// in declaration order so the reported cause is deterministic.
func failedDep(n *Node, outcomes map[string]*Outcome) (cause error, dep string) {
	for _, d := range n.Deps {
		if o := outcomes[d]; o != nil && !o.OK() {
			return o.Err, d
		}
	}
	return nil, ""
}

// check validates the graph shape: unique non-empty names, known
// dependencies, non-nil Run, and no cycles.
func check(nodes []Node) error {
	byName := make(map[string]*Node, len(nodes))
	for i := range nodes {
		n := &nodes[i]
		if n.Name == "" {
			return fmt.Errorf("campaign: node %d has no name", i)
		}
		if _, dup := byName[n.Name]; dup {
			return fmt.Errorf("campaign: duplicate node %q", n.Name)
		}
		if n.Run == nil {
			return fmt.Errorf("campaign: node %q has no Run", n.Name)
		}
		byName[n.Name] = n
	}
	for i := range nodes {
		for _, d := range nodes[i].Deps {
			if _, ok := byName[d]; !ok {
				return fmt.Errorf("campaign: node %q depends on unknown node %q", nodes[i].Name, d)
			}
		}
	}
	// Colour-marking DFS cycle check.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int, len(nodes))
	var visit func(name string) error
	visit = func(name string) error {
		switch colour[name] {
		case grey:
			return fmt.Errorf("campaign: dependency cycle through node %q", name)
		case black:
			return nil
		}
		colour[name] = grey
		for _, d := range byName[name].Deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		colour[name] = black
		return nil
	}
	for i := range nodes {
		if err := visit(nodes[i].Name); err != nil {
			return err
		}
	}
	return nil
}

// Names returns the node names in declaration order — the stable index
// space callers use for checkpoint sequence numbers.
func Names(nodes []Node) []string {
	out := make([]string, len(nodes))
	for i := range nodes {
		out[i] = nodes[i].Name
	}
	return out
}
