package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// value is a trivial node body returning v.
func value(v any) func(context.Context, map[string]any) (any, error) {
	return func(context.Context, map[string]any) (any, error) { return v, nil }
}

func TestLinearChainPassesValues(t *testing.T) {
	nodes := []Node{
		{Name: "a", Run: value(1)},
		{Name: "b", Deps: []string{"a"}, Run: func(_ context.Context, deps map[string]any) (any, error) {
			return deps["a"].(int) + 1, nil
		}},
		{Name: "c", Deps: []string{"b"}, Run: func(_ context.Context, deps map[string]any) (any, error) {
			return deps["b"].(int) + 1, nil
		}},
	}
	res, err := Run(context.Background(), nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("chain incomplete: %+v", res.Outcomes)
	}
	if got := res.Outcome("c").Value; got != 3 {
		t.Errorf("c = %v, want 3 (values threaded through deps)", got)
	}
	if want := []string{"a", "b", "c"}; fmt.Sprint(res.Order) != fmt.Sprint(want) {
		t.Errorf("completion order %v, want %v", res.Order, want)
	}
}

// TestDiamondRunsReadyNodesConcurrently proves the two middle nodes of a
// diamond overlap in time: each blocks until the other has started.
// A serial executor would deadlock here; the 10 s guard turns that into
// a failure.
func TestDiamondRunsReadyNodesConcurrently(t *testing.T) {
	bStarted := make(chan struct{})
	cStarted := make(chan struct{})
	wait := func(mine chan struct{}, other chan struct{}) func(context.Context, map[string]any) (any, error) {
		return func(ctx context.Context, _ map[string]any) (any, error) {
			close(mine)
			select {
			case <-other:
				return "ok", nil
			case <-time.After(10 * time.Second):
				return nil, errors.New("peer never started: nodes did not overlap")
			}
		}
	}
	nodes := []Node{
		{Name: "a", Run: value("src")},
		{Name: "b", Deps: []string{"a"}, Run: wait(bStarted, cStarted)},
		{Name: "c", Deps: []string{"a"}, Run: wait(cStarted, bStarted)},
		{Name: "d", Deps: []string{"b", "c"}, Run: value("sink")},
	}
	res, err := Run(context.Background(), nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("diamond incomplete: failed=%v skipped=%v", res.Failed(), res.Skipped())
	}
}

func TestWorkersCapBoundsConcurrency(t *testing.T) {
	var inflight, peak atomic.Int32
	body := func(context.Context, map[string]any) (any, error) {
		n := inflight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		return nil, nil
	}
	var nodes []Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, Node{Name: fmt.Sprintf("n%d", i), Run: body})
	}
	if _, err := Run(context.Background(), nodes, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("observed %d concurrent nodes, Workers caps at 2", p)
	}
}

func TestShapeErrorsFailBeforeAnyNodeRuns(t *testing.T) {
	ran := false
	spy := func(context.Context, map[string]any) (any, error) { ran = true; return nil, nil }
	cases := []struct {
		name  string
		nodes []Node
		want  string
	}{
		{"empty name", []Node{{Name: "", Run: spy}}, "no name"},
		{"duplicate", []Node{{Name: "a", Run: spy}, {Name: "a", Run: spy}}, "duplicate"},
		{"nil run", []Node{{Name: "a"}}, "no Run"},
		{"unknown dep", []Node{{Name: "a", Deps: []string{"ghost"}, Run: spy}}, "unknown node"},
		{"cycle", []Node{
			{Name: "a", Deps: []string{"b"}, Run: spy},
			{Name: "b", Deps: []string{"a"}, Run: spy},
		}, "cycle"},
		{"self cycle", []Node{{Name: "a", Deps: []string{"a"}, Run: spy}}, "cycle"},
	}
	for _, tc := range cases {
		res, err := Run(context.Background(), tc.nodes, Options{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
		if res != nil {
			t.Errorf("%s: got a result for a malformed graph", tc.name)
		}
	}
	if ran {
		t.Error("a node ran despite a graph-shape error")
	}
}

func TestFailureSkipsTransitiveDependents(t *testing.T) {
	boom := errors.New("engine exploded")
	nodes := []Node{
		{Name: "ok", Run: value(1)},
		{Name: "bad", Run: func(context.Context, map[string]any) (any, error) { return nil, boom }},
		{Name: "child", Deps: []string{"bad"}, Run: value(2)},
		{Name: "grandchild", Deps: []string{"child", "ok"}, Run: value(3)},
	}
	res, err := Run(context.Background(), nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Failed(); len(got) != 1 || got[0] != "bad" {
		t.Errorf("Failed() = %v, want [bad]", got)
	}
	if got := res.Skipped(); fmt.Sprint(got) != "[child grandchild]" {
		t.Errorf("Skipped() = %v, want [child grandchild]", got)
	}
	if res.Outcome("ok") == nil || !res.Outcome("ok").OK() {
		t.Error("independent node did not complete")
	}
	var skip *SkipError
	if err := res.Outcome("child").Err; !errors.As(err, &skip) {
		t.Fatalf("child error %T, want *SkipError", err)
	} else if skip.Node != "child" || skip.Dep != "bad" {
		t.Errorf("SkipError = %+v, want node child / dep bad", skip)
	}
	// The root cause survives the skip chain for errors.Is.
	if err := res.Outcome("grandchild").Err; !errors.Is(err, boom) {
		t.Errorf("grandchild cause = %v, want the original failure via Unwrap", err)
	}
	if res.Complete() {
		t.Error("Complete() true with failed and skipped nodes")
	}
}

func TestResumeSkipsExecution(t *testing.T) {
	ran := false
	nodes := []Node{
		{Name: "a", Run: func(context.Context, map[string]any) (any, error) { ran = true; return "fresh", nil }},
		{Name: "b", Deps: []string{"a"}, Run: func(_ context.Context, deps map[string]any) (any, error) {
			return deps["a"].(string) + "+b", nil
		}},
	}
	res, err := Run(context.Background(), nodes, Options{Resume: map[string]any{"a": "restored"}})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("resumed node executed its Run")
	}
	o := res.Outcome("a")
	if !o.Resumed || o.Value != "restored" {
		t.Errorf("outcome a = %+v, want resumed with the restored value", o)
	}
	if got := res.Outcome("b").Value; got != "restored+b" {
		t.Errorf("b = %v: dependents must see the restored value", got)
	}
}

func TestPanicIsRecoveredPerNode(t *testing.T) {
	nodes := []Node{
		{Name: "kaboom", Run: func(context.Context, map[string]any) (any, error) { panic("tripped") }},
		{Name: "after", Deps: []string{"kaboom"}, Run: value(1)},
		{Name: "bystander", Run: value(2)},
	}
	res, err := Run(context.Background(), nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Outcome("kaboom").Err; e == nil || !strings.Contains(e.Error(), "panicked") {
		t.Errorf("panicking node error = %v, want a recorded panic", e)
	}
	if !res.Outcome("bystander").OK() {
		t.Error("a panic in one node took down an independent node")
	}
	if got := res.Skipped(); fmt.Sprint(got) != "[after]" {
		t.Errorf("Skipped() = %v, want [after]", got)
	}
}

// TestCancellationYieldsPartialResult cancels while the first node is
// in flight: the run must still return an outcome for every node —
// the running one with its error, unstarted ones skipped — plus ctx's
// error, which is how executeSignoff knows to mark the report partial.
func TestCancellationYieldsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	nodes := []Node{
		{Name: "slow", Run: func(ctx context.Context, _ map[string]any) (any, error) {
			cancel()
			<-ctx.Done()
			return nil, ctx.Err()
		}},
		{Name: "next", Deps: []string{"slow"}, Run: value(1)},
	}
	res, err := Run(ctx, nodes, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Outcomes) != len(nodes) {
		t.Fatalf("%d outcomes for %d nodes: every node needs a terminal state", len(res.Outcomes), len(nodes))
	}
	if o := res.Outcome("next"); !o.Skipped {
		t.Errorf("unstarted dependent = %+v, want skipped", o)
	}
}

// TestOnDoneSerialAndComplete drives a wide graph with unbounded workers
// and checks the checkpoint hook's contract under -race: exactly one
// call per node, never two concurrently.
func TestOnDoneSerialAndComplete(t *testing.T) {
	var nodes []Node
	for i := 0; i < 16; i++ {
		nodes = append(nodes, Node{Name: fmt.Sprintf("n%d", i), Run: value(i)})
	}
	var mu sync.Mutex
	inHook := false
	seen := map[string]int{}
	res, err := Run(context.Background(), nodes, Options{OnDone: func(o *Outcome) {
		mu.Lock()
		if inHook {
			mu.Unlock()
			t.Error("OnDone reentered concurrently")
			return
		}
		inHook = true
		seen[o.Name]++
		mu.Unlock()

		mu.Lock()
		inHook = false
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatal("wide graph incomplete")
	}
	for _, n := range Names(nodes) {
		if seen[n] != 1 {
			t.Errorf("OnDone saw %q %d times, want exactly once", n, seen[n])
		}
	}
}

func TestNamesDeclarationOrder(t *testing.T) {
	nodes := []Node{{Name: "z", Run: value(0)}, {Name: "a", Run: value(0)}}
	if got := Names(nodes); fmt.Sprint(got) != "[z a]" {
		t.Errorf("Names = %v, want declaration order [z a]", got)
	}
}
