// Package linalg provides the dense linear-algebra kernels required by the
// circuit simulator: real and complex matrices with LU factorisation and
// solve. Circuit matrices from modified nodal analysis are small (tens to a
// few hundred unknowns), so a dense partial-pivoting LU is both simple and
// fast enough; no external BLAS is used. Every experiment in the paper —
// the Section 2 mismatch Monte Carlo, the Section 3 aging re-simulations,
// the Section 4 EMI transients — bottoms out in these factor/solve calls,
// which is why the Workspace variants are kept allocation-free and
// instrumented (see metrics.go).
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorisation encounters an (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix. It panics on non-positive
// dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j); this is the "stamp" operation of
// nodal analysis.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero clears every element in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x. It panics on dimension mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecInto computes y = m·x into caller-provided y without allocating.
// y and x must not alias. It panics on dimension mismatch.
func (m *Matrix) MulVecInto(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecInto dimension mismatch y=%d x=%d vs %dx%d", len(y), len(x), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% 12.5g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LU is a partial-pivoting LU factorisation P·A = L·U of a square matrix,
// reusable for multiple right-hand sides. The zero value is ready to use
// with FactorInto, which reuses the internal storage across calls — the
// allocation-free path the circuit solver workspaces rely on.
type LU struct {
	n     int
	lu    []float64
	pivot []int
	signs int // sign of the permutation, for Det
}

// Factor computes the LU factorisation of square matrix a. The input is not
// modified. It returns ErrSingular when a pivot underflows.
func Factor(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInto computes the LU factorisation of square matrix a into f,
// reusing f's internal buffers when the capacity suffices (it allocates
// only when f has never factored a matrix this large). The input is not
// modified. It returns ErrSingular when a pivot underflows; the
// factorisation is unusable after any error.
func (f *LU) FactorInto(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Factor needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f.n = n
	f.signs = 1
	if cap(f.lu) < n*n {
		f.lu = make([]float64, n*n)
		f.pivot = make([]int, n)
	}
	f.lu = f.lu[:n*n]
	f.pivot = f.pivot[:n]
	copy(f.lu, a.Data)
	lu := f.lu
	for i := range f.pivot {
		f.pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		maxAbs := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return ErrSingular
		}
		if p != k {
			rowK := lu[k*n : (k+1)*n]
			rowP := lu[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.pivot[k], f.pivot[p] = f.pivot[p], f.pivot[k]
			f.signs = -f.signs
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			lik := lu[i*n+k] / pivVal
			lu[i*n+k] = lik
			if lik == 0 {
				continue
			}
			rowI := lu[i*n : (i+1)*n]
			rowK := lu[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= lik * rowK[j]
			}
		}
	}
	return nil
}

// Solve returns x with A·x = b. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.n)
	f.SolveInto(x, b)
	return x
}

// SolveInto solves A·x = b into the caller-provided x without allocating.
// x and b must both have length n and must not alias each other; b is not
// modified.
func (f *LU) SolveInto(x, b []float64) {
	if len(b) != f.n || len(x) != f.n {
		panic(fmt.Sprintf("linalg: SolveInto dimension mismatch x=%d b=%d vs %d", len(x), len(b), f.n))
	}
	n := f.n
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
}

// Det returns the determinant from the factorisation.
func (f *LU) Det() float64 {
	d := float64(f.signs)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Solve factors a and solves A·x = b in one call. Use Factor + LU.Solve to
// reuse a factorisation across right-hand sides.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// NormInf returns the infinity norm (maximum absolute row sum).
func (m *Matrix) NormInf() float64 {
	best := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += math.Abs(m.At(i, j))
		}
		if s > best {
			best = s
		}
	}
	return best
}

// VecNormInf returns max |x_i| of a vector, 0 for an empty one.
func VecNormInf(x []float64) float64 {
	best := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// VecSub returns a - b element-wise. It panics on length mismatch.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: VecSub length mismatch")
	}
	out := make([]float64, len(a))
	VecSubInto(out, a, b)
	return out
}

// VecSubInto computes dst = a - b element-wise without allocating. dst may
// alias a or b. It panics on length mismatch.
func VecSubInto(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("linalg: VecSubInto length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}
