package linalg

import "repro/internal/obs"

// Workspace bundles the reusable buffers of one dense solve pipeline: a
// system matrix A, a right-hand side B, a solution scratch X and an LU
// factorisation. Once warmed up, repeated Factor/Solve cycles through a
// Workspace perform zero heap allocations — the property the circuit
// solver's steady-state Newton loop is built on. A Workspace is not safe
// for concurrent use; give each goroutine its own.
type Workspace struct {
	// N is the current system dimension.
	N int
	// A is the N×N system matrix the caller stamps into.
	A *Matrix
	// B is the right-hand side.
	B []float64
	// X receives the solution of Solve.
	X  []float64
	lu LU
}

// NewWorkspace returns a workspace sized for n×n systems.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.Reset(n)
	return w
}

// Reset sizes the workspace for n×n systems, reusing existing storage when
// it is large enough, and zeroes A and B. X and the factorisation are left
// unspecified until the next Factor/Solve.
func (w *Workspace) Reset(n int) {
	if n <= 0 {
		panic("linalg: Workspace dimension must be positive")
	}
	if w.A == nil || cap(w.A.Data) < n*n {
		w.A = &Matrix{Rows: n, Cols: n, Data: make([]float64, n*n)}
		w.B = make([]float64, n)
		w.X = make([]float64, n)
	} else {
		w.A.Rows, w.A.Cols = n, n
		w.A.Data = w.A.Data[:n*n]
		w.B = w.B[:n]
		w.X = w.X[:n]
	}
	w.N = n
	w.A.Zero()
	for i := range w.B {
		w.B[i] = 0
	}
}

// Factor computes the LU factorisation of the current contents of A,
// reusing the workspace's internal factor storage. A itself is preserved.
func (w *Workspace) Factor() error {
	if m := met.Load(); m != nil {
		return w.factorMetered(m)
	}
	return w.lu.FactorInto(w.A)
}

// factorMetered is Factor's instrumented slow path, kept out of Factor
// itself so the disabled path stays inlinable in the Newton loop.
func (w *Workspace) factorMetered(m *pkgMetrics) error {
	sp := obs.StartSpan(m.factorSeconds)
	err := w.lu.FactorInto(w.A)
	sp.End()
	m.factors.Inc()
	return err
}

// Solve writes the solution of A·x = B into X using the factorisation from
// the last Factor call. It must follow a successful Factor.
func (w *Workspace) Solve() {
	if m := met.Load(); m != nil {
		w.solveMetered(m)
		return
	}
	w.lu.SolveInto(w.X, w.B)
}

// solveMetered is Solve's instrumented slow path; see factorMetered.
func (w *Workspace) solveMetered(m *pkgMetrics) {
	sp := obs.StartSpan(m.solveSeconds)
	w.lu.SolveInto(w.X, w.B)
	sp.End()
	m.solves.Inc()
}

// FactorSolve factors A and solves A·X = B in one allocation-free call.
func (w *Workspace) FactorSolve() error {
	if err := w.Factor(); err != nil {
		return err
	}
	w.Solve()
	return nil
}
