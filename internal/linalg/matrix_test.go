package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestSolve2x2(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(x[0], 1, 1e-12, 1e-12) || !mathx.ApproxEqual(x[1], 3, 1e-12, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestFactorReuse(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{4, -2, 1}, {-2, 4, -2}, {1, -2, 4}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]float64{{1, 0, 0}, {0, 1, 0}, {1, 2, 3}} {
		x := f.Solve(b)
		back := a.MulVec(x)
		for i := range b {
			if !mathx.ApproxEqual(back[i], b[i], 1e-10, 1e-10) {
				t.Errorf("residual on b=%v: got %v", b, back)
			}
		}
	}
}

func TestDet(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(f.Det(), 24, 1e-12, 0) {
		t.Errorf("det = %g, want 24", f.Det())
	}
	// Permutation sign: swapping two rows flips the determinant sign.
	a.Set(0, 0, 0)
	a.Set(0, 1, 2)
	a.Set(1, 1, 0)
	a.Set(1, 0, 3)
	f2, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(f2.Det(), -24, 1e-12, 0) {
		t.Errorf("det = %g, want -24", f2.Det())
	}
}

func TestSolvePropertyRandomSystems(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		n := 1 + r.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Norm())
			}
			// Diagonal dominance guarantees non-singularity.
			a.Add(i, i, float64(n)+2)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Norm()
		}
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestNormInf(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, -5)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 2)
	if a.NormInf() != 6 {
		t.Errorf("NormInf = %g, want 6", a.NormInf())
	}
	if VecNormInf([]float64{1, -9, 3}) != 9 {
		t.Error("VecNormInf broken")
	}
	if VecNormInf(nil) != 0 {
		t.Error("VecNormInf(nil) should be 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestCSolveKnown(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, complex(2, 0))
	a.Set(1, 0, complex(0, 1))
	a.Set(1, 1, complex(1, -1))
	want := []complex128{complex(1, 2), complex(-3, 0.5)}
	b := []complex128{
		a.At(0, 0)*want[0] + a.At(0, 1)*want[1],
		a.At(1, 0)*want[0] + a.At(1, 1)*want[1],
	}
	x, err := CSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := x[i] - want[i]; math.Abs(real(d)) > 1e-12 || math.Abs(imag(d)) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCSolveSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := CSolve(a, []complex128{1, 1}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestCSolvePropertyRandom(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		n := 1 + r.Intn(8)
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(r.Norm(), r.Norm()))
			}
			a.Add(i, i, complex(float64(n)+3, 0))
		}
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(r.Norm(), r.Norm())
		}
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += a.At(i, j) * want[j]
			}
			b[i] = s
		}
		x, err := CSolve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			d := x[i] - want[i]
			if math.Abs(real(d)) > 1e-8 || math.Abs(imag(d)) > 1e-8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVecSub(t *testing.T) {
	got := VecSub([]float64{3, 2}, []float64{1, 5})
	if got[0] != 2 || got[1] != -3 {
		t.Errorf("VecSub = %v", got)
	}
}
