package linalg

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense, row-major complex matrix used by small-signal AC
// analysis, where conductance and susceptance stamps combine into a single
// complex system per frequency point.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed rows×cols complex matrix. It panics on
// non-positive dimensions.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Zero clears every element in place.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CSolve solves the complex system A·x = b with partial-pivoting Gaussian
// elimination. a and b are not modified.
func CSolve(a *CMatrix, b []complex128) ([]complex128, error) {
	ac := &CMatrix{Rows: a.Rows, Cols: a.Cols, Data: append([]complex128(nil), a.Data...)}
	x := append([]complex128(nil), b...)
	if err := CSolveInPlace(ac, x); err != nil {
		return nil, err
	}
	return x, nil
}

// CSolveInPlace solves A·x = b without allocating: a is overwritten with
// factorisation intermediates and bx is overwritten with the solution. The
// AC sweep uses it to reuse one complex system across frequency points.
func CSolveInPlace(a *CMatrix, bx []complex128) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: CSolve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(bx) != a.Rows {
		return fmt.Errorf("linalg: CSolve dimension mismatch %d vs %d", len(bx), a.Rows)
	}
	n := a.Rows
	lu := a.Data
	x := bx
	for k := 0; k < n; k++ {
		p := k
		maxAbs := cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			x[k], x[p] = x[p], x[k]
		}
		piv := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu[i*n+k] / piv
			if f == 0 {
				continue
			}
			lu[i*n+k] = 0
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= f * lu[k*n+j]
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s / lu[i*n+i]
	}
	return nil
}
