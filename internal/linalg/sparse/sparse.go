// Package sparse implements the sparse linear-algebra kernel that changes
// the solver's complexity class: a compressed-column matrix with a frozen
// stamping pattern and an LU factorisation with Markowitz-style threshold
// pivoting (value-aware symbolic analysis once per pattern, allocation-free
// numeric refactorisation per Newton iteration). MNA matrices from the
// paper's Fig. 3-class testbenches are >90 % zeros, so the dense LU in
// internal/linalg — O(n³) per factor — dominates every large workload
// (Section 2 mismatch Monte Carlo at scale, Section 5 resilience
// campaigns); exploiting the sparsity keeps the factor cost near O(nnz)
// and opens netlists far beyond the paper's testbench sizes. The API
// mirrors the dense FactorInto/SolveInto workspace idiom so the circuit
// solver can switch backends without changing its Newton loop.
package sparse

import (
	"fmt"
	"sort"
)

// Matrix is a compressed-sparse-column (CSC) real matrix with a frozen
// pattern: the set of structurally-nonzero positions is fixed at Freeze
// time, while the values are rewritten freely (the circuit solver stamps a
// fresh set of values into the same pattern on every Newton iteration).
// Vals may be re-pointed at a caller-owned slice of length NNZ() — that is
// how the solver keeps a linear-stamp baseline and an iteration copy
// sharing one pattern.
type Matrix struct {
	// N is the (square) dimension.
	N int
	// ColPtr has length N+1; column j's entries live in
	// RowIdx[ColPtr[j]:ColPtr[j+1]], sorted by row.
	ColPtr []int32
	// RowIdx holds the row index of every stored entry.
	RowIdx []int32
	// Vals holds the entry values, aligned with RowIdx.
	Vals []float64
}

// NNZ returns the number of stored (structurally nonzero) entries.
func (m *Matrix) NNZ() int { return len(m.RowIdx) }

// Density returns NNZ/N² — the fraction of stored positions.
func (m *Matrix) Density() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.N) * float64(m.N))
}

// Zero clears every stored value in place; the pattern is untouched.
func (m *Matrix) Zero() {
	for i := range m.Vals {
		m.Vals[i] = 0
	}
}

// slot returns the value index of position (i, j), or -1 when the position
// is not part of the pattern.
func (m *Matrix) slot(i, j int) int {
	lo, hi := int(m.ColPtr[j]), int(m.ColPtr[j+1])
	r := int32(i)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.RowIdx[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(m.ColPtr[j+1]) && m.RowIdx[lo] == r {
		return lo
	}
	return -1
}

// Add accumulates v into position (i, j) — the stamp operation of nodal
// analysis. The position must be part of the frozen pattern; stamping an
// absent position is a programming error (the pattern discovery pass
// stamps a superset of every analysis mode) and panics.
func (m *Matrix) Add(i, j int, v float64) {
	s := m.slot(i, j)
	if s < 0 {
		panic(fmt.Sprintf("sparse: stamp outside frozen pattern at (%d,%d)", i, j))
	}
	m.Vals[s] += v
}

// At returns the value at (i, j); positions outside the pattern read 0.
func (m *Matrix) At(i, j int) float64 {
	if s := m.slot(i, j); s >= 0 {
		return m.Vals[s]
	}
	return 0
}

// MulVecInto computes y = M·x without allocating. y and x must have length
// N and must not alias.
func (m *Matrix) MulVecInto(y, x []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic(fmt.Sprintf("sparse: MulVecInto dimension mismatch y=%d x=%d vs %d", len(y), len(x), m.N))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			y[m.RowIdx[p]] += m.Vals[p] * xj
		}
	}
}

// Builder accumulates a sparsity pattern (and values) in scatter form
// before freezing it into a Matrix. It satisfies the same Add/Zero stamp
// contract as Matrix, so a circuit can run its pattern-discovery stamping
// pass directly against a Builder.
type Builder struct {
	n    int
	cols []map[int32]float64
}

// NewBuilder returns a builder for an n×n pattern. It panics on
// non-positive n.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic(fmt.Sprintf("sparse: invalid dimension %d", n))
	}
	return &Builder{n: n, cols: make([]map[int32]float64, n)}
}

// Add accumulates v at (i, j), creating the position on first touch.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || j < 0 || i >= b.n || j >= b.n {
		panic(fmt.Sprintf("sparse: Builder.Add out of range (%d,%d) for n=%d", i, j, b.n))
	}
	c := b.cols[j]
	if c == nil {
		c = make(map[int32]float64, 8)
		b.cols[j] = c
	}
	c[int32(i)] += v
}

// Zero clears every accumulated value but keeps the discovered pattern.
func (b *Builder) Zero() {
	for _, c := range b.cols {
		for k := range c {
			c[k] = 0
		}
	}
}

// Freeze converts the accumulated pattern into a CSC Matrix with sorted
// row indices. The builder remains usable afterwards.
func (b *Builder) Freeze() *Matrix {
	m := &Matrix{N: b.n, ColPtr: make([]int32, b.n+1)}
	nnz := 0
	for _, c := range b.cols {
		nnz += len(c)
	}
	m.RowIdx = make([]int32, 0, nnz)
	m.Vals = make([]float64, 0, nnz)
	for j := 0; j < b.n; j++ {
		m.ColPtr[j] = int32(len(m.RowIdx))
		c := b.cols[j]
		rows := make([]int32, 0, len(c))
		for r := range c {
			rows = append(rows, r)
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
		for _, r := range rows {
			m.RowIdx = append(m.RowIdx, r)
			m.Vals = append(m.Vals, c[r])
		}
	}
	m.ColPtr[b.n] = int32(len(m.RowIdx))
	return m
}
