package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// buildBoth stamps the same entries into a dense matrix and a sparse
// builder so tests can compare the two backends on identical systems.
type stampFn func(add func(i, j int, v float64))

func buildBoth(n int, stamps stampFn) (*linalg.Matrix, *Matrix) {
	d := linalg.NewMatrix(n, n)
	b := NewBuilder(n)
	stamps(func(i, j int, v float64) {
		d.Add(i, j, v)
		b.Add(i, j, v)
	})
	return d, b.Freeze()
}

func TestBuilderFreezeSortedPattern(t *testing.T) {
	b := NewBuilder(3)
	b.Add(2, 0, 5)
	b.Add(0, 0, 1)
	b.Add(1, 2, 3)
	b.Add(0, 0, 2) // accumulate
	m := b.Freeze()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if got := m.At(0, 0); got != 3 {
		t.Fatalf("At(0,0) = %g, want 3 (accumulated)", got)
	}
	for j := 0; j < m.N; j++ {
		for p := m.ColPtr[j] + 1; p < m.ColPtr[j+1]; p++ {
			if m.RowIdx[p-1] >= m.RowIdx[p] {
				t.Fatalf("column %d rows not strictly sorted", j)
			}
		}
	}
	if got := m.At(1, 1); got != 0 {
		t.Fatalf("At outside pattern = %g, want 0", got)
	}
}

func TestMatrixAddOutsidePatternPanics(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	m := b.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Add outside the frozen pattern did not panic")
		}
	}()
	m.Add(1, 1, 1)
}

func TestMatrixMulVecInto(t *testing.T) {
	d, s := buildBoth(4, func(add func(i, j int, v float64)) {
		add(0, 0, 2)
		add(1, 1, -3)
		add(2, 0, 1)
		add(0, 2, 4)
		add(3, 3, 1)
		add(2, 2, 5)
	})
	x := []float64{1, -2, 3, 0.5}
	want := d.MulVec(x)
	got := make([]float64, 4)
	s.MulVecInto(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLUSolveSmallKnown(t *testing.T) {
	// A = [[4,1],[2,3]], b = [1, 2] -> x = [0.1, 0.6]
	_, s := buildBoth(2, func(add func(i, j int, v float64)) {
		add(0, 0, 4)
		add(0, 1, 1)
		add(1, 0, 2)
		add(1, 1, 3)
	})
	var f LU
	if err := f.FactorInto(s); err != nil {
		t.Fatalf("FactorInto: %v", err)
	}
	x := f.Solve([]float64{1, 2})
	if math.Abs(x[0]-0.1) > 1e-14 || math.Abs(x[1]-0.6) > 1e-14 {
		t.Fatalf("x = %v, want [0.1 0.6]", x)
	}
}

func TestLUZeroDiagonalPivoting(t *testing.T) {
	// Voltage-source-like MNA block: branch row with a structurally zero
	// diagonal forces off-diagonal pivoting.
	//   [ g  0  1 ] [v1]   [0]
	//   [ 0  g -1 ] [v2] = [0]
	//   [ 1 -1  0 ] [ib]   [5]   (v1 - v2 = 5)
	g := 1e-3
	_, s := buildBoth(3, func(add func(i, j int, v float64)) {
		add(0, 0, g)
		add(1, 1, g)
		add(0, 2, 1)
		add(1, 2, -1)
		add(2, 0, 1)
		add(2, 1, -1)
		add(2, 2, 0) // structural zero on the branch diagonal
	})
	var f LU
	if err := f.FactorInto(s); err != nil {
		t.Fatalf("FactorInto with zero diagonal: %v", err)
	}
	x := f.Solve([]float64{0, 0, 5})
	if math.Abs(x[0]-x[1]-5) > 1e-10 {
		t.Fatalf("branch constraint violated: v1-v2 = %g, want 5", x[0]-x[1])
	}
}

func TestLUStructurallySingular(t *testing.T) {
	// Column 1 has no entries at all.
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(1, 0, 2)
	b.Add(2, 2, 3)
	b.Add(1, 2, 1)
	m := b.Freeze()
	var f LU
	if err := f.FactorInto(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("FactorInto on structurally singular matrix: %v, want ErrSingular", err)
	}
}

func TestLUNumericallySingular(t *testing.T) {
	// Two identical rows.
	_, s := buildBoth(2, func(add func(i, j int, v float64)) {
		add(0, 0, 1)
		add(0, 1, 2)
		add(1, 0, 1)
		add(1, 1, 2)
	})
	var f LU
	if err := f.FactorInto(s); !errors.Is(err, ErrSingular) {
		t.Fatalf("FactorInto on rank-deficient matrix: %v, want ErrSingular", err)
	}
}

func TestLURefactorStalePivotReanalyzes(t *testing.T) {
	// First factorisation pivots through (0,0); the second value set zeroes
	// that entry, so the recorded pivot sequence degenerates and FactorInto
	// must transparently re-run the analysis.
	_, s := buildBoth(2, func(add func(i, j int, v float64)) {
		add(0, 0, 4)
		add(0, 1, 1)
		add(1, 0, 1)
		add(1, 1, 0)
	})
	var f LU
	if err := f.FactorInto(s); err != nil {
		t.Fatalf("initial FactorInto: %v", err)
	}
	// New values on the same pattern: diagonal swaps its role.
	for p := range s.Vals {
		s.Vals[p] = 0
	}
	s.Add(0, 1, 2)
	s.Add(1, 0, 3)
	s.Add(1, 1, 1)
	if err := f.FactorInto(s); err != nil {
		t.Fatalf("FactorInto after value change: %v", err)
	}
	x := f.Solve([]float64{4, 7}) // 2*x1 = 4; 3*x0 + x1 = 7
	if math.Abs(x[0]-5.0/3.0) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [5/3 2]", x)
	}
}

// randomMNASystem builds an MNA-shaped system: g resistive stamps between
// random node pairs (symmetric 4-position stamps, diagonally dominant),
// ground-connected diagonals, plus nBranch voltage-source-style branch rows
// with structurally zero diagonals.
func randomMNASystem(rng *rand.Rand, nNodes, nBranch int) (*linalg.Matrix, *Matrix, []float64) {
	n := nNodes + nBranch
	d, s := buildBoth(n, func(add func(i, j int, v float64)) {
		// Every node leaks to ground so the resistive block is nonsingular.
		for i := 0; i < nNodes; i++ {
			add(i, i, 1e-6+rng.Float64())
		}
		nR := 2 * nNodes
		for r := 0; r < nR; r++ {
			a, b := rng.Intn(nNodes), rng.Intn(nNodes)
			if a == b {
				continue
			}
			g := 1e-3 + rng.Float64()
			add(a, a, g)
			add(b, b, g)
			add(a, b, -g)
			add(b, a, -g)
		}
		for k := 0; k < nBranch; k++ {
			br := nNodes + k
			a, b := rng.Intn(nNodes), rng.Intn(nNodes)
			for b == a {
				b = rng.Intn(nNodes)
			}
			add(a, br, 1)
			add(br, a, 1)
			add(b, br, -1)
			add(br, b, -1)
			add(br, br, 0) // structural zero diagonal
		}
	})
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	return d, s, rhs
}

func TestLUPropertySparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nNodes := 4 + rng.Intn(40)
		nBranch := rng.Intn(4)
		d, s, b := randomMNASystem(rng, nNodes, nBranch)
		n := s.N

		xDense, errD := linalg.Solve(d, b)
		var f LU
		errS := f.FactorInto(s)
		if errD != nil || errS != nil {
			if (errD == nil) != (errS == nil) {
				t.Fatalf("trial %d: singularity disagreement dense=%v sparse=%v", trial, errD, errS)
			}
			continue
		}
		xSparse := f.Solve(b)

		// 1-ULP-scale agreement: both solve the same well-conditioned
		// system, so the difference must stay within a few ULP of the
		// solution magnitude (different pivot orders make exact equality
		// impossible in general).
		scale := linalg.VecNormInf(xDense) + linalg.VecNormInf(b) + 1
		for i := 0; i < n; i++ {
			if diff := math.Abs(xSparse[i] - xDense[i]); diff > 1e-10*scale {
				t.Fatalf("trial %d (n=%d): x[%d] sparse=%.17g dense=%.17g diff=%g scale=%g",
					trial, n, i, xSparse[i], xDense[i], diff, scale)
			}
		}

		// And the residual must be small in its own right.
		res := make([]float64, n)
		s.MulVecInto(res, xSparse)
		linalg.VecSubInto(res, res, b)
		if r := linalg.VecNormInf(res); r > 1e-9*scale {
			t.Fatalf("trial %d: sparse residual %g too large (scale %g)", trial, r, scale)
		}
	}
}

func TestLURefactorMatchesFreshAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, s, b := randomMNASystem(rng, 30, 2)
	_ = d
	var reused LU
	if err := reused.FactorInto(s); err != nil {
		t.Fatalf("initial FactorInto: %v", err)
	}
	// Perturb values on the fixed pattern (keep signs so pivots stay valid).
	for p := range s.Vals {
		s.Vals[p] *= 1 + 0.01*rng.Float64()
	}
	if err := reused.FactorInto(s); err != nil {
		t.Fatalf("refactor: %v", err)
	}
	var fresh LU
	if err := fresh.Analyze(s); err != nil {
		t.Fatalf("fresh Analyze: %v", err)
	}
	xr := reused.Solve(b)
	xf := fresh.Solve(b)
	for i := range xr {
		if xr[i] != xf[i] {
			t.Fatalf("refactor vs fresh analysis diverged at %d: %.17g vs %.17g", i, xr[i], xf[i])
		}
	}
}

func TestLURefactorAndSolveAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, s, b := randomMNASystem(rng, 40, 3)
	var f LU
	if err := f.FactorInto(s); err != nil {
		t.Fatalf("FactorInto: %v", err)
	}
	x := make([]float64, s.N)
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.FactorInto(s); err != nil {
			t.Fatalf("refactor: %v", err)
		}
		f.SolveInto(x, b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state refactor+solve allocated %v times, want 0", allocs)
	}
}

func TestVecSubInto(t *testing.T) {
	a := []float64{3, 5, 7}
	b := []float64{1, 1, 2}
	dst := make([]float64, 3)
	linalg.VecSubInto(dst, a, b)
	want := []float64{2, 4, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("VecSubInto[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
	// Aliasing dst with a must be safe.
	linalg.VecSubInto(a, a, b)
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("aliased VecSubInto[%d] = %g, want %g", i, a[i], want[i])
		}
	}
}

func TestDenseMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := linalg.NewMatrix(5, 5)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := m.MulVec(x)
	got := make([]float64, 5)
	allocs := testing.AllocsPerRun(20, func() { m.MulVecInto(got, x) })
	if allocs != 0 {
		t.Fatalf("MulVecInto allocated %v times, want 0", allocs)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
