package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSingular is returned when the matrix is structurally or numerically
// singular — no acceptable pivot exists at some elimination step.
var ErrSingular = errors.New("sparse: singular matrix")

// errStalePivots tags a numeric refactorisation whose recorded pivot
// sequence has degenerated (a pivot position now holds ~0). FactorInto
// recovers from it internally by re-running the analysis.
var errStalePivots = errors.New("sparse: stale pivot sequence")

// defaultPivotTol is the Markowitz threshold-pivoting parameter: a pivot
// candidate must be at least this fraction of its column's largest
// magnitude. 1e-3 is the classical SPICE sparse-package default — loose
// enough to keep fill-in low, tight enough for MNA conditioning.
const defaultPivotTol = 1e-3

// LU is a sparse LU factorisation P·A·Q = L·U with Markowitz-style
// threshold pivoting. The zero value is ready to use: the first FactorInto
// runs the full value-aware analysis (pivot-order selection plus exact
// fill-in bookkeeping, allocating), and every later FactorInto on the same
// pattern is a fixed-structure numeric refactorisation that performs zero
// heap allocations — the property the circuit solver's Newton loop relies
// on, mirroring the dense linalg.LU workspace idiom. If drifting values
// make a recorded pivot degenerate, FactorInto transparently re-runs the
// analysis; it returns ErrSingular only when the matrix truly admits no
// pivot. An LU is not safe for concurrent use.
type LU struct {
	n int
	// PivotTol overrides the threshold-pivoting tolerance (0 = default).
	PivotTol float64

	// Pivot order: prow[k]/pcol[k] are the original row/column eliminated
	// at step k. rowPos/colPos are the inverse permutations.
	prow, pcol     []int32
	rowPos, colPos []int32

	// L is column-major with an implicit unit diagonal: column k's
	// subdiagonal entries (permuted rows > k) live in
	// lRow/lVal[lPtr[k]:lPtr[k+1]], sorted.
	lPtr []int32
	lRow []int32
	lVal []float64

	// U is column-major, strictly above the diagonal (permuted rows < j),
	// sorted; the diagonal is stored separately in uDiag.
	uPtr  []int32
	uRow  []int32
	uVal  []float64
	uDiag []float64

	// A-scatter: the input matrix's entries mapped into permuted
	// coordinates, column-major in pivot order: entry t scatters
	// a.Vals[aSlot[t]] into work position aRow[t] while processing
	// permuted column j for t in [aPtr[j], aPtr[j+1]).
	aPtr  []int32
	aRow  []int32
	aSlot []int32

	// w is the dense work/solve vector (zero outside the active column's
	// pattern between uses).
	w []float64

	analyzed bool
	patNNZ   int // pattern size the analysis was built for
}

// pivotTol returns the effective threshold-pivoting tolerance.
func (f *LU) pivotTol() float64 {
	if f.PivotTol > 0 {
		return f.PivotTol
	}
	return defaultPivotTol
}

// Fill returns the number of stored factor entries (L below the diagonal,
// U above, plus the n pivots) after an analysis; 0 before one.
func (f *LU) Fill() int {
	if !f.analyzed {
		return 0
	}
	return len(f.lRow) + len(f.uRow) + f.n
}

// FactorInto factorises a. The first call (or a call after the pattern
// changed, or after the recorded pivots went numerically stale) runs the
// full Markowitz analysis; steady-state calls are allocation-free numeric
// refactorisations over the recorded structure. The input matrix is not
// modified. It returns ErrSingular when no acceptable pivot exists.
func (f *LU) FactorInto(a *Matrix) error {
	if f.analyzed && f.n == a.N && f.patNNZ == a.NNZ() {
		err := f.refactor(a)
		if err == nil {
			return nil
		}
		if !errors.Is(err, errStalePivots) {
			return err
		}
		// Stale pivot order: fall through to a fresh analysis.
	}
	return f.Analyze(a)
}

// SolveInto solves A·x = b into caller-provided x without allocating,
// using the factorisation from the last successful FactorInto. x and b
// must have length n and must not alias; b is not modified.
func (f *LU) SolveInto(x, b []float64) {
	if !f.analyzed {
		panic("sparse: SolveInto before a successful FactorInto")
	}
	if len(x) != f.n || len(b) != f.n {
		panic(fmt.Sprintf("sparse: SolveInto dimension mismatch x=%d b=%d vs %d", len(x), len(b), f.n))
	}
	n := f.n
	w := f.w
	// Permute: z = P·b.
	for k := 0; k < n; k++ {
		w[k] = b[f.prow[k]]
	}
	// Forward substitution with unit-lower L (column-oriented).
	for k := 0; k < n; k++ {
		zk := w[k]
		if zk == 0 {
			continue
		}
		for p := f.lPtr[k]; p < f.lPtr[k+1]; p++ {
			w[f.lRow[p]] -= f.lVal[p] * zk
		}
	}
	// Back substitution with U (column-oriented), un-permuting into x.
	for j := n - 1; j >= 0; j-- {
		yj := w[j] / f.uDiag[j]
		w[j] = yj
		x[f.pcol[j]] = yj
		if yj != 0 {
			for p := f.uPtr[j]; p < f.uPtr[j+1]; p++ {
				w[f.uRow[p]] -= f.uVal[p] * yj
			}
		}
	}
}

// Solve returns x with A·x = b, allocating the result.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.n)
	f.SolveInto(x, b)
	return x
}

// refactor recomputes the numeric factors over the recorded structure via
// a left-looking (Gilbert–Peierls style) pass with the fill pattern known
// in advance. Zero allocations in steady state.
func (f *LU) refactor(a *Matrix) error {
	n := f.n
	w := f.w
	for j := 0; j < n; j++ {
		// Zero the structural positions of permuted column j, then scatter
		// A's column into them.
		for p := f.uPtr[j]; p < f.uPtr[j+1]; p++ {
			w[f.uRow[p]] = 0
		}
		w[j] = 0
		for p := f.lPtr[j]; p < f.lPtr[j+1]; p++ {
			w[f.lRow[p]] = 0
		}
		for t := f.aPtr[j]; t < f.aPtr[j+1]; t++ {
			w[f.aRow[t]] += a.Vals[f.aSlot[t]]
		}
		// Apply the updates of every U entry's column in ascending order;
		// the recorded fill pattern is closed under reachability, so each
		// w[k] is final before its column is applied.
		for p := f.uPtr[j]; p < f.uPtr[j+1]; p++ {
			k := f.uRow[p]
			uv := w[k]
			f.uVal[p] = uv
			if uv == 0 {
				continue
			}
			for q := f.lPtr[k]; q < f.lPtr[k+1]; q++ {
				w[f.lRow[q]] -= f.lVal[q] * uv
			}
		}
		piv := w[j]
		if piv == 0 || math.IsNaN(piv) {
			f.clearColumn(j)
			return fmt.Errorf("%w: pivot %d", errStalePivots, j)
		}
		f.uDiag[j] = piv
		for p := f.lPtr[j]; p < f.lPtr[j+1]; p++ {
			f.lVal[p] = w[f.lRow[p]] / piv
		}
		f.clearColumn(j)
	}
	return nil
}

// clearColumn zeroes the work vector at column j's structural positions so
// w stays all-zero between columns.
func (f *LU) clearColumn(j int) {
	w := f.w
	for p := f.uPtr[j]; p < f.uPtr[j+1]; p++ {
		w[f.uRow[p]] = 0
	}
	w[j] = 0
	for p := f.lPtr[j]; p < f.lPtr[j+1]; p++ {
		w[f.lRow[p]] = 0
	}
}

// Analyze runs the full value-aware Markowitz factorisation of a: at every
// step it picks the acceptable pivot (|v| ≥ tol·colmax) with the smallest
// Markowitz count (r−1)(c−1), ties broken deterministically, tracking the
// exact fill-in. It records the pivot order, the factor structure and the
// numeric factors, so a successful Analyze leaves the LU ready for
// SolveInto and primes the allocation-free refactor path.
func (f *LU) Analyze(a *Matrix) error {
	n := a.N
	tol := f.pivotTol()

	// Active submatrix in scatter form: colv[j] maps active row -> value,
	// rows[i] is the set of active columns of row i.
	colv := make([]map[int32]float64, n)
	rows := make([]map[int32]struct{}, n)
	for i := 0; i < n; i++ {
		rows[i] = make(map[int32]struct{}, 8)
	}
	for j := 0; j < n; j++ {
		c := make(map[int32]float64, int(a.ColPtr[j+1]-a.ColPtr[j])+4)
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			c[i] = a.Vals[p]
			rows[i][int32(j)] = struct{}{}
		}
		colv[j] = c
	}

	colActive := make([]bool, n)
	for i := range colActive {
		colActive[i] = true
	}

	prow := make([]int32, n)
	pcol := make([]int32, n)
	// Factor structure in original coordinates, per elimination step.
	lrows := make([][]int32, n)   // L column k: original rows
	lvals := make([][]float64, n) // aligned values
	ucols := make([][]int32, n)   // U row k: original columns
	uvals := make([][]float64, n)
	udiag := make([]float64, n)

	for k := 0; k < n; k++ {
		// Pivot search: among active entries that pass the column
		// threshold, minimise the Markowitz count; scan columns in
		// ascending index so ties resolve deterministically.
		bestCost := int64(math.MaxInt64)
		bestRow, bestCol := int32(-1), int32(-1)
		for j := 0; j < n; j++ {
			if !colActive[j] {
				continue
			}
			c := colv[j]
			colmax := 0.0
			for _, v := range c {
				if av := math.Abs(v); av > colmax {
					colmax = av
				}
			}
			if colmax == 0 {
				continue // numerically empty column; try others
			}
			ccount := int64(len(c)) - 1
			thresh := tol * colmax
			// Within the column pick the acceptable row with the smallest
			// row count; break ties toward larger magnitude then smaller
			// row index (deterministic despite map iteration order).
			rBest, rBestCount := int32(-1), int64(math.MaxInt64)
			var rBestAbs float64
			for r, v := range c {
				av := math.Abs(v)
				if av < thresh {
					continue
				}
				rc := int64(len(rows[r])) - 1
				switch {
				case rc < rBestCount,
					rc == rBestCount && av > rBestAbs,
					rc == rBestCount && av == rBestAbs && r < rBest:
					rBest, rBestCount, rBestAbs = r, rc, av
				}
			}
			if rBest < 0 {
				continue
			}
			cost := rBestCount * ccount
			if cost < bestCost || (cost == bestCost && bestCol < 0) {
				bestCost, bestRow, bestCol = cost, rBest, int32(j)
			}
			if bestCost == 0 {
				break // cannot do better than zero fill
			}
		}
		if bestCol < 0 {
			f.analyzed = false
			return fmt.Errorf("%w (no acceptable pivot at step %d of %d)", ErrSingular, k, n)
		}
		pi, pj := bestRow, bestCol
		piv := colv[pj][pi]
		prow[k], pcol[k] = pi, pj
		udiag[k] = piv

		// Record the pivot row (U row k) and pivot column (L column k)
		// structure, then eliminate.
		delete(colv[pj], pi)
		delete(rows[pi], pj)
		uc := make([]int32, 0, len(rows[pi]))
		for cIdx := range rows[pi] {
			uc = append(uc, cIdx)
		}
		sort.Slice(uc, func(x, y int) bool { return uc[x] < uc[y] })
		uv := make([]float64, len(uc))
		for t, cIdx := range uc {
			uv[t] = colv[cIdx][pi]
		}
		lr := make([]int32, 0, len(colv[pj]))
		for rIdx := range colv[pj] {
			lr = append(lr, rIdx)
		}
		sort.Slice(lr, func(x, y int) bool { return lr[x] < lr[y] })
		lv := make([]float64, len(lr))
		for t, rIdx := range lr {
			lv[t] = colv[pj][rIdx] / piv
		}
		ucols[k], uvals[k] = uc, uv
		lrows[k], lvals[k] = lr, lv

		// Rank-1 update of the active submatrix with exact fill tracking.
		for t, rIdx := range lr {
			l := lv[t]
			for s, cIdx := range uc {
				cv := colv[cIdx]
				old, ok := cv[rIdx]
				cv[rIdx] = old - l*uv[s]
				if !ok {
					rows[rIdx][cIdx] = struct{}{}
				}
			}
		}
		// Deactivate the pivot row and column.
		for _, cIdx := range uc {
			delete(colv[cIdx], pi)
		}
		for _, rIdx := range lr {
			delete(rows[rIdx], pj)
		}
		colActive[pj] = false
		colv[pj] = nil
		rows[pi] = nil
	}

	// Permutation inverses.
	rowPos := make([]int32, n)
	colPos := make([]int32, n)
	for k := 0; k < n; k++ {
		rowPos[prow[k]] = int32(k)
		colPos[pcol[k]] = int32(k)
	}

	// Pack L (columns are elimination steps; convert rows to permuted
	// positions and sort).
	lnnz := 0
	for k := range lrows {
		lnnz += len(lrows[k])
	}
	f.lPtr = make([]int32, n+1)
	f.lRow = make([]int32, 0, lnnz)
	f.lVal = make([]float64, 0, lnnz)
	type ent struct {
		pos int32
		val float64
	}
	var scratch []ent
	for k := 0; k < n; k++ {
		f.lPtr[k] = int32(len(f.lRow))
		scratch = scratch[:0]
		for t, rIdx := range lrows[k] {
			scratch = append(scratch, ent{rowPos[rIdx], lvals[k][t]})
		}
		sort.Slice(scratch, func(x, y int) bool { return scratch[x].pos < scratch[y].pos })
		for _, e := range scratch {
			f.lRow = append(f.lRow, e.pos)
			f.lVal = append(f.lVal, e.val)
		}
	}
	f.lPtr[n] = int32(len(f.lRow))

	// Pack U column-major: entry (k, colPos[c]) for each recorded U-row
	// entry (k, c).
	ucount := make([]int32, n)
	unnz := 0
	for k := 0; k < n; k++ {
		for _, cIdx := range ucols[k] {
			ucount[colPos[cIdx]]++
			unnz++
		}
	}
	f.uPtr = make([]int32, n+1)
	for j := 0; j < n; j++ {
		f.uPtr[j+1] = f.uPtr[j] + ucount[j]
	}
	f.uRow = make([]int32, unnz)
	f.uVal = make([]float64, unnz)
	fill := make([]int32, n)
	copy(fill, f.uPtr[:n])
	// Iterate k ascending so each U column's rows come out sorted.
	for k := 0; k < n; k++ {
		for t, cIdx := range ucols[k] {
			j := colPos[cIdx]
			p := fill[j]
			f.uRow[p] = int32(k)
			f.uVal[p] = uvals[k][t]
			fill[j] = p + 1
		}
	}
	f.uDiag = udiag

	// A-scatter map: permuted column j draws from original column pcol[j].
	f.aPtr = make([]int32, n+1)
	f.aRow = make([]int32, a.NNZ())
	f.aSlot = make([]int32, a.NNZ())
	t := int32(0)
	for j := 0; j < n; j++ {
		f.aPtr[j] = t
		oc := pcol[j]
		for p := a.ColPtr[oc]; p < a.ColPtr[oc+1]; p++ {
			f.aRow[t] = rowPos[a.RowIdx[p]]
			f.aSlot[t] = p
			t++
		}
	}
	f.aPtr[n] = t

	f.n = n
	f.prow, f.pcol = prow, pcol
	f.rowPos, f.colPos = rowPos, colPos
	if cap(f.w) < n {
		f.w = make([]float64, n)
	} else {
		f.w = f.w[:n]
		for i := range f.w {
			f.w[i] = 0
		}
	}
	f.analyzed = true
	f.patNNZ = a.NNZ()
	return nil
}
