package linalg

import (
	"sync/atomic"

	"repro/internal/obs"
)

// pkgMetrics holds the package's instruments. The whole struct is swapped
// atomically by SetMetrics so instrumentation can be enabled mid-process
// without racing the solver goroutines.
type pkgMetrics struct {
	factors       *obs.Counter
	solves        *obs.Counter
	factorSeconds *obs.Histogram
	solveSeconds  *obs.Histogram
}

var met atomic.Pointer[pkgMetrics]

// SetMetrics wires the package's instrumentation into reg, or disables it
// when reg is nil. With metrics disabled the factor/solve hot path pays a
// single atomic pointer load per call — no allocations, no clock reads —
// which preserves the workspace pipeline's 0-alloc guarantee.
//
// Metrics registered:
//
//	linalg_factor_total          count   LU factorisations through Workspace.Factor
//	linalg_factor_seconds        s       latency histogram of those factorisations
//	linalg_solve_total           count   triangular solves through Workspace.Solve
//	linalg_solve_seconds         s       latency histogram of those solves
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&pkgMetrics{
		factors:       reg.Counter("linalg_factor_total", "1", "LU factorisations via Workspace.Factor"),
		solves:        reg.Counter("linalg_solve_total", "1", "triangular solves via Workspace.Solve"),
		factorSeconds: reg.Histogram("linalg_factor_seconds", "s", "Workspace.Factor latency", nil),
		solveSeconds:  reg.Histogram("linalg_solve_seconds", "s", "Workspace.Solve latency", nil),
	})
}
