package linalg

import (
	"fmt"
	"testing"
)

// benchSystem builds a well-conditioned diagonally dominant n×n system
// resembling an MNA conductance matrix.
func benchSystem(n int) (*Matrix, []float64) {
	a := NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, 4+float64(i%7))
			} else {
				a.Set(i, j, 1/float64(1+i+j))
			}
		}
		b[i] = float64(i%5) - 2
	}
	return a, b
}

// BenchmarkFactorSolve measures the allocating Factor+Solve path at MNA-
// typical sizes.
func BenchmarkFactorSolve(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a, rhs := benchSystem(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := Factor(a)
				if err != nil {
					b.Fatal(err)
				}
				_ = f.Solve(rhs)
			}
		})
	}
}

// BenchmarkFactorSolveWorkspace measures the same systems through the
// reusable, allocation-free Workspace pipeline.
func BenchmarkFactorSolveWorkspace(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a, rhs := benchSystem(n)
			w := NewWorkspace(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(w.A.Data, a.Data)
				copy(w.B, rhs)
				if err := w.FactorSolve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
