package linalg

import (
	"errors"
	"math"
	"testing"
)

func TestFactorSolve1x1(t *testing.T) {
	a := NewMatrix(1, 1)
	a.Set(0, 0, 4)
	x, err := Solve(a, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-15 {
		t.Fatalf("1x1 solve gives %g, want 2", x[0])
	}
}

func TestFactor1x1Singular(t *testing.T) {
	a := NewMatrix(1, 1) // zero matrix
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero 1x1 factorised: err=%v", err)
	}
}

// TestFactorSingularAfterPivot exercises the case where the first pivot
// column is fine but elimination zeroes a later pivot: rank-1 matrix
// [[1,2],[2,4]].
func TestFactorSingularAfterPivot(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("rank-1 matrix factorised: err=%v", err)
	}
}

// TestFactorIntoReuse reuses one LU across different matrix values of the
// same dimension and checks no state leaks between factorisations.
func TestFactorIntoReuse(t *testing.T) {
	var f LU
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 4)
	if err := f.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.SolveInto(x, []float64{2, 8})
	if math.Abs(x[0]-1) > 1e-15 || math.Abs(x[1]-2) > 1e-15 {
		t.Fatalf("first solve gives %v, want [1 2]", x)
	}
	// Same dimension, different values — including a permutation-forcing
	// off-diagonal so stale pivots would be caught.
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 3)
	a.Set(1, 1, 0)
	if err := f.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	f.SolveInto(x, []float64{5, 6})
	if math.Abs(x[0]-2) > 1e-15 || math.Abs(x[1]-5) > 1e-15 {
		t.Fatalf("reused solve gives %v, want [2 5]", x)
	}
	if math.Abs(f.Det()) != 3 {
		t.Fatalf("det = %g, want ±3", f.Det())
	}
}

// TestFactorIntoResize grows and then shrinks the system through one LU.
func TestFactorIntoResize(t *testing.T) {
	var f LU
	for _, n := range []int{2, 5, 3} {
		a := NewMatrix(n, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, float64(i+1))
			b[i] = float64((i + 1) * (i + 1))
		}
		if err := f.FactorInto(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		f.SolveInto(x, b)
		for i := range x {
			if math.Abs(x[i]-float64(i+1)) > 1e-12 {
				t.Fatalf("n=%d: x[%d] = %g, want %d", n, i, x[i], i+1)
			}
		}
	}
}

// TestFactorIntoAfterSingular verifies an LU recovers cleanly after a
// failed factorisation.
func TestFactorIntoAfterSingular(t *testing.T) {
	var f LU
	if err := f.FactorInto(NewMatrix(2, 2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix factorised: err=%v", err)
	}
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	if err := f.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.SolveInto(x, []float64{7, 9})
	if x[0] != 7 || x[1] != 9 {
		t.Fatalf("identity solve gives %v", x)
	}
}

func TestFactorIntoRejectsNonSquare(t *testing.T) {
	var f LU
	if err := f.FactorInto(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

// TestWorkspaceFactorSolve checks the workspace pipeline against the
// allocating API and asserts it is allocation-free once warm.
func TestWorkspaceFactorSolve(t *testing.T) {
	n := 6
	w := NewWorkspace(n)
	fill := func() {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				w.A.Set(i, j, 1/float64(1+i+j))
			}
			w.A.Add(i, i, 3)
			w.B[i] = float64(i)
		}
	}
	fill()
	ref, err := Solve(w.A.Clone(), append([]float64(nil), w.B...))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.FactorSolve(); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(w.X[i]-ref[i]) > 1e-12 {
			t.Fatalf("workspace x[%d] = %g, want %g", i, w.X[i], ref[i])
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		fill()
		if err := w.FactorSolve(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm FactorSolve allocates %.1f times, want 0", allocs)
	}
}

// TestWorkspaceReset covers shrink/grow reuse and the zeroing contract.
func TestWorkspaceReset(t *testing.T) {
	w := NewWorkspace(4)
	w.A.Set(3, 3, 9)
	w.B[3] = 9
	w.Reset(2)
	if w.N != 2 || w.A.Rows != 2 || len(w.B) != 2 || len(w.X) != 2 {
		t.Fatalf("reset to 2 left dims %d/%d/%d/%d", w.N, w.A.Rows, len(w.B), len(w.X))
	}
	for i, v := range w.A.Data {
		if v != 0 {
			t.Fatalf("A not zeroed at %d: %g", i, v)
		}
	}
	w.Reset(5)
	if w.N != 5 || len(w.A.Data) != 25 {
		t.Fatalf("reset to 5 left dims %d, |A|=%d", w.N, len(w.A.Data))
	}
}

// TestCSolveInPlaceMatchesCSolve checks the in-place complex kernel
// against the allocating wrapper.
func TestCSolveInPlaceMatchesCSolve(t *testing.T) {
	n := 4
	a := NewCMatrix(n, n)
	b := make([]complex128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, complex(1/float64(1+i+j), float64(i-j)))
		}
		a.Add(i, i, 5)
		b[i] = complex(float64(i), 1)
	}
	want, err := CSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ac := &CMatrix{Rows: n, Cols: n, Data: append([]complex128(nil), a.Data...)}
	bx := append([]complex128(nil), b...)
	if err := CSolveInPlace(ac, bx); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := want[i] - bx[i]; math.Hypot(real(d), imag(d)) > 1e-12 {
			t.Fatalf("in-place solution differs at %d: %v vs %v", i, bx[i], want[i])
		}
	}
}
