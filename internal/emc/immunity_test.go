package emc

import (
	"math"
	"testing"

	"repro/internal/device"
)

func referenceSearch(cr *CurrentReference) *ImmunitySearch {
	opts := DefaultOptions(cr.RecordNodes()...)
	opts.SettleCycles, opts.MeasureCycles, opts.StepsPerCycle = 3, 5, 32
	return &ImmunitySearch{
		Source:  cr.InjectName,
		Metric:  cr.OutputCurrentMetric(),
		Opts:    opts,
		AmplMax: 0.8,
		Tol:     0.05,
	}
}

func TestImmunityThresholdBisection(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, true)
	s := referenceSearch(cr)

	// Quiet nominal current is ~33 µA; ask for the amplitude causing a
	// 0.5 µA shift.
	th, err := s.Threshold(cr.Circuit, 50e6, 0.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(th, 1) {
		t.Fatal("expected a finite threshold for a 0.5 µA shift limit")
	}
	if th <= 0 || th >= 0.8 {
		t.Fatalf("threshold %g outside the search interval", th)
	}
	// The found amplitude must indeed violate, and half of it must not.
	viol, err := MeasureRectification(cr.Circuit, s.Source,
		Injection{Ampl: th, Freq: 50e6}, s.Metric, s.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(viol.Shift) < 0.5e-6*0.8 {
		t.Errorf("threshold amplitude shift %g too small", viol.Shift)
	}
	ok, err := MeasureRectification(cr.Circuit, s.Source,
		Injection{Ampl: th / 2, Freq: 50e6}, s.Metric, s.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ok.Shift) >= 0.5e-6 {
		t.Errorf("half the threshold already violates: %g", ok.Shift)
	}
}

func TestImmunityInfiniteWhenRobust(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, true)
	s := referenceSearch(cr)
	// An absurdly loose limit no 0.8 V disturbance can reach.
	th, err := s.Threshold(cr.Circuit, 10e6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(th, 1) {
		t.Errorf("expected immunity (+Inf), got %g", th)
	}
}

func TestImmunityCurveHigherFrequencyMoreSusceptible(t *testing.T) {
	// In the gate-coupled testbench the coupling is capacitive, so higher
	// frequencies reach the mirror more strongly and the immunity
	// threshold falls.
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, true)
	s := referenceSearch(cr)
	curve, err := s.ImmunityCurve(cr.Circuit, []float64{2e6, 200e6}, 0.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatal("wrong curve length")
	}
	if !(curve[1] < curve[0]) {
		t.Errorf("immunity should fall with frequency: %v", curve)
	}
}

func TestImmunityValidation(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, true)
	s := referenceSearch(cr)
	s.AmplMax = 0
	if _, err := s.Threshold(cr.Circuit, 1e6, 1e-6); err == nil {
		t.Error("zero AmplMax accepted")
	}
	s.AmplMax = 0.5
	if _, err := s.Threshold(cr.Circuit, 1e6, 0); err == nil {
		t.Error("zero shift limit accepted")
	}
}
