package emc

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// ImmunitySearch finds, by bisection over amplitude, the smallest EMI
// level that pushes a circuit's monitored metric out of tolerance — the
// quantity a DPI (direct power injection) immunity test reports, per the
// IEC 62132 conducted-immunity methodology the paper references.
type ImmunitySearch struct {
	// Source is the injection source name.
	Source string
	// Metric reduces the transient to the monitored quantity.
	Metric Metric
	// Opts configures the underlying transient.
	Opts Options
	// AmplMax bounds the search (volts).
	AmplMax float64
	// Tol is the relative amplitude tolerance of the bisection (default
	// 5 %).
	Tol float64
}

// Threshold returns the lowest amplitude at freq whose absolute metric
// shift reaches maxShift, or +Inf when the circuit stays below maxShift up
// to AmplMax (immune over the tested range — the desirable outcome).
func (s *ImmunitySearch) Threshold(c *circuit.Circuit, freq, maxShift float64) (float64, error) {
	if s.AmplMax <= 0 {
		return 0, fmt.Errorf("emc: non-positive AmplMax %g", s.AmplMax)
	}
	if maxShift <= 0 {
		return 0, fmt.Errorf("emc: non-positive shift limit %g", maxShift)
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 0.05
	}
	shiftAt := func(ampl float64) (float64, error) {
		r, err := MeasureRectification(c, s.Source, Injection{Ampl: ampl, Freq: freq}, s.Metric, s.Opts)
		if err != nil {
			return 0, err
		}
		return math.Abs(r.Shift), nil
	}
	hi := s.AmplMax
	sHi, err := shiftAt(hi)
	if err != nil {
		return 0, err
	}
	if sHi < maxShift {
		return math.Inf(1), nil
	}
	lo := 0.0
	for hi-lo > tol*s.AmplMax {
		mid := (lo + hi) / 2
		sMid, err := shiftAt(mid)
		if err != nil {
			return 0, err
		}
		if sMid >= maxShift {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// ImmunityCurve sweeps the threshold over frequencies, producing the
// classic immunity-vs-frequency plot of conducted-susceptibility reports.
func (s *ImmunitySearch) ImmunityCurve(c *circuit.Circuit, freqs []float64, maxShift float64) ([]float64, error) {
	out := make([]float64, 0, len(freqs))
	for _, f := range freqs {
		th, err := s.Threshold(c, f, maxShift)
		if err != nil {
			return nil, fmt.Errorf("emc: immunity at %g Hz: %w", f, err)
		}
		out = append(out, th)
	}
	return out, nil
}
