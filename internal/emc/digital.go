package emc

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
)

// CrossingTimes returns the interpolated times at which values crosses
// threshold in the given direction. times and values must be parallel.
func CrossingTimes(times, values []float64, threshold float64, rising bool) []float64 {
	if len(times) != len(values) {
		panic("emc: CrossingTimes length mismatch")
	}
	var out []float64
	for i := 1; i < len(values); i++ {
		a, b := values[i-1], values[i]
		hit := false
		if rising {
			hit = a < threshold && b >= threshold
		} else {
			hit = a > threshold && b <= threshold
		}
		if hit {
			f := (threshold - a) / (b - a)
			out = append(out, times[i-1]+f*(times[i]-times[i-1]))
		}
	}
	return out
}

// CountTransitions counts full logic swings in values using hysteresis: a
// transition is registered when the signal crosses from below lo to above
// hi or vice versa. This is the "false switching events" detector of the
// paper's digital EMC discussion.
func CountTransitions(values []float64, lo, hi float64) int {
	if hi <= lo {
		panic(fmt.Sprintf("emc: invalid hysteresis window [%g, %g]", lo, hi))
	}
	const (
		stUnknown = iota
		stLow
		stHigh
	)
	state := stUnknown
	count := 0
	for _, v := range values {
		switch {
		case v <= lo:
			if state == stHigh {
				count++
			}
			state = stLow
		case v >= hi:
			if state == stLow {
				count++
			}
			state = stHigh
		}
	}
	return count
}

// NoiseMargins extracts (NML, NMH) from a static transfer curve sampled at
// (vin, vout): VIL and VIH are the unity-gain points (|dVout/dVin| = 1),
// VOL/VOH the output levels beyond them. The curve must be a falling
// inverter VTC.
func NoiseMargins(vin, vout []float64) (nml, nmh float64, err error) {
	if len(vin) != len(vout) || len(vin) < 5 {
		return 0, 0, fmt.Errorf("emc: need a sampled VTC of at least 5 points")
	}
	// Locate unity-gain points by scanning the discrete slope.
	vil, vih := math.NaN(), math.NaN()
	for i := 1; i < len(vin); i++ {
		slope := (vout[i] - vout[i-1]) / (vin[i] - vin[i-1])
		if math.IsNaN(vil) && slope <= -1 {
			vil = vin[i-1]
		}
		if !math.IsNaN(vil) && math.IsNaN(vih) && slope > -1 {
			vih = vin[i]
		}
	}
	if math.IsNaN(vil) || math.IsNaN(vih) {
		return 0, 0, fmt.Errorf("emc: VTC has no high-gain region")
	}
	voh := vout[0]           // output with input low
	vol := vout[len(vout)-1] // output with input high
	nml = vil - vol
	nmh = voh - vih
	return nml, nmh, nil
}

// InverterJitter measures EMI-induced jitter on a CMOS inverter: the input
// ramps through the switching threshold while EMI rides on it at nPhases
// different phases; the spread (max−min) of the output crossing time is
// the peak-to-peak jitter. Returns the jitter in seconds.
func InverterJitter(tech *device.Technology, inj Injection, rampTime float64, nPhases int) (float64, error) {
	if nPhases < 2 {
		return 0, fmt.Errorf("emc: need at least 2 phases")
	}
	vdd := tech.VDD
	var crossings []float64
	for p := 0; p < nPhases; p++ {
		phase := 2 * math.Pi * float64(p) / float64(nPhases)
		c := circuit.New()
		c.AddVSource("VDD", "vdd", "0", circuit.DC(vdd))
		ramp := circuit.PWL{
			Times:  []float64{0, rampTime},
			Values: []float64{0, vdd},
		}
		c.AddVSource("VIN", "in", "0", circuit.Sum{
			ramp,
			circuit.Sine{Ampl: inj.Ampl, Freq: inj.Freq, Phase: phase},
		})
		mn := device.NewMosfet(tech.NMOSParams(1e-6, tech.Lmin, 300))
		mp := device.NewMosfet(tech.PMOSParams(2e-6, tech.Lmin, 300))
		c.AddMOSFET("MN", "out", "in", "0", "0", mn)
		c.AddMOSFET("MP", "out", "in", "vdd", "vdd", mp)
		c.AddCapacitor("CL", "out", "0", 10e-15)
		wf, err := c.Transient(circuit.TranSpec{
			Stop: rampTime, Step: rampTime / 2000,
			Integrator: circuit.Trapezoidal,
			Record:     []string{"out"},
		})
		if err != nil {
			return 0, fmt.Errorf("emc: jitter transient (phase %d): %w", p, err)
		}
		xs := CrossingTimes(wf.Times, wf.Node("out"), vdd/2, false)
		if len(xs) == 0 {
			return 0, fmt.Errorf("emc: inverter never switched (phase %d)", p)
		}
		crossings = append(crossings, xs[0])
	}
	lo, hi := crossings[0], crossings[0]
	for _, x := range crossings[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo, nil
}

// FalseSwitchCount drives a CMOS inverter with a static low input plus EMI
// and counts output transitions over cycles EMI periods — zero for an
// immune gate, growing once the disturbance exceeds the noise margin.
func FalseSwitchCount(tech *device.Technology, inj Injection, cycles int) (int, error) {
	vdd := tech.VDD
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(vdd))
	c.AddVSource("VIN", "in", "0", circuit.Sum{
		circuit.DC(0.1 * vdd),
		circuit.Sine{Ampl: inj.Ampl, Freq: inj.Freq},
	})
	mn := device.NewMosfet(tech.NMOSParams(1e-6, tech.Lmin, 300))
	mp := device.NewMosfet(tech.PMOSParams(2e-6, tech.Lmin, 300))
	c.AddMOSFET("MN", "out", "in", "0", "0", mn)
	c.AddMOSFET("MP", "out", "in", "vdd", "vdd", mp)
	c.AddCapacitor("CL", "out", "0", 5e-15)
	period := 1 / inj.Freq
	wf, err := c.Transient(circuit.TranSpec{
		Stop: float64(cycles) * period, Step: period / 128,
		Integrator: circuit.Trapezoidal,
		Record:     []string{"out"},
	})
	if err != nil {
		return 0, fmt.Errorf("emc: false-switch transient: %w", err)
	}
	return CountTransitions(wf.Node("out"), 0.2*vdd, 0.8*vdd), nil
}
