// Package emc implements the electromagnetic-compatibility analysis of the
// paper's Section 4: conducted EMI injection on a supply or input, the
// rectification mechanism by which circuit nonlinearity pumps a DC
// operating point away from its quiet value (Figs. 3-4), DPI-style
// amplitude/frequency susceptibility sweeps, and digital immunity metrics
// (jitter, noise margins, false switching).
package emc

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/obs"
)

// Injection describes one conducted-EMI disturbance superimposed on a
// source: a sinusoid of amplitude Ampl volts at Freq hertz, per the
// IEC 62132 conducted-immunity picture (150 kHz – 1 GHz in the standard).
type Injection struct {
	Ampl float64
	Freq float64
}

// Metric reduces a transient waveform set to a scalar (e.g. mean output
// current). It sees only samples from startIdx on, i.e. after settling.
type Metric func(wf *circuit.Waveforms, startIdx int) float64

// MeanNode returns a Metric measuring the time-average voltage of a node.
func MeanNode(name string) Metric {
	return func(wf *circuit.Waveforms, start int) float64 {
		return mathx.Mean(wf.Node(name)[start:])
	}
}

// MeanResistorCurrent returns a Metric measuring the average current
// through a resistor connected between nodes a and b (flowing a→b).
func MeanResistorCurrent(a, b string, r float64) Metric {
	return func(wf *circuit.Waveforms, start int) float64 {
		va := wf.Node(a)[start:]
		vb := wf.Node(b)[start:]
		sum := 0.0
		for i := range va {
			sum += (va[i] - vb[i]) / r
		}
		return sum / float64(len(va))
	}
}

// Options tunes the EMI transient measurement.
type Options struct {
	// SettleCycles are EMI periods simulated before measurement starts.
	SettleCycles int
	// MeasureCycles are EMI periods averaged into the metric.
	MeasureCycles int
	// StepsPerCycle is the time resolution.
	StepsPerCycle int
	// Integrator defaults to Trapezoidal (waveform fidelity matters for
	// rectification).
	Integrator circuit.Integrator
	// Record lists the nodes the metric needs.
	Record []string
}

// DefaultOptions returns sensible defaults: 6 settle cycles, 10 measured,
// 64 steps per cycle, trapezoidal integration.
func DefaultOptions(record ...string) Options {
	return Options{
		SettleCycles:  6,
		MeasureCycles: 10,
		StepsPerCycle: 64,
		Integrator:    circuit.Trapezoidal,
		Record:        record,
	}
}

// Result is one susceptibility measurement.
type Result struct {
	// Baseline is the metric with no EMI applied.
	Baseline float64
	// Disturbed is the metric under EMI.
	Disturbed float64
	// Shift = Disturbed − Baseline: the EMI-induced DC operating-point
	// shift the paper identifies as the major analog failure mechanism.
	Shift float64
}

// RelativeShift returns Shift/|Baseline| (0 when the baseline is 0).
func (r Result) RelativeShift() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return r.Shift / math.Abs(r.Baseline)
}

// MeasureRectification injects EMI in series with the named voltage source
// and returns the metric's baseline, disturbed value and shift. The
// source's waveform is restored before returning.
func MeasureRectification(c *circuit.Circuit, sourceName string, inj Injection, metric Metric, opts Options) (Result, error) {
	if m := met.Load(); m != nil {
		m.rectifySweeps.Inc()
		sp := obs.StartSpan(m.rectifySecs)
		defer func() { sp.End() }()
	}
	if inj.Freq <= 0 {
		return Result{}, fmt.Errorf("emc: non-positive EMI frequency %g", inj.Freq)
	}
	if opts.StepsPerCycle < 8 {
		return Result{}, fmt.Errorf("emc: StepsPerCycle %d too coarse", opts.StepsPerCycle)
	}
	src, err := c.VSourceByName(sourceName)
	if err != nil {
		return Result{}, err
	}

	period := 1 / inj.Freq
	step := period / float64(opts.StepsPerCycle)
	total := float64(opts.SettleCycles+opts.MeasureCycles) * period
	startIdx := opts.SettleCycles * opts.StepsPerCycle

	run := func() (float64, error) {
		wf, err := c.Transient(circuit.TranSpec{
			Stop: total, Step: step,
			Integrator: opts.Integrator,
			Record:     opts.Record,
		})
		if err != nil {
			return 0, err
		}
		return metric(wf, startIdx), nil
	}

	// Baseline: same transient, no EMI — eliminates integrator bias from
	// the comparison.
	baseline, err := run()
	if err != nil {
		return Result{}, fmt.Errorf("emc: baseline transient: %w", err)
	}

	orig := src.W
	src.W = circuit.Sum{orig, circuit.Sine{Ampl: inj.Ampl, Freq: inj.Freq}}
	disturbed, err := run()
	src.W = orig
	if err != nil {
		return Result{}, fmt.Errorf("emc: disturbed transient: %w", err)
	}
	return Result{Baseline: baseline, Disturbed: disturbed, Shift: disturbed - baseline}, nil
}

// SweepResult is a DPI-style susceptibility map: Shift[i][j] is the DC
// shift at Ampls[i], Freqs[j].
type SweepResult struct {
	Ampls []float64
	Freqs []float64
	Shift [][]float64
	// Baseline is the quiet metric value (frequency-independent).
	Baseline float64
}

// WorstShift returns the largest |shift| in the map and its location.
func (s *SweepResult) WorstShift() (shift float64, ampl, freq float64) {
	worst := 0.0
	var wa, wf float64
	for i, row := range s.Shift {
		for j, v := range row {
			if math.Abs(v) > math.Abs(worst) {
				worst, wa, wf = v, s.Ampls[i], s.Freqs[j]
			}
		}
	}
	return worst, wa, wf
}

// SweepEMI measures the DC shift over an amplitude × frequency grid — the
// data behind Fig. 4 ("the error in output current depends on the
// amplitude and the frequency of the interference signal").
func SweepEMI(c *circuit.Circuit, sourceName string, ampls, freqs []float64, metric Metric, opts Options) (*SweepResult, error) {
	if len(ampls) == 0 || len(freqs) == 0 {
		return nil, fmt.Errorf("emc: empty sweep grid")
	}
	out := &SweepResult{Ampls: ampls, Freqs: freqs}
	out.Shift = make([][]float64, len(ampls))
	for i, a := range ampls {
		out.Shift[i] = make([]float64, len(freqs))
		for j, f := range freqs {
			r, err := MeasureRectification(c, sourceName, Injection{Ampl: a, Freq: f}, metric, opts)
			if err != nil {
				return nil, fmt.Errorf("emc: sweep point (%g V, %g Hz): %w", a, f, err)
			}
			out.Shift[i][j] = r.Shift
			out.Baseline = r.Baseline
			if m := met.Load(); m != nil {
				m.sweepPoints.Inc()
			}
		}
	}
	return out, nil
}

// CurrentReference is the Fig. 3 testbench: a resistor-fed NMOS current
// mirror with a dedicated EMI injection port capacitively coupled onto the
// mirror gate — the dominant conducted-coupling path in real layouts. The
// square-law nonlinearity of the diode-connected master rectifies the gate
// ripple and pumps the mean output current away from its quiet value, and
// the output clips against the load, exactly the Fig. 4 mechanism. The
// optional gate filter capacitor is the paper's "filtering that harms EMC"
// element: it stores the pumped voltage instead of restoring the bias.
type CurrentReference struct {
	Circuit *circuit.Circuit
	// InjectName is the VSource the EMI disturbance is superimposed on
	// (an otherwise quiet injection port coupled through CC).
	InjectName string
	// OutNode carries the output branch; IOUT flows through RLoad from
	// the supply rail node to OutNode.
	OutNode string
	// RailNode is the internal supply rail node name.
	RailNode string
	// RLoad is the load resistance used to infer IOUT.
	RLoad float64
}

// BuildCurrentReference constructs the testbench in the given technology.
// withFilterCap adds the gate capacitor of Fig. 3.
func BuildCurrentReference(tech *device.Technology, withFilterCap bool) *CurrentReference {
	c := circuit.New()
	c.AddVSource("VSUP", "rail", "0", circuit.DC(tech.VDD))
	c.AddVSource("VEMI", "emi", "0", circuit.DC(0))
	c.AddCapacitor("CC", "emi", "gate", 10e-12) // parasitic coupling path
	c.AddResistor("RREF", "rail", "gate", 30e3)
	m1 := device.NewMosfet(tech.NMOSParams(2e-6, 4*tech.Lmin, 300))
	m2 := device.NewMosfet(tech.NMOSParams(2e-6, 4*tech.Lmin, 300))
	c.AddMOSFET("M1", "gate", "gate", "0", "0", m1)
	c.AddMOSFET("M2", "out", "gate", "0", "0", m2)
	const rload = 10e3
	c.AddResistor("RLOAD", "rail", "out", rload)
	if withFilterCap {
		c.AddCapacitor("CFILT", "gate", "0", 20e-12)
	}
	return &CurrentReference{
		Circuit:    c,
		InjectName: "VEMI",
		OutNode:    "out",
		RailNode:   "rail",
		RLoad:      rload,
	}
}

// OutputCurrentMetric returns the Metric measuring the reference's mean
// output current.
func (cr *CurrentReference) OutputCurrentMetric() Metric {
	return MeanResistorCurrent(cr.RailNode, cr.OutNode, cr.RLoad)
}

// RecordNodes lists the nodes the output metric needs.
func (cr *CurrentReference) RecordNodes() []string {
	return []string{cr.RailNode, cr.OutNode}
}
