package emc

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
)

func TestCurrentReferenceBiasesUp(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, true)
	sol, err := cr.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	iout := (sol.Voltage(cr.RailNode) - sol.Voltage(cr.OutNode)) / cr.RLoad
	if iout < 1e-6 || iout > 1e-3 {
		t.Errorf("reference output current %g A implausible", iout)
	}
	// Mirror: output ~ reference current.
	vg := sol.Voltage("gate")
	if vg < 0.3 || vg > 1.2 {
		t.Errorf("gate bias %g outside expected range", vg)
	}
}

func TestRectificationShiftsOutputCurrent(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, true)
	res, err := MeasureRectification(cr.Circuit, cr.InjectName,
		Injection{Ampl: 0.5, Freq: 10e6},
		cr.OutputCurrentMetric(),
		DefaultOptions(cr.RecordNodes()...))
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline <= 0 {
		t.Fatalf("baseline current %g must be positive", res.Baseline)
	}
	if math.Abs(res.RelativeShift()) < 0.005 {
		t.Errorf("0.5 V EMI should visibly shift the mean output current, got %g%%",
			100*res.RelativeShift())
	}
}

func TestShiftGrowsWithAmplitude(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, true)
	metric := cr.OutputCurrentMetric()
	opts := DefaultOptions(cr.RecordNodes()...)
	var prev float64
	for i, a := range []float64{0.1, 0.3, 0.6} {
		res, err := MeasureRectification(cr.Circuit, cr.InjectName,
			Injection{Ampl: a, Freq: 10e6}, metric, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := math.Abs(res.Shift)
		if i > 0 && s <= prev {
			t.Errorf("|shift| not growing with amplitude at %g V: %g <= %g", a, s, prev)
		}
		prev = s
	}
}

func TestSourceWaveformRestored(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, false)
	src, _ := cr.Circuit.VSourceByName(cr.InjectName)
	orig := src.W
	_, err := MeasureRectification(cr.Circuit, cr.InjectName,
		Injection{Ampl: 0.2, Freq: 50e6},
		cr.OutputCurrentMetric(),
		DefaultOptions(cr.RecordNodes()...))
	if err != nil {
		t.Fatal(err)
	}
	if src.W != orig {
		t.Error("EMI measurement leaked the modified waveform")
	}
}

func TestSweepEMIGrid(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, true)
	opts := DefaultOptions(cr.RecordNodes()...)
	opts.SettleCycles, opts.MeasureCycles, opts.StepsPerCycle = 3, 4, 32
	sw, err := SweepEMI(cr.Circuit, cr.InjectName,
		[]float64{0.2, 0.5},
		[]float64{1e6, 100e6},
		cr.OutputCurrentMetric(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Shift) != 2 || len(sw.Shift[0]) != 2 {
		t.Fatalf("grid shape wrong: %v", sw.Shift)
	}
	worst, wa, _ := sw.WorstShift()
	if worst == 0 {
		t.Error("sweep found no shift at all")
	}
	if wa != 0.5 {
		t.Errorf("worst shift at amplitude %g, expected the largest (0.5)", wa)
	}
}

func TestSweepEMIValidation(t *testing.T) {
	tech := device.MustTech("180nm")
	cr := BuildCurrentReference(tech, false)
	if _, err := SweepEMI(cr.Circuit, cr.InjectName, nil, []float64{1e6},
		cr.OutputCurrentMetric(), DefaultOptions(cr.RecordNodes()...)); err == nil {
		t.Error("empty amplitude grid accepted")
	}
	if _, err := MeasureRectification(cr.Circuit, cr.InjectName,
		Injection{Ampl: 0.1, Freq: 0}, cr.OutputCurrentMetric(),
		DefaultOptions(cr.RecordNodes()...)); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := MeasureRectification(cr.Circuit, "NOPE",
		Injection{Ampl: 0.1, Freq: 1e6}, cr.OutputCurrentMetric(),
		DefaultOptions(cr.RecordNodes()...)); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestCrossingTimes(t *testing.T) {
	times := []float64{0, 1, 2, 3, 4}
	values := []float64{0, 1, 0, 1, 0}
	rising := CrossingTimes(times, values, 0.5, true)
	if len(rising) != 2 || !mathx.ApproxEqual(rising[0], 0.5, 1e-12, 0) || !mathx.ApproxEqual(rising[1], 2.5, 1e-12, 0) {
		t.Errorf("rising crossings = %v", rising)
	}
	falling := CrossingTimes(times, values, 0.5, false)
	if len(falling) != 2 || !mathx.ApproxEqual(falling[0], 1.5, 1e-12, 0) {
		t.Errorf("falling crossings = %v", falling)
	}
}

func TestCountTransitions(t *testing.T) {
	// Clean square wave: 3 swings.
	vals := []float64{0, 1, 0, 1}
	if got := CountTransitions(vals, 0.2, 0.8); got != 3 {
		t.Errorf("transitions = %d, want 3", got)
	}
	// Noise inside the hysteresis band must not count.
	noisy := []float64{0, 0.5, 0.3, 0.6, 0.1, 0.5, 0.4}
	if got := CountTransitions(noisy, 0.2, 0.8); got != 0 {
		t.Errorf("hysteresis leak: %d transitions", got)
	}
}

func TestCountTransitionsPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CountTransitions([]float64{0}, 0.8, 0.2)
}

func TestNoiseMarginsFromVTC(t *testing.T) {
	// Build a real inverter VTC via DC sweep.
	tech := device.MustTech("90nm")
	c := circuit.New()
	c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
	c.AddVSource("VIN", "in", "0", circuit.DC(0))
	mn := device.NewMosfet(tech.NMOSParams(1e-6, 90e-9, 300))
	mp := device.NewMosfet(tech.PMOSParams(2e-6, 90e-9, 300))
	c.AddMOSFET("MN", "out", "in", "0", "0", mn)
	c.AddMOSFET("MP", "out", "in", "vdd", "vdd", mp)
	vin := mathx.Linspace(0, tech.VDD, 56)
	sols, err := c.DCSweep("VIN", vin)
	if err != nil {
		t.Fatal(err)
	}
	vout := make([]float64, len(sols))
	for i, s := range sols {
		vout[i] = s.Voltage("out")
	}
	nml, nmh, err := NoiseMargins(vin, vout)
	if err != nil {
		t.Fatal(err)
	}
	if nml <= 0 || nmh <= 0 {
		t.Fatalf("margins must be positive: NML=%g NMH=%g", nml, nmh)
	}
	if nml+nmh >= tech.VDD {
		t.Errorf("NML+NMH = %g cannot reach VDD", nml+nmh)
	}
}

func TestNoiseMarginsErrors(t *testing.T) {
	if _, _, err := NoiseMargins([]float64{0, 1}, []float64{1, 0}); err == nil {
		t.Error("short VTC accepted")
	}
	flat := mathx.Linspace(0, 1, 10)
	ones := make([]float64, 10)
	if _, _, err := NoiseMargins(flat, ones); err == nil {
		t.Error("gainless VTC accepted")
	}
}

func TestInverterJitterGrowsWithEMI(t *testing.T) {
	tech := device.MustTech("90nm")
	small, err := InverterJitter(tech, Injection{Ampl: 0.02, Freq: 200e6}, 100e-9, 4)
	if err != nil {
		t.Fatal(err)
	}
	large, err := InverterJitter(tech, Injection{Ampl: 0.15, Freq: 200e6}, 100e-9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("jitter should grow with EMI amplitude: %g <= %g", large, small)
	}
	if large <= 0 || large > 100e-9 {
		t.Errorf("jitter %g s implausible", large)
	}
}

func TestFalseSwitchingThreshold(t *testing.T) {
	tech := device.MustTech("90nm")
	quiet, err := FalseSwitchCount(tech, Injection{Ampl: 0.05, Freq: 50e6}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if quiet != 0 {
		t.Errorf("small EMI should not switch the gate, got %d transitions", quiet)
	}
	loud, err := FalseSwitchCount(tech, Injection{Ampl: 0.9, Freq: 50e6}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if loud == 0 {
		t.Error("near-rail EMI should cause false switching")
	}
}
