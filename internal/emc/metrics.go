package emc

import (
	"sync/atomic"

	"repro/internal/obs"
)

// pkgMetrics holds the EMC engine's instruments. DPI-style sweeps are the
// longest single-threaded loops in the repository (amplitude × frequency
// grids of transient pairs), so sweep progress is the headline metric.
type pkgMetrics struct {
	sweepPoints   *obs.Counter
	rectifySweeps *obs.Counter
	rectifySecs   *obs.Histogram
}

var met atomic.Pointer[pkgMetrics]

// SetMetrics wires the EMC instrumentation into reg, or disables it when
// reg is nil.
//
// Metrics registered:
//
//	emc_sweep_points_total       count  grid points completed by SweepEMI
//	emc_rectifications_total     count  MeasureRectification calls
//	emc_rectification_seconds    s      per-measurement latency (baseline + disturbed transients)
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&pkgMetrics{
		sweepPoints:   reg.Counter("emc_sweep_points_total", "1", "EMI sweep grid points completed"),
		rectifySweeps: reg.Counter("emc_rectifications_total", "1", "rectification measurements"),
		rectifySecs:   reg.Histogram("emc_rectification_seconds", "s", "MeasureRectification latency", nil),
	})
}
