package sram

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/emc"
)

// WriteTrip measures the dynamic write-trip voltage of the cell: with the
// wordline asserted, the bitline on the '1' side ramps from VDD to 0 and
// the returned value is the bitline voltage at which the cell flips.
// Higher is better for writability (the cell gives up earlier in the
// ramp); a cell that never flips returns an error — a write failure, the
// yield-killing counterpart of read instability.
func (c *Cell) WriteTrip() (float64, error) {
	vdd := c.Config.Tech.VDD
	ck := circuit.New()
	ck.AddVSource("VDD", "vdd", "0", circuit.DC(vdd))
	ck.AddVSource("VWL", "wl", "0", circuit.DC(vdd))
	// Q side: bitline ramps down after the seed interval.
	const (
		tSeed = 2e-9
		tRamp = 40e-9
		tEnd  = 50e-9
	)
	ck.AddVSource("VBL1", "bl1", "0", circuit.PWL{
		Times:  []float64{0, tSeed * 2, tSeed*2 + tRamp},
		Values: []float64{vdd, vdd, 0},
	})
	ck.AddVSource("VBL2", "bl2", "0", circuit.DC(vdd))

	// The cross-coupled pair.
	ck.AddMOSFET("PD1", "q", "qb", "0", "0", c.PD1)
	ck.AddMOSFET("PU1", "q", "qb", "vdd", "vdd", c.PU1)
	ck.AddMOSFET("PD2", "qb", "q", "0", "0", c.PD2)
	ck.AddMOSFET("PU2", "qb", "q", "vdd", "vdd", c.PU2)
	ck.AddMOSFET("PG1", "bl1", "wl", "q", "0", c.PG1)
	ck.AddMOSFET("PG2", "bl2", "wl", "qb", "0", c.PG2)
	// Node capacitances keep the transient well-behaved.
	ck.AddCapacitor("CQ", "q", "0", 1e-15)
	ck.AddCapacitor("CQB", "qb", "0", 1e-15)
	// Seed pulse forces Q high initially so the metastable DC start
	// resolves to the '1' state before the bitline ramp begins.
	ck.AddISource("ISEED", "0", "q", circuit.Pulse{
		Low: 0, High: 50e-6, Rise: 1e-12, Fall: 1e-12, Width: tSeed,
	})

	wf, err := ck.Transient(circuit.TranSpec{
		Stop: tEnd, Step: tEnd / 2000,
		Integrator: circuit.Trapezoidal,
		Record:     []string{"q", "qb", "bl1"},
	})
	if err != nil {
		return 0, fmt.Errorf("sram: write transient: %w", err)
	}
	q := wf.Node("q")
	qb := wf.Node("qb")
	bl := wf.Node("bl1")
	// Sanity: the seed must have set the state.
	seedIdx := int(float64(len(wf.Times)) * (tSeed * 1.5) / tEnd)
	if q[seedIdx] <= qb[seedIdx] {
		return 0, fmt.Errorf("sram: seed failed to set the cell (q=%g qb=%g)", q[seedIdx], qb[seedIdx])
	}
	diff := make([]float64, len(q))
	for i := range q {
		diff[i] = q[i] - qb[i]
	}
	flips := emc.CrossingTimes(wf.Times, diff, 0, false)
	if len(flips) == 0 {
		return 0, fmt.Errorf("sram: cell never flipped — write failure")
	}
	// Bitline voltage at the flip instant.
	tFlip := flips[len(flips)-1]
	for i := 1; i < len(wf.Times); i++ {
		if wf.Times[i] >= tFlip {
			return bl[i], nil
		}
	}
	return bl[len(bl)-1], nil
}
