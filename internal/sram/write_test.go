package sram

import (
	"testing"

	"repro/internal/device"
)

func TestWriteTripInRange(t *testing.T) {
	cell, err := NewCell(DefaultCell(device.MustTech("65nm")))
	if err != nil {
		t.Fatal(err)
	}
	trip, err := cell.WriteTrip()
	if err != nil {
		t.Fatal(err)
	}
	vdd := cell.Config.Tech.VDD
	if trip <= 0 || trip >= vdd {
		t.Fatalf("write trip %g outside (0, VDD)", trip)
	}
	// Typical cells trip somewhere in the lower half of the swing.
	if trip > 0.8*vdd {
		t.Errorf("trip %g suspiciously close to VDD — cell too easy to write", trip)
	}
}

func TestStrongerAccessWritesEasier(t *testing.T) {
	tech := device.MustTech("65nm")
	trip := func(wpgScale float64) float64 {
		cfg := DefaultCell(tech)
		cfg.WPG *= wpgScale
		cell, err := NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, err := cell.WriteTrip()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	weak := trip(0.6)
	strong := trip(1.8)
	if strong <= weak {
		t.Errorf("stronger access device must flip earlier in the ramp: %g <= %g", strong, weak)
	}
}

func TestStrongerPullUpWritesHarder(t *testing.T) {
	tech := device.MustTech("65nm")
	trip := func(wpuScale float64) float64 {
		cfg := DefaultCell(tech)
		cfg.WPU *= wpuScale
		cell, err := NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, err := cell.WriteTrip()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	weak := trip(0.7)
	strong := trip(2.0)
	if strong >= weak {
		t.Errorf("stronger pull-up must resist the write: trip %g >= %g", strong, weak)
	}
}

func TestReadWriteConflict(t *testing.T) {
	// The classic SRAM design tension: upsizing the access device helps
	// writes but hurts read stability. Verify both directions at once.
	tech := device.MustTech("65nm")
	measure := func(wpgScale float64) (snm, trip float64) {
		cfg := DefaultCell(tech)
		cfg.WPG *= wpgScale
		cell, err := NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snm, err = cell.ReadSNM(31)
		if err != nil {
			t.Fatal(err)
		}
		trip, err = cell.WriteTrip()
		if err != nil {
			t.Fatal(err)
		}
		return snm, trip
	}
	snmSmall, tripSmall := measure(0.7)
	snmBig, tripBig := measure(1.6)
	if snmBig >= snmSmall {
		t.Errorf("bigger access should hurt read SNM: %g >= %g", snmBig, snmSmall)
	}
	if tripBig <= tripSmall {
		t.Errorf("bigger access should help writes: %g <= %g", tripBig, tripSmall)
	}
}
