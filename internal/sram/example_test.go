package sram_test

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/sram"
)

// Example extracts the hold and read static noise margins of a nominal
// 65 nm cell — the read margin is always the smaller one because the
// access transistor disturbs the low node.
func Example() {
	cell, err := sram.NewCell(sram.DefaultCell(device.MustTech("65nm")))
	if err != nil {
		fmt.Println(err)
		return
	}
	hold, err := cell.HoldSNM(41)
	if err != nil {
		fmt.Println(err)
		return
	}
	read, err := cell.ReadSNM(41)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("hold %.0f mV, read %.0f mV\n", hold*1e3, read*1e3)
	// Output:
	// hold 406 mV, read 184 mV
}
