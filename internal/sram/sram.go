// Package sram implements the canonical victim of the paper's two threat
// axes: the 6T SRAM cell, built from minimum-size devices (so Pelgrom
// mismatch is maximal, §2) whose pMOS pull-ups sit under constant NBTI
// stress (one of them always holds a '0' gate, §3.3). The package builds
// cells in any technology, extracts hold/read static noise margins from
// simulated butterfly curves, and runs Monte-Carlo stability yield —
// fresh and aged.
package sram

import (
	"context"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/variation"
)

// CellConfig sizes a 6T cell. Ratios follow the classic design recipe:
// pull-down strongest (cell ratio ~2 for read stability), access in the
// middle, pull-up weakest (pull-up ratio <1 for writability).
type CellConfig struct {
	Tech *device.Technology
	// WPD, WPU, WPG are the pull-down, pull-up and pass-gate widths.
	WPD, WPU, WPG float64
	// L is the common channel length.
	L float64
	// TempK is the simulation temperature.
	TempK float64
}

// DefaultCell returns a minimum-length cell with a 2:1:1.5 ratio stack.
func DefaultCell(tech *device.Technology) CellConfig {
	lmin := tech.Lmin
	return CellConfig{
		Tech:  tech,
		WPD:   4 * lmin,
		WPU:   2 * lmin,
		WPG:   3 * lmin,
		L:     lmin,
		TempK: 300,
	}
}

// Validate checks the sizing.
func (c CellConfig) Validate() error {
	if c.Tech == nil {
		return fmt.Errorf("sram: missing technology")
	}
	if c.WPD <= 0 || c.WPU <= 0 || c.WPG <= 0 || c.L <= 0 {
		return fmt.Errorf("sram: non-positive geometry")
	}
	if c.TempK <= 0 {
		return fmt.Errorf("sram: non-positive temperature")
	}
	return nil
}

// Cell is one fabricated 6T instance: each device carries its own
// mismatch and damage.
type Cell struct {
	Config CellConfig
	// PD1, PU1 drive node Q (inverter 1); PD2, PU2 drive QB; PG1/PG2 are
	// the access devices on Q/QB.
	PD1, PU1, PG1, PD2, PU2, PG2 *device.Mosfet
}

// NewCell fabricates a nominal cell.
func NewCell(cfg CellConfig) (*Cell, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := cfg.Tech
	mk := func(p device.MOSParams) *device.Mosfet { return device.NewMosfet(p) }
	return &Cell{
		Config: cfg,
		PD1:    mk(t.NMOSParams(cfg.WPD, cfg.L, cfg.TempK)),
		PU1:    mk(t.PMOSParams(cfg.WPU, cfg.L, cfg.TempK)),
		PG1:    mk(t.NMOSParams(cfg.WPG, cfg.L, cfg.TempK)),
		PD2:    mk(t.NMOSParams(cfg.WPD, cfg.L, cfg.TempK)),
		PU2:    mk(t.PMOSParams(cfg.WPU, cfg.L, cfg.TempK)),
		PG2:    mk(t.NMOSParams(cfg.WPG, cfg.L, cfg.TempK)),
	}, nil
}

// Devices returns the six transistors (for mismatch sampling or aging).
func (c *Cell) Devices() []*device.Mosfet {
	return []*device.Mosfet{c.PD1, c.PU1, c.PG1, c.PD2, c.PU2, c.PG2}
}

// ApplyMismatch samples fresh local variation for all six devices.
func (c *Cell) ApplyMismatch(rng *mathx.RNG) {
	t := c.Config.Tech
	for _, d := range c.Devices() {
		d.Mismatch = variation.SampleMismatch(t, d.Params.W, d.Params.L, rng)
	}
}

// halfCellVTC sweeps the transfer curve of one cell half under hold or
// read conditions: input vin drives the gates of (pd, pu); the output node
// is loaded by the access transistor when read is true (bitline and
// wordline at VDD).
func (c *Cell) halfCellVTC(pd, pu, pg *device.Mosfet, vins []float64, read bool) ([]float64, error) {
	vdd := c.Config.Tech.VDD
	ck := circuit.New()
	ck.AddVSource("VDD", "vdd", "0", circuit.DC(vdd))
	ck.AddVSource("VIN", "in", "0", circuit.DC(0))
	ck.AddMOSFET("PD", "out", "in", "0", "0", pd)
	ck.AddMOSFET("PU", "out", "in", "vdd", "vdd", pu)
	if read {
		ck.AddVSource("VBL", "bl", "0", circuit.DC(vdd))
		ck.AddMOSFET("PG", "bl", "vdd", "out", "0", pg) // WL tied high
	}
	sols, err := ck.DCSweep("VIN", vins)
	if err != nil {
		return nil, fmt.Errorf("sram: half-cell sweep: %w", err)
	}
	out := make([]float64, len(sols))
	for i, s := range sols {
		out[i] = s.Voltage("out")
	}
	return out, nil
}

// Butterfly holds the two transfer curves of the cross-coupled pair.
type Butterfly struct {
	Vin []float64
	// V1 is inverter 1's VTC (input Q → output QB); V2 is inverter 2's.
	V1, V2 []float64
}

// ButterflyCurve simulates both halves under hold (read=false) or read
// (read=true) conditions at the given sweep resolution.
func (c *Cell) ButterflyCurve(points int, read bool) (*Butterfly, error) {
	if points < 8 {
		return nil, fmt.Errorf("sram: need at least 8 sweep points")
	}
	vins := mathx.Linspace(0, c.Config.Tech.VDD, points)
	v1, err := c.halfCellVTC(c.PD1, c.PU1, c.PG1, vins, read)
	if err != nil {
		return nil, err
	}
	v2, err := c.halfCellVTC(c.PD2, c.PU2, c.PG2, vins, read)
	if err != nil {
		return nil, err
	}
	return &Butterfly{Vin: vins, V1: v1, V2: v2}, nil
}

// SNM extracts the static noise margin from a butterfly: the side of the
// largest square that fits inside each lobe, computed in 45°-rotated
// coordinates (the standard Seevinck construction); the cell's SNM is the
// smaller lobe.
func (b *Butterfly) SNM() float64 {
	// Curve A: (x, V1(x)). Curve B mirrored: (V2(y), y).
	// In rotated coordinates u = (x−y)/√2, v = (x+y)/√2, the maximum
	// vertical gap between the curves equals the diagonal of the largest
	// inscribed square; side = gap/2 ... precisely: side = gap/√2 · (1/√2)
	// — see Seevinck et al., JSSC 1987: SNM = max diagonal gap / √2.
	type pt struct{ u, v float64 }
	rot := func(x, y float64) pt {
		return pt{u: (x - y) / math.Sqrt2, v: (x + y) / math.Sqrt2}
	}
	var a, bb []pt
	for i, x := range b.Vin {
		a = append(a, rot(x, b.V1[i]))
		bb = append(bb, rot(b.V2[i], b.Vin[i]))
	}
	// Interpolate both curves over a shared u grid and find the largest
	// positive gap (lobe 1) and largest negative gap (lobe 2).
	uMin, uMax := math.Inf(1), math.Inf(-1)
	for _, p := range append(append([]pt{}, a...), bb...) {
		if p.u < uMin {
			uMin = p.u
		}
		if p.u > uMax {
			uMax = p.u
		}
	}
	interp := func(ps []pt, u float64) (float64, bool) {
		// The rotated curves are single-valued in u except near the
		// metastable point; nearest-bracket linear interpolation is
		// adequate at our sweep densities.
		best := math.NaN()
		found := false
		for i := 1; i < len(ps); i++ {
			u0, u1 := ps[i-1].u, ps[i].u
			lo, hi := math.Min(u0, u1), math.Max(u0, u1)
			if u < lo || u > hi || lo == hi {
				continue
			}
			f := (u - u0) / (u1 - u0)
			v := ps[i-1].v + f*(ps[i].v-ps[i-1].v)
			if !found {
				best = v
				found = true
			} else if v > best {
				// Keep the outermost branch; lobes are measured between
				// extreme branches.
				best = v
			}
		}
		return best, found
	}
	maxPos, maxNeg := 0.0, 0.0
	for _, u := range mathx.Linspace(uMin, uMax, 256) {
		va, oka := interp(a, u)
		vb, okb := interp(bb, u)
		if !oka || !okb {
			continue
		}
		gap := va - vb
		if gap > maxPos {
			maxPos = gap
		}
		if -gap > maxNeg {
			maxNeg = -gap
		}
	}
	// Diagonal gap → square side: side = gap/√2.
	snm := math.Min(maxPos, maxNeg) / math.Sqrt2
	if snm < 0 {
		snm = 0
	}
	return snm
}

// HoldSNM returns the hold (standby) static noise margin in volts.
func (c *Cell) HoldSNM(points int) (float64, error) {
	b, err := c.ButterflyCurve(points, false)
	if err != nil {
		return 0, err
	}
	return b.SNM(), nil
}

// ReadSNM returns the read-disturb static noise margin in volts — always
// smaller than hold, because the access transistor pulls the low node up.
func (c *Cell) ReadSNM(points int) (float64, error) {
	b, err := c.ButterflyCurve(points, true)
	if err != nil {
		return 0, err
	}
	return b.SNM(), nil
}

// StabilityYield Monte-Carlos nCells mismatched cells and returns the
// fraction whose read SNM exceeds limit. Deterministic in seed.
func StabilityYield(cfg CellConfig, limit float64, nCells, points int, seed uint64) (variation.YieldEstimate, error) {
	if nCells <= 0 {
		return variation.YieldEstimate{}, fmt.Errorf("sram: need at least one cell")
	}
	res, err := variation.MonteCarloCtx(context.Background(), nCells, seed, func(rng *mathx.RNG, _ int) (float64, error) {
		cell, err := NewCell(cfg)
		if err != nil {
			return 0, err
		}
		cell.ApplyMismatch(rng)
		return cell.ReadSNM(points)
	})
	if err != nil {
		return variation.YieldEstimate{}, err
	}
	return variation.EstimateYield(res.Values, variation.Spec{Name: "readSNM", Lo: limit, Hi: math.Inf(1)}), nil
}

// ApplyNBTIAsymmetry installs an NBTI threshold shift on pull-up 1 only —
// the cell that stored the same datum for its whole life: PU1's gate sat
// at 0 V (full stress) while PU2's sat at VDD (no stress). This static
// asymmetry is the classic SRAM aging failure mode.
func (c *Cell) ApplyNBTIAsymmetry(deltaVT float64) {
	d := device.FreshDamage()
	d.DeltaVT = deltaVT
	c.PU1.Damage = d
}
