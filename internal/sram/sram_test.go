package sram

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/mathx"
)

func TestCellValidation(t *testing.T) {
	cfg := DefaultCell(device.MustTech("65nm"))
	if _, err := NewCell(cfg); err != nil {
		t.Fatalf("default cell rejected: %v", err)
	}
	bad := cfg
	bad.WPD = 0
	if _, err := NewCell(bad); err == nil {
		t.Error("zero width accepted")
	}
	bad = cfg
	bad.Tech = nil
	if _, err := NewCell(bad); err == nil {
		t.Error("missing tech accepted")
	}
}

func TestButterflyShape(t *testing.T) {
	cell, err := NewCell(DefaultCell(device.MustTech("65nm")))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cell.ButterflyCurve(41, false)
	if err != nil {
		t.Fatal(err)
	}
	vdd := cell.Config.Tech.VDD
	// Both VTCs swing essentially rail to rail and fall monotonically.
	for _, curve := range [][]float64{b.V1, b.V2} {
		if curve[0] < 0.9*vdd {
			t.Errorf("VTC starts at %g, want ~VDD", curve[0])
		}
		if curve[len(curve)-1] > 0.1*vdd {
			t.Errorf("VTC ends at %g, want ~0", curve[len(curve)-1])
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-6 {
				t.Fatal("VTC not monotone")
			}
		}
	}
}

func TestHoldSNMPlausible(t *testing.T) {
	cell, err := NewCell(DefaultCell(device.MustTech("65nm")))
	if err != nil {
		t.Fatal(err)
	}
	snm, err := cell.HoldSNM(41)
	if err != nil {
		t.Fatal(err)
	}
	vdd := cell.Config.Tech.VDD
	// Hold SNM of a balanced cell is typically 0.25-0.45·VDD.
	if snm < 0.15*vdd || snm > 0.5*vdd {
		t.Errorf("hold SNM %g (%.0f%% of VDD) implausible", snm, 100*snm/vdd)
	}
}

func TestReadSNMSmallerThanHold(t *testing.T) {
	cell, err := NewCell(DefaultCell(device.MustTech("65nm")))
	if err != nil {
		t.Fatal(err)
	}
	hold, err := cell.HoldSNM(41)
	if err != nil {
		t.Fatal(err)
	}
	read, err := cell.ReadSNM(41)
	if err != nil {
		t.Fatal(err)
	}
	if read >= hold {
		t.Errorf("read SNM %g must be below hold SNM %g (access disturb)", read, hold)
	}
	if read <= 0 {
		t.Error("nominal cell must have positive read margin")
	}
}

func TestMismatchSpreadsSNM(t *testing.T) {
	cfg := DefaultCell(device.MustTech("45nm"))
	var run mathx.Running
	rng := mathx.NewRNG(3)
	for i := 0; i < 25; i++ {
		cell, err := NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cell.ApplyMismatch(rng.Split(uint64(i)))
		snm, err := cell.ReadSNM(31)
		if err != nil {
			t.Fatal(err)
		}
		run.Add(snm)
	}
	if run.StdDev() <= 0 {
		t.Fatal("mismatch produced no SNM spread")
	}
	// Min-size 45 nm devices: spread should be a visible fraction of the
	// mean.
	if run.StdDev() < 0.03*run.Mean() {
		t.Errorf("SNM spread %g vs mean %g suspiciously tight", run.StdDev(), run.Mean())
	}
}

func TestScalingShrinksSNM(t *testing.T) {
	snmAt := func(node string) float64 {
		cell, err := NewCell(DefaultCell(device.MustTech(node)))
		if err != nil {
			t.Fatal(err)
		}
		snm, err := cell.ReadSNM(41)
		if err != nil {
			t.Fatal(err)
		}
		return snm
	}
	// Absolute margins shrink with the supply as CMOS scales.
	if snmAt("32nm") >= snmAt("180nm") {
		t.Error("scaled cell should have less absolute noise margin")
	}
}

func TestNBTIAsymmetryDegradesSNM(t *testing.T) {
	cfg := DefaultCell(device.MustTech("65nm"))
	fresh, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freshSNM, err := fresh.ReadSNM(41)
	if err != nil {
		t.Fatal(err)
	}
	aged, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aged.ApplyNBTIAsymmetry(0.05) // 50 mV on one pull-up
	agedSNM, err := aged.ReadSNM(41)
	if err != nil {
		t.Fatal(err)
	}
	if agedSNM >= freshSNM {
		t.Errorf("static NBTI asymmetry must cost margin: %g >= %g", agedSNM, freshSNM)
	}
	// More shift, more loss.
	worse, _ := NewCell(cfg)
	worse.ApplyNBTIAsymmetry(0.1)
	worseSNM, err := worse.ReadSNM(41)
	if err != nil {
		t.Fatal(err)
	}
	if worseSNM >= agedSNM {
		t.Errorf("SNM loss must grow with ΔVT: %g >= %g", worseSNM, agedSNM)
	}
}

func TestStabilityYieldTrends(t *testing.T) {
	tech := device.MustTech("45nm")
	cfg := DefaultCell(tech)
	// A loose limit passes almost everything; a limit near the nominal
	// SNM fails roughly half.
	nominal, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nomSNM, err := nominal.ReadSNM(31)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := StabilityYield(cfg, nomSNM/3, 40, 31, 7)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := StabilityYield(cfg, nomSNM, 40, 31, 7)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Yield <= tight.Yield {
		t.Errorf("loose limit yield %v should beat tight %v", loose, tight)
	}
	if loose.Yield < 0.8 {
		t.Errorf("loose-limit yield %v too low", loose)
	}
	if math.Abs(tight.Yield-0.5) > 0.35 {
		t.Errorf("nominal-limit yield %v should be near 50%%", tight)
	}
	// Determinism.
	again, err := StabilityYield(cfg, nomSNM, 40, 31, 7)
	if err != nil {
		t.Fatal(err)
	}
	if again != tight {
		t.Error("stability yield not reproducible")
	}
}

func TestStabilityYieldValidation(t *testing.T) {
	cfg := DefaultCell(device.MustTech("65nm"))
	if _, err := StabilityYield(cfg, 0.1, 0, 31, 1); err == nil {
		t.Error("zero cells accepted")
	}
}
