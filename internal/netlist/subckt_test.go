package netlist

import (
	"strings"
	"testing"

	"repro/internal/mathx"
)

const invDeck = `
* inverter as a subcircuit
.tech 90nm
.subckt INV in out vdd
MN out in 0 0 NMOS W=1u L=90n
MP out in vdd vdd PMOS W=2u L=90n
.ends
VDD vdd 0 DC 1.1
VIN a 0 DC 0
X1 a b vdd INV
X2 b c vdd INV
.end
`

func TestSubcktExpansion(t *testing.T) {
	d, err := Parse(invDeck)
	if err != nil {
		t.Fatal(err)
	}
	// Two instances → four MOSFETs with dotted names.
	for _, name := range []string{"X1.MN", "X1.MP", "X2.MN", "X2.MP"} {
		if _, ok := d.MOSFETs[name]; !ok {
			have := make([]string, 0, len(d.MOSFETs))
			for k := range d.MOSFETs {
				have = append(have, k)
			}
			t.Errorf("missing flattened device %q (have %v)", name, have)
		}
	}
	// The two inverters in series: VIN=0 → b low? No: X1 inverts a=0 to
	// b=high, X2 inverts to c=low.
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if vb := sol.Voltage("b"); vb < 1.0 {
		t.Errorf("first inverter output %g, want ~VDD", vb)
	}
	if vc := sol.Voltage("c"); vc > 0.1 {
		t.Errorf("second inverter output %g, want ~0", vc)
	}
}

const nestedDeck = `
.tech 90nm
.subckt INV in out vdd
MN out in 0 0 NMOS W=1u L=90n
MP out in vdd vdd PMOS W=2u L=90n
.ends
.subckt BUF in out vdd
X1 in mid vdd INV
X2 mid out vdd INV
.ends
VDD vdd 0 DC 1.1
VIN a 0 DC 1.1
XB a y vdd BUF
`

func TestNestedSubckt(t *testing.T) {
	d, err := Parse(nestedDeck)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MOSFETs) != 4 {
		t.Fatalf("expected 4 devices, got %v", len(d.MOSFETs))
	}
	if _, ok := d.MOSFETs["XB.X1.MN"]; !ok {
		t.Error("nested flattening names wrong")
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// A buffer: high in → high out; internal node is low.
	if vy := sol.Voltage("y"); vy < 1.0 {
		t.Errorf("buffer output %g, want ~VDD", vy)
	}
	if vm := sol.Voltage("XB.mid"); vm > 0.1 {
		t.Errorf("internal node %g, want ~0", vm)
	}
}

func TestSubcktPassivesAndSourcesInside(t *testing.T) {
	deck := `
.subckt DIV top out
R1 top out 1k
R2 out 0 1k
C1 out 0 1p
.ends
V1 in 0 DC 2
X1 in o DIV
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("o"), 1.0, 1e-9, 1e-12) {
		t.Errorf("divider inside subckt gives %g, want 1", sol.Voltage("o"))
	}
}

func TestSubcktErrors(t *testing.T) {
	cases := []struct {
		deck string
		frag string
	}{
		{".subckt A\n.ends", ".subckt needs"},
		{".ends", ".ends without"},
		{".subckt A x\n.subckt B y\n.ends\n.ends", "nested .subckt"},
		{".subckt A x\nR1 x 0 1k\n.ends\nX1 a b A\nV1 a 0 DC 1", "connects 2 nodes"},
		{"X1 a b NOPE\nV1 a 0 DC 1", "unknown subcircuit"},
		{".subckt A x\n.tech 90nm\n.ends", "not allowed inside"},
		{".subckt A x\nR1 x 0 1k", "unterminated"},
		{".subckt A x\nR1 x 0 1k\n.ends\n.subckt A y\nR1 y 0 1k\n.ends", "duplicate subcircuit"},
		{"X1 A", "instance needs"},
	}
	for _, c := range cases {
		_, err := Parse(c.deck)
		if err == nil {
			t.Errorf("deck %q should fail", c.deck)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("deck %q error %q missing %q", c.deck, err, c.frag)
		}
	}
}

func TestSubcktGroundStaysGlobal(t *testing.T) {
	deck := `
.subckt LOAD a
R1 a 0 2k
.ends
I1 0 n1 DC 1m
X1 n1 LOAD
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("n1"), 2.0, 1e-9, 1e-12) {
		t.Errorf("V(n1) = %g, want 2 (ground must not be prefixed)", sol.Voltage("n1"))
	}
}
