package netlist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/mathx"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1}, {"1k", 1e3}, {"2.2u", 2.2e-6}, {"10meg", 1e7},
		{"1m", 1e-3}, {"100n", 1e-7}, {"3p", 3e-12}, {"5f", 5e-15},
		{"2g", 2e9}, {"1t", 1e12}, {"1e3", 1e3}, {"-4.5", -4.5},
		{"1.5K", 1500}, {"2E-6", 2e-6}, {"0.5MEG", 5e5},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if !mathx.ApproxEqual(got, c.want, 1e-12, 0) {
			t.Errorf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "1..2", "k"} {
		if _, err := ParseValue(in); err == nil {
			t.Errorf("ParseValue(%q) should fail", in)
		}
	}
}

const dividerDeck = `
* simple divider
V1 in 0 DC 10
R1 in out 1k
R2 out 0 1k
.end
`

func TestParseAndSolveDivider(t *testing.T) {
	d, err := Parse(dividerDeck)
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "simple divider" {
		t.Errorf("title = %q", d.Title)
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("out"), 5, 1e-9, 1e-9) {
		t.Errorf("V(out) = %g", sol.Voltage("out"))
	}
}

const inverterDeck = `
* cmos inverter at 90nm
.tech 90nm
.temp 300
VDD vdd 0 DC 1.1
VIN in 0 DC 0.55
MN out in 0 0 NMOS W=1u L=90n
MP out in vdd vdd PMOS W=2u L=90n
.end
`

func TestParseMOSFETDeck(t *testing.T) {
	d, err := Parse(inverterDeck)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tech.Name != "90nm" {
		t.Errorf("tech = %s", d.Tech.Name)
	}
	if len(d.MOSFETs) != 2 {
		t.Fatalf("parsed %d MOSFETs, want 2", len(d.MOSFETs))
	}
	mn := d.MOSFETs["MN"]
	if mn.Dev.Params.W != 1e-6 || !mathx.ApproxEqual(mn.Dev.Params.L, 90e-9, 1e-12, 0) {
		t.Errorf("MN geometry wrong: W=%g L=%g", mn.Dev.Params.W, mn.Dev.Params.L)
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	v := sol.Voltage("out")
	if v < 0.05 || v > 1.05 {
		t.Errorf("inverter mid-rail output = %g implausible", v)
	}
}

func TestTechDirectiveAfterMOSFET(t *testing.T) {
	// .tech placed after the device lines must still apply (deferred
	// MOSFET construction).
	deck := `
M1 d g 0 0 NMOS W=1u L=65n
VDD d 0 DC 1.1
VG g 0 DC 0.6
.tech 65nm
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	if d.MOSFETs["M1"].Dev.Params.VT0 != 0.33 {
		t.Errorf("tech directive not applied: VT0 = %g", d.MOSFETs["M1"].Dev.Params.VT0)
	}
}

func TestParseSineSource(t *testing.T) {
	d, err := Parse(`
V1 a 0 SIN(0.5 0.2 1meg 90)
R1 a 0 1k
`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Circuit.VSourceByName("V1")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := v.W.(circuit.Sine)
	if !ok {
		t.Fatalf("waveform is %T", v.W)
	}
	if s.Offset != 0.5 || s.Ampl != 0.2 || s.Freq != 1e6 {
		t.Errorf("sine = %+v", s)
	}
	if !mathx.ApproxEqual(s.Phase, math.Pi/2, 1e-12, 0) {
		t.Errorf("phase = %g, want pi/2", s.Phase)
	}
}

func TestParsePulseSource(t *testing.T) {
	d, err := Parse(`
V1 a 0 PULSE(0 1.8 1n 10p 10p 5n 10n)
R1 a 0 1k
`)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := d.Circuit.VSourceByName("V1")
	p, ok := v.W.(circuit.Pulse)
	if !ok {
		t.Fatalf("waveform is %T", v.W)
	}
	if p.High != 1.8 || p.Period != 10e-9 {
		t.Errorf("pulse = %+v", p)
	}
}

func TestParseBareNumberIsDC(t *testing.T) {
	d, err := Parse(`
V1 a 0 3.3
R1 a 0 1k
`)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := d.Circuit.VSourceByName("V1")
	if dc, ok := v.W.(circuit.DC); !ok || float64(dc) != 3.3 {
		t.Errorf("waveform = %#v", v.W)
	}
}

func TestParseAllElementKinds(t *testing.T) {
	d, err := Parse(`
* everything
V1 in 0 DC 1
I1 0 n1 DC 1m
R1 in n1 1k
C1 n1 0 1u
L1 n1 n2 1m
R2 n2 0 1k
D1 in n3
R3 n3 0 10k
G1 0 n4 in 0 1m
R4 n4 0 1k
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Circuit.OperatingPoint(); err != nil {
		t.Fatalf("kitchen-sink deck does not solve: %v", err)
	}
	if got := len(d.Circuit.ElementNames()); got != 10 {
		t.Errorf("parsed %d elements, want 10", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		deck string
		frag string
	}{
		{"R1 a b", "resistor needs"},
		{"R1 a b xx", "bad number"},
		{"Q1 a b c", "unknown element"},
		{".tech 9nm", "unknown technology"},
		{".bogus", "unknown directive"},
		{"M1 d g s NMOS", "MOSFET needs"},
		{"M1 d g s b FINFET", "unknown MOSFET model"},
		{"M1 d g s b NMOS Z=1", "unknown MOSFET parameter"},
		{"V1 a 0 SIN(1 2)", "SIN needs"},
		{".temp -5", "bad temperature"},
	}
	for _, c := range cases {
		_, err := Parse(c.deck)
		if err == nil {
			t.Errorf("deck %q should fail", c.deck)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("deck %q error %q does not mention %q", c.deck, err, c.frag)
		}
	}
}

func TestTrailingCommentsIgnored(t *testing.T) {
	d, err := Parse(`
V1 a 0 DC 1 ; supply
R1 a 0 1k   ; load
`)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("a"), 1, 1e-9, 1e-12) {
		t.Error("comment handling broke the deck")
	}
}

func TestParseVCVS(t *testing.T) {
	d, err := Parse(`
V1 in 0 DC 0.5
Rin in 0 1meg
E1 out 0 in 0 4
RL out 0 1k
`)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sol.Voltage("out"), 2.0, 1e-9, 1e-12) {
		t.Errorf("parsed VCVS output = %g, want 2", sol.Voltage("out"))
	}
	if _, err := Parse("E1 a b c 1"); err == nil {
		t.Error("short VCVS line accepted")
	}
}
