// Package netlist parses a SPICE-flavoured text netlist into a simulatable
// circuit. The dialect covers what the reliability experiments need:
//
//   - comment lines and blank lines
//     .tech 180nm          — selects a technology card for MOSFETs
//     .temp 300            — simulation temperature in kelvin
//     .end                 — optional terminator
//     Rname a b 10k        — resistor
//     Cname a b 1u         — capacitor
//     Lname a b 10m        — inductor
//     Vname p n DC 1.8     — voltage source (DC / SIN(off ampl freq) / PULSE(lo hi del rise fall width period))
//     Iname p n DC 1m      — current source (same waveforms)
//     Mname d g s b NMOS W=1u L=180n   — MOSFET, model NMOS or PMOS
//     Dname a k            — junction diode
//     Gname p n cp cn 1m   — VCCS
//     .subckt NAME p1 p2 … / .ends    — subcircuit definition
//     Xname n1 n2 … NAME   — subcircuit instance (hierarchical, flattened)
//
// Subcircuit internals flatten with dotted prefixes: instance X1 of a
// block containing M1 and internal node mid yields element "X1.M1" on
// node "X1.mid". Ground ("0"/gnd) is global. Engineering suffixes:
// f p n u m k meg g t (case-insensitive).
//
// The netlist is the entry point for reproducing the paper's studies on
// arbitrary circuits: cmd/relsim parses a deck and then applies the
// Section 2 mismatch Monte Carlo, the Section 3 aging mission, or plain
// electrical analyses to it.
package netlist

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/device"
)

// Deck is the result of parsing: the circuit plus the metadata directives.
type Deck struct {
	Circuit *circuit.Circuit
	// Tech is the technology card selected by .tech (default 180nm).
	Tech *device.Technology
	// TempK is the simulation temperature (default 300 K).
	TempK float64
	// MOSFETs maps element name to its circuit handle for the aging and
	// variability layers.
	MOSFETs map[string]*circuit.MOSFET
	// Title is the first comment line, if any.
	Title string
}

// Parse reads a netlist from text.
func Parse(text string) (*Deck, error) {
	d := &Deck{
		Circuit: circuit.New(),
		TempK:   300,
		MOSFETs: make(map[string]*circuit.MOSFET),
	}
	var err error
	d.Tech, err = device.TechByName("180nm")
	if err != nil {
		return nil, err
	}

	type mosLine struct {
		lineNo int
		fields []string
	}
	var mosLines []mosLine // deferred until .tech/.temp are known

	subckts := make(map[string]*subcktDef)
	var current *subcktDef // non-nil while inside .subckt … .ends

	// expand flattens a subcircuit instance (possibly nested) into plain
	// element lines with dotted prefixes.
	var expand func(lineNo int, inst string, nodes []string, def *subcktDef, depth int) error
	var handleElement func(lineNo int, fields []string) error
	handleElement = func(lineNo int, fields []string) error {
		head := strings.ToUpper(fields[0])
		switch head[0] {
		case 'M':
			mosLines = append(mosLines, mosLine{lineNo, fields})
			return nil
		case 'X':
			if len(fields) < 3 {
				return lineErr(lineNo, "instance needs: Xname nodes... SUBNAME")
			}
			subName := strings.ToUpper(fields[len(fields)-1])
			def, ok := subckts[subName]
			if !ok {
				return lineErr(lineNo, "unknown subcircuit %q", fields[len(fields)-1])
			}
			return expand(lineNo, fields[0], fields[1:len(fields)-1], def, 0)
		default:
			return d.parseElement(lineNo, fields)
		}
	}
	expand = func(lineNo int, inst string, nodes []string, def *subcktDef, depth int) error {
		if depth > 20 {
			return lineErr(lineNo, "subcircuit nesting deeper than 20 — recursive definition?")
		}
		if len(nodes) != len(def.ports) {
			return lineErr(lineNo, "instance %s connects %d nodes, subcircuit %s has %d ports",
				inst, len(nodes), def.name, len(def.ports))
		}
		portMap := make(map[string]string, len(def.ports))
		for i, p := range def.ports {
			portMap[p] = nodes[i]
		}
		mapNode := func(n string) string {
			if n == "0" || n == "gnd" || n == "GND" {
				return "0"
			}
			if actual, ok := portMap[n]; ok {
				return actual
			}
			return inst + "." + n
		}
		for _, body := range def.lines {
			f := append([]string(nil), body...)
			f[0] = inst + "." + f[0]
			head := strings.ToUpper(body[0])
			// Rewrite the node fields of each element kind.
			var nNodes int
			switch head[0] {
			case 'R', 'C', 'L', 'V', 'I', 'D':
				nNodes = 2
			case 'G', 'M', 'E':
				nNodes = 4
			case 'X':
				nNodes = len(f) - 2 // all but name and subckt ref
			default:
				return lineErr(lineNo, "unsupported element %q inside subcircuit %s", body[0], def.name)
			}
			for i := 1; i <= nNodes && i < len(f); i++ {
				f[i] = mapNode(f[i])
			}
			if head[0] == 'X' {
				subName := strings.ToUpper(f[len(f)-1])
				inner, ok := subckts[subName]
				if !ok {
					return lineErr(lineNo, "unknown subcircuit %q", f[len(f)-1])
				}
				if err := expand(lineNo, f[0], f[1:len(f)-1], inner, depth+1); err != nil {
					return err
				}
				continue
			}
			if head[0] == 'M' {
				mosLines = append(mosLines, mosLine{lineNo, f})
				continue
			}
			if err := d.parseElement(lineNo, f); err != nil {
				return err
			}
		}
		return nil
	}

	lines := strings.Split(text, "\n")
	for lineNo, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "*") {
			if d.Title == "" {
				d.Title = strings.TrimSpace(strings.TrimPrefix(line, "*"))
			}
			continue
		}
		// Strip trailing comment.
		if i := strings.Index(line, ";"); i >= 0 {
			line = strings.TrimSpace(line[:i])
			if line == "" {
				continue
			}
		}
		fields := splitFields(line)
		head := strings.ToUpper(fields[0])

		// Subcircuit definition handling.
		if head == ".SUBCKT" {
			if current != nil {
				return nil, lineErr(lineNo, "nested .subckt definitions are not allowed")
			}
			if len(fields) < 3 {
				return nil, lineErr(lineNo, ".subckt needs a name and at least one port")
			}
			name := strings.ToUpper(fields[1])
			if _, dup := subckts[name]; dup {
				return nil, lineErr(lineNo, "duplicate subcircuit %q", fields[1])
			}
			current = &subcktDef{name: name, ports: fields[2:]}
			continue
		}
		if head == ".ENDS" {
			if current == nil {
				return nil, lineErr(lineNo, ".ends without .subckt")
			}
			subckts[current.name] = current
			current = nil
			continue
		}
		if current != nil {
			if strings.HasPrefix(head, ".") {
				return nil, lineErr(lineNo, "directive %s not allowed inside .subckt", fields[0])
			}
			current.lines = append(current.lines, fields)
			continue
		}

		switch {
		case head == ".END":
			// done; ignore the rest
		case head == ".TECH":
			if len(fields) != 2 {
				return nil, lineErr(lineNo, ".tech needs one argument")
			}
			t, err := device.TechByName(fields[1])
			if err != nil {
				return nil, lineErr(lineNo, "%v", err)
			}
			d.Tech = t
		case head == ".TEMP":
			if len(fields) != 2 {
				return nil, lineErr(lineNo, ".temp needs one argument")
			}
			v, err := ParseValue(fields[1])
			if err != nil || v <= 0 {
				return nil, lineErr(lineNo, "bad temperature %q", fields[1])
			}
			d.TempK = v
		case strings.HasPrefix(head, "."):
			return nil, lineErr(lineNo, "unknown directive %s", fields[0])
		default:
			if err := handleElement(lineNo, fields); err != nil {
				return nil, err
			}
		}
	}
	if current != nil {
		return nil, fmt.Errorf("netlist: unterminated .subckt %s", current.name)
	}
	// MOSFETs last, so .tech/.temp placed anywhere in the deck apply.
	for _, ml := range mosLines {
		if err := d.parseMOSFET(ml.lineNo, ml.fields); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// subcktDef is a parsed .subckt body awaiting expansion.
type subcktDef struct {
	name  string
	ports []string
	lines [][]string
}

func lineErr(lineNo int, format string, args ...interface{}) error {
	return fmt.Errorf("netlist: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
}

// splitFields splits on whitespace but keeps function-call groups like
// SIN(0 1 1k) together as single fields.
func splitFields(line string) []string {
	var out []string
	var cur strings.Builder
	depth := 0
	for _, r := range line {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t') && depth == 0:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// elemKind returns the dispatch letter of an element name, looking at the
// leaf segment so flattened subcircuit names ("X1.R1") classify by their
// inner element kind.
func elemKind(name string) byte {
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	if name == "" {
		return 0
	}
	return strings.ToUpper(name)[0]
}

func (d *Deck) parseElement(lineNo int, f []string) error {
	name := f[0]
	if d.Circuit.HasElement(name) {
		return lineErr(lineNo, "duplicate element %q", name)
	}
	switch elemKind(name) {
	case 'R':
		if len(f) != 4 {
			return lineErr(lineNo, "resistor needs: Rname a b value")
		}
		v, err := ParseValue(f[3])
		if err != nil {
			return lineErr(lineNo, "%v", err)
		}
		if v <= 0 {
			return lineErr(lineNo, "resistor %s needs a positive value, got %g", name, v)
		}
		d.Circuit.AddResistor(name, f[1], f[2], v)
	case 'C':
		if len(f) != 4 {
			return lineErr(lineNo, "capacitor needs: Cname a b value")
		}
		v, err := ParseValue(f[3])
		if err != nil {
			return lineErr(lineNo, "%v", err)
		}
		if v <= 0 {
			return lineErr(lineNo, "capacitor %s needs a positive value, got %g", name, v)
		}
		d.Circuit.AddCapacitor(name, f[1], f[2], v)
	case 'L':
		if len(f) != 4 {
			return lineErr(lineNo, "inductor needs: Lname a b value")
		}
		v, err := ParseValue(f[3])
		if err != nil {
			return lineErr(lineNo, "%v", err)
		}
		if v <= 0 {
			return lineErr(lineNo, "inductor %s needs a positive value, got %g", name, v)
		}
		d.Circuit.AddInductor(name, f[1], f[2], v)
	case 'V':
		if len(f) < 4 {
			return lineErr(lineNo, "voltage source needs: Vname p n waveform")
		}
		w, err := parseWaveform(f[3:])
		if err != nil {
			return lineErr(lineNo, "%v", err)
		}
		d.Circuit.AddVSource(name, f[1], f[2], w)
	case 'I':
		if len(f) < 4 {
			return lineErr(lineNo, "current source needs: Iname p n waveform")
		}
		w, err := parseWaveform(f[3:])
		if err != nil {
			return lineErr(lineNo, "%v", err)
		}
		d.Circuit.AddISource(name, f[1], f[2], w)
	case 'D':
		if len(f) != 3 {
			return lineErr(lineNo, "diode needs: Dname anode cathode")
		}
		d.Circuit.AddDiode(name, f[1], f[2], device.NewDiode(d.TempK))
	case 'G':
		if len(f) != 6 {
			return lineErr(lineNo, "VCCS needs: Gname p n cp cn gm")
		}
		g, err := ParseValue(f[5])
		if err != nil {
			return lineErr(lineNo, "%v", err)
		}
		d.Circuit.AddVCCS(name, f[1], f[2], f[3], f[4], g)
	case 'E':
		if len(f) != 6 {
			return lineErr(lineNo, "VCVS needs: Ename p n cp cn gain")
		}
		g, err := ParseValue(f[5])
		if err != nil {
			return lineErr(lineNo, "%v", err)
		}
		d.Circuit.AddVCVS(name, f[1], f[2], f[3], f[4], g)
	default:
		return lineErr(lineNo, "unknown element %q", name)
	}
	return nil
}

func (d *Deck) parseMOSFET(lineNo int, f []string) error {
	// Mname d g s b MODEL [W=..] [L=..]
	if len(f) < 6 {
		return lineErr(lineNo, "MOSFET needs: Mname d g s b NMOS|PMOS [W=] [L=]")
	}
	if d.Circuit.HasElement(f[0]) {
		return lineErr(lineNo, "duplicate element %q", f[0])
	}
	model := strings.ToUpper(f[5])
	w := 1e-6
	l := d.Tech.Lmin
	for _, kv := range f[6:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return lineErr(lineNo, "bad parameter %q", kv)
		}
		v, err := ParseValue(parts[1])
		if err != nil {
			return lineErr(lineNo, "%v", err)
		}
		switch strings.ToUpper(parts[0]) {
		case "W":
			w = v
		case "L":
			l = v
		default:
			return lineErr(lineNo, "unknown MOSFET parameter %q", parts[0])
		}
	}
	var params device.MOSParams
	switch model {
	case "NMOS":
		params = d.Tech.NMOSParams(w, l, d.TempK)
	case "PMOS":
		params = d.Tech.PMOSParams(w, l, d.TempK)
	default:
		return lineErr(lineNo, "unknown MOSFET model %q", model)
	}
	if err := params.Validate(); err != nil {
		return lineErr(lineNo, "%v", err)
	}
	m := d.Circuit.AddMOSFET(f[0], f[1], f[2], f[3], f[4], device.NewMosfet(params))
	d.MOSFETs[f[0]] = m
	return nil
}

func parseWaveform(f []string) (circuit.Waveform, error) {
	if len(f) == 0 {
		return nil, fmt.Errorf("netlist: source needs a waveform")
	}
	up := strings.ToUpper(f[0])
	switch {
	case up == "DC":
		if len(f) != 2 {
			return nil, fmt.Errorf("netlist: DC needs one value")
		}
		v, err := ParseValue(f[1])
		if err != nil {
			return nil, err
		}
		return circuit.DC(v), nil
	case strings.HasPrefix(up, "SIN(") || strings.HasPrefix(up, "SIN "):
		args, err := parseCallArgs(strings.Join(f, " "), "SIN")
		if err != nil {
			return nil, err
		}
		if len(args) < 3 {
			return nil, fmt.Errorf("netlist: SIN needs (offset ampl freq [phase_deg])")
		}
		s := circuit.Sine{Offset: args[0], Ampl: args[1], Freq: args[2]}
		if len(args) >= 4 {
			s.Phase = args[3] * math.Pi / 180
		}
		return s, nil
	case strings.HasPrefix(up, "PULSE(") || strings.HasPrefix(up, "PULSE "):
		args, err := parseCallArgs(strings.Join(f, " "), "PULSE")
		if err != nil {
			return nil, err
		}
		if len(args) < 7 {
			return nil, fmt.Errorf("netlist: PULSE needs (lo hi delay rise fall width period)")
		}
		return circuit.Pulse{
			Low: args[0], High: args[1], Delay: args[2],
			Rise: args[3], Fall: args[4], Width: args[5], Period: args[6],
		}, nil
	default:
		// Bare number is DC shorthand.
		if len(f) == 1 {
			v, err := ParseValue(f[0])
			if err != nil {
				return nil, err
			}
			return circuit.DC(v), nil
		}
		return nil, fmt.Errorf("netlist: unknown waveform %q", f[0])
	}
}

// parseCallArgs extracts numbers from "NAME(a b c)" possibly containing
// spaces.
func parseCallArgs(s, name string) ([]float64, error) {
	up := strings.ToUpper(s)
	i := strings.Index(up, name+"(")
	if i < 0 {
		return nil, fmt.Errorf("netlist: malformed %s(...)", name)
	}
	rest := s[i+len(name)+1:]
	j := strings.Index(rest, ")")
	if j < 0 {
		return nil, fmt.Errorf("netlist: unterminated %s(...)", name)
	}
	var out []float64
	for _, tok := range strings.Fields(strings.ReplaceAll(rest[:j], ",", " ")) {
		v, err := ParseValue(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseValue parses a SPICE number with optional engineering suffix:
// 1k = 1e3, 2.2u = 2.2e-6, 10meg = 1e7, 1m = 1e-3, etc.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("netlist: empty number")
	}
	lower := strings.ToLower(s)
	mult := 1.0
	num := lower
	switch {
	case strings.HasSuffix(lower, "meg"):
		mult, num = 1e6, lower[:len(lower)-3]
	case strings.HasSuffix(lower, "f"):
		mult, num = 1e-15, lower[:len(lower)-1]
	case strings.HasSuffix(lower, "p"):
		mult, num = 1e-12, lower[:len(lower)-1]
	case strings.HasSuffix(lower, "n"):
		mult, num = 1e-9, lower[:len(lower)-1]
	case strings.HasSuffix(lower, "u"), strings.HasSuffix(lower, "µ"):
		mult, num = 1e-6, strings.TrimSuffix(strings.TrimSuffix(lower, "u"), "µ")
	case strings.HasSuffix(lower, "m"):
		mult, num = 1e-3, lower[:len(lower)-1]
	case strings.HasSuffix(lower, "k"):
		mult, num = 1e3, lower[:len(lower)-1]
	case strings.HasSuffix(lower, "g"):
		mult, num = 1e9, lower[:len(lower)-1]
	case strings.HasSuffix(lower, "t"):
		mult, num = 1e12, lower[:len(lower)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		// Maybe the suffix stripping ate part of an exponent ("1e-3m" is
		// not a thing, but "2e3" must parse with no suffix).
		v2, err2 := strconv.ParseFloat(lower, 64)
		if err2 != nil {
			return 0, fmt.Errorf("netlist: bad number %q", s)
		}
		return v2, nil
	}
	return v * mult, nil
}
