package netlist_test

import (
	"fmt"

	"repro/internal/netlist"
)

// Example parses a hierarchical deck and solves it: the inverter lives in
// a subcircuit, instantiated twice as a buffer.
func Example() {
	deck := `
* buffer from two inverters
.tech 90nm
.subckt INV in out vdd
MN out in 0 0 NMOS W=1u L=90n
MP out in vdd vdd PMOS W=2u L=90n
.ends
VDD vdd 0 DC 1.1
VIN a 0 DC 1.1
X1 a m vdd INV
X2 m y vdd INV
.end
`
	d, err := netlist.Parse(deck)
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := d.Circuit.OperatingPoint()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d devices, V(y) = %.2f V\n", d.Title, len(d.MOSFETs), sol.Voltage("y"))
	// Output:
	// buffer from two inverters: 4 devices, V(y) = 1.10 V
}

// ExampleParseValue shows the engineering-suffix number format.
func ExampleParseValue() {
	for _, s := range []string{"4.7k", "25m", "2meg"} {
		v, _ := netlist.ParseValue(s)
		fmt.Println(v)
	}
	// Output:
	// 4700
	// 0.025
	// 2e+06
}
