package netlist

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

// TestParseNeverPanics feeds the parser pseudo-random token soup built
// from its own vocabulary: errors are fine, panics are not.
func TestParseNeverPanics(t *testing.T) {
	vocab := []string{
		"R1", "C2", "L3", "V4", "I5", "M6", "D7", "G8", "X9", "Q0",
		"a", "b", "0", "vdd", "out", "in",
		"1k", "2u", "-3", "DC", "SIN(0", "1", "1meg)", "PULSE(0", "NMOS", "PMOS",
		"W=1u", "L=90n", ".tech", ".temp", ".end", ".subckt", ".ends",
		"90nm", "300", "*", ";", "(", ")",
	}
	if err := quick.Check(func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		var b strings.Builder
		lines := 1 + rng.Intn(12)
		for l := 0; l < lines; l++ {
			tokens := rng.Intn(8)
			for k := 0; k < tokens; k++ {
				b.WriteString(vocab[rng.Intn(len(vocab))])
				b.WriteByte(' ')
			}
			b.WriteByte('\n')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on:\n%s\npanic: %v", b.String(), r)
			}
		}()
		_, _ = Parse(b.String())
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsOnGarbageBytes drives raw noise through the parser.
func TestParseNeverPanicsOnGarbageBytes(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := rng.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(128))
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on %q: %v", buf, r)
			}
		}()
		_, _ = Parse(string(buf))
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
