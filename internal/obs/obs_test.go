package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "1", "test counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("c_total", "", ""); again != c {
		t.Fatalf("get-or-create returned a different counter")
	}
	g := r.Gauge("g", "V", "test gauge")
	g.Set(1.5)
	g.Add(0.25)
	if got := g.Value(); got != 1.75 {
		t.Fatalf("gauge = %g, want 1.75", got)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	sp := StartSpan(h)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile must be NaN")
	}
	if r.Counter("x", "", "") != nil || r.Snapshot() != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when re-registering a counter as a gauge")
		}
	}()
	r.Gauge("m", "", "")
}

// TestHistogramQuantileUniform checks the interpolation against a known
// distribution: 10 000 evenly spaced points on (0, 1] with fine linear
// buckets must report quantiles within one bucket width of the truth.
func TestHistogramQuantileUniform(t *testing.T) {
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i+1) / 100
	}
	r := NewRegistry()
	h := r.Histogram("u", "1", "uniform", bounds)
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / n)
	}
	if got := h.Count(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	if got := h.Sum(); math.Abs(got-float64(n+1)/2) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, float64(n+1)/2)
	}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := h.Quantile(p)
		if math.Abs(got-p) > 0.01+1e-9 { // one bucket width
			t.Errorf("Quantile(%g) = %g, want within 0.01", p, got)
		}
	}
	if got := h.Quantile(0); got != 1.0/n {
		t.Errorf("Quantile(0) = %g, want observed min %g", got, 1.0/n)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("Quantile(1) = %g, want observed max 1", got)
	}
}

// TestHistogramQuantileExactEdges pins behaviour on tiny histograms, empty
// histograms and values beyond the last bound.
func TestHistogramQuantileExactEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e", "s", "edges", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram must report NaN quantiles")
	}
	h.Observe(8) // overflow bucket only
	if got := h.Quantile(0.5); got != 8 {
		t.Fatalf("single overflow observation: Quantile(0.5) = %g, want 8 (clamped to max)", got)
	}
	h.Observe(0.5)
	// Two points: p=0 and p=1 must hit the exact extremes.
	if lo, hi := h.Quantile(0), h.Quantile(1); lo != 0.5 || hi != 8 {
		t.Fatalf("extremes = (%g, %g), want (0.5, 8)", lo, hi)
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 2 {
		t.Fatalf("NaN observation must be dropped; count = %d", got)
	}
}

// TestHistogramConcurrentRecording hammers one histogram from many
// goroutines; run under -race this is the striping correctness test. The
// merged count and sum must be exact regardless of interleaving.
func TestHistogramConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc", "s", "concurrent", []float64{0.25, 0.5, 0.75, 1})
	c := r.Counter("conc_events_total", "1", "")
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%100) / 100)
				c.Inc()
			}
		}(w)
	}
	// Concurrent readers: snapshots and quantiles must be safe mid-run.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
			_ = h.Quantile(0.9)
		}
	}()
	wg.Wait()
	<-readDone
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * perWorker / 100 * (0 + 99) / 2 * (100.0 / 100) // arithmetic check below
	_ = wantSum
	// Each worker observes 0.00..0.99 repeated; exact sum:
	exact := float64(workers) * float64(perWorker/100) * (99 * 100 / 2) / 100
	if got := h.Sum(); math.Abs(got-exact) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, exact)
	}
}

func TestSnapshotAndPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "1", "second").Add(7)
	r.Counter("a_total", "1", "first").Add(3)
	h := r.Histogram("lat_seconds", "s", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_total" {
		t.Fatalf("snapshot counters not sorted: %+v", s.Counters)
	}
	if v, ok := s.Counter("b_total"); !ok || v != 7 {
		t.Fatalf("Counter(b_total) = %d,%v", v, ok)
	}
	hs := s.Histogram("lat_seconds")
	if hs == nil || hs.Count != 3 {
		t.Fatalf("histogram snapshot missing: %+v", hs)
	}
	if got := hs.Quantile(0.5); math.Abs(got-h.Quantile(0.5)) > 1e-12 {
		t.Fatalf("snapshot quantile %g != live quantile %g", got, h.Quantile(0.5))
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot must marshal to JSON: %v", err)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

func TestPublisherAndLogSink(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("trials_total", "1", "")
	c.Add(5)
	var mu sync.Mutex
	var buf bytes.Buffer
	sink := SinkFunc(func(s *Snapshot) {
		mu.Lock()
		defer mu.Unlock()
		(&LogSink{W: &buf, Prefix: "p: ", Keys: []string{"trials_total"}}).Consume(s)
	})
	p := NewPublisher(r, time.Millisecond, sink)
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "p: trials_total=5") {
		t.Fatalf("log sink output missing progress line:\n%q", out)
	}
	// Inert publisher: no panic, Stop returns.
	NewPublisher(nil, time.Second).Stop()
}

func TestTimeBucketsIncreasing(t *testing.T) {
	b := TimeBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("TimeBuckets not increasing at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
}
