package obs

import (
	"expvar"
	"net/http"
)

// Handler serves a registry over HTTP:
//
//	GET /metrics       Prometheus text exposition format
//	GET /metrics.json  indented JSON Snapshot
//	GET /debug/vars    standard expvar dump (the registry is published as
//	                   the "obs" var, next to cmdline/memstats)
//
// Mount it on a dedicated listener (relsim -metrics-addr does this); the
// handlers only read, so scraping never perturbs a running analysis
// beyond the atomic loads of a snapshot.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		b, err := reg.Snapshot().MarshalJSONIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// PublishExpvar exposes the registry under the given expvar name (once per
// name; expvar panics on duplicates, so callers should use a fixed name at
// startup). The value re-snapshots on every read.
func PublishExpvar(name string, reg *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}
